#!/usr/bin/env sh
# CI gate: builds the tree three times (Release, ASan, TSan), runs the
# robustness (-L fault), observability (-L obs), service (-L serve) and
# durable-I/O (-L diskfault) test labels, and finishes with a certified
# minergy_batch run over real circuits — every completed result must be
# independently certified (exit 1 otherwise). The serve label includes the
# chaos harness, which SIGKILLs the daemon/worker binaries at randomized
# protocol points; the diskfault label does the same with storage faults
# (scheduled ENOSPC/EIO, torn writes, short reads). A final leg serves a
# real spool under a *randomized* storage-fault schedule (reproduce with
# CI_FAULT_SEED=<seed>) and audits the spool afterwards, then verifies a
# run report's artifact-envelope footer end to end. Two telemetry legs
# close the gate: an exposition smoke that scrapes a live daemon's
# /metrics, /health and /jobs over HTTP and verifies its JSONL event log
# with trace_check --verify-eventlog, and a perf-trajectory leg that
# archives the Table-1 baseline's counter snapshot under bench/trajectory/.
#
#   $ scripts/ci.sh                  # from the repo root
#   $ CI_JOBS=4 scripts/ci.sh        # cap build parallelism
#   $ CI_FAULT_SEED=7 scripts/ci.sh  # pin the storage-fault schedule
#
# Build trees go to build-ci-release/, build-ci-asan/ and build-ci-tsan/ so
# a developer's ordinary build/ directory is left alone.
set -eu

cd "$(dirname "$0")/.."
JOBS="${CI_JOBS:-$(nproc 2>/dev/null || echo 2)}"

step() { printf '\n== %s ==\n' "$*"; }

run_labelled_tests() {
  build_dir="$1"
  shift
  for label in "$@"; do
    step "$build_dir: ctest -L $label"
    ctest --test-dir "$build_dir" -L "$label" --output-on-failure -j "$JOBS"
  done
}

step "configure + build (Release)"
cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-ci-release -j "$JOBS"
run_labelled_tests build-ci-release fault obs serve diskfault

step "configure + build (AddressSanitizer)"
cmake -B build-ci-asan -S . -DMINERGY_SANITIZE=address
cmake --build build-ci-asan -j "$JOBS"
run_labelled_tests build-ci-asan fault obs serve diskfault

# ThreadSanitizer pass: the serve daemon forks workers and the obs layer is
# the one place the codebase shares atomics across threads — run both labels
# under TSan to catch real races rather than relying on review.
step "configure + build (ThreadSanitizer)"
cmake -B build-ci-tsan -S . -DMINERGY_SANITIZE=thread
cmake --build build-ci-tsan -j "$JOBS"
run_labelled_tests build-ci-tsan serve obs

# Certified batch run: each circuit optimizes in its own subprocess and the
# parent re-derives every verdict with opt::Certifier. minergy_batch exits
# non-zero if any completed result is infeasible or uncertified, and
# --verify-report re-checks the written report the way CI consumers would.
step "certified batch run (s27, s298*)"
report=build-ci-release/ci_batch_report.json
build-ci-release/tools/minergy_batch \
  --circuits=s27,s298* --optimizers=robust \
  --timeout=120 --retries=1 --report="$report"
build-ci-release/tools/minergy_batch \
  --verify-report="$report" --min-circuits=2

# Randomized storage-fault serve leg: a fresh spool, three submissions, one
# daemon pass under a seed-derived write/fsync/rename fault schedule, then a
# clean drain and the service's own audit. The schedule may quarantine jobs
# (typed failures) but must never lose, duplicate or wedge one — exactly the
# oracle the deterministic diskfault sweep proves per-spec. The seed is
# echoed so any failure reproduces with CI_FAULT_SEED=<seed>.
step "storage-fault chaos (randomized schedule)"
fault_seed="${CI_FAULT_SEED:-$(date +%s)}"
fault_spec=$(awk -v seed="$fault_seed" 'BEGIN {
  srand(seed)
  split("write fsync rename", ops, " ")
  split("enospc eio", effects, " ")
  n = 2 + int(rand() * 2)
  spec = ""
  for (i = 1; i <= n; i++) {
    d = ops[1 + int(rand() * 3)] "@" (1 + int(rand() * 6)) ":" \
        effects[1 + int(rand() * 2)]
    spec = spec (i > 1 ? "," : "") d
  }
  print spec
}')
echo "CI_FAULT_SEED=$fault_seed --inject-io=$fault_spec"
served=build-ci-release/tools/minergy_served
fault_spool=build-ci-release/ci_fault_spool
rm -rf "$fault_spool"
"$served" --spool="$fault_spool" --submit --circuit=c17 --seed=1
"$served" --spool="$fault_spool" --submit --circuit=s27 --seed=2
"$served" --spool="$fault_spool" --submit --circuit=c17 --seed=3
# Phase 1 may degrade/retry/quarantine under the schedule; phase 2 is the
# clean drain; the audit then enforces the exactly-once partition.
"$served" --spool="$fault_spool" --once --workers=2 --poll=0.005 \
  --timeout=60 --retries=1 --backoff=0.1 --inject-io="$fault_spec" || true
"$served" --spool="$fault_spool" --once --workers=2 --poll=0.005 --timeout=60
"$served" --spool="$fault_spool" --status --verify --expect-jobs=3

# Envelope verification end to end: a run report written through the
# durable path must carry a valid CRC footer, and trace_check must insist
# on it under --verify-envelope.
step "run-report envelope verification"
run_report=build-ci-release/ci_run_report.json
build-ci-release/tools/minergy_report --builtin=s27 --optimizer=baseline \
  --certify --report="$run_report"
build-ci-release/tools/trace_check --report="$run_report" --verify-envelope

# Exposition smoke: a real daemon on an ephemeral port, scraped over HTTP
# while it drains two jobs, with every state transition captured in the
# event log. The scrape must expose the e2e latency histogram (the SLO of
# 1 ms guarantees at least one slo_violation lands in the log too), /health
# and /jobs must serve valid JSON from memory, and after the daemon exits
# the event log must pass the structural verifier.
step "exposition + event-log smoke"
expo_spool=build-ci-release/ci_expo_spool
expo_log=build-ci-release/ci_expo_events.jsonl
expo_port_file=build-ci-release/ci_expo_port
rm -rf "$expo_spool" "$expo_log" "$expo_log.1" "$expo_port_file"
"$served" --spool="$expo_spool" --submit --circuit=c17 --seed=11
"$served" --spool="$expo_spool" --submit --circuit=s27 --seed=12
# No --once: the daemon keeps serving so the scrapes cannot race a fast
# drain; a SIGTERM after the checks exercises the graceful-stop path.
"$served" --spool="$expo_spool" --workers=2 --poll=0.005 --timeout=60 \
  --listen=0 --port-file="$expo_port_file" --event-log="$expo_log" \
  --slo-e2e-ms=1 --snapshot-interval-s=0.2 \
  --perf-record=build-ci-release/BENCH_minergy_served.json &
served_pid=$!
expo_port=""
for _ in $(seq 1 100); do
  if [ -s "$expo_port_file" ]; then expo_port=$(cat "$expo_port_file"); break; fi
  sleep 0.1
done
[ -n "$expo_port" ] || { echo "daemon never wrote its port file"; exit 1; }
# Scrape until both jobs have drained: the histogram then has samples and
# the slo_violation events are guaranteed to be in the log.
metrics=""
for _ in $(seq 1 300); do
  metrics=$(curl -sf "http://127.0.0.1:$expo_port/metrics" || true)
  if echo "$metrics" | grep -q '^serve_jobs_done 2'; then break; fi
  sleep 0.1
done
echo "$metrics" | grep -q '^serve_jobs_done 2' \
  || { echo "daemon never finished the two jobs"; kill "$served_pid"; exit 1; }
echo "$metrics" | grep -q '^# TYPE serve_job_e2e_micros histogram' \
  || { echo "/metrics lacks the e2e latency histogram"; exit 1; }
echo "$metrics" | grep -q '^serve_job_e2e_micros_bucket{le="+Inf"} 2' \
  || { echo "e2e histogram did not record both jobs"; exit 1; }
echo "$metrics" | grep -q '^serve_spool_pending ' \
  || { echo "/metrics lacks the spool gauges"; exit 1; }
curl -sf "http://127.0.0.1:$expo_port/health" \
  | grep -q '"schema": *"minergy.health.v1"' \
  || { echo "/health is not a minergy.health.v1 document"; exit 1; }
curl -sf "http://127.0.0.1:$expo_port/jobs" \
  | grep -q '"schema": *"minergy.jobs.v1"' \
  || { echo "/jobs is not a minergy.jobs.v1 document"; exit 1; }
kill -TERM "$served_pid"
wait "$served_pid"
build-ci-release/tools/trace_check --verify-eventlog="$expo_log"
grep -q '"kind":"slo_violation"' "$expo_log" \
  || { echo "event log has no slo_violation under a 1 ms SLO"; exit 1; }
test -s build-ci-release/BENCH_minergy_served.json \
  || { echo "periodic snapshot left no perf record"; exit 1; }
"$served" --spool="$expo_spool" --status --verify --expect-jobs=2

# Perf trajectory: re-run the Table-1 baseline with a perf record and
# archive the counters next to previous runs, so regressions show up as a
# diffable series rather than vibes (see bench/trajectory/README.md).
step "perf trajectory (table1_baseline)"
traj=build-ci-release/BENCH_table1_baseline.json
build-ci-release/bench/table1_baseline --circuit=s27 --perf-record="$traj"
mkdir -p bench/trajectory
cp "$traj" bench/trajectory/BENCH_table1_baseline.latest.json

step "OK: all builds green, fault+obs+serve+diskfault labels pass, batch results certified, exposition scraped live"
