#!/usr/bin/env sh
# CI gate: builds the tree three times (Release, ASan, TSan), runs the
# robustness (-L fault), observability (-L obs), service (-L serve),
# durable-I/O (-L diskfault) and overload-protection (-L overload) test
# labels, and finishes with a certified
# minergy_batch run over real circuits — every completed result must be
# independently certified (exit 1 otherwise). The serve label includes the
# chaos harness, which SIGKILLs the daemon/worker binaries at randomized
# protocol points; the diskfault label does the same with storage faults
# (scheduled ENOSPC/EIO, torn writes, short reads). A final leg serves a
# real spool under a *randomized* storage-fault schedule (reproduce with
# CI_FAULT_SEED=<seed>) and audits the spool afterwards, then verifies a
# run report's artifact-envelope footer end to end. Two telemetry legs
# close the gate: an exposition smoke that scrapes a live daemon's
# /metrics, /health and /jobs over HTTP and verifies its JSONL event log
# with trace_check --verify-eventlog, and a perf-trajectory leg that
# archives the Table-1 baseline's counter snapshot under bench/trajectory/.
# An overload smoke drives a live daemon 30x past one worker's capacity and
# requires sheds, a quota rejection, a brownout, and a full recovery. The
# high-availability label (-L ha) covers the leader lease, split-brain
# chaos and the anti-entropy scrubber; a failover smoke then kill -9s a
# live leader and requires its hot standby to take over and drain cleanly.
#
#   $ scripts/ci.sh                  # from the repo root
#   $ CI_JOBS=4 scripts/ci.sh        # cap build parallelism
#   $ CI_FAULT_SEED=7 scripts/ci.sh  # pin the storage-fault schedule
#
# Build trees go to build-ci-release/, build-ci-asan/ and build-ci-tsan/ so
# a developer's ordinary build/ directory is left alone.
set -eu

cd "$(dirname "$0")/.."
JOBS="${CI_JOBS:-$(nproc 2>/dev/null || echo 2)}"

step() { printf '\n== %s ==\n' "$*"; }

run_labelled_tests() {
  build_dir="$1"
  shift
  for label in "$@"; do
    step "$build_dir: ctest -L $label"
    ctest --test-dir "$build_dir" -L "$label" --output-on-failure -j "$JOBS"
  done
}

step "configure + build (Release)"
cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-ci-release -j "$JOBS"
run_labelled_tests build-ci-release fault obs serve diskfault overload ha par

step "configure + build (AddressSanitizer)"
cmake -B build-ci-asan -S . -DMINERGY_SANITIZE=address
cmake --build build-ci-asan -j "$JOBS"
run_labelled_tests build-ci-asan fault obs serve diskfault overload ha par

# ThreadSanitizer pass: the serve daemon forks workers, the obs layer
# shares atomics across threads, and the parallel evaluation engine (the
# `par` label: thread pool, levelized STA, parallel width search,
# multi-chain anneal, evaluation cache) is the hottest shared-state code in
# the tree — run all of them under TSan to catch real races rather than
# relying on review.
step "configure + build (ThreadSanitizer)"
cmake -B build-ci-tsan -S . -DMINERGY_SANITIZE=thread
cmake --build build-ci-tsan -j "$JOBS"
run_labelled_tests build-ci-tsan serve obs overload ha par

# Certified batch run: each circuit optimizes in its own subprocess and the
# parent re-derives every verdict with opt::Certifier. minergy_batch exits
# non-zero if any completed result is infeasible or uncertified, and
# --verify-report re-checks the written report the way CI consumers would.
step "certified batch run (s27, s298*)"
report=build-ci-release/ci_batch_report.json
build-ci-release/tools/minergy_batch \
  --circuits=s27,s298* --optimizers=robust \
  --timeout=120 --retries=1 --report="$report"
build-ci-release/tools/minergy_batch \
  --verify-report="$report" --min-circuits=2

# Randomized storage-fault serve leg: a fresh spool, three submissions, one
# daemon pass under a seed-derived write/fsync/rename fault schedule, then a
# clean drain and the service's own audit. The schedule may quarantine jobs
# (typed failures) but must never lose, duplicate or wedge one — exactly the
# oracle the deterministic diskfault sweep proves per-spec. The seed is
# echoed so any failure reproduces with CI_FAULT_SEED=<seed>.
step "storage-fault chaos (randomized schedule)"
fault_seed="${CI_FAULT_SEED:-$(date +%s)}"
fault_spec=$(awk -v seed="$fault_seed" 'BEGIN {
  srand(seed)
  split("write fsync rename", ops, " ")
  split("enospc eio", effects, " ")
  n = 2 + int(rand() * 2)
  spec = ""
  for (i = 1; i <= n; i++) {
    d = ops[1 + int(rand() * 3)] "@" (1 + int(rand() * 6)) ":" \
        effects[1 + int(rand() * 2)]
    spec = spec (i > 1 ? "," : "") d
  }
  print spec
}')
echo "CI_FAULT_SEED=$fault_seed --inject-io=$fault_spec"
served=build-ci-release/tools/minergy_served
fault_spool=build-ci-release/ci_fault_spool
rm -rf "$fault_spool"
"$served" --spool="$fault_spool" --submit --circuit=c17 --seed=1
"$served" --spool="$fault_spool" --submit --circuit=s27 --seed=2
"$served" --spool="$fault_spool" --submit --circuit=c17 --seed=3
# Phase 1 may degrade/retry/quarantine under the schedule; phase 2 is the
# clean drain; the audit then enforces the exactly-once partition.
"$served" --spool="$fault_spool" --once --workers=2 --poll=0.005 \
  --timeout=60 --retries=1 --backoff=0.1 --inject-io="$fault_spec" || true
"$served" --spool="$fault_spool" --once --workers=2 --poll=0.005 --timeout=60
# The audit exits 0 on a clean spool or 4 when the schedule quarantined
# something — both are valid exactly-once partitions here.
fault_rc=0
"$served" --spool="$fault_spool" --status --verify --expect-jobs=3 \
  || fault_rc=$?
[ "$fault_rc" -eq 0 ] || [ "$fault_rc" -eq 4 ] \
  || { echo "spool audit failed (rc=$fault_rc)"; exit "$fault_rc"; }

# Envelope verification end to end: a run report written through the
# durable path must carry a valid CRC footer, and trace_check must insist
# on it under --verify-envelope.
step "run-report envelope verification"
run_report=build-ci-release/ci_run_report.json
build-ci-release/tools/minergy_report --builtin=s27 --optimizer=baseline \
  --certify --report="$run_report"
build-ci-release/tools/trace_check --report="$run_report" --verify-envelope

# Exposition smoke: a real daemon on an ephemeral port, scraped over HTTP
# while it drains two jobs, with every state transition captured in the
# event log. The scrape must expose the e2e latency histogram (the SLO of
# 1 ms guarantees at least one slo_violation lands in the log too), /health
# and /jobs must serve valid JSON from memory, and after the daemon exits
# the event log must pass the structural verifier.
step "exposition + event-log smoke"
expo_spool=build-ci-release/ci_expo_spool
expo_log=build-ci-release/ci_expo_events.jsonl
expo_port_file=build-ci-release/ci_expo_port
rm -rf "$expo_spool" "$expo_log" "$expo_log.1" "$expo_port_file"
"$served" --spool="$expo_spool" --submit --circuit=c17 --seed=11
"$served" --spool="$expo_spool" --submit --circuit=s27 --seed=12
# No --once: the daemon keeps serving so the scrapes cannot race a fast
# drain; a SIGTERM after the checks exercises the graceful-stop path.
"$served" --spool="$expo_spool" --workers=2 --poll=0.005 --timeout=60 \
  --listen=0 --port-file="$expo_port_file" --event-log="$expo_log" \
  --slo-e2e-ms=1 --snapshot-interval-s=0.2 \
  --perf-record=build-ci-release/BENCH_minergy_served.json &
served_pid=$!
expo_port=""
for _ in $(seq 1 100); do
  if [ -s "$expo_port_file" ]; then expo_port=$(cat "$expo_port_file"); break; fi
  sleep 0.1
done
[ -n "$expo_port" ] || { echo "daemon never wrote its port file"; exit 1; }
# Scrape until both jobs have drained: the histogram then has samples and
# the slo_violation events are guaranteed to be in the log.
metrics=""
for _ in $(seq 1 300); do
  metrics=$(curl -sf "http://127.0.0.1:$expo_port/metrics" || true)
  if echo "$metrics" | grep -q '^serve_jobs_done 2'; then break; fi
  sleep 0.1
done
echo "$metrics" | grep -q '^serve_jobs_done 2' \
  || { echo "daemon never finished the two jobs"; kill "$served_pid"; exit 1; }
echo "$metrics" | grep -q '^# TYPE serve_job_e2e_micros histogram' \
  || { echo "/metrics lacks the e2e latency histogram"; exit 1; }
echo "$metrics" | grep -q '^serve_job_e2e_micros_bucket{le="+Inf"} 2' \
  || { echo "e2e histogram did not record both jobs"; exit 1; }
echo "$metrics" | grep -q '^serve_spool_pending ' \
  || { echo "/metrics lacks the spool gauges"; exit 1; }
curl -sf "http://127.0.0.1:$expo_port/health" \
  | grep -q '"schema": *"minergy.health.v1"' \
  || { echo "/health is not a minergy.health.v1 document"; exit 1; }
curl -sf "http://127.0.0.1:$expo_port/jobs" \
  | grep -q '"schema": *"minergy.jobs.v1"' \
  || { echo "/jobs is not a minergy.jobs.v1 document"; exit 1; }
kill -TERM "$served_pid"
wait "$served_pid"
build-ci-release/tools/trace_check --verify-eventlog="$expo_log"
grep -q '"kind":"slo_violation"' "$expo_log" \
  || { echo "event log has no slo_violation under a 1 ms SLO"; exit 1; }
test -s build-ci-release/BENCH_minergy_served.json \
  || { echo "periodic snapshot left no perf record"; exit 1; }
"$served" --spool="$expo_spool" --status --verify --expect-jobs=2

# Overload + brownout smoke: one worker, a burst of background jobs well
# over its capacity, a 1 ms SLO with the brownout loop armed, and a 1 rps
# client quota. The daemon must shed background work (visible in /metrics
# and as job_shed events), reject the over-quota submission with a typed
# "shed:" error, brown out under the SLO miss, and — once the burst drains —
# walk the brownout ladder back to 0. The interactive job must never be
# shed and must finish certified in done/.
step "overload + brownout smoke"
ovl_spool=build-ci-release/ci_overload_spool
ovl_log=build-ci-release/ci_overload_events.jsonl
ovl_port_file=build-ci-release/ci_overload_port
rm -rf "$ovl_spool" "$ovl_log" "$ovl_log.1" "$ovl_port_file"
"$served" --spool="$ovl_spool" --workers=1 --poll=0.005 --timeout=60 \
  --listen=0 --port-file="$ovl_port_file" --event-log="$ovl_log" \
  --shed-target-ms=1 --shed-window-ms=400 \
  --slo-e2e-ms=1 --brownout --brownout-dwell-s=0.2 \
  --quota=ci-limited:1 &
ovl_pid=$!
ovl_port=""
for _ in $(seq 1 100); do
  if [ -s "$ovl_port_file" ]; then ovl_port=$(cat "$ovl_port_file"); break; fi
  sleep 0.1
done
[ -n "$ovl_port" ] || { echo "overload daemon never wrote its port"; exit 1; }
for _ in $(seq 1 100); do
  [ -s "$ovl_spool/overload.json" ] && break
  sleep 0.1
done
[ -s "$ovl_spool/overload.json" ] \
  || { echo "daemon never published its overload policy"; exit 1; }

# Quota: burst is 1 token at 1 rps, so the second back-to-back submission
# for the same client must be rejected with the typed shed error.
"$served" --spool="$ovl_spool" --submit --circuit=c17 --seed=50 \
  --priority=background --client=ci-limited >/dev/null
quota_err=build-ci-release/ci_overload_quota_err
if "$served" --spool="$ovl_spool" --submit --circuit=c17 --seed=51 \
    --priority=background --client=ci-limited >/dev/null 2>"$quota_err"; then
  echo "over-quota submission was not rejected"; exit 1
fi
grep -q '^shed: quota exceeded' "$quota_err" \
  || { echo "quota rejection lacks the typed shed error"; cat "$quota_err"; exit 1; }

# Burst: 30 background jobs against one worker (admission-side sheds are
# expected once the policy escalates, hence the || true), plus one
# interactive job that must survive the storm.
for i in $(seq 1 30); do
  "$served" --spool="$ovl_spool" --submit --circuit=c17 --seed="$i" \
    --priority=background >/dev/null 2>&1 || true
done
int_id=$("$served" --spool="$ovl_spool" --submit --circuit=c17 --seed=99 \
  --priority=interactive --complete-by-s=3600)

# Converged: backlog drained, shedding stopped, and the brownout ladder
# stepped back to level 0 (the recovery half of the feedback loop).
converged=""
for _ in $(seq 1 600); do
  m=$(curl -sf "http://127.0.0.1:$ovl_port/metrics" || true)
  if echo "$m" | grep -q '^serve_spool_pending 0' \
      && echo "$m" | grep -q '^serve_spool_running 0' \
      && echo "$m" | grep -q '^serve_brownout_level 0'; then
    converged=1; break
  fi
  sleep 0.1
done
[ -n "$converged" ] \
  || { echo "overload daemon never converged"; kill "$ovl_pid"; exit 1; }
m=$(curl -sf "http://127.0.0.1:$ovl_port/metrics")
echo "$m" | grep -q '^serve_shed_dropped{priority="background"} ' \
  || { echo "no background job was shed under 30x overload"; exit 1; }
echo "$m" | grep -q '^serve_brownout_degrades ' \
  || { echo "the 1 ms SLO never tripped the brownout loop"; exit 1; }
# /health republishes on the health interval (250 ms), so give the 503 ->
# 200 flip a moment after the brownout gauge clears.
health_ok=""
for _ in $(seq 1 20); do
  if curl -sf "http://127.0.0.1:$ovl_port/health" >/dev/null; then
    health_ok=1; break
  fi
  sleep 0.1
done
[ -n "$health_ok" ] || { echo "/health still 503 after recovery"; exit 1; }
kill -TERM "$ovl_pid"
wait "$ovl_pid"
build-ci-release/tools/trace_check --verify-eventlog="$ovl_log"
for kind in job_shed shed_start brownout_degrade brownout_recover; do
  grep -q "\"kind\":\"$kind\"" "$ovl_log" \
    || { echo "event log has no $kind event"; exit 1; }
done
test -f "$ovl_spool/done/$int_id.json" \
  || { echo "interactive job $int_id did not finish in done/"; exit 1; }
"$served" --spool="$ovl_spool" --status --verify

# Failover smoke: a leader and a hot standby share one spool over the
# leader lease; the leader is SIGKILLed mid-run, the standby must take over
# within about one lease TTL, drain all six jobs, and leave a spool that
# audits clean — exactly one takeover in the standby's event log, both
# logs passing the lease-ordering verifier, and an offline scrub finding
# nothing to repair.
step "failover smoke (kill -9 the leader, standby finishes)"
ha_spool=build-ci-release/ci_ha_spool
ha_leader_log=build-ci-release/ci_ha_leader_events.jsonl
ha_standby_log=build-ci-release/ci_ha_standby_events.jsonl
rm -rf "$ha_spool" "$ha_leader_log" "$ha_leader_log.1" \
  "$ha_standby_log" "$ha_standby_log.1"
for i in $(seq 1 6); do
  "$served" --spool="$ha_spool" --submit --circuit=c17 --seed="$i" >/dev/null
done
"$served" --spool="$ha_spool" --workers=2 --poll=0.005 --timeout=60 \
  --lease-ttl-s=1 --lease-margin-s=0.25 --event-log="$ha_leader_log" &
ha_leader_pid=$!
"$served" --spool="$ha_spool" --once --standby --workers=2 --poll=0.005 \
  --timeout=60 --lease-ttl-s=1 --lease-margin-s=0.25 \
  --event-log="$ha_standby_log" &
ha_standby_pid=$!
# Let the leader finish at least two jobs, then murder it mid-run.
ha_done=0
for _ in $(seq 1 600); do
  ha_done=$(ls "$ha_spool/done" 2>/dev/null | wc -l)
  [ "$ha_done" -ge 2 ] && break
  sleep 0.1
done
[ "$ha_done" -ge 2 ] \
  || { echo "leader never finished two jobs"; kill "$ha_leader_pid"; exit 1; }
kill -9 "$ha_leader_pid"
wait "$ha_leader_pid" || true
wait "$ha_standby_pid" \
  || { echo "standby did not drain the spool after the takeover"; exit 1; }
"$served" --spool="$ha_spool" --status --verify --expect-jobs=6
ha_takeovers=$(grep -c '"kind":"lease_acquired"' "$ha_standby_log")
[ "$ha_takeovers" -eq 1 ] \
  || { echo "expected exactly one takeover, saw $ha_takeovers"; exit 1; }
build-ci-release/tools/trace_check --verify-eventlog="$ha_leader_log"
build-ci-release/tools/trace_check --verify-eventlog="$ha_standby_log"
"$served" --spool="$ha_spool" --scrub \
  || { echo "post-failover scrub found damage"; exit 1; }

# Perf trajectory: re-run the Table-1 baseline with a perf record and
# archive the counters next to previous runs, so regressions show up as a
# diffable series rather than vibes (see bench/trajectory/README.md).
step "perf trajectory (table1_baseline)"
traj=build-ci-release/BENCH_table1_baseline.json
build-ci-release/bench/table1_baseline --circuit=s27 --perf-record="$traj"
mkdir -p bench/trajectory
cp "$traj" bench/trajectory/BENCH_table1_baseline.latest.json

# Parallel-engine trajectory: the Table-2 heuristic on the largest bundled
# circuit, once with the evaluation engine fully disarmed (--threads=1
# --eval-cache=0, the historical serial path) and once at the defaults
# (hardware threads + cache). Both perf records — each carrying its own
# wall_seconds — land in one archived document together with the machine's
# hardware_concurrency, so the engine's speedup is a diffable series and a
# 1-core CI runner is distinguishable from a real regression. The two flows
# must print identical result rows; the `par` determinism oracles above
# already enforce that bit-exactly.
step "perf trajectory (table2_heuristic, serial vs parallel+cache)"
t2_serial=build-ci-release/BENCH_table2_serial.json
t2_par=build-ci-release/BENCH_table2_parallel.json
build-ci-release/bench/table2_heuristic --circuit='s832*' \
  --threads=1 --eval-cache=0 --perf-record="$t2_serial" >/dev/null
build-ci-release/bench/table2_heuristic --circuit='s832*' \
  --perf-record="$t2_par" >/dev/null
{
  printf '{\n'
  printf '"schema": "minergy.perf_trajectory.v1",\n'
  printf '"bench": "table2_heuristic",\n'
  printf '"circuit": "s832*",\n'
  printf '"hardware_concurrency": %s,\n' "$(nproc 2>/dev/null || echo 1)"
  printf '"serial_threads1_cache_off": '
  cat "$t2_serial"
  printf ',\n"parallel_default": '
  cat "$t2_par"
  printf '}\n'
} > bench/trajectory/BENCH_table2_heuristic.latest.json
grep -H '"wall_seconds"' "$t2_serial" "$t2_par"

step "OK: all builds green, fault+obs+serve+diskfault+overload+ha labels pass, batch results certified, exposition scraped live, overload shed+browned out+recovered, standby survived kill -9 of its leader"
