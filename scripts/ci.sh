#!/usr/bin/env sh
# CI gate: builds the tree twice (Release, then ASan-instrumented), runs the
# robustness (-L fault) and observability (-L obs) test labels under each,
# and finishes with a certified minergy_batch run over real circuits —
# every completed result must be independently certified (exit 1 otherwise).
#
#   $ scripts/ci.sh            # from the repo root
#   $ CI_JOBS=4 scripts/ci.sh  # cap build parallelism
#
# Build trees go to build-ci-release/ and build-ci-asan/ so a developer's
# ordinary build/ directory is left alone.
set -eu

cd "$(dirname "$0")/.."
JOBS="${CI_JOBS:-$(nproc 2>/dev/null || echo 2)}"

step() { printf '\n== %s ==\n' "$*"; }

run_labelled_tests() {
  build_dir="$1"
  step "$build_dir: ctest -L fault"
  ctest --test-dir "$build_dir" -L fault --output-on-failure -j "$JOBS"
  step "$build_dir: ctest -L obs"
  ctest --test-dir "$build_dir" -L obs --output-on-failure -j "$JOBS"
}

step "configure + build (Release)"
cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-ci-release -j "$JOBS"
run_labelled_tests build-ci-release

step "configure + build (AddressSanitizer)"
cmake -B build-ci-asan -S . -DMINERGY_SANITIZE=address
cmake --build build-ci-asan -j "$JOBS"
run_labelled_tests build-ci-asan

# Certified batch run: each circuit optimizes in its own subprocess and the
# parent re-derives every verdict with opt::Certifier. minergy_batch exits
# non-zero if any completed result is infeasible or uncertified, and
# --verify-report re-checks the written report the way CI consumers would.
step "certified batch run (s27, s298*)"
report=build-ci-release/ci_batch_report.json
build-ci-release/tools/minergy_batch \
  --circuits=s27,s298* --optimizers=robust \
  --timeout=120 --retries=1 --report="$report"
build-ci-release/tools/minergy_batch \
  --verify-report="$report" --min-circuits=2

step "OK: both builds green, fault+obs labels pass, batch results certified"
