#!/usr/bin/env sh
# CI gate: builds the tree three times (Release, ASan, TSan), runs the
# robustness (-L fault), observability (-L obs) and service (-L serve)
# test labels, and finishes with a certified minergy_batch run over real
# circuits — every completed result must be independently certified
# (exit 1 otherwise). The serve label includes the chaos harness, which
# SIGKILLs the daemon/worker binaries at randomized protocol points.
#
#   $ scripts/ci.sh            # from the repo root
#   $ CI_JOBS=4 scripts/ci.sh  # cap build parallelism
#
# Build trees go to build-ci-release/, build-ci-asan/ and build-ci-tsan/ so
# a developer's ordinary build/ directory is left alone.
set -eu

cd "$(dirname "$0")/.."
JOBS="${CI_JOBS:-$(nproc 2>/dev/null || echo 2)}"

step() { printf '\n== %s ==\n' "$*"; }

run_labelled_tests() {
  build_dir="$1"
  shift
  for label in "$@"; do
    step "$build_dir: ctest -L $label"
    ctest --test-dir "$build_dir" -L "$label" --output-on-failure -j "$JOBS"
  done
}

step "configure + build (Release)"
cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-ci-release -j "$JOBS"
run_labelled_tests build-ci-release fault obs serve

step "configure + build (AddressSanitizer)"
cmake -B build-ci-asan -S . -DMINERGY_SANITIZE=address
cmake --build build-ci-asan -j "$JOBS"
run_labelled_tests build-ci-asan fault obs serve

# ThreadSanitizer pass: the serve daemon forks workers and the obs layer is
# the one place the codebase shares atomics across threads — run both labels
# under TSan to catch real races rather than relying on review.
step "configure + build (ThreadSanitizer)"
cmake -B build-ci-tsan -S . -DMINERGY_SANITIZE=thread
cmake --build build-ci-tsan -j "$JOBS"
run_labelled_tests build-ci-tsan serve obs

# Certified batch run: each circuit optimizes in its own subprocess and the
# parent re-derives every verdict with opt::Certifier. minergy_batch exits
# non-zero if any completed result is infeasible or uncertified, and
# --verify-report re-checks the written report the way CI consumers would.
step "certified batch run (s27, s298*)"
report=build-ci-release/ci_batch_report.json
build-ci-release/tools/minergy_batch \
  --circuits=s27,s298* --optimizers=robust \
  --timeout=120 --retries=1 --report="$report"
build-ci-release/tools/minergy_batch \
  --verify-report="$report" --min-circuits=2

step "OK: all builds green, fault+obs+serve labels pass, batch results certified"
