#include <gtest/gtest.h>

#include "netlist/bench_io.h"
#include "netlist/generator.h"
#include "netlist/transform.h"
#include "opt/joint_optimizer.h"
#include "opt/yield.h"
#include "timing/sta.h"

namespace minergy {
namespace {

using netlist::GateId;
using netlist::Netlist;

Netlist make_circuit(std::uint64_t seed = 91) {
  netlist::GeneratorSpec spec;
  spec.num_inputs = 6;
  spec.num_gates = 60;
  spec.depth = 7;
  spec.num_dffs = 4;
  spec.seed = seed;
  return netlist::generate_random_logic(spec);
}

activity::ActivityProfile profile() {
  activity::ActivityProfile p;
  p.input_density = 0.3;
  return p;
}

// --------------------------------------------------------------- min STA

struct TimingFixture {
  TimingFixture()
      : nl(make_circuit()),
        tech(tech::Technology::generic350()),
        dev(tech),
        wires(tech, nl),
        calc(nl, dev, wires) {}
  Netlist nl;
  tech::Technology tech;
  tech::DeviceModel dev;
  interconnect::WireModel wires;
  timing::DelayCalculator calc;
};

TEST(MinSta, ContaminationDelayBelowPropagationDelay) {
  TimingFixture f;
  const std::vector<double> w(f.nl.size(), 4.0);
  const std::vector<double> vts(f.nl.size(), 0.2);
  const timing::TimingReport maxr =
      timing::run_sta(f.calc, w, 1.2, std::span<const double>(vts), 1.0);
  const timing::MinTimingReport minr =
      timing::run_min_sta(f.calc, w, 1.2, vts);
  for (GateId id : f.nl.combinational()) {
    EXPECT_LE(minr.gate_delay[id], maxr.gate_delay[id] * (1.0 + 1e-12))
        << f.nl.gate(id).name;
    EXPECT_LE(minr.arrival[id], maxr.arrival[id] * (1.0 + 1e-12));
  }
  EXPECT_LE(minr.shortest_delay, maxr.critical_delay);
  EXPECT_GT(minr.shortest_delay, 0.0);
}

TEST(MinSta, SingleChainMinEqualsPathSum) {
  Netlist nl = netlist::parse_bench_string(R"(
INPUT(a)
OUTPUT(y)
n1 = NOT(a)
y = NOT(n1)
)");
  const tech::Technology tech = tech::Technology::generic350();
  const tech::DeviceModel dev(tech);
  const interconnect::WireModel wires(tech, nl);
  const timing::DelayCalculator calc(nl, dev, wires);
  const std::vector<double> w(nl.size(), 4.0);
  const std::vector<double> vts(nl.size(), 0.2);
  const timing::MinTimingReport r = timing::run_min_sta(calc, w, 1.2, vts);
  const GateId n1 = nl.find("n1"), y = nl.find("y");
  EXPECT_NEAR(r.shortest_delay, r.gate_delay[n1] + r.gate_delay[y], 1e-18);
  ASSERT_EQ(r.shortest_path.size(), 2u);
  EXPECT_EQ(r.shortest_path.front(), n1);
  EXPECT_EQ(r.shortest_path.back(), y);
}

TEST(MinSta, ShortestPathPicksTheShortBranch) {
  // Two parallel sink paths of depth 1 and 3; the hold-critical path is
  // the depth-1 branch.
  Netlist nl = netlist::parse_bench_string(R"(
INPUT(a)
OUTPUT(fast)
OUTPUT(slow)
fast = NOT(a)
s1 = NOT(a)
s2 = NOT(s1)
slow = NOT(s2)
)");
  const tech::Technology tech = tech::Technology::generic350();
  const tech::DeviceModel dev(tech);
  const interconnect::WireModel wires(tech, nl);
  const timing::DelayCalculator calc(nl, dev, wires);
  const std::vector<double> w(nl.size(), 4.0);
  const std::vector<double> vts(nl.size(), 0.2);
  const timing::MinTimingReport r = timing::run_min_sta(calc, w, 1.2, vts);
  ASSERT_FALSE(r.shortest_path.empty());
  EXPECT_EQ(r.shortest_path.back(), nl.find("fast"));
}

TEST(MinSta, HoldSafetyPredicate) {
  TimingFixture f;
  const std::vector<double> w(f.nl.size(), 4.0);
  const std::vector<double> vts(f.nl.size(), 0.2);
  const timing::MinTimingReport r = timing::run_min_sta(f.calc, w, 1.2, vts);
  EXPECT_TRUE(timing::hold_safe(r, 0.5 * r.shortest_delay));
  EXPECT_FALSE(timing::hold_safe(r, 2.0 * r.shortest_delay));
}

TEST(MinSta, HoldAnalysisOfOptimizedDesign) {
  // Min-delay analysis at the joint optimum. The energy optimizer sizes
  // every gate to its *maximum* delay budget, so single-gate register-to-
  // register paths can be hold-critical against the (1 - b) * Tc skew the
  // max-delay side reserved — exactly the situation a production flow
  // fixes with hold buffers. The analysis must expose that consistently.
  Netlist nl = make_circuit();
  const tech::Technology tech = tech::Technology::generic350();
  const opt::CircuitEvaluator eval(nl, tech, profile(),
                                   {.clock_frequency = 200e6});
  const opt::OptimizationResult r = opt::JointOptimizer(eval).run();
  ASSERT_TRUE(r.feasible);
  const timing::MinTimingReport minr = timing::run_min_sta(
      eval.delay_calculator(), r.state.widths, r.vdd, r.state.vts);
  EXPECT_GT(minr.shortest_delay, 0.0);
  ASSERT_FALSE(minr.shortest_path.empty());
  // The predicate agrees with the number it summarizes.
  const double margin = 0.05 * eval.cycle_time();
  EXPECT_EQ(timing::hold_safe(minr, margin),
            minr.shortest_delay >= margin);
  // And buffering the short path (adding one min-size stage) raises the
  // floor: a one-gate-longer shortest path can only be slower.
  const timing::TimingReport maxr =
      eval.sta(r.state, 0.95 * eval.cycle_time());
  EXPECT_LE(minr.shortest_delay, maxr.critical_delay);
}

// ----------------------------------------------------------------- yield

TEST(Yield, NoVariationGivesDeterministicPass) {
  Netlist nl = make_circuit();
  const tech::Technology tech = tech::Technology::generic350();
  const opt::CircuitEvaluator eval(nl, tech, profile(),
                                   {.clock_frequency = 200e6});
  const opt::OptimizationResult r = opt::JointOptimizer(eval).run();
  ASSERT_TRUE(r.feasible);
  opt::YieldOptions opts;
  opts.samples = 10;
  opts.sigma_gate = 0.0;
  opts.sigma_die = 0.0;
  const opt::YieldResult y = opt::YieldAnalyzer(eval, opts).analyze(r.state);
  EXPECT_EQ(y.timing_pass, 10);
  EXPECT_DOUBLE_EQ(y.timing_yield, 1.0);
  EXPECT_NEAR(y.mean_delay, r.critical_delay, 1e-15);
  EXPECT_NEAR(y.mean_energy, r.energy.total(), r.energy.total() * 1e-9);
}

TEST(Yield, VariationDegradesYieldMonotonically) {
  Netlist nl = make_circuit();
  const tech::Technology tech = tech::Technology::generic350();
  const opt::CircuitEvaluator eval(nl, tech, profile(),
                                   {.clock_frequency = 200e6});
  const opt::OptimizationResult r = opt::JointOptimizer(eval).run();
  ASSERT_TRUE(r.feasible);
  opt::YieldOptions small, big;
  small.samples = big.samples = 120;
  small.sigma_gate = 0.005;
  small.sigma_die = 0.005;
  big.sigma_gate = 0.04;
  big.sigma_die = 0.05;
  const opt::YieldResult ys = opt::YieldAnalyzer(eval, small).analyze(r.state);
  const opt::YieldResult yb = opt::YieldAnalyzer(eval, big).analyze(r.state);
  EXPECT_GE(ys.timing_yield, yb.timing_yield);
  // Leakage distribution has a heavy high tail under bigger sigma.
  EXPECT_GT(yb.p95_leakage, ys.p95_leakage);
}

TEST(Yield, LeakageTailIsAsymmetric) {
  // Exponential Ioff(Vt): mean leakage under symmetric Vt noise exceeds
  // the zero-noise leakage (Jensen).
  Netlist nl = make_circuit();
  const tech::Technology tech = tech::Technology::generic350();
  const opt::CircuitEvaluator eval(nl, tech, profile(),
                                   {.clock_frequency = 200e6});
  const opt::OptimizationResult r = opt::JointOptimizer(eval).run();
  ASSERT_TRUE(r.feasible);
  opt::YieldOptions opts;
  opts.samples = 300;
  opts.sigma_gate = 0.03;
  opts.sigma_die = 0.0;
  const opt::YieldResult y = opt::YieldAnalyzer(eval, opts).analyze(r.state);
  EXPECT_GT(y.mean_leakage, r.energy.static_energy);
}

TEST(Yield, DeterministicGivenSeed) {
  Netlist nl = make_circuit();
  const tech::Technology tech = tech::Technology::generic350();
  const opt::CircuitEvaluator eval(nl, tech, profile(),
                                   {.clock_frequency = 200e6});
  const opt::CircuitState state = opt::CircuitState::uniform(nl, 1.0, 0.2, 4.0);
  opt::YieldOptions opts;
  opts.samples = 50;
  const opt::YieldResult a = opt::YieldAnalyzer(eval, opts).analyze(state);
  const opt::YieldResult b = opt::YieldAnalyzer(eval, opts).analyze(state);
  EXPECT_EQ(a.timing_pass, b.timing_pass);
  EXPECT_EQ(a.energy_samples, b.energy_samples);
}

TEST(Yield, SamplesSortedAndSized) {
  Netlist nl = make_circuit();
  const tech::Technology tech = tech::Technology::generic350();
  const opt::CircuitEvaluator eval(nl, tech, profile(),
                                   {.clock_frequency = 200e6});
  const opt::CircuitState state = opt::CircuitState::uniform(nl, 1.0, 0.2, 4.0);
  opt::YieldOptions opts;
  opts.samples = 64;
  const opt::YieldResult y = opt::YieldAnalyzer(eval, opts).analyze(state);
  ASSERT_EQ(y.energy_samples.size(), 64u);
  EXPECT_TRUE(std::is_sorted(y.energy_samples.begin(),
                             y.energy_samples.end()));
}

// ------------------------------------------------------- dead-logic sweep

TEST(SweepDeadLogic, RemovesUnobservedCone) {
  Netlist nl = netlist::parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
y = NAND(a, b)
dead1 = NOR(a, b)
dead2 = NOT(dead1)
)");
  const Netlist swept = netlist::sweep_dead_logic(nl);
  EXPECT_EQ(swept.num_combinational(), 1u);
  EXPECT_NE(swept.find("y"), netlist::kInvalidGate);
  EXPECT_EQ(swept.find("dead1"), netlist::kInvalidGate);
}

TEST(SweepDeadLogic, DeadRegisterLoopRemoved) {
  Netlist nl = netlist::parse_bench_string(R"(
INPUT(a)
OUTPUT(y)
y = NOT(a)
q = DFF(d)
d = NOT(q)
)");
  const Netlist swept = netlist::sweep_dead_logic(nl);
  EXPECT_TRUE(swept.dffs().empty());
  EXPECT_EQ(swept.num_combinational(), 1u);
}

TEST(SweepDeadLogic, LiveRegisterFeedbackKept) {
  Netlist nl = netlist::parse_bench_string(R"(
INPUT(a)
OUTPUT(y)
q = DFF(d)
d = XOR(a, q)
y = NOT(q)
)");
  const Netlist swept = netlist::sweep_dead_logic(nl);
  EXPECT_EQ(swept.dffs().size(), 1u);
  EXPECT_EQ(swept.num_combinational(), 2u);
}

TEST(SweepDeadLogic, CleanCircuitUnchanged) {
  Netlist nl = make_circuit();  // generator guarantees everything observed
  const Netlist swept = netlist::sweep_dead_logic(nl);
  EXPECT_EQ(swept.num_combinational(), nl.num_combinational());
  EXPECT_EQ(swept.dffs().size(), nl.dffs().size());
}

}  // namespace
}  // namespace minergy
