#include <gtest/gtest.h>

#include <cmath>

#include "spice/transient_sim.h"

namespace minergy::spice {
namespace {

struct Fixture {
  tech::Technology tech = tech::Technology::generic350();
  tech::DeviceModel dev{tech};
  TransientSim sim{dev};
};

TEST(TransientSim, StackCurrentShape) {
  Fixture f;
  StageConfig cfg;
  cfg.width = 4.0;
  cfg.fanin = 1;
  // Zero at Vds = 0; saturates at large Vds; monotone in between.
  EXPECT_DOUBLE_EQ(f.sim.stack_current(cfg, 1.0, 0.0, 0.2), 0.0);
  double prev = 0.0;
  for (double vds = 0.05; vds <= 1.0; vds += 0.05) {
    const double i = f.sim.stack_current(cfg, 1.0, vds, 0.2);
    EXPECT_GE(i, prev);
    prev = i;
  }
  // Saturated value approaches the model's drive current.
  const double isat = 4.0 * f.dev.idrive_per_wunit(1.0, 0.2);
  EXPECT_NEAR(f.sim.stack_current(cfg, 1.0, 1.0, 0.2), isat, 0.05 * isat);
}

TEST(TransientSim, StackCurrentDividesByFanin) {
  Fixture f;
  StageConfig inv;
  inv.fanin = 1;
  StageConfig nand3 = inv;
  nand3.fanin = 3;
  const double i1 = f.sim.stack_current(inv, 1.0, 1.0, 0.2);
  const double i3 = f.sim.stack_current(nand3, 1.0, 1.0, 0.2);
  EXPECT_NEAR(i1 / i3, 3.0, 1e-9);
}

TEST(TransientSim, OffStateLeakageOnly) {
  Fixture f;
  StageConfig cfg;
  cfg.width = 2.0;
  const double i = f.sim.stack_current(cfg, 0.0, 1.0, 0.3);
  EXPECT_NEAR(i, 2.0 * f.dev.ioff_per_wunit(0.3), 0.01 * i + 1e-18);
}

TEST(TransientSim, WaveformDischargesMonotonically) {
  Fixture f;
  StageConfig cfg;
  const Waveform w = f.sim.simulate(cfg, 1.2, 0.25);
  ASSERT_GT(w.time.size(), 10u);
  EXPECT_DOUBLE_EQ(w.vout.front(), 1.2);
  for (std::size_t i = 1; i < w.vout.size(); ++i) {
    EXPECT_LE(w.vout[i], w.vout[i - 1] + 1e-12);
  }
  EXPECT_LT(w.vout.back(), 0.01 * 1.2);  // fully discharged
}

TEST(TransientSim, DelayPositiveAndFinite) {
  Fixture f;
  StageConfig cfg;
  const double d = f.sim.propagation_delay(cfg, 1.2, 0.25);
  EXPECT_GT(d, 0.0);
  EXPECT_LT(d, 1e-6);
}

TEST(TransientSim, DelayScalesWithLoad) {
  Fixture f;
  StageConfig light;
  light.load_cap = 5e-15;
  StageConfig heavy = light;
  heavy.load_cap = 20e-15;
  const double dl = f.sim.propagation_delay(light, 1.2, 0.25);
  const double dh = f.sim.propagation_delay(heavy, 1.2, 0.25);
  EXPECT_NEAR(dh / dl, 4.0, 1.0);  // ~linear in C
}

TEST(TransientSim, DelayShrinksWithWidth) {
  Fixture f;
  StageConfig narrow;
  narrow.width = 2.0;
  StageConfig wide = narrow;
  wide.width = 8.0;
  EXPECT_GT(f.sim.propagation_delay(narrow, 1.2, 0.25),
            f.sim.propagation_delay(wide, 1.2, 0.25));
}

TEST(TransientSim, SubthresholdStillSwitches) {
  Fixture f;
  StageConfig cfg;
  cfg.input_rise_time = 1e-9;
  const double sub = f.sim.propagation_delay(cfg, 0.25, 0.35);
  const double super = f.sim.propagation_delay(cfg, 1.2, 0.35);
  EXPECT_GT(sub, 0.0);
  EXPECT_GT(sub, 10.0 * super);
}

TEST(TransientSim, ChainDelayAccumulates) {
  Fixture f;
  StageConfig cfg;
  const double d1 = f.sim.chain_delay(cfg, 1, 1.2, 0.25);
  const double d4 = f.sim.chain_delay(cfg, 4, 1.2, 0.25);
  EXPECT_GT(d4, 3.0 * d1);
  EXPECT_LT(d4, 8.0 * d1);  // slope effect bounded
}

// The "HSPICE validation" role: across an operating grid, the closed-form
// switching delay Vdd*C / (2*I) must track the numerically integrated 50%
// crossing within a factor band (the transient includes the full Vds
// trajectory and input ramp that the closed form averages away).
class ModelValidation
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(ModelValidation, ClosedFormTracksTransient) {
  const auto [vdd, vts, width] = GetParam();
  Fixture f;
  StageConfig cfg;
  cfg.width = width;
  cfg.load_cap = 12e-15;
  cfg.input_rise_time = 1e-12;  // near-step input isolates the RC physics
  const double simulated = f.sim.propagation_delay(cfg, vdd, vts);
  ASSERT_GT(simulated, 0.0);
  const double drive = cfg.width * f.dev.idrive_per_wunit(vdd, vts);
  const double closed_form = 0.5 * vdd * cfg.load_cap / drive;
  const double ratio = simulated / closed_form;
  EXPECT_GT(ratio, 0.4) << "vdd=" << vdd << " vts=" << vts;
  EXPECT_LT(ratio, 2.5) << "vdd=" << vdd << " vts=" << vts;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelValidation,
    ::testing::Combine(::testing::Values(0.6, 1.0, 1.8, 2.6, 3.3),
                       ::testing::Values(0.15, 0.3, 0.5),
                       ::testing::Values(2.0, 8.0)));

}  // namespace
}  // namespace minergy::spice
