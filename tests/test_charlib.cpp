#include <gtest/gtest.h>

#include "charlib/charlib.h"
#include "spice/transient_sim.h"

namespace minergy::charlib {
namespace {

using netlist::GateType;

struct Fixture {
  tech::Technology tech = tech::Technology::generic350();
  tech::DeviceModel dev{tech};
  Characterizer chr{dev, 0.9, 0.15};
};

TEST(CellName, Defaults) {
  EXPECT_EQ(cell_name({GateType::kNand, 2, 4.0, ""}), "NAND2_W4");
  EXPECT_EQ(cell_name({GateType::kNot, 1, 2.0, ""}), "NOT_W2");
  EXPECT_EQ(cell_name({GateType::kNor, 3, 8.0, ""}), "NOR3_W8");
  EXPECT_EQ(cell_name({GateType::kAnd, 2, 1.0, "CUSTOM"}), "CUSTOM");
}

TEST(LibertyFunction, Strings) {
  EXPECT_EQ(liberty_function(GateType::kNand, 2), "!(A0 * A1)");
  EXPECT_EQ(liberty_function(GateType::kNor, 3), "!(A0 + A1 + A2)");
  EXPECT_EQ(liberty_function(GateType::kXor, 2), "(A0 ^ A1)");
  EXPECT_EQ(liberty_function(GateType::kNot, 1), "!(A0)");
  EXPECT_EQ(liberty_function(GateType::kBuf, 1), "(A0)");
}

TEST(Characterizer, DelayMonotoneInLoadAndSlew) {
  Fixture f;
  const CellSpec spec{GateType::kNand, 2, 4.0, ""};
  double prev = 0.0;
  for (double load = 1e-15; load <= 64e-15; load *= 2.0) {
    const double d = f.chr.cell_delay(spec, 50e-12, load);
    EXPECT_GT(d, prev);
    prev = d;
  }
  prev = 0.0;
  for (double slew = 0.0; slew <= 400e-12; slew += 50e-12) {
    const double d = f.chr.cell_delay(spec, slew, 10e-15);
    EXPECT_GE(d, prev);
    prev = d;
  }
}

TEST(Characterizer, WiderCellIsFasterUnderFixedLoad) {
  Fixture f;
  const double d2 =
      f.chr.cell_delay({GateType::kNand, 2, 2.0, ""}, 50e-12, 20e-15);
  const double d8 =
      f.chr.cell_delay({GateType::kNand, 2, 8.0, ""}, 50e-12, 20e-15);
  EXPECT_LT(d8, d2);
}

TEST(Characterizer, StackFactorSlowsWideFanin) {
  Fixture f;
  const double d2 =
      f.chr.cell_delay({GateType::kNand, 2, 4.0, ""}, 0.0, 20e-15);
  const double d4 =
      f.chr.cell_delay({GateType::kNand, 4, 4.0, ""}, 0.0, 20e-15);
  EXPECT_GT(d4, d2);
}

TEST(Characterizer, TableShapeAndValues) {
  Fixture f;
  const CellData cell = f.chr.characterize({GateType::kNor, 2, 4.0, ""});
  ASSERT_EQ(cell.timing.slews.size(), 5u);
  ASSERT_EQ(cell.timing.loads.size(), 5u);
  ASSERT_EQ(cell.timing.delay.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    ASSERT_EQ(cell.timing.delay[i].size(), 5u);
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_GT(cell.timing.delay[i][j], 0.0);
      EXPECT_GT(cell.timing.transition[i][j], 0.0);
      if (j > 0) {
        EXPECT_GT(cell.timing.delay[i][j], cell.timing.delay[i][j - 1]);
      }
      if (i > 0) {
        EXPECT_GE(cell.timing.delay[i][j], cell.timing.delay[i - 1][j]);
      }
    }
  }
  EXPECT_GT(cell.input_cap, 0.0);
  EXPECT_GT(cell.leakage_power, 0.0);
  EXPECT_GT(cell.area, 0.0);
}

TEST(Characterizer, LeakageScalesWithThreshold) {
  Fixture f;
  const Characterizer low(f.dev, 0.9, 0.12);
  const Characterizer high(f.dev, 0.9, 0.30);
  const CellSpec spec{GateType::kNot, 1, 4.0, ""};
  const CellData a = low.characterize(spec);
  const CellData b = high.characterize(spec);
  EXPECT_GT(a.leakage_power, 10.0 * b.leakage_power);
}

TEST(Characterizer, AgreesWithTransientSimulation) {
  // Characterized delay vs the numerical integrator at matching
  // conditions (inverter, step input): same constant-factor band the
  // Appendix-A validation establishes.
  Fixture f;
  const spice::TransientSim sim(f.dev);
  const CellSpec spec{GateType::kNot, 1, 4.0, ""};
  for (double load : {6e-15, 24e-15}) {
    spice::StageConfig cfg;
    cfg.width = spec.width;
    cfg.fanin = 1;
    cfg.load_cap = load + spec.width * f.dev.cpar_per_wunit();
    cfg.input_rise_time = 1e-12;
    const double simulated = sim.propagation_delay(cfg, 0.9, 0.15);
    const double characterized = f.chr.cell_delay(spec, 0.0, load);
    ASSERT_GT(simulated, 0.0);
    const double ratio = simulated / characterized;
    EXPECT_GT(ratio, 0.4) << "load " << load;
    EXPECT_LT(ratio, 2.5) << "load " << load;
  }
}

TEST(LibertyExport, StructurallySound) {
  Fixture f;
  std::vector<CellData> cells;
  cells.push_back(f.chr.characterize({GateType::kNot, 1, 2.0, ""}));
  cells.push_back(f.chr.characterize({GateType::kNand, 2, 4.0, ""}));
  cells.push_back(f.chr.characterize({GateType::kNor, 3, 4.0, ""}));
  const std::string lib = export_liberty("minergy_lp", f.chr, cells);

  EXPECT_NE(lib.find("library (minergy_lp)"), std::string::npos);
  EXPECT_NE(lib.find("nom_voltage : 0.9"), std::string::npos);
  EXPECT_NE(lib.find("cell (NOT_W2)"), std::string::npos);
  EXPECT_NE(lib.find("cell (NAND2_W4)"), std::string::npos);
  EXPECT_NE(lib.find("cell (NOR3_W4)"), std::string::npos);
  EXPECT_NE(lib.find("function : \"!(A0 * A1)\""), std::string::npos);
  EXPECT_NE(lib.find("lu_table_template (delay_template)"),
            std::string::npos);
  // One timing arc with four tables per cell.
  auto count = [&](const std::string& needle) {
    std::size_t n = 0, pos = 0;
    while ((pos = lib.find(needle, pos)) != std::string::npos) {
      ++n;
      pos += needle.size();
    }
    return n;
  };
  EXPECT_EQ(count("cell_rise"), 3u);
  EXPECT_EQ(count("rise_transition"), 3u);
  EXPECT_EQ(count("pin (Y)"), 3u);
  // NOR3 has three input pins.
  EXPECT_EQ(count("pin (A2)"), 1u);
  // Braces balance.
  EXPECT_EQ(count("{"), count("}"));
}

TEST(LibertyExport, Deterministic) {
  Fixture f;
  std::vector<CellData> cells{f.chr.characterize({GateType::kNot, 1, 2.0, ""})};
  EXPECT_EQ(export_liberty("x", f.chr, cells),
            export_liberty("x", f.chr, cells));
}

}  // namespace
}  // namespace minergy::charlib
