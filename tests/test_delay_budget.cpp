#include <gtest/gtest.h>

#include <cmath>

#include "netlist/bench_io.h"
#include "netlist/generator.h"
#include "timing/delay_budget.h"

namespace minergy::timing {
namespace {

using netlist::GateId;
using netlist::Netlist;

constexpr double kTc = 3.33e-9;

TEST(DelayBudgeter, ChainGetsEqualFanoutProportionalShares) {
  // A pure chain: every gate has one branch, so the paper's Eq. (2) gives
  // each gate the same share b*Tc/3.
  Netlist nl = netlist::parse_bench_string(R"(
INPUT(a)
OUTPUT(y)
n1 = NOT(a)
n2 = NOT(n1)
y = NOT(n2)
)");
  DelayBudgeter budgeter(nl);
  BudgetOptions opts;
  opts.postprocess = false;
  const BudgetResult r = budgeter.assign(kTc, opts);
  const double share = opts.clock_skew_b * kTc / 3.0;
  EXPECT_NEAR(r.t_max[nl.find("n1")], share, share * 1e-9);
  EXPECT_NEAR(r.t_max[nl.find("n2")], share, share * 1e-9);
  EXPECT_NEAR(r.t_max[nl.find("y")], share, share * 1e-9);
  EXPECT_EQ(r.rounds, 1);
}

TEST(DelayBudgeter, HighFanoutGateGetsProportionallyMore) {
  // g1 drives 3 sinks; on the most critical path its share must be 3x the
  // single-branch gates' share (Eq. 2: t_MAX,i proportional to fanout).
  Netlist nl = netlist::parse_bench_string(R"(
INPUT(a)
OUTPUT(y1)
OUTPUT(y2)
OUTPUT(y3)
g1 = NOT(a)
g2 = NOT(g1)
y1 = NOT(g2)
y2 = NOT(g1)
y3 = NOT(g1)
)");
  DelayBudgeter budgeter(nl);
  BudgetOptions opts;
  opts.postprocess = false;
  const BudgetResult r = budgeter.assign(kTc, opts);
  EXPECT_NEAR(r.t_max[nl.find("g1")] / r.t_max[nl.find("g2")], 3.0, 1e-9);
}

TEST(DelayBudgeter, SecondPathGetsLeftoverBudget) {
  // After the critical path is budgeted, a second path sharing g1 must
  // distribute only what g1 left over (Eq. 3).
  Netlist nl = netlist::parse_bench_string(R"(
INPUT(a)
OUTPUT(y1)
OUTPUT(y2)
g1 = NOT(a)
g2 = NOT(g1)
y1 = NOT(g2)
y2 = NOT(g1)
)");
  DelayBudgeter budgeter(nl);
  BudgetOptions opts;
  opts.postprocess = false;
  const BudgetResult r = budgeter.assign(kTc, opts);
  const double cap = opts.clock_skew_b * kTc;
  // Critical path g1(2 branches), g2(1), y1(1): shares 2/4, 1/4, 1/4.
  EXPECT_NEAR(r.t_max[nl.find("g1")], cap * 0.5, cap * 1e-9);
  // Second path g1 -> y2: y2 receives cap - t(g1) = cap/2.
  EXPECT_NEAR(r.t_max[nl.find("y2")], cap * 0.5, cap * 1e-9);
  EXPECT_EQ(r.rounds, 2);
}

TEST(DelayBudgeter, AllGatesReceiveBudgets) {
  netlist::GeneratorSpec spec;
  spec.num_inputs = 8;
  spec.num_gates = 120;
  spec.depth = 10;
  spec.num_dffs = 6;
  spec.seed = 5;
  Netlist nl = netlist::generate_random_logic(spec);
  const BudgetResult r = DelayBudgeter(nl).assign(kTc);
  for (GateId id : nl.combinational()) {
    EXPECT_GT(r.t_max[id], 0.0) << nl.gate(id).name;
  }
}

TEST(DelayBudgeter, UniformAblationAlsoSafe) {
  netlist::GeneratorSpec spec;
  spec.num_inputs = 8;
  spec.num_gates = 100;
  spec.depth = 9;
  spec.seed = 6;
  Netlist nl = netlist::generate_random_logic(spec);
  DelayBudgeter budgeter(nl);
  const BudgetResult r = budgeter.assign_uniform(kTc);
  const double cap = BudgetOptions{}.clock_skew_b * kTc;
  EXPECT_LE(budgeter.longest_budget_path(r.t_max), cap * (1.0 + 1e-9));
}

TEST(DelayBudgeter, PostprocessReservesSlopeHeadroom) {
  // A chain with a huge-fanout first gate: the raw Eq.-2 assignment gives
  // the second gate far less than slope_reserve * t(g1); post-processing
  // must shift budget down the chain.
  Netlist nl = netlist::parse_bench_string(R"(
INPUT(a)
OUTPUT(y)
OUTPUT(z1)
OUTPUT(z2)
OUTPUT(z3)
OUTPUT(z4)
OUTPUT(z5)
g1 = NOT(a)
g2 = NOT(g1)
y = NOT(g2)
z1 = NOT(g1)
z2 = NOT(g1)
z3 = NOT(g1)
z4 = NOT(g1)
z5 = NOT(g1)
)");
  BudgetOptions opts;
  opts.slope_reserve = 0.35;
  const BudgetResult r = DelayBudgeter(nl).assign(kTc, opts);
  EXPECT_GT(r.slope_adjustments, 0);
  EXPECT_GE(r.t_max[nl.find("g2")],
            opts.slope_reserve * 0.5 * r.t_max[nl.find("g1")]);
}

TEST(DelayBudgeter, RescaleReportsFactor) {
  netlist::GeneratorSpec spec;
  spec.num_inputs = 6;
  spec.num_gates = 80;
  spec.depth = 8;
  spec.seed = 7;
  Netlist nl = netlist::generate_random_logic(spec);
  const BudgetResult r = DelayBudgeter(nl).assign(kTc);
  EXPECT_GT(r.rescale_factor, 0.0);
  EXPECT_LE(r.rescale_factor, 1.0);
}

TEST(DelayBudgeter, BudgetsScaleLinearlyWithCycleTime) {
  netlist::GeneratorSpec spec;
  spec.num_inputs = 6;
  spec.num_gates = 50;
  spec.depth = 6;
  spec.seed = 8;
  Netlist nl = netlist::generate_random_logic(spec);
  DelayBudgeter budgeter(nl);
  const BudgetResult r1 = budgeter.assign(kTc);
  const BudgetResult r2 = budgeter.assign(2.0 * kTc);
  for (GateId id : nl.combinational()) {
    EXPECT_NEAR(r2.t_max[id], 2.0 * r1.t_max[id], 1e-9 * r1.t_max[id]);
  }
}

TEST(DelayBudgeter, RejectsBadArguments) {
  Netlist nl = netlist::parse_bench_string(
      "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n");
  DelayBudgeter budgeter(nl);
  EXPECT_THROW(budgeter.assign(0.0), std::logic_error);
  BudgetOptions opts;
  opts.clock_skew_b = 1.5;
  EXPECT_THROW(budgeter.assign(kTc, opts), std::logic_error);
}

// The paper's claimed invariant ("no circuit path with total delay larger
// than T_c"), across many random topologies, with and without
// post-processing.
class BudgetInvariant : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BudgetInvariant, NoBudgetPathExceedsSkewedCycleTime) {
  netlist::GeneratorSpec spec;
  spec.num_inputs = 7;
  spec.num_gates = 90;
  spec.depth = 9;
  spec.num_dffs = 5;
  spec.seed = GetParam();
  Netlist nl = netlist::generate_random_logic(spec);
  DelayBudgeter budgeter(nl);
  for (bool post : {false, true}) {
    BudgetOptions opts;
    opts.postprocess = post;
    const BudgetResult r = budgeter.assign(kTc, opts);
    const double cap = opts.clock_skew_b * kTc;
    EXPECT_LE(r.longest_budget_path, cap * (1.0 + 1e-9))
        << "postprocess=" << post;
    EXPECT_LE(budgeter.longest_budget_path(r.t_max), cap * (1.0 + 1e-9));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BudgetInvariant,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 22, 33, 44, 55));

}  // namespace
}  // namespace minergy::timing
