// Observability layer: counters/gauges/histograms, Chrome-trace spans, and
// the RunReport telemetry carried by every OptimizationResult.
//
// Metric-collection state is process-global, so every test restores the
// enabled flag and resets the registry/tracer it touched (the ObsTest
// fixture); the suite runs under the CTest label `obs`.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "bench_suite/iscas.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "opt/evaluator.h"
#include "opt/joint_optimizer.h"
#include "opt/robust_optimizer.h"
#include "util/check.h"
#include "util/fault_injection.h"
#include "util/json.h"

namespace minergy {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = obs::enabled();
    obs::Registry::instance().reset();
    obs::Tracer::instance().clear();
  }
  void TearDown() override {
    obs::set_enabled(was_enabled_);
    obs::Registry::instance().reset();
    obs::Tracer::instance().clear();
  }

 private:
  bool was_enabled_ = false;
};

// --- counters / gauges / histograms ----------------------------------------

TEST_F(ObsTest, DisabledCountersHaveNoSideEffects) {
  obs::set_enabled(false);
  obs::Counter& c = obs::counter("test.disabled.counter");
  c.reset();
  for (int i = 0; i < 1000; ++i) c.add();
  EXPECT_EQ(c.value(), 0);

  obs::Histogram& h = obs::histogram("test.disabled.hist");
  h.reset();
  h.record(42.0);
  EXPECT_EQ(h.count(), 0);
  {
    const obs::ScopedTimer timer(h);
  }
  EXPECT_EQ(h.count(), 0);
}

TEST_F(ObsTest, ConcurrentIncrementsAreLossless) {
  obs::set_enabled(true);
  obs::Counter& c = obs::counter("test.concurrent.counter");
  c.reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::int64_t>(kThreads) * kPerThread);
}

TEST_F(ObsTest, RegistryReturnsStableReferences) {
  obs::set_enabled(true);
  obs::Counter& a = obs::counter("test.stable");
  obs::Counter& b = obs::counter("test.stable");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3);
}

TEST_F(ObsTest, HistogramPercentilesBracketRecordedValues) {
  obs::set_enabled(true);
  obs::Histogram& h = obs::histogram("test.hist.percentile");
  h.reset();
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000);
  const double p50 = h.percentile(0.50);
  const double p95 = h.percentile(0.95);
  // Log-bucketed: answers are upper bounds of the containing power-of-two
  // bucket, within a factor of 2 of the exact order statistic.
  EXPECT_GE(p50, 500.0 / 2.0);
  EXPECT_LE(p50, 500.0 * 2.0);
  EXPECT_GE(p95, p50);
  EXPECT_LE(p95, 950.0 * 2.0);
}

// --- tracer -----------------------------------------------------------------

TEST_F(ObsTest, TraceJsonIsWellFormedAndNested) {
  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.start();
  {
    const obs::Span outer("outer");
    {
      const obs::Span inner("inner");
    }
    {
      const obs::Span inner2("inner2");
    }
    tracer.instant("marker", "test");
  }
  tracer.stop();
  ASSERT_EQ(tracer.event_count(), 4u);

  const util::JsonValue root =
      util::JsonValue::parse(tracer.to_json(), "trace");
  const auto& events = root.at("traceEvents").items();
  ASSERT_EQ(events.size(), 4u);
  // Spans close innermost-first; the RAII order guarantees proper nesting.
  double outer_ts = 0.0, outer_end = 0.0;
  for (const util::JsonValue& e : events) {
    if (e.at("name").as_string() == "outer") {
      outer_ts = e.at("ts").as_number();
      outer_end = outer_ts + e.at("dur").as_number();
    }
  }
  for (const util::JsonValue& e : events) {
    if (e.at("ph").as_string() != "X") continue;
    const double ts = e.at("ts").as_number();
    const double end = ts + e.at("dur").as_number();
    EXPECT_GE(ts, outer_ts - 1e-6);
    EXPECT_LE(end, outer_end + 1e-6);
  }
}

TEST_F(ObsTest, InactiveTracerRecordsNothing) {
  obs::Tracer& tracer = obs::Tracer::instance();
  ASSERT_FALSE(tracer.active());
  {
    const obs::Span span("should.not.appear");
    tracer.instant("neither", "test");
  }
  EXPECT_EQ(tracer.event_count(), 0u);
}

// --- run report -------------------------------------------------------------

obs::RunReport make_report() {
  obs::RunReport rep;
  rep.optimizer = "joint";
  rep.circuit = "c17";
  rep.feasible = true;
  rep.vdd = 0.42;
  rep.vts_primary = 0.17;
  rep.energy_total = 3.25e-15;
  rep.static_energy = 1.0e-15;
  rep.dynamic_energy = 2.25e-15;
  rep.critical_delay = 2.5e-9;
  rep.runtime_seconds = 0.125;
  rep.circuit_evaluations = 321;
  rep.tier = "joint";
  rep.truncated = true;
  rep.truncation_reason = "wall clock";
  for (int i = 0; i < 3; ++i) {
    obs::TrajectoryPoint p;
    p.phase = i == 2 ? "refine" : "sweep";
    p.vdd = 1.0 - 0.1 * i;
    p.vts = 0.1 + 0.01 * i;
    p.energy = 1e-14 / (i + 1);
    p.critical_delay = 2e-9;
    p.feasible = true;
    p.accepted = i != 1;
    rep.add_point(std::move(p));
  }
  obs::TierRecord t;
  t.tier = "joint";
  t.wall_seconds = 0.125;
  t.selected = true;
  rep.tiers.push_back(std::move(t));
  rep.counters["opt.joint.probes"] = 321;
  return rep;
}

TEST_F(ObsTest, RunReportRoundTripsThroughJson) {
  const obs::RunReport rep = make_report();
  const obs::RunReport back = obs::RunReport::from_json(rep.to_json());

  EXPECT_EQ(back.optimizer, rep.optimizer);
  EXPECT_EQ(back.circuit, rep.circuit);
  EXPECT_EQ(back.feasible, rep.feasible);
  EXPECT_DOUBLE_EQ(back.vdd, rep.vdd);
  EXPECT_DOUBLE_EQ(back.energy_total, rep.energy_total);
  EXPECT_DOUBLE_EQ(back.critical_delay, rep.critical_delay);
  EXPECT_EQ(back.circuit_evaluations, rep.circuit_evaluations);
  EXPECT_EQ(back.tier, rep.tier);
  EXPECT_TRUE(back.truncated);
  EXPECT_EQ(back.truncation_reason, rep.truncation_reason);

  ASSERT_EQ(back.trajectory.size(), rep.trajectory.size());
  for (std::size_t i = 0; i < rep.trajectory.size(); ++i) {
    EXPECT_EQ(back.trajectory[i].iteration, rep.trajectory[i].iteration);
    EXPECT_EQ(back.trajectory[i].phase, rep.trajectory[i].phase);
    EXPECT_DOUBLE_EQ(back.trajectory[i].energy, rep.trajectory[i].energy);
    EXPECT_EQ(back.trajectory[i].accepted, rep.trajectory[i].accepted);
  }
  ASSERT_EQ(back.tiers.size(), 1u);
  EXPECT_EQ(back.tiers[0].tier, "joint");
  EXPECT_TRUE(back.tiers[0].selected);
  EXPECT_EQ(back.counters.at("opt.joint.probes"), 321);

  const std::vector<double> acc = back.accepted_energies();
  ASSERT_EQ(acc.size(), 2u);
  EXPECT_GE(acc[0], acc[1]);
}

TEST_F(ObsTest, RunReportRejectsWrongSchema) {
  EXPECT_THROW(obs::RunReport::from_json("{\"schema\":\"bogus.v9\"}"),
               util::ParseError);
  EXPECT_THROW(obs::RunReport::from_json("not json at all"),
               util::ParseError);
}

// --- end-to-end: optimizer runs fill the report ------------------------------

TEST_F(ObsTest, JointRunProducesMonotoneAcceptedTrajectory) {
  obs::set_enabled(true);
  const netlist::Netlist nl = bench_suite::make_circuit("c17");
  activity::ActivityProfile profile;
  profile.input_density = 0.3;
  const opt::CircuitEvaluator eval(nl, tech::Technology::generic350(),
                                   profile, {.clock_frequency = 100e6});
  const opt::OptimizationResult r = opt::JointOptimizer(eval).run();
  ASSERT_TRUE(r.feasible);

  const obs::RunReport& rep = r.report;
  EXPECT_EQ(rep.optimizer, "joint");
  EXPECT_EQ(rep.circuit, nl.name());
  EXPECT_TRUE(rep.feasible);
  EXPECT_DOUBLE_EQ(rep.energy_total, r.energy.total());
  EXPECT_FALSE(rep.trajectory.empty());

  const std::vector<double> acc = rep.accepted_energies();
  ASSERT_FALSE(acc.empty());
  for (std::size_t i = 1; i < acc.size(); ++i) {
    EXPECT_LE(acc[i], acc[i - 1] * (1.0 + 1e-12))
        << "accepted energy rose at index " << i;
  }
  // The final accepted energy is the returned optimum.
  EXPECT_NEAR(acc.back(), r.energy.total(), 1e-9 * r.energy.total());

  // Counters attributed to the run.
  EXPECT_GT(rep.counters.at("opt.joint.probes"), 0);
  EXPECT_GT(rep.counters.at("opt.eval.sta_calls"), 0);
}

TEST_F(ObsTest, RobustRunRecordsSelectedTier) {
  const netlist::Netlist nl = bench_suite::make_circuit("c17");
  activity::ActivityProfile profile;
  profile.input_density = 0.3;
  const opt::CircuitEvaluator eval(nl, tech::Technology::generic350(),
                                   profile, {.clock_frequency = 100e6});
  const opt::OptimizationResult r = opt::RobustOptimizer(eval).run();
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.report.optimizer, "robust");
  ASSERT_FALSE(r.report.tiers.empty());
  int selected = 0;
  for (const obs::TierRecord& t : r.report.tiers) {
    EXPECT_GE(t.wall_seconds, 0.0);
    if (t.selected) {
      ++selected;
      EXPECT_TRUE(t.failure_reason.empty());
      EXPECT_EQ(t.tier, r.report.tier);
    } else {
      EXPECT_FALSE(t.failure_reason.empty());
    }
  }
  EXPECT_EQ(selected, 1);
}

TEST_F(ObsTest, FaultCatalogTallyFillsCounterFamily) {
  obs::set_enabled(true);
  const fault::CatalogTally tally = fault::run_fault_catalogs();
  EXPECT_EQ(tally.total_fail(), 0)
      << "fault contract broken: " << tally.failures.size() << " cases";
  EXPECT_GT(tally.tech_pass, 0);
  EXPECT_GT(tally.parser_pass, 0);
  EXPECT_GT(tally.netlist_pass, 0);
  EXPECT_GT(tally.stress_pass, 0);
  EXPECT_EQ(obs::counter("fault.tech.pass").value(), tally.tech_pass);
  EXPECT_EQ(obs::counter("fault.parser.pass").value(), tally.parser_pass);
  EXPECT_EQ(obs::counter("fault.netlist.pass").value(), tally.netlist_pass);
  EXPECT_EQ(obs::counter("fault.stress.pass").value(), tally.stress_pass);
  EXPECT_EQ(obs::counter("fault.tech.fail").value(), 0);
}

}  // namespace
}  // namespace minergy
