#include <gtest/gtest.h>

#include "netlist/bench_io.h"
#include "netlist/generator.h"
#include "netlist/stats.h"
#include "netlist/transform.h"
#include "sim/logic_sim.h"
#include "util/rng.h"

namespace minergy::netlist {
namespace {

// Exhaustive (or randomized for wide circuits) equivalence check of the
// combinational cores, including DFF next-state functions: drive identical
// source values into both netlists and compare every sink.
void expect_equivalent(const Netlist& a, const Netlist& b, int vectors = 0) {
  ASSERT_EQ(a.primary_inputs().size(), b.primary_inputs().size());
  ASSERT_EQ(a.dffs().size(), b.dffs().size());
  sim::LogicSimulator sa(a), sb(b);
  const std::size_t sources = a.sources().size();
  util::Rng rng(123);
  const bool exhaustive = sources <= 16 && vectors == 0;
  const int count = exhaustive ? (1 << sources) : (vectors ? vectors : 500);
  for (int v = 0; v < count; ++v) {
    for (std::size_t i = 0; i < sources; ++i) {
      const bool bit =
          exhaustive ? ((v >> i) & 1) != 0 : rng.bernoulli(0.5);
      const GateId ga = a.sources()[i];
      const GateId gb = b.find(a.gate(ga).name);
      ASSERT_NE(gb, kInvalidGate) << a.gate(ga).name;
      if (a.gate(ga).type == GateType::kInput) {
        sa.set_input(ga, bit);
        sb.set_input(gb, bit);
      } else {
        sa.set_state(ga, bit);
        sb.set_state(gb, bit);
      }
    }
    sa.evaluate();
    sb.evaluate();
    // Compare primary outputs and DFF D-pins by name.
    for (GateId id : a.primary_outputs()) {
      const GateId other = b.find(a.gate(id).name);
      ASSERT_NE(other, kInvalidGate);
      EXPECT_EQ(sa.value(id), sb.value(other))
          << "PO " << a.gate(id).name << " vector " << v;
    }
    for (GateId id : a.dffs()) {
      if (a.gate(id).fanins.empty()) continue;
      const GateId da = a.gate(id).fanins[0];
      const GateId qb = b.find(a.gate(id).name);
      ASSERT_NE(qb, kInvalidGate);
      ASSERT_FALSE(b.gate(qb).fanins.empty());
      EXPECT_EQ(sa.value(da), sb.value(b.gate(qb).fanins[0]))
          << "DFF " << a.gate(id).name << " vector " << v;
    }
  }
}

TEST(Decompose, WideGatesBecomeTwoInput) {
  Netlist nl = parse_bench_string(R"(
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
INPUT(e)
OUTPUT(y)
OUTPUT(z)
y = NAND(a, b, c, d, e)
z = NOR(a, c, e)
)");
  Netlist two = decompose_to_two_input(nl);
  for (GateId id : two.combinational()) {
    EXPECT_LE(two.gate(id).fanin_count(), 2) << two.gate(id).name;
  }
  expect_equivalent(nl, two);
}

TEST(Decompose, InversionOnlyAtRoot) {
  Netlist nl = parse_bench_string(R"(
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
y = NAND(a, b, c, d)
)");
  Netlist two = decompose_to_two_input(nl);
  // Root keeps the name and the inverting type; inner nodes are AND.
  const GateId y = two.find("y");
  ASSERT_NE(y, kInvalidGate);
  EXPECT_EQ(two.gate(y).type, GateType::kNand);
  for (GateId id : two.combinational()) {
    if (id != y) {
      EXPECT_EQ(two.gate(id).type, GateType::kAnd);
    }
  }
}

TEST(Decompose, NarrowGatesPassThrough) {
  Netlist nl = parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
n = NOT(a)
y = XOR(n, b)
)");
  Netlist two = decompose_to_two_input(nl);
  EXPECT_EQ(two.num_combinational(), nl.num_combinational());
  expect_equivalent(nl, two);
}

TEST(Decompose, BalancedDepth) {
  // 8-input AND decomposes into a depth-3 balanced tree, not a chain.
  Netlist nl("wide");
  std::vector<GateId> ins;
  for (int i = 0; i < 8; ++i) ins.push_back(nl.add_input("i" + std::to_string(i)));
  const GateId y = nl.add_gate(GateType::kAnd, "y", ins);
  nl.mark_output(y);
  nl.finalize();
  Netlist two = decompose_to_two_input(nl);
  EXPECT_EQ(two.depth(), 3);
  EXPECT_EQ(two.num_combinational(), 7u);  // 4 + 2 + 1
}

TEST(Decompose, XnorParityPreserved) {
  Netlist nl = parse_bench_string(R"(
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
INPUT(e)
OUTPUT(y)
y = XNOR(a, b, c, d, e)
)");
  Netlist two = decompose_to_two_input(nl);
  expect_equivalent(nl, two);
}

TEST(Decompose, SequentialCircuitPreserved) {
  Netlist nl = parse_bench_string(R"(
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(o)
q = DFF(g)
g = NOR(a, b, c, q)
o = NOT(q)
)");
  Netlist two = decompose_to_two_input(nl);
  EXPECT_EQ(two.dffs().size(), 1u);
  expect_equivalent(nl, two);
}

TEST(Decompose, RandomCircuitsStayEquivalent) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    GeneratorSpec spec;
    spec.num_inputs = 8;
    spec.num_gates = 40;
    spec.depth = 6;
    spec.num_dffs = 3;
    spec.max_fanin = 4;
    spec.seed = seed;
    Netlist nl = generate_random_logic(spec);
    Netlist two = decompose_to_two_input(nl);
    expect_equivalent(nl, two, 300);
  }
}

TEST(BufferFanout, CapsEveryNet) {
  GeneratorSpec spec;
  spec.num_inputs = 6;
  spec.num_gates = 80;
  spec.depth = 8;
  spec.seed = 9;
  Netlist nl = generate_random_logic(spec);
  const int cap = 3;
  Netlist buffered = buffer_high_fanout(nl, cap);
  for (const Gate& g : buffered.gates()) {
    EXPECT_LE(g.fanouts.size(), static_cast<std::size_t>(cap)) << g.name;
  }
  expect_equivalent(nl, buffered, 300);
}

TEST(BufferFanout, NoChangeWhenUnderCap) {
  Netlist nl = parse_bench_string(R"(
INPUT(a)
OUTPUT(y)
n = NOT(a)
y = NOT(n)
)");
  Netlist buffered = buffer_high_fanout(nl, 4);
  EXPECT_EQ(buffered.num_combinational(), nl.num_combinational());
}

TEST(BufferFanout, TreeForVeryHighFanout) {
  // One driver with 20 sinks, cap 4: needs a two-level buffer tree.
  Netlist nl("star");
  const GateId a = nl.add_input("a");
  const GateId d = nl.add_gate(GateType::kNot, "d", {a});
  for (int i = 0; i < 20; ++i) {
    const GateId s = nl.add_gate(GateType::kNot, "s" + std::to_string(i), {d});
    nl.mark_output(s);
  }
  nl.finalize();
  Netlist buffered = buffer_high_fanout(nl, 4);
  for (const Gate& g : buffered.gates()) {
    EXPECT_LE(g.fanouts.size(), 4u) << g.name;
  }
  expect_equivalent(nl, buffered);
  EXPECT_GT(buffered.num_combinational(), nl.num_combinational());
}

TEST(BufferFanout, RejectsBadCap) {
  Netlist nl = parse_bench_string("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n");
  EXPECT_THROW(buffer_high_fanout(nl, 1), std::invalid_argument);
}

TEST(BufferFanout, DffSinksRewiredCorrectly) {
  Netlist nl("regs");
  const GateId a = nl.add_input("a");
  const GateId d = nl.add_gate(GateType::kNot, "d", {a});
  std::vector<GateId> qs;
  for (int i = 0; i < 6; ++i) {
    qs.push_back(nl.add_dff("q" + std::to_string(i), d));
  }
  const GateId o = nl.add_gate(GateType::kNand, "o", {qs[0], qs[1]});
  nl.mark_output(o);
  nl.finalize();
  Netlist buffered = buffer_high_fanout(nl, 3);
  for (const Gate& g : buffered.gates()) {
    EXPECT_LE(g.fanouts.size(), 3u) << g.name;
  }
  // Every DFF still has exactly one D connection, functionally d.
  EXPECT_EQ(buffered.dffs().size(), 6u);
  expect_equivalent(nl, buffered);
}

}  // namespace
}  // namespace minergy::netlist
