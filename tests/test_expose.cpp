// Exposition server + event log: the live-telemetry surface of PR 6.
//
// Covers the Prometheus renderer (name translation, cumulative buckets,
// percentile gauges), the HTTP responder's protocol behaviour (correct
// statuses for malformed traffic, never a crash), the publish/scrape path
// for /health-style documents, and the JSONL event log (strict seq
// ordering, size-cap rotation with continuation, disarmed no-op). The
// concurrent-scrape tests are the TSan oracle for the server's
// shared-state design; run them under MINERGY_SANITIZE=thread.
//
// Registry/EventLog state is process-global, so every test restores the
// enabled flag and resets what it touched (CTest label `obs`).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/eventlog.h"
#include "obs/expose.h"
#include "obs/metrics.h"
#include "util/json.h"

namespace minergy {
namespace {

class ExposeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = obs::enabled();
    obs::set_enabled(true);
    obs::Registry::instance().reset();
  }
  void TearDown() override {
    obs::ExpositionServer::instance().stop();
    obs::EventLog::instance().close();
    obs::set_enabled(was_enabled_);
    obs::Registry::instance().reset();
  }

 private:
  bool was_enabled_ = false;
};

// Raw-socket HTTP exchange: send `request` verbatim, read to EOF. The
// server speaks HTTP/1.0 Connection: close, so EOF delimits the response.
std::string http_exchange(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return {};
  }
  std::size_t off = 0;
  while (off < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + off, request.size() - off, 0);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string http_get(int port, const std::string& path) {
  return http_exchange(port, "GET " + path + " HTTP/1.0\r\n\r\n");
}

std::string status_line(const std::string& response) {
  return response.substr(0, response.find("\r\n"));
}

std::string body_of(const std::string& response) {
  const std::size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? std::string() : response.substr(pos + 4);
}

int start_ephemeral() {
  std::string error;
  EXPECT_TRUE(obs::ExpositionServer::instance().start(0, &error)) << error;
  const int port = obs::ExpositionServer::instance().port();
  EXPECT_GT(port, 0);
  return port;
}

// --- name translation ------------------------------------------------------

TEST_F(ExposeTest, PrometheusNameTranslation) {
  EXPECT_EQ(obs::prometheus_name("serve.job.e2e_micros"),
            "serve_job_e2e_micros");
  EXPECT_EQ(obs::prometheus_name("io.envelope.crc-mismatch"),
            "io_envelope_crc_mismatch");
  EXPECT_EQ(obs::prometheus_name("already_fine:name"), "already_fine:name");
}

TEST_F(ExposeTest, LabeledNameKeepsLabelSet) {
  const std::string name =
      obs::labeled_name("serve.breaker.state", "circuit", "s27");
  EXPECT_EQ(name, "serve.breaker.state{circuit=\"s27\"}");
  // The renderer sanitizes only the family, never the label set.
  EXPECT_EQ(obs::prometheus_name(name),
            "serve_breaker_state{circuit=\"s27\"}");
  // Quotes and backslashes in values are escaped, not injected.
  EXPECT_EQ(obs::labeled_name("f.g", "k", "a\"b\\c"),
            "f.g{k=\"a\\\"b\\\\c\"}");
}

// --- Prometheus rendering --------------------------------------------------

TEST_F(ExposeTest, RenderCountersGaugesHistograms) {
  obs::counter("test.expose.requests").add(7);
  obs::gauge("test.expose.depth").set(3.5);
  obs::Histogram& h = obs::histogram("test.expose.latency_micros");
  h.record(3.0);
  h.record(100.0);
  h.record(100000.0);

  const std::string text = obs::ExpositionServer::render_prometheus();
  EXPECT_NE(text.find("# TYPE test_expose_requests counter"),
            std::string::npos);
  EXPECT_NE(text.find("test_expose_requests 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_expose_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("test_expose_depth 3.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_expose_latency_micros histogram"),
            std::string::npos);
  EXPECT_NE(text.find("test_expose_latency_micros_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("test_expose_latency_micros_count 3"),
            std::string::npos);
  EXPECT_NE(text.find("test_expose_latency_micros_sum"), std::string::npos);
  EXPECT_NE(text.find("test_expose_latency_micros_p50"), std::string::npos);
  EXPECT_NE(text.find("test_expose_latency_micros_p99"), std::string::npos);
}

TEST_F(ExposeTest, HistogramBucketsAreCumulativeAndMonotone) {
  obs::Histogram& h = obs::histogram("test.expose.cumulative");
  for (int i = 0; i < 32; ++i) h.record(static_cast<double>(1 << (i % 12)));

  const std::string text = obs::ExpositionServer::render_prometheus();
  std::istringstream in(text);
  std::string line;
  std::int64_t prev = -1;
  std::int64_t inf_count = -1;
  std::int64_t total = -1;
  while (std::getline(in, line)) {
    if (line.rfind("test_expose_cumulative_bucket{", 0) == 0) {
      const std::int64_t v = std::stoll(line.substr(line.rfind(' ') + 1));
      EXPECT_GE(v, prev) << "bucket series must be cumulative: " << line;
      prev = v;
      if (line.find("le=\"+Inf\"") != std::string::npos) inf_count = v;
    } else if (line.rfind("test_expose_cumulative_count ", 0) == 0) {
      total = std::stoll(line.substr(line.rfind(' ') + 1));
    }
  }
  EXPECT_EQ(inf_count, 32);
  EXPECT_EQ(total, 32);
}

TEST_F(ExposeTest, EmptyHistogramOmitsQuantileSiblingsAndNeverRendersNan) {
  // A freshly started daemon registers latency histograms before any sample
  // lands. The family must still render (count 0, +Inf bucket 0) so scrapers
  // see the series exists, but the _p50/_p95/_p99 sibling gauges are
  // omitted: there is no meaningful quantile of nothing, and a NaN value
  // line breaks strict Prometheus parsers.
  obs::histogram("test.expose.empty_micros");
  const std::string text = obs::ExpositionServer::render_prometheus();
  EXPECT_NE(text.find("test_expose_empty_micros_bucket{le=\"+Inf\"} 0"),
            std::string::npos);
  EXPECT_NE(text.find("test_expose_empty_micros_count 0"), std::string::npos);
  EXPECT_EQ(text.find("test_expose_empty_micros_p50"), std::string::npos);
  EXPECT_EQ(text.find("test_expose_empty_micros_p95"), std::string::npos);
  EXPECT_EQ(text.find("test_expose_empty_micros_p99"), std::string::npos);
  EXPECT_EQ(text.find("nan"), std::string::npos) << text;
  EXPECT_EQ(text.find("NaN"), std::string::npos) << text;
  EXPECT_EQ(text.find("inf "), std::string::npos) << text;

  // Once a sample lands, the siblings appear with finite values.
  obs::histogram("test.expose.empty_micros").record(42.0);
  const std::string after = obs::ExpositionServer::render_prometheus();
  EXPECT_NE(after.find("test_expose_empty_micros_p50"), std::string::npos);
  EXPECT_EQ(after.find("nan"), std::string::npos) << after;
}

TEST_F(ExposeTest, LabeledGaugeRendersWithLabels) {
  obs::gauge(obs::labeled_name("serve.breaker.state", "circuit", "s27"))
      .set(1.0);
  const std::string text = obs::ExpositionServer::render_prometheus();
  EXPECT_NE(text.find("serve_breaker_state{circuit=\"s27\"} 1"),
            std::string::npos);
  // Exactly one TYPE line for the family even with many label children.
  obs::gauge(obs::labeled_name("serve.breaker.state", "circuit", "s298"))
      .set(0.0);
  const std::string again = obs::ExpositionServer::render_prometheus();
  const std::string type_line = "# TYPE serve_breaker_state gauge";
  const std::size_t first = again.find(type_line);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(again.find(type_line, first + 1), std::string::npos);
}

// --- HTTP behaviour --------------------------------------------------------

TEST_F(ExposeTest, StartStopEphemeralPort) {
  const int port = start_ephemeral();
  EXPECT_TRUE(obs::ExpositionServer::instance().running());
  EXPECT_GT(port, 0);
  // Double-start is refused, not fatal.
  std::string error;
  EXPECT_FALSE(obs::ExpositionServer::instance().start(0, &error));
  obs::ExpositionServer::instance().stop();
  EXPECT_FALSE(obs::ExpositionServer::instance().running());
  obs::ExpositionServer::instance().stop();  // idempotent
}

TEST_F(ExposeTest, ScrapeMetricsOverHttp) {
  obs::counter("test.expose.scraped").add(11);
  const int port = start_ephemeral();
  const std::string response = http_get(port, "/metrics");
  EXPECT_EQ(status_line(response), "HTTP/1.0 200 OK");
  EXPECT_NE(response.find("text/plain"), std::string::npos);
  EXPECT_NE(body_of(response).find("test_expose_scraped 11"),
            std::string::npos);
}

TEST_F(ExposeTest, PublishedDocumentServedFromMemory) {
  const int port = start_ephemeral();
  EXPECT_EQ(status_line(http_get(port, "/health")), "HTTP/1.0 404 Not Found");
  obs::ExpositionServer::instance().publish(
      "/health", "application/json",
      "{\"schema\":\"minergy.health.v1\",\"state\":\"serving\"}");
  const std::string response = http_get(port, "/health");
  EXPECT_EQ(status_line(response), "HTTP/1.0 200 OK");
  EXPECT_NE(body_of(response).find("\"state\":\"serving\""),
            std::string::npos);
  // publish replaces, never appends.
  obs::ExpositionServer::instance().publish(
      "/health", "application/json",
      "{\"schema\":\"minergy.health.v1\",\"state\":\"draining\"}");
  EXPECT_NE(body_of(http_get(port, "/health")).find("draining"),
            std::string::npos);
}

TEST_F(ExposeTest, PublishedStatusAndExtraHeadersAreServed) {
  // The brownout/degraded readiness path: /health publishes as 503 with a
  // Retry-After header so load balancers back off, while /metrics stays 200
  // (a browned-out service must remain scrapable).
  const int port = start_ephemeral();
  obs::ExpositionServer::instance().publish(
      "/health", "application/json",
      "{\"schema\":\"minergy.health.v1\",\"status\":\"degraded\"}", 503,
      "Retry-After: 3\r\n");
  const std::string response = http_get(port, "/health");
  EXPECT_EQ(status_line(response), "HTTP/1.0 503 Service Unavailable");
  EXPECT_NE(response.find("Retry-After: 3\r\n"), std::string::npos);
  EXPECT_NE(body_of(response).find("\"status\":\"degraded\""),
            std::string::npos);
  EXPECT_EQ(status_line(http_get(port, "/metrics")), "HTTP/1.0 200 OK");
  // Recovery republishes as a plain 200 with no stale extra headers.
  obs::ExpositionServer::instance().publish(
      "/health", "application/json",
      "{\"schema\":\"minergy.health.v1\",\"status\":\"ok\"}");
  const std::string recovered = http_get(port, "/health");
  EXPECT_EQ(status_line(recovered), "HTTP/1.0 200 OK");
  EXPECT_EQ(recovered.find("Retry-After"), std::string::npos);
}

TEST_F(ExposeTest, MalformedRequestsGetTypedErrorsNeverCrash) {
  const int port = start_ephemeral();
  EXPECT_EQ(status_line(http_exchange(port, "POST /metrics HTTP/1.0\r\n\r\n")),
            "HTTP/1.0 405 Method Not Allowed");
  EXPECT_EQ(status_line(http_get(port, "/no-such-path")),
            "HTTP/1.0 404 Not Found");
  EXPECT_EQ(status_line(http_exchange(port, "garbage\r\n\r\n")),
            "HTTP/1.0 400 Bad Request");
  // An unterminated request line past the cap is rejected, not buffered.
  const std::string oversized =
      "GET /" +
      std::string(obs::ExpositionServer::kMaxRequestBytes + 64, 'a');
  EXPECT_EQ(status_line(http_exchange(port, oversized)),
            "HTTP/1.0 400 Bad Request");
  // A client that connects and immediately hangs up is not an event.
  {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0);
    ::close(fd);
  }
  // The server survives all of the above and still serves.
  EXPECT_EQ(status_line(http_get(port, "/metrics")), "HTTP/1.0 200 OK");
}

TEST_F(ExposeTest, ConcurrentScrapeUnderLoad) {
  // The TSan oracle: writer threads mutate the Registry and republish
  // documents while scraper threads hammer every endpoint. Any lock or
  // atomic missing from the server's shared-state design fires here.
  obs::histogram("test.expose.load_micros");
  const int port = start_ephemeral();
  std::atomic<bool> stop{false};
  std::atomic<int> scrape_failures{0};

  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&stop, w] {
      obs::Counter& c = obs::counter("test.expose.load");
      obs::Histogram& h = obs::histogram("test.expose.load_micros");
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        c.add();
        h.record(static_cast<double>((i++ % 1000) + 1));
        obs::gauge("test.expose.load_gauge").set(static_cast<double>(i));
        if (i % 64 == 0) {
          obs::ExpositionServer::instance().publish(
              "/health", "application/json",
              "{\"state\":\"serving\",\"tick\":" + std::to_string(i) + "}");
        }
        (void)w;
      }
    });
  }
  std::vector<std::thread> scrapers;
  for (int s = 0; s < 3; ++s) {
    scrapers.emplace_back([&stop, &scrape_failures, port] {
      const char* paths[] = {"/metrics", "/health", "/metrics"};
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string response = http_get(port, paths[i++ % 3]);
        if (response.rfind("HTTP/1.0 ", 0) != 0) {
          scrape_failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : writers) t.join();
  for (std::thread& t : scrapers) t.join();
  EXPECT_EQ(scrape_failures.load(), 0);
  EXPECT_GT(obs::ExpositionServer::instance().requests_served(), 0);
}

// --- event log -------------------------------------------------------------

std::string scratch_log_path(const char* tag) {
  return ::testing::TempDir() + "minergy_eventlog_" + tag + "_" +
         std::to_string(::getpid()) + ".jsonl";
}

std::vector<util::JsonValue> read_events(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::vector<util::JsonValue> events;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    events.push_back(util::JsonValue::parse(line, path));
  }
  return events;
}

TEST_F(ExposeTest, EventLogLinesParseWithStrictSeq) {
  const std::string path = scratch_log_path("basic");
  std::string error;
  ASSERT_TRUE(obs::EventLog::instance().open(path, 1 << 20, &error)) << error;

  obs::Event claimed;
  claimed.kind = "job_claimed";
  claimed.job = "j-0001";
  claimed.circuit = "s27";
  claimed.attempt = 1;
  claimed.num.push_back({"queue_wait_s", 0.25});
  obs::event(claimed);

  obs::Event done;
  done.kind = "job_done";
  done.job = "j-0001";
  done.circuit = "s27";
  done.attempt = 1;
  obs::event(done);

  obs::EventLog::instance().close();

  const std::vector<util::JsonValue> events = read_events(path);
  ASSERT_EQ(events.size(), 2u);
  std::int64_t prev = 0;
  for (const util::JsonValue& e : events) {
    EXPECT_EQ(e.get_string("schema", ""), obs::kEventSchema);
    const std::int64_t seq = static_cast<std::int64_t>(e.at("seq").as_number());
    EXPECT_GT(seq, prev);
    prev = seq;
  }
  EXPECT_EQ(events[0].get_string("kind", ""), "job_claimed");
  EXPECT_EQ(events[0].get_string("span", ""), "j-0001#1");
  EXPECT_NEAR(events[0].get_number("queue_wait_s", 0.0), 0.25, 1e-12);
  EXPECT_EQ(events[1].get_string("kind", ""), "job_done");
  std::remove(path.c_str());
}

TEST_F(ExposeTest, EventLogRotatesAtSizeCapAndKeepsSeq) {
  const std::string path = scratch_log_path("rotate");
  std::string error;
  // A cap small enough that a handful of events forces rotation.
  ASSERT_TRUE(obs::EventLog::instance().open(path, 512, &error)) << error;
  for (int i = 0; i < 12; ++i) {
    obs::Event e;
    e.kind = "worker_spawned";
    e.detail = "padding padding padding padding padding";
    obs::event(e);
  }
  const std::int64_t final_seq = obs::EventLog::instance().last_seq();
  obs::EventLog::instance().close();

  const std::vector<util::JsonValue> tail = read_events(path);
  const std::vector<util::JsonValue> head = read_events(path + ".1");
  ASSERT_FALSE(tail.empty());
  ASSERT_FALSE(head.empty());
  // Single-level rotation: .1 holds the most recently rotated segment and
  // the live tail continues its seq with a log_rotated marker first —
  // never resetting or repeating, so the two files splice seamlessly.
  const std::int64_t head_last =
      static_cast<std::int64_t>(head.back().at("seq").as_number());
  EXPECT_EQ(static_cast<std::int64_t>(tail.front().at("seq").as_number()),
            head_last + 1);
  EXPECT_EQ(tail.front().get_string("kind", ""), "log_rotated");
  EXPECT_EQ(static_cast<std::int64_t>(tail.back().at("seq").as_number()),
            final_seq);
  std::int64_t prev = 0;
  for (const util::JsonValue& e : head) {
    const std::int64_t seq = static_cast<std::int64_t>(e.at("seq").as_number());
    EXPECT_GT(seq, prev);
    prev = seq;
  }
  for (const util::JsonValue& e : tail) {
    const std::int64_t seq = static_cast<std::int64_t>(e.at("seq").as_number());
    EXPECT_GT(seq, prev);
    prev = seq;
  }
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
}

TEST_F(ExposeTest, EventLogOpenRotatesPreviousRun) {
  const std::string path = scratch_log_path("reopen");
  std::string error;
  ASSERT_TRUE(obs::EventLog::instance().open(path, 1 << 20, &error)) << error;
  obs::Event e;
  e.kind = "daemon_start";
  obs::event(e);
  obs::EventLog::instance().close();

  // A second run rotates the first segment aside and restarts seq at 1 —
  // the verifier's claim/finalize pairing oracle depends on this.
  ASSERT_TRUE(obs::EventLog::instance().open(path, 1 << 20, &error)) << error;
  obs::Event e2;
  e2.kind = "daemon_start";
  obs::event(e2);
  obs::EventLog::instance().close();

  const std::vector<util::JsonValue> fresh = read_events(path);
  const std::vector<util::JsonValue> old = read_events(path + ".1");
  ASSERT_EQ(fresh.size(), 1u);
  ASSERT_EQ(old.size(), 1u);
  EXPECT_EQ(static_cast<std::int64_t>(fresh[0].at("seq").as_number()), 1);
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
}

TEST_F(ExposeTest, DisarmedEventIsNoOp) {
  obs::EventLog::instance().close();
  EXPECT_FALSE(obs::EventLog::instance().armed());
  obs::Event e;
  e.kind = "job_claimed";
  obs::event(e);  // must not crash, write, or arm
  EXPECT_FALSE(obs::EventLog::instance().armed());
}

}  // namespace
}  // namespace minergy
