// Storage-fault chaos for the optimization service: run the real
// minergy_served binary with an --inject-io schedule (src/io/fault_fs.h)
// that fails, tears, or shortens specific syscalls, then prove the same
// exactly-once contract the SIGKILL harness proves for process death —
// after a clean second pass, every submitted job sits in exactly one
// terminal state with a certified result or a typed failure, and the
// spool audits clean. Plus the degraded-mode path (ENOSPC pauses
// admissions, probes, resumes), typed ENOSPC submit rejection, and
// bit-exact anneal resume from an older checkpoint generation after the
// newest one is torn.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <fcntl.h>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "io/checkpoint.h"
#include "io/envelope.h"
#include "serve/job.h"
#include "serve/queue.h"
#include "util/json.h"

#ifndef MINERGY_SERVED_BIN
#error "MINERGY_SERVED_BIN must point at the minergy_served executable"
#endif

namespace minergy::serve {
namespace {

namespace fs = std::filesystem;

struct ScratchSpool {
  explicit ScratchSpool(const std::string& stem)
      : root(
            (fs::temp_directory_path() / ("minergy_diskfault_" + stem))
                .string()) {
    fs::remove_all(root);
  }
  ~ScratchSpool() { fs::remove_all(root); }
  std::string root;
};

void sleep_seconds(double s) {
  std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

// fork+exec minergy_served; stdout silenced, stderr appended to
// `stderr_path` when given (the degraded-mode tests grep it).
pid_t spawn_served(const std::vector<std::string>& flags,
                   const std::string& stderr_path = std::string()) {
  std::vector<std::string> args = {MINERGY_SERVED_BIN};
  args.insert(args.end(), flags.begin(), flags.end());
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& s : args) argv.push_back(s.data());
  argv.push_back(nullptr);
  const pid_t pid = fork();
  if (pid == 0) {
    const int null_fd = open("/dev/null", O_WRONLY);
    if (null_fd >= 0) {
      dup2(null_fd, STDOUT_FILENO);
      if (stderr_path.empty()) dup2(null_fd, STDERR_FILENO);
      close(null_fd);
    }
    if (!stderr_path.empty()) {
      const int err_fd =
          open(stderr_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (err_fd >= 0) {
        dup2(err_fd, STDERR_FILENO);
        close(err_fd);
      }
    }
    execv(argv[0], argv.data());
    _exit(127);
  }
  return pid;
}

int wait_exit(pid_t pid, double timeout_seconds, bool* timed_out = nullptr) {
  if (timed_out != nullptr) *timed_out = false;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  int status = 0;
  for (;;) {
    const pid_t r = waitpid(pid, &status, WNOHANG);
    if (r == pid) return status;
    if (std::chrono::steady_clock::now() >= deadline) {
      if (timed_out != nullptr) *timed_out = true;
      kill(pid, SIGKILL);
      waitpid(pid, &status, 0);
      return status;
    }
    sleep_seconds(0.01);
  }
}

int run_served(const std::vector<std::string>& flags,
               const std::string& stderr_path = std::string(),
               double timeout_seconds = 120.0) {
  bool timed_out = false;
  const int status = wait_exit(spawn_served(flags, stderr_path),
                               timeout_seconds, &timed_out);
  EXPECT_FALSE(timed_out) << "daemon did not exit within the cap";
  return status;
}

std::string submit_job(SpoolQueue& q, const std::string& circuit,
                       std::uint64_t seed,
                       const std::string& optimizer = "baseline",
                       int anneal_moves = 0) {
  Job job;
  job.circuit = circuit;
  job.optimizer = optimizer;
  job.seed = seed;
  job.anneal_moves = anneal_moves;
  return q.submit(job);
}

util::JsonValue read_record(const SpoolQueue& q, const std::string& state,
                            const std::string& id) {
  const std::string path = q.job_path(state, id);
  return util::JsonValue::parse(io::read_artifact(path, ""), path);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<std::string> fast_daemon_flags(const std::string& spool) {
  return {"--spool=" + spool, "--once",        "--workers=2",
          "--poll=0.005",     "--timeout=20",  "--retries=1",
          "--backoff=0.01",   "--drain-grace=0.05",
          "--breaker-threshold=99"};
}

// The relaxed exactly-once oracle for storage faults. Unlike the SIGKILL
// sweep, a fault schedule propagates into every (re)spawned worker with
// per-process counts, so a job can legitimately exhaust its retries and
// quarantine; what must still hold is the partition — every submitted id
// in exactly one terminal state, nothing pending/running, done/ certified,
// failures typed — cross-checked by the service's own auditor.
void expect_exact_partition(const SpoolQueue& q,
                            const std::set<std::string>& submitted) {
  EXPECT_TRUE(q.ids_in("pending").empty()) << "job(s) left in pending/";
  EXPECT_TRUE(q.ids_in("running").empty()) << "job(s) stuck in running/";
  std::set<std::string> terminal;
  for (const char* state : {"done", "failed", "quarantined"}) {
    for (const std::string& id : q.ids_in(state)) {
      EXPECT_TRUE(terminal.insert(id).second)
          << "job " << id << " is in more than one terminal state";
    }
  }
  EXPECT_EQ(terminal, submitted);
  for (const std::string& id : q.ids_in("done")) {
    const util::JsonValue rec = read_record(q, "done", id);
    EXPECT_TRUE(rec.at("result").get_bool("certified", false));
    EXPECT_TRUE(rec.at("result").get_bool("feasible", false));
  }
  const int status = run_served({"--spool=" + q.root(), "--status",
                                 "--verify",
                                 "--expect-jobs=" +
                                     std::to_string(submitted.size())});
  // A clean audit exits 0, or 4 when quarantined/ is non-empty (still a
  // valid exactly-once partition — the code just flags the poisoned spool).
  const int expect_rc = q.ids_in("quarantined").empty() ? 0 : 4;
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == expect_rc)
      << "minergy_served --status --verify rejected the spool";
}

// ------------------------------------------------------ errno-fault sweep

// Deterministic storage-fault schedules across every op the io layer
// performs. The daemon may degrade-and-resume, workers may die and retry,
// a short-read may quarantine a job as corrupt — but the partition holds
// and a clean second pass leaves an auditable spool. tearcommit schedules
// are exercised separately (TruncationSweep/test_io): a torn-but-committed
// *terminal* record is detectable but not repairable, which is exactly why
// the write path fsyncs before renaming.
TEST(DiskFault, ExactlyOnceHoldsAcrossStorageFaultSchedules) {
  const std::vector<std::string> specs = {
      "write@1:enospc",
      "write@2:eio",
      "write@4:enospc",
      "write@1:tear=30",
      "write@3:tear=10",
      "fsync@1:eio",
      "fsync@2:enospc",
      "fsync@5:eio",
      "rename@1:eio",
      "rename@3:eio",
      "read@1:short=25",
      "read@2:short=5",
      "write@2:enospc,fsync@3:eio",
      "rename@2:eio,read@1:short=40",
  };
  int iteration = 0;
  for (const std::string& spec : specs) {
    SCOPED_TRACE("fault spec: " + spec);
    ScratchSpool spool("sweep_" + std::to_string(iteration++));
    SpoolQueue q(spool.root);
    std::set<std::string> submitted;
    submitted.insert(submit_job(q, "c17", 1));
    submitted.insert(submit_job(q, "s27", 2));

    // Phase 1: the daemon (and its workers, via propagation) under the
    // fault schedule. It must exit on its own — degraded mode may pause
    // it, but every directive fires once, so the probe loop always ends.
    std::vector<std::string> flags = fast_daemon_flags(spool.root);
    flags.push_back("--inject-io=" + spec);
    run_served(flags);

    // Phase 2: a clean pass drains whatever the faults interrupted.
    ASSERT_EQ(run_served(fast_daemon_flags(spool.root)), 0);

    expect_exact_partition(q, submitted);
  }
}

// ------------------------------------------------------- degraded daemon

TEST(DiskFault, EnospcBurstPausesAdmissionsThenResumes) {
  ScratchSpool spool("degraded");
  SpoolQueue q(spool.root);
  const std::string id = submit_job(q, "c17", 3);
  const std::string log = spool.root + "_stderr.log";
  std::remove(log.c_str());

  // Daemon fsyncs #1/#2 are the "starting" health write (file + parent
  // dir); #3 is the "serving" health write, #4 the degraded-mode one. Fail
  // #3 and #4: the daemon must enter degraded mode (pausing admissions),
  // survive the degraded health write itself failing, keep probing,
  // recover, and still drain to a clean exit. Counts are per-process, and
  // a worker fsyncs only twice (its one result write), so the schedule
  // never fires inside workers.
  std::vector<std::string> flags = fast_daemon_flags(spool.root);
  flags.push_back("--inject-io=fsync@3:enospc,fsync@4:eio");
  const int status = run_served(flags, log);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);

  const std::string err = slurp(log);
  std::remove(log.c_str());
  EXPECT_NE(err.find("degraded (storage fault"), std::string::npos)
      << "daemon never announced degraded mode; stderr:\n" << err;
  EXPECT_NE(err.find("storage writable again; resuming"), std::string::npos)
      << "daemon never announced recovery; stderr:\n" << err;

  EXPECT_TRUE(fs::exists(q.job_path("done", id)));
  const std::string health = (fs::path(spool.root) / "health.json").string();
  const util::JsonValue h = util::JsonValue::parse(
      io::read_artifact(health, "minergy.health.v1"), health);
  EXPECT_EQ(h.get_string("state", ""), "stopped");
}

// ---------------------------------------------------- admission rejection

TEST(DiskFault, SubmitOnFullDiskIsTypedRejection) {
  ScratchSpool spool("submit_enospc");
  SpoolQueue q(spool.root);  // create the tree so only the job write faults
  const std::string log = spool.root + "_stderr.log";
  std::remove(log.c_str());

  const int status = run_served({"--spool=" + spool.root, "--submit",
                                 "--circuit=c17",
                                 "--inject-io=write@1:enospc"},
                                log);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 1)
      << "ENOSPC submit must be a validation failure (1), not a crash";
  const std::string err = slurp(log);
  std::remove(log.c_str());
  EXPECT_NE(err.find("rejected:"), std::string::npos) << err;
  EXPECT_NE(err.find("retry-after"), std::string::npos) << err;
  EXPECT_TRUE(q.ids_in("pending").empty());

  // The same submit succeeds the moment the disk does.
  const int ok = run_served(
      {"--spool=" + spool.root, "--submit", "--circuit=c17"});
  EXPECT_TRUE(WIFEXITED(ok) && WEXITSTATUS(ok) == 0);
  EXPECT_EQ(q.ids_in("pending").size(), 1u);
}

// ----------------------------------------- generation fallback, end to end

// SIGTERM an anneal mid-flight, tear the *newest* checkpoint generation,
// restart: the worker must fall back to the previous generation and still
// finish bit-identical to an uninterrupted reference run — the PR-3
// completed-steps-only rule makes any valid generation (or even a fresh
// start) converge to the same answer; fallback costs time, never bits.
TEST(DiskFault, TornNewestCheckpointGenerationResumesBitExactly) {
  const int kMoves = 800000;
  ScratchSpool interrupted("gen_a");
  ScratchSpool reference("gen_b");
  SpoolQueue qa(interrupted.root);
  SpoolQueue qb(reference.root);
  const std::string ida = submit_job(qa, "s27", 7, "anneal", kMoves);
  const std::string idb = submit_job(qb, "s27", 7, "anneal", kMoves);

  // Wait for at least two snapshot generations before interrupting, so a
  // torn newest has something to fall back to.
  const pid_t daemon = spawn_served(
      {"--spool=" + interrupted.root, "--workers=1", "--poll=0.005",
       "--timeout=120", "--drain-grace=0.02"});
  const std::string ck_path = qa.checkpoint_path(ida);
  const std::string gen1 = io::Checkpoint::generation_path(ck_path, 1);
  bool saw_generations = false;
  for (int i = 0; i < 2000; ++i) {
    if (fs::exists(gen1)) {
      saw_generations = true;
      break;
    }
    sleep_seconds(0.005);
  }
  EXPECT_TRUE(saw_generations) << "worker never rotated a second generation";
  kill(daemon, SIGTERM);
  const int status = wait_exit(daemon, 30.0);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  ASSERT_TRUE(fs::exists(qa.job_path("pending", ida)));
  ASSERT_TRUE(fs::exists(ck_path));

  // Tear the newest generation in half — CRC-detectable bit-rot/truncation.
  {
    const std::string intact = slurp(ck_path);
    ASSERT_GT(intact.size(), 64u);
    std::ofstream out(ck_path, std::ios::trunc | std::ios::binary);
    out << intact.substr(0, intact.size() / 2);
  }

  ASSERT_EQ(run_served(fast_daemon_flags(interrupted.root)), 0);
  ASSERT_TRUE(fs::exists(qa.job_path("done", ida)));
  const util::JsonValue ra = read_record(qa, "done", ida);
  EXPECT_TRUE(ra.at("result").get_bool("resumed", false))
      << "worker did not resume from a fallback generation";

  ASSERT_EQ(run_served(fast_daemon_flags(reference.root)), 0);
  ASSERT_TRUE(fs::exists(qb.job_path("done", idb)));
  const util::JsonValue rb = read_record(qb, "done", idb);

  for (const char* field : {"energy_total", "static_energy",
                            "dynamic_energy", "vdd", "vts_primary",
                            "critical_delay"}) {
    EXPECT_EQ(ra.at("result").get_number(field, -1.0),
              rb.at("result").get_number(field, -2.0))
        << "field " << field << " diverged after generation fallback";
  }
  EXPECT_TRUE(ra.at("result").get_bool("certified", false));
  EXPECT_TRUE(rb.at("result").get_bool("certified", false));
}

}  // namespace
}  // namespace minergy::serve
