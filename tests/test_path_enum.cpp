#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "netlist/bench_io.h"
#include "netlist/generator.h"
#include "timing/path_enum.h"

namespace minergy::timing {
namespace {

using netlist::GateId;
using netlist::Netlist;

// a -> g1 -> g2 -> y1(PO);  g1 -> y2(PO). g1 has 2 branches.
Netlist make_fork() {
  return netlist::parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(y1)
OUTPUT(y2)
g1 = NAND(a, b)
g2 = NOT(g1)
y1 = NOT(g2)
y2 = NOT(g1)
)");
}

TEST(PathAnalyzer, CriticalityValuesOnFork) {
  Netlist nl = make_fork();
  PathAnalyzer pa(nl);
  const GateId g1 = nl.find("g1");
  const GateId g2 = nl.find("g2");
  const GateId y1 = nl.find("y1");
  const GateId y2 = nl.find("y2");
  // branch counts: g1 = 2 (g2, y2), g2 = 1, y1 = 1, y2 = 1.
  EXPECT_EQ(pa.prefix_criticality(g1), 2);
  EXPECT_EQ(pa.prefix_criticality(g2), 3);
  EXPECT_EQ(pa.prefix_criticality(y1), 4);
  EXPECT_EQ(pa.suffix_criticality(g1), 4);  // g1+g2+y1
  EXPECT_EQ(pa.through_criticality(y2), 3);
  EXPECT_EQ(pa.through_criticality(y1), 4);
}

TEST(PathAnalyzer, MostCriticalPathOnFork) {
  Netlist nl = make_fork();
  PathAnalyzer pa(nl);
  const Path p = pa.most_critical();
  EXPECT_EQ(p.criticality, 4);
  ASSERT_EQ(p.gates.size(), 3u);
  EXPECT_EQ(p.gates[0], nl.find("g1"));
  EXPECT_EQ(p.gates[1], nl.find("g2"));
  EXPECT_EQ(p.gates[2], nl.find("y1"));
}

TEST(PathAnalyzer, MostCriticalThroughSpecificGate) {
  Netlist nl = make_fork();
  PathAnalyzer pa(nl);
  const Path p = pa.most_critical_through(nl.find("y2"));
  ASSERT_EQ(p.gates.size(), 2u);
  EXPECT_EQ(p.gates[0], nl.find("g1"));
  EXPECT_EQ(p.gates[1], nl.find("y2"));
  EXPECT_EQ(p.criticality, 3);
}

TEST(PathAnalyzer, TopKOrderingOnFork) {
  Netlist nl = make_fork();
  PathAnalyzer pa(nl);
  const auto paths = pa.top_k(10);
  ASSERT_EQ(paths.size(), 2u);  // only two complete paths exist
  EXPECT_EQ(paths[0].criticality, 4);
  EXPECT_EQ(paths[1].criticality, 3);
}

// Brute-force enumeration for cross-checking top_k on random DAGs.
std::vector<Path> brute_force_paths(const Netlist& nl) {
  std::vector<Path> all;
  std::function<void(GateId, Path&)> dfs = [&](GateId id, Path& p) {
    p.gates.push_back(id);
    p.criticality += nl.gate(id).branch_count();
    bool has_logic_fanout = false;
    bool is_end = nl.gate(id).is_primary_output;
    for (GateId out : nl.gate(id).fanouts) {
      if (netlist::is_combinational(nl.gate(out).type)) {
        has_logic_fanout = true;
      } else {
        is_end = true;  // DFF D-pin
      }
    }
    if (is_end || !has_logic_fanout) all.push_back(p);
    for (GateId out : nl.gate(id).fanouts) {
      if (netlist::is_combinational(nl.gate(out).type)) dfs(out, p);
    }
    p.gates.pop_back();
    p.criticality -= nl.gate(id).branch_count();
  };
  for (GateId id : nl.combinational()) {
    bool starts = true;
    for (GateId f : nl.gate(id).fanins) {
      if (netlist::is_combinational(nl.gate(f).type)) starts = false;
    }
    if (!starts) continue;
    Path p;
    dfs(id, p);
  }
  std::sort(all.begin(), all.end(),
            [](const Path& a, const Path& b) {
              return a.criticality > b.criticality;
            });
  return all;
}

class TopKCrossCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TopKCrossCheck, MatchesBruteForce) {
  netlist::GeneratorSpec spec;
  spec.num_inputs = 5;
  spec.num_gates = 24;
  spec.depth = 5;
  spec.num_dffs = 2;
  spec.seed = GetParam();
  Netlist nl = netlist::generate_random_logic(spec);
  PathAnalyzer pa(nl);

  const auto expected = brute_force_paths(nl);
  const std::size_t k = std::min<std::size_t>(expected.size(), 12);
  const auto got = pa.top_k(k);
  ASSERT_EQ(got.size(), k);
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_EQ(got[i].criticality, expected[i].criticality) << "rank " << i;
    // Criticality recomputed from the emitted gates must be consistent.
    std::int64_t sum = 0;
    for (GateId id : got[i].gates) sum += nl.gate(id).branch_count();
    EXPECT_EQ(sum, got[i].criticality);
  }
  // Decreasing order.
  for (std::size_t i = 1; i < k; ++i) {
    EXPECT_LE(got[i].criticality, got[i - 1].criticality);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopKCrossCheck,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(PathAnalyzer, TopKPathsAreDistinct) {
  netlist::GeneratorSpec spec;
  spec.num_inputs = 5;
  spec.num_gates = 30;
  spec.depth = 6;
  spec.seed = 31;
  Netlist nl = netlist::generate_random_logic(spec);
  PathAnalyzer pa(nl);
  const auto paths = pa.top_k(20);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    for (std::size_t j = i + 1; j < paths.size(); ++j) {
      EXPECT_NE(paths[i].gates, paths[j].gates);
    }
  }
}

TEST(PathAnalyzer, ThroughCriticalityConsistentWithReconstruction) {
  netlist::GeneratorSpec spec;
  spec.num_inputs = 6;
  spec.num_gates = 40;
  spec.depth = 6;
  spec.seed = 77;
  Netlist nl = netlist::generate_random_logic(spec);
  PathAnalyzer pa(nl);
  for (GateId id : nl.combinational()) {
    const Path p = pa.most_critical_through(id);
    std::int64_t sum = 0;
    bool contains = false;
    for (GateId g : p.gates) {
      sum += nl.gate(g).branch_count();
      contains |= g == id;
    }
    EXPECT_TRUE(contains);
    EXPECT_EQ(sum, pa.through_criticality(id));
    // Path is a connected chain.
    for (std::size_t i = 1; i < p.gates.size(); ++i) {
      const auto& fi = nl.gate(p.gates[i]).fanins;
      EXPECT_NE(std::find(fi.begin(), fi.end(), p.gates[i - 1]), fi.end());
    }
  }
}

}  // namespace
}  // namespace minergy::timing
