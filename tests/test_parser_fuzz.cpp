// Deterministic parser mini-fuzz.
//
// ~200 systematically mutated .bench / structural-Verilog sources, every
// one guaranteed-invalid by construction. The robustness contract under
// test: the parsers reject each mutant with a *typed* error
// (util::ParseError or netlist::NetlistError) — never a crash, a hang, an
// untyped exception, or a silently "parsed" netlist. The corpus is seeded
// and fully deterministic (util::Rng, fixed seeds), so any failure
// reproduces byte-for-byte from the printed case id.
#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "netlist/bench_io.h"
#include "netlist/netlist.h"
#include "netlist/verilog_io.h"
#include "util/check.h"
#include "util/rng.h"

namespace minergy::netlist {
namespace {

constexpr const char* kBenchSeed = R"(
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
OUTPUT(z)
g1 = NAND(a, b)
g2 = NOR(b, c)
g3 = AND(g1, g2)
q = DFF(g3)
y = NOT(q)
z = XOR(g1, g3)
)";

constexpr const char* kVerilogSeed = R"(
module fuzz_seed (a, b, c, y, z);
  input a, b, c;
  output y, z;
  wire g1, g2, g3;
  nand u1 (g1, a, b);
  nor  u2 (g2, b, c);
  and  u3 (g3, g1, g2);
  not  u4 (y, g3);
  xor  u5 (z, g1, g3);
endmodule
)";

// One corpus entry: a mutated source that must be rejected.
struct Mutant {
  std::string id;    // "<class>#<index>" for reproduction
  std::string text;
};

// Truncation anywhere strictly inside a token-bearing region leaves an
// unterminated construct; picking cut points from a seeded stream varies
// where it lands while staying deterministic.
std::vector<Mutant> truncation_mutants(const std::string& base,
                                       const char* tag, int count,
                                       std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Mutant> out;
  for (int i = 0; i < count; ++i) {
    // Cut inside the last two thirds so at least one definition is damaged;
    // land strictly inside a line to guarantee a malformed statement.
    std::size_t cut = base.size() / 3 +
                      rng.uniform_index(base.size() - base.size() / 3 - 2) + 1;
    while (cut > 1 && (base[cut - 1] == '\n' || base[cut] == '\n')) --cut;
    std::string text = base.substr(0, cut);
    // Re-open a construct so even a cut that happens to end cleanly is
    // invalid: an assignment with an unbalanced parenthesis list.
    text += "\nzz = AND(g1, ";
    out.push_back({std::string(tag) + "-truncate#" + std::to_string(i),
                   std::move(text)});
  }
  return out;
}

std::vector<Mutant> bench_corpus() {
  std::vector<Mutant> corpus = truncation_mutants(kBenchSeed, "bench", 40,
                                                  0xB15D00F5ULL);
  auto add = [&corpus](const char* cls, int i, std::string text) {
    corpus.push_back({std::string("bench-") + cls + "#" + std::to_string(i),
                      std::move(text)});
  };
  util::Rng rng(0xBE9C4ULL);
  const char* names[] = {"a", "b", "c", "g1", "g2", "g3", "q"};
  for (int i = 0; i < 15; ++i) {
    // Duplicate definition of an existing signal.
    const char* victim = names[rng.uniform_index(7)];
    add("duplicate-def", i,
        std::string(kBenchSeed) + victim + " = AND(a, b)\n");
  }
  for (int i = 0; i < 15; ++i) {
    // Unknown gate keyword (well-formed line, bogus primitive).
    static const char* bogus[] = {"NANDD", "FOO", "XNOR2X1", "LUT4", "MAJ"};
    add("unknown-gate", i,
        std::string(kBenchSeed) + "w" + std::to_string(i) + " = " +
            bogus[rng.uniform_index(5)] + "(a, b)\n");
  }
  for (int i = 0; i < 10; ++i) {
    // Reference to a signal that is never defined anywhere.
    add("undefined-ref", i,
        std::string(kBenchSeed) + "OUTPUT(w" + std::to_string(i) + ")\nw" +
            std::to_string(i) + " = AND(ghost" + std::to_string(i) +
            ", a)\n");
  }
  for (int i = 0; i < 10; ++i) {
    // Combinational cycle through two fresh gates.
    add("cycle", i,
        std::string(kBenchSeed) + "za = AND(zb, g1)\nzb = AND(za, g" +
            std::to_string(1 + static_cast<int>(rng.uniform_index(3))) +
            ")\n");
  }
  for (int i = 0; i < 10; ++i) {
    // Structural garbage: '=' with no right-hand call.
    add("malformed-line", i,
        std::string(kBenchSeed) + "w" + std::to_string(i) + " = \n");
  }
  return corpus;
}

std::vector<Mutant> verilog_corpus() {
  std::vector<Mutant> corpus = truncation_mutants(kVerilogSeed, "verilog", 40,
                                                  0x5EED5EEDULL);
  auto add = [&corpus](const char* cls, int i, std::string text) {
    corpus.push_back({std::string("verilog-") + cls + "#" + std::to_string(i),
                      std::move(text)});
  };
  // Insert a statement just before endmodule.
  auto with_stmt = [](const std::string& stmt) {
    std::string text = kVerilogSeed;
    const std::size_t pos = text.find("endmodule");
    text.insert(pos, stmt + "\n");
    return text;
  };
  util::Rng rng(0x7E51A9ULL);
  for (int i = 0; i < 15; ++i) {
    // Driving an already-driven net a second time.
    static const char* victims[] = {"g1", "g2", "g3", "y", "z"};
    add("duplicate-driver", i,
        with_stmt(std::string("  and dup (") + victims[rng.uniform_index(5)] +
                  ", a, b);"));
  }
  for (int i = 0; i < 15; ++i) {
    // Unknown primitive keyword where a gate is expected.
    static const char* bogus[] = {"nandx", "mux21", "latch", "srff", "alu"};
    add("unknown-primitive", i,
        with_stmt(std::string("  ") + bogus[rng.uniform_index(5)] + " u9 (w" +
                  std::to_string(i) + ", a, b);"));
  }
  for (int i = 0; i < 10; ++i) {
    // Combinational cycle through two fresh wires.
    add("cycle", i,
        with_stmt("  wire za, zb;\n  and c1 (za, zb, g1);\n  and c2 (zb, za, "
                  "a);\n  and c3 (w" +
                  std::to_string(i) + ", za, b);\n  // " +
                  std::to_string(rng.uniform_index(1000))));
  }
  for (int i = 0; i < 10; ++i) {
    // not/buf with too many terminals (bad arity).
    add("bad-arity", i, with_stmt("  not u9 (w" + std::to_string(i) +
                                  ", a, b, c);"));
  }
  for (int i = 0; i < 10; ++i) {
    // Unterminated statement: missing ');' before endmodule.
    add("unterminated", i, with_stmt("  and u9 (w" + std::to_string(i) +
                                     ", a, b"));
  }
  return corpus;
}

// A mutant passes when the parser raises one of the typed errors of the
// robustness contract. Anything else — success, an untyped exception, a
// std::bad_alloc-style failure — is a contract breach.
enum class Verdict { kTyped, kAccepted, kUntyped };

template <typename ParseFn>
Verdict feed(const ParseFn& parse, const Mutant& m) {
  try {
    parse(m.text);
    return Verdict::kAccepted;
  } catch (const util::ParseError&) {
    return Verdict::kTyped;
  } catch (const NetlistError&) {
    return Verdict::kTyped;
  } catch (const std::invalid_argument&) {
    return Verdict::kTyped;  // NetlistError's base; some checks throw it raw
  } catch (...) {
    return Verdict::kUntyped;
  }
}

TEST(ParserFuzz, SeedsParseCleanly) {
  EXPECT_NO_THROW(parse_bench_string(kBenchSeed, "seed"));
  EXPECT_NO_THROW(parse_verilog_string(kVerilogSeed));
}

TEST(ParserFuzz, BenchMutantsAllRejectedWithTypedErrors) {
  const std::vector<Mutant> corpus = bench_corpus();
  ASSERT_GE(corpus.size(), 100u);
  for (const Mutant& m : corpus) {
    const Verdict v = feed(
        [](const std::string& t) { parse_bench_string(t, "fuzz"); }, m);
    EXPECT_NE(v, Verdict::kAccepted) << m.id << " was accepted:\n" << m.text;
    EXPECT_NE(v, Verdict::kUntyped)
        << m.id << " raised an untyped exception:\n"
        << m.text;
  }
}

TEST(ParserFuzz, VerilogMutantsAllRejectedWithTypedErrors) {
  const std::vector<Mutant> corpus = verilog_corpus();
  ASSERT_GE(corpus.size(), 100u);
  for (const Mutant& m : corpus) {
    const Verdict v = feed(
        [](const std::string& t) { parse_verilog_string(t); }, m);
    EXPECT_NE(v, Verdict::kAccepted) << m.id << " was accepted:\n" << m.text;
    EXPECT_NE(v, Verdict::kUntyped)
        << m.id << " raised an untyped exception:\n"
        << m.text;
  }
}

}  // namespace
}  // namespace minergy::netlist
