#include <gtest/gtest.h>

#include "netlist/bench_io.h"
#include "netlist/generator.h"
#include "netlist/stats.h"

namespace minergy::netlist {
namespace {

GeneratorSpec small_spec() {
  GeneratorSpec g;
  g.name = "t";
  g.num_inputs = 6;
  g.num_outputs = 4;
  g.num_dffs = 3;
  g.num_gates = 60;
  g.depth = 8;
  g.seed = 99;
  return g;
}

TEST(Generator, SpecValidation) {
  GeneratorSpec g = small_spec();
  EXPECT_NO_THROW(g.validate());
  g.num_gates = 5;  // < depth
  EXPECT_THROW(g.validate(), std::invalid_argument);
  g = small_spec();
  g.num_inputs = 0;
  EXPECT_THROW(g.validate(), std::invalid_argument);
  g = small_spec();
  g.max_fanin = 1;
  EXPECT_THROW(g.validate(), std::invalid_argument);
}

TEST(Generator, MatchesSpecExactly) {
  const GeneratorSpec spec = small_spec();
  Netlist nl = generate_random_logic(spec);
  const NetlistStats s = compute_stats(nl);
  EXPECT_EQ(s.num_gates, static_cast<std::size_t>(spec.num_gates));
  EXPECT_EQ(s.num_inputs, static_cast<std::size_t>(spec.num_inputs));
  EXPECT_EQ(s.num_dffs, static_cast<std::size_t>(spec.num_dffs));
  EXPECT_EQ(s.depth, spec.depth);
  EXPECT_GE(s.num_outputs, static_cast<std::size_t>(spec.num_outputs));
}

TEST(Generator, DeterministicInSeed) {
  Netlist a = generate_random_logic(small_spec());
  Netlist b = generate_random_logic(small_spec());
  EXPECT_EQ(to_bench(a), to_bench(b));
}

TEST(Generator, DifferentSeedsGiveDifferentCircuits) {
  GeneratorSpec g2 = small_spec();
  g2.seed = 100;
  Netlist a = generate_random_logic(small_spec());
  Netlist b = generate_random_logic(g2);
  EXPECT_NE(to_bench(a), to_bench(b));
}

TEST(Generator, EverySourceDrivesSomething) {
  Netlist nl = generate_random_logic(small_spec());
  for (GateId id : nl.sources()) {
    EXPECT_FALSE(nl.gate(id).fanouts.empty())
        << "dangling source " << nl.gate(id).name;
  }
}

TEST(Generator, EveryGateIsObserved) {
  Netlist nl = generate_random_logic(small_spec());
  for (GateId id : nl.combinational()) {
    const Gate& g = nl.gate(id);
    EXPECT_TRUE(!g.fanouts.empty() || g.is_primary_output)
        << "unobserved gate " << g.name;
  }
}

TEST(Generator, FaninBoundsRespected) {
  GeneratorSpec spec = small_spec();
  spec.max_fanin = 3;
  Netlist nl = generate_random_logic(spec);
  for (GateId id : nl.combinational()) {
    EXPECT_LE(nl.gate(id).fanin_count(), spec.max_fanin) << nl.gate(id).name;
    EXPECT_GE(nl.gate(id).fanin_count(), 1);
  }
}

TEST(Generator, NoDuplicateFanins) {
  Netlist nl = generate_random_logic(small_spec());
  for (GateId id : nl.combinational()) {
    auto fanins = nl.gate(id).fanins;
    std::sort(fanins.begin(), fanins.end());
    EXPECT_EQ(std::adjacent_find(fanins.begin(), fanins.end()), fanins.end());
  }
}

TEST(Generator, RoundTripsThroughBenchFormat) {
  Netlist nl = generate_random_logic(small_spec());
  Netlist nl2 = parse_bench_string(to_bench(nl), "rt");
  EXPECT_EQ(nl2.num_combinational(), nl.num_combinational());
  EXPECT_EQ(nl2.depth(), nl.depth());
  EXPECT_EQ(nl2.dffs().size(), nl.dffs().size());
}

TEST(Generator, PurelyCombinationalWorks) {
  GeneratorSpec spec = small_spec();
  spec.num_dffs = 0;
  Netlist nl = generate_random_logic(spec);
  EXPECT_TRUE(nl.dffs().empty());
  EXPECT_EQ(nl.depth(), spec.depth);
}

TEST(Generator, TinySpecWorks) {
  GeneratorSpec spec;
  spec.num_inputs = 1;
  spec.num_outputs = 1;
  spec.num_gates = 1;
  spec.depth = 1;
  Netlist nl = generate_random_logic(spec);
  EXPECT_EQ(nl.num_combinational(), 1u);
}

// Depth sweep: the generator must hit the requested depth exactly across a
// range of shapes (the surrogate calibration relies on it).
class GeneratorDepth : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorDepth, DepthIsExact) {
  GeneratorSpec spec = small_spec();
  spec.depth = GetParam();
  spec.num_gates = std::max(spec.num_gates, 4 * spec.depth);
  Netlist nl = generate_random_logic(spec);
  EXPECT_EQ(nl.depth(), spec.depth);
}

INSTANTIATE_TEST_SUITE_P(Depths, GeneratorDepth,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

// Seed sweep of structural invariants.
class GeneratorSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorSeeds, InvariantsHold) {
  GeneratorSpec spec = small_spec();
  spec.seed = GetParam();
  Netlist nl = generate_random_logic(spec);
  const NetlistStats s = compute_stats(nl);
  EXPECT_EQ(s.depth, spec.depth);
  EXPECT_GT(s.avg_fanin, 1.0);
  EXPECT_LT(s.avg_fanin, 4.0);
  for (GateId id : nl.combinational()) {
    EXPECT_TRUE(!nl.gate(id).fanouts.empty() || nl.gate(id).is_primary_output);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeeds,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace minergy::netlist
