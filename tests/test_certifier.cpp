// Independent result certification: a genuine result certifies, every
// catalogued result corruption is refused with the right invariant named,
// and the RobustOptimizer treats an uncertified tier as a tier failure and
// degrades — with the failed certificate on the tier's provenance record.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "netlist/generator.h"
#include "opt/baseline_optimizer.h"
#include "opt/certifier.h"
#include "opt/evaluator.h"
#include "opt/joint_optimizer.h"
#include "opt/robust_optimizer.h"
#include "util/fault_injection.h"

namespace minergy::opt {
namespace {

using netlist::Netlist;

Netlist make_circuit(std::uint64_t seed = 2981, int gates = 80, int depth = 8) {
  netlist::GeneratorSpec spec;
  spec.num_inputs = 6;
  spec.num_outputs = 6;
  spec.num_dffs = 6;
  spec.num_gates = gates;
  spec.depth = depth;
  spec.seed = seed;
  return netlist::generate_random_logic(spec);
}

struct Harness {
  explicit Harness(double fc = 250e6, double tolerance = 0.0)
      : nl(make_circuit()),
        tech(tech::Technology::generic350()),
        eval(nl, tech, profile(),
             {.clock_frequency = fc, .vts_tolerance = tolerance}) {}

  static activity::ActivityProfile profile() {
    activity::ActivityProfile p;
    p.input_density = 0.2;
    return p;
  }

  Netlist nl;
  tech::Technology tech;
  CircuitEvaluator eval;
};

// ----------------------------------------------------------- genuine passes

TEST(Certifier, GenuineJointResultCertifies) {
  Harness s;
  const OptimizationResult r = JointOptimizer(s.eval).run();
  ASSERT_TRUE(r.feasible);
  const Certificate cert = Certifier(s.eval).certify(r);
  EXPECT_TRUE(cert.certified) << cert.summary();
  EXPECT_TRUE(cert.violated_invariant.empty());
  EXPECT_NEAR(cert.recomputed_energy_total, r.energy.total(),
              1e-9 * r.energy.total());
  EXPECT_NEAR(cert.recomputed_critical_delay, r.critical_delay,
              1e-9 * r.critical_delay);
}

TEST(Certifier, GenuineBaselineResultCertifies) {
  Harness s;
  const OptimizationResult r = BaselineOptimizer(s.eval).run();
  ASSERT_TRUE(r.feasible);
  const Certificate cert = Certifier(s.eval).certify(r);
  EXPECT_TRUE(cert.certified) << cert.summary();
}

TEST(Certifier, GenuineResultWithVtsToleranceCertifies) {
  // The leakage-corner convention (static energy at the lowered Vts) must
  // be mirrored by the certifier's independent per-gate re-summation.
  Harness s(250e6, 0.1);
  const OptimizationResult r = JointOptimizer(s.eval).run();
  ASSERT_TRUE(r.feasible);
  const Certificate cert = Certifier(s.eval).certify(r);
  EXPECT_TRUE(cert.certified) << cert.summary();
}

TEST(Certifier, InfeasibleResultRefused) {
  Harness s;
  OptimizationResult r = JointOptimizer(s.eval).run();
  r.feasible = false;
  const Certificate cert = Certifier(s.eval).certify(r);
  EXPECT_FALSE(cert.certified);
  EXPECT_EQ(cert.violated_invariant, "result-feasible");
}

TEST(Certifier, CertificateJsonCarriesSchema) {
  Harness s;
  const OptimizationResult r = BaselineOptimizer(s.eval).run();
  const Certificate cert = Certifier(s.eval).certify(r);
  const std::string json = cert.to_json(2);
  EXPECT_NE(json.find("minergy.certificate.v1"), std::string::npos);
  EXPECT_NE(json.find("\"certified\": true"), std::string::npos);
}

// ------------------------------------------------ the corruption catalogue

TEST(Certifier, EveryCataloguedCorruptionIsCaughtWithItsInvariant) {
  Harness s;
  const OptimizationResult genuine = JointOptimizer(s.eval).run();
  ASSERT_TRUE(genuine.feasible);
  ASSERT_TRUE(Certifier(s.eval).certify(genuine).certified);

  for (const fault::ResultFault& f : fault::result_fault_catalog()) {
    OptimizationResult corrupted = genuine;
    f.corrupt(&corrupted);
    const Certificate cert = Certifier(s.eval).certify(corrupted);
    EXPECT_FALSE(cert.certified) << f.name << " slipped through";
    EXPECT_EQ(cert.violated_invariant, f.expected_invariant)
        << f.name << ": " << cert.summary();
  }
}

TEST(Certifier, FeasibilityFlagOnWrongStaCaught) {
  // The classic bookkeeping bug the certifier exists for: a result flagged
  // feasible whose state does not actually meet timing. Provoke it by
  // doubling the constraint the optimizer ran against.
  Harness relaxed(125e6);
  OptimizationResult r = JointOptimizer(relaxed.eval).run();
  ASSERT_TRUE(r.feasible);
  Harness tight(250e6);
  // Same netlist topology/sizes; the tight evaluator re-checks at 250 MHz.
  CertifyOptions copts;
  const Certificate cert = Certifier(tight.eval, copts).certify(r);
  EXPECT_FALSE(cert.certified);
  EXPECT_EQ(cert.violated_invariant, "timing-constraint");
  EXPECT_GT(cert.recomputed_critical_delay, cert.timing_limit);
}

TEST(Certifier, CulpritGateNamedForRangeViolation) {
  Harness s;
  OptimizationResult r = JointOptimizer(s.eval).run();
  ASSERT_TRUE(r.feasible);
  const netlist::GateId victim = s.nl.combinational().front();
  r.state.widths[victim] = s.tech.w_max * 50.0;
  const Certificate cert = Certifier(s.eval).certify(r);
  ASSERT_FALSE(cert.certified);
  EXPECT_EQ(cert.violated_invariant, "width-range");
  EXPECT_EQ(cert.culprit_gate, s.nl.gate(victim).name);
}

// -------------------------------------- robust chain: degradation on fault

TEST(RobustOptimizer, CorruptedJointTierDegradesToCertifiedBaseline) {
  Harness s;
  RobustOptions opts;
  // Inject an energy-accounting corruption into the joint tier's result
  // only — the bug class where the optimizer's bookkeeping drifts from the
  // physics while the state itself stays valid.
  opts.tier_result_hook = [](OptimizationResult& r, const char* tier) {
    if (std::string(tier) == "joint") {
      r.energy.dynamic_energy *= 1.01;
      r.energy.static_energy *= 1.01;
    }
  };
  const OptimizationResult r = RobustOptimizer(s.eval, opts).run();

  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.tier, ResultTier::kBaseline);
  // The provenance must show: joint attempted, failed certification with a
  // failed certificate on record; baseline attempted, certified, selected.
  ASSERT_EQ(r.report.tiers.size(), 2u);
  EXPECT_EQ(r.report.tiers[0].tier, "joint");
  EXPECT_FALSE(r.report.tiers[0].selected);
  EXPECT_EQ(r.report.tiers[0].certificate_status, "fail");
  EXPECT_NE(r.report.tiers[0].certificate_detail.find("energy-report"),
            std::string::npos)
      << r.report.tiers[0].certificate_detail;
  EXPECT_EQ(r.report.tiers[1].tier, "baseline");
  EXPECT_TRUE(r.report.tiers[1].selected);
  EXPECT_EQ(r.report.tiers[1].certificate_status, "pass");
  // And the human-readable notes carry the story too.
  ASSERT_FALSE(r.tier_notes.empty());
  EXPECT_NE(r.tier_notes[0].find("UNCERTIFIED"), std::string::npos);
}

TEST(RobustOptimizer, HealthyRunCertifiesJointTier) {
  Harness s;
  const OptimizationResult r = RobustOptimizer(s.eval).run();
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.tier, ResultTier::kJoint);
  ASSERT_EQ(r.report.tiers.size(), 1u);
  EXPECT_EQ(r.report.tiers[0].certificate_status, "pass");
}

TEST(RobustOptimizer, CertificationDisabledSkipsGating) {
  Harness s;
  RobustOptions opts;
  opts.certify = false;
  opts.tier_result_hook = [](OptimizationResult& r, const char* tier) {
    if (std::string(tier) == "joint") r.energy.dynamic_energy *= 1.01;
  };
  const OptimizationResult r = RobustOptimizer(s.eval, opts).run();
  // Without certification the corrupted joint result sails through — the
  // gating, not luck, is what catches it.
  EXPECT_EQ(r.tier, ResultTier::kJoint);
  ASSERT_EQ(r.report.tiers.size(), 1u);
  EXPECT_TRUE(r.report.tiers[0].certificate_status.empty());
}

TEST(RobustOptimizer, AllTiersCorruptedFallsToLastResortWithRecord) {
  Harness s;
  RobustOptions opts;
  opts.tier_result_hook = [](OptimizationResult& r, const char*) {
    r.energy.dynamic_energy *= 1.01;  // corrupt every tier
  };
  const OptimizationResult r = RobustOptimizer(s.eval, opts).run();
  // Nothing below last resort: the answer is returned, but its failed
  // certificate is on record for downstream consumers to refuse.
  EXPECT_EQ(r.tier, ResultTier::kLastResort);
  ASSERT_EQ(r.report.tiers.size(), 3u);
  EXPECT_EQ(r.report.tiers[2].tier, "last-resort");
  EXPECT_TRUE(r.report.tiers[2].selected);
  EXPECT_EQ(r.report.tiers[2].certificate_status, "fail");
}

}  // namespace
}  // namespace minergy::opt
