#include <gtest/gtest.h>

#include <cmath>

#include "activity/exact.h"
#include "bdd/bdd.h"
#include "netlist/bench_io.h"
#include "netlist/generator.h"
#include "sim/logic_sim.h"
#include "util/rng.h"

namespace minergy::bdd {
namespace {

TEST(BddManager, TerminalsAndVars) {
  BddManager m(3);
  EXPECT_NE(m.zero(), m.one());
  EXPECT_TRUE(m.is_terminal(m.zero()));
  EXPECT_FALSE(m.is_terminal(m.var(0)));
  EXPECT_NE(m.var(0), m.var(1));
  EXPECT_EQ(m.var(2), m.var(2));  // canonical
}

TEST(BddManager, CanonicityOfEquivalentFormulas) {
  BddManager m(3);
  const NodeRef a = m.var(0), b = m.var(1), c = m.var(2);
  // Associativity / commutativity give identical nodes.
  EXPECT_EQ(m.and_of(a, b), m.and_of(b, a));
  EXPECT_EQ(m.and_of(m.and_of(a, b), c), m.and_of(a, m.and_of(b, c)));
  // De Morgan.
  EXPECT_EQ(m.not_of(m.and_of(a, b)),
            m.or_of(m.not_of(a), m.not_of(b)));
  // Double negation.
  EXPECT_EQ(m.not_of(m.not_of(a)), a);
  // x xor x = 0; x and !x = 0; x or !x = 1.
  EXPECT_EQ(m.xor_of(a, a), m.zero());
  EXPECT_EQ(m.and_of(a, m.not_of(a)), m.zero());
  EXPECT_EQ(m.or_of(a, m.not_of(a)), m.one());
}

TEST(BddManager, IteIdentities) {
  BddManager m(2);
  const NodeRef a = m.var(0), b = m.var(1);
  EXPECT_EQ(m.ite(m.one(), a, b), a);
  EXPECT_EQ(m.ite(m.zero(), a, b), b);
  EXPECT_EQ(m.ite(a, m.one(), m.zero()), a);
  EXPECT_EQ(m.ite(a, b, b), b);
}

TEST(BddManager, EvaluateMatchesTruthTable) {
  BddManager m(3);
  const NodeRef f = m.or_of(m.and_of(m.var(0), m.var(1)),
                            m.not_of(m.var(2)));  // ab + !c
  for (int bits = 0; bits < 8; ++bits) {
    const bool a = bits & 1, b = bits & 2, c = bits & 4;
    const bool expected = (a && b) || !c;
    const bool assignment[3] = {a, b, c};
    EXPECT_EQ(m.evaluate(f, assignment), expected) << bits;
  }
}

TEST(BddManager, CofactorsAndBooleanDifference) {
  BddManager m(2);
  const NodeRef a = m.var(0), b = m.var(1);
  const NodeRef f = m.and_of(a, b);
  EXPECT_EQ(m.cofactor(f, 0, true), b);
  EXPECT_EQ(m.cofactor(f, 0, false), m.zero());
  // d(ab)/da = b.
  EXPECT_EQ(m.boolean_difference(f, 0), b);
  // d(a xor b)/da = 1.
  EXPECT_EQ(m.boolean_difference(m.xor_of(a, b), 0), m.one());
  // d(f)/dx for x not in support = 0.
  BddManager m3(3);
  EXPECT_EQ(m3.boolean_difference(m3.var(0), 2), m3.zero());
}

TEST(BddManager, ProbabilityExactValues) {
  BddManager m(3);
  const NodeRef a = m.var(0), b = m.var(1);
  const double probs[3] = {0.5, 0.25, 0.8};
  EXPECT_NEAR(m.probability(m.and_of(a, b), probs), 0.5 * 0.25, 1e-12);
  EXPECT_NEAR(m.probability(m.or_of(a, b), probs),
              1.0 - 0.5 * 0.75, 1e-12);
  EXPECT_NEAR(m.probability(m.xor_of(a, b), probs),
              0.5 * 0.75 + 0.25 * 0.5, 1e-12);
  // Reconvergence handled exactly: P(a and !a) = 0 despite P(a) = 0.5.
  EXPECT_NEAR(m.probability(m.and_of(a, m.not_of(a)), probs), 0.0, 1e-12);
}

TEST(BddManager, SizeAndSupport) {
  BddManager m(4);
  const NodeRef f =
      m.xor_of(m.xor_of(m.var(0), m.var(1)), m.var(2));  // parity of 3
  EXPECT_EQ(m.size(m.var(0)), 1u);
  EXPECT_GE(m.size(f), 3u);
  EXPECT_TRUE(m.depends_on(f, 0));
  EXPECT_TRUE(m.depends_on(f, 2));
  EXPECT_FALSE(m.depends_on(f, 3));
}

TEST(BddManager, CofactorSurvivesNodeTableGrowth) {
  // Regression: cofactor's recursion creates new nodes while traversing,
  // which reallocates the node table; holding references across that is
  // the bug this pins down. Build a large-enough function that the table
  // reallocates mid-cofactor, and verify functional correctness.
  constexpr int kVars = 20;
  BddManager m(kVars);
  NodeRef f = m.zero();
  for (int i = 0; i + 1 < kVars; i += 2) {
    f = m.xor_of(f, m.and_of(m.var(i), m.var(i + 1)));
  }
  for (int i = 0; i < kVars; ++i) {
    const NodeRef diff = m.boolean_difference(f, i);
    // d f / d x_i = partner variable (pairwise AND inside XOR chain).
    const int partner = (i % 2 == 0) ? i + 1 : i - 1;
    EXPECT_EQ(diff, m.var(partner)) << "var " << i;
  }
  // Restriction identities hold after heavy growth.
  for (int i = 0; i < kVars; ++i) {
    const NodeRef lo = m.cofactor(f, i, false);
    const NodeRef hi = m.cofactor(f, i, true);
    EXPECT_EQ(m.xor_of(lo, hi), m.boolean_difference(f, i));
    EXPECT_FALSE(m.depends_on(lo, i));
    EXPECT_FALSE(m.depends_on(hi, i));
  }
}

TEST(BddManager, OverflowThrows) {
  // Parity of n variables is linear, but a tiny node limit still trips.
  BddManager m(16, /*node_limit=*/20);
  NodeRef acc = m.zero();
  EXPECT_THROW(
      {
        for (int i = 0; i < 16; ++i) acc = m.xor_of(acc, m.var(i));
      },
      BddOverflow);
}

// ----------------------------- exact activity ------------------------------

TEST(ExactActivity, MatchesFirstOrderOnTree) {
  const netlist::Netlist nl = netlist::parse_bench_string(R"(
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
g1 = NAND(a, b)
g2 = NOR(c, d)
y = AND(g1, g2)
)");
  activity::ActivityProfile profile;
  profile.input_density = 0.3;
  const auto first = activity::estimate_activity(nl, profile);
  const auto exact = activity::estimate_activity_exact(nl, profile);
  for (netlist::GateId id : nl.combinational()) {
    EXPECT_NEAR(first.probability[id], exact.probability[id], 1e-12);
    EXPECT_NEAR(first.density[id], exact.density[id], 1e-12);
  }
}

TEST(ExactActivity, ReconvergenceHandledExactly) {
  // y = AND(a, NOT a) is constant 0: exact gives P = 0, D = 0; the
  // first-order method reports D = 0.5 (the documented error).
  const netlist::Netlist nl = netlist::parse_bench_string(R"(
INPUT(a)
OUTPUT(y)
n = NOT(a)
y = AND(a, n)
)");
  activity::ActivityProfile profile;
  profile.input_density = 0.5;
  const auto first = activity::estimate_activity(nl, profile);
  const auto exact = activity::estimate_activity_exact(nl, profile);
  const netlist::GateId y = nl.find("y");
  EXPECT_NEAR(exact.probability[y], 0.0, 1e-12);
  EXPECT_NEAR(exact.density[y], 0.0, 1e-12);
  EXPECT_NEAR(first.density[y], 0.5, 1e-9);
}

TEST(ExactActivity, MatchesMonteCarloOnReconvergentCircuit) {
  // c17 has reconvergent fanout; exact probabilities must match simulation
  // tightly (densities agree in the low-activity regime where simultaneous
  // input switching is negligible).
  const netlist::Netlist nl = netlist::parse_bench_string(R"(
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)");
  activity::ActivityProfile profile;
  profile.input_density = 0.05;
  const auto exact = activity::estimate_activity_exact(nl, profile);
  util::Rng rng(99);
  const auto mc = sim::measure_activity(nl, profile, 200000, rng);
  for (netlist::GateId id : nl.combinational()) {
    EXPECT_NEAR(exact.probability[id], mc.probability[id], 0.01)
        << nl.gate(id).name;
    EXPECT_NEAR(exact.density[id], mc.density[id], 0.01)
        << nl.gate(id).name;
  }
}

TEST(ExactActivity, ExactNeverExceedsFirstOrderOnAndOrLogic) {
  // For monotone reconvergence the independence assumption overestimates
  // switching; check the aggregate ordering on random circuits.
  netlist::GeneratorSpec spec;
  spec.num_inputs = 8;
  spec.num_gates = 40;
  spec.depth = 6;
  spec.frac_xor = 0.0;
  spec.seed = 5;
  const netlist::Netlist nl = netlist::generate_random_logic(spec);
  activity::ActivityProfile profile;
  profile.input_density = 0.2;
  const auto first = activity::estimate_activity(nl, profile);
  const auto exact = activity::estimate_activity_exact(nl, profile);
  double first_sum = 0.0, exact_sum = 0.0;
  for (netlist::GateId id : nl.combinational()) {
    first_sum += first.density[id];
    exact_sum += exact.density[id];
  }
  EXPECT_LE(exact_sum, first_sum * 1.05);
}

TEST(ExactActivity, SequentialCircuitConverges) {
  const netlist::Netlist nl = netlist::parse_bench_string(R"(
INPUT(a)
OUTPUT(y)
q = DFF(d)
d = XOR(a, q)
y = BUF(q)
)");
  activity::ActivityProfile profile;
  profile.input_density = 0.4;
  const auto exact = activity::estimate_activity_exact(nl, profile);
  EXPECT_NEAR(exact.probability[nl.find("q")], 0.5, 0.05);
  EXPECT_GT(exact.density[nl.find("d")], 0.0);
}

TEST(ExactActivity, S27Works) {
  const netlist::Netlist nl = netlist::parse_bench_string(R"(
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
)");
  activity::ActivityProfile profile;
  profile.input_density = 0.3;
  const auto exact = activity::estimate_activity_exact(nl, profile);
  for (netlist::GateId id : nl.combinational()) {
    EXPECT_GE(exact.probability[id], 0.0);
    EXPECT_LE(exact.probability[id], 1.0);
    EXPECT_GE(exact.density[id], 0.0);
  }
}

}  // namespace
}  // namespace minergy::bdd
