// Fault-injection suite (labelled `fault` in CTest): every catalogued
// corruption — broken tech parameters, garbled inputs, degenerate netlists,
// numeric stress corners — must surface as a typed exception or a flagged
// fallback result. A silent NaN, hang or crash anywhere here is a bug.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "netlist/generator.h"
#include "opt/evaluator.h"
#include "opt/robust_optimizer.h"
#include "tech/tech_io.h"
#include "util/check.h"
#include "util/fault_injection.h"
#include "util/guard.h"
#include "util/json.h"

namespace minergy {
namespace {

activity::ActivityProfile profile() {
  activity::ActivityProfile p;
  p.input_density = 0.2;
  return p;
}

netlist::Netlist small_circuit() {
  netlist::GeneratorSpec spec;
  spec.num_inputs = 4;
  spec.num_outputs = 4;
  spec.num_dffs = 3;
  spec.num_gates = 30;
  spec.depth = 5;
  spec.seed = 91;
  return netlist::generate_random_logic(spec);
}

// --------------------------------------------------- corrupted technologies

TEST(FaultInjection, CatalogCoversAtLeastFifteenDistinctFaults) {
  const auto techs = fault::tech_fault_catalog();
  const auto parses = fault::parser_fault_catalog();
  const auto nets = fault::netlist_fault_catalog();
  EXPECT_GE(techs.size() + parses.size() + nets.size(), 15u);
}

TEST(FaultInjection, CorruptedTechRejectedByValidate) {
  for (const fault::TechFault& f : fault::tech_fault_catalog()) {
    SCOPED_TRACE(f.name);
    EXPECT_THROW(f.tech.validate(), tech::TechnologyError);
  }
}

TEST(FaultInjection, CorruptedTechRejectedAtEvaluatorBoundary) {
  const netlist::Netlist nl = small_circuit();
  for (const fault::TechFault& f : fault::tech_fault_catalog()) {
    SCOPED_TRACE(f.name);
    EXPECT_THROW(opt::CircuitEvaluator(nl, f.tech, profile(),
                                       {.clock_frequency = 100e6}),
                 tech::TechnologyError);
  }
}

TEST(FaultInjection, CorruptedTechSurvivesSerializationRoundTripAsError) {
  // Writing a corrupted tech and reading it back must not resurrect it as a
  // "valid" technology: the parser validates on load.
  for (const fault::TechFault& f : fault::tech_fault_catalog()) {
    SCOPED_TRACE(f.name);
    const std::string text = tech::to_tech_string(f.tech);
    EXPECT_THROW(tech::parse_technology_string(text, f.name), std::exception);
  }
}

TEST(FaultInjection, CorruptTechFieldRejectsUnknownField) {
  tech::Technology t = tech::Technology::generic350();
  EXPECT_THROW(fault::corrupt_tech_field(&t, "no_such_field",
                                         fault::FaultKind::kNaN),
               std::out_of_range);
}

TEST(FaultInjection, EveryRegisteredFieldCanBeCorrupted) {
  for (const std::string& field : tech::technology_field_names()) {
    tech::Technology t = tech::Technology::generic350();
    fault::corrupt_tech_field(&t, field, fault::FaultKind::kNaN);
    EXPECT_THROW(t.validate(), tech::TechnologyError) << field;
  }
}

// -------------------------------------------------------- garbled parsers

TEST(FaultInjection, GarbledInputsThrowTypedParseErrors) {
  for (const fault::ParserFault& f : fault::parser_fault_catalog()) {
    SCOPED_TRACE(f.name);
    try {
      fault::parse_fault_text(f);
      FAIL() << "fault '" << f.name << "' was parsed without error";
    } catch (const util::ParseError&) {
      // Expected for malformed text.
    } catch (const tech::TechnologyError&) {
      // Expected for tech values that parse cleanly but fail validation.
    }
  }
}

// --------------------------------------------------- degenerate netlists

TEST(FaultInjection, DegenerateNetlistsThrowNetlistError) {
  for (const fault::NetlistFault& f : fault::netlist_fault_catalog()) {
    SCOPED_TRACE(f.name + ": " + f.description);
    EXPECT_THROW(fault::run_netlist_fault(f.name), netlist::NetlistError);
  }
}

TEST(FaultInjection, RunNetlistFaultRejectsUnknownCase) {
  EXPECT_THROW(fault::run_netlist_fault("no such case"), std::out_of_range);
}

// ------------------------------------------------- numeric stress corners

TEST(FaultInjection, StressTechsPassValidation) {
  for (const fault::TechFault& f : fault::stress_tech_catalog()) {
    SCOPED_TRACE(f.name);
    EXPECT_NO_THROW(f.tech.validate());
  }
}

// The robustness contract end-to-end: optimizing over a validate-passing but
// numerically extreme technology must finish (the watchdog guarantees that)
// and either throw a typed error or return an explicitly flagged result with
// finite numbers. Silent NaN is the one forbidden outcome.
TEST(FaultInjection, StressTechsOptimizeToTypedOutcome) {
  const netlist::Netlist nl = small_circuit();
  for (const fault::TechFault& f : fault::stress_tech_catalog()) {
    SCOPED_TRACE(f.name);
    opt::RobustOptions opts;
    opts.joint.budget.max_evaluations = 400;
    opts.baseline.budget.max_evaluations = 400;
    try {
      const opt::CircuitEvaluator eval(nl, f.tech, profile(),
                                       {.clock_frequency = 100e6});
      const opt::OptimizationResult r =
          opt::RobustOptimizer(eval, opts).run();
      EXPECT_TRUE(r.feasible);
      EXPECT_TRUE(std::isfinite(r.energy.total()));
      EXPECT_TRUE(std::isfinite(r.critical_delay));
      EXPECT_GE(r.critical_delay, 0.0);
      if (r.tier != opt::ResultTier::kJoint) {
        EXPECT_FALSE(r.tier_notes.empty());
      }
    } catch (const util::NumericError&) {
      // Typed: the guards caught the blow-up at the evaluator boundary.
    } catch (const util::InfeasibleError& e) {
      // Typed: no configuration meets timing; diagnostics must be present.
      EXPECT_FALSE(e.limiting_gate().empty());
    }
  }
}

TEST(FaultInjection, CatalogTallyEmitsMachineReadableSummary) {
  const fault::CatalogTally tally = fault::run_fault_catalogs();
  ASSERT_EQ(tally.total_fail(), 0) << "first breach: "
                                   << (tally.failures.empty()
                                           ? "<none>"
                                           : tally.failures.front());
  // One compact JSON line on stdout so a `ctest -L fault` log carries the
  // tally in greppable, parseable form (counters mirror it when enabled;
  // see docs/OBSERVABILITY.md).
  util::JsonWriter w;
  w.begin_object()
      .kv("schema", "minergy.fault_tally.v1")
      .kv("tech_pass", tally.tech_pass)
      .kv("parser_pass", tally.parser_pass)
      .kv("netlist_pass", tally.netlist_pass)
      .kv("stress_pass", tally.stress_pass)
      .kv("fail", tally.total_fail())
      .end_object();
  std::printf("FAULT_TALLY %s\n", w.str().c_str());
}

}  // namespace
}  // namespace minergy
