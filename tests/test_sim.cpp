#include <gtest/gtest.h>

#include "activity/activity.h"
#include "netlist/bench_io.h"
#include "sim/logic_sim.h"
#include "util/rng.h"

namespace minergy::sim {
namespace {

using netlist::GateId;
using netlist::Netlist;

constexpr const char* kC17 = R"(
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";

TEST(LogicSimulator, C17TruthVector) {
  Netlist nl = netlist::parse_bench_string(kC17, "c17");
  LogicSimulator simulator(nl);
  // All inputs low: 10 = 1, 11 = 1, 16 = NAND(0,1) = 1, 19 = NAND(1,0) = 1,
  // 22 = NAND(1,1) = 0, 23 = NAND(1,1) = 0.
  for (GateId pi : nl.primary_inputs()) simulator.set_input(pi, false);
  simulator.evaluate();
  EXPECT_FALSE(simulator.value(nl.find("22")));
  EXPECT_FALSE(simulator.value(nl.find("23")));

  // 1=1, 3=1 -> 10 = 0 -> 22 = NAND(0, x) = 1.
  simulator.set_input(nl.find("1"), true);
  simulator.set_input(nl.find("3"), true);
  simulator.evaluate();
  EXPECT_TRUE(simulator.value(nl.find("22")));
}

TEST(LogicSimulator, ExhaustiveC17MatchesDirectEvaluation) {
  Netlist nl = netlist::parse_bench_string(kC17, "c17");
  LogicSimulator simulator(nl);
  const auto& pis = nl.primary_inputs();
  for (unsigned v = 0; v < 32; ++v) {
    for (std::size_t i = 0; i < pis.size(); ++i) {
      simulator.set_input(pis[i], (v >> i) & 1u);
    }
    simulator.evaluate();
    // Recompute independently, gate by gate.
    std::vector<bool> val(nl.size());
    for (std::size_t i = 0; i < pis.size(); ++i) val[pis[i]] = (v >> i) & 1u;
    for (GateId id : nl.combinational()) {
      std::vector<bool> ins;
      for (GateId f : nl.gate(id).fanins) ins.push_back(val[f]);
      bool acc = true;
      for (bool b : ins) acc = acc && b;
      val[id] = !acc;  // all c17 gates are NAND
      EXPECT_EQ(simulator.value(id), val[id]) << "gate " << nl.gate(id).name;
    }
  }
}

TEST(LogicSimulator, DffStepLatchesSettledValue) {
  Netlist nl = netlist::parse_bench_string(R"(
INPUT(a)
OUTPUT(y)
q = DFF(d)
d = NOT(q)
y = BUF(q)
)");
  LogicSimulator simulator(nl);
  const GateId q = nl.find("q");
  simulator.set_state(q, false);
  simulator.set_input(nl.find("a"), false);
  // q toggles every cycle: 0 -> 1 -> 0 -> 1.
  simulator.step();
  EXPECT_TRUE(simulator.value(q));
  simulator.step();
  EXPECT_FALSE(simulator.value(q));
  simulator.step();
  EXPECT_TRUE(simulator.value(q));
}

TEST(LogicSimulator, TwoDffShiftRegister) {
  Netlist nl = netlist::parse_bench_string(R"(
INPUT(a)
OUTPUT(y)
q1 = DFF(g)
q2 = DFF(q1b)
g = BUF(a)
q1b = BUF(q1)
y = BUF(q2)
)");
  LogicSimulator simulator(nl);
  simulator.set_input(nl.find("a"), true);
  simulator.set_state(nl.find("q1"), false);
  simulator.set_state(nl.find("q2"), false);
  simulator.step();  // q1 <- 1, q2 <- old q1 = 0
  EXPECT_TRUE(simulator.value(nl.find("q1")));
  EXPECT_FALSE(simulator.value(nl.find("q2")));
  simulator.step();  // q2 <- 1
  EXPECT_TRUE(simulator.value(nl.find("q2")));
}

TEST(MeasureActivity, InputChainMatchesRequestedStatistics) {
  Netlist nl = netlist::parse_bench_string(R"(
INPUT(a)
OUTPUT(y)
y = BUF(a)
)");
  activity::ActivityProfile profile;
  profile.input_probability = 0.3;
  profile.input_density = 0.2;
  util::Rng rng(77);
  const MeasuredActivity m = measure_activity(nl, profile, 60000, rng);
  EXPECT_NEAR(m.probability[nl.find("a")], 0.3, 0.02);
  EXPECT_NEAR(m.density[nl.find("a")], 0.2, 0.02);
  // The buffer mirrors its input.
  EXPECT_NEAR(m.density[nl.find("y")], 0.2, 0.02);
}

TEST(MeasureActivity, ValidatesAnalyticEstimateOnTree) {
  // Tree (no reconvergence) at *low* input density: the Boolean-difference
  // method assumes one input transition at a time, so its error is O(d^2)
  // from simultaneous input changes; at d = 0.05 the Monte-Carlo
  // measurement must agree tightly.
  Netlist nl = netlist::parse_bench_string(R"(
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
g1 = NAND(a, b)
g2 = NOR(c, d)
y = AND(g1, g2)
)");
  activity::ActivityProfile profile;
  profile.input_density = 0.05;
  const activity::ActivityResult analytic =
      activity::estimate_activity(nl, profile);
  util::Rng rng(123);
  const MeasuredActivity measured =
      measure_activity(nl, profile, 200000, rng);
  for (GateId id : nl.combinational()) {
    EXPECT_NEAR(measured.probability[id], analytic.probability[id], 0.02)
        << nl.gate(id).name;
    EXPECT_NEAR(measured.density[id], analytic.density[id], 0.01)
        << nl.gate(id).name;
  }
}

TEST(MeasureActivity, SimultaneousSwitchingErrorIsSecondOrder) {
  // At high input density the analytic estimate overshoots by O(d^2): both
  // inputs of a NAND flipping together can cancel. Verify the error's sign
  // and magnitude instead of pretending it is zero.
  Netlist nl = netlist::parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
y = NAND(a, b)
)");
  activity::ActivityProfile profile;
  profile.input_density = 0.3;
  const activity::ActivityResult analytic =
      activity::estimate_activity(nl, profile);
  util::Rng rng(321);
  const MeasuredActivity measured =
      measure_activity(nl, profile, 200000, rng);
  const GateId y = nl.find("y");
  // Exact per-cycle value is 0.255 (see derivation in the test name's
  // discussion); analytic gives 0.30.
  EXPECT_NEAR(analytic.density[y], 0.30, 1e-9);
  EXPECT_NEAR(measured.density[y], 0.255, 0.01);
  EXPECT_GT(analytic.density[y], measured.density[y]);
}

TEST(MeasureActivity, ReconvergenceErrorIsBounded) {
  // y = AND(a, NOT(a)) == 0: the independence assumption overestimates
  // activity; simulation knows the truth. This quantifies the documented
  // first-order error instead of hiding it.
  Netlist nl = netlist::parse_bench_string(R"(
INPUT(a)
OUTPUT(y)
n = NOT(a)
y = AND(a, n)
)");
  activity::ActivityProfile profile;
  profile.input_density = 0.5;
  const activity::ActivityResult analytic =
      activity::estimate_activity(nl, profile);
  util::Rng rng(5);
  const MeasuredActivity measured = measure_activity(nl, profile, 20000, rng);
  const GateId y = nl.find("y");
  EXPECT_NEAR(measured.density[y], 0.0, 1e-12);   // exactly constant 0
  EXPECT_GT(analytic.density[y], 0.0);            // analytic over-estimate
  EXPECT_NEAR(analytic.density[y], 0.5, 1e-9);    // P(n)=0.5 * D(a) * 2
}

TEST(MeasureActivity, DeterministicGivenSeed) {
  Netlist nl = netlist::parse_bench_string(kC17, "c17");
  activity::ActivityProfile profile;
  util::Rng r1(9), r2(9);
  const MeasuredActivity a = measure_activity(nl, profile, 2000, r1);
  const MeasuredActivity b = measure_activity(nl, profile, 2000, r2);
  EXPECT_EQ(a.probability, b.probability);
  EXPECT_EQ(a.density, b.density);
}

TEST(MeasureActivity, SequentialCircuitRuns) {
  Netlist nl = netlist::parse_bench_string(R"(
INPUT(a)
OUTPUT(y)
q = DFF(d)
d = XOR(a, q)
y = BUF(q)
)");
  activity::ActivityProfile profile;
  profile.input_density = 0.4;
  util::Rng rng(11);
  const MeasuredActivity m = measure_activity(nl, profile, 40000, rng);
  // d = a xor q toggles q with the probability that d != q at the clock
  // edge; statistics must be sane.
  EXPECT_GT(m.density[nl.find("q")], 0.0);
  EXPECT_NEAR(m.probability[nl.find("q")], 0.5, 0.05);
}

}  // namespace
}  // namespace minergy::sim
