#include <gtest/gtest.h>

#include <cmath>

#include "tech/device_model.h"
#include "tech/technology.h"

namespace minergy::tech {
namespace {

TEST(Technology, DefaultsValidate) {
  EXPECT_NO_THROW(Technology::generic350().validate());
  EXPECT_NO_THROW(Technology::generic250().validate());
  EXPECT_NO_THROW(Technology::generic500().validate());
}

TEST(Technology, ByNameRoundTrips) {
  EXPECT_EQ(Technology::by_name("generic350").name, "generic350");
  EXPECT_EQ(Technology::by_name("generic250").feature_size, 0.25e-6);
  EXPECT_THROW(Technology::by_name("tsmc7"), std::invalid_argument);
}

TEST(Technology, ValidateRejectsBadParameters) {
  Technology t = Technology::generic350();
  t.alpha = 3.0;
  EXPECT_THROW(t.validate(), std::invalid_argument);

  t = Technology::generic350();
  t.vdd_min = -1.0;
  EXPECT_THROW(t.validate(), std::invalid_argument);

  t = Technology::generic350();
  t.rent_exponent = 1.2;
  EXPECT_THROW(t.validate(), std::invalid_argument);

  t = Technology::generic350();
  t.leakage_scale = 0.0;
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

TEST(Technology, ThermalVoltage) {
  Technology t = Technology::generic350();
  EXPECT_NEAR(t.thermal_vt(), 0.02585, 1e-4);
  EXPECT_NEAR(t.nvt(), t.n_sub * t.thermal_vt(), 1e-15);
}

class DeviceModelTest : public ::testing::Test {
 protected:
  Technology tech_ = Technology::generic350();
  DeviceModel dev_{tech_};
};

TEST_F(DeviceModelTest, SuperthresholdMatchesAlphaPowerLaw) {
  const double vdd = 3.3, vts = 0.7;
  const double expected =
      tech_.pc * tech_.feature_size * std::pow(vdd - vts, tech_.alpha);
  EXPECT_NEAR(dev_.idrive_per_wunit(vdd, vts), expected, expected * 1e-12);
}

TEST_F(DeviceModelTest, SubthresholdSlopeIsExponential) {
  // One nvt of extra underdrive must scale current by exactly e.
  const double vts = 0.5;
  const double nvt = tech_.nvt();
  const double i1 = dev_.idrive_per_wunit(0.30, vts);
  const double i2 = dev_.idrive_per_wunit(0.30 + nvt, vts);
  EXPECT_NEAR(i2 / i1, std::exp(1.0), 1e-6);
}

TEST_F(DeviceModelTest, TransregionalContinuityAtBlendPoint) {
  const double vts = 0.4;
  const double vov0 = dev_.blend_overdrive();
  const double below = dev_.idrive_per_wunit(vts + vov0 - 1e-7, vts);
  const double above = dev_.idrive_per_wunit(vts + vov0 + 1e-7, vts);
  EXPECT_NEAR(below / above, 1.0, 1e-3);
}

TEST_F(DeviceModelTest, DriveMonotoneIncreasingInVdd) {
  const double vts = 0.3;
  double prev = 0.0;
  for (double vdd = 0.1; vdd <= 3.3; vdd += 0.05) {
    const double i = dev_.idrive_per_wunit(vdd, vts);
    EXPECT_GT(i, prev) << "vdd=" << vdd;
    prev = i;
  }
}

TEST_F(DeviceModelTest, DriveMonotoneDecreasingInVts) {
  const double vdd = 1.0;
  double prev = 1e9;
  for (double vts = 0.1; vts <= 0.7; vts += 0.02) {
    const double i = dev_.idrive_per_wunit(vdd, vts);
    EXPECT_LT(i, prev) << "vts=" << vts;
    prev = i;
  }
}

TEST_F(DeviceModelTest, IoffMonotoneDecreasingInVts) {
  double prev = 1e9;
  for (double vts = 0.1; vts <= 0.7; vts += 0.02) {
    const double i = dev_.ioff_per_wunit(vts);
    EXPECT_LT(i, prev) << "vts=" << vts;
    EXPECT_GT(i, 0.0);
    prev = i;
  }
}

TEST_F(DeviceModelTest, IoffDecadePerSubthresholdSlope) {
  // ln(10)*nvt of threshold raise = one decade of subthreshold leakage.
  // (At high Vt the junction floor takes over, so test at low Vt.)
  const double nvt = tech_.nvt();
  const double i1 = dev_.ioff_per_wunit(0.15);
  const double i2 = dev_.ioff_per_wunit(0.15 + std::log(10.0) * nvt);
  EXPECT_NEAR(i1 / i2, 10.0, 0.5);
}

TEST_F(DeviceModelTest, JunctionLeakageFloorsIoff) {
  // At very high Vt, leakage approaches the junction floor, not zero.
  Technology t = tech_;
  t.vts_max = 0.7;
  const double floor = t.junction_leak_per_w *
                       (1.0 + t.beta_ratio) * t.feature_size;
  EXPECT_GT(dev_.ioff_per_wunit(5.0), 0.99 * floor);
}

TEST_F(DeviceModelTest, LeakageScaleMultipliesSubthreshold) {
  Technology t2 = tech_;
  t2.leakage_scale = 2.0 * tech_.leakage_scale;
  t2.junction_leak_per_w = 0.0;
  Technology t1 = tech_;
  t1.junction_leak_per_w = 0.0;
  DeviceModel d1(t1), d2(t2);
  EXPECT_NEAR(d2.ioff_per_wunit(0.3) / d1.ioff_per_wunit(0.3), 2.0, 1e-9);
}

TEST_F(DeviceModelTest, CapacitancesArePositiveAndScaled) {
  EXPECT_GT(dev_.cin_per_wunit(), 0.0);
  EXPECT_GT(dev_.cpar_per_wunit(), 0.0);
  EXPECT_GE(dev_.cmid_per_wunit(), 0.0);
  // Input cap covers both N and P gates: (1 + beta) * cgate * F.
  EXPECT_NEAR(dev_.cin_per_wunit(),
              (1.0 + tech_.beta_ratio) * tech_.cgate_per_w *
                  tech_.feature_size,
              1e-25);
}

TEST_F(DeviceModelTest, SlopeCoefficientBounds) {
  for (double vdd : {0.3, 1.0, 3.3}) {
    for (double vts : {0.1, 0.4, 0.7}) {
      const double k = dev_.slope_coefficient(vdd, vts);
      EXPECT_GE(k, 0.0);
      EXPECT_LE(k, 0.5);
    }
  }
}

TEST_F(DeviceModelTest, SlopeCoefficientIncreasesWithVtsOverVdd) {
  const double k_low = dev_.slope_coefficient(3.3, 0.1);
  const double k_high = dev_.slope_coefficient(0.5, 0.4);
  EXPECT_LT(k_low, k_high);
}

TEST_F(DeviceModelTest, StackFactor) {
  EXPECT_DOUBLE_EQ(DeviceModel::stack_factor(0), 1.0);
  EXPECT_DOUBLE_EQ(DeviceModel::stack_factor(1), 1.0);
  EXPECT_DOUBLE_EQ(DeviceModel::stack_factor(2), 2.0);
  EXPECT_DOUBLE_EQ(DeviceModel::stack_factor(4), 4.0);
}

// Property sweep: monotonicity over a parameter grid (what Procedure 2's
// binary searches rely on).
class DeviceMonotonicity
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(DeviceMonotonicity, DriveDecreasesWithVtsAtFixedVdd) {
  const auto [vdd, vts] = GetParam();
  Technology tech = Technology::generic350();
  DeviceModel dev(tech);
  const double i1 = dev.idrive_per_wunit(vdd, vts);
  const double i2 = dev.idrive_per_wunit(vdd, vts + 0.01);
  EXPECT_GT(i1, i2);
}

TEST_P(DeviceMonotonicity, DriveIncreasesWithVddAtFixedVts) {
  const auto [vdd, vts] = GetParam();
  Technology tech = Technology::generic350();
  DeviceModel dev(tech);
  const double i1 = dev.idrive_per_wunit(vdd, vts);
  const double i2 = dev.idrive_per_wunit(vdd + 0.01, vts);
  EXPECT_LT(i1, i2);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DeviceMonotonicity,
    ::testing::Combine(::testing::Values(0.15, 0.3, 0.6, 1.0, 2.0, 3.3),
                       ::testing::Values(0.1, 0.2, 0.4, 0.7)));

}  // namespace
}  // namespace minergy::tech
