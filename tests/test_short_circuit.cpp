#include <gtest/gtest.h>

#include "activity/activity.h"
#include "interconnect/wire_model.h"
#include "netlist/bench_io.h"
#include "netlist/generator.h"
#include "opt/baseline_optimizer.h"
#include "opt/evaluator.h"
#include "opt/joint_optimizer.h"
#include "power/energy_model.h"

namespace minergy::power {
namespace {

using netlist::GateId;
using netlist::Netlist;

struct Fixture {
  Fixture()
      : nl(netlist::parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
g1 = NAND(a, b)
y = NOT(g1)
)")),
        tech(tech::Technology::generic350()),
        dev(tech),
        wires(tech, nl),
        act(activity::estimate_activity(nl, profile())),
        energy(nl, dev, wires, act, 300e6) {}

  static activity::ActivityProfile profile() {
    activity::ActivityProfile p;
    p.input_density = 0.4;
    return p;
  }

  std::vector<double> widths(double w) const {
    return std::vector<double>(nl.size(), w);
  }

  Netlist nl;
  tech::Technology tech;
  tech::DeviceModel dev;
  interconnect::WireModel wires;
  activity::ActivityResult act;
  EnergyModel energy;
};

TEST(ShortCircuit, MatchesClosedForm) {
  Fixture f;
  const auto w = f.widths(4.0);
  const GateId g1 = f.nl.find("g1");  // 2-input: stack factor 2
  const double tau = 150e-12;
  const double vdd = 2.5, vts = 0.5;
  const double expected = f.act.density[g1] / 6.0 * 4.0 *
                          f.dev.idrive_per_wunit(0.5 * vdd, vts) / 2.0 *
                          tau * (vdd - 2.0 * vts);
  EXPECT_NEAR(f.energy.short_circuit_energy(g1, w, vdd, vts, tau), expected,
              expected * 1e-12);
}

TEST(ShortCircuit, VanishesWhenVddBelowTwiceVts) {
  // Vdd <= 2*Vts: the two networks never conduct simultaneously.
  Fixture f;
  const auto w = f.widths(4.0);
  const GateId g1 = f.nl.find("g1");
  EXPECT_DOUBLE_EQ(f.energy.short_circuit_energy(g1, w, 0.9, 0.5, 1e-10),
                   0.0);
  EXPECT_DOUBLE_EQ(f.energy.short_circuit_energy(g1, w, 1.0, 0.5, 1e-10),
                   0.0);
}

TEST(ShortCircuit, ScalesLinearlyWithSlewAndWidth) {
  Fixture f;
  const GateId g1 = f.nl.find("g1");
  const double e1 =
      f.energy.short_circuit_energy(g1, f.widths(2.0), 2.5, 0.4, 1e-10);
  const double e2 =
      f.energy.short_circuit_energy(g1, f.widths(4.0), 2.5, 0.4, 2e-10);
  EXPECT_NEAR(e2 / e1, 4.0, 1e-9);
}

TEST(ShortCircuit, OrderOfMagnitudeBelowSwitching) {
  // The Veendrick/paper premise that justified neglecting it: under typical
  // slopes (input edge comparable to the gate delay) E_sc is roughly an
  // order of magnitude below E_dyn at the conventional operating point.
  netlist::GeneratorSpec spec;
  spec.num_inputs = 6;
  spec.num_gates = 60;
  spec.depth = 7;
  spec.seed = 12;
  const Netlist nl = netlist::generate_random_logic(spec);
  const tech::Technology tech = tech::Technology::generic350();
  activity::ActivityProfile profile;
  profile.input_density = 0.4;
  const opt::CircuitEvaluator eval(
      nl, tech, profile,
      {.clock_frequency = 250e6, .include_short_circuit = true});
  const opt::OptimizationResult base = opt::BaselineOptimizer(eval).run();
  ASSERT_TRUE(base.feasible);
  const power::EnergyBreakdown e = eval.energy(base.state);
  EXPECT_GT(e.short_circuit_energy, 0.0);
  EXPECT_LT(e.short_circuit_energy, 0.35 * e.dynamic_energy);
}

TEST(ShortCircuit, DisabledByDefault) {
  netlist::GeneratorSpec spec;
  spec.num_inputs = 6;
  spec.num_gates = 40;
  spec.depth = 6;
  spec.seed = 13;
  const Netlist nl = netlist::generate_random_logic(spec);
  const tech::Technology tech = tech::Technology::generic350();
  const activity::ActivityProfile profile;
  const opt::CircuitEvaluator eval(nl, tech, profile,
                                   {.clock_frequency = 250e6});
  const opt::CircuitState state = opt::CircuitState::uniform(nl, 2.0, 0.3, 4.0);
  EXPECT_DOUBLE_EQ(eval.energy(state).short_circuit_energy, 0.0);
}

TEST(ShortCircuit, JointOptimumNearlyEliminatesIt) {
  // At the joint optimum Vdd is close to (or below) 2*Vts, so the
  // short-circuit window nearly closes — scaling suppresses E_sc even
  // faster than E_dyn. This is why including it barely moves the optimum.
  netlist::GeneratorSpec spec;
  spec.num_inputs = 6;
  spec.num_gates = 60;
  spec.depth = 7;
  spec.seed = 14;
  const Netlist nl = netlist::generate_random_logic(spec);
  const tech::Technology tech = tech::Technology::generic350();
  activity::ActivityProfile profile;
  profile.input_density = 0.4;
  const opt::CircuitEvaluator eval(
      nl, tech, profile,
      {.clock_frequency = 250e6, .include_short_circuit = true});
  const opt::OptimizationResult joint = opt::JointOptimizer(eval).run();
  ASSERT_TRUE(joint.feasible);
  const power::EnergyBreakdown e = eval.energy(joint.state);
  EXPECT_LT(e.short_circuit_energy, 0.15 * e.dynamic_energy);
}

TEST(EnergyBreakdownSc, TotalsIncludeShortCircuit) {
  EnergyBreakdown e{1.0, 2.0, 0.5};
  EXPECT_DOUBLE_EQ(e.total(), 3.5);
  EnergyBreakdown f2{0.0, 0.0, 0.25};
  e += f2;
  EXPECT_DOUBLE_EQ(e.short_circuit_energy, 0.75);
}

}  // namespace
}  // namespace minergy::power
