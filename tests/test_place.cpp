#include <gtest/gtest.h>

#include "netlist/bench_io.h"
#include "netlist/generator.h"
#include "place/placement.h"
#include "timing/delay_model.h"
#include "timing/sta.h"
#include "util/rng.h"

namespace minergy::place {
namespace {

using netlist::GateId;
using netlist::Netlist;

Netlist make_circuit(std::uint64_t seed = 8) {
  netlist::GeneratorSpec spec;
  spec.num_inputs = 8;
  spec.num_gates = 80;
  spec.depth = 8;
  spec.num_dffs = 4;
  spec.seed = seed;
  return netlist::generate_random_logic(spec);
}

TEST(Placement, DefaultIsLegalRowMajor) {
  Netlist nl = make_circuit();
  Placement p(nl);
  EXPECT_TRUE(p.legal());
  EXPECT_GE(static_cast<std::size_t>(p.grid_width()) *
                static_cast<std::size_t>(p.grid_height()),
            nl.size());
}

TEST(Placement, SwapKeepsLegality) {
  Netlist nl = make_circuit();
  Placement p(nl);
  p.swap(0, 5);
  p.swap(3, 7);
  EXPECT_TRUE(p.legal());
  // Swapping back restores the original cells.
  const Cell c0 = p.location(0);
  p.swap(0, 5);
  EXPECT_NE(p.location(0).x * 10000 + p.location(0).y,
            c0.x * 10000 + c0.y);
}

TEST(Placement, SetLocationBoundsChecked) {
  Netlist nl = make_circuit();
  Placement p(nl);
  EXPECT_THROW(p.set_location(0, {-1, 0}), std::logic_error);
  EXPECT_THROW(p.set_location(0, {0, p.grid_height()}), std::logic_error);
}

TEST(Placement, HpwlOfKnownConfiguration) {
  Netlist nl = netlist::parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
y = NAND(a, b)
)");
  Placement p(nl);  // 3 nodes -> 2x2 grid
  ASSERT_GE(p.grid_width(), 2);
  const GateId a = nl.find("a"), b = nl.find("b"), y = nl.find("y");
  p.set_location(a, {0, 0});
  p.set_location(b, {1, 1});
  p.set_location(y, {1, 0});
  // Net a: pins {a, y} -> bbox (0..1, 0..0) -> HPWL 1.
  EXPECT_DOUBLE_EQ(p.net_hpwl(a), 1.0);
  // Net b: pins {b, y} -> bbox (1..1, 0..1) -> HPWL 1.
  EXPECT_DOUBLE_EQ(p.net_hpwl(b), 1.0);
  // y drives nothing (PO only): HPWL 0.
  EXPECT_DOUBLE_EQ(p.net_hpwl(y), 0.0);
  EXPECT_DOUBLE_EQ(p.total_hpwl(), 2.0);
}

TEST(AnnealingPlacer, ProducesLegalPlacement) {
  Netlist nl = make_circuit();
  const Placement p = AnnealingPlacer({.seed = 3}).place(nl);
  EXPECT_TRUE(p.legal());
}

TEST(AnnealingPlacer, DeterministicInSeed) {
  Netlist nl = make_circuit();
  const Placement a = AnnealingPlacer({.seed = 3}).place(nl);
  const Placement b = AnnealingPlacer({.seed = 3}).place(nl);
  for (GateId id = 0; id < nl.size(); ++id) {
    EXPECT_EQ(a.location(id).x, b.location(id).x);
    EXPECT_EQ(a.location(id).y, b.location(id).y);
  }
}

TEST(AnnealingPlacer, BeatsRandomPlacementSubstantially) {
  Netlist nl = make_circuit();
  // Random baseline: average HPWL over a few shuffles.
  util::Rng rng(17);
  double random_hpwl = 0.0;
  const int trials = 5;
  for (int t = 0; t < trials; ++t) {
    Placement p(nl);
    for (std::size_t i = 0; i + 1 < nl.size(); ++i) {
      const auto j = i + static_cast<std::size_t>(
                             rng.uniform_index(nl.size() - i));
      p.swap(static_cast<GateId>(i), static_cast<GateId>(j));
    }
    random_hpwl += p.total_hpwl();
  }
  random_hpwl /= trials;

  const Placement placed = AnnealingPlacer({.seed = 5}).place(nl);
  EXPECT_LT(placed.total_hpwl(), 0.7 * random_hpwl);
}

TEST(PlacedWireModel, PhysicalAndConsistent) {
  Netlist nl = make_circuit();
  const tech::Technology tech = tech::Technology::generic350();
  const Placement placed = AnnealingPlacer({.seed = 7}).place(nl);
  const PlacedWireModel wires(tech, placed);
  for (GateId id : nl.combinational()) {
    EXPECT_GE(wires.net_length(id), tech.gate_pitch);
    EXPECT_GE(wires.routed_length(id), wires.net_length(id));
    EXPECT_GT(wires.net_cap(id), 0.0);
    EXPECT_NEAR(wires.flight_time(id),
                wires.net_length(id) / tech.flight_velocity, 1e-20);
  }
}

TEST(PlacedWireModel, DrivesTheTimingFlow) {
  // The whole analysis stack must run on placed wires through the abstract
  // WireLoads interface.
  Netlist nl = make_circuit();
  const tech::Technology tech = tech::Technology::generic350();
  const tech::DeviceModel dev(tech);
  const Placement placed = AnnealingPlacer({.seed = 11}).place(nl);
  const PlacedWireModel wires(tech, placed);
  const timing::DelayCalculator calc(nl, dev, wires);
  const std::vector<double> w(nl.size(), 4.0);
  const timing::TimingReport r = timing::run_sta(calc, w, 1.2, 0.2, 10e-9);
  EXPECT_GT(r.critical_delay, 0.0);
  EXPECT_LT(r.critical_delay, 1e-6);
}

TEST(PlacedWireModel, BetterPlacementMeansSmallerLoads) {
  Netlist nl = make_circuit();
  const tech::Technology tech = tech::Technology::generic350();
  Placement shuffled(nl);
  util::Rng rng(23);
  for (std::size_t i = 0; i + 1 < nl.size(); ++i) {
    const auto j = i + static_cast<std::size_t>(
                           rng.uniform_index(nl.size() - i));
    shuffled.swap(static_cast<GateId>(i), static_cast<GateId>(j));
  }
  const Placement annealed = AnnealingPlacer({.seed = 29}).place(nl);
  const PlacedWireModel random_wires(tech, shuffled);
  const PlacedWireModel placed_wires(tech, annealed);
  double random_cap = 0.0, placed_cap = 0.0;
  for (GateId id : nl.combinational()) {
    random_cap += random_wires.net_cap(id);
    placed_cap += placed_wires.net_cap(id);
  }
  EXPECT_LT(placed_cap, random_cap);
}

}  // namespace
}  // namespace minergy::place
