// High-availability suite: fenced leader leases, hot-standby failover, and
// the clock discipline underneath them.
//
// In-process tests drive LeaseManager/SpoolQueue directly (with a
// util::VirtualClock where wall jumps matter); subprocess tests run the
// real minergy_served binary in leader + standby pairs under deterministic
// --inject-kill / --inject-stop chaos and prove the two HA invariants:
//
//   exactly-once FINALIZATION  no job record is ever finalized twice, even
//                              by a SIGSTOPped zombie leader resumed after
//                              its lease was stolen (the fencing token at
//                              the finalize commit point rejects it)
//   bounded takeover           a standby owns the spool within ~1 lease TTL
//                              of leader death, and resumes in-flight
//                              anneals bit-exactly from their checkpoints
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <fcntl.h>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "io/envelope.h"
#include "obs/metrics.h"
#include "serve/job.h"
#include "serve/lease.h"
#include "serve/overload.h"
#include "serve/queue.h"
#include "util/clock.h"
#include "util/json.h"

#ifndef MINERGY_SERVED_BIN
#error "MINERGY_SERVED_BIN must point at the minergy_served executable"
#endif
#ifndef MINERGY_TRACE_CHECK_BIN
#error "MINERGY_TRACE_CHECK_BIN must point at the trace_check executable"
#endif

namespace minergy::serve {
namespace {

namespace fs = std::filesystem;

struct ScratchSpool {
  explicit ScratchSpool(const std::string& stem)
      : root((fs::temp_directory_path() / ("minergy_ha_" + stem)).string()) {
    fs::remove_all(root);
  }
  ~ScratchSpool() { fs::remove_all(root); }
  std::string root;
};

void sleep_seconds(double s) {
  std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

pid_t spawn_proc(const std::string& binary,
                 const std::vector<std::string>& flags) {
  std::vector<std::string> args = {binary};
  args.insert(args.end(), flags.begin(), flags.end());
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& s : args) argv.push_back(s.data());
  argv.push_back(nullptr);
  const pid_t pid = fork();
  if (pid == 0) {
    const int null_fd = open("/dev/null", O_WRONLY);
    if (null_fd >= 0) {
      dup2(null_fd, STDOUT_FILENO);
      dup2(null_fd, STDERR_FILENO);
      close(null_fd);
    }
    execv(argv[0], argv.data());
    _exit(127);
  }
  return pid;
}

pid_t spawn_served(const std::vector<std::string>& flags) {
  return spawn_proc(MINERGY_SERVED_BIN, flags);
}

int wait_exit(pid_t pid, double timeout_seconds, bool* timed_out = nullptr) {
  if (timed_out != nullptr) *timed_out = false;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  int status = 0;
  for (;;) {
    const pid_t r = waitpid(pid, &status, WNOHANG);
    if (r == pid) return status;
    if (std::chrono::steady_clock::now() >= deadline) {
      if (timed_out != nullptr) *timed_out = true;
      kill(pid, SIGKILL);
      waitpid(pid, &status, 0);
      return status;
    }
    sleep_seconds(0.01);
  }
}

int run_served(const std::vector<std::string>& flags,
               double timeout_seconds = 120.0) {
  bool timed_out = false;
  const int status =
      wait_exit(spawn_served(flags), timeout_seconds, &timed_out);
  EXPECT_FALSE(timed_out) << "daemon did not exit within the cap";
  return status;
}

// /proc/<pid>/stat process state letter ('R', 'S', 'T', ...), or '?'.
char proc_state(pid_t pid) {
  std::ifstream in("/proc/" + std::to_string(pid) + "/stat");
  if (!in) return '?';
  std::string stat;
  std::getline(in, stat);
  const std::size_t close_paren = stat.rfind(')');
  if (close_paren == std::string::npos || close_paren + 2 >= stat.size()) {
    return '?';
  }
  return stat[close_paren + 2];
}

std::string submit_job(SpoolQueue& q, const std::string& circuit,
                       std::uint64_t seed, const std::string& inject = "",
                       const std::string& optimizer = "baseline",
                       int anneal_moves = 0) {
  Job job;
  job.circuit = circuit;
  job.optimizer = optimizer;
  job.seed = seed;
  job.inject = inject;
  job.anneal_moves = anneal_moves;
  return q.submit(job);
}

util::JsonValue read_record(const SpoolQueue& q, const std::string& state,
                            const std::string& id) {
  const std::string path = q.job_path(state, id);
  return util::JsonValue::parse(io::read_artifact(path, ""), path);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

// The exactly-once oracle (same contract as test_serve_chaos, now under
// multi-daemon chaos): every submitted id in exactly one terminal state,
// nothing stuck, done/ certified — cross-checked by the tool's auditor.
void expect_exact_partition(const SpoolQueue& q,
                            const std::set<std::string>& submitted) {
  EXPECT_TRUE(q.ids_in("pending").empty()) << "job(s) left in pending/";
  EXPECT_TRUE(q.ids_in("running").empty()) << "job(s) stuck in running/";
  std::set<std::string> terminal;
  for (const char* state : {"done", "failed", "quarantined"}) {
    for (const std::string& id : q.ids_in(state)) {
      EXPECT_TRUE(terminal.insert(id).second)
          << "job " << id << " is in more than one terminal state";
      EXPECT_TRUE(submitted.count(id) != 0)
          << "unknown job " << id << " appeared in " << state << "/";
    }
  }
  EXPECT_EQ(terminal, submitted);
  for (const std::string& id : q.ids_in("done")) {
    const util::JsonValue rec = read_record(q, "done", id);
    EXPECT_TRUE(rec.at("result").get_bool("certified", false));
    EXPECT_TRUE(rec.at("result").get_bool("feasible", false));
  }
  const int status = run_served({"--spool=" + q.root(), "--status",
                                 "--verify",
                                 "--expect-jobs=" +
                                     std::to_string(submitted.size())});
  const int expect_rc = q.ids_in("quarantined").empty() ? 0 : 4;
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == expect_rc)
      << "minergy_served --status --verify rejected the spool";
}

std::vector<std::string> ha_flags(const std::string& spool, double ttl,
                                  double margin, bool once, bool standby) {
  std::vector<std::string> f = {
      "--spool=" + spool,
      "--workers=2",
      "--poll=0.005",
      "--timeout=20",
      "--retries=1",
      "--backoff=0.01",
      "--drain-grace=0.05",
      "--breaker-threshold=99",
      "--lease-ttl-s=" + std::to_string(ttl),
      "--lease-margin-s=" + std::to_string(margin),
  };
  if (once) f.push_back("--once");
  if (standby) f.push_back("--standby");
  return f;
}

void write_lease_file(const std::string& spool, const LeaseRecord& rec) {
  const std::string content = io::wrap_envelope(rec.to_json(), kLeaseSchema);
  std::ofstream out(spool + "/leader.lease", std::ios::trunc);
  out << content;
}

// ------------------------------------------------------ clock discipline

TEST(HaClock, UnixMonotoneNeverDecreasesAcrossWallJumps) {
  // Leaked: the per-instance floor map keys on the Clock address, so stack
  // reuse across tests would make a fresh clock inherit a stale floor.
  auto* vc = new util::VirtualClock();
  const double u0 = vc->unix_monotone();
  vc->jump_wall(-3600.0);  // NTP step back one hour
  const double u1 = vc->unix_monotone();
  EXPECT_GE(u1, u0) << "unix_monotone went backwards on a wall step";
  vc->advance(10.0);
  const double u2 = vc->unix_monotone();
  EXPECT_NEAR(u2 - u1, 10.0, 1e-9)
      << "time does not advance at monotonic rate while wall lags the floor";
  vc->jump_wall(7200.0);  // correction lands: wall is ahead again
  const double u3 = vc->unix_monotone();
  EXPECT_GE(u3, u2);
  EXPECT_GT(u3, u2 + 3000.0) << "forward correction was not taken";

  const double s0 = util::Clock::system().unix_monotone();
  EXPECT_GT(s0, 1.0e9);
  EXPECT_GE(util::Clock::system().unix_monotone(), s0);
}

TEST(HaClock, OverloadPolicyFreshnessIsBoundedBothSides) {
  OverloadPolicy pol;
  EXPECT_FALSE(pol.fresh(1000.0)) << "never-stamped policy reads fresh";
  pol.updated_unix = 1000.0;
  EXPECT_TRUE(pol.fresh(1000.0));
  EXPECT_TRUE(pol.fresh(1000.0 + kPolicyStaleSeconds - 1.0));
  EXPECT_FALSE(pol.fresh(1000.0 + kPolicyStaleSeconds + 1.0));
  // A policy stamped in the FUTURE (written before a backward wall-clock
  // correction) must also read stale, not fresh-for-hours.
  EXPECT_TRUE(pol.fresh(1000.0 - kPolicyStaleSeconds + 1.0));
  EXPECT_FALSE(pol.fresh(1000.0 - kPolicyStaleSeconds - 1.0));
}

// ------------------------------------------------------- lease state machine

TEST(HaLease, AcquireRenewReleaseHandover) {
  ScratchSpool spool("lease_basic");
  fs::create_directories(spool.root);
  LeaseOptions oa;
  oa.ttl_seconds = 0.3;
  oa.margin_seconds = 0.2;
  oa.host_override = "hostA";
  LeaseManager a(spool.root, oa);
  ASSERT_TRUE(a.try_acquire());
  EXPECT_TRUE(a.is_leader());
  EXPECT_EQ(a.token(), 1u);
  EXPECT_TRUE(a.renew());  // early renew: cheap no-op
  EXPECT_TRUE(a.fence_ok(1));
  EXPECT_FALSE(a.fence_ok(2));

  const auto rec = a.read();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->fencing_token, 1u);
  EXPECT_EQ(rec->owner.host, "hostA");
  EXPECT_FALSE(rec->released);

  a.release();
  EXPECT_FALSE(a.is_leader());
  const auto rel = a.read();
  ASSERT_TRUE(rel.has_value());
  EXPECT_TRUE(rel->released);

  // A released lease hands over instantly (no expiry wait), token bumped.
  LeaseOptions ob = oa;
  ob.host_override = "hostB";
  LeaseManager b(spool.root, ob);
  ASSERT_TRUE(b.try_acquire());
  EXPECT_EQ(b.token(), 2u);
  EXPECT_FALSE(a.fence_ok(1)) << "stale token still passes the fence";
}

TEST(HaLease, StealsOnlyAfterObservedExpiryDespiteWallJumps) {
  ScratchSpool spool("lease_steal");
  fs::create_directories(spool.root);
  auto* vc = new util::VirtualClock();
  LeaseOptions oa;
  oa.ttl_seconds = 0.3;
  oa.margin_seconds = 0.2;  // steal horizon: 0.5 observed seconds
  oa.host_override = "hostA";
  LeaseOptions ob = oa;
  ob.host_override = "hostB";
  LeaseManager a(spool.root, oa, vc);
  LeaseManager b(spool.root, ob, vc);

  ASSERT_TRUE(a.try_acquire());
  EXPECT_FALSE(b.try_acquire()) << "standby stole a fresh lease";

  // Wall-clock chaos during the observation window: steps of ±1 hour on
  // the wall axis must not shorten (or extend) the monotonic horizon.
  vc->advance(0.2);
  vc->jump_wall(-3600.0);
  EXPECT_FALSE(b.try_acquire()) << "backward wall jump caused premature steal";
  vc->advance(0.2);
  vc->jump_wall(3600.0);
  EXPECT_FALSE(b.try_acquire()) << "forward wall jump caused premature steal";

  vc->advance(0.2);  // 0.6 observed seconds > 0.5 horizon
  ASSERT_TRUE(b.try_acquire()) << "expired lease was never stolen";
  EXPECT_EQ(b.token(), 2u);

  // The deposed leader notices on its next heartbeat and self-demotes.
  EXPECT_FALSE(a.renew());
  EXPECT_FALSE(a.is_leader());
  EXPECT_FALSE(a.fence_ok(1));
  EXPECT_TRUE(b.fence_ok(2));
}

TEST(HaLease, RenewalResetsStandbyObservation) {
  ScratchSpool spool("lease_renew");
  fs::create_directories(spool.root);
  auto* vc = new util::VirtualClock();
  LeaseOptions oa;
  oa.ttl_seconds = 0.3;
  oa.margin_seconds = 0.2;
  oa.host_override = "hostA";
  LeaseOptions ob = oa;
  ob.host_override = "hostB";
  LeaseManager a(spool.root, oa, vc);
  LeaseManager b(spool.root, ob, vc);

  ASSERT_TRUE(a.try_acquire());
  EXPECT_FALSE(b.try_acquire());
  vc->advance(0.25);        // past ttl/3: the renew writes
  ASSERT_TRUE(a.renew());
  EXPECT_FALSE(b.try_acquire());  // observation restarts at the new bytes
  vc->advance(0.4);         // 0.4 observed since renewal < 0.5 horizon
  EXPECT_FALSE(b.try_acquire())
      << "standby counted staleness across a renewal";
  vc->advance(0.2);         // 0.6 observed since renewal
  EXPECT_TRUE(b.try_acquire());
}

TEST(HaLease, LeaderSelfDemotesAfterMissingItsOwnTtl) {
  ScratchSpool spool("lease_selfexpire");
  fs::create_directories(spool.root);
  auto* vc = new util::VirtualClock();
  LeaseOptions oa;
  oa.ttl_seconds = 0.3;
  oa.margin_seconds = 0.2;
  oa.host_override = "hostA";
  LeaseManager a(spool.root, oa, vc);
  ASSERT_TRUE(a.try_acquire());
  vc->advance(0.4);  // over-slept past its own ttl
  EXPECT_FALSE(a.renew())
      << "leader rewrote the lease after missing its own ttl";
  EXPECT_FALSE(a.is_leader());
  // The record still names it, so re-acquisition is the instant readopt
  // path with the SAME token (nobody else ever owned the spool).
  EXPECT_TRUE(a.try_acquire());
  EXPECT_EQ(a.token(), 1u);
}

TEST(HaLease, DeadOwnerOnSameHostIsReclaimedImmediately) {
  ScratchSpool spool("lease_dead");
  fs::create_directories(spool.root);
  // A child that exits at once: its pid is a real, now-dead process.
  const pid_t child = fork();
  if (child == 0) _exit(0);
  int status = 0;
  waitpid(child, &status, 0);

  LeaseRecord dead;
  dead.fencing_token = 7;
  dead.owner = LeaseOwner::self();  // real host
  dead.owner.pid = child;
  dead.owner.pid_start_ticks = 12345;
  dead.acquired_unix = 1.0;
  dead.renewed_unix = 1.0;
  dead.ttl_seconds = 3600.0;  // observed expiry would take an hour
  write_lease_file(spool.root, dead);

  LeaseOptions opts;
  opts.ttl_seconds = 3600.0;
  LeaseManager b(spool.root, opts);
  ASSERT_TRUE(b.try_acquire())
      << "dead-owner probe did not reclaim an hour-long lease";
  EXPECT_EQ(b.token(), 8u);
}

TEST(HaLease, RecycledPidIsDetectedByStartTicks) {
  ScratchSpool spool("lease_recycled");
  fs::create_directories(spool.root);
  // The recorded owner is THIS live pid but with impossible start ticks:
  // the pid was recycled, so the recorded process is dead.
  LeaseRecord rec;
  rec.fencing_token = 3;
  rec.owner = LeaseOwner::self();
  rec.owner.pid_start_ticks = 1;  // real start ticks are far larger
  rec.acquired_unix = 1.0;
  rec.renewed_unix = 1.0;
  rec.ttl_seconds = 3600.0;
  write_lease_file(spool.root, rec);

  LeaseOptions opts;
  opts.ttl_seconds = 3600.0;
  LeaseManager b(spool.root, opts);
  ASSERT_TRUE(b.try_acquire()) << "recycled pid read as a live owner";
  EXPECT_EQ(b.token(), 4u);
}

TEST(HaLease, StandbyDefersOnAFreshSpool) {
  ScratchSpool spool("lease_defer");
  fs::create_directories(spool.root);
  auto* vc = new util::VirtualClock();
  LeaseOptions opts;
  opts.ttl_seconds = 0.3;
  opts.margin_seconds = 0.2;
  opts.standby = true;
  LeaseManager s(spool.root, opts, vc);
  EXPECT_FALSE(s.try_acquire())
      << "--standby claimed a fresh spool without waiting for a leader";
  vc->advance(0.3);
  EXPECT_FALSE(s.try_acquire());
  vc->advance(0.3);  // leaderless for a full expiry window: promote
  EXPECT_TRUE(s.try_acquire());
}

// ------------------------------------------------------------ fencing

TEST(HaFence, StaleTokenIsRejectedAtEveryMutatingOp) {
  ScratchSpool spool("fence");
  SpoolQueue q(spool.root);
  LeaseOptions oa;
  oa.ttl_seconds = 0.3;
  oa.margin_seconds = 0.2;
  oa.host_override = "hostA";
  LeaseManager a(spool.root, oa);
  ASSERT_TRUE(a.try_acquire());
  q.set_lease(&a);

  submit_job(q, "c17", 1);
  std::optional<Job> claimed = q.claim(unix_now());
  ASSERT_TRUE(claimed.has_value());
  EXPECT_EQ(claimed->fence_token, 1u)
      << "claim did not journal the fencing token";
  q.update_running(*claimed);  // valid under the live lease

  // Another daemon steals the lease out from under us (token 2, different
  // owner). Every subsequent mutating op under the stale claim must throw.
  LeaseRecord stolen;
  stolen.fencing_token = 2;
  stolen.owner.host = "hostB";
  stolen.owner.pid = 4242;
  stolen.owner.pid_start_ticks = 99;
  stolen.acquired_unix = 1.0;
  stolen.renewed_unix = 1.0;
  stolen.ttl_seconds = 0.3;
  write_lease_file(spool.root, stolen);

  obs::set_enabled(true);
  const std::int64_t rejects_before =
      obs::counter("serve.lease.fenced_rejects").value();
  EXPECT_THROW(q.update_running(*claimed), FencedError);
  EXPECT_THROW(q.requeue(*claimed, "interrupted", 0.0, true), FencedError);
  EXPECT_THROW(q.finalize_failed(*claimed, "error", "stale", ""),
               FencedError);
  EXPECT_THROW(q.finalize_quarantined(*claimed, "stale"), FencedError);
  EXPECT_EQ(obs::counter("serve.lease.fenced_rejects").value(),
            rejects_before + 4)
      << "fenced rejections were not counted";
  // The job is still exactly where the fence left it: running/, untouched.
  EXPECT_EQ(q.ids_in("running").size(), 1u);
  EXPECT_TRUE(q.ids_in("failed").empty());
  q.set_lease(nullptr);

  const FencedError err(1, 2, "finalize_done");
  EXPECT_EQ(err.held_token(), 1u);
  EXPECT_EQ(err.current_token(), 2u);
  EXPECT_NE(std::string(err.what()).find("finalize_done"), std::string::npos);
}

TEST(HaFence, WorkerProbeFailsOpenWithoutALeaseAndClosedOnMismatch) {
  ScratchSpool spool("worker_fence");
  fs::create_directories(spool.root);
  const std::string lease = spool.root + "/leader.lease";
  // Missing lease: plain single-daemon spools must keep working.
  EXPECT_TRUE(lease_token_matches(lease, 7));

  LeaseRecord rec;
  rec.fencing_token = 3;
  rec.owner.host = "h";
  rec.owner.pid = 1;
  rec.owner.pid_start_ticks = 1;
  rec.acquired_unix = 1.0;
  rec.renewed_unix = 1.0;
  rec.ttl_seconds = 1.0;
  write_lease_file(spool.root, rec);
  EXPECT_TRUE(lease_token_matches(lease, 3));
  EXPECT_FALSE(lease_token_matches(lease, 7))
      << "stale token passed the worker-side fence";

  std::ofstream(lease, std::ios::trunc) << "garbage, not an envelope\n";
  EXPECT_TRUE(lease_token_matches(lease, 7))
      << "a damaged lease must fail open (it is the scrubber's problem)";
}

// ----------------------------------------------------- subprocess chaos

TEST(HaFailover, SigkilledLeaderReclaimsItsSpoolImmediately) {
  ScratchSpool spool("reclaim");
  SpoolQueue q(spool.root);
  const std::string id = submit_job(q, "c17", 1);

  // Leader dies by injection right after claiming, leaving an UNRELEASED
  // hour-long lease plus an orphan in running/.
  std::vector<std::string> flags =
      ha_flags(spool.root, 3600.0, 5.0, /*once=*/true, /*standby=*/false);
  flags.push_back("--inject-kill=daemon.post-claim@1");
  run_served(flags);
  {
    const std::string bytes = slurp(spool.root + "/leader.lease");
    ASSERT_FALSE(bytes.empty()) << "killed leader left no lease behind";
    const LeaseRecord rec = LeaseRecord::from_json(
        io::unwrap_envelope(bytes, kLeaseSchema, "leader.lease"),
        "leader.lease");
    EXPECT_EQ(rec.fencing_token, 1u);
    EXPECT_FALSE(rec.released);
  }

  // A restart on the same host must reclaim via the dead-owner probe: the
  // observed-expiry path would take over an hour, far past the cap.
  const std::string events = spool.root + ".reclaim_events.jsonl";
  fs::remove(events);
  std::vector<std::string> restart =
      ha_flags(spool.root, 3600.0, 5.0, /*once=*/true, /*standby=*/false);
  restart.push_back("--event-log=" + events);
  const int status = run_served(restart, 60.0);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  EXPECT_TRUE(fs::exists(q.job_path("done", id)));
  const std::string log = slurp(events);
  EXPECT_NE(log.find("reclaim-dead-owner"), std::string::npos)
      << "restart did not take the dead-owner reclaim path";
  EXPECT_EQ(count_occurrences(log, "\"kind\":\"lease_acquired\""), 1u);
  expect_exact_partition(q, {id});
  fs::remove(events);
}

// Twenty deterministic injection points, each run as a leader + hot-standby
// pair over one spool. Whichever daemon the kill takes out, the exactly-once
// partition must hold after the survivor (plus one clean pass) drains.
TEST(HaFailover, SplitBrainKillSweepKeepsThePartitionExact) {
  struct HaSpec {
    const char* leader;
    const char* standby;
  };
  const std::vector<HaSpec> specs = {
      {"daemon.post-claim@1", ""},
      {"daemon.post-claim@2", ""},
      {"daemon.pre-spawn@1", ""},
      {"daemon.post-spawn@1", ""},
      {"daemon.post-spawn@2", ""},
      {"daemon.post-reap@1", ""},
      {"daemon.post-reap@2", ""},
      {"daemon.pre-finalize@1", ""},
      {"daemon.pre-finalize@2", ""},
      {"daemon.pre-requeue@1", ""},
      {"worker.pre-run@1", ""},
      {"worker.pre-run@2", ""},
      {"worker.pre-result@1", ""},
      {"worker.pre-result@2", ""},
      {"lease.post-acquire@1", ""},
      {"daemon.post-claim@1", "daemon.pre-adopt@1"},
      {"daemon.post-spawn@1", "lease.post-acquire@1"},
      {"daemon.pre-finalize@1", "daemon.pre-adopt@1"},
      {"daemon.post-claim@1", "daemon.post-claim@1"},
      {"daemon.pre-requeue@1", "daemon.post-reap@1"},
  };
  ASSERT_GE(specs.size(), 20u);
  int iteration = 0;
  for (const HaSpec& spec : specs) {
    SCOPED_TRACE(std::string("leader kill: ") + spec.leader +
                 ", standby kill: " +
                 (spec.standby[0] ? spec.standby : "(none)"));
    ScratchSpool spool("split_" + std::to_string(iteration++));
    SpoolQueue q(spool.root);
    std::set<std::string> submitted;
    submitted.insert(submit_job(q, "c17", 1));
    submitted.insert(submit_job(q, "c17", 2));
    const std::string crasher = submit_job(q, "c17", 3, "crash-pre-run");
    submitted.insert(crasher);

    std::vector<std::string> leader =
        ha_flags(spool.root, 0.6, 0.2, /*once=*/true, /*standby=*/false);
    leader.push_back(std::string("--inject-kill=") + spec.leader);
    std::vector<std::string> standby =
        ha_flags(spool.root, 0.6, 0.2, /*once=*/true, /*standby=*/true);
    if (spec.standby[0] != '\0') {
      standby.push_back(std::string("--inject-kill=") + spec.standby);
    }
    const pid_t lp = spawn_served(leader);
    const pid_t sp = spawn_served(standby);
    wait_exit(lp, 90.0);
    wait_exit(sp, 90.0);

    // A clean pass finishes anything a doubly-killed iteration left over.
    ASSERT_EQ(run_served(ha_flags(spool.root, 0.6, 0.2, /*once=*/true,
                                  /*standby=*/false)),
              0);
    expect_exact_partition(q, submitted);
    EXPECT_TRUE(fs::exists(q.job_path("quarantined", crasher)))
        << "the guaranteed crash-looper escaped quarantine";
  }
}

// SIGSTOP zombies: the leader is paused (not killed) at a protocol point,
// the standby takes over and finishes everything, and the resumed zombie's
// stale writes are fenced — never applied. PDEATHSIG does not fire on a
// stop, so exactly-once FINALIZATION (not execution) is the invariant.
TEST(HaFailover, SigstoppedZombieLeaderIsFencedOnResume) {
  const std::vector<std::string> stop_specs = {
      "daemon.post-claim@1",
      "daemon.post-spawn@1",
      "daemon.pre-finalize@1",
  };
  int iteration = 0;
  for (const std::string& spec : stop_specs) {
    SCOPED_TRACE("stop spec: " + spec);
    ScratchSpool spool("zombie_" + std::to_string(iteration++));
    SpoolQueue q(spool.root);
    const std::string id = submit_job(q, "c17", 1);
    const std::string events = spool.root + ".zombie_events.jsonl";
    fs::remove(events);

    std::vector<std::string> leader =
        ha_flags(spool.root, 0.5, 0.1, /*once=*/false, /*standby=*/false);
    leader.push_back("--inject-stop=" + spec);
    leader.push_back("--event-log=" + events);
    const pid_t lp = spawn_served(leader);

    bool stopped = false;
    for (int i = 0; i < 3000; ++i) {
      if (proc_state(lp) == 'T') {
        stopped = true;
        break;
      }
      sleep_seconds(0.01);
    }
    ASSERT_TRUE(stopped) << "leader never hit the SIGSTOP injection point";

    // The hot standby steals within ~1 ttl and drains the spool.
    const int s_status = run_served(
        ha_flags(spool.root, 0.5, 0.1, /*once=*/true, /*standby=*/true));
    EXPECT_TRUE(WIFEXITED(s_status) && WEXITSTATUS(s_status) == 0);
    EXPECT_TRUE(fs::exists(q.job_path("done", id)))
        << "standby did not finish the zombie's claimed job";

    // Resume the zombie: every stale write it attempts must fence, and a
    // SIGTERM must still exit it cleanly (as a demoted standby).
    kill(lp, SIGCONT);
    sleep_seconds(0.3);
    kill(lp, SIGTERM);
    const int l_status = wait_exit(lp, 60.0);
    EXPECT_TRUE(WIFEXITED(l_status) && WEXITSTATUS(l_status) == 0)
        << "resumed zombie did not exit cleanly after fencing";

    expect_exact_partition(q, {id});
    const std::string log = slurp(events);
    if (spec == "daemon.pre-finalize@1") {
      // Stopped BETWEEN the worker's committed envelope and the finalize:
      // the resumed finalize is the textbook stale write and must have been
      // rejected at the commit point.
      EXPECT_GE(count_occurrences(log, "\"kind\":\"fenced_reject\""), 1u)
          << "zombie finalize was not fenced";
    }
    EXPECT_GE(count_occurrences(log, "\"kind\":\"lease_lost\""), 1u);
    // The zombie's own event stream must satisfy the lease-ordering rules
    // (no double acquire, no claims while deposed, detailed fence events).
    bool timed_out = false;
    const int tstat = wait_exit(
        spawn_proc(MINERGY_TRACE_CHECK_BIN, {"--verify-eventlog=" + events}),
        30.0, &timed_out);
    EXPECT_FALSE(timed_out);
    EXPECT_TRUE(WIFEXITED(tstat) && WEXITSTATUS(tstat) == 0)
        << "trace_check rejected the zombie leader's event log";
    fs::remove(events);
  }
}

// kill -9 the leader mid-anneal; the hot standby must take over within ~1
// ttl and resume the run BIT-EXACTLY from its checkpoint — identical result
// fields to a never-interrupted reference run of the same job.
TEST(HaFailover, StandbyTakeoverResumesAnnealBitExactly) {
  const int kMoves = 800000;
  ScratchSpool failed_over("bitexact_a");
  ScratchSpool reference("bitexact_b");
  SpoolQueue qa(failed_over.root);
  SpoolQueue qb(reference.root);
  const std::string ida =
      submit_job(qa, "s27", 7, "", "anneal", kMoves);
  const std::string idb =
      submit_job(qb, "s27", 7, "", "anneal", kMoves);
  const std::string events = failed_over.root + ".standby_events.jsonl";
  fs::remove(events);

  std::vector<std::string> leader =
      ha_flags(failed_over.root, 0.5, 0.1, /*once=*/false, /*standby=*/false);
  leader[1] = "--workers=1";
  const pid_t lp = spawn_served(leader);
  // Let the leader win the election before the standby starts observing.
  for (int i = 0;
       i < 2000 && !fs::exists(failed_over.root + "/leader.lease"); ++i) {
    sleep_seconds(0.005);
  }
  std::vector<std::string> standby =
      ha_flags(failed_over.root, 0.5, 0.1, /*once=*/true, /*standby=*/true);
  standby[1] = "--workers=1";
  standby.push_back("--event-log=" + events);
  const pid_t sp = spawn_served(standby);

  // Wait for the in-flight anneal to snapshot, then murder the leader.
  const std::string ck_path = qa.checkpoint_path(ida);
  bool saw_checkpoint = false;
  for (int i = 0; i < 4000; ++i) {
    if (fs::exists(ck_path)) {
      saw_checkpoint = true;
      break;
    }
    sleep_seconds(0.005);
  }
  ASSERT_TRUE(saw_checkpoint) << "worker never wrote a checkpoint";
  kill(lp, SIGKILL);
  int status = 0;
  waitpid(lp, &status, 0);

  // The standby (same host) reclaims via the dead-owner probe, requeues
  // the orphan with its checkpoint preserved, resumes, and drains.
  bool timed_out = false;
  const int s_status = wait_exit(sp, 120.0, &timed_out);
  ASSERT_FALSE(timed_out) << "standby never finished the takeover";
  EXPECT_TRUE(WIFEXITED(s_status) && WEXITSTATUS(s_status) == 0);

  ASSERT_TRUE(fs::exists(qa.job_path("done", ida)));
  const util::JsonValue ra = read_record(qa, "done", ida);
  EXPECT_TRUE(ra.at("result").get_bool("resumed", false))
      << "standby re-ran the anneal from scratch instead of resuming";

  // Exactly one takeover, and it happened through the lease.
  const std::string log = slurp(events);
  EXPECT_EQ(count_occurrences(log, "\"kind\":\"lease_acquired\""), 1u);

  // Reference: the same job, never interrupted.
  std::vector<std::string> ref =
      ha_flags(reference.root, 0.5, 0.1, /*once=*/true, /*standby=*/false);
  ref[1] = "--workers=1";
  ASSERT_EQ(run_served(ref), 0);
  ASSERT_TRUE(fs::exists(qb.job_path("done", idb)));
  const util::JsonValue rb = read_record(qb, "done", idb);

  for (const char* field : {"energy_total", "static_energy",
                            "dynamic_energy", "vdd", "vts_primary",
                            "critical_delay"}) {
    EXPECT_EQ(ra.at("result").get_number(field, -1.0),
              rb.at("result").get_number(field, -2.0))
        << "field " << field << " diverged across the failover";
  }
  EXPECT_TRUE(ra.at("result").get_bool("certified", false));
  expect_exact_partition(qa, {ida});
  fs::remove(events);
}

// The health document carries the daemon's HA role so monitors can tell a
// leader from a standby without parsing the lease.
TEST(HaFailover, HealthFileCarriesRoleAndLeaseToken) {
  ScratchSpool spool("role");
  SpoolQueue q(spool.root);
  submit_job(q, "c17", 1);
  ASSERT_EQ(run_served(ha_flags(spool.root, 0.5, 0.1, /*once=*/true,
                                /*standby=*/false)),
            0);
  const std::string path = spool.root + "/health.json";
  const util::JsonValue h = util::JsonValue::parse(
      io::read_artifact(path, "minergy.health.v1"), path);
  EXPECT_EQ(h.get_string("role", ""), "leader");
  EXPECT_GE(h.get_number("lease_token", 0.0), 1.0);
}

}  // namespace
}  // namespace minergy::serve
