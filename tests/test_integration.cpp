// End-to-end flows across module boundaries: parse/generate -> activity ->
// wires -> budgets -> sizing -> STA -> energy -> optimization.
#include <gtest/gtest.h>

#include <cmath>

#include "activity/activity.h"
#include "bench_suite/experiment.h"
#include "bench_suite/iscas.h"
#include "netlist/bench_io.h"
#include "netlist/generator.h"
#include "opt/baseline_optimizer.h"
#include "opt/evaluator.h"
#include "opt/joint_optimizer.h"
#include "sim/logic_sim.h"
#include "util/rng.h"

namespace minergy {
namespace {

TEST(Integration, FullFlowOnC17) {
  netlist::Netlist nl = bench_suite::make_c17();
  tech::Technology tech = tech::Technology::generic350();
  activity::ActivityProfile profile;
  profile.input_density = 0.25;
  opt::CircuitEvaluator eval(nl, tech, profile, {.clock_frequency = 400e6});

  const opt::OptimizationResult base = opt::BaselineOptimizer(eval).run();
  const opt::OptimizationResult joint = opt::JointOptimizer(eval).run();
  ASSERT_TRUE(base.feasible);
  ASSERT_TRUE(joint.feasible);
  EXPECT_LT(joint.energy.total(), base.energy.total());
  EXPECT_TRUE(eval.meets_timing(joint.state, 0.95));
}

TEST(Integration, ParsedAndGeneratedCircuitsShareTheFullPipeline) {
  // The same flow must work identically on a parsed .bench netlist after a
  // round trip through the writer.
  netlist::GeneratorSpec spec;
  spec.num_inputs = 6;
  spec.num_gates = 50;
  spec.depth = 6;
  spec.num_dffs = 4;
  spec.seed = 9;
  netlist::Netlist original = netlist::generate_random_logic(spec);
  netlist::Netlist reparsed =
      netlist::parse_bench_string(netlist::to_bench(original), "rt");

  tech::Technology tech = tech::Technology::generic350();
  activity::ActivityProfile profile;
  opt::EvalSettings settings{.clock_frequency = 250e6, .vts_tolerance = 0.0};
  opt::CircuitEvaluator e1(original, tech, profile, settings);
  opt::CircuitEvaluator e2(reparsed, tech, profile, settings);

  const opt::OptimizationResult r1 = opt::JointOptimizer(e1).run();
  const opt::OptimizationResult r2 = opt::JointOptimizer(e2).run();
  ASSERT_TRUE(r1.feasible && r2.feasible);
  // Gate ids may differ (parse order), but the physics must agree to
  // within numerical noise: identical topology, wires keyed by id...
  // ids are preserved by the writer's emission order for logic gates, so
  // energies match exactly only if the id mapping is stable; allow 20%.
  EXPECT_NEAR(r1.energy.total() / r2.energy.total(), 1.0, 0.2);
}

TEST(Integration, ActivityFeedsEnergyConsistently) {
  // Double the input activity -> dynamic energy at a fixed state scales
  // accordingly through the whole stack (activity -> energy model).
  netlist::Netlist nl = bench_suite::make_c17();
  tech::Technology tech = tech::Technology::generic350();
  activity::ActivityProfile lo, hi;
  lo.input_density = 0.1;
  hi.input_density = 0.2;
  opt::EvalSettings settings{.clock_frequency = 300e6, .vts_tolerance = 0.0};
  opt::CircuitEvaluator e_lo(nl, tech, lo, settings);
  opt::CircuitEvaluator e_hi(nl, tech, hi, settings);
  const opt::CircuitState state =
      opt::CircuitState::uniform(nl, 1.0, 0.3, 4.0);
  EXPECT_NEAR(e_hi.energy(state).dynamic_energy /
                  e_lo.energy(state).dynamic_energy,
              2.0, 1e-9);
  EXPECT_DOUBLE_EQ(e_hi.energy(state).static_energy,
                   e_lo.energy(state).static_energy);
}

TEST(Integration, OptimizedCircuitStillComputesCorrectLogic) {
  // Optimization changes electrical parameters, never logic: simulate c17
  // before and after (trivially, the netlist is shared and immutable).
  netlist::Netlist nl = bench_suite::make_c17();
  sim::LogicSimulator simulator(nl);
  for (netlist::GateId pi : nl.primary_inputs()) {
    simulator.set_input(pi, true);
  }
  simulator.evaluate();
  // With all-ones inputs: 10 = 0, 11 = 0, 16 = 1, 19 = 1, 22 = 1, 23 = 0.
  EXPECT_TRUE(simulator.value(nl.find("22")));
  EXPECT_FALSE(simulator.value(nl.find("23")));
}

TEST(Integration, MonteCarloValidatesAnalyticActivityOnS27Core) {
  netlist::Netlist nl = bench_suite::make_s27();
  activity::ActivityProfile profile;
  profile.input_density = 0.3;
  profile.dff_iterations = 40;
  const activity::ActivityResult analytic =
      activity::estimate_activity(nl, profile);
  util::Rng rng(4242);
  const sim::MeasuredActivity measured =
      sim::measure_activity(nl, profile, 60000, rng);
  // s27 has reconvergence and feedback; require agreement within coarse
  // first-order bounds rather than exactness.
  for (netlist::GateId id : nl.combinational()) {
    EXPECT_NEAR(measured.probability[id], analytic.probability[id], 0.25)
        << nl.gate(id).name;
    EXPECT_LE(std::fabs(measured.density[id] - analytic.density[id]), 0.5)
        << nl.gate(id).name;
  }
}

TEST(Integration, EndToEndDeterminism) {
  bench_suite::ExperimentConfig cfg;
  cfg.input_activities = {0.2};
  const auto a = bench_suite::run_circuit(bench_suite::paper_circuits()[1], cfg);
  const auto b = bench_suite::run_circuit(bench_suite::paper_circuits()[1], cfg);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].joint.energy.total(), b[0].joint.energy.total());
  EXPECT_EQ(a[0].baseline.energy.total(), b[0].baseline.energy.total());
  EXPECT_EQ(a[0].cycle_time, b[0].cycle_time);
}

}  // namespace
}  // namespace minergy
