#include <gtest/gtest.h>

#include <array>

#include "netlist/gate.h"
#include "netlist/netlist.h"
#include "netlist/stats.h"

namespace minergy::netlist {
namespace {

// ----------------------------------------------------------------- gate.h

TEST(GateType, StringRoundTrip) {
  for (GateType t : {GateType::kInput, GateType::kBuf, GateType::kNot,
                     GateType::kAnd, GateType::kNand, GateType::kOr,
                     GateType::kNor, GateType::kXor, GateType::kXnor,
                     GateType::kDff}) {
    const auto parsed = gate_type_from_string(to_string(t));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, t);
  }
}

TEST(GateType, AcceptsCommonSpellings) {
  EXPECT_EQ(gate_type_from_string("buff"), GateType::kBuf);
  EXPECT_EQ(gate_type_from_string("INV"), GateType::kNot);
  EXPECT_EQ(gate_type_from_string(" nand "), GateType::kNand);
  EXPECT_EQ(gate_type_from_string("FF"), GateType::kDff);
  EXPECT_FALSE(gate_type_from_string("MAJORITY").has_value());
}

TEST(GateType, Classification) {
  EXPECT_TRUE(is_combinational(GateType::kNand));
  EXPECT_FALSE(is_combinational(GateType::kInput));
  EXPECT_FALSE(is_combinational(GateType::kDff));
  EXPECT_TRUE(is_inverting(GateType::kNor));
  EXPECT_FALSE(is_inverting(GateType::kAnd));
}

TEST(GateType, FaninBounds) {
  EXPECT_EQ(min_fanin(GateType::kInput), 0);
  EXPECT_EQ(min_fanin(GateType::kNot), 1);
  EXPECT_EQ(max_fanin(GateType::kNot), 1);
  EXPECT_EQ(min_fanin(GateType::kNand), 2);
  EXPECT_EQ(max_fanin(GateType::kNand), 0);  // unbounded
}

TEST(GateEval, TruthTables) {
  const std::array<bool, 2> tt{true, true};
  const std::array<bool, 2> tf{true, false};
  const std::array<bool, 2> ff{false, false};
  EXPECT_TRUE(evaluate(GateType::kAnd, tt));
  EXPECT_FALSE(evaluate(GateType::kAnd, tf));
  EXPECT_FALSE(evaluate(GateType::kNand, tt));
  EXPECT_TRUE(evaluate(GateType::kNand, ff));
  EXPECT_TRUE(evaluate(GateType::kOr, tf));
  EXPECT_FALSE(evaluate(GateType::kOr, ff));
  EXPECT_TRUE(evaluate(GateType::kNor, ff));
  EXPECT_TRUE(evaluate(GateType::kXor, tf));
  EXPECT_FALSE(evaluate(GateType::kXor, tt));
  EXPECT_TRUE(evaluate(GateType::kXnor, tt));
  const std::array<bool, 1> t1{true};
  EXPECT_FALSE(evaluate(GateType::kNot, t1));
  EXPECT_TRUE(evaluate(GateType::kBuf, t1));
}

TEST(GateEval, MultiInputParity) {
  const std::array<bool, 3> v{true, true, true};
  EXPECT_TRUE(evaluate(GateType::kXor, v));  // odd parity
  EXPECT_FALSE(evaluate(GateType::kXnor, v));
}

// -------------------------------------------------------------- netlist.h

Netlist make_diamond() {
  //   a -- g1 --+
  //             +-- g3 --- (PO)
  //   b -- g2 --+
  Netlist nl("diamond");
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId g1 = nl.add_gate(GateType::kNot, "g1", {a});
  const GateId g2 = nl.add_gate(GateType::kNot, "g2", {b});
  const GateId g3 = nl.add_gate(GateType::kNand, "g3", {g1, g2});
  nl.mark_output(g3);
  nl.finalize();
  return nl;
}

TEST(Netlist, BasicConstruction) {
  Netlist nl = make_diamond();
  EXPECT_EQ(nl.size(), 5u);
  EXPECT_EQ(nl.num_combinational(), 3u);
  EXPECT_EQ(nl.primary_inputs().size(), 2u);
  EXPECT_EQ(nl.primary_outputs().size(), 1u);
  EXPECT_EQ(nl.depth(), 2);
}

TEST(Netlist, TopologicalOrderRespectsFanins) {
  Netlist nl = make_diamond();
  std::vector<int> pos(nl.size(), -1);
  int i = 0;
  for (GateId id : nl.combinational()) pos[id] = i++;
  for (GateId id : nl.combinational()) {
    for (GateId f : nl.gate(id).fanins) {
      if (is_combinational(nl.gate(f).type)) {
        EXPECT_LT(pos[f], pos[id]);
      }
    }
  }
}

TEST(Netlist, FanoutsComputed) {
  Netlist nl = make_diamond();
  const GateId a = nl.find("a");
  const GateId g1 = nl.find("g1");
  ASSERT_NE(a, kInvalidGate);
  EXPECT_EQ(nl.gate(a).fanouts.size(), 1u);
  EXPECT_EQ(nl.gate(a).fanouts[0], g1);
}

TEST(Netlist, BranchCountIncludesPrimaryOutput) {
  Netlist nl = make_diamond();
  const GateId g3 = nl.find("g3");
  EXPECT_EQ(nl.gate(g3).branch_count(), 1);  // PO pin only
  const GateId g1 = nl.find("g1");
  EXPECT_EQ(nl.gate(g1).branch_count(), 1);  // one fanout gate
}

TEST(Netlist, BranchCountNeverZero) {
  Netlist nl("dangling");
  const GateId a = nl.add_input("a");
  nl.add_gate(GateType::kNot, "g", {a});  // no fanout, not a PO
  nl.finalize();
  EXPECT_EQ(nl.gate(nl.find("g")).branch_count(), 1);
}

TEST(Netlist, DuplicateNameThrows) {
  Netlist nl;
  nl.add_input("x");
  EXPECT_THROW(nl.add_input("x"), std::invalid_argument);
}

TEST(Netlist, BadArityThrows) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  nl.add_gate(GateType::kNand, "g", {a});  // NAND needs >= 2 inputs
  EXPECT_THROW(nl.finalize(), std::invalid_argument);
}

TEST(Netlist, CombinationalCycleThrows) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId g1 = nl.add_gate(GateType::kNand, "g1");
  const GateId g2 = nl.add_gate(GateType::kNand, "g2", {a, g1});
  nl.set_fanins(g1, {a, g2});
  EXPECT_THROW(nl.finalize(), std::invalid_argument);
}

TEST(Netlist, DffBreaksCycle) {
  // a loop through a DFF is sequential, not combinational: must finalize.
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId q = nl.add_dff("q");
  const GateId g = nl.add_gate(GateType::kNand, "g", {a, q});
  nl.set_fanins(q, {g});
  nl.mark_output(g);
  EXPECT_NO_THROW(nl.finalize());
  EXPECT_EQ(nl.level(q), 0);
  EXPECT_EQ(nl.level(g), 1);
}

TEST(Netlist, SinkDriversIncludeDffFeeders) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId q = nl.add_dff("q");
  const GateId g = nl.add_gate(GateType::kNot, "g", {a});
  nl.set_fanins(q, {g});
  nl.finalize();
  ASSERT_EQ(nl.sink_drivers().size(), 1u);
  EXPECT_EQ(nl.sink_drivers()[0], g);
}

TEST(Netlist, FindReturnsInvalidForUnknown) {
  Netlist nl = make_diamond();
  EXPECT_EQ(nl.find("nonexistent"), kInvalidGate);
}

TEST(Netlist, FinalizeTwiceThrows) {
  Netlist nl = make_diamond();
  EXPECT_THROW(nl.finalize(), std::logic_error);
}

TEST(Netlist, MutationAfterFinalizeThrows) {
  Netlist nl = make_diamond();
  EXPECT_THROW(nl.add_input("z"), std::logic_error);
}

TEST(Netlist, SourcesAreInputsAndDffs) {
  Netlist nl;
  nl.add_input("a");
  const GateId q = nl.add_dff("q");
  const GateId g = nl.add_gate(GateType::kNot, "g", {nl.find("a")});
  nl.set_fanins(q, {g});
  nl.finalize();
  EXPECT_EQ(nl.sources().size(), 2u);
  EXPECT_TRUE(nl.is_source(nl.find("a")));
  EXPECT_TRUE(nl.is_source(q));
  EXPECT_FALSE(nl.is_source(g));
}

// ---------------------------------------------------------------- stats.h

TEST(NetlistStats, DiamondNumbers) {
  Netlist nl = make_diamond();
  const NetlistStats s = compute_stats(nl);
  EXPECT_EQ(s.num_gates, 3u);
  EXPECT_EQ(s.num_inputs, 2u);
  EXPECT_EQ(s.num_outputs, 1u);
  EXPECT_EQ(s.depth, 2);
  EXPECT_NEAR(s.avg_fanin, (1 + 1 + 2) / 3.0, 1e-12);
  EXPECT_EQ(s.type_counts[static_cast<std::size_t>(GateType::kNot)], 2u);
  EXPECT_FALSE(s.to_string().empty());
}

}  // namespace
}  // namespace minergy::netlist
