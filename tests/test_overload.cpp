// Overload-protection suite (`ctest -L overload`): deterministic,
// virtual-clock tests for the deadline/priority scheduler, the CoDel-style
// shed controller, per-client quotas, and the SLO brownout feedback loop —
// plus SIGKILL chaos at the new shed/expire protocol points proving the
// exactly-once contract extends to jobs the service *refuses*.
//
// Nothing here sleeps to provoke an overload: the controller and scheduler
// take explicit timestamps, so bursts are synthesized by feeding the exact
// sojourn/e2e samples a loaded daemon would have observed.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "io/envelope.h"
#include "netlist/generator.h"
#include "opt/evaluator.h"
#include "opt/robust_optimizer.h"
#include "serve/inject.h"
#include "serve/job.h"
#include "serve/overload.h"
#include "serve/queue.h"
#include "serve/sched.h"
#include "util/check.h"
#include "util/json.h"

#ifndef MINERGY_SERVED_BIN
#error "MINERGY_SERVED_BIN must point at the minergy_served executable"
#endif

namespace minergy::serve {
namespace {

namespace fs = std::filesystem;

struct ScratchSpool {
  explicit ScratchSpool(const std::string& stem)
      : root((fs::temp_directory_path() / ("minergy_overload_" + stem))
                 .string()) {
    fs::remove_all(root);
  }
  ~ScratchSpool() { fs::remove_all(root); }
  std::string root;
};

SchedEntry entry(const std::string& id, Priority p, double complete_by = 0.0,
                 double submitted = 100.0, double not_before = 0.0) {
  SchedEntry e;
  e.id = id;
  e.priority = p;
  e.complete_by_unix = complete_by;
  e.submitted_unix = submitted;
  e.not_before_unix = not_before;
  return e;
}

// ------------------------------------------------------------ scheduler

TEST(Sched, PriorityBandsBeforeDeadlines) {
  // An interactive job with a *later* deadline still beats every batch job:
  // bands are strict, EDF only orders within one.
  const std::vector<SchedEntry> entries = {
      entry("bat-early", Priority::kBatch, 2000.0),
      entry("int-late", Priority::kInteractive, 9000.0),
      entry("bg-urgent", Priority::kBackground, 1001.0),
  };
  const ClaimPlan plan = plan_claims(entries, 1000.0);
  EXPECT_TRUE(plan.expired.empty());
  ASSERT_EQ(plan.order.size(), 3u);
  EXPECT_EQ(plan.order[0], "int-late");
  EXPECT_EQ(plan.order[1], "bat-early");
  EXPECT_EQ(plan.order[2], "bg-urgent");
}

TEST(Sched, EdfWithinBandAndNoDeadlineSortsLast) {
  const std::vector<SchedEntry> entries = {
      entry("none-a", Priority::kBatch, 0.0, 50.0),
      entry("late", Priority::kBatch, 5000.0, 99.0),
      entry("soon", Priority::kBatch, 1500.0, 99.0),
      entry("none-b", Priority::kBatch, 0.0, 40.0),
  };
  const ClaimPlan plan = plan_claims(entries, 1000.0);
  ASSERT_EQ(plan.order.size(), 4u);
  EXPECT_EQ(plan.order[0], "soon");
  EXPECT_EQ(plan.order[1], "late");
  // Deadline-less jobs sort after all deadlined ones, FIFO by submit time.
  EXPECT_EQ(plan.order[2], "none-b");
  EXPECT_EQ(plan.order[3], "none-a");
}

TEST(Sched, ExpiredAndBackingOffArePartitionedOut) {
  const std::vector<SchedEntry> entries = {
      entry("dead", Priority::kInteractive, 999.0),
      entry("dead-backing-off", Priority::kBatch, 500.0, 100.0, 2000.0),
      entry("backing-off", Priority::kBatch, 0.0, 100.0, 2000.0),
      entry("live", Priority::kBackground),
  };
  const ClaimPlan plan = plan_claims(entries, 1000.0);
  // A missed deadline expires even while backing off — the retry could
  // never produce a usable answer.
  EXPECT_EQ(plan.expired, (std::vector<std::string>{"dead",
                                                    "dead-backing-off"}));
  EXPECT_EQ(plan.order, std::vector<std::string>{"live"});
}

TEST(Sched, TotalOrderIsDeterministic) {
  // Identical metadata falls through to the id tiebreak, so two claimants
  // walking the same snapshot agree on one order.
  const std::vector<SchedEntry> entries = {
      entry("b", Priority::kBatch, 0.0, 100.0),
      entry("a", Priority::kBatch, 0.0, 100.0),
      entry("c", Priority::kBatch, 0.0, 100.0),
  };
  const ClaimPlan plan = plan_claims(entries, 1000.0);
  EXPECT_EQ(plan.order, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Sched, ShedLadderNeverTouchesInteractive) {
  for (int level = 0; level <= 3; ++level) {
    EXPECT_FALSE(sheds_at_level(Priority::kInteractive, level));
  }
  EXPECT_FALSE(sheds_at_level(Priority::kBackground, 0));
  EXPECT_TRUE(sheds_at_level(Priority::kBackground, 1));
  EXPECT_FALSE(sheds_at_level(Priority::kBatch, 1));
  EXPECT_TRUE(sheds_at_level(Priority::kBatch, 2));
}

TEST(Sched, PriorityStringsRoundTripAndRejectJunk) {
  for (const Priority p : {Priority::kInteractive, Priority::kBatch,
                           Priority::kBackground}) {
    EXPECT_EQ(priority_from_string(to_string(p), "<test>"), p);
  }
  EXPECT_THROW(priority_from_string("urgent", "<test>"), util::ParseError);
  EXPECT_THROW(priority_from_string("", "<test>"), util::ParseError);
}

// --------------------------------------------------------- shed controller

OverloadOptions shed_opts(double target = 0.05, double window = 1.0) {
  OverloadOptions o;
  o.shed_target_seconds = target;
  o.shed_window_seconds = window;
  return o;
}

TEST(ShedController, BurstWithOneFastClaimDoesNotShed) {
  // The CoDel property: a burst that still lets one job through quickly is
  // not an overload — only the window *minimum* over target sheds.
  OverloadController ctl(shed_opts());
  ctl.observe_sojourn(2.0, 10.0);
  ctl.observe_sojourn(3.0, 10.2);
  ctl.observe_sojourn(0.001, 10.4);  // one nearly-instant claim
  EXPECT_FALSE(ctl.tick(10.5));
  EXPECT_EQ(ctl.shed_level(), 0);
  EXPECT_FALSE(ctl.should_shed(Priority::kBackground));
}

TEST(ShedController, SustainedOverloadEscalatesThenClears) {
  OverloadController ctl(shed_opts(0.05, 1.0));
  ctl.observe_sojourn(0.4, 10.0);
  ctl.observe_sojourn(0.5, 10.3);
  EXPECT_TRUE(ctl.tick(10.3));  // min over target -> level 1
  EXPECT_EQ(ctl.shed_level(), 1);
  EXPECT_TRUE(ctl.should_shed(Priority::kBackground));
  EXPECT_FALSE(ctl.should_shed(Priority::kBatch));

  // Still over target one full window later: escalate to 2 (batch too).
  ctl.observe_sojourn(0.6, 11.2);
  EXPECT_TRUE(ctl.tick(11.4));
  EXPECT_EQ(ctl.shed_level(), 2);
  EXPECT_TRUE(ctl.should_shed(Priority::kBatch));
  EXPECT_FALSE(ctl.should_shed(Priority::kInteractive));

  // One fast claim ends the episode immediately.
  ctl.observe_sojourn(0.001, 11.5);
  EXPECT_TRUE(ctl.tick(11.5));
  EXPECT_EQ(ctl.shed_level(), 0);
}

TEST(ShedController, EmptyWindowClears) {
  OverloadController ctl(shed_opts(0.05, 1.0));
  ctl.observe_sojourn(0.4, 10.0);
  ASSERT_TRUE(ctl.tick(10.1));
  ASSERT_EQ(ctl.shed_level(), 1);
  // No claims for a full window: the sample ages out and shedding stops
  // (an empty queue cannot be overloaded).
  EXPECT_TRUE(ctl.tick(11.5));
  EXPECT_EQ(ctl.shed_level(), 0);
}

// ------------------------------------------------------ brownout controller

OverloadOptions brownout_opts(double slo = 0.1, double dwell = 2.0,
                              double window = 1.0) {
  OverloadOptions o;
  o.slo_e2e_seconds = slo;
  o.brownout_dwell_seconds = dwell;
  o.shed_window_seconds = window;
  return o;
}

void feed_e2e(OverloadController& ctl, double seconds, double at, int n = 3) {
  for (int i = 0; i < n; ++i) ctl.observe_e2e(seconds, at);
}

TEST(BrownoutController, DegradesOnP95OverSloAndRecoversWithHysteresis) {
  OverloadController ctl(brownout_opts(0.1, 2.0));
  feed_e2e(ctl, 1.0, 10.0);
  EXPECT_TRUE(ctl.tick(10.0));
  EXPECT_EQ(ctl.brownout_level(), 1);

  // Dwell: more bad samples inside the dwell window must not double-step.
  feed_e2e(ctl, 1.0, 10.5);
  EXPECT_FALSE(ctl.tick(10.5));
  EXPECT_EQ(ctl.brownout_level(), 1);

  feed_e2e(ctl, 1.0, 12.4);
  EXPECT_TRUE(ctl.tick(12.5));
  EXPECT_EQ(ctl.brownout_level(), 2);  // capped at brownout_max_level

  // p95 back under recover_ratio * SLO: step down one level per dwell.
  feed_e2e(ctl, 0.01, 14.9);
  EXPECT_TRUE(ctl.tick(15.0));
  EXPECT_EQ(ctl.brownout_level(), 1);
  feed_e2e(ctl, 0.01, 17.4);
  EXPECT_TRUE(ctl.tick(17.5));
  EXPECT_EQ(ctl.brownout_level(), 0);
}

TEST(BrownoutController, MidbandP95HoldsLevel) {
  // Between recover_ratio*SLO and SLO nothing changes — that is the
  // hysteresis band that stops flapping.
  OverloadController ctl(brownout_opts(0.1, 0.5));
  feed_e2e(ctl, 1.0, 10.0);
  ASSERT_TRUE(ctl.tick(10.0));
  ASSERT_EQ(ctl.brownout_level(), 1);
  feed_e2e(ctl, 0.09, 11.0);  // over 0.7*SLO, under SLO
  EXPECT_FALSE(ctl.tick(11.0));
  EXPECT_EQ(ctl.brownout_level(), 1);
}

TEST(BrownoutController, IdleWindowRecoversWithoutCompletions) {
  // A brownout must never outlive the burst: when the service goes fully
  // idle there are no e2e samples to prove recovery with, so an empty
  // window steps the ladder back up by itself.
  OverloadController ctl(brownout_opts(0.1, 2.0, 1.0));
  feed_e2e(ctl, 1.0, 10.0);
  ASSERT_TRUE(ctl.tick(10.0));
  ASSERT_EQ(ctl.brownout_level(), 1);
  EXPECT_FALSE(ctl.tick(11.0));  // dwell not elapsed yet
  EXPECT_TRUE(ctl.tick(13.0));   // dwell + idle window elapsed
  EXPECT_EQ(ctl.brownout_level(), 0);
}

TEST(BrownoutController, FewSamplesMakeNoDecision) {
  OverloadOptions o = brownout_opts();
  o.min_window_samples = 3;
  OverloadController ctl(o);
  feed_e2e(ctl, 5.0, 10.0, 2);  // terrible, but only two samples
  EXPECT_FALSE(ctl.tick(10.0));
  EXPECT_EQ(ctl.brownout_level(), 0);
}

// ------------------------------------------------------------ policy file

TEST(OverloadPolicy, RoundTripsAndExpires) {
  OverloadPolicy p;
  p.shed_level = 2;
  p.brownout_level = 1;
  p.retry_after_seconds = 3.5;
  p.updated_unix = 1000.0;
  p.quotas = {{"alice", 2.0}, {"bob", 0.5}};
  const OverloadPolicy q =
      OverloadPolicy::from_json(p.to_json(), "<round-trip>");
  EXPECT_EQ(q.shed_level, 2);
  EXPECT_EQ(q.brownout_level, 1);
  EXPECT_DOUBLE_EQ(q.retry_after_seconds, 3.5);
  EXPECT_EQ(q.quotas, p.quotas);
  EXPECT_TRUE(q.fresh(1000.0 + kPolicyStaleSeconds));
  EXPECT_FALSE(q.fresh(1000.0 + kPolicyStaleSeconds + 1.0));
  EXPECT_THROW(OverloadPolicy::from_json("{\"schema\":\"nope\"}", "<bad>"),
               util::ParseError);
}

TEST(OverloadPolicy, LoadFailsOpenOnMissingOrCorrupt) {
  ScratchSpool spool("policy_failopen");
  fs::create_directories(spool.root);
  // Missing file: permissive default.
  OverloadPolicy p = load_policy(spool.root, 1000.0);
  EXPECT_EQ(p.shed_level, 0);
  EXPECT_FALSE(p.fresh(1000.0));
  // Corrupt file (no envelope footer, not even JSON): still permissive.
  {
    std::FILE* f =
        std::fopen((fs::path(spool.root) / "overload.json").c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("%% not a policy %%", f);
    std::fclose(f);
  }
  p = load_policy(spool.root, 1000.0);
  EXPECT_EQ(p.shed_level, 0);
}

// ----------------------------------------------------------------- quotas

TEST(Quota, SpecParsesAndRejectsBadGrammar) {
  const auto q = parse_quota_spec("alice:2,bob:0.5,svc.batch-7:10");
  ASSERT_EQ(q.size(), 3u);
  EXPECT_DOUBLE_EQ(q.at("alice"), 2.0);
  EXPECT_DOUBLE_EQ(q.at("bob"), 0.5);
  EXPECT_DOUBLE_EQ(q.at("svc.batch-7"), 10.0);
  EXPECT_TRUE(parse_quota_spec("").empty());
  EXPECT_THROW(parse_quota_spec("alice"), std::invalid_argument);
  EXPECT_THROW(parse_quota_spec("alice:"), std::invalid_argument);
  EXPECT_THROW(parse_quota_spec(":2"), std::invalid_argument);
  EXPECT_THROW(parse_quota_spec("alice:fast"), std::invalid_argument);
  EXPECT_THROW(parse_quota_spec("alice:2x"), std::invalid_argument);
  EXPECT_THROW(parse_quota_spec("alice:-1"), std::invalid_argument);
  EXPECT_THROW(parse_quota_spec("alice:0"), std::invalid_argument);
}

TEST(Quota, TokenBucketEnforcesBurstAndRefill) {
  ScratchSpool spool("quota_bucket");
  fs::create_directories(spool.root);
  OverloadPolicy policy;
  policy.quotas = {{"alice", 2.0}};  // 2 rps, burst 2

  // Burst drains in two admissions; the third is a typed ShedError whose
  // retry-after is the time until one token refills.
  enforce_admission(spool.root, policy, Priority::kBatch, "alice", 100.0);
  enforce_admission(spool.root, policy, Priority::kBatch, "alice", 100.0);
  try {
    enforce_admission(spool.root, policy, Priority::kBatch, "alice", 100.0);
    FAIL() << "third admission in the same instant must be rejected";
  } catch (const ShedError& e) {
    EXPECT_NEAR(e.retry_after_seconds(), 0.5, 1e-9);
  }
  // 0.6 s later 1.2 tokens refilled: one admission passes, the next fails.
  enforce_admission(spool.root, policy, Priority::kBatch, "alice", 100.6);
  EXPECT_THROW(enforce_admission(spool.root, policy, Priority::kBatch,
                                 "alice", 100.6),
               ShedError);
  // Unattributed and un-quota'd clients are never limited.
  enforce_admission(spool.root, policy, Priority::kBatch, "", 100.0);
  enforce_admission(spool.root, policy, Priority::kBatch, "mallory", 100.0);
}

TEST(Quota, AdmissionShedsByClassOnlyWhenPolicyIsFresh) {
  ScratchSpool spool("admission_shed");
  fs::create_directories(spool.root);
  OverloadPolicy policy;
  policy.shed_level = 1;
  policy.retry_after_seconds = 4.0;
  policy.updated_unix = 1000.0;

  try {
    enforce_admission(spool.root, policy, Priority::kBackground, "", 1001.0);
    FAIL() << "background admission must shed at level 1";
  } catch (const ShedError& e) {
    EXPECT_NEAR(e.retry_after_seconds(), 4.0, 1e-9);
  }
  enforce_admission(spool.root, policy, Priority::kBatch, "", 1001.0);

  policy.shed_level = 2;
  EXPECT_THROW(enforce_admission(spool.root, policy, Priority::kBatch, "",
                                 1001.0),
               ShedError);
  enforce_admission(spool.root, policy, Priority::kInteractive, "", 1001.0);

  // A stale policy (dead daemon) must not shed anything.
  EXPECT_NO_THROW(enforce_admission(spool.root, policy,
                                    Priority::kBackground, "",
                                    1000.0 + kPolicyStaleSeconds + 5.0));
}

// --------------------------------------------------- job schema round trip

TEST(JobSchema, PrioritySchedulingFieldsRoundTrip) {
  Job job;
  job.id = "rt-1";
  job.circuit = "c17";
  job.priority = Priority::kInteractive;
  job.client = "alice";
  job.complete_by_unix = 1234.5;
  const Job back = Job::from_json(job.to_json(), "<round-trip>");
  EXPECT_EQ(back.priority, Priority::kInteractive);
  EXPECT_EQ(back.client, "alice");
  EXPECT_DOUBLE_EQ(back.complete_by_unix, 1234.5);
  // Pre-PR-7 job files (no priority field) parse as batch-class.
  Job legacy;
  legacy.id = "rt-2";
  legacy.circuit = "c17";
  const Job defaulted = Job::from_json(legacy.to_json(), "<legacy>");
  EXPECT_EQ(defaulted.priority, Priority::kBatch);
  EXPECT_TRUE(defaulted.client.empty());
  EXPECT_DOUBLE_EQ(defaulted.complete_by_unix, 0.0);
}

// --------------------------------------------------- spool queue integration

Job make_job(const std::string& id, Priority p, double submitted,
             double complete_by = 0.0) {
  Job job;
  job.id = id;
  job.circuit = "c17";
  job.optimizer = "baseline";
  job.priority = p;
  job.submitted_unix = submitted;
  job.complete_by_unix = complete_by;
  return job;
}

Job read_terminal(const SpoolQueue& q, const std::string& state,
                  const std::string& id) {
  const std::string path = q.job_path(state, id);
  return Job::from_json(io::read_artifact(path, kJobSchema), path);
}

TEST(QueueSched, ClaimFollowsPriorityThenEdf) {
  ScratchSpool spool("queue_edf");
  SpoolQueue q(spool.root);
  q.submit(make_job("bat-none", Priority::kBatch, 100.0));
  q.submit(make_job("bg", Priority::kBackground, 90.0, 2000.0));
  q.submit(make_job("bat-edf", Priority::kBatch, 110.0, 5000.0));
  q.submit(make_job("int", Priority::kInteractive, 120.0));

  std::vector<std::string> order;
  while (const auto job = q.claim(1000.0)) order.push_back(job->id);
  EXPECT_EQ(order, (std::vector<std::string>{"int", "bat-edf", "bat-none",
                                             "bg"}));
}

TEST(QueueSched, ExpiredJobFailsTypedWithoutAWorker) {
  ScratchSpool spool("queue_expire");
  SpoolQueue q(spool.root);
  q.submit(make_job("dead", Priority::kBatch, 100.0, 900.0));
  q.submit(make_job("live", Priority::kBatch, 100.0, 9000.0));

  const auto claimed = q.claim(1000.0);
  ASSERT_TRUE(claimed.has_value());
  EXPECT_EQ(claimed->id, "live");
  EXPECT_FALSE(q.claim(1000.0).has_value());

  const Job dead = read_terminal(q, "failed", "dead");
  EXPECT_EQ(dead.failure_type, "deadline_expired");
  EXPECT_NE(dead.failure_detail.find("deadline missed"), std::string::npos);
  EXPECT_TRUE(q.ids_in("pending").empty());
}

TEST(QueueShed, ExactShedServedPartitionUnderLevelOne) {
  ScratchSpool spool("queue_shed1");
  SpoolQueue q(spool.root);
  OverloadController ctl(shed_opts(0.05, 1.0));
  q.set_overload_controller(&ctl);

  q.submit(make_job("bg-a", Priority::kBackground, 90.0));
  q.submit(make_job("bg-b", Priority::kBackground, 91.0));
  q.submit(make_job("bat", Priority::kBatch, 92.0));
  q.submit(make_job("int", Priority::kInteractive, 93.0));

  // Synthesize the persistent backlog the daemon would have measured.
  ctl.observe_sojourn(0.5, 999.9);
  ASSERT_TRUE(ctl.tick(999.9));
  ASSERT_EQ(ctl.shed_level(), 1);

  // One claim pass sheds exactly the background class and serves the rest,
  // interactive first.
  std::vector<std::string> served;
  while (const auto job = q.claim(1000.0)) served.push_back(job->id);
  EXPECT_EQ(served, (std::vector<std::string>{"int", "bat"}));

  const std::vector<std::string> shed = q.ids_in("failed");
  EXPECT_EQ(std::set<std::string>(shed.begin(), shed.end()),
            (std::set<std::string>{"bg-a", "bg-b"}));
  for (const std::string& id : shed) {
    const Job job = read_terminal(q, "failed", id);
    EXPECT_EQ(job.failure_type, "shed");
    EXPECT_NE(job.failure_detail.find("level 1"), std::string::npos);
  }
  EXPECT_TRUE(q.ids_in("pending").empty());
}

TEST(QueueShed, LevelTwoShedsBatchButNeverInteractive) {
  ScratchSpool spool("queue_shed2");
  SpoolQueue q(spool.root);
  OverloadController ctl(shed_opts(0.05, 1.0));
  q.set_overload_controller(&ctl);

  q.submit(make_job("bat", Priority::kBatch, 92.0));
  q.submit(make_job("int", Priority::kInteractive, 93.0));
  q.submit(make_job("bg", Priority::kBackground, 94.0));

  ctl.observe_sojourn(0.5, 998.0);
  ASSERT_TRUE(ctl.tick(998.0));
  ctl.observe_sojourn(0.5, 999.5);
  ASSERT_TRUE(ctl.tick(999.5));  // one window of sustained overload
  ASSERT_EQ(ctl.shed_level(), 2);

  std::vector<std::string> served;
  while (const auto job = q.claim(1000.0)) served.push_back(job->id);
  EXPECT_EQ(served, std::vector<std::string>{"int"});
  const std::vector<std::string> shed = q.ids_in("failed");
  EXPECT_EQ(std::set<std::string>(shed.begin(), shed.end()),
            (std::set<std::string>{"bat", "bg"}));
}

TEST(QueueShed, SubmitRejectedByPublishedPolicy) {
  ScratchSpool spool("queue_admission");
  SpoolQueue q(spool.root);
  // Publish the policy exactly like the daemon's control loop does.
  OverloadController ctl(shed_opts());
  ctl.observe_sojourn(0.5, unix_now());
  ASSERT_TRUE(ctl.tick(unix_now()));
  io::write_artifact((fs::path(spool.root) / "overload.json").string(),
                     kOverloadSchema, ctl.policy(unix_now()).to_json());

  EXPECT_THROW(q.submit(make_job("bg", Priority::kBackground, 0.0)),
               ShedError);
  EXPECT_NO_THROW(q.submit(make_job("bat", Priority::kBatch, 0.0)));
  EXPECT_EQ(q.counts().pending, 1u);
}

// -------------------------------------------- brownout fidelity ladder

TEST(Brownout, StartTierSkipsExpensiveTiersWithProvenance) {
  netlist::GeneratorSpec spec;
  spec.num_inputs = 4;
  spec.num_outputs = 4;
  spec.num_dffs = 4;
  spec.num_gates = 30;
  spec.depth = 5;
  spec.seed = 7;
  const netlist::Netlist nl = netlist::generate_random_logic(spec);
  const tech::Technology tech = tech::Technology::generic350();
  activity::ActivityProfile profile;
  profile.input_density = 0.2;
  const opt::CircuitEvaluator eval(nl, tech, profile,
                                   {.clock_frequency = 100e6});

  opt::RobustOptions ropts;
  ropts.start_tier = 2;
  const opt::OptimizationResult r = opt::RobustOptimizer(eval, ropts).run();
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.tier, opt::ResultTier::kLastResort);
  ASSERT_EQ(r.report.tiers.size(), 3u);
  EXPECT_EQ(r.report.tiers[0].failure_reason, "skipped (start_tier)");
  EXPECT_EQ(r.report.tiers[1].failure_reason, "skipped (start_tier)");
  EXPECT_TRUE(r.report.tiers[2].selected);

  opt::RobustOptions one;
  one.start_tier = 1;
  const opt::OptimizationResult r1 = opt::RobustOptimizer(eval, one).run();
  EXPECT_TRUE(r1.feasible);
  EXPECT_EQ(r1.tier, opt::ResultTier::kBaseline);
  EXPECT_EQ(r1.report.tiers[0].failure_reason, "skipped (start_tier)");
}

// ------------------------------------------------ SIGKILL chaos: shed/expire

void sleep_seconds(double s) {
  std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

pid_t spawn_served(const std::vector<std::string>& flags) {
  std::vector<std::string> args = {MINERGY_SERVED_BIN};
  args.insert(args.end(), flags.begin(), flags.end());
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& s : args) argv.push_back(s.data());
  argv.push_back(nullptr);
  const pid_t pid = fork();
  if (pid == 0) {
    const int null_fd = open("/dev/null", O_WRONLY);
    if (null_fd >= 0) {
      dup2(null_fd, STDOUT_FILENO);
      dup2(null_fd, STDERR_FILENO);
      close(null_fd);
    }
    execv(argv[0], argv.data());
    _exit(127);
  }
  return pid;
}

int wait_exit(pid_t pid, double timeout_seconds, bool* timed_out = nullptr) {
  if (timed_out != nullptr) *timed_out = false;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  int status = 0;
  for (;;) {
    const pid_t r = waitpid(pid, &status, WNOHANG);
    if (r == pid) return status;
    if (std::chrono::steady_clock::now() >= deadline) {
      if (timed_out != nullptr) *timed_out = true;
      kill(pid, SIGKILL);
      waitpid(pid, &status, 0);
      return status;
    }
    sleep_seconds(0.01);
  }
}

int run_served(const std::vector<std::string>& flags,
               double timeout_seconds = 120.0) {
  bool timed_out = false;
  const int status =
      wait_exit(spawn_served(flags), timeout_seconds, &timed_out);
  EXPECT_FALSE(timed_out) << "daemon did not exit within the cap";
  return status;
}

TEST(OverloadChaos, KillMidExpireRecoversExactlyOnce) {
  // Phase 1: a real daemon meets an already-expired job and is SIGKILLed
  // between the claim rename and the failed/ finalize — the worst possible
  // instant for the expiry decision.
  ScratchSpool spool("kill_expire");
  {
    SpoolQueue q(spool.root);
    q.submit(make_job("dead", Priority::kBatch, 100.0, 900.0));
    q.submit(make_job("live", Priority::kBatch, 100.0));
  }
  const int killed = run_served({"--spool=" + spool.root, "--once",
                                 "--workers=1", "--poll=0.005",
                                 "--timeout=30",
                                 "--inject-kill=daemon.pre-expire@1"});
  ASSERT_TRUE(WIFSIGNALED(killed) && WTERMSIG(killed) == SIGKILL)
      << "kill point daemon.pre-expire did not fire";

  // The half-finished expiry left the job in running/ with no envelope.
  {
    SpoolQueue q(spool.root);
    EXPECT_EQ(q.ids_in("running"), std::vector<std::string>{"dead"});
  }

  // Phase 2: a clean daemon recovers the orphan, re-expires it, and drains
  // the live job normally — each job terminal exactly once.
  const int clean = run_served({"--spool=" + spool.root, "--once",
                                "--workers=1", "--poll=0.005",
                                "--timeout=30"});
  EXPECT_TRUE(WIFEXITED(clean) && WEXITSTATUS(clean) == 0);
  SpoolQueue q(spool.root);
  EXPECT_TRUE(q.ids_in("pending").empty());
  EXPECT_TRUE(q.ids_in("running").empty());
  EXPECT_EQ(q.ids_in("done"), std::vector<std::string>{"live"});
  EXPECT_EQ(q.ids_in("failed"), std::vector<std::string>{"dead"});
  EXPECT_EQ(read_terminal(q, "failed", "dead").failure_type,
            "deadline_expired");
  const int status = run_served({"--spool=" + spool.root, "--status",
                                 "--verify", "--expect-jobs=2"});
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
}

TEST(OverloadChaos, KillMidShedRecoversExactlyOnce) {
  // The shed decision is not directly reachable from the daemon CLI in a
  // deterministic way (it needs real measured sojourns), so the child half
  // of this test drives the queue in-process with the kill switch armed:
  // fork, force shed level 1, claim — the child SIGKILLs itself at
  // daemon.pre-shed, exactly as a loaded daemon would.
  ScratchSpool spool("kill_shed");
  {
    SpoolQueue q(spool.root);
    q.submit(make_job("bg", Priority::kBackground, 90.0));
    q.submit(make_job("int", Priority::kInteractive, 91.0));
  }
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    configure_kill_switch("daemon.pre-shed@1");
    SpoolQueue q(spool.root);
    OverloadController ctl(shed_opts(0.05, 1.0));
    q.set_overload_controller(&ctl);
    ctl.observe_sojourn(0.5, 999.9);
    ctl.tick(999.9);
    (void)q.claim(1000.0);
    _exit(0);  // unreachable when the kill point fires
  }
  const int killed = wait_exit(pid, 30.0);
  ASSERT_TRUE(WIFSIGNALED(killed) && WTERMSIG(killed) == SIGKILL)
      << "kill point daemon.pre-shed did not fire";

  // Mid-shed death: the background job is wedged in running/ (claim rename
  // won, verdict not yet written). Recover the way the daemon does —
  // requeue as interrupted — then re-run the shed pass to completion.
  SpoolQueue q(spool.root);
  ASSERT_EQ(q.ids_in("running"), std::vector<std::string>{"bg"});
  std::vector<Job> orphans = q.running_jobs();
  ASSERT_EQ(orphans.size(), 1u);
  q.requeue(orphans.front(), "interrupted", 0.0, true);

  OverloadController ctl(shed_opts(0.05, 1.0));
  q.set_overload_controller(&ctl);
  ctl.observe_sojourn(0.5, 1001.0);
  ASSERT_TRUE(ctl.tick(1001.0));
  std::vector<std::string> served;
  while (const auto job = q.claim(1002.0)) served.push_back(job->id);
  EXPECT_EQ(served, std::vector<std::string>{"int"});
  EXPECT_EQ(q.ids_in("failed"), std::vector<std::string>{"bg"});
  EXPECT_EQ(read_terminal(q, "failed", "bg").failure_type, "shed");
  EXPECT_TRUE(q.ids_in("pending").empty());
}

TEST(OverloadChaos, DaemonServesMixedPrioritiesWithDeadlines) {
  // End-to-end through the real binary: an expired job and two live ones of
  // different classes drain to the exact expected partition, and the
  // envelopes of served jobs carry brownout provenance (level 0 here).
  ScratchSpool spool("daemon_mixed");
  {
    SpoolQueue q(spool.root);
    q.submit(make_job("expired", Priority::kBackground, 100.0, 900.0));
    Job interactive = make_job("int", Priority::kInteractive, 0.0);
    interactive.complete_by_unix = unix_now() + 3600.0;
    q.submit(std::move(interactive));
    q.submit(make_job("bat", Priority::kBatch, 0.0));
  }
  const int rc = run_served({"--spool=" + spool.root, "--once",
                             "--workers=2", "--poll=0.005", "--timeout=60"});
  EXPECT_TRUE(WIFEXITED(rc) && WEXITSTATUS(rc) == 0);
  SpoolQueue q(spool.root);
  EXPECT_EQ(q.ids_in("failed"), std::vector<std::string>{"expired"});
  const std::vector<std::string> done = q.ids_in("done");
  EXPECT_EQ(std::set<std::string>(done.begin(), done.end()),
            (std::set<std::string>{"int", "bat"}));
  for (const std::string& id : done) {
    const std::string path = q.job_path("done", id);
    const util::JsonValue rec = util::JsonValue::parse(
        io::read_artifact(path, kJobSchema), path);
    EXPECT_EQ(rec.at("result").get_number("brownout_level", -1.0), 0.0);
  }
}

}  // namespace
}  // namespace minergy::serve
