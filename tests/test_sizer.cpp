#include <gtest/gtest.h>

#include <cmath>

#include "interconnect/wire_model.h"
#include "netlist/generator.h"
#include "opt/sizer.h"
#include "timing/delay_budget.h"
#include "timing/sta.h"

namespace minergy::opt {
namespace {

using netlist::GateId;
using netlist::Netlist;

struct Fixture {
  explicit Fixture(std::uint64_t seed = 3)
      : nl(make(seed)),
        tech(tech::Technology::generic350()),
        dev(tech),
        wires(tech, nl),
        calc(nl, dev, wires),
        budgeter(nl) {}

  static Netlist make(std::uint64_t seed) {
    netlist::GeneratorSpec spec;
    spec.num_inputs = 8;
    spec.num_gates = 70;
    spec.depth = 8;
    spec.num_dffs = 4;
    spec.seed = seed;
    return netlist::generate_random_logic(spec);
  }

  Netlist nl;
  tech::Technology tech;
  tech::DeviceModel dev;
  interconnect::WireModel wires;
  timing::DelayCalculator calc;
  timing::DelayBudgeter budgeter;
};

TEST(GateSizer, MeetsBudgetsAtStrongOperatingPoint) {
  Fixture f;
  const timing::BudgetResult budgets = f.budgeter.assign(3.33e-9);
  const std::vector<double> vts(f.nl.size(), 0.15);
  const GateSizer sizer(f.calc);
  const SizingResult r = sizer.size(budgets.t_max, 3.3, vts);
  EXPECT_TRUE(r.all_budgets_met);
  EXPECT_EQ(r.gates_missed, 0);
  // And the full STA (with actual fanin delays <= budgets) passes too.
  const timing::TimingReport sta = timing::run_sta(
      f.calc, r.widths, 3.3, std::span<const double>(vts), 3.33e-9);
  EXPECT_LE(sta.critical_delay, 0.95 * 3.33e-9 * (1.0 + 1e-9));
}

TEST(GateSizer, WidthsWithinTechnologyRange) {
  Fixture f;
  const timing::BudgetResult budgets = f.budgeter.assign(3.33e-9);
  const std::vector<double> vts(f.nl.size(), 0.2);
  const SizingResult r = GateSizer(f.calc).size(budgets.t_max, 2.0, vts);
  for (GateId id : f.nl.combinational()) {
    EXPECT_GE(r.widths[id], f.tech.w_min);
    EXPECT_LE(r.widths[id], f.tech.w_max);
  }
}

TEST(GateSizer, NearMinimalWidths) {
  // The selected width meets the budget but a slightly smaller one (beyond
  // the binary-search resolution) must violate it for gates above w_min.
  Fixture f;
  const timing::BudgetResult budgets = f.budgeter.assign(3.33e-9);
  const std::vector<double> vts(f.nl.size(), 0.2);
  const int steps = 16;
  const double vdd = 2.0;
  SizingResult r = GateSizer(f.calc).size(budgets.t_max, vdd, vts, steps);
  ASSERT_TRUE(r.all_budgets_met);
  const double resolution =
      (f.tech.w_max - f.tech.w_min) / std::pow(2.0, steps);
  int checked = 0;
  for (GateId id : f.nl.combinational()) {
    const double w = r.widths[id];
    if (w <= f.tech.w_min * 1.001) continue;
    double slope_in = 0.0;
    for (GateId fanin : f.nl.gate(id).fanins) {
      if (netlist::is_combinational(f.nl.gate(fanin).type)) {
        slope_in = std::max(slope_in, budgets.t_max[fanin]);
      }
    }
    auto widths = r.widths;
    widths[id] = std::max(f.tech.w_min, w - 4.0 * resolution);
    const double d = f.calc.gate_delay(id, widths, vdd, 0.2, slope_in);
    EXPECT_GT(d, budgets.t_max[id] * (1.0 - 1e-9)) << f.nl.gate(id).name;
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(GateSizer, ImpossibleBudgetsReported) {
  Fixture f;
  // Budgets from an absurd cycle time cannot be met even at w_max.
  const timing::BudgetResult budgets = f.budgeter.assign(1e-12);
  const std::vector<double> vts(f.nl.size(), 0.7);
  const SizingResult r = GateSizer(f.calc).size(budgets.t_max, 0.5, vts);
  EXPECT_FALSE(r.all_budgets_met);
  EXPECT_GT(r.gates_missed, 0);
}

TEST(GateSizer, TighterCycleTimeGivesWiderGates) {
  Fixture f;
  const std::vector<double> vts(f.nl.size(), 0.2);
  const GateSizer sizer(f.calc);
  const SizingResult loose =
      sizer.size(f.budgeter.assign(20e-9).t_max, 1.2, vts);
  const SizingResult tight =
      sizer.size(f.budgeter.assign(5e-9).t_max, 1.2, vts);
  double loose_area = 0.0, tight_area = 0.0;
  for (GateId id : f.nl.combinational()) {
    loose_area += loose.widths[id];
    tight_area += tight.widths[id];
  }
  EXPECT_GT(tight_area, loose_area);
}

TEST(GateSizer, LowerVddGivesWiderGates) {
  Fixture f;
  const std::vector<double> vts(f.nl.size(), 0.15);
  const timing::BudgetResult budgets = f.budgeter.assign(3.33e-9);
  const GateSizer sizer(f.calc);
  const SizingResult high = sizer.size(budgets.t_max, 3.0, vts);
  const SizingResult low = sizer.size(budgets.t_max, 1.0, vts);
  double high_area = 0.0, low_area = 0.0;
  for (GateId id : f.nl.combinational()) {
    high_area += high.widths[id];
    low_area += low.widths[id];
  }
  EXPECT_GT(low_area, high_area);
}

TEST(GateSizer, DeterministicAcrossRuns) {
  Fixture f;
  const timing::BudgetResult budgets = f.budgeter.assign(3.33e-9);
  const std::vector<double> vts(f.nl.size(), 0.2);
  const SizingResult a = GateSizer(f.calc).size(budgets.t_max, 1.5, vts);
  const SizingResult b = GateSizer(f.calc).size(budgets.t_max, 1.5, vts);
  EXPECT_EQ(a.widths, b.widths);
}

// ------------------------------------------------------- width recovery

TEST(GateSizerRecovery, NeverIncreasesAnyWidth) {
  Fixture f;
  const timing::BudgetResult budgets = f.budgeter.assign(3.33e-9);
  const std::vector<double> vts(f.nl.size(), 0.2);
  const GateSizer sizer(f.calc);
  const SizingResult sized = sizer.size(budgets.t_max, 1.5, vts);
  const double limit = 0.95 * 3.33e-9;
  const timing::TimingReport report = timing::run_sta(
      f.calc, sized.widths, 1.5, std::span<const double>(vts), limit);
  const SizingResult rec =
      sizer.recover(sized.widths, 1.5, vts, limit, report);
  for (GateId id : f.nl.combinational()) {
    EXPECT_LE(rec.widths[id], sized.widths[id] * (1.0 + 1e-12));
    EXPECT_GE(rec.widths[id], f.tech.w_min);
  }
}

TEST(GateSizerRecovery, RecoveredStateStillMeetsTiming) {
  Fixture f;
  const timing::BudgetResult budgets = f.budgeter.assign(3.33e-9);
  const std::vector<double> vts(f.nl.size(), 0.15);
  const GateSizer sizer(f.calc);
  const SizingResult sized = sizer.size(budgets.t_max, 2.0, vts);
  const double limit = 0.95 * 3.33e-9;
  const timing::TimingReport report = timing::run_sta(
      f.calc, sized.widths, 2.0, std::span<const double>(vts), limit);
  ASSERT_LE(report.critical_delay, limit * (1 + 1e-9));
  const SizingResult rec =
      sizer.recover(sized.widths, 2.0, vts, limit, report);
  const timing::TimingReport after = timing::run_sta(
      f.calc, rec.widths, 2.0, std::span<const double>(vts), limit);
  EXPECT_LE(after.critical_delay, limit * (1.0 + 1e-9));
}

TEST(GateSizerRecovery, ReclaimsAreaWhenSlackExists) {
  // At a strong operating point the Procedure-1 budgets are highly
  // conservative; recovery must reclaim a nonzero amount of width.
  Fixture f;
  const timing::BudgetResult budgets = f.budgeter.assign(3.33e-9);
  const std::vector<double> vts(f.nl.size(), 0.15);
  const GateSizer sizer(f.calc);
  const SizingResult sized = sizer.size(budgets.t_max, 1.0, vts);
  const double limit = 0.95 * 3.33e-9;
  const timing::TimingReport report = timing::run_sta(
      f.calc, sized.widths, 1.0, std::span<const double>(vts), limit);
  if (report.critical_delay > limit) GTEST_SKIP();
  const SizingResult rec =
      sizer.recover(sized.widths, 1.0, vts, limit, report);
  double before = 0.0, after = 0.0;
  for (GateId id : f.nl.combinational()) {
    before += sized.widths[id];
    after += rec.widths[id];
  }
  EXPECT_LT(after, before);
}

// Budget-met + STA-pass property across seeds (the contract Procedure 2's
// acceptance test relies on).
class SizerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SizerProperty, BudgetsMetImpliesStaFeasible) {
  Fixture f(GetParam());
  const timing::BudgetResult budgets = f.budgeter.assign(5e-9);
  const std::vector<double> vts(f.nl.size(), 0.25);
  const SizingResult r = GateSizer(f.calc).size(budgets.t_max, 2.5, vts);
  if (!r.all_budgets_met) GTEST_SKIP() << "operating point too weak";
  const timing::TimingReport sta = timing::run_sta(
      f.calc, r.widths, 2.5, std::span<const double>(vts), 5e-9);
  EXPECT_LE(sta.critical_delay, 0.95 * 5e-9 * (1.0 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SizerProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace minergy::opt
