// Durable I/O layer: artifact envelopes (CRC footer, typed integrity
// verdicts), the atomic temp/fsync/rename write protocol under injected
// storage faults, generational checkpoint fallback, and the exhaustive
// byte-offset truncation sweeps — every possible torn prefix of a real
// anneal checkpoint and a real spool job must land in a clean last-good
// recovery or a typed IntegrityError, never in silently-accepted junk.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "io/checkpoint.h"
#include "io/durable.h"
#include "io/envelope.h"
#include "io/fault_fs.h"
#include "obs/metrics.h"
#include "opt/checkpoint.h"
#include "serve/job.h"
#include "serve/queue.h"
#include "util/check.h"
#include "util/json.h"
#include "util/rng.h"

namespace minergy::io {
namespace {

namespace fs = std::filesystem;

// Every test that arms FaultFs must disarm it on exit; the schedule is
// process-wide and would otherwise leak into later tests in this binary.
struct FaultGuard {
  explicit FaultGuard(const std::string& spec) {
    FaultFs::instance().configure(spec);
  }
  ~FaultGuard() { FaultFs::instance().reset(); }
};

struct ScratchDir {
  explicit ScratchDir(const std::string& stem)
      : path((fs::temp_directory_path() / ("minergy_io_" + stem)).string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
  std::string file(const std::string& name) const {
    return (fs::path(path) / name).string();
  }
  std::string path;
};

void write_raw(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out << text;
}

std::string read_raw(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Classifies `text` through the verifier; kNone-equivalent is reported by
// returning no value (the caller EXPECTs success separately).
IntegrityError::Kind kind_of(const std::string& text,
                             const std::string& schema) {
  try {
    unwrap_envelope(text, schema, "test");
  } catch (const IntegrityError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "expected an IntegrityError";
  return IntegrityError::Kind::kTruncated;
}

// ----------------------------------------------------------------- crc32

TEST(Crc32, MatchesKnownVectors) {
  // The standard CRC-32 (IEEE 802.3 / zlib) check values.
  EXPECT_EQ(crc32(""), 0u);
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
}

// -------------------------------------------------------------- envelope

TEST(Envelope, WrapUnwrapRoundTripsAndAppendsNewline) {
  const std::string payload = "{\"answer\": 42}";  // no trailing newline
  const std::string enveloped = wrap_envelope(payload, "minergy.test.v1");
  EXPECT_TRUE(has_envelope_footer(enveloped));
  EXPECT_FALSE(has_envelope_footer(payload));
  // The payload comes back newline-terminated (head -n -1 compatibility).
  EXPECT_EQ(unwrap_envelope(enveloped, "minergy.test.v1", "t"),
            payload + "\n");
  // "" accepts any schema id.
  EXPECT_EQ(unwrap_envelope(enveloped, "", "t"), payload + "\n");
}

TEST(Envelope, ClassifiesTruncationBitRotAndSchemaMismatch) {
  const std::string full = wrap_envelope("{\"a\": 1}\n", "minergy.test.v1");

  // Truncation: empty file, cut footer, or footer missing entirely.
  EXPECT_EQ(kind_of("", "minergy.test.v1"), IntegrityError::Kind::kTruncated);
  EXPECT_EQ(kind_of(full.substr(0, full.size() - 1), "minergy.test.v1"),
            IntegrityError::Kind::kTruncated);
  const std::size_t footer_start = full.rfind('\n', full.size() - 2) + 1;
  EXPECT_EQ(kind_of(full.substr(0, footer_start), "minergy.test.v1"),
            IntegrityError::Kind::kTruncated);

  // Bit rot: the payload differs but the footer is intact.
  std::string rotted = full;
  rotted[2] = rotted[2] == 'a' ? 'b' : 'a';
  EXPECT_EQ(kind_of(rotted, "minergy.test.v1"),
            IntegrityError::Kind::kCorrupt);

  // Schema mismatch: a perfectly intact artifact of the wrong kind.
  EXPECT_EQ(kind_of(full, "minergy.other.v1"),
            IntegrityError::Kind::kSchemaMismatch);
}

TEST(Envelope, EveryProperPrefixIsRejected) {
  const std::string full =
      wrap_envelope("{\"x\": [1, 2, 3], \"y\": \"abc\"}\n", "minergy.test.v1");
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    SCOPED_TRACE("prefix length " + std::to_string(cut));
    EXPECT_THROW(unwrap_envelope(full.substr(0, cut), "minergy.test.v1", "t"),
                 IntegrityError);
  }
  EXPECT_NO_THROW(unwrap_envelope(full, "minergy.test.v1", "t"));
}

TEST(Envelope, WriteReadArtifactRoundTripsOnDisk) {
  ScratchDir dir("artifact");
  const std::string path = dir.file("a.json");
  write_artifact(path, "minergy.test.v1", "{\"k\": true}");
  EXPECT_TRUE(has_envelope_footer(read_raw(path)));
  EXPECT_EQ(read_artifact(path, "minergy.test.v1"), "{\"k\": true}\n");
  EXPECT_THROW(read_artifact(path, "minergy.other.v1"), IntegrityError);
  // A missing file keeps the legacy "no artifact yet" contract.
  EXPECT_THROW(read_artifact(dir.file("nope.json"), ""), util::ParseError);
}

// --------------------------------------------------------------- FaultFs

TEST(FaultSpec, MalformedSpecsThrowValidSpecsRoundTrip) {
  FaultFs& f = FaultFs::instance();
  for (const char* bad :
       {"write@0:enospc",      // counts are 1-based
        "bogus@1:eio",         // unknown op
        "write@1:flood",       // unknown effect
        "write:enospc",        // missing count
        "write@x:eio",         // non-numeric count
        "read@1:tear=4",       // tear is write-only
        "write@1:short=4",     // short is read-only
        "write@1"}) {          // missing effect
    SCOPED_TRACE(bad);
    EXPECT_THROW(f.configure(bad), std::invalid_argument);
    EXPECT_FALSE(f.armed());
  }
  f.configure("write@2:enospc, fsync@1:eio");
  EXPECT_TRUE(f.armed());
  EXPECT_EQ(f.spec(), "write@2:enospc, fsync@1:eio");
  f.reset();
  EXPECT_FALSE(f.armed());
  EXPECT_EQ(f.spec(), "");
}

// ---------------------------------------------- durable writes under fault

TEST(DurableWrite, EnospcIsTypedAndPreservesThePreviousFile) {
  obs::set_enabled(true);
  ScratchDir dir("enospc");
  const std::string path = dir.file("f.json");
  atomic_write_durable(path, "old\n");
  const std::int64_t injected_before =
      obs::counter("io.fault.injected").value();

  FaultGuard faults("write@1:enospc");
  EXPECT_THROW(atomic_write_durable(path, "new\n"), DiskFullError);
  EXPECT_EQ(read_raw(path), "old\n") << "failed write damaged the old file";
  EXPECT_FALSE(fs::exists(path + ".tmp")) << "temp-file litter";
  EXPECT_EQ(obs::counter("io.fault.injected").value(), injected_before + 1);
}

TEST(DurableWrite, FsyncAndRenameFaultsPreserveThePreviousFile) {
  ScratchDir dir("fsync_rename");
  const std::string path = dir.file("f.json");
  atomic_write_durable(path, "old\n");
  {
    FaultGuard faults("fsync@1:eio");
    try {
      atomic_write_durable(path, "new\n");
      FAIL() << "injected fsync fault did not throw";
    } catch (const IoError& e) {
      EXPECT_EQ(e.op(), "fsync");
      EXPECT_FALSE(dynamic_cast<const DiskFullError*>(&e));
    }
  }
  EXPECT_EQ(read_raw(path), "old\n");
  {
    FaultGuard faults("rename@1:eio");
    try {
      atomic_write_durable(path, "new\n");
      FAIL() << "injected rename fault did not throw";
    } catch (const IoError& e) {
      EXPECT_EQ(e.op(), "rename");
    }
  }
  EXPECT_EQ(read_raw(path), "old\n");
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(DurableWrite, TornWriteIsDiscardedTornCommitIsCaughtByTheReader) {
  obs::set_enabled(true);
  ScratchDir dir("tear");
  const std::string path = dir.file("f.json");
  write_artifact(path, "minergy.test.v1", "{\"v\": 1}");

  // tear=K: the protocol discards the torn temp file; the old artifact
  // survives untouched.
  {
    FaultGuard faults("write@1:tear=5");
    EXPECT_THROW(write_artifact(path, "minergy.test.v1", "{\"v\": 2}"),
                 IoError);
  }
  EXPECT_EQ(read_artifact(path, "minergy.test.v1"), "{\"v\": 1}\n");

  // tearcommit=K: the write lies — reports success with a torn file under
  // the final name (a power cut on a non-ordered filesystem). Only the
  // envelope can catch this, at read time, as a truncation.
  const std::int64_t torn_before =
      obs::counter("io.fault.torn_commits").value();
  {
    FaultGuard faults("write@1:tearcommit=9");
    EXPECT_NO_THROW(write_artifact(path, "minergy.test.v1", "{\"v\": 3}"));
  }
  EXPECT_EQ(obs::counter("io.fault.torn_commits").value(), torn_before + 1);
  try {
    read_artifact(path, "minergy.test.v1");
    FAIL() << "torn-committed artifact passed verification";
  } catch (const IntegrityError& e) {
    EXPECT_EQ(e.kind(), IntegrityError::Kind::kTruncated);
  }
}

TEST(DurableRead, ShortReadClassifiesAsTruncation) {
  obs::set_enabled(true);
  ScratchDir dir("short");
  const std::string path = dir.file("f.json");
  write_artifact(path, "minergy.test.v1", "{\"v\": 1}");
  const std::int64_t shorts_before =
      obs::counter("io.read.short_reads").value();
  FaultGuard faults("read@1:short=7");
  try {
    read_artifact(path, "minergy.test.v1");
    FAIL() << "short read passed verification";
  } catch (const IntegrityError& e) {
    EXPECT_EQ(e.kind(), IntegrityError::Kind::kTruncated);
  }
  EXPECT_EQ(obs::counter("io.read.short_reads").value(), shorts_before + 1);
}

// --------------------------------------------------- checkpoint generations

TEST(GenerationalCheckpoint, RotatesFallsBackAndRemovesCleanly) {
  obs::set_enabled(true);
  ScratchDir dir("gens");
  const std::string path = dir.file("ck.json");
  for (int v = 1; v <= 3; ++v) {
    Checkpoint::save(path, "minergy.test.v1",
                     "{\"v\": " + std::to_string(v) + "}");
  }
  for (int g = 0; g < Checkpoint::kGenerations; ++g) {
    EXPECT_TRUE(fs::exists(Checkpoint::generation_path(path, g)))
        << "generation " << g << " missing";
  }
  EXPECT_DOUBLE_EQ(
      Checkpoint::load(path, "minergy.test.v1").at("v").as_number(), 3.0);

  // Tear the newest: load falls back one generation and counts it.
  obs::Counter& fallback = obs::counter("io.checkpoint.generation_fallback");
  const std::int64_t before = fallback.value();
  const std::string newest = read_raw(path);
  write_raw(path, newest.substr(0, newest.size() / 2));
  EXPECT_DOUBLE_EQ(
      Checkpoint::load(path, "minergy.test.v1").at("v").as_number(), 2.0);
  EXPECT_EQ(fallback.value(), before + 1);

  // Tear the fallback too: one more generation back.
  const std::string prev = read_raw(Checkpoint::generation_path(path, 1));
  write_raw(Checkpoint::generation_path(path, 1), prev.substr(0, 10));
  EXPECT_DOUBLE_EQ(
      Checkpoint::load(path, "minergy.test.v1").at("v").as_number(), 1.0);

  // All generations damaged: a typed error, reporting the newest verdict.
  write_raw(Checkpoint::generation_path(path, 2), "garbage");
  EXPECT_THROW(Checkpoint::load(path, "minergy.test.v1"), util::ParseError);

  EXPECT_TRUE(Checkpoint::exists(path));
  Checkpoint::remove(path);
  EXPECT_FALSE(Checkpoint::exists(path));
  for (int g = 0; g < Checkpoint::kGenerations; ++g) {
    EXPECT_FALSE(fs::exists(Checkpoint::generation_path(path, g)));
  }
}

// ------------------------------------------------ exhaustive truncation sweeps

// Every byte-offset truncation of a real anneal checkpoint must fall back
// to the previous generation — recovery is total, not probabilistic. (The
// envelope theorem behind it: no proper prefix of an enveloped artifact
// verifies, because the footer is the suffix.)
TEST(TruncationSweep, AnnealCheckpointRecoversLastGoodAtEveryOffset) {
  ScratchDir dir("anneal_sweep");
  const std::string path = dir.file("anneal_ck.json");

  opt::AnnealCheckpoint ck;
  ck.circuit = "s27";
  ck.pass = 1;
  ck.temperature = 2.5e-12;
  ck.current.vdd = 1.5;
  ck.current.vts = {0.45, 0.5};
  ck.current.widths = {1.0, 2.5};
  ck.current_cost = 5.0e-11;
  ck.global_best = ck.current;
  ck.global_best_cost = 4.5e-11;
  ck.global_best_crit = 3.0e-9;
  ck.global_best_energy = 4.5e-11;
  util::Rng rng(7);
  ck.rng = rng.state();

  ck.move = 100;  // generation 1 (last good)
  ck.save(path);
  ck.move = 200;  // generation 0 (newest, about to be torn)
  ck.save(path);
  ASSERT_TRUE(fs::exists(Checkpoint::generation_path(path, 1)));

  const std::string intact = read_raw(path);
  ASSERT_GT(intact.size(), 128u);
  for (std::size_t cut = 0; cut < intact.size(); ++cut) {
    write_raw(path, intact.substr(0, cut));
    opt::AnnealCheckpoint resumed;
    try {
      resumed = opt::AnnealCheckpoint::load(path);
    } catch (const util::ParseError& e) {
      ADD_FAILURE() << "offset " << cut
                    << ": no generation recovered: " << e.what();
      continue;
    }
    EXPECT_EQ(resumed.move, 100) << "offset " << cut
                                 << " resumed from a torn snapshot";
  }
  write_raw(path, intact);
  EXPECT_EQ(opt::AnnealCheckpoint::load(path).move, 200);
}

// Every byte-offset truncation of a spool job file must be a typed
// quarantine on claim — never a half-parsed job, never a wedged queue head.
TEST(TruncationSweep, SpoolJobQuarantinesEveryTornPrefix) {
  obs::set_enabled(true);
  ScratchDir dir("job_sweep");
  serve::SpoolQueue q(dir.file("spool"));
  serve::Job job;
  job.circuit = "c17";
  job.seed = 11;
  const std::string id = q.submit(job);
  const std::string pending = q.job_path("pending", id);
  const std::string intact = read_raw(pending);
  ASSERT_GT(intact.size(), 64u);

  obs::Counter& corrupt = obs::counter("serve.queue.corrupt_jobs");
  const std::int64_t before = corrupt.value();
  for (std::size_t cut = 0; cut < intact.size(); ++cut) {
    SCOPED_TRACE("prefix length " + std::to_string(cut));
    write_raw(pending, intact.substr(0, cut));
    EXPECT_FALSE(q.claim(/*now_unix=*/1e18).has_value());
    EXPECT_FALSE(fs::exists(pending)) << "torn job wedged the queue head";
    const std::string quarantined = q.job_path("quarantined", id);
    ASSERT_TRUE(fs::exists(quarantined));
    // The quarantine record itself is enveloped and carries a typed failure.
    const util::JsonValue rec = util::JsonValue::parse(
        read_artifact(quarantined, serve::kJobSchema), quarantined);
    EXPECT_EQ(rec.at("failure").get_string("type", ""), "corrupt-job");
    std::remove(quarantined.c_str());
  }
  EXPECT_EQ(corrupt.value(),
            before + static_cast<std::int64_t>(intact.size()));

  // The intact file still claims normally.
  write_raw(pending, intact);
  const auto claimed = q.claim(/*now_unix=*/1e18);
  ASSERT_TRUE(claimed.has_value());
  EXPECT_EQ(claimed->id, id);
}

// ------------------------------------------------- admission backpressure

TEST(SpoolAdmission, EnospcIsTypedQueueFullWithRetryAfter) {
  obs::set_enabled(true);
  ScratchDir dir("admission");
  serve::SpoolQueue q(dir.file("spool"));
  obs::Counter& enospc = obs::counter("serve.admission.enospc");
  const std::int64_t before = enospc.value();

  serve::Job job;
  job.circuit = "c17";
  FaultGuard faults("write@1:enospc");
  try {
    q.submit(job);
    FAIL() << "ENOSPC admission did not throw";
  } catch (const serve::QueueFullError& e) {
    EXPECT_GT(e.retry_after_seconds(), 0.0);
    EXPECT_NE(std::string(e.what()).find("disk full"), std::string::npos);
  }
  EXPECT_EQ(enospc.value(), before + 1);
  EXPECT_TRUE(q.ids_in("pending").empty())
      << "rejected admission left a partial job file";

  // The queue is usable again the moment the disk is.
  FaultFs::instance().reset();
  serve::Job retry;
  retry.circuit = "c17";
  EXPECT_FALSE(q.submit(retry).empty());
}

}  // namespace
}  // namespace minergy::io
