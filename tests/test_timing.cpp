#include <gtest/gtest.h>

#include <cmath>

#include "interconnect/wire_model.h"
#include "netlist/bench_io.h"
#include "netlist/generator.h"
#include "timing/delay_model.h"
#include "timing/sta.h"

namespace minergy::timing {
namespace {

using netlist::GateId;
using netlist::Netlist;

struct Fixture {
  Fixture()
      : nl(make()),
        tech(tech::Technology::generic350()),
        dev(tech),
        wires(tech, nl),
        calc(nl, dev, wires) {}

  static Netlist make() {
    return netlist::parse_bench_string(R"(
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
g1 = NAND(a, b)
g2 = NOR(g1, c)
g3 = NOT(g2)
y = NAND(g3, g1)
)");
  }

  std::vector<double> widths(double w) const {
    return std::vector<double>(nl.size(), w);
  }

  Netlist nl;
  tech::Technology tech;
  tech::DeviceModel dev;
  interconnect::WireModel wires;
  DelayCalculator calc;
};

TEST(DelayModel, ComponentsArePositiveAndSum) {
  Fixture f;
  const auto w = f.widths(4.0);
  const GateId g1 = f.nl.find("g1");
  const DelayComponents c =
      f.calc.gate_delay_components(g1, w, 3.3, 0.7, 100e-12);
  EXPECT_GT(c.slope, 0.0);
  EXPECT_GT(c.switching, 0.0);
  EXPECT_GE(c.wire_rc, 0.0);
  EXPECT_GT(c.flight, 0.0);
  EXPECT_NEAR(c.total(), c.slope + c.switching + c.wire_rc + c.flight, 1e-20);
  EXPECT_NEAR(f.calc.gate_delay(g1, w, 3.3, 0.7, 100e-12), c.total(), 1e-20);
}

TEST(DelayModel, DelayDecreasesWithWidth) {
  Fixture f;
  const GateId g1 = f.nl.find("g1");
  double prev = 1e9;
  for (double w = 1.0; w <= 100.0; w *= 1.5) {
    auto widths = f.widths(4.0);
    widths[g1] = w;
    const double d = f.calc.gate_delay(g1, widths, 1.0, 0.2, 0.0);
    EXPECT_LT(d, prev) << "w=" << w;
    prev = d;
  }
}

TEST(DelayModel, DelayDecreasesWithVdd) {
  Fixture f;
  const auto w = f.widths(4.0);
  const GateId g1 = f.nl.find("g1");
  double prev = 1e9;
  for (double vdd = 0.3; vdd <= 3.3; vdd += 0.1) {
    const double d = f.calc.gate_delay(g1, w, vdd, 0.2, 0.0);
    EXPECT_LT(d, prev) << "vdd=" << vdd;
    prev = d;
  }
}

TEST(DelayModel, DelayIncreasesWithVts) {
  Fixture f;
  const auto w = f.widths(4.0);
  const GateId g1 = f.nl.find("g1");
  double prev = 0.0;
  for (double vts = 0.1; vts <= 0.7; vts += 0.05) {
    const double d = f.calc.gate_delay(g1, w, 1.0, vts, 0.0);
    EXPECT_GT(d, prev) << "vts=" << vts;
    prev = d;
  }
}

TEST(DelayModel, SlopeTermScalesWithFaninDelay) {
  Fixture f;
  const auto w = f.widths(4.0);
  const GateId g1 = f.nl.find("g1");
  const double d0 = f.calc.gate_delay(g1, w, 1.0, 0.2, 0.0);
  const double d1 = f.calc.gate_delay(g1, w, 1.0, 0.2, 1e-9);
  const double k = f.dev.slope_coefficient(1.0, 0.2);
  EXPECT_NEAR(d1 - d0, k * 1e-9, 1e-15);
}

TEST(DelayModel, SubthresholdOperationIsFiniteButSlow) {
  // Vdd below Vts: the transregional model must give a finite delay that is
  // orders of magnitude above superthreshold (the paper's key enabler for
  // aggressive voltage scaling).
  Fixture f;
  const auto w = f.widths(4.0);
  const GateId g1 = f.nl.find("g1");
  const double sub = f.calc.gate_delay(g1, w, 0.25, 0.4, 0.0);
  const double super = f.calc.gate_delay(g1, w, 1.2, 0.4, 0.0);
  EXPECT_TRUE(std::isfinite(sub));
  EXPECT_GT(sub, 50.0 * super);
}

TEST(DelayModel, InfiniteWhenLeakageExceedsDrive) {
  // Deep subthreshold with huge leakage: the f_in * Ioff term can exceed
  // the stack drive; delay must saturate to +inf, not go negative.
  Fixture f;
  tech::Technology leaky = f.tech;
  leaky.leakage_scale = 1e6;
  tech::DeviceModel dev(leaky);
  DelayCalculator calc(f.nl, dev, f.wires);
  const auto w = f.widths(1.0);
  const double d = calc.gate_delay(f.nl.find("g1"), w, 0.15, 0.1, 0.0);
  EXPECT_TRUE(std::isinf(d));
}

TEST(DelayModel, LoadCapCountsReceiversWiresAndSelf) {
  Fixture f;
  auto w = f.widths(2.0);
  const GateId g1 = f.nl.find("g1");  // fanouts: g2 and y
  const double base = f.calc.load_cap(g1, w);
  // Widening a receiver increases the driver's load by cin per unit.
  w[f.nl.find("g2")] += 1.0;
  EXPECT_NEAR(f.calc.load_cap(g1, w) - base, f.dev.cin_per_wunit(), 1e-22);
  // Widening the driver itself adds parasitic + stack-internal cap.
  w[f.nl.find("g2")] -= 1.0;
  w[g1] += 1.0;
  EXPECT_NEAR(f.calc.load_cap(g1, w) - base,
              f.dev.cpar_per_wunit() + f.dev.cmid_per_wunit(), 1e-22);
}

TEST(DelayModel, PrimaryOutputCarriesPinLoad) {
  Fixture f;
  const auto w = f.widths(2.0);
  const GateId y = f.nl.find("y");
  const double cap = f.calc.receiver_cap(y, w);
  EXPECT_NEAR(cap, f.tech.po_load_w * f.dev.cin_per_wunit(), 1e-22);
}

TEST(DelayModel, IntrinsicFloorIsLowerBound) {
  Fixture f;
  const auto w = f.widths(3.0);
  const GateId g1 = f.nl.find("g1");
  const double floor = f.calc.intrinsic_delay_floor(g1, w, 1.0, 0.2);
  EXPECT_LE(floor, f.calc.gate_delay(g1, w, 1.0, 0.2, 0.0) * (1 + 1e-9));
  EXPECT_GT(floor, 0.0);
}

// ----------------------------------------------------------------- STA

TEST(Sta, ChainArrivalsAccumulate) {
  Netlist nl = netlist::parse_bench_string(R"(
INPUT(a)
OUTPUT(y)
n1 = NOT(a)
n2 = NOT(n1)
y = NOT(n2)
)");
  tech::Technology tech = tech::Technology::generic350();
  tech::DeviceModel dev(tech);
  interconnect::WireModel wires(tech, nl);
  DelayCalculator calc(nl, dev, wires);
  std::vector<double> w(nl.size(), 4.0);
  const TimingReport r = run_sta(calc, w, 1.0, 0.2, 10e-9);
  const GateId n1 = nl.find("n1"), n2 = nl.find("n2"), y = nl.find("y");
  EXPECT_NEAR(r.arrival[n1], r.gate_delay[n1], 1e-18);
  EXPECT_NEAR(r.arrival[n2], r.arrival[n1] + r.gate_delay[n2], 1e-18);
  EXPECT_NEAR(r.critical_delay, r.arrival[y], 1e-18);
  ASSERT_EQ(r.critical_path.size(), 3u);
  EXPECT_EQ(r.critical_path.front(), n1);
  EXPECT_EQ(r.critical_path.back(), y);
}

TEST(Sta, CriticalPathIsConnected) {
  Fixture f;
  const auto w = f.widths(4.0);
  const TimingReport r = run_sta(f.calc, w, 1.0, 0.2, 10e-9);
  ASSERT_GE(r.critical_path.size(), 2u);
  for (std::size_t i = 1; i < r.critical_path.size(); ++i) {
    const auto& fanins = f.nl.gate(r.critical_path[i]).fanins;
    EXPECT_NE(std::find(fanins.begin(), fanins.end(), r.critical_path[i - 1]),
              fanins.end());
  }
}

TEST(Sta, SlackSignsMatchConstraint) {
  Fixture f;
  const auto w = f.widths(4.0);
  const TimingReport tight = run_sta(f.calc, w, 1.0, 0.2, 1e-12);
  const TimingReport loose = run_sta(f.calc, w, 1.0, 0.2, 1.0);
  // With an impossible constraint every gate on a path to a sink has
  // negative slack; with a generous one, positive.
  for (GateId id : f.nl.combinational()) {
    EXPECT_LT(tight.slack[id], 0.0);
    EXPECT_GT(loose.slack[id], 0.0);
  }
}

TEST(Sta, CriticalGateHasMinimumSlack) {
  Fixture f;
  const auto w = f.widths(4.0);
  const double tc = 10e-9;
  const TimingReport r = run_sta(f.calc, w, 1.0, 0.2, tc);
  double min_slack = 1e9;
  for (GateId id : f.nl.combinational()) {
    min_slack = std::min(min_slack, r.slack[id]);
  }
  const GateId endpoint = r.critical_path.back();
  EXPECT_NEAR(r.slack[endpoint], tc - r.critical_delay, 1e-15);
  EXPECT_NEAR(min_slack, tc - r.critical_delay, 1e-15);
}

TEST(Sta, PerGateThresholdsAreHonored) {
  Fixture f;
  const auto w = f.widths(4.0);
  std::vector<double> vts(f.nl.size(), 0.2);
  const TimingReport base = run_sta(f.calc, w, 1.0,
                                    std::span<const double>(vts), 10e-9);
  vts[f.nl.find("g1")] = 0.5;  // slow one gate only
  const TimingReport slowed = run_sta(f.calc, w, 1.0,
                                      std::span<const double>(vts), 10e-9);
  EXPECT_GT(slowed.gate_delay[f.nl.find("g1")],
            base.gate_delay[f.nl.find("g1")]);
  // Downstream gates keep their own threshold: any change in their delay
  // comes only through the (bounded) input-slope term.
  const GateId g3 = f.nl.find("g3");
  const double extra = slowed.gate_delay[f.nl.find("g1")] -
                       base.gate_delay[f.nl.find("g1")];
  EXPECT_GE(slowed.gate_delay[g3], base.gate_delay[g3]);
  EXPECT_LE(slowed.gate_delay[g3], base.gate_delay[g3] + 0.5 * extra + 1e-15);
  EXPECT_GT(slowed.critical_delay, base.critical_delay);
}

// Property sweep: STA critical delay is monotone in the global knobs.
class StaMonotonicity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StaMonotonicity, CriticalDelayMonotoneInVddAndVts) {
  netlist::GeneratorSpec spec;
  spec.num_inputs = 8;
  spec.num_gates = 60;
  spec.depth = 7;
  spec.seed = GetParam();
  Netlist nl = netlist::generate_random_logic(spec);
  tech::Technology tech = tech::Technology::generic350();
  tech::DeviceModel dev(tech);
  interconnect::WireModel wires(tech, nl);
  DelayCalculator calc(nl, dev, wires);
  std::vector<double> w(nl.size(), 4.0);

  double prev = 1e9;
  for (double vdd : {0.6, 1.0, 1.8, 2.6, 3.3}) {
    const double crit = run_sta(calc, w, vdd, 0.25, 1.0).critical_delay;
    EXPECT_LT(crit, prev);
    prev = crit;
  }
  prev = 0.0;
  for (double vts : {0.1, 0.25, 0.4, 0.55}) {
    const double crit = run_sta(calc, w, 1.2, vts, 1.0).critical_delay;
    EXPECT_GT(crit, prev);
    prev = crit;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StaMonotonicity,
                         ::testing::Values(1, 7, 21, 77, 123));

}  // namespace
}  // namespace minergy::timing
