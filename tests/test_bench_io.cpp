#include <gtest/gtest.h>

#include "netlist/bench_io.h"
#include "util/check.h"

namespace minergy::netlist {
namespace {

constexpr const char* kC17 = R"(
# ISCAS-85 c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";

TEST(BenchParser, ParsesC17) {
  Netlist nl = parse_bench_string(kC17, "c17");
  EXPECT_EQ(nl.primary_inputs().size(), 5u);
  EXPECT_EQ(nl.primary_outputs().size(), 2u);
  EXPECT_EQ(nl.num_combinational(), 6u);
  EXPECT_EQ(nl.depth(), 3);
  const GateId g22 = nl.find("22");
  ASSERT_NE(g22, kInvalidGate);
  EXPECT_EQ(nl.gate(g22).type, GateType::kNand);
  EXPECT_TRUE(nl.gate(g22).is_primary_output);
}

TEST(BenchParser, ForwardReferencesResolve) {
  // OUTPUT and fanin references before the defining assignment.
  const char* text = R"(
OUTPUT(y)
INPUT(a)
y = NOT(b)
b = NOT(a)
)";
  Netlist nl = parse_bench_string(text);
  EXPECT_EQ(nl.depth(), 2);
}

TEST(BenchParser, ParsesDff) {
  const char* text = R"(
INPUT(a)
OUTPUT(o)
q = DFF(g)
g = NAND(a, q)
o = NOT(g)
)";
  Netlist nl = parse_bench_string(text);
  EXPECT_EQ(nl.dffs().size(), 1u);
  EXPECT_EQ(nl.num_combinational(), 2u);
}

TEST(BenchParser, CaseInsensitiveAndWhitespaceTolerant) {
  const char* text = "input( a )\noutput(y)\n y  =  nand( a , a2 )\n"
                     "INPUT(a2)\n";
  Netlist nl = parse_bench_string(text);
  EXPECT_EQ(nl.num_combinational(), 1u);
  EXPECT_EQ(nl.gate(nl.find("y")).type, GateType::kNand);
}

TEST(BenchParser, CommentsAndBlankLinesIgnored) {
  const char* text = R"(
# full comment line

INPUT(a)   # trailing comment
OUTPUT(y)
y = NOT(a)
)";
  EXPECT_NO_THROW(parse_bench_string(text));
}

TEST(BenchParser, UndefinedFaninThrows) {
  const char* text = "INPUT(a)\ny = NAND(a, ghost)\nOUTPUT(y)\n";
  EXPECT_THROW(parse_bench_string(text), util::ParseError);
}

TEST(BenchParser, UndefinedOutputThrows) {
  const char* text = "INPUT(a)\nOUTPUT(ghost)\ny = NOT(a)\n";
  EXPECT_THROW(parse_bench_string(text), util::ParseError);
}

TEST(BenchParser, UnknownGateThrows) {
  const char* text = "INPUT(a)\ny = MAJ3(a, a, a)\n";
  EXPECT_THROW(parse_bench_string(text), util::ParseError);
}

TEST(BenchParser, MalformedLineThrows) {
  EXPECT_THROW(parse_bench_string("INPUT a\n"), util::ParseError);
  EXPECT_THROW(parse_bench_string("y = NAND(a\n"), util::ParseError);
  EXPECT_THROW(parse_bench_string("y = (a, b)\n"), util::ParseError);
}

TEST(BenchParser, ErrorCarriesLineNumber) {
  try {
    parse_bench_string("INPUT(a)\nINPUT(b)\ny = FROB(a, b)\n", "t.bench");
    FAIL() << "expected ParseError";
  } catch (const util::ParseError& e) {
    EXPECT_EQ(e.line_no(), 3);
    EXPECT_EQ(e.file(), "t.bench");
  }
}

TEST(BenchParser, DuplicateDefinitionThrowsParseErrorWithLine) {
  const char* text = "INPUT(a)\ny = NOT(a)\ny = NOT(a)\n";
  try {
    parse_bench_string(text, "dup.bench");
    FAIL() << "expected ParseError";
  } catch (const util::ParseError& e) {
    EXPECT_EQ(e.line_no(), 3);
    EXPECT_EQ(e.file(), "dup.bench");
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos);
  }
}

TEST(BenchParser, DuplicateInputDeclarationThrows) {
  const char* text = "INPUT(a)\nINPUT(a)\ny = NOT(a)\nOUTPUT(y)\n";
  EXPECT_THROW(parse_bench_string(text), util::ParseError);
}

TEST(BenchParser, TruncatedFinalLineThrows) {
  // A file chopped mid-statement (no trailing newline, unbalanced paren)
  // must be a parse error, not a silently dropped gate.
  EXPECT_THROW(parse_bench_string("INPUT(a)\nOUTPUT(y)\ny = NAND(a"),
               util::ParseError);
  EXPECT_THROW(parse_bench_string("INPUT(a"), util::ParseError);
}

TEST(BenchWriter, RoundTripPreservesStructure) {
  Netlist nl = parse_bench_string(kC17, "c17");
  const std::string text = to_bench(nl);
  Netlist nl2 = parse_bench_string(text, "c17rt");
  EXPECT_EQ(nl2.primary_inputs().size(), nl.primary_inputs().size());
  EXPECT_EQ(nl2.primary_outputs().size(), nl.primary_outputs().size());
  EXPECT_EQ(nl2.num_combinational(), nl.num_combinational());
  EXPECT_EQ(nl2.depth(), nl.depth());
  // Same connectivity gate by gate.
  for (const Gate& g : nl.gates()) {
    const GateId id2 = nl2.find(g.name);
    ASSERT_NE(id2, kInvalidGate) << g.name;
    EXPECT_EQ(nl2.gate(id2).type, g.type);
    EXPECT_EQ(nl2.gate(id2).fanins.size(), g.fanins.size());
  }
}

TEST(BenchWriter, RoundTripWithDff) {
  const char* text = R"(
INPUT(a)
OUTPUT(o)
q = DFF(g)
g = NAND(a, q)
o = NOT(g)
)";
  Netlist nl = parse_bench_string(text);
  Netlist nl2 = parse_bench_string(to_bench(nl));
  EXPECT_EQ(nl2.dffs().size(), 1u);
  EXPECT_EQ(nl2.num_combinational(), 2u);
}

TEST(BenchFile, MissingFileThrows) {
  EXPECT_THROW(parse_bench_file("/nonexistent/file.bench"), util::ParseError);
}

TEST(BenchFile, WriteAndReadBack) {
  Netlist nl = parse_bench_string(kC17, "c17");
  const std::string path = ::testing::TempDir() + "/c17_roundtrip.bench";
  write_bench_file(nl, path);
  Netlist nl2 = parse_bench_file(path);
  EXPECT_EQ(nl2.num_combinational(), 6u);
}

}  // namespace
}  // namespace minergy::netlist
