#include <gtest/gtest.h>

#include "netlist/generator.h"
#include "opt/edp.h"
#include "opt/evaluator.h"
#include "opt/joint_optimizer.h"
#include "opt/multi_vdd.h"

namespace minergy::opt {
namespace {

using netlist::Netlist;

Netlist make_circuit(std::uint64_t seed = 61) {
  netlist::GeneratorSpec spec;
  spec.num_inputs = 6;
  spec.num_gates = 70;
  spec.depth = 7;
  spec.num_dffs = 4;
  spec.seed = seed;
  return netlist::generate_random_logic(spec);
}

activity::ActivityProfile profile() {
  activity::ActivityProfile p;
  p.input_density = 0.3;
  return p;
}

// ------------------------------------------------------------- multi-Vdd

TEST(MultiVdd, NeverWorseThanSingleSupply) {
  Netlist nl = make_circuit();
  const tech::Technology tech = tech::Technology::generic350();
  const CircuitEvaluator eval(nl, tech, profile(),
                              {.clock_frequency = 200e6});
  const MultiVddResult r = MultiVddOptimizer(eval).run();
  ASSERT_TRUE(r.single.feasible);
  ASSERT_TRUE(r.feasible);
  EXPECT_LE(r.energy.total(), r.single.energy.total() * (1.0 + 1e-12));
  EXPECT_GE(r.savings_vs_single(), 1.0);
}

TEST(MultiVdd, LowDomainIsDownstreamClosed) {
  Netlist nl = make_circuit();
  const tech::Technology tech = tech::Technology::generic350();
  const CircuitEvaluator eval(nl, tech, profile(),
                              {.clock_frequency = 150e6});
  const MultiVddResult r = MultiVddOptimizer(eval).run();
  if (!r.improved) GTEST_SKIP() << "no dual-supply gain on this circuit";
  for (netlist::GateId id : nl.combinational()) {
    if (!r.low_domain[id]) continue;
    for (netlist::GateId out : nl.gate(id).fanouts) {
      if (netlist::is_combinational(nl.gate(out).type)) {
        EXPECT_TRUE(r.low_domain[out])
            << "low-Vdd gate " << nl.gate(id).name
            << " drives high-Vdd gate " << nl.gate(out).name;
      }
    }
  }
  EXPECT_LT(r.vdd_low, r.vdd_high);
  EXPECT_GT(r.low_count, 0u);
}

TEST(MultiVdd, MeetsTimingAtDualSupplyPoint) {
  Netlist nl = make_circuit();
  const tech::Technology tech = tech::Technology::generic350();
  const CircuitEvaluator eval(nl, tech, profile(),
                              {.clock_frequency = 150e6});
  MultiVddOptions opts;
  const MultiVddResult r = MultiVddOptimizer(eval, opts).run();
  ASSERT_TRUE(r.feasible);
  EXPECT_LE(r.critical_delay,
            opts.base.skew_b * eval.cycle_time() * (1.0 + 1e-9));
}

TEST(MultiVdd, MoreSlackMoreGatesInLowDomain) {
  Netlist nl = make_circuit();
  const tech::Technology tech = tech::Technology::generic350();
  const CircuitEvaluator tight(nl, tech, profile(),
                               {.clock_frequency = 250e6});
  const CircuitEvaluator loose(nl, tech, profile(),
                               {.clock_frequency = 60e6});
  const MultiVddResult rt = MultiVddOptimizer(tight).run();
  const MultiVddResult rl = MultiVddOptimizer(loose).run();
  if (rt.improved && rl.improved) {
    EXPECT_GE(rl.low_count + 5, rt.low_count);  // allow small noise
  }
  SUCCEED();
}

TEST(MultiVdd, Deterministic) {
  Netlist nl = make_circuit();
  const tech::Technology tech = tech::Technology::generic350();
  const CircuitEvaluator eval(nl, tech, profile(),
                              {.clock_frequency = 150e6});
  const MultiVddResult a = MultiVddOptimizer(eval).run();
  const MultiVddResult b = MultiVddOptimizer(eval).run();
  EXPECT_EQ(a.energy.total(), b.energy.total());
  EXPECT_EQ(a.vdd_low, b.vdd_low);
  EXPECT_EQ(a.low_count, b.low_count);
}

// ------------------------------------------------------------------- EDP

TEST(Edp, FindsInteriorOptimum) {
  Netlist nl = make_circuit();
  const tech::Technology tech = tech::Technology::generic350();
  EdpOptions opts;
  opts.points = 7;
  const EdpResult r =
      minimize_energy_delay_product(nl, tech, profile(), opts);
  ASSERT_TRUE(r.best.feasible);
  EXPECT_GT(r.edp, 0.0);
  ASSERT_EQ(r.sweep.size(), 7u);
  // Every feasible sweep point has consistent EDP arithmetic and none
  // beats the reported best.
  for (const EdpPoint& p : r.sweep) {
    if (!p.feasible) continue;
    EXPECT_NEAR(p.edp, p.energy * p.critical_delay, 1e-30);
    EXPECT_GE(p.edp, r.edp * (1.0 - 1e-12));
  }
}

TEST(Edp, ProductBeatsEnergyTimesDelayOfPureEnergyRun) {
  // A very relaxed pure-energy optimization minimizes E but lets the delay
  // balloon; the EDP optimum must have a smaller product.
  Netlist nl = make_circuit();
  const tech::Technology tech = tech::Technology::generic350();
  const EdpResult r = minimize_energy_delay_product(nl, tech, profile());
  ASSERT_TRUE(r.best.feasible);
  const CircuitEvaluator relaxed(nl, tech, profile(),
                                 {.clock_frequency = 5e6});  // 200 ns
  const OptimizationResult slow = JointOptimizer(relaxed).run();
  ASSERT_TRUE(slow.feasible);
  EXPECT_LT(r.edp, slow.energy.total() * slow.critical_delay);
}

TEST(Edp, RejectsBadOptions) {
  Netlist nl = make_circuit();
  const tech::Technology tech = tech::Technology::generic350();
  EdpOptions opts;
  opts.points = 1;
  EXPECT_THROW(minimize_energy_delay_product(nl, tech, profile(), opts),
               std::logic_error);
  opts = EdpOptions{};
  opts.t_lo_factor = 0.5;
  EXPECT_THROW(minimize_energy_delay_product(nl, tech, profile(), opts),
               std::logic_error);
}

}  // namespace
}  // namespace minergy::opt
