#include <gtest/gtest.h>

#include "activity/activity.h"
#include "interconnect/wire_model.h"
#include "netlist/bench_io.h"
#include "power/energy_model.h"

namespace minergy::power {
namespace {

using netlist::GateId;
using netlist::Netlist;

struct Fixture {
  Fixture()
      : nl(netlist::parse_bench_string(R"(
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
g1 = NAND(a, b)
g2 = NOR(g1, c)
y = NOT(g2)
)")),
        tech(tech::Technology::generic350()),
        dev(tech),
        wires(tech, nl),
        act(activity::estimate_activity(nl, profile())),
        energy(nl, dev, wires, act, kFc) {}

  static activity::ActivityProfile profile() {
    activity::ActivityProfile p;
    p.input_density = 0.2;
    return p;
  }

  static constexpr double kFc = 300e6;

  std::vector<double> widths(double w) const {
    return std::vector<double>(nl.size(), w);
  }

  Netlist nl;
  tech::Technology tech;
  tech::DeviceModel dev;
  interconnect::WireModel wires;
  activity::ActivityResult act;
  EnergyModel energy;
};

TEST(EnergyModel, StaticEnergyMatchesClosedForm) {
  Fixture f;
  const auto w = f.widths(5.0);
  const GateId g1 = f.nl.find("g1");
  const EnergyBreakdown e = f.energy.gate_energy(g1, w, 1.2, 0.25);
  // E_s = Vdd * w * Ioff / f_c.
  const double expected =
      1.2 * 5.0 * f.dev.ioff_per_wunit(0.25) / Fixture::kFc;
  EXPECT_NEAR(e.static_energy, expected, expected * 1e-12);
}

TEST(EnergyModel, DynamicEnergyMatchesClosedForm) {
  Fixture f;
  const auto w = f.widths(5.0);
  const GateId g1 = f.nl.find("g1");  // 2 inputs, fanout = {g2}
  const EnergyBreakdown e = f.energy.gate_energy(g1, w, 1.2, 0.25);
  const double cap = 5.0 * (f.dev.cpar_per_wunit() + f.dev.cmid_per_wunit()) +
                     5.0 * f.dev.cin_per_wunit() + f.wires.net_cap(g1);
  const double expected =
      0.5 * f.act.density[g1] * 1.2 * 1.2 * cap;
  EXPECT_NEAR(e.dynamic_energy, expected, expected * 1e-12);
}

TEST(EnergyModel, PrimaryOutputLoadIsCharged) {
  Fixture f;
  const auto w = f.widths(5.0);
  const GateId y = f.nl.find("y");
  const EnergyBreakdown e = f.energy.gate_energy(y, w, 1.0, 0.25);
  const double cap = 5.0 * f.dev.cpar_per_wunit() +
                     f.tech.po_load_w * f.dev.cin_per_wunit() +
                     f.wires.net_cap(y);
  EXPECT_NEAR(e.dynamic_energy, 0.5 * f.act.density[y] * cap, 1e-25);
}

TEST(EnergyModel, TotalIsSumOfGates) {
  Fixture f;
  const auto w = f.widths(3.0);
  EnergyBreakdown sum;
  for (GateId id : f.nl.combinational()) {
    sum += f.energy.gate_energy(id, w, 1.0, 0.3);
  }
  const EnergyBreakdown total = f.energy.total_energy(w, 1.0, 0.3);
  EXPECT_NEAR(total.static_energy, sum.static_energy, 1e-25);
  EXPECT_NEAR(total.dynamic_energy, sum.dynamic_energy, 1e-25);
  EXPECT_NEAR(total.total(), sum.static_energy + sum.dynamic_energy, 1e-25);
}

TEST(EnergyModel, PowerIsEnergyTimesFrequency) {
  Fixture f;
  const auto w = f.widths(3.0);
  EXPECT_NEAR(f.energy.total_power(w, 1.0, 0.3),
              f.energy.total_energy(w, 1.0, 0.3).total() * Fixture::kFc,
              1e-12);
}

TEST(EnergyModel, StaticDecreasesWithVts) {
  Fixture f;
  const auto w = f.widths(3.0);
  double prev = 1e9;
  for (double vts = 0.1; vts <= 0.7; vts += 0.1) {
    const double e = f.energy.total_energy(w, 1.0, vts).static_energy;
    EXPECT_LT(e, prev);
    prev = e;
  }
}

TEST(EnergyModel, DynamicIndependentOfVts) {
  Fixture f;
  const auto w = f.widths(3.0);
  const double e1 = f.energy.total_energy(w, 1.0, 0.1).dynamic_energy;
  const double e2 = f.energy.total_energy(w, 1.0, 0.6).dynamic_energy;
  EXPECT_DOUBLE_EQ(e1, e2);
}

TEST(EnergyModel, DynamicScalesQuadraticallyWithVdd) {
  Fixture f;
  const auto w = f.widths(3.0);
  const double e1 = f.energy.total_energy(w, 1.0, 0.3).dynamic_energy;
  const double e2 = f.energy.total_energy(w, 2.0, 0.3).dynamic_energy;
  EXPECT_NEAR(e2 / e1, 4.0, 1e-9);
}

TEST(EnergyModel, StaticScalesLinearlyWithVddAndWidth) {
  Fixture f;
  const double e1 =
      f.energy.total_energy(f.widths(2.0), 1.0, 0.3).static_energy;
  const double e2 =
      f.energy.total_energy(f.widths(4.0), 2.0, 0.3).static_energy;
  EXPECT_NEAR(e2 / e1, 4.0, 1e-9);
}

TEST(EnergyModel, EnergyIncreasesWithActivity) {
  Fixture f;
  activity::ActivityProfile hot = Fixture::profile();
  hot.input_density = 0.8;
  const activity::ActivityResult act_hot =
      activity::estimate_activity(f.nl, hot);
  EnergyModel hot_model(f.nl, f.dev, f.wires, act_hot, Fixture::kFc);
  const auto w = f.widths(3.0);
  EXPECT_GT(hot_model.total_energy(w, 1.0, 0.3).dynamic_energy,
            f.energy.total_energy(w, 1.0, 0.3).dynamic_energy);
  // Static is activity-independent.
  EXPECT_DOUBLE_EQ(hot_model.total_energy(w, 1.0, 0.3).static_energy,
                   f.energy.total_energy(w, 1.0, 0.3).static_energy);
}

TEST(EnergyModel, PerGateThresholdVectorHonored) {
  Fixture f;
  const auto w = f.widths(3.0);
  std::vector<double> vts(f.nl.size(), 0.3);
  const double base =
      f.energy.total_energy(w, 1.0, std::span<const double>(vts))
          .static_energy;
  vts[f.nl.find("g1")] = 0.6;  // one gate leaks less
  const double reduced =
      f.energy.total_energy(w, 1.0, std::span<const double>(vts))
          .static_energy;
  EXPECT_LT(reduced, base);
}

TEST(EnergyModel, StaticEnergyScalesInverselyWithFrequency) {
  Fixture f;
  EnergyModel slow(f.nl, f.dev, f.wires, f.act, Fixture::kFc / 2.0);
  const auto w = f.widths(3.0);
  EXPECT_NEAR(slow.total_energy(w, 1.0, 0.3).static_energy,
              2.0 * f.energy.total_energy(w, 1.0, 0.3).static_energy,
              1e-25);
  EXPECT_DOUBLE_EQ(slow.total_energy(w, 1.0, 0.3).dynamic_energy,
                   f.energy.total_energy(w, 1.0, 0.3).dynamic_energy);
}

TEST(EnergyBreakdown, Accumulates) {
  EnergyBreakdown a{1.0, 2.0};
  EnergyBreakdown b{0.5, 0.25};
  a += b;
  EXPECT_DOUBLE_EQ(a.static_energy, 1.5);
  EXPECT_DOUBLE_EQ(a.dynamic_energy, 2.25);
  EXPECT_DOUBLE_EQ(a.total(), 3.75);
}

}  // namespace
}  // namespace minergy::power
