#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/check.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/search.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/units.h"

namespace minergy::util {
namespace {

// ---------------------------------------------------------------- check.h

TEST(Check, PassingCheckDoesNothing) {
  EXPECT_NO_THROW(MINERGY_CHECK(1 + 1 == 2));
}

TEST(Check, FailingCheckThrowsLogicError) {
  EXPECT_THROW(MINERGY_CHECK(false), std::logic_error);
}

TEST(Check, MessageIsIncluded) {
  try {
    MINERGY_CHECK_MSG(false, "the answer is 42");
    FAIL() << "should have thrown";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("the answer is 42"),
              std::string::npos);
  }
}

TEST(Check, ParseErrorCarriesLocation) {
  ParseError err("bad token", "foo.bench", 17);
  EXPECT_EQ(err.file(), "foo.bench");
  EXPECT_EQ(err.line_no(), 17);
  EXPECT_NE(std::string(err.what()).find("foo.bench:17"), std::string::npos);
}

// ------------------------------------------------------------------ rng.h

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform_index(0), std::logic_error);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(5);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(9);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.normal(2.0, 3.0));
  EXPECT_NEAR(s.mean(), 2.0, 0.05);
  EXPECT_NEAR(s.stddev(), 3.0, 0.05);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(42);
  Rng child = a.split();
  // The child stream must differ from the parent's continuation.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == child.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(HashMix, UnitIsDeterministicAndBounded) {
  for (std::uint64_t x : {0ULL, 1ULL, 42ULL, ~0ULL}) {
    const double u = hash_unit(x);
    EXPECT_EQ(u, hash_unit(x));
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  EXPECT_NE(hash_unit(1), hash_unit(2));
}

// ---------------------------------------------------------------- stats.h

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 1.25, 1e-12);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Histogram, CountsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-5.0);  // clamps to first bin
  h.add(25.0);  // clamps to last bin
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(9), 2.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
}

TEST(Histogram, QuantileInterpolates) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(0.1 * static_cast<double>(i));
  const double median = h.quantile(0.5);
  EXPECT_NEAR(median, 5.0, 1.0);
  EXPECT_LE(h.quantile(0.1), h.quantile(0.9));
}

TEST(Quantile, ExactValues) {
  std::vector<double> v{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
}

// -------------------------------------------------------------- strings.h

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, SplitPreservesEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWsDropsEmpty) {
  const auto parts = split_ws("  foo \t bar\nbaz ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[2], "baz");
}

TEST(Strings, CaseConversion) {
  EXPECT_EQ(to_upper("NanD2"), "NAND2");
  EXPECT_EQ(to_lower("NanD2"), "nand2");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-", "--"));
}

TEST(Strings, FormatEng) {
  EXPECT_EQ(format_eng(3.2e-9, "s"), "3.200ns");
  EXPECT_EQ(format_eng(0.0, "J"), "0J");
  EXPECT_EQ(format_eng(1.5e6, "Hz", 1), "1.5MHz");
}

TEST(Strings, FormatSci) {
  EXPECT_EQ(format_sci(1234.5, 2), "1.23e+03");
}

// ---------------------------------------------------------------- table.h

TEST(Table, TextRendering) {
  Table t({"name", "value"});
  t.begin_row().add("x").add(1);
  t.begin_row().add("long-name").add_sci(1.5e-12);
  const std::string text = t.to_text();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("1.500e-12"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cell(0, 1), "1");
}

TEST(Table, CsvQuoting) {
  Table t({"a", "b"});
  t.begin_row().add("plain").add("with,comma");
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
}

TEST(Table, MarkdownShape) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| a | b |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
}

TEST(Table, RowOverflowThrows) {
  Table t({"only"});
  t.begin_row().add("1");
  EXPECT_THROW(t.add("2"), std::logic_error);
}

TEST(Table, MismatchedAddRowThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::logic_error);
}

// ------------------------------------------------------------------ cli.h

TEST(Cli, ParsesAllForms) {
  const char* argv[] = {"prog", "--alpha=1.5", "--steps=12",
                        "--verbose", "input.bench"};
  Cli cli(5, argv);
  EXPECT_EQ(cli.get("alpha", 0.0), 1.5);
  EXPECT_EQ(cli.get("steps", 0), 12);
  EXPECT_TRUE(cli.get("verbose", false));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "input.bench");
}

TEST(Cli, FallbacksApply) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv);
  EXPECT_EQ(cli.get("missing", std::string("dflt")), "dflt");
  EXPECT_EQ(cli.get("missing", 3), 3);
  EXPECT_FALSE(cli.has("missing"));
}

TEST(Cli, BadBooleanThrows) {
  const char* argv[] = {"prog", "--flag=maybe"};
  Cli cli(2, argv);
  EXPECT_THROW(cli.get("flag", false), std::invalid_argument);
}

// --------------------------------------------------------------- search.h

TEST(Range, MidLowerHigher) {
  Range r{0.0, 8.0};
  EXPECT_DOUBLE_EQ(r.mid(), 4.0);
  EXPECT_DOUBLE_EQ(r.lower().hi, 4.0);
  EXPECT_DOUBLE_EQ(r.higher().lo, 4.0);
  EXPECT_TRUE(r.contains(8.0));
  EXPECT_DOUBLE_EQ(r.clamp(9.0), 8.0);
}

TEST(Search, BisectMinTrueFindsThreshold) {
  const double x = bisect_min_true(0.0, 10.0, 50,
                                   [](double v) { return v >= 3.7; });
  EXPECT_NEAR(x, 3.7, 1e-9);
}

TEST(Search, BisectMaxTrueFindsThreshold) {
  const double x = bisect_max_true(0.0, 10.0, 50,
                                   [](double v) { return v <= 6.1; });
  EXPECT_NEAR(x, 6.1, 1e-9);
}

TEST(Search, GoldenSectionFindsMinimum) {
  const double x = golden_section_min(
      -10.0, 10.0, 60, [](double v) { return (v - 1.5) * (v - 1.5); });
  EXPECT_NEAR(x, 1.5, 1e-6);
}

// ---------------------------------------------------------------- units.h

TEST(Units, ThermalVoltageAt300K) {
  EXPECT_NEAR(thermal_voltage(300.0), 0.02585, 1e-4);
}

}  // namespace
}  // namespace minergy::util
