#include <gtest/gtest.h>

#include <cmath>

#include "activity/activity.h"
#include "netlist/bench_io.h"

namespace minergy::activity {
namespace {

using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;

// ----------------------------------------------- per-gate building blocks

TEST(GateProbability, BasicGates) {
  EXPECT_DOUBLE_EQ(gate_probability(GateType::kAnd, {0.5, 0.5}), 0.25);
  EXPECT_DOUBLE_EQ(gate_probability(GateType::kNand, {0.5, 0.5}), 0.75);
  EXPECT_DOUBLE_EQ(gate_probability(GateType::kOr, {0.5, 0.5}), 0.75);
  EXPECT_DOUBLE_EQ(gate_probability(GateType::kNor, {0.5, 0.5}), 0.25);
  EXPECT_DOUBLE_EQ(gate_probability(GateType::kNot, {0.3}), 0.7);
  EXPECT_DOUBLE_EQ(gate_probability(GateType::kBuf, {0.3}), 0.3);
  EXPECT_DOUBLE_EQ(gate_probability(GateType::kXor, {0.5, 0.5}), 0.5);
  EXPECT_DOUBLE_EQ(gate_probability(GateType::kXnor, {0.5, 0.5}), 0.5);
}

TEST(GateProbability, AsymmetricInputs) {
  EXPECT_NEAR(gate_probability(GateType::kAnd, {0.2, 0.9}), 0.18, 1e-12);
  EXPECT_NEAR(gate_probability(GateType::kOr, {0.2, 0.9}),
              1.0 - 0.8 * 0.1, 1e-12);
  // XOR: p(1-q) + q(1-p).
  EXPECT_NEAR(gate_probability(GateType::kXor, {0.2, 0.9}),
              0.2 * 0.1 + 0.9 * 0.8, 1e-12);
}

TEST(GateProbability, ThreeInputGates) {
  EXPECT_NEAR(gate_probability(GateType::kAnd, {0.5, 0.5, 0.5}), 0.125,
              1e-12);
  EXPECT_NEAR(gate_probability(GateType::kNor, {0.5, 0.5, 0.5}), 0.125,
              1e-12);
  // Three-input XOR of p=0.5 stays 0.5.
  EXPECT_NEAR(gate_probability(GateType::kXor, {0.5, 0.5, 0.5}), 0.5, 1e-12);
}

TEST(GateDensity, InverterAndBufferPassThrough) {
  EXPECT_DOUBLE_EQ(gate_density(GateType::kNot, {0.4}, {0.2}), 0.2);
  EXPECT_DOUBLE_EQ(gate_density(GateType::kBuf, {0.4}, {0.2}), 0.2);
}

TEST(GateDensity, AndBooleanDifference) {
  // D(y) = P(x2)*D(x1) + P(x1)*D(x2).
  EXPECT_NEAR(gate_density(GateType::kAnd, {0.5, 0.8}, {0.1, 0.3}),
              0.8 * 0.1 + 0.5 * 0.3, 1e-12);
  // NAND has the same sensitivities.
  EXPECT_NEAR(gate_density(GateType::kNand, {0.5, 0.8}, {0.1, 0.3}),
              0.8 * 0.1 + 0.5 * 0.3, 1e-12);
}

TEST(GateDensity, OrBooleanDifference) {
  // D(y) = (1-P(x2))*D(x1) + (1-P(x1))*D(x2).
  EXPECT_NEAR(gate_density(GateType::kOr, {0.5, 0.8}, {0.1, 0.3}),
              0.2 * 0.1 + 0.5 * 0.3, 1e-12);
}

TEST(GateDensity, XorPropagatesEverything) {
  EXPECT_NEAR(gate_density(GateType::kXor, {0.5, 0.5}, {0.1, 0.3}), 0.4,
              1e-12);
  EXPECT_NEAR(gate_density(GateType::kXnor, {0.2, 0.9}, {0.25, 0.25}), 0.5,
              1e-12);
}

TEST(GateDensity, ZeroInputDensityGivesZero) {
  EXPECT_DOUBLE_EQ(gate_density(GateType::kNand, {0.5, 0.5}, {0.0, 0.0}),
                   0.0);
}

// --------------------------------------------------- profile validation

TEST(ActivityProfile, Validation) {
  ActivityProfile p;
  EXPECT_NO_THROW(p.validate());
  p.input_probability = 1.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = ActivityProfile{};
  p.input_density = -0.1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = ActivityProfile{};
  p.damping = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = ActivityProfile{};
  p.probability_overrides["x"] = 2.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

// ------------------------------------------------------- whole networks

Netlist chain3() {
  return netlist::parse_bench_string(R"(
INPUT(a)
OUTPUT(y)
n1 = NOT(a)
n2 = NOT(n1)
y = NOT(n2)
)");
}

TEST(EstimateActivity, InverterChainPreservesDensity) {
  Netlist nl = chain3();
  ActivityProfile profile;
  profile.input_probability = 0.3;
  profile.input_density = 0.2;
  const ActivityResult r = estimate_activity(nl, profile);
  const GateId y = nl.find("y");
  EXPECT_NEAR(r.density[y], 0.2, 1e-12);
  EXPECT_NEAR(r.probability[y], 0.7, 1e-12);  // three inversions
}

TEST(EstimateActivity, AndTreeAttenuatesDensity) {
  Netlist nl = netlist::parse_bench_string(R"(
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
g1 = AND(a, b)
g2 = AND(c, d)
y = AND(g1, g2)
)");
  ActivityProfile profile;  // p = 0.5, d = 0.1
  const ActivityResult r = estimate_activity(nl, profile);
  // g1: D = 0.5*0.1 + 0.5*0.1 = 0.1? No: P=0.5 each -> D(g1) = 0.1.
  // y: P(g)=0.25 each -> D(y) = 0.25*0.1 + 0.25*0.1 = 0.05.
  EXPECT_NEAR(r.density[nl.find("g1")], 0.1, 1e-12);
  EXPECT_NEAR(r.probability[nl.find("g1")], 0.25, 1e-12);
  EXPECT_NEAR(r.density[nl.find("y")], 0.05, 1e-12);
  EXPECT_NEAR(r.probability[nl.find("y")], 0.0625, 1e-12);
}

TEST(EstimateActivity, XorTreeAccumulatesDensity) {
  Netlist nl = netlist::parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
y = XOR(a, b)
)");
  ActivityProfile profile;
  profile.input_density = 0.3;
  const ActivityResult r = estimate_activity(nl, profile);
  EXPECT_NEAR(r.density[nl.find("y")], 0.6, 1e-12);
}

TEST(EstimateActivity, PerInputOverridesApply) {
  Netlist nl = netlist::parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
y = AND(a, b)
)");
  ActivityProfile profile;
  profile.probability_overrides["a"] = 1.0;
  profile.density_overrides["a"] = 0.0;
  const ActivityResult r = estimate_activity(nl, profile);
  // With a stuck at 1, y follows b exactly.
  EXPECT_NEAR(r.probability[nl.find("y")], 0.5, 1e-12);
  EXPECT_NEAR(r.density[nl.find("y")], profile.input_density, 1e-12);
}

TEST(EstimateActivity, SequentialFixedPointConverges) {
  // Shift register: the flop's output statistics converge to its input's.
  Netlist nl = netlist::parse_bench_string(R"(
INPUT(a)
OUTPUT(y)
q1 = DFF(g)
q2 = DFF(q1b)
g = BUF(a)
q1b = BUF(q1)
y = BUF(q2)
)");
  ActivityProfile profile;
  profile.input_probability = 0.3;
  profile.input_density = 0.25;
  profile.dff_iterations = 60;
  const ActivityResult r = estimate_activity(nl, profile);
  EXPECT_NEAR(r.probability[nl.find("q2")], 0.3, 1e-6);
  EXPECT_NEAR(r.density[nl.find("q2")], 0.25, 1e-6);
}

TEST(EstimateActivity, FeedbackLoopStaysBoundedAndCentered) {
  // q = DFF(not q): the first-order method cannot see the anticorrelation
  // (the flop toggles every cycle); it must still converge to a bounded,
  // probability-0.5 fixed point rather than diverge or oscillate.
  Netlist nl = netlist::parse_bench_string(R"(
INPUT(a)
OUTPUT(y)
q = DFF(n)
n = NOT(q)
y = BUF(q)
)");
  ActivityProfile profile;
  profile.dff_iterations = 50;
  const ActivityResult r = estimate_activity(nl, profile);
  EXPECT_NEAR(r.probability[nl.find("q")], 0.5, 1e-6);
  EXPECT_GE(r.density[nl.find("q")], 0.0);
  EXPECT_LE(r.density[nl.find("q")], 1.0);
}

TEST(EstimateActivity, ProbabilitiesStayInRange) {
  Netlist nl = netlist::parse_bench_string(R"(
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
g1 = NAND(a, b)
g2 = NOR(b, c)
g3 = XOR(g1, g2)
g4 = XNOR(g3, a)
y = OR(g4, g2, g1)
)");
  ActivityProfile profile;
  profile.input_probability = 0.9;
  profile.input_density = 0.8;
  const ActivityResult r = estimate_activity(nl, profile);
  for (GateId id : nl.combinational()) {
    EXPECT_GE(r.probability[id], 0.0);
    EXPECT_LE(r.probability[id], 1.0);
    EXPECT_GE(r.density[id], 0.0);
  }
}

TEST(EstimateActivity, ZeroActivityInputsGiveZeroEverywhere) {
  Netlist nl = chain3();
  ActivityProfile profile;
  profile.input_density = 0.0;
  const ActivityResult r = estimate_activity(nl, profile);
  for (GateId id : nl.combinational()) {
    EXPECT_DOUBLE_EQ(r.density[id], 0.0);
  }
}

// Density scales linearly with input density in a fixed-probability network
// (the Boolean-difference rule is linear in D).
class ActivityLinearity : public ::testing::TestWithParam<double> {};

TEST_P(ActivityLinearity, DensityScalesLinearly) {
  Netlist nl = netlist::parse_bench_string(R"(
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
g1 = NAND(a, b)
g2 = NOR(g1, c)
y = XOR(g2, a)
)");
  const double d = GetParam();
  ActivityProfile p1, p2;
  p1.input_density = d;
  p2.input_density = d / 2.0;
  const ActivityResult r1 = estimate_activity(nl, p1);
  const ActivityResult r2 = estimate_activity(nl, p2);
  const GateId y = nl.find("y");
  EXPECT_NEAR(r1.density[y], 2.0 * r2.density[y], 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Densities, ActivityLinearity,
                         ::testing::Values(0.05, 0.1, 0.2, 0.5, 1.0));

}  // namespace
}  // namespace minergy::activity
