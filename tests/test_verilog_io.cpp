#include <gtest/gtest.h>

#include "netlist/verilog_io.h"
#include "util/check.h"

namespace minergy::netlist {
namespace {

constexpr const char* kHalfAdder = R"(
// structural half adder
module half_adder (a, b, sum, carry);
  input a, b;
  output sum, carry;
  wire  n1;
  xor  u1 (sum, a, b);
  and  u2 (carry, a, b);
  not  u3 (n1, carry);  /* unused inverter keeps things interesting */
endmodule
)";

TEST(VerilogParser, ParsesHalfAdder) {
  Netlist nl = parse_verilog_string(kHalfAdder);
  EXPECT_EQ(nl.name(), "half_adder");
  EXPECT_EQ(nl.primary_inputs().size(), 2u);
  EXPECT_EQ(nl.primary_outputs().size(), 2u);
  EXPECT_EQ(nl.num_combinational(), 3u);
  EXPECT_EQ(nl.gate(nl.find("sum")).type, GateType::kXor);
  EXPECT_EQ(nl.gate(nl.find("carry")).type, GateType::kAnd);
}

TEST(VerilogParser, InstanceNamesAreOptionalNoise) {
  // The primitive keyword is what matters; "u1" etc. are skipped because
  // the terminal list starts at '('.
  const char* text = R"(
module m (a, y);
  input a; output y;
  not (y, a);
endmodule
)";
  Netlist nl = parse_verilog_string(text);
  EXPECT_EQ(nl.num_combinational(), 1u);
}

TEST(VerilogParser, BlockCommentsSpanLines) {
  const char* text = R"(
module m (a, y);
  input a; output y;
  /* a comment
     spanning lines with a fake gate: nand f(y, a, a); */
  buf u (y, a);
endmodule
)";
  Netlist nl = parse_verilog_string(text);
  EXPECT_EQ(nl.num_combinational(), 1u);
  EXPECT_EQ(nl.gate(nl.find("y")).type, GateType::kBuf);
}

TEST(VerilogParser, DffPrimitive) {
  const char* text = R"(
module seq (a, y);
  input a; output y;
  wire d;
  dff r1 (q, d);
  nand u1 (d, a, q);
  not  u2 (y, q);
endmodule
)";
  Netlist nl = parse_verilog_string(text);
  EXPECT_EQ(nl.dffs().size(), 1u);
  EXPECT_EQ(nl.num_combinational(), 2u);
}

TEST(VerilogParser, MultiLineStatements) {
  const char* text = R"(
module m (a, b,
          y);
  input a,
        b;
  output y;
  nand u1 (y,
           a,
           b);
endmodule
)";
  Netlist nl = parse_verilog_string(text);
  EXPECT_EQ(nl.num_combinational(), 1u);
  EXPECT_EQ(nl.gate(nl.find("y")).fanins.size(), 2u);
}

TEST(VerilogParser, UndrivenSignalThrows) {
  const char* text = R"(
module m (a, y);
  input a; output y;
  nand u1 (y, a, ghost);
endmodule
)";
  EXPECT_THROW(parse_verilog_string(text), util::ParseError);
}

TEST(VerilogParser, UndrivenOutputThrows) {
  const char* text = R"(
module m (a, y);
  input a; output y;
  not u1 (z, a);
endmodule
)";
  EXPECT_THROW(parse_verilog_string(text), util::ParseError);
}

TEST(VerilogParser, UnknownPrimitiveThrows) {
  const char* text = R"(
module m (a, y);
  input a; output y;
  mux2 u1 (y, a, a);
endmodule
)";
  EXPECT_THROW(parse_verilog_string(text), util::ParseError);
}

TEST(VerilogParser, MissingEndmoduleThrows) {
  const char* text = "module m (a); input a;";
  EXPECT_THROW(parse_verilog_string(text), util::ParseError);
}

TEST(VerilogParser, DuplicateDriverThrowsParseErrorWithLine) {
  const char* text =
      "module m (a, y);\ninput a;\noutput y;\nnot u1 (y, a);\n"
      "not u2 (y, a);\nendmodule\n";
  try {
    parse_verilog_string(text, "dup.v");
    FAIL() << "expected ParseError";
  } catch (const util::ParseError& e) {
    EXPECT_EQ(e.line_no(), 5);
    EXPECT_NE(std::string(e.what()).find("duplicate driver"),
              std::string::npos);
  }
}

TEST(VerilogParser, DuplicateInputThrows) {
  const char* text =
      "module m (a, y);\ninput a;\ninput a;\noutput y;\nnot u1 (y, a);\n"
      "endmodule\n";
  EXPECT_THROW(parse_verilog_string(text), util::ParseError);
}

TEST(VerilogParser, TruncatedFinalStatementThrows) {
  const char* text = "module m (a, y);\ninput a;\noutput y;\nnot u1 (y, a";
  EXPECT_THROW(parse_verilog_string(text), util::ParseError);
}

TEST(VerilogParser, StatementOutsideModuleThrows) {
  const char* text = "input a;\nmodule m (a); endmodule";
  EXPECT_THROW(parse_verilog_string(text), util::ParseError);
}

TEST(VerilogParser, GluedPortListAfterModuleName) {
  const char* text = R"(
module top(a, y);
  input a; output y;
  not u (y, a);
endmodule
)";
  Netlist nl = parse_verilog_string(text);
  EXPECT_EQ(nl.name(), "top");
}

TEST(VerilogFile, MissingFileThrows) {
  EXPECT_THROW(parse_verilog_file("/nonexistent/x.v"), util::ParseError);
}

}  // namespace
}  // namespace minergy::netlist
