#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <sstream>

#include "netlist/bench_io.h"
#include "opt/circuit_state.h"
#include "spice/spice_export.h"

namespace minergy::spice {
namespace {

using netlist::Netlist;

int count_lines_starting_with(const std::string& text, char prefix) {
  std::istringstream in(text);
  std::string line;
  int count = 0;
  while (std::getline(in, line)) {
    if (!line.empty() &&
        std::toupper(static_cast<unsigned char>(line[0])) ==
            std::toupper(static_cast<unsigned char>(prefix))) {
      ++count;
    }
  }
  return count;
}

Netlist simple() {
  return netlist::parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
g1 = NAND(a, b)
y = NOT(g1)
)");
}

TEST(SpiceExport, TransistorCountsMatchTopology) {
  Netlist nl = simple();
  const tech::Technology tech = tech::Technology::generic350();
  const auto state = opt::CircuitState::uniform(nl, 0.8, 0.15, 3.0);
  const std::string deck = export_spice(nl, tech, state);
  // NAND2 = 4 transistors, NOT = 2; plus nothing else.
  EXPECT_EQ(count_lines_starting_with(deck, 'M'), 6);
  // Supply + substrate + n-well + two input sources.
  EXPECT_EQ(count_lines_starting_with(deck, 'V'), 5);
  EXPECT_NE(deck.find(".end"), std::string::npos);
  EXPECT_NE(deck.find(".model nfet"), std::string::npos);
  EXPECT_NE(deck.find(".model pfet"), std::string::npos);
}

TEST(SpiceExport, WidthsAreScaledByBeta) {
  Netlist nl = simple();
  tech::Technology tech = tech::Technology::generic350();
  tech.beta_ratio = 2.0;
  auto state = opt::CircuitState::uniform(nl, 0.8, 0.15, 4.0);
  const std::string deck = export_spice(nl, tech, state);
  // NMOS width: 4 * 0.35um = 1.4um; PMOS: 2.8um.
  EXPECT_NE(deck.find("W=1.4u"), std::string::npos);
  EXPECT_NE(deck.find("W=2.8u"), std::string::npos);
}

TEST(SpiceExport, BodyBiasRailsPresent) {
  Netlist nl = simple();
  const tech::Technology tech = tech::Technology::generic350();
  const auto state = opt::CircuitState::uniform(nl, 0.8, 0.18, 3.0);
  const std::string deck = export_spice(nl, tech, state);
  EXPECT_NE(deck.find("Vsub vsub 0 -"), std::string::npos)
      << "reverse substrate bias expected";
  EXPECT_NE(deck.find("Vnw vnw 0 "), std::string::npos);
  // Natural (implant-free) threshold in the model card.
  EXPECT_NE(deck.find("vto=0.08"), std::string::npos);
}

TEST(SpiceExport, RailsWithoutBodyBias) {
  Netlist nl = simple();
  const tech::Technology tech = tech::Technology::generic350();
  const auto state = opt::CircuitState::uniform(nl, 0.8, 0.18, 3.0);
  ExportOptions opts;
  opts.include_body_bias_rails = false;
  const std::string deck = export_spice(nl, tech, state, opts);
  EXPECT_NE(deck.find("Vsub vsub 0 0"), std::string::npos);
  EXPECT_NE(deck.find("vto=0.18"), std::string::npos);
}

TEST(SpiceExport, ParasiticsTogglable) {
  Netlist nl = simple();
  const tech::Technology tech = tech::Technology::generic350();
  const auto state = opt::CircuitState::uniform(nl, 0.8, 0.18, 3.0);
  ExportOptions with, without;
  without.include_wire_parasitics = false;
  const std::string a = export_spice(nl, tech, state, with);
  const std::string b = export_spice(nl, tech, state, without);
  EXPECT_GT(count_lines_starting_with(a, 'C'), 0);
  EXPECT_EQ(count_lines_starting_with(b, 'C'), 0);
}

TEST(SpiceExport, XorDecomposesToNands) {
  Netlist nl = netlist::parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
y = XOR(a, b)
)");
  const tech::Technology tech = tech::Technology::generic350();
  const auto state = opt::CircuitState::uniform(nl, 1.0, 0.2, 2.0);
  const std::string deck = export_spice(nl, tech, state);
  // 4 NAND2 = 16 transistors.
  EXPECT_EQ(count_lines_starting_with(deck, 'M'), 16);
}

TEST(SpiceExport, AndOrGetOutputInverters) {
  Netlist nl = netlist::parse_bench_string(R"(
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
y = AND(a, b, c)
)");
  const tech::Technology tech = tech::Technology::generic350();
  const auto state = opt::CircuitState::uniform(nl, 1.0, 0.2, 2.0);
  const std::string deck = export_spice(nl, tech, state);
  // NAND3 (6) + inverter (2).
  EXPECT_EQ(count_lines_starting_with(deck, 'M'), 8);
}

TEST(SpiceExport, DffHandledAsBoundary) {
  Netlist nl = netlist::parse_bench_string(R"(
INPUT(a)
OUTPUT(o)
q = DFF(g)
g = NAND(a, q)
o = NOT(g)
)");
  const tech::Technology tech = tech::Technology::generic350();
  const auto state = opt::CircuitState::uniform(nl, 1.0, 0.2, 2.0);
  const std::string deck = export_spice(nl, tech, state);
  // Q driven as a source, no transistors for the flop itself.
  EXPECT_NE(deck.find("Vq q 0 0"), std::string::npos);
  EXPECT_EQ(count_lines_starting_with(deck, 'M'), 6);  // NAND2 + NOT
}

TEST(SpiceExport, SanitizesNodeNames) {
  Netlist nl("punct");
  const auto a = nl.add_input("in[0]");
  const auto y = nl.add_gate(netlist::GateType::kNot, "out.1", {a});
  nl.mark_output(y);
  nl.finalize();
  const tech::Technology tech = tech::Technology::generic350();
  const auto state = opt::CircuitState::uniform(nl, 1.0, 0.2, 2.0);
  const std::string deck = export_spice(nl, tech, state);
  EXPECT_EQ(deck.find("in[0]"), std::string::npos);
  EXPECT_NE(deck.find("in_0_"), std::string::npos);
  EXPECT_NE(deck.find("out_1"), std::string::npos);
}

TEST(SpiceExport, FileWriter) {
  Netlist nl = simple();
  const tech::Technology tech = tech::Technology::generic350();
  const auto state = opt::CircuitState::uniform(nl, 0.8, 0.15, 3.0);
  const std::string path = ::testing::TempDir() + "/export.sp";
  write_spice_file(nl, tech, state, path);
  std::ifstream in(path);
  ASSERT_TRUE(static_cast<bool>(in));
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find(".end"), std::string::npos);
}

TEST(SpiceExport, RequiresSizedState) {
  Netlist nl = simple();
  const tech::Technology tech = tech::Technology::generic350();
  opt::CircuitState bad;  // empty
  bad.vdd = 1.0;
  EXPECT_THROW(export_spice(nl, tech, bad), std::logic_error);
}

}  // namespace
}  // namespace minergy::spice
