// Parallel evaluation engine: thread-pool semantics, the bit-exactness
// contract (any --threads value produces the identical result, double for
// double), and the evaluation cache's transparency (cached results change
// wall-clock, never answers).
//
// These are the `par` CTest label's determinism oracles; scripts/ci.sh runs
// them in Release and again under TSan, where the concurrent sections double
// as the data-race oracle for the pool, the levelized STA, the parallel
// width search and the multi-chain anneal.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_suite/experiment.h"
#include "bench_suite/iscas.h"
#include "netlist/generator.h"
#include "obs/metrics.h"
#include "opt/annealing_optimizer.h"
#include "opt/baseline_optimizer.h"
#include "opt/certifier.h"
#include "opt/eval_cache.h"
#include "opt/evaluator.h"
#include "opt/joint_optimizer.h"
#include "opt/sizer.h"
#include "timing/delay_budget.h"
#include "timing/sta.h"
#include "util/thread_pool.h"

namespace minergy {
namespace {

// Thread count and cache enable are process-global knobs; every test leaves
// them the way it found them so ordering cannot couple tests.
class ParallelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_cache_enabled_ = opt::eval_cache_enabled();
    obs::set_enabled(true);
  }
  void TearDown() override {
    util::set_global_threads(0);
    opt::set_eval_cache_enabled(was_cache_enabled_);
  }

 private:
  bool was_cache_enabled_ = false;
};

netlist::Netlist make_random(std::uint64_t seed = 11, int gates = 90,
                             int depth = 9) {
  netlist::GeneratorSpec spec;
  spec.num_inputs = 7;
  spec.num_outputs = 6;
  spec.num_dffs = 5;
  spec.num_gates = gates;
  spec.depth = depth;
  spec.seed = seed;
  return netlist::generate_random_logic(spec);
}

activity::ActivityProfile profile(double density = 0.25) {
  activity::ActivityProfile p;
  p.input_density = density;
  return p;
}

// --- ThreadPool unit semantics ---------------------------------------------

TEST_F(ParallelTest, ParallelForRunsEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(n, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST_F(ParallelTest, SingleLanePoolRunsInline) {
  util::ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1);
  std::vector<int> order;
  pool.parallel_for(5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));  // safe: inline = this thread only
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  pool.parallel_for(0, [&](std::size_t) { FAIL() << "n=0 must not invoke"; });
}

TEST_F(ParallelTest, NestedParallelForRunsInlineWithoutDeadlock) {
  util::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(8, [&](std::size_t outer) {
    // The nested call must not wait on pool capacity its own thread holds.
    pool.parallel_for(8, [&](std::size_t inner) {
      hits[outer * 8 + inner].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST_F(ParallelTest, LowestIndexExceptionWinsLikeASerialLoop) {
  util::ThreadPool pool(4);
  for (int round = 0; round < 8; ++round) {
    try {
      pool.parallel_for(256, [&](std::size_t i) {
        if (i == 17 || i == 200) {
          throw std::runtime_error("boom " + std::to_string(i));
        }
      });
      FAIL() << "expected a rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom 17");
    }
    // The pool survives a throwing job and keeps working.
    std::atomic<int> count{0};
    pool.parallel_for(32, [&](std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), 32);
  }
}

TEST_F(ParallelTest, GlobalPoolHonorsRequestedThreadCount) {
  util::set_global_threads(3);
  EXPECT_EQ(util::global_threads(), 3);
  EXPECT_EQ(util::global_pool().threads(), 3);
  util::set_global_threads(1);
  EXPECT_EQ(util::global_pool().threads(), 1);
  util::set_global_threads(0);  // hardware concurrency
  EXPECT_GE(util::global_threads(), 1);
}

// --- bit-exactness oracles: threads=1 vs threads=N -------------------------

// Every oracle runs the same computation at 1, 2 and 8 threads and compares
// doubles with operator== — the contract is bit-identical, not "close".

TEST_F(ParallelTest, StaIsBitIdenticalAtAnyThreadCount) {
  const netlist::Netlist nl = make_random();
  const tech::Technology tech = tech::Technology::generic350();
  const tech::DeviceModel dev(tech);
  const interconnect::WireModel wires(tech, nl);
  const timing::DelayCalculator calc(nl, dev, wires);
  const std::vector<double> widths(nl.size(), 4.0);
  const std::vector<double> vts(nl.size(), 0.3);
  const double cycle = 4.0e-9;

  util::set_global_threads(1);
  const timing::TimingReport ref =
      timing::run_sta(calc, widths, 2.5, std::span<const double>(vts), cycle);
  for (const int threads : {2, 8}) {
    util::set_global_threads(threads);
    const timing::TimingReport r = timing::run_sta(
        calc, widths, 2.5, std::span<const double>(vts), cycle);
    EXPECT_EQ(r.critical_delay, ref.critical_delay) << threads;
    EXPECT_EQ(r.gate_delay, ref.gate_delay) << threads;
    EXPECT_EQ(r.arrival, ref.arrival) << threads;
    EXPECT_EQ(r.slack, ref.slack) << threads;
    EXPECT_EQ(r.critical_path, ref.critical_path) << threads;
  }
}

TEST_F(ParallelTest, SizerAndEnergyAreBitIdenticalAtAnyThreadCount) {
  const netlist::Netlist nl = make_random(23);
  const tech::Technology tech = tech::Technology::generic350();
  const opt::CircuitEvaluator eval(nl, tech, profile(),
                                   {.clock_frequency = 200e6});
  opt::set_eval_cache_enabled(false);  // force real recomputation per run
  const timing::BudgetResult budgets =
      eval.budgeter().assign(0.95 * eval.cycle_time());
  const std::vector<double> vts(nl.size(), 0.25);

  util::set_global_threads(1);
  const opt::SizingResult ref_sz =
      opt::GateSizer(eval.delay_calculator()).size(budgets.t_max, 2.8, vts);
  opt::CircuitState state;
  state.vdd = 2.8;
  state.vts = vts;
  state.widths = ref_sz.widths;
  const power::EnergyBreakdown ref_e = eval.energy(state);

  for (const int threads : {2, 8}) {
    util::set_global_threads(threads);
    const opt::SizingResult sz =
        opt::GateSizer(eval.delay_calculator()).size(budgets.t_max, 2.8, vts);
    EXPECT_EQ(sz.widths, ref_sz.widths) << threads;
    EXPECT_EQ(sz.all_budgets_met, ref_sz.all_budgets_met) << threads;
    EXPECT_EQ(sz.gates_missed, ref_sz.gates_missed) << threads;
    const power::EnergyBreakdown e = eval.energy(state);
    EXPECT_EQ(e.dynamic_energy, ref_e.dynamic_energy) << threads;
    EXPECT_EQ(e.static_energy, ref_e.static_energy) << threads;
    EXPECT_EQ(e.short_circuit_energy, ref_e.short_circuit_energy) << threads;
  }
}

void expect_same_result(const opt::OptimizationResult& a,
                        const opt::OptimizationResult& b,
                        const std::string& trace) {
  SCOPED_TRACE(trace);
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.state.vdd, b.state.vdd);
  EXPECT_EQ(a.state.vts, b.state.vts);
  EXPECT_EQ(a.state.widths, b.state.widths);
  EXPECT_EQ(a.energy.dynamic_energy, b.energy.dynamic_energy);
  EXPECT_EQ(a.energy.static_energy, b.energy.static_energy);
  EXPECT_EQ(a.energy.short_circuit_energy, b.energy.short_circuit_energy);
  EXPECT_EQ(a.critical_delay, b.critical_delay);
}

TEST_F(ParallelTest, JointOptimizerIsBitIdenticalAtAnyThreadCount) {
  const netlist::Netlist nl = make_random(31, 70, 8);
  const opt::CircuitEvaluator eval(nl, tech::Technology::generic350(),
                                   profile(), {.clock_frequency = 150e6});
  opt::OptimizerOptions opts;
  opts.num_thresholds = 2;
  util::set_global_threads(1);
  const opt::OptimizationResult ref = opt::JointOptimizer(eval, opts).run();
  for (const int threads : {2, 8}) {
    util::set_global_threads(threads);
    const opt::OptimizationResult r = opt::JointOptimizer(eval, opts).run();
    expect_same_result(r, ref, "threads=" + std::to_string(threads));
  }
}

TEST_F(ParallelTest, MultiChainAnnealIsBitIdenticalAtAnyThreadCount) {
  const netlist::Netlist nl = make_random(47, 60, 7);
  const opt::CircuitEvaluator eval(nl, tech::Technology::generic350(),
                                   profile(), {.clock_frequency = 150e6});
  opt::AnnealingOptions opts;
  opts.max_moves = 600;
  opts.passes = 2;
  opts.chains = 3;
  opts.seed = 99;
  util::set_global_threads(1);
  const opt::OptimizationResult ref = opt::AnnealingOptimizer(eval, opts).run();
  for (const int threads : {2, 8}) {
    util::set_global_threads(threads);
    const opt::OptimizationResult r = opt::AnnealingOptimizer(eval, opts).run();
    expect_same_result(r, ref, "threads=" + std::to_string(threads));
  }
  // circuit_evaluations sums over chains, so it is thread-count invariant
  // too (each chain's budget and move sequence are fixed by its seed).
  util::set_global_threads(8);
  const opt::OptimizationResult again =
      opt::AnnealingOptimizer(eval, opts).run();
  EXPECT_EQ(again.circuit_evaluations, ref.circuit_evaluations);
}

TEST_F(ParallelTest, SingleChainAnnealMatchesChainZeroOfMultiChainSeeding) {
  // chains=1 must stay the historical algorithm: same seed, same answer as
  // the dedicated single-chain path, at any thread count.
  const netlist::Netlist nl = make_random(53, 50, 6);
  const opt::CircuitEvaluator eval(nl, tech::Technology::generic350(),
                                   profile(), {.clock_frequency = 150e6});
  opt::AnnealingOptions one;
  one.max_moves = 400;
  one.passes = 2;
  one.seed = 7;
  one.chains = 1;
  util::set_global_threads(1);
  const opt::OptimizationResult serial =
      opt::AnnealingOptimizer(eval, one).run();
  util::set_global_threads(8);
  const opt::OptimizationResult pooled =
      opt::AnnealingOptimizer(eval, one).run();
  expect_same_result(pooled, serial, "chains=1 pooled");
}

// --- evaluation cache: transparent memoization -----------------------------

TEST_F(ParallelTest, EvalKeyDistinguishesStatesAndExtras) {
  const std::vector<double> vts{0.2, 0.3};
  const std::vector<double> w{1.0, 2.0};
  const opt::EvalKey a = opt::EvalKey::of(1.5, vts, w, 0.0);
  EXPECT_EQ(a, opt::EvalKey::of(1.5, vts, w, 0.0));
  EXPECT_FALSE(a == opt::EvalKey::of(1.5000001, vts, w, 0.0));
  EXPECT_FALSE(a == opt::EvalKey::of(1.5, vts, w, 1e-9));
  std::vector<double> w2 = w;
  w2[1] = std::nextafter(w2[1], 3.0);
  EXPECT_FALSE(a == opt::EvalKey::of(1.5, vts, w2, 0.0));
}

TEST_F(ParallelTest, CacheOnAndOffProduceIdenticalCertifiedResults) {
  // The table1_baseline flow (cycle-time selection, baseline optimization,
  // independent certification) on three bundled ISCAS circuits: the cache
  // must change hit counters, never a single reported double.
  util::set_global_threads(1);
  obs::Counter& hits = obs::counter("opt.eval.cache.hits");
  obs::Counter& misses = obs::counter("opt.eval.cache.misses");
  for (const char* name : {"s27", "s298*", "s344*"}) {
    SCOPED_TRACE(name);
    const netlist::Netlist nl = bench_suite::make_circuit(name);
    bench_suite::ExperimentConfig cfg;
    cfg.clock_frequency = 100e6;
    bool scaled = false;
    const double tc = bench_suite::choose_cycle_time(nl, cfg, &scaled);
    const opt::CircuitEvaluator eval(nl, cfg.tech, profile(0.3),
                                     {.clock_frequency = 1.0 / tc});

    opt::set_eval_cache_enabled(false);
    const opt::OptimizationResult cold =
        opt::BaselineOptimizer(eval, cfg.opts).run();

    opt::set_eval_cache_enabled(true);
    const std::int64_t h0 = hits.value();
    const std::int64_t m0 = misses.value();
    const opt::OptimizationResult warm1 =
        opt::BaselineOptimizer(eval, cfg.opts).run();
    EXPECT_GT(misses.value(), m0);  // first cached run populates
    const opt::OptimizationResult warm2 =
        opt::BaselineOptimizer(eval, cfg.opts).run();
    EXPECT_GT(hits.value(), h0);  // identical re-run hits the memo

    expect_same_result(warm1, cold, "cache-on vs cache-off");
    expect_same_result(warm2, cold, "cache-hit vs cache-off");

    // Certification re-derives every number with the cache bypassed; a
    // cached result must survive it exactly like a recomputed one.
    opt::CertifyOptions copts;
    copts.skew_b = cfg.opts.skew_b;
    const opt::Certificate cert = opt::Certifier(eval, copts).certify(warm2);
    EXPECT_TRUE(cert.certified) << cert.summary();
  }
}

TEST_F(ParallelTest, CertifierBypassesTheCache) {
  const netlist::Netlist nl = make_random(61, 40, 5);
  const opt::CircuitEvaluator eval(nl, tech::Technology::generic350(),
                                   profile(), {.clock_frequency = 150e6});
  opt::set_eval_cache_enabled(true);
  util::set_global_threads(1);
  const opt::OptimizationResult r = opt::BaselineOptimizer(eval, {}).run();
  obs::Counter& hits = obs::counter("opt.eval.cache.hits");
  obs::Counter& misses = obs::counter("opt.eval.cache.misses");
  const std::int64_t h0 = hits.value();
  const std::int64_t m0 = misses.value();
  {
    // Everything under an active bypass skips lookup AND insert.
    const opt::EvalCacheBypass no_cache;
    EXPECT_FALSE(opt::eval_cache_active());
    (void)eval.sta(r.state, eval.cycle_time());
    (void)eval.energy(r.state);
  }
  EXPECT_TRUE(opt::eval_cache_active());
  EXPECT_EQ(hits.value(), h0);
  EXPECT_EQ(misses.value(), m0);
}

}  // namespace
}  // namespace minergy
