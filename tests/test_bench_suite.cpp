#include <gtest/gtest.h>

#include "bench_suite/experiment.h"
#include "bench_suite/iscas.h"
#include "netlist/stats.h"

namespace minergy::bench_suite {
namespace {

TEST(Iscas, C17Structure) {
  netlist::Netlist nl = make_c17();
  EXPECT_EQ(nl.name(), "c17");
  EXPECT_EQ(nl.primary_inputs().size(), 5u);
  EXPECT_EQ(nl.primary_outputs().size(), 2u);
  EXPECT_EQ(nl.num_combinational(), 6u);
  EXPECT_EQ(nl.depth(), 3);
  // All gates are 2-input NANDs.
  for (netlist::GateId id : nl.combinational()) {
    EXPECT_EQ(nl.gate(id).type, netlist::GateType::kNand);
    EXPECT_EQ(nl.gate(id).fanin_count(), 2);
  }
}

TEST(Iscas, S27Structure) {
  netlist::Netlist nl = make_s27();
  EXPECT_EQ(nl.primary_inputs().size(), 4u);
  EXPECT_EQ(nl.primary_outputs().size(), 1u);
  EXPECT_EQ(nl.dffs().size(), 3u);
  EXPECT_EQ(nl.num_combinational(), 10u);
}

TEST(Iscas, PaperSuiteInstantiates) {
  const auto& specs = paper_circuits();
  ASSERT_EQ(specs.size(), 8u);
  EXPECT_EQ(specs.front().name, "s27");
  for (const CircuitSpec& spec : specs) {
    const netlist::Netlist nl = make_circuit(spec);
    const netlist::NetlistStats s = netlist::compute_stats(nl);
    EXPECT_GT(s.num_gates, 0u) << spec.name;
    if (spec.surrogate) {
      EXPECT_EQ(s.num_gates, static_cast<std::size_t>(spec.gen.num_gates));
      EXPECT_EQ(s.depth, spec.gen.depth);
      EXPECT_EQ(s.num_dffs, static_cast<std::size_t>(spec.gen.num_dffs));
    }
  }
}

TEST(Iscas, SurrogatesMatchPublishedIscasScale) {
  // Sanity pins on the published ISCAS-89 statistics the surrogates mimic.
  const netlist::NetlistStats s298 =
      netlist::compute_stats(make_circuit("s298*"));
  EXPECT_EQ(s298.num_gates, 119u);
  EXPECT_EQ(s298.num_dffs, 14u);
  const netlist::NetlistStats s832 =
      netlist::compute_stats(make_circuit("s832*"));
  EXPECT_EQ(s832.num_gates, 287u);
}

TEST(Iscas, LookupByEitherName) {
  EXPECT_NO_THROW(make_circuit("s298*"));
  EXPECT_NO_THROW(make_circuit("s298"));
  EXPECT_NO_THROW(make_circuit("c17"));
  EXPECT_THROW(make_circuit("s99999"), std::invalid_argument);
}

TEST(Iscas, SurrogatesAreDeterministic) {
  const std::string a = netlist::compute_stats(make_circuit("s344*")).to_string();
  const std::string b = netlist::compute_stats(make_circuit("s344*")).to_string();
  EXPECT_EQ(a, b);
}

TEST(Experiment, ChooseCycleTimeUsesRequestedWhenFeasible) {
  ExperimentConfig cfg;
  cfg.clock_frequency = 10e6;  // 100 ns: trivially feasible
  bool scaled = true;
  const double tc = choose_cycle_time(make_s27(), cfg, &scaled);
  EXPECT_FALSE(scaled);
  EXPECT_DOUBLE_EQ(tc, 1e-7);
}

TEST(Experiment, ChooseCycleTimeScalesWhenInfeasible) {
  ExperimentConfig cfg;
  cfg.clock_frequency = 20e9;  // 50 ps: impossible for the baseline
  bool scaled = false;
  const double tc = choose_cycle_time(make_s27(), cfg, &scaled);
  EXPECT_TRUE(scaled);
  EXPECT_GT(tc, 5e-11);
}

TEST(Experiment, RunCircuitProducesPaperShapedRows) {
  ExperimentConfig cfg;
  cfg.input_activities = {0.1, 0.5};
  const auto rows = run_circuit(paper_circuits()[0], cfg);  // s27
  ASSERT_EQ(rows.size(), 2u);
  for (const CircuitExperiment& e : rows) {
    EXPECT_EQ(e.circuit, "s27");
    ASSERT_TRUE(e.baseline.feasible);
    ASSERT_TRUE(e.joint.feasible);
    EXPECT_GT(e.savings, 1.0);
    EXPECT_LT(e.joint.vdd, e.baseline.vdd);
    EXPECT_LT(e.joint.vts_primary, e.baseline.vts_primary);
    EXPECT_LE(e.baseline.critical_delay, e.cycle_time);
    EXPECT_LE(e.joint.critical_delay, e.cycle_time);
  }
  // The paper's observation: savings increase with input activity.
  EXPECT_GT(rows[1].savings, rows[0].savings);
}

}  // namespace
}  // namespace minergy::bench_suite
