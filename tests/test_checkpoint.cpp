// Crash-safe checkpoint/resume: snapshot round-trips, and the guarantee the
// feature exists for — a run killed mid-flight and resumed from its last
// snapshot lands on the same answer as the uninterrupted run.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>

#include "netlist/generator.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "opt/annealing_optimizer.h"
#include "opt/checkpoint.h"
#include "opt/evaluator.h"
#include "opt/joint_optimizer.h"
#include "util/checkpoint.h"
#include "util/guard.h"
#include "util/json.h"
#include "util/rng.h"

namespace minergy::opt {
namespace {

using netlist::Netlist;

Netlist make_circuit(std::uint64_t seed = 2981, int gates = 80, int depth = 8) {
  netlist::GeneratorSpec spec;
  spec.num_inputs = 6;
  spec.num_outputs = 6;
  spec.num_dffs = 6;
  spec.num_gates = gates;
  spec.depth = depth;
  spec.seed = seed;
  return netlist::generate_random_logic(spec);
}

struct Harness {
  explicit Harness(double fc = 250e6)
      : nl(make_circuit()),
        tech(tech::Technology::generic350()),
        eval(nl, tech, profile(), {.clock_frequency = fc}) {}

  static activity::ActivityProfile profile() {
    activity::ActivityProfile p;
    p.input_density = 0.2;
    return p;
  }

  Netlist nl;
  tech::Technology tech;
  CircuitEvaluator eval;
};

// Unique-per-test scratch file, removed on destruction (checkpoints now
// keep rotated generations, so those go too).
struct ScratchFile {
  explicit ScratchFile(const std::string& stem)
      : path((std::filesystem::temp_directory_path() /
              ("minergy_test_" + stem + ".json"))
                 .string()) {
    cleanup();
  }
  ~ScratchFile() { cleanup(); }
  void cleanup() const {
    for (const std::string& p :
         {path, path + ".1", path + ".2", path + ".tmp"}) {
      std::remove(p.c_str());
    }
  }
  std::string path;
};

// ------------------------------------------------------- util::Checkpoint

TEST(UtilCheckpoint, AtomicWriteThenLoadRoundTrips) {
  ScratchFile f("util_ck");
  util::Checkpoint::save(f.path, "minergy.test.v1", R"({"x": 1.5})");
  const util::JsonValue payload =
      util::Checkpoint::load(f.path, "minergy.test.v1");
  EXPECT_DOUBLE_EQ(payload.at("x").as_number(), 1.5);
}

TEST(UtilCheckpoint, SchemaMismatchThrows) {
  ScratchFile f("util_ck_schema");
  util::Checkpoint::save(f.path, "minergy.test.v1", "{}");
  EXPECT_THROW(util::Checkpoint::load(f.path, "minergy.other.v1"),
               util::ParseError);
}

TEST(UtilCheckpoint, MissingFileThrows) {
  EXPECT_THROW(
      util::Checkpoint::load("/nonexistent/minergy_nope.json", "s"),
      util::ParseError);
}

// ----------------------------------------------------- snapshot round-trip

TEST(AnnealCheckpointRoundTrip, PreservesAllFieldsIncludingNonFinite) {
  AnnealCheckpoint ck;
  ck.circuit = "s27";
  ck.pass = 1;
  ck.move = 42;
  ck.temperature = 3.25e-12;
  ck.current.vdd = 1.8125;
  ck.current.vts = {0.45, 0.5};
  ck.current.widths = {1.0, 7.5};
  ck.current_cost = std::numeric_limits<double>::infinity();
  ck.global_best = ck.current;
  ck.global_best_cost = 4.0e-11;
  ck.global_best_crit = 3.0e-9;
  ck.global_best_energy = 4.0e-11;
  ck.evaluations = 1234;
  util::Rng rng(99);
  for (int i = 0; i < 17; ++i) rng.normal(0.0, 1.0);  // leaves a spare normal
  ck.rng = rng.state();

  obs::TrajectoryPoint tp;
  tp.phase = "anneal";
  tp.energy = 5.0e-11;
  tp.accepted = true;
  tp.feasible = true;
  ck.report.optimizer = "annealing";
  ck.report.add_point(std::move(tp));

  ScratchFile f("anneal_ck");
  ck.save(f.path);
  const AnnealCheckpoint back = AnnealCheckpoint::load(f.path);

  EXPECT_EQ(back.circuit, "s27");
  EXPECT_EQ(back.pass, 1);
  EXPECT_EQ(back.move, 42);
  EXPECT_DOUBLE_EQ(back.temperature, ck.temperature);
  EXPECT_DOUBLE_EQ(back.current.vdd, ck.current.vdd);
  EXPECT_EQ(back.current.vts, ck.current.vts);
  EXPECT_EQ(back.current.widths, ck.current.widths);
  EXPECT_TRUE(std::isinf(back.current_cost));
  EXPECT_DOUBLE_EQ(back.global_best_cost, ck.global_best_cost);
  EXPECT_EQ(back.evaluations, 1234);
  EXPECT_EQ(back.rng.words, ck.rng.words);
  EXPECT_EQ(back.rng.have_spare_normal, ck.rng.have_spare_normal);
  EXPECT_DOUBLE_EQ(back.rng.spare_normal, ck.rng.spare_normal);
  ASSERT_EQ(back.report.trajectory.size(), 1u);
  EXPECT_DOUBLE_EQ(back.report.trajectory[0].energy, 5.0e-11);

  // The restored RNG continues the exact stream of the original.
  util::Rng restored(1);
  restored.restore(back.rng);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(restored.next_u64(), rng.next_u64());
  }
}

TEST(JointCheckpointRoundTrip, PreservesSweepPosition) {
  JointCheckpoint ck;
  ck.circuit = "gen80";
  ck.next_step = 4;
  ck.vdd_lo = 0.9;
  ck.vdd_hi = 1.65;
  ck.prev_total = 7.25e-11;
  ck.has_best = true;
  ck.best_state.vdd = 1.275;
  ck.best_state.vts = {0.55};
  ck.best_state.widths = {2.0};
  ck.best_energy.static_energy = 1.0e-13;
  ck.best_energy.dynamic_energy = 7.0e-11;
  ck.best_critical_delay = 3.5e-9;
  ck.best_feasible = true;
  ck.evaluations = 77;

  ScratchFile f("joint_ck");
  ck.save(f.path);
  const JointCheckpoint back = JointCheckpoint::load(f.path);

  EXPECT_EQ(back.next_step, 4);
  EXPECT_DOUBLE_EQ(back.vdd_lo, 0.9);
  EXPECT_DOUBLE_EQ(back.vdd_hi, 1.65);
  EXPECT_DOUBLE_EQ(back.prev_total, ck.prev_total);
  ASSERT_TRUE(back.has_best);
  EXPECT_DOUBLE_EQ(back.best_state.vdd, 1.275);
  EXPECT_DOUBLE_EQ(back.best_energy.dynamic_energy, 7.0e-11);
  EXPECT_TRUE(back.best_feasible);
  EXPECT_EQ(back.evaluations, 77);
}

TEST(AnnealCheckpointLoad, WrongCircuitRejectedByOptimizer) {
  Harness s;
  AnnealCheckpoint ck;
  ck.circuit = "some-other-circuit";
  ck.current = CircuitState::uniform(s.nl, 3.3, 0.4, 4.0);
  ck.global_best = ck.current;
  ScratchFile f("anneal_wrong_circuit");
  ck.save(f.path);

  AnnealingOptions opts;
  opts.resume_path = f.path;
  EXPECT_THROW(AnnealingOptimizer(s.eval, opts).run(), std::logic_error);
}

// ------------------------------------------------- kill + resume == no kill

// Simulates a crash with the evaluation-budget watchdog: the first run is
// killed mid-anneal after snapshots have landed; a second run resumes from
// the snapshot file. Its final answer must match the uninterrupted run's
// exactly (same RNG stream, same accepted sequence).
TEST(AnnealResume, InterruptedRunReproducesUninterruptedResult) {
  Harness s;
  AnnealingOptions base;
  base.max_moves = 900;
  base.passes = 3;
  base.seed = 4242;

  const OptimizationResult uninterrupted =
      AnnealingOptimizer(s.eval, base).run();

  ScratchFile f("anneal_resume");
  AnnealingOptions interrupted = base;
  interrupted.checkpoint_path = f.path;
  interrupted.checkpoint_every_moves = 50;
  interrupted.budget.max_evaluations = 313;  // "crash" mid-pass
  const OptimizationResult partial =
      AnnealingOptimizer(s.eval, interrupted).run();
  ASSERT_TRUE(partial.truncated);
  ASSERT_TRUE(std::filesystem::exists(f.path));

  AnnealingOptions resumed = base;
  resumed.resume_path = f.path;
  const OptimizationResult r = AnnealingOptimizer(s.eval, resumed).run();

  EXPECT_EQ(r.feasible, uninterrupted.feasible);
  EXPECT_DOUBLE_EQ(r.energy.total(), uninterrupted.energy.total());
  EXPECT_DOUBLE_EQ(r.critical_delay, uninterrupted.critical_delay);
  EXPECT_DOUBLE_EQ(r.state.vdd, uninterrupted.state.vdd);
  EXPECT_EQ(r.state.widths, uninterrupted.state.widths);
  EXPECT_EQ(r.state.vts, uninterrupted.state.vts);
  // The stitched trajectory keeps its invariant: accepted energies
  // non-increasing across the interruption point.
  double prev = std::numeric_limits<double>::infinity();
  for (const obs::TrajectoryPoint& tp : r.report.trajectory) {
    if (!tp.accepted) continue;
    EXPECT_LE(tp.energy, prev * (1.0 + 1e-12));
    prev = tp.energy;
  }
}

TEST(JointResume, InterruptedSweepReproducesUninterruptedResult) {
  Harness s;
  OptimizerOptions base;

  const OptimizationResult uninterrupted =
      JointOptimizer(s.eval, base).run();

  ScratchFile f("joint_resume");
  OptimizerOptions interrupted = base;
  interrupted.checkpoint_path = f.path;
  interrupted.budget.max_evaluations = 25;  // dies inside the Vdd sweep
  const OptimizationResult partial =
      JointOptimizer(s.eval, interrupted).run();
  ASSERT_TRUE(partial.truncated);
  ASSERT_TRUE(std::filesystem::exists(f.path));

  OptimizerOptions resumed = base;
  resumed.resume_path = f.path;
  const OptimizationResult r = JointOptimizer(s.eval, resumed).run();

  ASSERT_EQ(r.feasible, uninterrupted.feasible);
  EXPECT_DOUBLE_EQ(r.energy.total(), uninterrupted.energy.total());
  EXPECT_DOUBLE_EQ(r.critical_delay, uninterrupted.critical_delay);
  EXPECT_DOUBLE_EQ(r.state.vdd, uninterrupted.state.vdd);
  EXPECT_EQ(r.state.widths, uninterrupted.state.widths);
  EXPECT_EQ(r.state.vts, uninterrupted.state.vts);
}

// --------------------------------------- corrupt-snapshot resume hardening

// A damaged --resume file must be a typed ParseError on a direct load, and
// an optimizer asked to resume from one must count the rejection
// (opt.checkpoint.resume_rejected) and fall back to a clean fresh start
// that reproduces a never-resumed run exactly.
TEST(ResumeRejection, AnnealFallsBackToFreshRunOnCorruptSnapshot) {
  Harness s;
  AnnealingOptions base;
  base.max_moves = 300;
  base.passes = 2;
  base.seed = 777;
  const OptimizationResult fresh = AnnealingOptimizer(s.eval, base).run();

  // A real snapshot to truncate: run once with checkpointing enabled.
  ScratchFile real("resume_rej_real");
  AnnealingOptions snap = base;
  snap.checkpoint_path = real.path;
  snap.checkpoint_every_moves = 50;
  AnnealingOptimizer(s.eval, snap).run();
  const std::string intact = util::read_file_or_throw(real.path);
  ASSERT_GT(intact.size(), 64u);

  obs::set_enabled(true);
  obs::Counter& rejected = obs::counter("opt.checkpoint.resume_rejected");

  // The dangerous corruptions are the ones that still parse as JSON: the
  // artifact footer is the file's final line, so stripping it leaves the
  // complete, parseable payload (exactly what a torn write used to smuggle
  // past the old checkpoint loader), and flipping one payload byte keeps
  // the document well-formed while the CRC no longer matches.
  const std::size_t footer_start = intact.rfind('\n', intact.size() - 2) + 1;
  ASSERT_TRUE(intact.substr(footer_start).starts_with("#MINERGY1"));
  const std::string parseable_truncation = intact.substr(0, footer_start);
  std::string bit_rotted = intact;
  const std::size_t digit = bit_rotted.find_first_of("0123456789");
  ASSERT_NE(digit, std::string::npos);
  bit_rotted[digit] = bit_rotted[digit] == '7' ? '8' : '7';

  ScratchFile bad("resume_rej_bad");
  int case_no = 0;
  for (const std::string& text :
       {parseable_truncation,                   // valid JSON, footer gone
        bit_rotted,                             // valid JSON, CRC mismatch
        intact.substr(0, intact.size() / 2),    // truncated mid-document
        std::string("!!! not json at all"),     // garbage
        std::string()}) {                       // empty file
    SCOPED_TRACE("corruption case " + std::to_string(case_no++));
    {
      std::ofstream out(bad.path, std::ios::trunc);
      out << text;
    }
    EXPECT_THROW(AnnealCheckpoint::load(bad.path), util::ParseError);
    const std::int64_t before = rejected.value();
    AnnealingOptions opts = base;
    opts.resume_path = bad.path;
    const OptimizationResult r = AnnealingOptimizer(s.eval, opts).run();
    EXPECT_EQ(rejected.value(), before + 1);
    EXPECT_EQ(r.feasible, fresh.feasible);
    EXPECT_DOUBLE_EQ(r.energy.total(), fresh.energy.total());
    EXPECT_DOUBLE_EQ(r.state.vdd, fresh.state.vdd);
    EXPECT_EQ(r.state.widths, fresh.state.widths);
    EXPECT_EQ(r.state.vts, fresh.state.vts);
  }

  // Wrong schema (someone else's checkpoint file): same rejection path.
  util::Checkpoint::save(bad.path, "minergy.other_checkpoint.v1", "{}");
  EXPECT_THROW(AnnealCheckpoint::load(bad.path), util::ParseError);
  const std::int64_t before = rejected.value();
  AnnealingOptions opts = base;
  opts.resume_path = bad.path;
  const OptimizationResult r = AnnealingOptimizer(s.eval, opts).run();
  EXPECT_EQ(rejected.value(), before + 1);
  EXPECT_DOUBLE_EQ(r.energy.total(), fresh.energy.total());
}

TEST(ResumeRejection, JointFallsBackToFreshRunOnCorruptSnapshot) {
  Harness s;
  const OptimizationResult fresh = JointOptimizer(s.eval, {}).run();

  obs::set_enabled(true);
  obs::Counter& rejected = obs::counter("opt.checkpoint.resume_rejected");

  ScratchFile bad("resume_rej_joint");
  {
    std::ofstream out(bad.path, std::ios::trunc);
    out << "{\"schema\": \"minergy.joint_checkpoint.v1\", \"payload\": ";
  }
  EXPECT_THROW(JointCheckpoint::load(bad.path), util::ParseError);
  const std::int64_t before = rejected.value();
  OptimizerOptions opts;
  opts.resume_path = bad.path;
  const OptimizationResult r = JointOptimizer(s.eval, opts).run();
  EXPECT_EQ(rejected.value(), before + 1);
  EXPECT_EQ(r.feasible, fresh.feasible);
  EXPECT_DOUBLE_EQ(r.energy.total(), fresh.energy.total());
  EXPECT_EQ(r.state.widths, fresh.state.widths);
}

// ------------------------------------------- v1 <-> v2 (multi-chain) schema

TEST(MultiAnnealCheckpoint, V2RoundTripsChainsIncludingAbsentOnes) {
  MultiAnnealCheckpoint mck;
  mck.circuit = "s27";
  mck.chains.resize(3);
  mck.chains[0].circuit = "s27";
  mck.chains[0].pass = 2;
  mck.chains[0].move = 17;
  mck.chains[0].current.vdd = 1.5;
  mck.chains[0].current.vts = {0.4};
  mck.chains[0].current.widths = {2.0};
  mck.chains[0].global_best = mck.chains[0].current;
  mck.chains[0].global_best_energy = 3.0e-11;
  mck.chains[0].evaluations = 321;
  // chains[1] stays default-constructed: an absent chain (no snapshot yet).
  mck.chains[2] = mck.chains[0];
  mck.chains[2].move = 99;
  mck.chains[2].rng = util::Rng(5).state();

  ScratchFile f("multi_ck");
  mck.save(f.path);
  // The file on disk is schema v2.
  EXPECT_NO_THROW(util::Checkpoint::load(f.path, kAnnealCheckpointSchemaV2));

  const MultiAnnealCheckpoint back = MultiAnnealCheckpoint::load(f.path);
  EXPECT_EQ(back.circuit, "s27");
  ASSERT_EQ(back.chains.size(), 3u);
  EXPECT_EQ(back.chains[0].pass, 2);
  EXPECT_EQ(back.chains[0].move, 17);
  EXPECT_EQ(back.chains[0].evaluations, 321);
  EXPECT_TRUE(back.chains[1].circuit.empty());  // absent chain survives
  EXPECT_EQ(back.chains[2].move, 99);
  EXPECT_EQ(back.chains[2].rng.words, mck.chains[2].rng.words);
}

TEST(MultiAnnealCheckpoint, V1FileLoadsAsSingleChain) {
  AnnealCheckpoint v1;
  v1.circuit = "s344";
  v1.pass = 1;
  v1.move = 250;
  v1.current.vdd = 2.0;
  v1.current.vts = {0.3, 0.35};
  v1.current.widths = {1.5, 4.0};
  v1.global_best = v1.current;
  v1.global_best_energy = 8.0e-11;
  v1.evaluations = 512;
  v1.rng = util::Rng(77).state();

  ScratchFile f("v1_as_multi");
  v1.save(f.path);  // writes schema v1
  const MultiAnnealCheckpoint mck = MultiAnnealCheckpoint::load(f.path);
  EXPECT_EQ(mck.circuit, "s344");
  ASSERT_EQ(mck.chains.size(), 1u);
  EXPECT_EQ(mck.chains[0].move, 250);
  EXPECT_EQ(mck.chains[0].evaluations, 512);
  EXPECT_EQ(mck.chains[0].rng.words, v1.rng.words);
  EXPECT_EQ(mck.chains[0].current.widths, v1.current.widths);
}

TEST(AnnealResume, MultiChainInterruptedRunReproducesUninterruptedResult) {
  // The v2 analogue of the single-chain kill+resume oracle: a chains=2 run
  // killed by the evaluation budget, resumed from its combined snapshot,
  // must land on the uninterrupted chains=2 answer exactly.
  Harness s;
  AnnealingOptions base;
  base.max_moves = 900;
  base.passes = 3;
  base.seed = 4242;
  base.chains = 2;

  const OptimizationResult uninterrupted =
      AnnealingOptimizer(s.eval, base).run();

  ScratchFile f("anneal_resume_multi");
  AnnealingOptions interrupted = base;
  interrupted.checkpoint_path = f.path;
  interrupted.checkpoint_every_moves = 50;
  interrupted.budget.max_evaluations = 313;  // split across the chains
  const OptimizationResult partial =
      AnnealingOptimizer(s.eval, interrupted).run();
  ASSERT_TRUE(partial.truncated);
  ASSERT_TRUE(std::filesystem::exists(f.path));
  // The interrupted run leaves a v2 snapshot holding both chains.
  const MultiAnnealCheckpoint snap = MultiAnnealCheckpoint::load(f.path);
  EXPECT_EQ(snap.chains.size(), 2u);

  AnnealingOptions resumed = base;
  resumed.resume_path = f.path;
  const OptimizationResult r = AnnealingOptimizer(s.eval, resumed).run();

  EXPECT_EQ(r.feasible, uninterrupted.feasible);
  EXPECT_DOUBLE_EQ(r.energy.total(), uninterrupted.energy.total());
  EXPECT_DOUBLE_EQ(r.critical_delay, uninterrupted.critical_delay);
  EXPECT_DOUBLE_EQ(r.state.vdd, uninterrupted.state.vdd);
  EXPECT_EQ(r.state.widths, uninterrupted.state.widths);
  EXPECT_EQ(r.state.vts, uninterrupted.state.vts);
}

TEST(AnnealResume, V1SnapshotMigratesIntoChainZeroOfMultiChainRun) {
  // Upgrade path: a snapshot from a pre-multi-chain (v1) run resumes chain 0
  // of a chains=2 run; chain 1 starts fresh. The outcome matches an
  // uninterrupted chains=2 run because chain 0's resumed stream converges to
  // its uninterrupted self and chain 1 is untouched.
  Harness s;
  AnnealingOptions base;
  base.max_moves = 600;
  base.passes = 2;
  base.seed = 515;

  ScratchFile f("v1_resume_multi");
  AnnealingOptions v1run = base;  // chains=1 writes a v1 snapshot
  v1run.checkpoint_path = f.path;
  v1run.checkpoint_every_moves = 40;
  v1run.budget.max_evaluations = 200;
  const OptimizationResult partial = AnnealingOptimizer(s.eval, v1run).run();
  ASSERT_TRUE(partial.truncated);
  ASSERT_TRUE(std::filesystem::exists(f.path));
  EXPECT_NO_THROW(util::Checkpoint::load(f.path, kAnnealCheckpointSchema));

  AnnealingOptions multi = base;
  multi.chains = 2;
  const OptimizationResult uninterrupted =
      AnnealingOptimizer(s.eval, multi).run();

  AnnealingOptions resumed = multi;
  resumed.resume_path = f.path;
  const OptimizationResult r = AnnealingOptimizer(s.eval, resumed).run();
  EXPECT_EQ(r.feasible, uninterrupted.feasible);
  EXPECT_DOUBLE_EQ(r.energy.total(), uninterrupted.energy.total());
  EXPECT_DOUBLE_EQ(r.state.vdd, uninterrupted.state.vdd);
  EXPECT_EQ(r.state.widths, uninterrupted.state.widths);
  EXPECT_EQ(r.state.vts, uninterrupted.state.vts);
}

TEST(JointResume, EvaluationCountAccumulatesAcrossResume) {
  Harness s;
  ScratchFile f("joint_evals");
  OptimizerOptions interrupted;
  interrupted.checkpoint_path = f.path;
  interrupted.budget.max_evaluations = 25;
  const OptimizationResult partial =
      JointOptimizer(s.eval, interrupted).run();

  OptimizerOptions resumed;
  resumed.resume_path = f.path;
  const OptimizationResult r = JointOptimizer(s.eval, resumed).run();
  // Resume replays at most the interrupted outer step; the total must keep
  // the pre-crash work on the books.
  EXPECT_GT(r.circuit_evaluations, partial.circuit_evaluations / 2);
  const OptimizationResult fresh = JointOptimizer(s.eval, {}).run();
  EXPECT_GE(r.circuit_evaluations, fresh.circuit_evaluations);
}

}  // namespace
}  // namespace minergy::opt
