// Chaos harness for the optimization service: run the real minergy_served
// binary against a real spool directory and SIGKILL it (or its workers) at
// randomized protocol points, then prove the exactly-once contract — after
// an un-injected drain, every submitted job sits in exactly one terminal
// state (done/failed/quarantined) with a certified result or a typed
// failure, and nothing is lost, duplicated, or stuck in pending/running.
//
// Kill points are deterministic (serve/inject.h): --inject-kill=POINT@K
// raises SIGKILL at the K-th visit of POINT, so every iteration is exactly
// reproducible; only the iteration order is shuffled.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <fcntl.h>
#include <filesystem>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "io/envelope.h"
#include "serve/job.h"
#include "serve/queue.h"
#include "util/checkpoint.h"
#include "util/json.h"

#ifndef MINERGY_SERVED_BIN
#error "MINERGY_SERVED_BIN must point at the minergy_served executable"
#endif

namespace minergy::serve {
namespace {

namespace fs = std::filesystem;

struct ScratchSpool {
  explicit ScratchSpool(const std::string& stem)
      : root((fs::temp_directory_path() / ("minergy_chaos_" + stem)).string()) {
    fs::remove_all(root);
  }
  ~ScratchSpool() { fs::remove_all(root); }
  std::string root;
};

void sleep_seconds(double s) {
  std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

// fork+exec minergy_served with the given flags, stdout/stderr silenced.
pid_t spawn_served(const std::vector<std::string>& flags) {
  std::vector<std::string> args = {MINERGY_SERVED_BIN};
  args.insert(args.end(), flags.begin(), flags.end());
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& s : args) argv.push_back(s.data());
  argv.push_back(nullptr);
  const pid_t pid = fork();
  if (pid == 0) {
    const int null_fd = open("/dev/null", O_WRONLY);
    if (null_fd >= 0) {
      dup2(null_fd, STDOUT_FILENO);
      dup2(null_fd, STDERR_FILENO);
      close(null_fd);
    }
    execv(argv[0], argv.data());
    _exit(127);
  }
  return pid;
}

// Waits for `pid` with a wall-clock cap; SIGKILLs on timeout. Returns the
// raw waitpid status and sets *timed_out.
int wait_exit(pid_t pid, double timeout_seconds, bool* timed_out = nullptr) {
  if (timed_out != nullptr) *timed_out = false;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  int status = 0;
  for (;;) {
    const pid_t r = waitpid(pid, &status, WNOHANG);
    if (r == pid) return status;
    if (std::chrono::steady_clock::now() >= deadline) {
      if (timed_out != nullptr) *timed_out = true;
      kill(pid, SIGKILL);
      waitpid(pid, &status, 0);
      return status;
    }
    sleep_seconds(0.01);
  }
}

// Runs one daemon pass to completion; fails the test on a hung daemon.
int run_served(const std::vector<std::string>& flags,
               double timeout_seconds = 120.0) {
  bool timed_out = false;
  const int status = wait_exit(spawn_served(flags), timeout_seconds,
                               &timed_out);
  EXPECT_FALSE(timed_out) << "daemon did not exit within the cap";
  return status;
}

std::string submit_job(SpoolQueue& q, const std::string& circuit,
                       std::uint64_t seed, const std::string& inject = "",
                       const std::string& optimizer = "baseline",
                       int anneal_moves = 0, double deadline = 0.0) {
  Job job;
  job.circuit = circuit;
  job.optimizer = optimizer;
  job.seed = seed;
  job.inject = inject;
  job.anneal_moves = anneal_moves;
  job.deadline_seconds = deadline;
  return q.submit(job);
}

util::JsonValue read_record(const SpoolQueue& q, const std::string& state,
                            const std::string& id) {
  const std::string path = q.job_path(state, id);
  // All persisted records now carry the io artifact-envelope footer; strip
  // and CRC-verify it before parsing ("" accepts any schema id).
  return util::JsonValue::parse(io::read_artifact(path, ""), path);
}

// The exactly-once oracle: every submitted id is in exactly one terminal
// directory, nothing is left in pending/running, and done/ records carry a
// certified feasible result. Cross-checked against the tool's own auditor.
void expect_exact_partition(const SpoolQueue& q,
                            const std::set<std::string>& submitted) {
  EXPECT_TRUE(q.ids_in("pending").empty()) << "job(s) left in pending/";
  EXPECT_TRUE(q.ids_in("running").empty()) << "job(s) stuck in running/";
  std::set<std::string> terminal;
  for (const char* state : {"done", "failed", "quarantined"}) {
    for (const std::string& id : q.ids_in(state)) {
      EXPECT_TRUE(terminal.insert(id).second)
          << "job " << id << " is in more than one terminal state";
      EXPECT_TRUE(submitted.count(id) != 0)
          << "unknown job " << id << " appeared in " << state << "/";
    }
  }
  EXPECT_EQ(terminal, submitted);
  for (const std::string& id : q.ids_in("done")) {
    const util::JsonValue rec = read_record(q, "done", id);
    EXPECT_TRUE(rec.at("result").get_bool("certified", false));
    EXPECT_TRUE(rec.at("result").get_bool("feasible", false));
  }
  const int status = run_served({"--spool=" + q.root(), "--status",
                                 "--verify",
                                 "--expect-jobs=" +
                                     std::to_string(submitted.size())});
  // A clean audit exits 0, or 4 when quarantined/ is non-empty (still a
  // valid exactly-once partition — the code just flags the poisoned spool).
  const int expect_rc = q.ids_in("quarantined").empty() ? 0 : 4;
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == expect_rc)
      << "minergy_served --status --verify rejected the spool";
}

std::vector<std::string> fast_daemon_flags(const std::string& spool) {
  return {"--spool=" + spool, "--once",        "--workers=2",
          "--poll=0.005",     "--timeout=20",  "--retries=1",
          "--backoff=0.01",   "--drain-grace=0.05",
          "--breaker-threshold=99"};
}

// ------------------------------------------------------------ chaos sweep

// 20 deterministic kill specs covering every protocol point in both the
// daemon and the worker, at first and repeated visits.
std::vector<std::string> kill_specs() {
  std::vector<std::string> specs;
  const std::vector<std::string> points = {
      "daemon.post-claim", "daemon.pre-spawn",    "daemon.post-spawn",
      "daemon.post-reap",  "daemon.pre-finalize", "daemon.pre-requeue",
      "worker.pre-run",    "worker.pre-result",
  };
  for (const std::string& p : points) {
    specs.push_back(p + "@1");
    specs.push_back(p + "@2");
  }
  for (const char* p : {"daemon.post-claim@3", "daemon.post-spawn@3",
                        "daemon.post-reap@3", "daemon.pre-requeue@3"}) {
    specs.push_back(p);
  }
  // Randomize the sweep order only; each spec itself is deterministic.
  std::mt19937 rng(20260806u);
  std::shuffle(specs.begin(), specs.end(), rng);
  return specs;
}

TEST(ServeChaos, NoJobLostDuplicatedOrStuckAcrossKillPoints) {
  const std::vector<std::string> specs = kill_specs();
  ASSERT_GE(specs.size(), 20u);
  int iteration = 0;
  for (const std::string& spec : specs) {
    SCOPED_TRACE("kill spec: " + spec);
    ScratchSpool spool("sweep_" + std::to_string(iteration++));
    SpoolQueue q(spool.root);
    std::set<std::string> submitted;
    submitted.insert(submit_job(q, "c17", 1));
    submitted.insert(submit_job(q, "s27", 2));
    // A guaranteed crash-looper so death/retry/requeue paths execute (and
    // with them the daemon.pre-requeue / post-reap kill points).
    const std::string crasher = submit_job(q, "c17", 3, "crash-pre-run");
    submitted.insert(crasher);

    // Phase 1: daemon under chaos. Either it completes the drain (a worker
    // kill spec does not kill the daemon) or it is SIGKILLed mid-protocol.
    std::vector<std::string> flags = fast_daemon_flags(spool.root);
    flags.push_back("--inject-kill=" + spec);
    run_served(flags);

    // Phase 2: a clean restart must recover and drain completely.
    ASSERT_EQ(run_served(fast_daemon_flags(spool.root)), 0);

    expect_exact_partition(q, submitted);
    // The crash-looper's injected SIGKILL fires on every attempt, so no
    // amount of recovery can make it succeed: retries exhausted.
    EXPECT_TRUE(fs::exists(q.job_path("quarantined", crasher)));
    // A daemon-side kill only interrupts work (never consumes the retry
    // budget), so the two healthy jobs must still complete successfully.
    if (spec.rfind("daemon.", 0) == 0) {
      EXPECT_EQ(q.ids_in("done").size(), 2u)
          << "healthy jobs lost to a daemon-side kill";
    }
  }
}

// ----------------------------------------------------- supervision paths

TEST(ServeChaos, HangingWorkerIsTimedOutRetriedThenQuarantined) {
  ScratchSpool spool("hang");
  SpoolQueue q(spool.root);
  const std::string id = submit_job(q, "c17", 1, "hang");
  const int status = run_served(
      {"--spool=" + spool.root, "--once", "--workers=1", "--poll=0.005",
       "--timeout=0.3", "--retries=1", "--backoff=0.01"});
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  ASSERT_TRUE(fs::exists(q.job_path("quarantined", id)));
  const util::JsonValue rec = read_record(q, "quarantined", id);
  const auto& attempts = rec.at("attempts").items();
  ASSERT_EQ(attempts.size(), 2u);  // first attempt + one retry
  for (const util::JsonValue& a : attempts) {
    EXPECT_EQ(a.get_string("outcome", ""), "timeout");
  }
  // Retries ran under perturbed seeds (same schedule as minergy_batch).
  EXPECT_NE(attempts[0].get_number("seed", 0),
            attempts[1].get_number("seed", 0));
}

TEST(ServeChaos, CrashLoopingCircuitTripsBreakerAndShortCircuits) {
  ScratchSpool spool("breaker");
  SpoolQueue q(spool.root);
  const std::string a = submit_job(q, "c17", 1, "crash-pre-run");
  const std::string b = submit_job(q, "c17", 2, "crash-pre-run");
  const int status = run_served(
      {"--spool=" + spool.root, "--once", "--workers=1", "--poll=0.005",
       "--timeout=20", "--retries=5", "--backoff=0.01",
       "--breaker-threshold=2", "--breaker-cooldown=600"});
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  ASSERT_TRUE(fs::exists(q.job_path("quarantined", a)));
  ASSERT_TRUE(fs::exists(q.job_path("quarantined", b)));
  bool breaker_cited = false;
  for (const std::string& id : {a, b}) {
    const util::JsonValue rec = read_record(q, "quarantined", id);
    if (rec.at("failure").get_string("detail", "").find("breaker") !=
        std::string::npos) {
      breaker_cited = true;
    }
  }
  EXPECT_TRUE(breaker_cited)
      << "no quarantine record cites the tripped circuit breaker";
}

TEST(ServeChaos, DeadlinePropagatesIntoTruncatedButCertifiedResult) {
  ScratchSpool spool("deadline");
  SpoolQueue q(spool.root);
  // An annealing run far larger than the deadline allows: the watchdog must
  // truncate it to the best-seen state, which still certifies and lands in
  // done/ instead of being SIGKILLed by the supervisor timeout.
  const std::string id = submit_job(q, "s27", 5, "", "anneal",
                                    /*anneal_moves=*/8000000,
                                    /*deadline=*/0.2);
  const int status = run_served(
      {"--spool=" + spool.root, "--once", "--workers=1", "--poll=0.005",
       "--timeout=60"});
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  ASSERT_TRUE(fs::exists(q.job_path("done", id)));
  const util::JsonValue rec = read_record(q, "done", id);
  EXPECT_TRUE(rec.at("result").get_bool("truncated", false));
  EXPECT_TRUE(rec.at("result").get_bool("certified", false));
}

// -------------------------------------------------- graceful drain/resume

// SIGTERM mid-anneal, restart, and the finished job must be bit-identical
// to an uninterrupted run: the drain preserved the PR-3 checkpoint and the
// restarted worker resumed from it rather than starting over.
TEST(ServeChaos, DrainedAnnealResumesBitExactlyAfterRestart) {
  const int kMoves = 800000;  // ~seconds of work: room to interrupt
  ScratchSpool interrupted("resume_a");
  ScratchSpool reference("resume_b");
  SpoolQueue qa(interrupted.root);
  SpoolQueue qb(reference.root);
  const std::string ida = submit_job(qa, "s27", 7, "", "anneal", kMoves);
  const std::string idb = submit_job(qb, "s27", 7, "", "anneal", kMoves);

  // Start the daemon, wait until the worker has snapshotted at least one
  // checkpoint, then SIGTERM with a grace window too short to finish.
  const pid_t daemon = spawn_served(
      {"--spool=" + interrupted.root, "--workers=1", "--poll=0.005",
       "--timeout=120", "--drain-grace=0.02"});
  const std::string ck_path = qa.checkpoint_path(ida);
  bool saw_checkpoint = false;
  for (int i = 0; i < 2000; ++i) {
    if (fs::exists(ck_path)) {
      saw_checkpoint = true;
      break;
    }
    sleep_seconds(0.005);
  }
  EXPECT_TRUE(saw_checkpoint) << "worker never wrote a checkpoint";
  kill(daemon, SIGTERM);
  const int status = wait_exit(daemon, 30.0);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "SIGTERM drain did not exit cleanly";

  // The interrupted job is back in pending/ with its checkpoint preserved
  // and the interruption journaled (no retry budget consumed).
  ASSERT_TRUE(fs::exists(qa.job_path("pending", ida)));
  ASSERT_TRUE(fs::exists(ck_path));
  const Job requeued = Job::from_json(
      io::read_artifact(qa.job_path("pending", ida), kJobSchema), "pending");
  ASSERT_FALSE(requeued.attempts.empty());
  EXPECT_EQ(requeued.attempts.back().outcome, "interrupted");
  EXPECT_EQ(requeued.failed_attempts(), 0);

  // Restart: resumes from the snapshot and finishes.
  ASSERT_EQ(run_served(fast_daemon_flags(interrupted.root)), 0);
  ASSERT_TRUE(fs::exists(qa.job_path("done", ida)));
  const util::JsonValue ra = read_record(qa, "done", ida);
  EXPECT_TRUE(ra.at("result").get_bool("resumed", false))
      << "restarted worker did not resume from the checkpoint";

  // Reference: the same job, never interrupted.
  ASSERT_EQ(run_served(fast_daemon_flags(reference.root)), 0);
  ASSERT_TRUE(fs::exists(qb.job_path("done", idb)));
  const util::JsonValue rb = read_record(qb, "done", idb);

  // Bit-exact: the JSON emits doubles with %.17g (exact round-trip), so
  // equality here is equality of the underlying bits.
  for (const char* field : {"energy_total", "static_energy",
                            "dynamic_energy", "vdd", "vts_primary",
                            "critical_delay"}) {
    EXPECT_EQ(ra.at("result").get_number(field, -1.0),
              rb.at("result").get_number(field, -2.0))
        << "field " << field << " diverged after drain+resume";
  }
  EXPECT_TRUE(ra.at("result").get_bool("certified", false));
  EXPECT_TRUE(rb.at("result").get_bool("certified", false));
}

// ------------------------------------------------------------ health file

TEST(ServeChaos, HealthFileTracksDaemonLifecycle) {
  ScratchSpool spool("health");
  SpoolQueue q(spool.root);
  submit_job(q, "c17", 1);
  ASSERT_EQ(run_served(fast_daemon_flags(spool.root)), 0);
  const std::string path = (fs::path(spool.root) / "health.json").string();
  const util::JsonValue h =
      util::JsonValue::parse(io::read_artifact(path, "minergy.health.v1"), path);
  EXPECT_EQ(h.get_string("schema", ""), "minergy.health.v1");
  EXPECT_EQ(h.get_string("state", ""), "stopped");
  EXPECT_DOUBLE_EQ(h.at("queue").get_number("done", -1), 1.0);
}

}  // namespace
}  // namespace minergy::serve
