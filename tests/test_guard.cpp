// Guard + watchdog unit tests and robustness property tests: seeded random
// netlists crossed with technology corners must never produce a non-finite
// delay or energy, and budget-limited runs must come back flagged, not hung.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "netlist/generator.h"
#include "opt/evaluator.h"
#include "opt/joint_optimizer.h"
#include "opt/robust_optimizer.h"
#include "util/guard.h"

namespace minergy {
namespace {

using netlist::Netlist;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// ------------------------------------------------------------ NumericError

TEST(NumericError, CarriesValueAndContext) {
  const util::NumericError e(kNaN, "delay of gate 'u42'");
  EXPECT_TRUE(std::isnan(e.value()));
  EXPECT_EQ(e.context(), "delay of gate 'u42'");
  EXPECT_NE(std::string(e.what()).find("u42"), std::string::npos);
}

TEST(FiniteOrThrow, PassesFiniteValues) {
  EXPECT_DOUBLE_EQ(util::finite_or_throw(1.5, "x"), 1.5);
  EXPECT_DOUBLE_EQ(util::finite_or_throw(-2.0, "x"), -2.0);
  EXPECT_DOUBLE_EQ(util::finite_or_throw(0.0, "x"), 0.0);
}

TEST(FiniteOrThrow, RejectsNaNAndInfinity) {
  EXPECT_THROW(util::finite_or_throw(kNaN, "x"), util::NumericError);
  EXPECT_THROW(util::finite_or_throw(kInf, "x"), util::NumericError);
  EXPECT_THROW(util::finite_or_throw(-kInf, "x"), util::NumericError);
}

TEST(FiniteNonnegOrThrow, RejectsNegatives) {
  EXPECT_DOUBLE_EQ(util::finite_nonneg_or_throw(0.0, "x"), 0.0);
  EXPECT_DOUBLE_EQ(util::finite_nonneg_or_throw(3.0, "x"), 3.0);
  EXPECT_THROW(util::finite_nonneg_or_throw(-1e-30, "x"), util::NumericError);
  EXPECT_THROW(util::finite_nonneg_or_throw(kNaN, "x"), util::NumericError);
}

// ---------------------------------------------------------------- Watchdog

TEST(Watchdog, DefaultIsUnlimited) {
  util::Watchdog dog;
  EXPECT_TRUE(dog.budget().unlimited());
  for (int i = 0; i < 10000; ++i) dog.note_evaluation();
  EXPECT_FALSE(dog.expired());
  EXPECT_EQ(dog.expiry_reason(), nullptr);
  EXPECT_EQ(dog.evaluations(), 10000);
}

TEST(Watchdog, EvaluationBudgetExpires) {
  util::Watchdog dog(util::WatchdogBudget{.max_evaluations = 3});
  EXPECT_FALSE(dog.note_evaluation());
  EXPECT_FALSE(dog.note_evaluation());
  EXPECT_TRUE(dog.note_evaluation());  // third evaluation exhausts the budget
  EXPECT_TRUE(dog.expired());
  EXPECT_STREQ(dog.expiry_reason(), "evaluation budget");
}

TEST(Watchdog, WallClockDeadlineExpires) {
  util::Watchdog dog(util::WatchdogBudget{.wall_seconds = 0.0});
  EXPECT_TRUE(dog.expired());
  EXPECT_STREQ(dog.expiry_reason(), "wall-clock deadline");
  EXPECT_GE(dog.elapsed_seconds(), 0.0);
}

TEST(Watchdog, RestartRewindsBothBudgets) {
  util::Watchdog dog(util::WatchdogBudget{.max_evaluations = 1});
  EXPECT_TRUE(dog.note_evaluation());
  dog.restart();
  EXPECT_FALSE(dog.expired());
  EXPECT_EQ(dog.evaluations(), 0);
}

// ------------------------------------------------- finite-everything sweep

activity::ActivityProfile profile() {
  activity::ActivityProfile p;
  p.input_density = 0.2;
  return p;
}

Netlist make_circuit(std::uint64_t seed, int gates = 60, int depth = 6) {
  netlist::GeneratorSpec spec;
  spec.num_inputs = 5;
  spec.num_outputs = 5;
  spec.num_dffs = 4;
  spec.num_gates = gates;
  spec.depth = depth;
  spec.seed = seed;
  return netlist::generate_random_logic(spec);
}

// Property: random netlists x technology corners x operating points never
// yield a non-finite or negative delay/energy through the guarded evaluator
// boundary — the guards either pass clean numbers or throw; they may not
// let corruption through silently.
TEST(GuardProperty, RandomNetlistsAcrossCornersStayFinite) {
  const std::uint64_t seeds[] = {11, 23, 5087};
  const tech::Technology corners[] = {tech::Technology::generic350(),
                                      tech::Technology::generic250(),
                                      tech::Technology::generic500()};
  for (const std::uint64_t seed : seeds) {
    const Netlist nl = make_circuit(seed);
    for (const tech::Technology& tech : corners) {
      const opt::CircuitEvaluator eval(nl, tech, profile(),
                                       {.clock_frequency = 100e6});
      // Probe the corners of the variable box plus an interior point.
      const double vts_hi = std::min(tech.vts_max, 0.9 * tech.vdd_min);
      const struct {
        double vdd, vts, width;
      } points[] = {
          {tech.vdd_max, tech.vts_min, tech.w_min},
          {tech.vdd_max, tech.vts_max, tech.w_max},
          {tech.vdd_min, vts_hi, tech.w_min},
          {0.5 * (tech.vdd_min + tech.vdd_max),
           0.5 * (tech.vts_min + tech.vts_max), 4.0},
      };
      for (const auto& p : points) {
        const auto state =
            opt::CircuitState::uniform(nl, p.vdd, p.vts, p.width);
        // Either everything the evaluator returns is finite and
        // non-negative, or the boundary guard throws a typed NumericError
        // (deep-subthreshold corners legitimately overflow a delay). The
        // forbidden outcome is corruption passing through silently.
        try {
          const timing::TimingReport report =
              eval.sta(state, eval.cycle_time());
          EXPECT_TRUE(std::isfinite(report.critical_delay));
          EXPECT_GE(report.critical_delay, 0.0);
          for (const netlist::GateId id : nl.combinational()) {
            ASSERT_TRUE(std::isfinite(report.arrival[id]));
            ASSERT_GE(report.gate_delay[id], 0.0);
          }
          const power::EnergyBreakdown e = eval.energy(state);
          EXPECT_TRUE(std::isfinite(e.total()));
          EXPECT_GE(e.total(), 0.0);
          EXPECT_GE(e.dynamic_energy, 0.0);
          EXPECT_GE(e.static_energy, 0.0);
        } catch (const util::NumericError& e) {
          EXPECT_FALSE(std::isfinite(e.value()) && e.value() >= 0.0)
              << "guard rejected a healthy value: " << e.what();
          EXPECT_FALSE(e.context().empty());
        }
      }
    }
  }
}

// ------------------------------------------------------- evaluator guards

TEST(EvaluatorGuards, CorruptTechnologyRejectedAtConstruction) {
  const Netlist nl = make_circuit(7);
  tech::Technology tech = tech::Technology::generic350();
  tech.pc = kNaN;
  EXPECT_THROW(
      opt::CircuitEvaluator(nl, tech, profile(), {.clock_frequency = 100e6}),
      tech::TechnologyError);
}

TEST(EvaluatorGuards, BadSettingsRejected) {
  const Netlist nl = make_circuit(7);
  const tech::Technology tech = tech::Technology::generic350();
  EXPECT_THROW(
      opt::CircuitEvaluator(nl, tech, profile(), {.clock_frequency = 0.0}),
      util::NumericError);
  EXPECT_THROW(opt::CircuitEvaluator(nl, tech, profile(),
                                     {.clock_frequency = kNaN}),
               util::NumericError);
  EXPECT_THROW(opt::CircuitEvaluator(
                   nl, tech, profile(),
                   {.clock_frequency = 100e6, .vts_tolerance = 1.5}),
               util::NumericError);
}

// ------------------------------------------------- watchdog-limited runs

TEST(WatchdogRuns, JointOptimizerHonorsEvaluationBudget) {
  const Netlist nl = make_circuit(31);
  const tech::Technology tech = tech::Technology::generic350();
  const opt::CircuitEvaluator eval(nl, tech, profile(),
                                   {.clock_frequency = 100e6});

  opt::OptimizerOptions opts;
  opts.budget.max_evaluations = 5;
  const opt::OptimizationResult r = opt::JointOptimizer(eval, opts).run();
  EXPECT_TRUE(r.truncated);
  EXPECT_NE(r.truncation_reason.find("evaluation budget"), std::string::npos);
  EXPECT_LE(r.circuit_evaluations, 8);  // budget + in-flight probes
  // Feasible-or-flagged: a truncated run may be infeasible, but it must say
  // so, and anything it does report must be finite.
  if (r.feasible) {
    EXPECT_TRUE(std::isfinite(r.energy.total()));
    EXPECT_TRUE(std::isfinite(r.critical_delay));
  }
}

TEST(WatchdogRuns, ExhaustedWallClockStillReturns) {
  const Netlist nl = make_circuit(31);
  const tech::Technology tech = tech::Technology::generic350();
  const opt::CircuitEvaluator eval(nl, tech, profile(),
                                   {.clock_frequency = 100e6});

  opt::OptimizerOptions opts;
  opts.budget.wall_seconds = 0.0;  // expired before the first probe
  const opt::OptimizationResult r = opt::JointOptimizer(eval, opts).run();
  EXPECT_TRUE(r.truncated);
  EXPECT_NE(r.truncation_reason.find("wall-clock"), std::string::npos);
}

// ------------------------------------------------------- robust fallback

TEST(RobustOptimizer, HealthyCircuitUsesJointTier) {
  const Netlist nl = make_circuit(31);
  const tech::Technology tech = tech::Technology::generic350();
  const opt::CircuitEvaluator eval(nl, tech, profile(),
                                   {.clock_frequency = 100e6});
  const opt::OptimizationResult r = opt::RobustOptimizer(eval).run();
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.tier, opt::ResultTier::kJoint);
  EXPECT_TRUE(r.tier_notes.empty());
  EXPECT_TRUE(std::isfinite(r.energy.total()));
}

TEST(RobustOptimizer, StarvedJointFallsBackAndRecordsWhy) {
  const Netlist nl = make_circuit(31);
  const tech::Technology tech = tech::Technology::generic350();
  const opt::CircuitEvaluator eval(nl, tech, profile(),
                                   {.clock_frequency = 100e6});
  opt::RobustOptions opts;
  // Expired before the first probe: tier 0 cannot even evaluate one point.
  opts.joint.budget.wall_seconds = 0.0;
  const opt::OptimizationResult r = opt::RobustOptimizer(eval, opts).run();
  ASSERT_TRUE(r.feasible);
  EXPECT_NE(r.tier, opt::ResultTier::kJoint);
  ASSERT_FALSE(r.tier_notes.empty());
  EXPECT_NE(r.tier_notes.front().find("joint"), std::string::npos);
}

TEST(RobustOptimizer, ImpossibleClockThrowsRichInfeasibleError) {
  const Netlist nl = make_circuit(31);
  const tech::Technology tech = tech::Technology::generic350();
  const opt::CircuitEvaluator eval(nl, tech, profile(),
                                   {.clock_frequency = 50e9});
  try {
    opt::RobustOptimizer(eval).run();
    FAIL() << "expected util::InfeasibleError";
  } catch (const util::InfeasibleError& e) {
    EXPECT_GT(e.requested_limit(), 0.0);
    EXPECT_GT(e.best_achievable(), e.requested_limit());
    EXPECT_FALSE(e.limiting_gate().empty());
    EXPECT_NE(std::string(e.what()).find(e.limiting_gate()),
              std::string::npos);
  }
}

TEST(DiagnoseInfeasibility, ReportsAchievableDelayForFeasibleDesignsToo) {
  const Netlist nl = make_circuit(31);
  const tech::Technology tech = tech::Technology::generic350();
  const opt::CircuitEvaluator eval(nl, tech, profile(),
                                   {.clock_frequency = 100e6});
  const util::InfeasibleError e = opt::diagnose_infeasibility(eval, 0.95);
  EXPECT_TRUE(std::isfinite(e.best_achievable()));
  EXPECT_GT(e.best_achievable(), 0.0);
  EXPECT_DOUBLE_EQ(e.requested_limit(), 0.95 * eval.cycle_time());
  EXPECT_FALSE(e.limiting_gate().empty());
}

}  // namespace
}  // namespace minergy
