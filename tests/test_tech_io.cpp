#include <gtest/gtest.h>

#include "tech/tech_io.h"
#include "util/check.h"

namespace minergy::tech {
namespace {

TEST(TechIo, DefaultsWhenEmpty) {
  const Technology t = parse_technology_string("", "empty");
  EXPECT_EQ(t.name, "empty");
  EXPECT_DOUBLE_EQ(t.feature_size, Technology{}.feature_size);
}

TEST(TechIo, OverridesApply) {
  const Technology t = parse_technology_string(R"(
# tuned flavor
leakage_scale = 12
vts_max = 0.6
alpha = 1.2
)");
  EXPECT_DOUBLE_EQ(t.leakage_scale, 12.0);
  EXPECT_DOUBLE_EQ(t.vts_max, 0.6);
  EXPECT_DOUBLE_EQ(t.alpha, 1.2);
  // Untouched fields keep defaults.
  EXPECT_DOUBLE_EQ(t.beta_ratio, Technology{}.beta_ratio);
}

TEST(TechIo, BasePresetSelectsStartingPoint) {
  const Technology t = parse_technology_string(R"(
base = generic250
leakage_scale = 3
)");
  EXPECT_DOUBLE_EQ(t.feature_size, 0.25e-6);
  EXPECT_DOUBLE_EQ(t.leakage_scale, 3.0);
}

TEST(TechIo, BaseMustComeFirst) {
  EXPECT_THROW(parse_technology_string("alpha = 1.2\nbase = generic250\n"),
               util::ParseError);
}

TEST(TechIo, UnknownKeyThrows) {
  EXPECT_THROW(parse_technology_string("vdd_maximum = 3.3\n"),
               util::ParseError);
}

TEST(TechIo, BadValueThrows) {
  EXPECT_THROW(parse_technology_string("alpha = fast\n"), util::ParseError);
  EXPECT_THROW(parse_technology_string("alpha = 1.2 volts\n"),
               util::ParseError);
}

TEST(TechIo, MissingEqualsThrows) {
  EXPECT_THROW(parse_technology_string("alpha 1.2\n"), util::ParseError);
}

TEST(TechIo, InvalidPhysicsRejectedByValidate) {
  EXPECT_THROW(parse_technology_string("alpha = 9.0\n"),
               std::invalid_argument);
}

TEST(TechIo, UnknownBaseThrows) {
  EXPECT_THROW(parse_technology_string("base = tsmc7\n"), util::ParseError);
}

TEST(TechIo, ScientificNotationAccepted) {
  const Technology t =
      parse_technology_string("wire_cap_per_len = 2.5e-10\n");
  EXPECT_DOUBLE_EQ(t.wire_cap_per_len, 2.5e-10);
}

TEST(TechIo, RoundTripIsExact) {
  Technology original = Technology::generic250();
  original.leakage_scale = 7.25;
  original.rent_exponent = 0.63;
  const std::string text = to_tech_string(original);
  const Technology parsed = parse_technology_string(text);
  EXPECT_EQ(parsed.name, original.name);
  EXPECT_DOUBLE_EQ(parsed.leakage_scale, 7.25);
  EXPECT_DOUBLE_EQ(parsed.rent_exponent, 0.63);
  EXPECT_DOUBLE_EQ(parsed.feature_size, original.feature_size);
  EXPECT_DOUBLE_EQ(parsed.pc, original.pc);
  EXPECT_DOUBLE_EQ(parsed.vdd_max, original.vdd_max);
}

TEST(TechIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/t.tech";
  Technology t = Technology::generic350();
  t.leakage_scale = 4.5;
  write_technology_file(t, path);
  const Technology parsed = parse_technology_file(path);
  EXPECT_DOUBLE_EQ(parsed.leakage_scale, 4.5);
}

TEST(TechIo, MissingFileThrows) {
  EXPECT_THROW(parse_technology_file("/nonexistent/x.tech"),
               util::ParseError);
}

}  // namespace
}  // namespace minergy::tech
