#include <gtest/gtest.h>

#include <cmath>

#include "interconnect/wire_model.h"
#include "netlist/generator.h"

namespace minergy::interconnect {
namespace {

TEST(WireLengthDistribution, PmfIsNormalized) {
  for (std::size_t n : {4u, 16u, 100u, 1000u}) {
    WireLengthDistribution d(n, 0.6);
    double total = 0.0;
    for (int l = 1; l <= d.max_length(); ++l) {
      EXPECT_GE(d.pmf(l), 0.0);
      total += d.pmf(l);
    }
    EXPECT_NEAR(total, 1.0, 1e-9) << "N=" << n;
  }
}

TEST(WireLengthDistribution, MaxLengthIsTwiceSqrtN) {
  WireLengthDistribution d(100, 0.6);
  EXPECT_EQ(d.max_length(), 20);
}

TEST(WireLengthDistribution, ShortWiresDominate) {
  WireLengthDistribution d(400, 0.6);
  // Rent's-rule distributions are heavily weighted to local wires.
  EXPECT_GT(d.pmf(1), d.pmf(10));
  EXPECT_GT(d.pmf(2), d.pmf(20));
}

TEST(WireLengthDistribution, MeanGrowsWithCircuitSize) {
  const double m1 = WireLengthDistribution(64, 0.6).mean();
  const double m2 = WireLengthDistribution(4096, 0.6).mean();
  EXPECT_GT(m2, m1);
  EXPECT_GE(m1, 1.0);
}

TEST(WireLengthDistribution, HigherRentExponentGivesLongerWires) {
  const double low = WireLengthDistribution(1024, 0.45).mean();
  const double high = WireLengthDistribution(1024, 0.75).mean();
  EXPECT_GT(high, low);
}

TEST(WireLengthDistribution, QuantileIsMonotone) {
  WireLengthDistribution d(256, 0.6);
  int prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const int l = d.quantile(q);
    EXPECT_GE(l, prev);
    EXPECT_GE(l, 1);
    EXPECT_LE(l, d.max_length());
    prev = l;
  }
  EXPECT_EQ(d.quantile(0.0), 1);
}

TEST(WireLengthDistribution, RejectsBadParameters) {
  EXPECT_THROW(WireLengthDistribution(0, 0.6), std::logic_error);
  EXPECT_THROW(WireLengthDistribution(16, 0.0), std::logic_error);
  EXPECT_THROW(WireLengthDistribution(16, 1.0), std::logic_error);
}

class WireModelTest : public ::testing::Test {
 protected:
  WireModelTest() {
    netlist::GeneratorSpec spec;
    spec.num_inputs = 6;
    spec.num_gates = 80;
    spec.depth = 8;
    spec.seed = 42;
    nl_ = netlist::generate_random_logic(spec);
  }
  tech::Technology tech_ = tech::Technology::generic350();
  netlist::Netlist nl_;
};

TEST_F(WireModelTest, AllNetsHavePhysicalValues) {
  WireModel w(tech_, nl_);
  for (netlist::GateId id : nl_.combinational()) {
    EXPECT_GT(w.net_length(id), 0.0);
    EXPECT_GE(w.routed_length(id), w.net_length(id));
    EXPECT_GT(w.net_cap(id), 0.0);
    EXPECT_GE(w.net_res(id), 0.0);
    EXPECT_GT(w.flight_time(id), 0.0);
  }
}

TEST_F(WireModelTest, DeterministicAcrossInstances) {
  WireModel a(tech_, nl_);
  WireModel b(tech_, nl_);
  for (netlist::GateId id : nl_.combinational()) {
    EXPECT_EQ(a.net_length(id), b.net_length(id));
  }
}

TEST_F(WireModelTest, LengthsSpanTheDistribution) {
  WireModel w(tech_, nl_);
  double lo = 1e9, hi = 0.0;
  for (netlist::GateId id : nl_.combinational()) {
    lo = std::min(lo, w.net_length(id));
    hi = std::max(hi, w.net_length(id));
  }
  EXPECT_LT(lo, hi);  // not all nets identical
  EXPECT_GE(lo, tech_.gate_pitch);
}

TEST_F(WireModelTest, RoutedLengthGrowsWithBranches) {
  WireModel w(tech_, nl_);
  for (netlist::GateId id : nl_.combinational()) {
    const int branches = nl_.gate(id).branch_count();
    EXPECT_NEAR(w.routed_length(id),
                w.net_length(id) * (1.0 + 0.4 * (branches - 1)), 1e-12);
  }
}

TEST_F(WireModelTest, CapScalesWithTechnologyWireCap) {
  tech::Technology fat = tech_;
  fat.wire_cap_per_len *= 2.0;
  WireModel a(tech_, nl_);
  WireModel b(fat, nl_);
  const netlist::GateId id = nl_.combinational().front();
  EXPECT_NEAR(b.net_cap(id), 2.0 * a.net_cap(id), 1e-25);
}

TEST_F(WireModelTest, FlightTimeMatchesVelocity) {
  WireModel w(tech_, nl_);
  const netlist::GateId id = nl_.combinational().front();
  EXPECT_NEAR(w.flight_time(id), w.net_length(id) / tech_.flight_velocity,
              1e-20);
}

}  // namespace
}  // namespace minergy::interconnect
