// Spool-queue state machine, job serialization, breaker, and supervisor
// recovery semantics for the optimization service (src/serve/).
//
// Everything here is in-process and deterministic; the subprocess chaos
// harness (test_serve_chaos.cpp) covers daemon/worker kills at randomized
// protocol points. Both run under `ctest -L serve`.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <set>
#include <string>

#include "io/envelope.h"
#include "obs/eventlog.h"
#include "obs/metrics.h"
#include "serve/breaker.h"
#include "serve/job.h"
#include "serve/queue.h"
#include "serve/supervisor.h"
#include "util/check.h"
#include "util/checkpoint.h"
#include "util/json.h"

namespace minergy::serve {
namespace {

namespace fs = std::filesystem;

// Unique-per-test spool directory, removed on destruction.
struct ScratchSpool {
  explicit ScratchSpool(const std::string& stem)
      : root((fs::temp_directory_path() / ("minergy_serve_" + stem)).string()) {
    fs::remove_all(root);
  }
  ~ScratchSpool() { fs::remove_all(root); }
  std::string root;
};

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  out << text;
}

// Envelope-verified record read (all persisted artifacts now carry the io
// artifact footer; "" accepts any schema).
util::JsonValue read_record(const std::string& path) {
  return util::JsonValue::parse(io::read_artifact(path, ""), path);
}

// A synthesized worker result envelope, bypassing real optimization so the
// supervisor-side disposition logic can be tested in microseconds.
std::string fake_envelope(const std::string& id, bool ok, bool feasible,
                          bool certified) {
  util::JsonWriter w(2);
  w.begin_object();
  w.kv("schema", kJobResultSchema);
  w.kv("id", id);
  w.kv("ok", ok);
  if (ok) {
    w.kv("feasible", feasible);
    w.kv("certified", certified);
    w.kv("truncated", false);
    w.kv("energy_total", 1.25e-12);
  } else {
    w.kv("error_type", "numeric-error");
    w.kv("detail", "synthetic failure");
  }
  w.end_object();
  return w.str();
}

// ------------------------------------------------------------------- jobs

TEST(ServeJob, JsonRoundTripPreservesEveryField) {
  Job job;
  job.id = "j42";
  job.circuit = "s298*";
  job.optimizer = "anneal";
  job.seed = 77;
  job.clock_frequency = 123.5e6;
  job.activity = 0.4;
  job.deadline_seconds = 12.5;
  job.max_evaluations = 9000;
  job.anneal_moves = 321;
  job.inject = "hang";
  job.submitted_unix = 1.5e9;
  job.not_before_unix = 1.5e9 + 3.25;
  job.next_backoff_seconds = 3.25;
  JobAttempt a;
  a.seed = 99;
  a.outcome = "crash";
  a.exit_code = -9;
  a.wall_seconds = 0.75;
  a.backoff_seconds = 0.5;
  job.attempts.push_back(a);

  const Job back = Job::from_json(job.to_json(), "<test>");
  EXPECT_EQ(back.id, job.id);
  EXPECT_EQ(back.circuit, job.circuit);
  EXPECT_EQ(back.optimizer, job.optimizer);
  EXPECT_EQ(back.seed, job.seed);
  EXPECT_DOUBLE_EQ(back.clock_frequency, job.clock_frequency);
  EXPECT_DOUBLE_EQ(back.activity, job.activity);
  EXPECT_DOUBLE_EQ(back.deadline_seconds, job.deadline_seconds);
  EXPECT_EQ(back.max_evaluations, job.max_evaluations);
  EXPECT_EQ(back.anneal_moves, job.anneal_moves);
  EXPECT_EQ(back.inject, job.inject);
  EXPECT_DOUBLE_EQ(back.submitted_unix, job.submitted_unix);
  EXPECT_DOUBLE_EQ(back.not_before_unix, job.not_before_unix);
  EXPECT_DOUBLE_EQ(back.next_backoff_seconds, job.next_backoff_seconds);
  ASSERT_EQ(back.attempts.size(), 1u);
  EXPECT_EQ(back.attempts[0].seed, a.seed);
  EXPECT_EQ(back.attempts[0].outcome, a.outcome);
  EXPECT_EQ(back.attempts[0].exit_code, a.exit_code);
  EXPECT_DOUBLE_EQ(back.attempts[0].wall_seconds, a.wall_seconds);
  EXPECT_DOUBLE_EQ(back.attempts[0].backoff_seconds, a.backoff_seconds);
}

TEST(ServeJob, FromJsonRejectsWrongOrMissingSchema) {
  EXPECT_THROW(Job::from_json(R"({"id": "x"})", "<t>"), util::ParseError);
  EXPECT_THROW(
      Job::from_json(R"({"schema": "minergy.batch_report.v1", "id": "x"})",
                     "<t>"),
      util::ParseError);
  EXPECT_THROW(Job::from_json("{garbage", "<t>"), util::ParseError);
}

TEST(ServeJob, AttemptCountersSplitFailuresFromInterruptions) {
  Job job;
  for (const char* o : {"interrupted", "crash", "timeout", "interrupted",
                        "error", "running"}) {
    JobAttempt a;
    a.outcome = o;
    job.attempts.push_back(a);
  }
  EXPECT_EQ(job.failed_attempts(), 3);
  EXPECT_EQ(job.interruptions(), 2);
  EXPECT_EQ(job.started_attempts(), 6);
}

TEST(ServeJob, AttemptSeedScheduleIsDeterministicAndPerturbed) {
  Job job;
  job.circuit = "s27";
  job.seed = 11;
  EXPECT_EQ(attempt_seed(job, 0), 11u);
  const std::uint64_t r1 = attempt_seed(job, 1);
  const std::uint64_t r2 = attempt_seed(job, 2);
  EXPECT_NE(r1, 11u);
  EXPECT_NE(r2, 11u);
  EXPECT_NE(r1, r2);
  EXPECT_EQ(attempt_seed(job, 1), r1);  // deterministic
  Job other = job;
  other.circuit = "s298*";
  EXPECT_NE(attempt_seed(other, 1), r1);  // circuit-dependent
}

TEST(ServeJob, IdsAreUniqueAndSortInSubmissionOrder) {
  std::string prev;
  for (int i = 0; i < 50; ++i) {
    const std::string id = make_job_id();
    EXPECT_LT(prev, id);
    prev = id;
  }
}

// ------------------------------------------------------------------ queue

TEST(SpoolQueue, SubmitThenClaimRoundTrips) {
  ScratchSpool spool("round_trip");
  SpoolQueue q(spool.root);
  Job job;
  job.circuit = "s27";
  job.optimizer = "baseline";
  const std::string id = q.submit(job);
  EXPECT_FALSE(id.empty());
  EXPECT_TRUE(fs::exists(q.job_path("pending", id)));

  const std::optional<Job> claimed = q.claim(unix_now());
  ASSERT_TRUE(claimed.has_value());
  EXPECT_EQ(claimed->id, id);
  EXPECT_EQ(claimed->circuit, "s27");
  EXPECT_FALSE(fs::exists(q.job_path("pending", id)));
  EXPECT_TRUE(fs::exists(q.job_path("running", id)));
}

TEST(SpoolQueue, AdmissionControlThrowsTypedQueueFull) {
  ScratchSpool spool("admission");
  SpoolOptions opts;
  opts.max_pending = 2;
  opts.expected_job_seconds = 4.0;
  SpoolQueue q(spool.root, opts);
  q.submit(Job{});
  q.submit(Job{});
  try {
    q.submit(Job{});
    FAIL() << "expected QueueFullError";
  } catch (const QueueFullError& e) {
    EXPECT_EQ(e.depth(), 2u);
    EXPECT_EQ(e.limit(), 2u);
    EXPECT_DOUBLE_EQ(e.retry_after_seconds(), 4.0);
    EXPECT_NE(std::string(e.what()).find("retry after"), std::string::npos);
  }
  EXPECT_EQ(q.counts().pending, 2u);
}

TEST(SpoolQueue, ClaimSkipsJobsStillBackingOff) {
  ScratchSpool spool("backoff");
  SpoolQueue q(spool.root);
  Job job;
  job.not_before_unix = 1000.0;
  const std::string id = q.submit(job);
  EXPECT_FALSE(q.claim(999.0).has_value());
  const std::optional<Job> claimed = q.claim(1000.5);
  ASSERT_TRUE(claimed.has_value());
  EXPECT_EQ(claimed->id, id);
}

TEST(SpoolQueue, DoubleClaimHasExactlyOneWinner) {
  ScratchSpool spool("double_claim");
  SpoolQueue a(spool.root);
  SpoolQueue b(spool.root);  // a second claimant over the same spool
  a.submit(Job{});
  const std::optional<Job> first = a.claim(unix_now());
  ASSERT_TRUE(first.has_value());
  EXPECT_FALSE(b.claim(unix_now()).has_value());
  EXPECT_EQ(a.counts().running, 1u);

  // Two claimants draining a deeper queue never hand out the same job.
  for (int i = 0; i < 4; ++i) a.submit(Job{});
  std::set<std::string> seen;
  for (int i = 0; i < 4; ++i) {
    SpoolQueue& claimant = (i % 2 == 0) ? a : b;
    const std::optional<Job> got = claimant.claim(unix_now());
    ASSERT_TRUE(got.has_value());
    EXPECT_TRUE(seen.insert(got->id).second) << "job claimed twice";
  }
  EXPECT_EQ(a.counts().pending, 0u);
  EXPECT_EQ(a.counts().running, 5u);
}

TEST(SpoolQueue, DoneIsFirstWriteWinsForLateRetries) {
  obs::set_enabled(true);
  ScratchSpool spool("done_idem");
  SpoolQueue q(spool.root);
  const std::string id = q.submit(Job{});
  Job job = *q.claim(unix_now());
  q.finalize_done(job, fake_envelope(id, true, true, true));
  const std::string winner =
      util::read_file_or_throw(q.job_path("done", id));

  // A late duplicate attempt (recovery replay) lands while done/ already
  // holds the result: counted, dropped, running/ and scratch cleared.
  write_file(q.job_path("running", id), job.to_json());
  io::write_artifact(q.result_path(id), kJobResultSchema,
             fake_envelope(id, true, true, true));
  write_file(q.checkpoint_path(id), "{}");
  const std::int64_t dupes_before =
      obs::counter("serve.queue.duplicate_results").value();
  q.finalize_done(job, fake_envelope(id, true, true, true));
  EXPECT_EQ(obs::counter("serve.queue.duplicate_results").value(),
            dupes_before + 1);
  EXPECT_EQ(util::read_file_or_throw(q.job_path("done", id)), winner);
  EXPECT_FALSE(fs::exists(q.job_path("running", id)));
  EXPECT_FALSE(fs::exists(q.result_path(id)));
  EXPECT_FALSE(fs::exists(q.checkpoint_path(id)));
  EXPECT_EQ(q.counts().done, 1u);
}

TEST(SpoolQueue, CorruptPendingJobIsQuarantinedNotWedged) {
  ScratchSpool spool("corrupt");
  SpoolQueue q(spool.root);
  // The garbled file sorts first — it must not block the healthy job.
  write_file(q.job_path("pending", "a-corrupt"), "{not json");
  Job good;
  const std::string good_id = q.submit(good);
  const std::optional<Job> claimed = q.claim(unix_now());
  ASSERT_TRUE(claimed.has_value());
  EXPECT_EQ(claimed->id, good_id);
  EXPECT_FALSE(fs::exists(q.job_path("pending", "a-corrupt")));
  ASSERT_TRUE(fs::exists(q.job_path("quarantined", "a-corrupt")));
  const util::JsonValue rec = read_record(q.job_path("quarantined", "a-corrupt"));
  EXPECT_EQ(rec.at("failure").get_string("type", ""), "corrupt-job");
}

TEST(SpoolQueue, RequeueJournalsOutcomeAndControlsCheckpointLifetime) {
  ScratchSpool spool("requeue");
  SpoolQueue q(spool.root);
  const std::string id = q.submit(Job{});
  Job job = *q.claim(unix_now());
  JobAttempt attempt;
  attempt.outcome = "running";
  job.attempts.push_back(attempt);
  write_file(q.checkpoint_path(id), "{}");
  write_file(q.result_path(id), "{}");

  q.requeue(job, "interrupted", /*not_before_unix=*/0.0,
            /*keep_checkpoint=*/true);
  EXPECT_TRUE(fs::exists(q.checkpoint_path(id)));  // bit-exact resume input
  EXPECT_FALSE(fs::exists(q.result_path(id)));
  EXPECT_FALSE(fs::exists(q.job_path("running", id)));
  Job back = *q.claim(unix_now());
  ASSERT_EQ(back.attempts.size(), 1u);
  EXPECT_EQ(back.attempts.back().outcome, "interrupted");

  // A crash retry drops the checkpoint: perturbed seed, fresh run.
  q.requeue(back, "crash", unix_now() + 30.0, /*keep_checkpoint=*/false);
  EXPECT_FALSE(fs::exists(q.checkpoint_path(id)));
  EXPECT_FALSE(q.claim(unix_now()).has_value());  // backing off
}

TEST(SpoolQueue, CollectGarbageSparesLiveJobsScratch) {
  ScratchSpool spool("gc");
  SpoolQueue q(spool.root);
  const std::string live = q.submit(Job{});
  write_file(q.checkpoint_path(live), "{}");
  write_file(q.result_path("dead"), "{}");
  write_file(q.checkpoint_path("dead"), "{}");
  q.collect_garbage();
  EXPECT_TRUE(fs::exists(q.checkpoint_path(live)));
  EXPECT_FALSE(fs::exists(q.result_path("dead")));
  EXPECT_FALSE(fs::exists(q.checkpoint_path("dead")));
}

TEST(SpoolQueue, HealthFileIsValidAndReflectsQueueState) {
  ScratchSpool spool("health");
  SpoolQueue q(spool.root);
  q.submit(Job{});
  HealthInfo info;
  info.state = "serving";
  info.workers_active = 3;
  info.breaker_open = {"s298*"};
  q.write_health(info);
  const std::string path = (fs::path(spool.root) / "health.json").string();
  const util::JsonValue h =
      read_record(path);
  EXPECT_EQ(h.get_string("schema", ""), "minergy.health.v1");
  EXPECT_EQ(h.get_string("state", ""), "serving");
  EXPECT_DOUBLE_EQ(h.get_number("workers_active", -1), 3.0);
  EXPECT_DOUBLE_EQ(h.at("queue").get_number("pending", -1), 1.0);
  ASSERT_EQ(h.at("breaker_open").items().size(), 1u);
  EXPECT_EQ(h.at("breaker_open").items()[0].as_string(), "s298*");
}

// ---------------------------------------------------------------- breaker

TEST(CircuitBreaker, TripsAfterThresholdThenHalfOpensOneProbe) {
  BreakerOptions opts;
  opts.threshold = 3;
  opts.cooldown_seconds = 10.0;
  CircuitBreaker breaker(opts);
  double now = 100.0;
  breaker.record_death("s27", now);
  breaker.record_death("s27", now);
  EXPECT_FALSE(breaker.should_short_circuit("s27", now));  // still closed
  breaker.record_death("s27", now);                        // third: trips
  EXPECT_TRUE(breaker.should_short_circuit("s27", now));
  EXPECT_TRUE(breaker.should_short_circuit("other", now) == false);
  EXPECT_EQ(breaker.open_circuits(now).size(), 1u);

  now += 10.5;  // cooldown elapsed: exactly one probe gets through
  EXPECT_FALSE(breaker.should_short_circuit("s27", now));
  EXPECT_TRUE(breaker.should_short_circuit("s27", now));

  breaker.record_death("s27", now);  // probe died: re-tripped, fresh cooldown
  EXPECT_TRUE(breaker.should_short_circuit("s27", now + 5.0));
  now += 10.5;
  EXPECT_FALSE(breaker.should_short_circuit("s27", now));  // next probe
  breaker.record_success("s27");                           // probe succeeded
  EXPECT_FALSE(breaker.should_short_circuit("s27", now));
  EXPECT_TRUE(breaker.open_circuits(now).empty());
}

TEST(CircuitBreaker, HalfOpenProbeRaceAdmitsExactlyOneAndLogsEachProbe) {
  // The probe race: in one control-loop pass, two workers' spawn decisions
  // both consult a breaker whose cooldown just elapsed. The half-open state
  // is shared — exactly one decision may admit the probe, the other must
  // keep short-circuiting, and the event log must carry exactly one
  // breaker_probe line per admitted probe (the eventlog is how operators
  // count probes, so a double-emit would report phantom recoveries).
  ScratchSpool spool("breaker_probe_race");
  fs::create_directories(spool.root);
  const std::string log_path =
      (fs::path(spool.root) / "events.jsonl").string();
  std::string error;
  ASSERT_TRUE(obs::EventLog::instance().open(log_path, 1 << 20, &error))
      << error;

  BreakerOptions opts;
  opts.threshold = 2;
  opts.cooldown_seconds = 10.0;
  CircuitBreaker breaker(opts);
  breaker.record_death("s27", 100.0);
  breaker.record_death("s27", 100.0);  // trips

  // Round 1: cooldown elapsed, two concurrent-in-the-loop decisions.
  int admitted = 0;
  for (int worker = 0; worker < 2; ++worker) {
    if (!breaker.should_short_circuit("s27", 111.0)) ++admitted;
  }
  EXPECT_EQ(admitted, 1);
  breaker.record_death("s27", 111.0);  // probe died: re-trip

  // Round 2: a fresh cooldown, the same race, again exactly one probe.
  admitted = 0;
  for (int worker = 0; worker < 2; ++worker) {
    if (!breaker.should_short_circuit("s27", 122.0)) ++admitted;
  }
  EXPECT_EQ(admitted, 1);
  breaker.record_success("s27");  // probe succeeded: closed
  EXPECT_FALSE(breaker.should_short_circuit("s27", 122.0));

  obs::EventLog::instance().close();
  std::ifstream in(log_path);
  int probe_lines = 0;
  for (std::string line; std::getline(in, line);) {
    if (line.find("\"kind\":\"breaker_probe\"") != std::string::npos) {
      ++probe_lines;
    }
  }
  EXPECT_EQ(probe_lines, 2) << "one breaker_probe event per admitted probe";
}

TEST(CircuitBreaker, SuccessResetsTheDeathStreak) {
  BreakerOptions opts;
  opts.threshold = 2;
  CircuitBreaker breaker(opts);
  breaker.record_death("s27", 1.0);
  breaker.record_success("s27");
  breaker.record_death("s27", 2.0);
  EXPECT_FALSE(breaker.should_short_circuit("s27", 2.0));
}

// ------------------------------------------------- supervisor + recovery

SupervisorOptions fast_supervisor_options() {
  SupervisorOptions opts;
  opts.worker_binary = "/bin/true";  // exits without an envelope ("error")
  opts.workers = 1;
  opts.poll_seconds = 0.001;
  opts.backoff_seconds = 0.0;
  opts.once = true;
  return opts;
}

TEST(Supervisor, RecoveryFinalizesCommittedEnvelopeWithoutReExecution) {
  ScratchSpool spool("recover_env");
  SpoolQueue q(spool.root);
  const std::string id = q.submit(Job{});
  Job job = *q.claim(unix_now());
  JobAttempt attempt;
  job.attempts.push_back(attempt);
  q.update_running(job);
  // The previous daemon died after the worker committed but before the
  // bookkeeping: the envelope on disk is the commit point.
  io::write_artifact(q.result_path(id), kJobResultSchema,
             fake_envelope(id, true, true, true));

  Supervisor supervisor(q, fast_supervisor_options());
  EXPECT_EQ(supervisor.run(), 0);
  EXPECT_TRUE(fs::exists(q.job_path("done", id)));
  EXPECT_FALSE(fs::exists(q.job_path("running", id)));
  EXPECT_FALSE(fs::exists(q.result_path(id)));
  const util::JsonValue rec = read_record(q.job_path("done", id));
  EXPECT_TRUE(rec.at("result").get_bool("certified", false));
  ASSERT_FALSE(rec.at("attempts").items().empty());
  EXPECT_EQ(rec.at("attempts").items().back().get_string("outcome", ""),
            "ok");
}

TEST(Supervisor, RecoveryRequeuesOrphanThenRetryBudgetQuarantines) {
  ScratchSpool spool("recover_orphan");
  SpoolQueue q(spool.root);
  const std::string id = q.submit(Job{});
  Job job = *q.claim(unix_now());
  JobAttempt attempt;
  job.attempts.push_back(attempt);
  q.update_running(job);  // orphan: in running/, no envelope, no worker

  SupervisorOptions opts = fast_supervisor_options();
  opts.max_retries = 0;  // first real failure exhausts the budget
  Supervisor supervisor(q, opts);
  EXPECT_EQ(supervisor.run(), 0);

  // The orphaned attempt was journaled as interrupted (not a failure), the
  // requeued job ran once under /bin/true (exit without envelope = error),
  // and the spent retry budget quarantined it.
  ASSERT_TRUE(fs::exists(q.job_path("quarantined", id)));
  const util::JsonValue rec = read_record(q.job_path("quarantined", id));
  const auto& attempts = rec.at("attempts").items();
  ASSERT_EQ(attempts.size(), 2u);
  EXPECT_EQ(attempts[0].get_string("outcome", ""), "interrupted");
  EXPECT_EQ(attempts[1].get_string("outcome", ""), "error");
  EXPECT_NE(rec.at("failure").get_string("detail", "").find("retries"),
            std::string::npos);
}

TEST(Supervisor, RecoveryQuarantinesEndlesslyInterruptedJobs) {
  ScratchSpool spool("recover_loop");
  SpoolQueue q(spool.root);
  const std::string id = q.submit(Job{});
  Job job = *q.claim(unix_now());
  for (int i = 0; i < 3; ++i) {
    JobAttempt attempt;
    attempt.outcome = "interrupted";
    job.attempts.push_back(attempt);
  }
  q.update_running(job);

  SupervisorOptions opts = fast_supervisor_options();
  opts.max_interruptions = 3;
  Supervisor supervisor(q, opts);
  EXPECT_EQ(supervisor.run(), 0);
  ASSERT_TRUE(fs::exists(q.job_path("quarantined", id)));
  const util::JsonValue rec = read_record(q.job_path("quarantined", id));
  EXPECT_NE(rec.at("failure").get_string("detail", "").find("interrupted"),
            std::string::npos);
}

TEST(Supervisor, TypedWorkerFailureLandsInFailedWithEnvelope) {
  ScratchSpool spool("typed_fail");
  SpoolQueue q(spool.root);
  const std::string id = q.submit(Job{});
  Job job = *q.claim(unix_now());
  JobAttempt attempt;
  job.attempts.push_back(attempt);
  q.update_running(job);
  io::write_artifact(q.result_path(id), kJobResultSchema,
                     fake_envelope(id, false, false, false));

  Supervisor supervisor(q, fast_supervisor_options());
  EXPECT_EQ(supervisor.run(), 0);
  ASSERT_TRUE(fs::exists(q.job_path("failed", id)));
  const util::JsonValue rec = read_record(q.job_path("failed", id));
  EXPECT_EQ(rec.at("failure").get_string("type", ""), "numeric-error");
  EXPECT_EQ(rec.at("result").get_string("error_type", ""), "numeric-error");
}

TEST(Supervisor, UncertifiedEnvelopeIsARejectedResultNotARetry) {
  ScratchSpool spool("uncert");
  SpoolQueue q(spool.root);
  const std::string id = q.submit(Job{});
  Job job = *q.claim(unix_now());
  JobAttempt attempt;
  job.attempts.push_back(attempt);
  q.update_running(job);
  io::write_artifact(
      q.result_path(id), kJobResultSchema,
      fake_envelope(id, true, /*feasible=*/true, /*certified=*/false));

  Supervisor supervisor(q, fast_supervisor_options());
  EXPECT_EQ(supervisor.run(), 0);
  ASSERT_TRUE(fs::exists(q.job_path("failed", id)));
  const util::JsonValue rec = read_record(q.job_path("failed", id));
  EXPECT_EQ(rec.at("failure").get_string("type", ""), "uncertified");
}

}  // namespace
}  // namespace minergy::serve
