// Anti-entropy scrubber suite: every artifact class in a spool, damaged at
// every byte offset, is either repaired (from generational history, or by
// retiring a regenerable scratch/singleton document) or quarantined with
// its bytes preserved — never silently deleted, never left to rot.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <fcntl.h>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "io/checkpoint.h"
#include "io/envelope.h"
#include "io/scrub.h"
#include "obs/metrics.h"
#include "serve/job.h"
#include "serve/queue.h"

#ifndef MINERGY_SERVED_BIN
#error "MINERGY_SERVED_BIN must point at the minergy_served executable"
#endif

namespace minergy::io {
namespace {

namespace fs = std::filesystem;

struct ScratchSpool {
  explicit ScratchSpool(const std::string& stem)
      : root((fs::temp_directory_path() / ("minergy_scrub_" + stem)).string()) {
    fs::remove_all(root);
  }
  ~ScratchSpool() { fs::remove_all(root); }
  std::string root;
};

int run_served(const std::vector<std::string>& flags,
               double timeout_seconds = 120.0) {
  std::vector<std::string> args = {MINERGY_SERVED_BIN};
  args.insert(args.end(), flags.begin(), flags.end());
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& s : args) argv.push_back(s.data());
  argv.push_back(nullptr);
  const pid_t pid = fork();
  if (pid == 0) {
    const int null_fd = open("/dev/null", O_WRONLY);
    if (null_fd >= 0) {
      dup2(null_fd, STDOUT_FILENO);
      dup2(null_fd, STDERR_FILENO);
      close(null_fd);
    }
    execv(argv[0], argv.data());
    _exit(127);
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  int status = 0;
  for (;;) {
    const pid_t r = waitpid(pid, &status, WNOHANG);
    if (r == pid) return status;
    if (std::chrono::steady_clock::now() >= deadline) {
      kill(pid, SIGKILL);
      waitpid(pid, &status, 0);
      ADD_FAILURE() << "minergy_served did not exit within the cap";
      return status;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

std::string submit_job(serve::SpoolQueue& q, const std::string& circuit,
                       std::uint64_t seed) {
  serve::Job job;
  job.circuit = circuit;
  job.optimizer = "baseline";
  job.seed = seed;
  return q.submit(job);
}

// Drives one c17 job to done/ so the spool holds the full artifact set
// (terminal record, health.json, released leader.lease).
std::string populate_spool(serve::SpoolQueue& q) {
  const std::string id = submit_job(q, "c17", 1);
  const int status = run_served(
      {"--spool=" + q.root(), "--once", "--workers=1", "--poll=0.005",
       "--timeout=20", "--retries=1", "--backoff=0.01"});
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  EXPECT_TRUE(fs::exists(q.job_path("done", id)));
  return id;
}

std::string slurp_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void flip_byte(const std::string& path, std::size_t offset) {
  std::string bytes = slurp_bytes(path);
  ASSERT_LT(offset, bytes.size());
  bytes[offset] = static_cast<char>(bytes[offset] ^ 0x01);
  write_bytes(path, bytes);
}

std::size_t files_in(const std::string& dir) {
  if (!fs::exists(dir)) return 0;
  std::size_t n = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.is_regular_file()) ++n;
  }
  return n;
}

TEST(Scrub, CleanSpoolIsExitZeroAndTouchesNothing) {
  ScratchSpool spool("clean");
  serve::SpoolQueue q(spool.root);
  const std::string id = populate_spool(q);

  SpoolScrubber scrubber(spool.root);
  const ScrubReport report = scrubber.run();
  EXPECT_GT(report.checked, 0) << "scrubber walked an empty spool";
  EXPECT_EQ(report.repaired, 0);
  EXPECT_EQ(report.quarantined, 0);
  EXPECT_EQ(report.exit_code(), 0);
  EXPECT_TRUE(report.findings.empty());
  EXPECT_FALSE(fs::exists(scrubber.quarantine_dir()))
      << "a clean pass created the quarantine directory";
  EXPECT_TRUE(fs::exists(q.job_path("done", id)));

  // The offline mode agrees.
  const int status = run_served({"--spool=" + spool.root, "--scrub"});
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
}

// The tentpole sweep: truncate a terminal job record to EVERY prefix
// length. Each prefix must be detected and quarantined — bytes preserved
// byte-for-byte, a synthesized terminal record keeping the audit exact.
TEST(Scrub, EveryTruncationPrefixOfAJobRecordIsQuarantined) {
  ScratchSpool spool("prefix");
  serve::SpoolQueue q(spool.root);
  const std::string id = populate_spool(q);
  const std::string done_path = q.job_path("done", id);
  const std::string quarantined_path = q.job_path("quarantined", id);
  const std::string original = slurp_bytes(done_path);
  ASSERT_GT(original.size(), 0u);

  SpoolScrubber scrubber(spool.root);
  for (std::size_t k = 0; k < original.size(); ++k) {
    write_bytes(done_path, original.substr(0, k));
    const ScrubReport report = scrubber.run();
    ASSERT_EQ(report.quarantined, 1)
        << "prefix of length " << k << " was not quarantined";
    ASSERT_EQ(report.exit_code(), 2);
    ASSERT_FALSE(fs::exists(done_path))
        << "damaged record left in done/ at prefix " << k;
    ASSERT_TRUE(fs::exists(quarantined_path))
        << "no synthesized terminal record at prefix " << k;
    // Never delete: the damaged bytes are preserved exactly.
    ASSERT_EQ(files_in(scrubber.quarantine_dir()), 1u);
    const std::string preserved = slurp_bytes(
        fs::directory_iterator(scrubber.quarantine_dir())->path().string());
    ASSERT_EQ(preserved, original.substr(0, k))
        << "quarantined bytes differ from the damaged file at prefix " << k;

    // The spool auditor accepts the repaired-by-quarantine spool (rc 4
    // flags the quarantined job). Subprocesses are costly; sample.
    if (k == 0 || k == original.size() / 2 || k == original.size() - 1) {
      const int status = run_served({"--spool=" + spool.root, "--status",
                                     "--verify", "--expect-jobs=1"});
      ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 4)
          << "--status --verify rejected the scrubbed spool at prefix " << k;
    }

    // Restore for the next prefix.
    fs::remove(quarantined_path);
    fs::remove_all(scrubber.quarantine_dir());
    write_bytes(done_path, original);
  }
  const ScrubReport healthy = scrubber.run();
  EXPECT_EQ(healthy.exit_code(), 0);
}

TEST(Scrub, BitFlipsAreDetectedAtEveryStride) {
  ScratchSpool spool("bitflip");
  serve::SpoolQueue q(spool.root);
  const std::string id = populate_spool(q);
  const std::string done_path = q.job_path("done", id);
  const std::string original = slurp_bytes(done_path);
  ASSERT_GT(original.size(), 17u);

  SpoolScrubber scrubber(spool.root);
  std::vector<std::size_t> offsets;
  for (std::size_t off = 0; off < original.size(); off += 17) {
    offsets.push_back(off);
  }
  offsets.push_back(original.size() - 1);
  obs::set_enabled(true);
  const std::int64_t quarantined_before =
      obs::counter("io.scrub.quarantined").value();
  for (const std::size_t off : offsets) {
    std::string damaged = original;
    damaged[off] = static_cast<char>(damaged[off] ^ 0x01);
    write_bytes(done_path, damaged);
    const ScrubReport report = scrubber.run();
    ASSERT_EQ(report.quarantined, 1)
        << "single-bit flip at offset " << off << " went undetected";
    fs::remove(q.job_path("quarantined", id));
    fs::remove_all(scrubber.quarantine_dir());
    write_bytes(done_path, original);
  }
  EXPECT_EQ(obs::counter("io.scrub.quarantined").value(),
            quarantined_before + static_cast<std::int64_t>(offsets.size()))
      << "io.scrub.quarantined did not count every finding";
}

TEST(Scrub, DamagedNewestCheckpointIsPromotedFromOlderGeneration) {
  ScratchSpool spool("ckpt_promote");
  serve::SpoolQueue q(spool.root);  // creates the directory tree
  const std::string ck = q.checkpoint_path("job-1");
  const std::string schema = "minergy.anneal_checkpoint.v1";
  Checkpoint::save(ck, schema, "{\"step\": 1}");
  Checkpoint::save(ck, schema, "{\"step\": 2}");
  Checkpoint::save(ck, schema, "{\"step\": 3}");
  const std::string second_newest =
      slurp_bytes(Checkpoint::generation_path(ck, 1));

  flip_byte(Checkpoint::generation_path(ck, 0), 40);
  SpoolScrubber scrubber(spool.root);
  const ScrubReport report = scrubber.run();
  EXPECT_EQ(report.repaired, 1);
  EXPECT_EQ(report.quarantined, 0);
  EXPECT_EQ(report.exit_code(), 1);
  // The newest slot now holds the promoted (intact, second-newest) bytes
  // and loads cleanly; the damaged bytes are preserved, not deleted.
  EXPECT_EQ(slurp_bytes(Checkpoint::generation_path(ck, 0)), second_newest);
  EXPECT_NO_THROW(Checkpoint::load(ck, schema));
  EXPECT_EQ(files_in(scrubber.quarantine_dir()), 1u);
}

TEST(Scrub, DamagedOlderGenerationIsRetiredWithoutTouchingNewest) {
  ScratchSpool spool("ckpt_retire");
  serve::SpoolQueue q(spool.root);
  const std::string ck = q.checkpoint_path("job-2");
  const std::string schema = "minergy.anneal_checkpoint.v1";
  Checkpoint::save(ck, schema, "{\"step\": 1}");
  Checkpoint::save(ck, schema, "{\"step\": 2}");
  Checkpoint::save(ck, schema, "{\"step\": 3}");
  const std::string newest = slurp_bytes(Checkpoint::generation_path(ck, 0));

  flip_byte(Checkpoint::generation_path(ck, 2), 40);
  const ScrubReport report = SpoolScrubber(spool.root).run();
  EXPECT_EQ(report.repaired, 1);
  EXPECT_EQ(report.quarantined, 0);
  EXPECT_EQ(slurp_bytes(Checkpoint::generation_path(ck, 0)), newest)
      << "retiring an older generation disturbed the newest";
  EXPECT_FALSE(fs::exists(Checkpoint::generation_path(ck, 2)));
}

TEST(Scrub, CheckpointFamilyWithNoIntactGenerationIsQuarantined) {
  ScratchSpool spool("ckpt_lost");
  serve::SpoolQueue q(spool.root);
  const std::string ck = q.checkpoint_path("job-3");
  const std::string schema = "minergy.anneal_checkpoint.v1";
  Checkpoint::save(ck, schema, "{\"step\": 1}");
  Checkpoint::save(ck, schema, "{\"step\": 2}");
  Checkpoint::save(ck, schema, "{\"step\": 3}");
  for (int g = 0; g < Checkpoint::kGenerations; ++g) {
    flip_byte(Checkpoint::generation_path(ck, g), 40);
  }
  SpoolScrubber scrubber(spool.root);
  const ScrubReport report = scrubber.run();
  EXPECT_EQ(report.quarantined, Checkpoint::kGenerations)
      << "a fully-damaged family must be quarantined, not 'repaired'";
  EXPECT_EQ(report.exit_code(), 2);
  EXPECT_EQ(files_in(scrubber.quarantine_dir()),
            static_cast<std::size_t>(Checkpoint::kGenerations));
}

TEST(Scrub, DamagedSingletonDocumentsAreRetiredForRepublish) {
  ScratchSpool spool("singleton");
  serve::SpoolQueue q(spool.root);
  populate_spool(q);
  const std::string health = spool.root + "/health.json";
  ASSERT_TRUE(fs::exists(health));
  flip_byte(health, 30);
  SpoolScrubber scrubber(spool.root);
  const ScrubReport report = scrubber.run();
  EXPECT_EQ(report.repaired, 1);
  EXPECT_EQ(report.exit_code(), 1);
  EXPECT_FALSE(fs::exists(health))
      << "damaged health.json left in place (daemon republishes it)";
  EXPECT_EQ(files_in(scrubber.quarantine_dir()), 1u);
}

TEST(Scrub, DamagedResultEnvelopeIsRetiredAsRegenerable) {
  ScratchSpool spool("result");
  serve::SpoolQueue q(spool.root);
  const std::string stray = q.result_path("ghost-1");
  write_bytes(stray, "definitely not an envelope\n");
  const ScrubReport report = SpoolScrubber(spool.root).run();
  EXPECT_EQ(report.repaired, 1)
      << "a damaged scratch result is regenerable: retiring it is a repair";
  EXPECT_EQ(report.quarantined, 0);
  EXPECT_FALSE(fs::exists(stray));
}

TEST(Scrub, ReportOnlyModeCountsButTouchesNothing) {
  ScratchSpool spool("report_only");
  serve::SpoolQueue q(spool.root);
  const std::string id = populate_spool(q);
  const std::string done_path = q.job_path("done", id);
  flip_byte(done_path, 50);
  const std::string damaged = slurp_bytes(done_path);

  ScrubOptions opts;
  opts.repair = false;
  SpoolScrubber scrubber(spool.root, opts);
  const ScrubReport report = scrubber.run();
  EXPECT_EQ(report.quarantined, 1);
  EXPECT_EQ(report.exit_code(), 2);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].action, "reported");
  EXPECT_TRUE(fs::exists(done_path)) << "report-only mode moved a file";
  EXPECT_EQ(slurp_bytes(done_path), damaged);
  EXPECT_FALSE(fs::exists(scrubber.quarantine_dir()));
  EXPECT_FALSE(fs::exists(q.job_path("quarantined", id)));
}

TEST(Scrub, OfflineModeMapsDispositionsToExitCodes) {
  ScratchSpool spool("offline");
  serve::SpoolQueue q(spool.root);
  const std::string id = populate_spool(q);

  // 1 = damage found, all of it repaired (a damaged older generation).
  const std::string ck = q.checkpoint_path("job-9");
  const std::string schema = "minergy.anneal_checkpoint.v1";
  Checkpoint::save(ck, schema, "{\"step\": 1}");
  Checkpoint::save(ck, schema, "{\"step\": 2}");
  flip_byte(Checkpoint::generation_path(ck, 1), 40);
  int status = run_served({"--spool=" + spool.root, "--scrub"});
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 1)
      << "repaired-only pass must exit 1";

  // 2 = at least one artifact quarantined (a damaged job record).
  flip_byte(q.job_path("done", id), 50);
  status = run_served({"--spool=" + spool.root, "--scrub"});
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 2)
      << "quarantining pass must exit 2";

  // 0 = nothing left to find on the now-healthy spool.
  status = run_served({"--spool=" + spool.root, "--scrub"});
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "a scrubbed spool must scrub clean";
}

}  // namespace
}  // namespace minergy::io
