#include <gtest/gtest.h>

#include "netlist/bench_io.h"
#include "netlist/generator.h"
#include "sim/logic_sim.h"
#include "util/rng.h"

namespace minergy::sim {
namespace {

using netlist::GateId;
using netlist::Netlist;

TEST(GlitchActivity, BalancedChainHasNoGlitches) {
  // A single path: unit-delay and zero-delay toggles agree exactly.
  Netlist nl = netlist::parse_bench_string(R"(
INPUT(a)
OUTPUT(y)
n1 = NOT(a)
n2 = NOT(n1)
y = NOT(n2)
)");
  activity::ActivityProfile profile;
  profile.input_density = 0.4;
  util::Rng r1(5), r2(5);
  const MeasuredActivity settled = measure_activity(nl, profile, 30000, r1);
  const MeasuredActivity glitchy =
      measure_glitch_activity(nl, profile, 30000, r2);
  for (GateId id : nl.combinational()) {
    EXPECT_NEAR(glitchy.density[id], settled.density[id], 0.02)
        << nl.gate(id).name;
  }
}

TEST(GlitchActivity, UnbalancedXorGlitches) {
  // y = XOR(a, buffered a): every input toggle makes y glitch (it returns
  // to its settled value), so the unit-delay density is ~2x the input
  // density while the settled density is ~0.
  Netlist nl = netlist::parse_bench_string(R"(
INPUT(a)
OUTPUT(y)
b1 = BUF(a)
b2 = BUF(b1)
y = XOR(a, b2)
)");
  activity::ActivityProfile profile;
  profile.input_density = 0.4;
  util::Rng r1(7), r2(7);
  const MeasuredActivity settled = measure_activity(nl, profile, 40000, r1);
  const MeasuredActivity glitchy =
      measure_glitch_activity(nl, profile, 40000, r2);
  const GateId y = nl.find("y");
  EXPECT_NEAR(settled.density[y], 0.0, 0.01);       // y == 0 when settled
  EXPECT_NEAR(glitchy.density[y], 2.0 * 0.4, 0.05);  // full glitch pair
}

TEST(GlitchActivity, GlitchDensityAtLeastSettledDensity) {
  netlist::GeneratorSpec spec;
  spec.num_inputs = 6;
  spec.num_gates = 60;
  spec.depth = 8;
  spec.num_dffs = 4;
  spec.seed = 77;
  Netlist nl = netlist::generate_random_logic(spec);
  activity::ActivityProfile profile;
  profile.input_density = 0.3;
  util::Rng r1(9), r2(9);
  const MeasuredActivity settled = measure_activity(nl, profile, 20000, r1);
  const MeasuredActivity glitchy =
      measure_glitch_activity(nl, profile, 20000, r2);
  double settled_sum = 0.0, glitch_sum = 0.0;
  for (GateId id : nl.combinational()) {
    // Per-node statistical noise allowed; aggregate must dominate clearly.
    EXPECT_GE(glitchy.density[id], settled.density[id] - 0.05)
        << nl.gate(id).name;
    settled_sum += settled.density[id];
    glitch_sum += glitchy.density[id];
  }
  EXPECT_GE(glitch_sum, settled_sum * 0.95);
}

TEST(GlitchActivity, ProbabilitiesMatchSettledModel) {
  // The settled value each cycle is model-independent; only transition
  // counts differ.
  Netlist nl = netlist::parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
g1 = NAND(a, b)
g2 = NOR(a, g1)
y = XOR(g1, g2)
)");
  activity::ActivityProfile profile;
  profile.input_density = 0.3;
  util::Rng r1(11), r2(11);
  const MeasuredActivity settled = measure_activity(nl, profile, 40000, r1);
  const MeasuredActivity glitchy =
      measure_glitch_activity(nl, profile, 40000, r2);
  for (GateId id : nl.combinational()) {
    EXPECT_NEAR(glitchy.probability[id], settled.probability[id], 0.02)
        << nl.gate(id).name;
  }
}

TEST(GlitchActivity, DeterministicGivenSeed) {
  Netlist nl = netlist::parse_bench_string(R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
y = NAND(a, b)
)");
  activity::ActivityProfile profile;
  util::Rng r1(3), r2(3);
  const MeasuredActivity a = measure_glitch_activity(nl, profile, 5000, r1);
  const MeasuredActivity b = measure_glitch_activity(nl, profile, 5000, r2);
  EXPECT_EQ(a.density, b.density);
  EXPECT_EQ(a.probability, b.probability);
}

TEST(GlitchActivity, SequentialCircuitRuns) {
  Netlist nl = netlist::parse_bench_string(R"(
INPUT(a)
OUTPUT(y)
q = DFF(d)
d = XOR(a, q)
y = BUF(q)
)");
  activity::ActivityProfile profile;
  profile.input_density = 0.5;
  util::Rng rng(21);
  const MeasuredActivity m = measure_glitch_activity(nl, profile, 20000, rng);
  EXPECT_GT(m.density[nl.find("q")], 0.1);
  EXPECT_NEAR(m.probability[nl.find("q")], 0.5, 0.05);
}

}  // namespace
}  // namespace minergy::sim
