#include <gtest/gtest.h>

#include "netlist/generator.h"
#include "opt/evaluator.h"

namespace minergy::opt {
namespace {

using netlist::Netlist;

Netlist make_circuit(std::uint64_t seed = 17) {
  netlist::GeneratorSpec spec;
  spec.num_inputs = 8;
  spec.num_gates = 60;
  spec.depth = 7;
  spec.num_dffs = 3;
  spec.seed = seed;
  return netlist::generate_random_logic(spec);
}

TEST(CircuitEvaluator, BasicAccessors) {
  Netlist nl = make_circuit();
  const tech::Technology tech = tech::Technology::generic350();
  const activity::ActivityProfile profile;
  CircuitEvaluator eval(nl, tech, profile, {.clock_frequency = 250e6});
  EXPECT_DOUBLE_EQ(eval.clock_frequency(), 250e6);
  EXPECT_NEAR(eval.cycle_time(), 4e-9, 1e-18);
  EXPECT_EQ(&eval.netlist(), &nl);
  EXPECT_EQ(eval.vts_tolerance(), 0.0);
}

TEST(CircuitEvaluator, RejectsBadSettings) {
  Netlist nl = make_circuit();
  const tech::Technology tech = tech::Technology::generic350();
  const activity::ActivityProfile profile;
  EXPECT_THROW(
      CircuitEvaluator(nl, tech, profile, {.clock_frequency = -1.0}),
      util::NumericError);
  EXPECT_THROW(CircuitEvaluator(nl, tech, profile,
                                {.clock_frequency = 1e8, .vts_tolerance = 1.5}),
               util::NumericError);
}

TEST(CircuitEvaluator, CornerScalingIsSymmetric) {
  Netlist nl = make_circuit();
  const tech::Technology tech = tech::Technology::generic350();
  const activity::ActivityProfile profile;
  CircuitEvaluator eval(nl, tech, profile,
                        {.clock_frequency = 3e8, .vts_tolerance = 0.2});
  EXPECT_NEAR(eval.delay_vts(0.2), 0.24, 1e-12);
  EXPECT_NEAR(eval.leakage_vts(0.2), 0.16, 1e-12);
}

TEST(CircuitEvaluator, CornersMakeThingsWorse) {
  Netlist nl = make_circuit();
  const tech::Technology tech = tech::Technology::generic350();
  const activity::ActivityProfile profile;
  CircuitEvaluator nominal(nl, tech, profile, {.clock_frequency = 3e8});
  CircuitEvaluator corner(
      nl, tech, profile, {.clock_frequency = 3e8, .vts_tolerance = 0.15});

  const CircuitState state = CircuitState::uniform(nl, 1.2, 0.25, 5.0);
  // Worst-case delay is slower, worst-case leakage higher.
  EXPECT_GT(corner.critical_delay(state), nominal.critical_delay(state));
  EXPECT_GT(corner.energy(state).static_energy,
            nominal.energy(state).static_energy);
  // Dynamic energy is Vt-independent, so corners leave it unchanged.
  EXPECT_DOUBLE_EQ(corner.energy(state).dynamic_energy,
                   nominal.energy(state).dynamic_energy);
}

TEST(CircuitEvaluator, MeetsTimingMatchesCriticalDelay) {
  Netlist nl = make_circuit();
  const tech::Technology tech = tech::Technology::generic350();
  const activity::ActivityProfile profile;
  CircuitEvaluator eval(nl, tech, profile, {.clock_frequency = 3e8});
  const CircuitState strong = CircuitState::uniform(nl, 3.3, 0.15, 20.0);
  const CircuitState weak = CircuitState::uniform(nl, 0.25, 0.6, 1.0);
  EXPECT_TRUE(eval.meets_timing(strong, 0.95));
  EXPECT_FALSE(eval.meets_timing(weak, 0.95));
}

TEST(CircuitEvaluator, StaRespectsCycleLimitForSlack) {
  Netlist nl = make_circuit();
  const tech::Technology tech = tech::Technology::generic350();
  const activity::ActivityProfile profile;
  CircuitEvaluator eval(nl, tech, profile, {.clock_frequency = 3e8});
  const CircuitState state = CircuitState::uniform(nl, 1.5, 0.2, 5.0);
  const timing::TimingReport a = eval.sta(state, 10e-9);
  const timing::TimingReport b = eval.sta(state, 20e-9);
  EXPECT_DOUBLE_EQ(a.critical_delay, b.critical_delay);
  // Slack shifts by exactly the extra 10 ns.
  const netlist::GateId id = nl.combinational().front();
  EXPECT_NEAR(b.slack[id] - a.slack[id], 10e-9, 1e-15);
}

TEST(CircuitEvaluator, MinimumCycleTimeIsTightAndFeasible) {
  Netlist nl = make_circuit();
  const tech::Technology tech = tech::Technology::generic350();
  const activity::ActivityProfile profile;
  CircuitEvaluator eval(nl, tech, profile, {.clock_frequency = 3e8});
  const double tmin = eval.minimum_cycle_time();
  EXPECT_GT(tmin, 0.0);
  EXPECT_LT(tmin, 1e-6);
  // A relaxed version of the same bound must also be reachable at a high
  // threshold; the ordering between thresholds must be physical.
  const double tmin_highvt = eval.minimum_cycle_time(0.95, 0.7);
  EXPECT_GT(tmin_highvt, tmin);
}

TEST(CircuitEvaluator, EnergySplitsAreConsistent) {
  Netlist nl = make_circuit();
  const tech::Technology tech = tech::Technology::generic350();
  activity::ActivityProfile profile;
  profile.input_density = 0.3;
  CircuitEvaluator eval(nl, tech, profile, {.clock_frequency = 3e8});
  const CircuitState state = CircuitState::uniform(nl, 1.0, 0.3, 4.0);
  const power::EnergyBreakdown direct = eval.energy(state);
  const power::EnergyBreakdown via_model =
      eval.energy_model().total_energy(state.widths, state.vdd, 0.3);
  EXPECT_NEAR(direct.static_energy, via_model.static_energy, 1e-25);
  EXPECT_NEAR(direct.dynamic_energy, via_model.dynamic_energy, 1e-25);
}

TEST(CircuitState, UniformFactory) {
  Netlist nl = make_circuit();
  const CircuitState s = CircuitState::uniform(nl, 1.1, 0.22, 3.3);
  EXPECT_EQ(s.vts.size(), nl.size());
  EXPECT_EQ(s.widths.size(), nl.size());
  EXPECT_DOUBLE_EQ(s.vdd, 1.1);
  EXPECT_DOUBLE_EQ(s.vts[0], 0.22);
  EXPECT_DOUBLE_EQ(s.widths[nl.size() - 1], 3.3);
  EXPECT_FALSE(s.empty());
  EXPECT_TRUE(CircuitState{}.empty());
}

}  // namespace
}  // namespace minergy::opt
