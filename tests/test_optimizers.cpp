#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>

#include "bench_suite/iscas.h"
#include "netlist/generator.h"
#include "opt/annealing_optimizer.h"
#include "opt/checkpoint.h"
#include "opt/baseline_optimizer.h"
#include "opt/evaluator.h"
#include "opt/joint_optimizer.h"
#include "opt/lagrangian_sizer.h"
#include "opt/slack_sweep.h"
#include "opt/tilos_sizer.h"
#include "opt/variation.h"

namespace minergy::opt {
namespace {

using netlist::Netlist;

Netlist make_circuit(std::uint64_t seed = 2981, int gates = 80, int depth = 8) {
  netlist::GeneratorSpec spec;
  spec.num_inputs = 6;
  spec.num_outputs = 6;
  spec.num_dffs = 6;
  spec.num_gates = gates;
  spec.depth = depth;
  spec.seed = seed;
  return netlist::generate_random_logic(spec);
}

struct Harness {
  explicit Harness(double fc = 250e6, double tolerance = 0.0)
      : nl(make_circuit()),
        tech(tech::Technology::generic350()),
        eval(nl, tech, profile(),
             {.clock_frequency = fc, .vts_tolerance = tolerance}) {}

  static activity::ActivityProfile profile() {
    activity::ActivityProfile p;
    p.input_density = 0.2;
    return p;
  }

  Netlist nl;
  tech::Technology tech;
  CircuitEvaluator eval;
};

// --------------------------------------------------------------- baseline

TEST(BaselineOptimizer, ProducesFeasibleSolution) {
  Harness s;
  const OptimizationResult r = BaselineOptimizer(s.eval).run();
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.vts_primary, s.tech.nominal_vts);
  EXPECT_LE(r.critical_delay, 0.95 * s.eval.cycle_time() * (1 + 1e-9));
  EXPECT_TRUE(s.eval.meets_timing(r.state, 0.95));
  EXPECT_GT(r.energy.total(), 0.0);
  EXPECT_GT(r.circuit_evaluations, 0);
}

TEST(BaselineOptimizer, LeakageNegligibleAtNominalThreshold) {
  // At Vts = 700 mV the static component is orders of magnitude below the
  // dynamic one (the premise of the paper's Table 1).
  Harness s;
  const OptimizationResult r = BaselineOptimizer(s.eval).run();
  ASSERT_TRUE(r.feasible);
  EXPECT_LT(r.energy.static_energy, 1e-3 * r.energy.dynamic_energy);
}

TEST(BaselineOptimizer, InfeasibleCycleTimeReported) {
  Netlist nl = make_circuit();
  const tech::Technology tech = tech::Technology::generic350();
  CircuitEvaluator eval(nl, tech, Harness::profile(),
                        {.clock_frequency = 50e9});  // absurd: 50 GHz
  const OptimizationResult r = BaselineOptimizer(eval).run();
  EXPECT_FALSE(r.feasible);
}

TEST(BaselineOptimizer, CustomFixedThresholdHonored) {
  Harness s;
  const OptimizationResult r = BaselineOptimizer(s.eval, {}, 0.5).run();
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.vts_primary, 0.5);
  for (netlist::GateId id : s.nl.combinational()) {
    EXPECT_DOUBLE_EQ(r.state.vts[id], 0.5);
  }
}

TEST(BaselineOptimizer, Deterministic) {
  Harness s;
  const OptimizationResult a = BaselineOptimizer(s.eval).run();
  const OptimizationResult b = BaselineOptimizer(s.eval).run();
  EXPECT_EQ(a.vdd, b.vdd);
  EXPECT_EQ(a.energy.total(), b.energy.total());
  EXPECT_EQ(a.state.widths, b.state.widths);
}

// ------------------------------------------------------------------ joint

TEST(JointOptimizer, BeatsBaselineByOrderOfMagnitude) {
  // The paper's headline: joint Vdd/Vts/width optimization yields energy
  // reductions "by factors larger than 10" over width+Vdd-only at 700 mV.
  Harness s;
  const OptimizationResult base = BaselineOptimizer(s.eval).run();
  const OptimizationResult joint = JointOptimizer(s.eval).run();
  ASSERT_TRUE(base.feasible);
  ASSERT_TRUE(joint.feasible);
  EXPECT_GT(base.energy.total() / joint.energy.total(), 5.0);
}

TEST(JointOptimizer, MeetsTimingAtReportedState) {
  Harness s;
  const OptimizationResult r = JointOptimizer(s.eval).run();
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(s.eval.meets_timing(r.state, 0.95));
  EXPECT_LE(r.critical_delay, 0.95 * s.eval.cycle_time() * (1 + 1e-9));
}

TEST(JointOptimizer, LandsInPaperParameterRegime) {
  Harness s;
  const OptimizationResult r = JointOptimizer(s.eval).run();
  ASSERT_TRUE(r.feasible);
  // Low supply, low threshold (paper: Vdd in [0.6, 1.2] V, Vts in
  // [0.12, 0.2] V; we accept a modestly wider band for surrogates).
  EXPECT_LT(r.vdd, 1.6);
  EXPECT_GE(r.vdd, s.tech.vdd_min);
  EXPECT_LT(r.vts_primary, 0.30);
  EXPECT_GE(r.vts_primary, s.tech.vts_min);
}

TEST(JointOptimizer, StaticAndDynamicComparable) {
  // Section 3/5: at the optimum the two components are of the same order.
  Harness s;
  const OptimizationResult r = JointOptimizer(s.eval).run();
  ASSERT_TRUE(r.feasible);
  const double ratio = r.energy.static_energy / r.energy.dynamic_energy;
  EXPECT_GT(ratio, 0.05);
  EXPECT_LT(ratio, 20.0);
}

TEST(JointOptimizer, Deterministic) {
  Harness s;
  const OptimizationResult a = JointOptimizer(s.eval).run();
  const OptimizationResult b = JointOptimizer(s.eval).run();
  EXPECT_EQ(a.vdd, b.vdd);
  EXPECT_EQ(a.vts_primary, b.vts_primary);
  EXPECT_EQ(a.energy.total(), b.energy.total());
}

TEST(JointOptimizer, RefinementNeverHurts) {
  Harness s;
  OptimizerOptions raw;
  raw.refine = false;
  OptimizerOptions refined;
  refined.refine = true;
  const OptimizationResult a = JointOptimizer(s.eval, raw).run();
  const OptimizationResult b = JointOptimizer(s.eval, refined).run();
  ASSERT_TRUE(a.feasible && b.feasible);
  EXPECT_LE(b.energy.total(), a.energy.total() * (1.0 + 1e-12));
}

TEST(JointOptimizer, TilosPolishNeverHurts) {
  Harness s;
  OptimizerOptions plain;
  OptimizerOptions polished;
  polished.tilos_polish = true;
  const OptimizationResult a = JointOptimizer(s.eval, plain).run();
  const OptimizationResult b = JointOptimizer(s.eval, polished).run();
  ASSERT_TRUE(a.feasible && b.feasible);
  EXPECT_LE(b.energy.total(), a.energy.total() * (1.0 + 1e-12));
  EXPECT_TRUE(s.eval.meets_timing(b.state, 0.95));
}

TEST(JointOptimizer, RecoveryPassCountIsWellBehaved) {
  // Per probe, extra recovery passes only shrink widths; across a full run
  // the search trajectory may shift, so assert a sanity band plus
  // feasibility rather than strict monotonicity.
  Harness s;
  OptimizerOptions one;
  one.recovery_passes = 1;
  OptimizerOptions three;
  three.recovery_passes = 3;
  const OptimizationResult a = JointOptimizer(s.eval, one).run();
  const OptimizationResult b = JointOptimizer(s.eval, three).run();
  ASSERT_TRUE(a.feasible && b.feasible);
  EXPECT_TRUE(s.eval.meets_timing(a.state, 0.95));
  EXPECT_TRUE(s.eval.meets_timing(b.state, 0.95));
  EXPECT_LE(b.energy.total(), a.energy.total() * 1.25);
}

TEST(JointOptimizer, WidthsWithinRange) {
  Harness s;
  const OptimizationResult r = JointOptimizer(s.eval).run();
  for (netlist::GateId id : s.nl.combinational()) {
    EXPECT_GE(r.state.widths[id], s.tech.w_min);
    EXPECT_LE(r.state.widths[id], s.tech.w_max);
  }
}

TEST(JointOptimizer, InfeasibleProblemReported) {
  Netlist nl = make_circuit();
  const tech::Technology tech = tech::Technology::generic350();
  CircuitEvaluator eval(nl, tech, Harness::profile(),
                        {.clock_frequency = 50e9});
  const OptimizationResult r = JointOptimizer(eval).run();
  EXPECT_FALSE(r.feasible);
}

TEST(JointOptimizer, MultiThresholdNoWorseThanSingle) {
  Harness s;
  OptimizerOptions nv1;
  OptimizerOptions nv2;
  nv2.num_thresholds = 2;
  const OptimizationResult r1 = JointOptimizer(s.eval, nv1).run();
  const OptimizationResult r2 = JointOptimizer(s.eval, nv2).run();
  ASSERT_TRUE(r1.feasible && r2.feasible);
  EXPECT_LE(r2.energy.total(), r1.energy.total() * (1.0 + 1e-12));
  EXPECT_LE(r2.vts_groups.size(), 2u);
  EXPECT_TRUE(s.eval.meets_timing(r2.state, 0.95));
}

TEST(JointOptimizer, RefineClampsWindowWhenTechRangeExcludesIt) {
  // Regression: the refine polish searches Vdd in a +/-30% window around the
  // sweep's center. When that window lies entirely outside the technology's
  // legal range (reachable by resuming a snapshot taken under a different
  // technology), the interval inverted and golden_section_min's precondition
  // check killed the run. The fix collapses the window to the nearest legal
  // point.
  Netlist nl = make_circuit();
  tech::Technology tech = tech::Technology::generic350();
  tech.vdd_min = 0.9;
  tech.vdd_max = 1.1;  // 0.7 * 3.3 = 2.31 > vdd_max: naive window inverts
  const CircuitEvaluator eval(nl, tech, Harness::profile(),
                              {.clock_frequency = 5e6});

  OptimizerOptions opts;
  JointCheckpoint ck;
  ck.circuit = nl.name();
  ck.next_step = opts.steps;  // sweep complete; resume goes straight to refine
  ck.vdd_lo = tech.vdd_min;
  ck.vdd_hi = tech.vdd_max;
  ck.prev_total = 1.0;
  ck.has_best = true;
  ck.best_state = CircuitState::uniform(nl, 3.3, 0.4, 4.0);
  ck.best_energy.dynamic_energy = 1.0;  // absurd; any real probe beats it
  ck.best_critical_delay = 1e-9;
  ck.best_feasible = true;
  const std::string path =
      (std::filesystem::temp_directory_path() / "minergy_narrow_vdd_ck.json")
          .string();
  ck.save(path);
  opts.resume_path = path;

  OptimizationResult r;
  EXPECT_NO_THROW(r = JointOptimizer(eval, opts).run());
  // The refine probes run at the clamped legal point and replace the crafted
  // out-of-range best.
  EXPECT_TRUE(r.feasible);
  EXPECT_GE(r.state.vdd, tech.vdd_min - 1e-12);
  EXPECT_LE(r.state.vdd, tech.vdd_max + 1e-12);
  EXPECT_LT(r.energy.total(), 1.0);
  for (const std::string& p : {path, path + ".1", path + ".2"}) {
    std::remove(p.c_str());
  }
}

TEST(JointOptimizer, MultiThresholdAcceptsVtsMaxEndpoint) {
  // Regression for the per-group Vts raise loop: fixed-midpoint bisection
  // over [base_vts, vts_max] never evaluates vts_max itself, so a slack
  // group that is feasible at the technology ceiling settled one
  // half-interval short of it and leaked subthreshold energy. With the
  // endpoint probe, a relaxed clock must park the slackest group exactly at
  // vts_max, and multi-Vt stays monotonically no worse than single-Vt.
  for (const char* name : {"s27", "s344*"}) {
    SCOPED_TRACE(name);
    const netlist::Netlist nl = bench_suite::make_circuit(name);
    tech::Technology tech = tech::Technology::generic350();
    // Pin the supply high: at a low optimized Vdd the ceiling threshold
    // would starve the gates of overdrive and stay infeasible, which is the
    // uninteresting case. With Vdd >= 2.5 V and a relaxed clock, vts_max is
    // feasible and strictly cuts leakage, so the endpoint must be taken.
    tech.vdd_min = 2.5;
    const CircuitEvaluator eval(nl, tech, Harness::profile(),
                                {.clock_frequency = 20e6});
    OptimizerOptions nv1;
    OptimizerOptions nv2;
    nv2.num_thresholds = 2;
    const OptimizationResult r1 = JointOptimizer(eval, nv1).run();
    const OptimizationResult r2 = JointOptimizer(eval, nv2).run();
    ASSERT_TRUE(r1.feasible && r2.feasible);
    EXPECT_LE(r2.energy.total(), r1.energy.total() * (1.0 + 1e-12));
    for (const double v : r2.state.vts) {
      EXPECT_GE(v, tech.vts_min - 1e-12);
      EXPECT_LE(v, tech.vts_max + 1e-12);
    }
    // The slackest group reaches the ceiling exactly (bit-equal assignment,
    // not a bisection limit point).
    ASSERT_FALSE(r2.vts_groups.empty());
    EXPECT_EQ(r2.vts_groups.back(), tech.vts_max);
  }
}

TEST(JointOptimizer, MoreSlackMeansLessEnergy) {
  Netlist nl = make_circuit();
  const tech::Technology tech = tech::Technology::generic350();
  CircuitEvaluator tight(nl, tech, Harness::profile(),
                         {.clock_frequency = 280e6});
  CircuitEvaluator loose(nl, tech, Harness::profile(),
                         {.clock_frequency = 80e6});
  const OptimizationResult rt = JointOptimizer(tight).run();
  const OptimizationResult rl = JointOptimizer(loose).run();
  ASSERT_TRUE(rt.feasible && rl.feasible);
  EXPECT_LT(rl.energy.total(), rt.energy.total());
}

// ------------------------------------------------------------- annealing

TEST(AnnealingOptimizer, FindsFeasibleSolutionFromWarmStart) {
  Harness s;
  const OptimizationResult base = BaselineOptimizer(s.eval).run();
  AnnealingOptions opts;
  opts.max_moves = 3000;
  const OptimizationResult r = AnnealingOptimizer(s.eval, opts).run(base.state);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(s.eval.meets_timing(r.state, 0.95));
  EXPECT_LE(r.energy.total(), base.energy.total() * (1.0 + 1e-12));
}

TEST(AnnealingOptimizer, HeuristicBeatsAnnealingAtEqualBudget) {
  // Section 5: "in most cases ... it does not perform as well as the
  // proposed heuristic" under practical budgets.
  Harness s;
  const OptimizationResult joint = JointOptimizer(s.eval).run();
  AnnealingOptions opts;
  opts.max_moves = joint.circuit_evaluations;  // equalized evaluation budget
  const OptimizationResult sa = AnnealingOptimizer(s.eval, opts).run();
  ASSERT_TRUE(joint.feasible);
  if (!sa.feasible) SUCCEED() << "annealing failed to reach feasibility";
  else EXPECT_GT(sa.energy.total(), joint.energy.total());
}

TEST(AnnealingOptimizer, DeterministicGivenSeed) {
  Harness s;
  AnnealingOptions opts;
  opts.max_moves = 500;
  const OptimizationResult a = AnnealingOptimizer(s.eval, opts).run();
  const OptimizationResult b = AnnealingOptimizer(s.eval, opts).run();
  EXPECT_EQ(a.energy.total(), b.energy.total());
  EXPECT_EQ(a.vdd, b.vdd);
}

// --------------------------------------------------- lagrangian sizing

TEST(LagrangianSizer, BeatsBudgetSizingAtSameOperatingPoint) {
  // The Sapatnekar-lineage relaxation sized at the joint optimum's
  // (Vdd, Vts) must meet timing with no more energy than the paper's
  // budget-driven widths (typically far less).
  Harness s;
  const OptimizationResult joint = JointOptimizer(s.eval).run();
  ASSERT_TRUE(joint.feasible);
  const double limit = 0.95 * s.eval.cycle_time();
  std::vector<double> vts(s.nl.size(), joint.vts_primary);
  const LagrangianSizer lr(s.eval.delay_calculator(), s.eval.energy_model());
  const LagrangianResult r = lr.size(joint.vdd, vts, limit);
  ASSERT_TRUE(r.feasible);
  EXPECT_LE(r.critical_delay, limit * (1.0 + 1e-9));
  EXPECT_LE(r.energy, joint.energy.total() * 1.05);
  for (netlist::GateId id : s.nl.combinational()) {
    EXPECT_GE(r.widths[id], s.tech.w_min);
    EXPECT_LE(r.widths[id], s.tech.w_max);
  }
}

TEST(LagrangianSizer, Deterministic) {
  Harness s;
  std::vector<double> vts(s.nl.size(), 0.15);
  const LagrangianSizer lr(s.eval.delay_calculator(), s.eval.energy_model());
  const LagrangianResult a = lr.size(1.0, vts, 0.95 * s.eval.cycle_time());
  const LagrangianResult b = lr.size(1.0, vts, 0.95 * s.eval.cycle_time());
  EXPECT_EQ(a.widths, b.widths);
  EXPECT_EQ(a.energy, b.energy);
}

TEST(LagrangianSizer, ImpossibleConstraintReported) {
  Harness s;
  std::vector<double> vts(s.nl.size(), 0.7);
  const LagrangianSizer lr(s.eval.delay_calculator(), s.eval.energy_model());
  const LagrangianResult r = lr.size(0.75, vts, 1e-11);
  EXPECT_FALSE(r.feasible);
}

TEST(JointOptimizer, LagrangianPolishNeverHurts) {
  Harness s;
  OptimizerOptions plain;
  OptimizerOptions polished;
  polished.lagrangian_polish = true;
  const OptimizationResult a = JointOptimizer(s.eval, plain).run();
  const OptimizationResult b = JointOptimizer(s.eval, polished).run();
  ASSERT_TRUE(a.feasible && b.feasible);
  EXPECT_LE(b.energy.total(), a.energy.total() * (1.0 + 1e-12));
  EXPECT_TRUE(s.eval.meets_timing(b.state, 0.95));
}

// ------------------------------------------------------------- tilos

TEST(TilosSizer, ReachesFeasibilityWhenPossible) {
  Harness s;
  const std::vector<double> vts(s.nl.size(), 0.2);
  TilosSizer tilos(s.eval.delay_calculator(), s.eval.energy_model());
  const TilosResult r =
      tilos.size(2.0, vts, 0.95 * s.eval.cycle_time());
  EXPECT_TRUE(r.feasible);
  EXPECT_LE(r.critical_delay, 0.95 * s.eval.cycle_time() * (1 + 1e-9));
}

TEST(TilosSizer, ReportsInfeasibleWhenSaturated) {
  Harness s;
  const std::vector<double> vts(s.nl.size(), 0.7);
  TilosSizer tilos(s.eval.delay_calculator(), s.eval.energy_model());
  const TilosResult r = tilos.size(0.75, vts, 1e-10);
  EXPECT_FALSE(r.feasible);
}

// ------------------------------------------------- variation / slack

TEST(VariationAnalyzer, SavingsShrinkWithTolerance) {
  Netlist nl = make_circuit();
  OptimizerOptions opts;
  VariationAnalyzer analyzer(nl, tech::Technology::generic350(),
                             Harness::profile(), 250e6, opts);
  const auto points = analyzer.sweep({0.0, 0.15, 0.30});
  ASSERT_EQ(points.size(), 3u);
  for (const auto& p : points) {
    EXPECT_TRUE(p.joint.feasible) << "tol=" << p.tolerance;
    EXPECT_GT(p.savings, 1.0);
  }
  EXPECT_GT(points[0].savings, points[2].savings);
}

TEST(SlackSweep, SavingsGrowWithSlack) {
  Netlist nl = make_circuit();
  OptimizerOptions opts;
  SlackSweep sweep(nl, tech::Technology::generic350(), Harness::profile(),
                   250e6, opts);
  const auto points = sweep.sweep({1.0, 2.0, 4.0});
  ASSERT_EQ(points.size(), 3u);
  for (const auto& p : points) EXPECT_TRUE(p.joint.feasible);
  EXPECT_GT(points[2].savings, points[0].savings);
}

// Savings across seeds: the headline must be robust to topology.
class JointSavingsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JointSavingsProperty, SubstantialSavingsAcrossTopologies) {
  Netlist nl = make_circuit(GetParam(), 70, 7);
  const tech::Technology tech = tech::Technology::generic350();
  CircuitEvaluator eval(nl, tech, Harness::profile(),
                        {.clock_frequency = 250e6});
  const OptimizationResult base = BaselineOptimizer(eval).run();
  const OptimizationResult joint = JointOptimizer(eval).run();
  ASSERT_TRUE(base.feasible && joint.feasible);
  EXPECT_GT(base.energy.total() / joint.energy.total(), 3.0);
  EXPECT_LT(joint.vdd, base.vdd);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JointSavingsProperty,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace minergy::opt
