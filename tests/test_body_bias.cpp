#include <gtest/gtest.h>

#include <cmath>

#include "tech/body_bias.h"

namespace minergy::tech {
namespace {

TEST(BodyBiasParams, Validation) {
  BodyBiasParams p;
  EXPECT_NO_THROW(p.validate());
  p.gamma = -0.1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = BodyBiasParams{};
  p.max_forward_bias = 0.7;  // beyond diode turn-on
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(BodyBias, ZeroBiasGivesNaturalThreshold) {
  const BodyBiasCalculator calc{BodyBiasParams{}};
  EXPECT_NEAR(calc.vt_at_bias(0.08, 0.0), 0.08, 1e-12);
}

TEST(BodyBias, ReverseBiasRaisesThreshold) {
  const BodyBiasCalculator calc{BodyBiasParams{}};
  double prev = 0.0;
  for (double vsb = 0.0; vsb <= 5.0; vsb += 0.5) {
    const double vt = calc.vt_at_bias(0.08, vsb);
    EXPECT_GT(vt, prev - 1e-12);
    prev = vt;
  }
  EXPECT_GT(calc.vt_at_bias(0.08, 3.0), 0.4);  // substantial range
}

TEST(BodyBias, RoundTripTargetToBias) {
  const BodyBiasCalculator calc{BodyBiasParams{}};
  for (double target : {0.10, 0.15, 0.20, 0.35, 0.55}) {
    const BiasSolution s = calc.bias_for_target(0.08, target);
    ASSERT_TRUE(s.in_safe_range) << "target " << target;
    EXPECT_NEAR(calc.vt_at_bias(0.08, s.vsb), target, 1e-9);
    EXPECT_GE(s.vsb, 0.0);  // raising Vt needs reverse bias
  }
}

TEST(BodyBias, ForwardBiasLowersThreshold) {
  const BodyBiasCalculator calc{BodyBiasParams{}};
  const BiasSolution s = calc.bias_for_target(0.12, 0.08);
  EXPECT_LT(s.vsb, 0.0);
  if (s.in_safe_range) {
    EXPECT_NEAR(calc.vt_at_bias(0.12, s.vsb), 0.08, 1e-9);
  }
}

TEST(BodyBias, UnreachableTargetsAreClamped) {
  const BodyBiasCalculator calc{BodyBiasParams{}};
  // Far above the reverse-bias ceiling.
  const BiasSolution high = calc.bias_for_target(0.08, 2.0);
  EXPECT_FALSE(high.in_safe_range);
  EXPECT_NEAR(high.vsb, calc.params().max_reverse_bias, 1e-12);
  // Far below what forward bias can reach.
  const BiasSolution low = calc.bias_for_target(0.5, -0.5);
  EXPECT_FALSE(low.in_safe_range);
  EXPECT_NEAR(low.vsb, -calc.params().max_forward_bias, 1e-12);
}

TEST(BodyBias, SensitivityDropsWithReverseBias) {
  // dVt/dVsb = gamma / (2 sqrt(2phi + vsb)): regulation gets easier at
  // deeper reverse bias.
  const BodyBiasCalculator calc{BodyBiasParams{}};
  const BiasSolution near = calc.bias_for_target(0.08, 0.15);
  const BiasSolution far = calc.bias_for_target(0.08, 0.55);
  EXPECT_GT(near.sensitivity, far.sensitivity);
  EXPECT_GT(far.sensitivity, 0.0);
}

TEST(BodyBias, Figure1RailVoltages) {
  // Figure 1: substrate below ground, n-well above Vdd.
  const BodyBiasCalculator calc{BodyBiasParams{}};
  const double v_sub = calc.substrate_rail(0.18);
  EXPECT_LT(v_sub, 0.0);
  const double v_nwell = calc.nwell_rail(0.18, 0.9);
  EXPECT_GT(v_nwell, 0.9);
  // Consistency with the underlying solution.
  EXPECT_NEAR(-v_sub, calc.nmos_substrate_bias(0.18).vsb, 1e-12);
  EXPECT_NEAR(v_nwell - 0.9, calc.pmos_well_bias(0.18).vsb, 1e-12);
}

TEST(BodyBias, PaperOperatingPointsAreRealizable) {
  // The joint optimizer lands at Vts in ~[100, 210] mV; with natural
  // devices at 80-100 mV all of that window must be reachable with modest
  // reverse bias.
  const BodyBiasCalculator calc{BodyBiasParams{}};
  for (double vts = 0.10; vts <= 0.21; vts += 0.01) {
    const BiasSolution n = calc.nmos_substrate_bias(vts);
    EXPECT_TRUE(n.in_safe_range) << vts;
    EXPECT_LT(n.vsb, 1.0) << vts;  // well within the junction limit
  }
}

}  // namespace
}  // namespace minergy::tech
