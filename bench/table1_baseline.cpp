// Reproduces Table 1: "Performance of Benchmark Circuits".
//
// For every benchmark circuit and input-activity level, the conventional
// flow — threshold frozen at 700 mV, supply voltage and device widths
// optimized to minimize power under the cycle-time constraint — reports its
// static, dynamic and total energy per cycle and the critical delay. These
// rows are the reference the joint optimizer's savings (Table 2) are quoted
// against.
//
// Flags: --fc=<Hz> (default 300e6), --csv, --circuit=<name> (one circuit
// only; the obs smoke test runs c17 this way), --certify (independently
// re-verify every row with opt::Certifier; any uncertified row exits 1),
// plus the obs::Session flags (--trace=FILE, --metrics/--verbose,
// --perf-record).
#include <cstdio>
#include <iostream>

#include "bench_suite/experiment.h"
#include "obs/session.h"
#include "opt/eval_cache.h"
#include "util/cli.h"
#include "util/thread_pool.h"
#include "util/strings.h"
#include "util/table.h"

using namespace minergy;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  // Evaluation engine knobs, shared by every driver: --threads=N
  // (0 = hardware concurrency; 1 = bit-exact serial path) and
  // --eval-cache=0/1 (memoized evaluator results, default on).
  util::set_global_threads(cli.get("threads", 0));
  opt::set_eval_cache_enabled(cli.get("eval-cache", 1) != 0);
  const obs::Session session(cli, "table1_baseline");
  bench_suite::ExperimentConfig cfg;
  cfg.clock_frequency = cli.get("fc", 300e6);

  std::printf("== Table 1: baseline (fixed Vts = %.0f mV, f_c = %s) ==\n",
              cfg.tech.nominal_vts * 1e3,
              util::format_eng(cfg.clock_frequency, "Hz", 0).c_str());
  std::printf("   (circuits marked * are statistically matched ISCAS-89 "
              "surrogates; see DESIGN.md)\n\n");

  util::Table table({"Circuit", "Gates", "Depth", "Activity", "Vdd(V)",
                     "Static(J)", "Dynamic(J)", "Total(J)", "CritDelay(ns)",
                     "Tc(ns)"});
  const std::string only = cli.get("circuit", std::string());
  const bool certify = cli.get("certify", false);
  bool matched = only.empty();
  int uncertified = 0;
  for (const auto& spec : bench_suite::paper_circuits()) {
    if (!only.empty() && spec.name != only) continue;
    matched = true;
    for (const auto& e : bench_suite::run_circuit(spec, cfg)) {
      table.begin_row()
          .add(e.circuit + (e.tc_scaled ? " (Tc scaled)" : ""))
          .add(e.num_gates)
          .add(e.depth)
          .add(e.input_activity, 2)
          .add(e.baseline.vdd, 3)
          .add_sci(e.baseline.energy.static_energy)
          .add_sci(e.baseline.energy.dynamic_energy)
          .add_sci(e.baseline.energy.total())
          .add(e.baseline.critical_delay * 1e9, 3)
          .add(e.cycle_time * 1e9, 3);
      if (certify) {
        const opt::Certificate cert =
            bench_suite::certify_experiment(e, cfg, /*joint=*/false);
        if (!cert.certified) {
          ++uncertified;
          std::fprintf(stderr, "%s (a=%.2f): %s\n", e.circuit.c_str(),
                       e.input_activity, cert.summary().c_str());
        }
      }
    }
  }
  if (!matched) {
    std::fprintf(stderr, "error: --circuit=%s matches no paper circuit\n",
                 only.c_str());
    return 2;
  }
  std::cout << (cli.get("csv", false) ? table.to_csv() : table.to_text());
  if (certify) {
    std::printf("\ncertification: %s\n",
                uncertified == 0
                    ? "every row independently certified"
                    : (std::to_string(uncertified) + " row(s) UNCERTIFIED")
                          .c_str());
  }
  return uncertified == 0 ? 0 : 1;
}
