// Ablation: short-circuit dissipation (the paper's announced "next
// version" feature).
//
// Two questions, answered per circuit:
//  1. How big is E_sc at the Table-2 optimum found *without* modeling it?
//     (Checks the Veendrick justification for neglecting it.)
//  2. Does re-optimizing with E_sc in the cost function move the operating
//     point or the achievable savings?
#include <cstdio>
#include <iostream>

#include "bench_suite/experiment.h"
#include "opt/eval_cache.h"
#include "opt/evaluator.h"
#include "opt/joint_optimizer.h"
#include "obs/session.h"
#include "util/cli.h"
#include "util/thread_pool.h"
#include "util/table.h"

using namespace minergy;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  // Evaluation engine knobs, shared by every driver: --threads=N
  // (0 = hardware concurrency; 1 = bit-exact serial path) and
  // --eval-cache=0/1 (memoized evaluator results, default on).
  util::set_global_threads(cli.get("threads", 0));
  opt::set_eval_cache_enabled(cli.get("eval-cache", 1) != 0);
  const obs::Session session(cli, "ablation_shortcircuit");
  bench_suite::ExperimentConfig cfg;
  cfg.clock_frequency = cli.get("fc", 300e6);

  std::printf("== Ablation: short-circuit power in the cost function ==\n\n");
  util::Table table({"Circuit", "E_sc/E_dyn @opt", "Vdd w/o sc", "Vdd w/ sc",
                     "Vts w/o", "Vts w/", "E total w/o sc", "E total w/ sc"});
  for (const auto& spec : bench_suite::paper_circuits()) {
    const netlist::Netlist nl = bench_suite::make_circuit(spec);
    bool scaled = false;
    const double tc = bench_suite::choose_cycle_time(nl, cfg, &scaled);
    activity::ActivityProfile profile;
    profile.input_density = 0.5;

    const opt::CircuitEvaluator plain(nl, cfg.tech, profile,
                                      {.clock_frequency = 1.0 / tc});
    const opt::CircuitEvaluator with_sc(
        nl, cfg.tech, profile,
        {.clock_frequency = 1.0 / tc, .include_short_circuit = true});

    const opt::OptimizationResult r0 =
        opt::JointOptimizer(plain, cfg.opts).run();
    const opt::OptimizationResult r1 =
        opt::JointOptimizer(with_sc, cfg.opts).run();
    // Evaluate the sc-free optimum *with* the sc model to expose the term
    // the plain flow ignored.
    const power::EnergyBreakdown audited = with_sc.energy(r0.state);

    table.begin_row()
        .add(spec.name)
        .add(audited.short_circuit_energy / audited.dynamic_energy, 4)
        .add(r0.vdd, 3)
        .add(r1.vdd, 3)
        .add(r0.vts_primary * 1e3, 0)
        .add(r1.vts_primary * 1e3, 0)
        .add_sci(audited.total())
        .add_sci(r1.feasible ? r1.energy.total() : -1.0);
  }
  std::cout << table.to_text();
  std::printf(
      "\nE_sc/E_dyn at the joint optimum is tiny: voltage scaling closes "
      "the conduction\nwindow (Vdd -> 2*Vts), so the paper's neglect is "
      "self-consistent *after* optimization\n— and including the term "
      "barely moves (Vdd, Vts).\n");
  return 0;
}
