// Ablation: what the paper's design choices buy.
//
//  1. Delay budgeting: fanout-proportional (Procedure 1) vs. gate-count
//     uniform budgets — the paper argues budgets must track fanout because
//     "the delay of each gate is proportional to its fanout".
//  2. Width selection: budget-driven binary search (Procedure 2 inner loop)
//     vs. TILOS-style greedy sensitivity sizing.
//  3. Search polish: pure nested binary search vs. +golden-section refine.
//
// Reported: total energy at the joint optimum under each variant.
#include <cstdio>
#include <iostream>

#include "bench_suite/experiment.h"
#include "opt/eval_cache.h"
#include "opt/evaluator.h"
#include "opt/joint_optimizer.h"
#include "opt/lagrangian_sizer.h"
#include "opt/sizer.h"
#include "opt/tilos_sizer.h"
#include "obs/session.h"
#include "util/cli.h"
#include "util/thread_pool.h"
#include "util/table.h"

using namespace minergy;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  // Evaluation engine knobs, shared by every driver: --threads=N
  // (0 = hardware concurrency; 1 = bit-exact serial path) and
  // --eval-cache=0/1 (memoized evaluator results, default on).
  util::set_global_threads(cli.get("threads", 0));
  opt::set_eval_cache_enabled(cli.get("eval-cache", 1) != 0);
  const obs::Session session(cli, "ablation_budgeting");
  bench_suite::ExperimentConfig cfg;
  cfg.clock_frequency = cli.get("fc", 300e6);

  std::printf("== Ablations: budgeting policy, sizing engine, refinement "
              "==\n\n");

  // --- 1+3: budgeting policy / refinement, via the joint optimizer -------
  util::Table table({"Circuit", "E joint", "E no-refine", "refine gain",
                     "budget skew (fanout/uniform)", "E tilos-sized",
                     "tilos/joint", "E lagrangian", "lr/joint"});
  for (const auto& spec : bench_suite::paper_circuits()) {
    const netlist::Netlist nl = bench_suite::make_circuit(spec);
    bool scaled = false;
    const double tc = bench_suite::choose_cycle_time(nl, cfg, &scaled);
    activity::ActivityProfile profile;
    profile.input_density = 0.5;
    const opt::CircuitEvaluator eval(nl, cfg.tech, profile,
                                     {.clock_frequency = 1.0 / tc});

    const opt::OptimizationResult joint =
        opt::JointOptimizer(eval, cfg.opts).run();
    opt::OptimizerOptions raw = cfg.opts;
    raw.refine = false;
    const opt::OptimizationResult no_refine =
        opt::JointOptimizer(eval, raw).run();

    // Budget-policy comparison at the joint optimum's operating point:
    // size against fanout-proportional vs. uniform budgets and compare the
    // switched width (total area proxy).
    const timing::BudgetResult fan_b =
        eval.budgeter().assign(tc, {.clock_skew_b = cfg.opts.skew_b});
    const timing::BudgetResult uni_b =
        eval.budgeter().assign_uniform(tc, {.clock_skew_b = cfg.opts.skew_b});
    const opt::GateSizer sizer(eval.delay_calculator());
    const std::vector<double> vts(nl.size(), joint.vts_primary);
    const opt::SizingResult fan_s = sizer.size(fan_b.t_max, joint.vdd, vts);
    const opt::SizingResult uni_s = sizer.size(uni_b.t_max, joint.vdd, vts);
    double fan_e = 0.0, uni_e = 0.0;
    {
      opt::CircuitState s1{joint.vdd, vts, fan_s.widths};
      opt::CircuitState s2{joint.vdd, vts, uni_s.widths};
      fan_e = eval.energy(s1).total();
      uni_e = eval.energy(s2).total();
    }

    // TILOS sizing at the same (Vdd, Vts) operating point.
    const opt::TilosSizer tilos(eval.delay_calculator(), eval.energy_model());
    const opt::TilosResult tr = tilos.size(
        joint.vdd, vts, cfg.opts.skew_b * tc);
    double tilos_e = -1.0;
    if (tr.feasible) {
      opt::CircuitState st{joint.vdd, vts, tr.widths};
      tilos_e = eval.energy(st).total();
    }

    // Lagrangian-relaxation sizing (the paper's cited convex-sizing
    // lineage) at the same operating point.
    const opt::LagrangianSizer lr(eval.delay_calculator(),
                                  eval.energy_model());
    const opt::LagrangianResult lres =
        lr.size(joint.vdd, vts, cfg.opts.skew_b * tc);

    table.begin_row()
        .add(spec.name)
        .add_sci(joint.energy.total())
        .add_sci(no_refine.energy.total())
        .add(no_refine.energy.total() / joint.energy.total(), 3)
        .add(fan_e / uni_e, 3)
        .add_sci(tilos_e)
        .add(tilos_e > 0.0 ? tilos_e / joint.energy.total() : -1.0, 3)
        .add_sci(lres.feasible ? lres.energy : -1.0)
        .add(lres.feasible ? lres.energy / joint.energy.total() : -1.0, 3);
  }
  std::cout << table.to_text();
  std::printf(
      "\nrefine gain >= 1: energy left on the table by the pure nested "
      "binary search.\nbudget skew < 1: fanout-proportional budgets beat "
      "uniform ones at equal cycle time.\ntilos/joint: greedy sensitivity "
      "sizing vs. the paper's budget-driven widths at the same (Vdd, Vts);\n"
      "lr/joint: the Lagrangian-relaxation (convex-sizing lineage, paper ref [10]) result,\n"
      "available as OptimizerOptions::lagrangian_polish.\n");
  return 0;
}
