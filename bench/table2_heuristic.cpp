// Reproduces Table 2: "Optimization Results for Heuristic".
//
// The joint (Vdd, Vts, widths) heuristic of Procedures 1+2, run against the
// same cycle-time constraint as the Table-1 baseline. The paper's claims
// checked here:
//   * total energy drops by a factor > 10 (typically ~25) vs Table 1,
//   * static and dynamic components are comparable at the optimum,
//   * chosen Vts ~ 120-200 mV, Vdd ~ 0.6-1.2 V,
//   * savings increase with input activity,
//   * runtimes of seconds per circuit.
//
// Flags: --fc=<Hz> (default 300e6), --csv, --circuit=<name>, --certify
// (independently re-verify every joint row with opt::Certifier; any
// uncertified row exits 1), plus the obs::Session flags (--trace=FILE,
// --metrics/--verbose, --perf-record).
#include <cstdio>
#include <iostream>

#include "bench_suite/experiment.h"
#include "obs/session.h"
#include "opt/eval_cache.h"
#include "util/cli.h"
#include "util/thread_pool.h"
#include "util/strings.h"
#include "util/table.h"

using namespace minergy;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  // Evaluation engine knobs, shared by every driver: --threads=N
  // (0 = hardware concurrency; 1 = bit-exact serial path) and
  // --eval-cache=0/1 (memoized evaluator results, default on).
  util::set_global_threads(cli.get("threads", 0));
  opt::set_eval_cache_enabled(cli.get("eval-cache", 1) != 0);
  const obs::Session session(cli, "table2_heuristic");
  bench_suite::ExperimentConfig cfg;
  cfg.clock_frequency = cli.get("fc", 300e6);

  std::printf("== Table 2: joint Vdd/Vts/width heuristic (f_c = %s) ==\n\n",
              util::format_eng(cfg.clock_frequency, "Hz", 0).c_str());

  util::Table table({"Circuit", "Activity", "Vdd(V)", "Vts(mV)", "Static(J)",
                     "Dynamic(J)", "Total(J)", "CritDelay(ns)", "Savings",
                     "Runtime(s)"});
  double min_savings = 1e30, max_savings = 0.0;
  const std::string only = cli.get("circuit", std::string());
  const bool certify = cli.get("certify", false);
  bool matched = only.empty();
  int uncertified = 0;
  for (const auto& spec : bench_suite::paper_circuits()) {
    if (!only.empty() && spec.name != only) continue;
    matched = true;
    for (const auto& e : bench_suite::run_circuit(spec, cfg)) {
      if (certify) {
        const opt::Certificate cert =
            bench_suite::certify_experiment(e, cfg, /*joint=*/true);
        if (!cert.certified) {
          ++uncertified;
          std::fprintf(stderr, "%s (a=%.2f): %s\n", e.circuit.c_str(),
                       e.input_activity, cert.summary().c_str());
        }
      }
      table.begin_row()
          .add(e.circuit)
          .add(e.input_activity, 2)
          .add(e.joint.vdd, 3)
          .add(e.joint.vts_primary * 1e3, 0)
          .add_sci(e.joint.energy.static_energy)
          .add_sci(e.joint.energy.dynamic_energy)
          .add_sci(e.joint.energy.total())
          .add(e.joint.critical_delay * 1e9, 3)
          .add(e.savings, 2)
          .add(e.joint.runtime_seconds, 3);
      if (e.savings > 0.0) {
        min_savings = std::min(min_savings, e.savings);
        max_savings = std::max(max_savings, e.savings);
      }
    }
  }
  if (!matched) {
    std::fprintf(stderr, "error: --circuit=%s matches no paper circuit\n",
                 only.c_str());
    return 2;
  }
  std::cout << (cli.get("csv", false) ? table.to_csv() : table.to_text());
  std::printf("\nSavings over the Table-1 baseline: %.1fx .. %.1fx "
              "(paper: >10x, typically ~25x)\n",
              min_savings, max_savings);
  if (certify) {
    std::printf("certification: %s\n",
                uncertified == 0
                    ? "every row independently certified"
                    : (std::to_string(uncertified) + " row(s) UNCERTIFIED")
                          .c_str());
  }
  return uncertified == 0 ? 0 : 1;
}
