// Model-validation harness ("These models have been extensively validated
// with HSPICE", Section 2 / Appendix A).
//
// The closed-form transregional switching-delay expression is compared
// against numerical transient integration of the same device equations
// (spice::TransientSim) across a (Vdd, Vts, width, load) grid, including
// subthreshold points. Reported per point: closed-form delay, simulated
// 50% delay, and their ratio — the paper-style validation of Appendix A.2.
#include <cstdio>
#include <iostream>

#include "spice/transient_sim.h"
#include "util/stats.h"
#include "util/table.h"

using namespace minergy;

int main() {
  const tech::Technology tech = tech::Technology::generic350();
  const tech::DeviceModel dev(tech);
  const spice::TransientSim sim(dev);

  std::printf("== Appendix-A delay-model validation: closed form vs. "
              "transient integration ==\n\n");

  util::Table table({"Vdd(V)", "Vts(V)", "w", "C_L(fF)", "regime",
                     "closed(ps)", "transient(ps)", "ratio"});
  util::RunningStats ratio_stats;
  for (double vdd : {0.4, 0.8, 1.4, 2.2, 3.3}) {
    for (double vts : {0.15, 0.35, 0.55}) {
      for (double w : {2.0, 10.0}) {
        for (double cl : {6e-15, 24e-15}) {
          spice::StageConfig cfg;
          cfg.width = w;
          cfg.load_cap = cl;
          cfg.input_rise_time = 1e-12;
          const double transient = sim.propagation_delay(cfg, vdd, vts);
          if (transient <= 0.0) continue;
          const double drive = w * dev.idrive_per_wunit(vdd, vts);
          const double closed = 0.5 * vdd * cl / drive;
          const double ratio = transient / closed;
          ratio_stats.add(ratio);
          const bool sub = (vdd - vts) < dev.blend_overdrive();
          table.begin_row()
              .add(vdd, 2)
              .add(vts, 2)
              .add(w, 0)
              .add(cl * 1e15, 0)
              .add(sub ? "sub-Vt" : "super-Vt")
              .add(closed * 1e12, 2)
              .add(transient * 1e12, 2)
              .add(ratio, 3);
        }
      }
    }
  }
  std::cout << table.to_text();
  std::printf("\nratio (transient/closed): mean %.3f, min %.3f, max %.3f "
              "over %zu points — the closed form tracks the integrated\n"
              "waveform within a constant-order factor across 4 decades of "
              "operating conditions, including subthreshold.\n",
              ratio_stats.mean(), ratio_stats.min(), ratio_stats.max(),
              ratio_stats.count());
  return 0;
}
