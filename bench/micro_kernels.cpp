// google-benchmark micro-kernels: the cost of every stage of the flow, and
// the end-to-end runtime claim ("Computation time for these circuits range
// between 5s and 20s" on 1997 hardware; modern hardware should be well
// under a second per circuit).
#include <benchmark/benchmark.h>

#include "activity/activity.h"
#include "bench_suite/iscas.h"
#include "interconnect/wire_model.h"
#include "netlist/generator.h"
#include "opt/baseline_optimizer.h"
#include "opt/evaluator.h"
#include "opt/joint_optimizer.h"
#include "opt/sizer.h"
#include "timing/delay_budget.h"
#include "timing/path_enum.h"
#include "timing/sta.h"

namespace {

using namespace minergy;

netlist::Netlist circuit_of_size(int gates) {
  netlist::GeneratorSpec spec;
  spec.num_inputs = 10;
  spec.num_gates = gates;
  spec.depth = std::max(6, gates / 16);
  spec.num_dffs = gates / 12;
  spec.seed = 4242;
  return netlist::generate_random_logic(spec);
}

void BM_ActivityEstimation(benchmark::State& state) {
  const netlist::Netlist nl = circuit_of_size(static_cast<int>(state.range(0)));
  activity::ActivityProfile profile;
  for (auto _ : state) {
    benchmark::DoNotOptimize(activity::estimate_activity(nl, profile));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(nl.num_combinational()));
}
BENCHMARK(BM_ActivityEstimation)->Arg(100)->Arg(400);

void BM_WireModelConstruction(benchmark::State& state) {
  const netlist::Netlist nl = circuit_of_size(static_cast<int>(state.range(0)));
  const tech::Technology tech = tech::Technology::generic350();
  for (auto _ : state) {
    benchmark::DoNotOptimize(interconnect::WireModel(tech, nl));
  }
}
BENCHMARK(BM_WireModelConstruction)->Arg(400);

void BM_StaticTimingAnalysis(benchmark::State& state) {
  const netlist::Netlist nl = circuit_of_size(static_cast<int>(state.range(0)));
  const tech::Technology tech = tech::Technology::generic350();
  const tech::DeviceModel dev(tech);
  const interconnect::WireModel wires(tech, nl);
  const timing::DelayCalculator calc(nl, dev, wires);
  const std::vector<double> w(nl.size(), 4.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(timing::run_sta(calc, w, 1.0, 0.2, 3.3e-9));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(nl.num_combinational()));
}
BENCHMARK(BM_StaticTimingAnalysis)->Arg(100)->Arg(400)->Arg(1600);

void BM_DelayBudgeting(benchmark::State& state) {
  const netlist::Netlist nl = circuit_of_size(static_cast<int>(state.range(0)));
  const timing::DelayBudgeter budgeter(nl);
  for (auto _ : state) {
    benchmark::DoNotOptimize(budgeter.assign(3.33e-9));
  }
}
BENCHMARK(BM_DelayBudgeting)->Arg(100)->Arg(400);

void BM_TopKPaths(benchmark::State& state) {
  const netlist::Netlist nl = circuit_of_size(400);
  const timing::PathAnalyzer pa(nl);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pa.top_k(static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_TopKPaths)->Arg(10)->Arg(100);

void BM_GateSizingPass(benchmark::State& state) {
  const netlist::Netlist nl = circuit_of_size(static_cast<int>(state.range(0)));
  const tech::Technology tech = tech::Technology::generic350();
  const tech::DeviceModel dev(tech);
  const interconnect::WireModel wires(tech, nl);
  const timing::DelayCalculator calc(nl, dev, wires);
  const timing::BudgetResult budgets =
      timing::DelayBudgeter(nl).assign(3.33e-9);
  const opt::GateSizer sizer(calc);
  const std::vector<double> vts(nl.size(), 0.15);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sizer.size(budgets.t_max, 1.0, vts));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(nl.num_combinational()));
}
BENCHMARK(BM_GateSizingPass)->Arg(100)->Arg(400);

void BM_JointOptimizerEndToEnd(benchmark::State& state) {
  const netlist::Netlist nl = circuit_of_size(static_cast<int>(state.range(0)));
  const tech::Technology tech = tech::Technology::generic350();
  activity::ActivityProfile profile;
  profile.input_density = 0.5;
  const opt::CircuitEvaluator eval(nl, tech, profile,
                                   {.clock_frequency = 200e6});
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::JointOptimizer(eval).run());
  }
}
BENCHMARK(BM_JointOptimizerEndToEnd)->Arg(100)->Arg(300)
    ->Unit(benchmark::kMillisecond);

void BM_BaselineOptimizerEndToEnd(benchmark::State& state) {
  const netlist::Netlist nl = circuit_of_size(static_cast<int>(state.range(0)));
  const tech::Technology tech = tech::Technology::generic350();
  activity::ActivityProfile profile;
  const opt::CircuitEvaluator eval(nl, tech, profile,
                                   {.clock_frequency = 200e6});
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::BaselineOptimizer(eval).run());
  }
}
BENCHMARK(BM_BaselineOptimizerEndToEnd)->Arg(300)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
