// Reproduces the Section-3 physics: "the sum total of the static and the
// dynamic components of dissipation is minimized by a unique choice of
// supply voltage, threshold voltage and device width values".
//
// Sweep Vdd; at each point find the best Vts and the minimum widths meeting
// the delay budget; print the energy components. The series should show a
// unique interior minimum with the static component rising (lower Vts,
// wider devices) exactly as the dynamic component falls.
//
// Flags: --circuit=<name> (default s298*), --fc=<Hz>
#include <cstdio>
#include <iostream>

#include "bench_suite/experiment.h"
#include "opt/eval_cache.h"
#include "opt/evaluator.h"
#include "opt/sizer.h"
#include "obs/session.h"
#include "util/cli.h"
#include "util/thread_pool.h"
#include "util/search.h"
#include "util/table.h"

using namespace minergy;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  // Evaluation engine knobs, shared by every driver: --threads=N
  // (0 = hardware concurrency; 1 = bit-exact serial path) and
  // --eval-cache=0/1 (memoized evaluator results, default on).
  util::set_global_threads(cli.get("threads", 0));
  opt::set_eval_cache_enabled(cli.get("eval-cache", 1) != 0);
  const obs::Session session(cli, "physics_balance");
  const std::string circuit = cli.get("circuit", std::string("s298*"));

  const netlist::Netlist nl = bench_suite::make_circuit(circuit);
  bench_suite::ExperimentConfig cfg;
  cfg.clock_frequency = cli.get("fc", 300e6);
  bool scaled = false;
  const double tc = bench_suite::choose_cycle_time(nl, cfg, &scaled);

  activity::ActivityProfile profile;
  profile.input_density = 0.5;
  const opt::CircuitEvaluator eval(nl, cfg.tech, profile,
                                   {.clock_frequency = 1.0 / tc});
  const timing::BudgetResult budgets =
      eval.budgeter().assign(tc, {.clock_skew_b = 0.95});
  const opt::GateSizer sizer(eval.delay_calculator());

  // Best threshold + sizing at one supply point.
  auto optimize_at = [&](double vdd, double* best_vts,
                         power::EnergyBreakdown* energy, double* avg_w) {
    double best_e = -1.0;
    for (double vts = cfg.tech.vts_min; vts <= cfg.tech.vts_max;
         vts += 0.01) {
      const std::vector<double> vtsv(nl.size(), vts);
      const opt::SizingResult sized = sizer.size(budgets.t_max, vdd, vtsv);
      opt::CircuitState state;
      state.vdd = vdd;
      state.vts = vtsv;
      state.widths = sized.widths;
      if (!eval.meets_timing(state, 0.95)) continue;
      const power::EnergyBreakdown e = eval.energy(state);
      if (best_e < 0.0 || e.total() < best_e) {
        best_e = e.total();
        *best_vts = vts;
        *energy = e;
        double sum = 0.0;
        for (netlist::GateId id : nl.combinational()) {
          sum += state.widths[id];
        }
        *avg_w = sum / static_cast<double>(nl.num_combinational());
      }
    }
    return best_e >= 0.0;
  };

  std::printf("== Section-3 physics: energy components vs. Vdd "
              "(%s, Tc = %.3f ns, activity 0.5) ==\n\n",
              circuit.c_str(), tc * 1e9);
  util::Table table({"Vdd(V)", "Best Vts(mV)", "Avg width", "Static(J)",
                     "Dynamic(J)", "Total(J)", "Es/Ed"});
  double min_total = 1e30, min_vdd = 0.0, min_ratio = 0.0;
  for (double vdd = 0.4; vdd <= 3.301; vdd += 0.2) {
    double vts = 0.0, avg_w = 0.0;
    power::EnergyBreakdown e;
    if (!optimize_at(vdd, &vts, &e, &avg_w)) {
      table.begin_row().add(vdd, 2).add("-").add("-").add("infeasible")
          .add("-").add("-").add("-");
      continue;
    }
    table.begin_row()
        .add(vdd, 2)
        .add(vts * 1e3, 0)
        .add(avg_w, 1)
        .add_sci(e.static_energy)
        .add_sci(e.dynamic_energy)
        .add_sci(e.total())
        .add(e.static_energy / e.dynamic_energy, 2);
    if (e.total() < min_total) {
      min_total = e.total();
      min_vdd = vdd;
      min_ratio = e.static_energy / e.dynamic_energy;
    }
  }
  std::cout << table.to_text();
  std::printf("\nUnique minimum at Vdd = %.2f V with Es/Ed = %.2f "
              "(paper: interior optimum with comparable components).\n",
              min_vdd, min_ratio);
  return 0;
}
