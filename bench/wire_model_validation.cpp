// Validates the paper's a-priori Rent's-rule net-length estimation against
// ground truth from an actual placement.
//
// Section 2: interconnect loads come from "a complete stochastic
// wire-length distribution model, derived from first principles through
// recursive application of Rent's rule". Here every benchmark circuit is
// actually *placed* (simulated-annealing HPWL minimization); we compare
//   (a) the per-net length statistics of the stochastic model vs placed
//       HPWL, and
//   (b) the joint optimizer's final operating point under both load models.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_suite/experiment.h"
#include "opt/eval_cache.h"
#include "opt/evaluator.h"
#include "opt/joint_optimizer.h"
#include "place/placement.h"
#include "obs/session.h"
#include "util/cli.h"
#include "util/thread_pool.h"
#include "util/stats.h"
#include "util/table.h"

using namespace minergy;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  // Evaluation engine knobs, shared by every driver: --threads=N
  // (0 = hardware concurrency; 1 = bit-exact serial path) and
  // --eval-cache=0/1 (memoized evaluator results, default on).
  util::set_global_threads(cli.get("threads", 0));
  opt::set_eval_cache_enabled(cli.get("eval-cache", 1) != 0);
  const obs::Session session(cli, "wire_model_validation");
  bench_suite::ExperimentConfig cfg;
  cfg.clock_frequency = cli.get("fc", 300e6);

  std::printf("== Wire-model validation: a-priori Rent's rule vs. actual "
              "placement ==\n\n");
  util::Table table({"Circuit", "Rent mean(um)", "placed mean(um)",
                     "Rent p90(um)", "placed p90(um)", "E(Rent)",
                     "E(placed)", "E ratio", "Vdd R/P"});

  // The smaller half of the suite keeps the placement runtime bounded.
  const std::vector<std::string> circuits = {"s27", "s208*", "s298*",
                                             "s344*"};
  for (const auto& name : circuits) {
    const netlist::Netlist nl = bench_suite::make_circuit(name);
    bool scaled = false;
    const double tc = bench_suite::choose_cycle_time(nl, cfg, &scaled);
    activity::ActivityProfile profile;
    profile.input_density = 0.3;

    const place::Placement placed =
        place::AnnealingPlacer({.seed = 101}).place(nl);
    const place::PlacedWireModel placed_wires(cfg.tech, placed);

    const opt::CircuitEvaluator rent_eval(nl, cfg.tech, profile,
                                          {.clock_frequency = 1.0 / tc});
    const opt::CircuitEvaluator placed_eval(nl, cfg.tech, profile,
                                            {.clock_frequency = 1.0 / tc},
                                            placed_wires);

    std::vector<double> rent_len, placed_len;
    for (netlist::GateId id : nl.combinational()) {
      rent_len.push_back(rent_eval.wires().routed_length(id) * 1e6);
      placed_len.push_back(placed_wires.routed_length(id) * 1e6);
    }
    auto mean = [](const std::vector<double>& v) {
      util::RunningStats s;
      for (double x : v) s.add(x);
      return s.mean();
    };

    const opt::OptimizationResult r_rent =
        opt::JointOptimizer(rent_eval, cfg.opts).run();
    const opt::OptimizationResult r_placed =
        opt::JointOptimizer(placed_eval, cfg.opts).run();

    char vdd_buf[32];
    std::snprintf(vdd_buf, sizeof vdd_buf, "%.2f/%.2f", r_rent.vdd,
                  r_placed.vdd);
    table.begin_row()
        .add(name)
        .add(mean(rent_len), 1)
        .add(mean(placed_len), 1)
        .add(util::quantile(rent_len, 0.9), 1)
        .add(util::quantile(placed_len, 0.9), 1)
        .add_sci(r_rent.energy.total())
        .add_sci(r_placed.energy.total())
        .add(r_rent.feasible && r_placed.feasible
                 ? r_rent.energy.total() / r_placed.energy.total()
                 : -1.0,
             2)
        .add(vdd_buf);
  }
  std::cout << table.to_text();
  std::printf(
      "\nThe a-priori model should track placed lengths within a small "
      "constant factor,\nand the optimizer's operating point (Vdd, energy) "
      "should be insensitive to the\nsubstitution — the paper's "
      "justification for optimizing before layout.\n");
  return 0;
}
