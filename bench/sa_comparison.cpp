// Reproduces the Section-5 simulated-annealing comparison.
//
// "We ran a simulated annealing based algorithm on the benchmark circuits.
//  Though we expect simulated annealing to return a near-optimal solution,
//  in most cases, we find that it does not perform as well as the proposed
//  heuristic ... the size of the optimization problem is too large for
//  annealing to converge in a practical amount of time."
//
// Both optimizers get an equalized circuit-evaluation budget; the ratio
// column should come out >= 1 on most circuits (annealing worse).
//
// Flags: --fc=<Hz>, --moves-scale=<x> (SA budget multiplier, default 1)
#include <cstdio>
#include <iostream>

#include "bench_suite/experiment.h"
#include "opt/eval_cache.h"
#include "opt/annealing_optimizer.h"
#include "opt/evaluator.h"
#include "opt/joint_optimizer.h"
#include "obs/session.h"
#include "util/cli.h"
#include "util/thread_pool.h"
#include "util/table.h"

using namespace minergy;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  // Evaluation engine knobs, shared by every driver: --threads=N
  // (0 = hardware concurrency; 1 = bit-exact serial path) and
  // --eval-cache=0/1 (memoized evaluator results, default on).
  util::set_global_threads(cli.get("threads", 0));
  opt::set_eval_cache_enabled(cli.get("eval-cache", 1) != 0);
  const obs::Session session(cli, "sa_comparison");
  bench_suite::ExperimentConfig cfg;
  cfg.clock_frequency = cli.get("fc", 300e6);
  const double moves_scale = cli.get("moves-scale", 1.0);

  std::printf("== Simulated annealing vs. the proposed heuristic "
              "(equal evaluation budget x%.1f) ==\n\n",
              moves_scale);

  util::Table table({"Circuit", "Heuristic E(J)", "Heur t(s)", "SA E(J)",
                     "SA feasible", "SA t(s)", "SA/Heuristic"});
  int sa_wins = 0, heuristic_wins = 0;
  for (const auto& spec : bench_suite::paper_circuits()) {
    const netlist::Netlist nl = bench_suite::make_circuit(spec);
    bool scaled = false;
    const double tc = bench_suite::choose_cycle_time(nl, cfg, &scaled);
    activity::ActivityProfile profile;
    profile.input_density = 0.5;
    const opt::CircuitEvaluator eval(nl, cfg.tech, profile,
                                     {.clock_frequency = 1.0 / tc});

    const opt::OptimizationResult joint =
        opt::JointOptimizer(eval, cfg.opts).run();
    opt::AnnealingOptions sa_opts;
    sa_opts.max_moves = static_cast<int>(
        moves_scale * static_cast<double>(joint.circuit_evaluations));
    const opt::OptimizationResult sa =
        opt::AnnealingOptimizer(eval, sa_opts).run();

    const double ratio =
        sa.feasible ? sa.energy.total() / joint.energy.total() : -1.0;
    if (sa.feasible && ratio < 1.0) {
      ++sa_wins;
    } else {
      ++heuristic_wins;
    }
    table.begin_row()
        .add(spec.name)
        .add_sci(joint.energy.total())
        .add(joint.runtime_seconds, 3)
        .add_sci(sa.feasible ? sa.energy.total() : 0.0)
        .add(sa.feasible ? "yes" : "NO")
        .add(sa.runtime_seconds, 3)
        .add(ratio, 2);
  }
  std::cout << table.to_text();
  std::printf("\nHeuristic no worse on %d/%d circuits "
              "(paper: heuristic wins in most cases).\n",
              heuristic_wins, heuristic_wins + sa_wins);
  return 0;
}
