// Ablation: number of distinct threshold voltages n_v (Section 2).
//
// "The number n_v >= 1 of distinct threshold voltages that are allowed by
//  the tolerable technology complexity is also specified. ... Increasing
//  the number of distinct threshold voltages incurs proportional escalation
//  of processing or design complexity."
//
// This bench quantifies what each extra threshold buys: total energy for
// n_v in {1, 2, 3} on every benchmark circuit.
#include <cstdio>
#include <iostream>

#include "bench_suite/experiment.h"
#include "opt/eval_cache.h"
#include "opt/evaluator.h"
#include "opt/joint_optimizer.h"
#include "obs/session.h"
#include "util/cli.h"
#include "util/thread_pool.h"
#include "util/table.h"

using namespace minergy;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  // Evaluation engine knobs, shared by every driver: --threads=N
  // (0 = hardware concurrency; 1 = bit-exact serial path) and
  // --eval-cache=0/1 (memoized evaluator results, default on).
  util::set_global_threads(cli.get("threads", 0));
  opt::set_eval_cache_enabled(cli.get("eval-cache", 1) != 0);
  const obs::Session session(cli, "ablation_multivth");
  bench_suite::ExperimentConfig cfg;
  cfg.clock_frequency = cli.get("fc", 300e6);

  std::printf("== Ablation: multiple threshold voltages (n_v = 1, 2, 3) "
              "==\n\n");
  util::Table table({"Circuit", "E(nv=1)", "E(nv=2)", "E(nv=3)",
                     "gain nv=2", "gain nv=3", "Vts set (mV, nv=3)"});
  for (const auto& spec : bench_suite::paper_circuits()) {
    const netlist::Netlist nl = bench_suite::make_circuit(spec);
    bool scaled = false;
    const double tc = bench_suite::choose_cycle_time(nl, cfg, &scaled);
    activity::ActivityProfile profile;
    profile.input_density = 0.5;
    const opt::CircuitEvaluator eval(nl, cfg.tech, profile,
                                     {.clock_frequency = 1.0 / tc});
    double energy[3] = {0, 0, 0};
    std::string vts_set;
    for (int nv = 1; nv <= 3; ++nv) {
      opt::OptimizerOptions opts = cfg.opts;
      opts.num_thresholds = nv;
      const opt::OptimizationResult r = opt::JointOptimizer(eval, opts).run();
      energy[nv - 1] = r.feasible ? r.energy.total() : -1.0;
      if (nv == 3) {
        for (double v : r.vts_groups) {
          if (!vts_set.empty()) vts_set += "/";
          char buf[16];
          std::snprintf(buf, sizeof buf, "%.0f", v * 1e3);
          vts_set += buf;
        }
      }
    }
    table.begin_row()
        .add(spec.name)
        .add_sci(energy[0])
        .add_sci(energy[1])
        .add_sci(energy[2])
        .add(energy[0] / energy[1], 3)
        .add(energy[0] / energy[2], 3)
        .add(vts_set);
  }
  std::cout << table.to_text();
  std::printf("\ngain = E(nv=1)/E(nv=k); values >= 1.0 show what the added "
              "process complexity buys.\n");
  return 0;
}
