// Activity-estimation accuracy ablation.
//
// Section 4.1: the paper propagates Najm transition densities, "a first
// order approximation to more complex transition density computation
// algorithms". This bench quantifies what that approximation costs:
//   * first-order (independence-assuming) densities,
//   * exact BDD-based Boolean-difference densities,
//   * Monte-Carlo settled-toggle measurement (ground truth at low input
//     density), and
//   * unit-delay glitch simulation (what zero-delay models cannot see),
// plus the impact of the estimator choice on the total dynamic energy.
#include <cstdio>
#include <iostream>

#include "activity/activity.h"
#include "activity/exact.h"
#include "bench_suite/iscas.h"
#include "sim/logic_sim.h"
#include "obs/session.h"
#include "opt/eval_cache.h"
#include "util/cli.h"
#include "util/thread_pool.h"
#include "util/rng.h"
#include "util/table.h"

using namespace minergy;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  // Evaluation engine knobs, shared by every driver: --threads=N
  // (0 = hardware concurrency; 1 = bit-exact serial path) and
  // --eval-cache=0/1 (memoized evaluator results, default on).
  util::set_global_threads(cli.get("threads", 0));
  opt::set_eval_cache_enabled(cli.get("eval-cache", 1) != 0);
  const obs::Session session(cli, "activity_accuracy");
  const double density = cli.get("activity", 0.1);
  const int cycles = cli.get("cycles", 40000);

  std::printf("== Activity-estimation accuracy (input density %.2f) ==\n\n",
              density);
  util::Table table({"Circuit", "sum D first", "sum D exact", "sum D MC",
                     "sum D glitch", "first/MC", "exact/MC", "glitch/MC"});

  for (const auto& spec : bench_suite::paper_circuits()) {
    const netlist::Netlist nl = bench_suite::make_circuit(spec);
    activity::ActivityProfile profile;
    profile.input_density = density;

    const auto first = activity::estimate_activity(nl, profile);
    double exact_sum = -1.0;
    try {
      const auto exact = activity::estimate_activity_exact(nl, profile);
      exact_sum = 0.0;
      for (netlist::GateId id : nl.combinational()) {
        exact_sum += exact.density[id];
      }
    } catch (const std::runtime_error&) {
      // BDD blow-up: fall through with the sentinel.
    }
    util::Rng r1(404), r2(404);
    const auto mc = sim::measure_activity(nl, profile, cycles, r1);
    const auto glitch = sim::measure_glitch_activity(nl, profile, cycles, r2);

    double first_sum = 0.0, mc_sum = 0.0, glitch_sum = 0.0;
    for (netlist::GateId id : nl.combinational()) {
      first_sum += first.density[id];
      mc_sum += mc.density[id];
      glitch_sum += glitch.density[id];
    }
    table.begin_row()
        .add(spec.name)
        .add(first_sum, 3)
        .add(exact_sum, 3)
        .add(mc_sum, 3)
        .add(glitch_sum, 3)
        .add(first_sum / mc_sum, 3)
        .add(exact_sum > 0.0 ? exact_sum / mc_sum : -1.0, 3)
        .add(glitch_sum / mc_sum, 3);
  }
  std::cout << table.to_text();
  std::printf(
      "\nfirst/MC > 1: the independence assumption overestimates switching "
      "on reconvergent logic.\nexact/MC ~ 1 at low density (residual gap = "
      "simultaneous-switching, O(d^2)).\nglitch/MC > 1: hazards the "
      "zero-delay energy model does not charge for.\n");
  return 0;
}
