// Reproduces Figure 2(b): "Power Savings Considering Clock Skew" — the role
// of available cycle-time slack in the achievable savings.
//
// The Table-1 baseline stays pinned at the nominal cycle time while the
// joint optimizer is granted progressively relaxed constraints
// T_c' = slack * T_c. The paper's shape: savings grow with slack (extra
// timing headroom converts into deeper supply scaling).
//
// Flags: --circuit=<name> (default s298*), --fc=<Hz>, --csv
#include <cstdio>
#include <iostream>

#include "bench_suite/experiment.h"
#include "opt/eval_cache.h"
#include "opt/slack_sweep.h"
#include "obs/session.h"
#include "util/cli.h"
#include "util/thread_pool.h"
#include "util/table.h"

using namespace minergy;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  // Evaluation engine knobs, shared by every driver: --threads=N
  // (0 = hardware concurrency; 1 = bit-exact serial path) and
  // --eval-cache=0/1 (memoized evaluator results, default on).
  util::set_global_threads(cli.get("threads", 0));
  opt::set_eval_cache_enabled(cli.get("eval-cache", 1) != 0);
  const obs::Session session(cli, "fig2b_slack");
  const std::string circuit = cli.get("circuit", std::string("s298*"));
  const double requested_fc = cli.get("fc", 300e6);

  const netlist::Netlist nl = bench_suite::make_circuit(circuit);
  bench_suite::ExperimentConfig cfg;
  cfg.clock_frequency = requested_fc;
  bool scaled = false;
  const double tc = bench_suite::choose_cycle_time(nl, cfg, &scaled);

  activity::ActivityProfile profile;
  profile.input_density = 0.5;

  std::printf("== Figure 2(b): power savings vs. cycle-time slack "
              "(%s, nominal Tc = %.3f ns%s) ==\n\n",
              circuit.c_str(), tc * 1e9, scaled ? ", scaled" : "");

  const opt::SlackSweep sweep(nl, cfg.tech, profile, 1.0 / tc, cfg.opts);
  const std::vector<double> slack = {1.0, 1.25, 1.5, 2.0, 2.5, 3.0};
  util::Table table({"Slack (Tc'/Tc)", "Joint Vdd(V)", "Joint Vts(mV)",
                     "Joint E(J)", "Baseline E(J)", "Savings"});
  for (const auto& p : sweep.sweep(slack)) {
    table.begin_row()
        .add(p.slack_factor, 2)
        .add(p.joint.vdd, 3)
        .add(p.joint.vts_primary * 1e3, 0)
        .add_sci(p.joint.energy.total())
        .add_sci(p.baseline_energy)
        .add(p.savings, 2);
  }
  std::cout << (cli.get("csv", false) ? table.to_csv() : table.to_text());
  std::printf("\nPaper shape: savings increase with available slack.\n");
  return 0;
}
