// Ablation: netlist structure vs. optimization outcome.
//
// The delay model charges an n-input gate a series-stack factor of n
// (Appendix A.2) and the budgeter weights gates by fanout; both suggest
// structural rewrites could help:
//   * decompose_to_two_input — removes stack penalties, adds logic depth,
//   * buffer_high_fanout     — caps net loads, adds buffer energy.
// This bench optimizes each variant of every benchmark circuit under the
// identical cycle-time constraint.
#include <cstdio>
#include <iostream>

#include "bench_suite/experiment.h"
#include "netlist/stats.h"
#include "netlist/transform.h"
#include "opt/eval_cache.h"
#include "opt/evaluator.h"
#include "opt/joint_optimizer.h"
#include "obs/session.h"
#include "util/cli.h"
#include "util/thread_pool.h"
#include "util/table.h"

using namespace minergy;

namespace {

double optimize(const netlist::Netlist& nl,
                const bench_suite::ExperimentConfig& cfg, double tc,
                double* vdd) {
  activity::ActivityProfile profile;
  profile.input_density = 0.5;
  const opt::CircuitEvaluator eval(nl, cfg.tech, profile,
                                   {.clock_frequency = 1.0 / tc});
  const opt::OptimizationResult r = opt::JointOptimizer(eval, cfg.opts).run();
  if (vdd) *vdd = r.vdd;
  return r.feasible ? r.energy.total() : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  // Evaluation engine knobs, shared by every driver: --threads=N
  // (0 = hardware concurrency; 1 = bit-exact serial path) and
  // --eval-cache=0/1 (memoized evaluator results, default on).
  util::set_global_threads(cli.get("threads", 0));
  opt::set_eval_cache_enabled(cli.get("eval-cache", 1) != 0);
  const obs::Session session(cli, "ablation_structure");
  bench_suite::ExperimentConfig cfg;
  cfg.clock_frequency = cli.get("fc", 300e6);

  std::printf("== Ablation: 2-input decomposition and fanout buffering "
              "==\n\n");
  util::Table table({"Circuit", "gates", "E original", "gates 2-in",
                     "E 2-input", "2in/orig", "gates buf", "E buffered",
                     "buf/orig"});
  for (const auto& spec : bench_suite::paper_circuits()) {
    const netlist::Netlist nl = bench_suite::make_circuit(spec);
    bool scaled = false;
    const double tc = bench_suite::choose_cycle_time(nl, cfg, &scaled);

    const netlist::Netlist two = netlist::decompose_to_two_input(nl);
    const netlist::Netlist buffered = netlist::buffer_high_fanout(nl, 4);

    const double e0 = optimize(nl, cfg, tc, nullptr);
    const double e2 = optimize(two, cfg, tc, nullptr);
    const double eb = optimize(buffered, cfg, tc, nullptr);
    table.begin_row()
        .add(spec.name)
        .add(nl.num_combinational())
        .add_sci(e0)
        .add(two.num_combinational())
        .add_sci(e2)
        .add(e2 > 0 && e0 > 0 ? e2 / e0 : -1.0, 3)
        .add(buffered.num_combinational())
        .add_sci(eb)
        .add(eb > 0 && e0 > 0 ? eb / e0 : -1.0, 3);
  }
  std::cout << table.to_text();
  std::printf(
      "\nRatios < 1 mean the rewrite saves energy at equal cycle time.\n"
      "Decomposition trades the stack-factor drive penalty for extra gates "
      "and depth;\nbuffering trades load isolation for added switching "
      "energy.\n");
  return 0;
}
