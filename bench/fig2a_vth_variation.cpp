// Reproduces Figure 2(a): "Power Savings Considering Vth Fluctuations".
//
// The joint optimizer reruns with worst-case threshold corners (delay at
// Vts*(1+x), leakage at Vts*(1-x)) for increasing tolerated variation x;
// the guaranteed worst-case power is compared against the nominal Table-1
// baseline. The paper's shape: savings shrink monotonically as the process
// tolerance band widens.
//
// Flags: --circuit=<name> (default s298*), --fc=<Hz>, --csv
#include <cstdio>
#include <iostream>

#include "bench_suite/experiment.h"
#include "opt/eval_cache.h"
#include "opt/variation.h"
#include "obs/session.h"
#include "util/cli.h"
#include "util/thread_pool.h"
#include "util/table.h"

using namespace minergy;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  // Evaluation engine knobs, shared by every driver: --threads=N
  // (0 = hardware concurrency; 1 = bit-exact serial path) and
  // --eval-cache=0/1 (memoized evaluator results, default on).
  util::set_global_threads(cli.get("threads", 0));
  opt::set_eval_cache_enabled(cli.get("eval-cache", 1) != 0);
  const obs::Session session(cli, "fig2a_vth_variation");
  const std::string circuit = cli.get("circuit", std::string("s298*"));
  const double requested_fc = cli.get("fc", 300e6);

  const netlist::Netlist nl = bench_suite::make_circuit(circuit);
  bench_suite::ExperimentConfig cfg;
  cfg.clock_frequency = requested_fc;
  bool scaled = false;
  const double tc = bench_suite::choose_cycle_time(nl, cfg, &scaled);

  activity::ActivityProfile profile;
  profile.input_density = 0.5;

  std::printf("== Figure 2(a): power savings vs. Vts process variation "
              "(%s, Tc = %.3f ns%s) ==\n\n",
              circuit.c_str(), tc * 1e9, scaled ? ", scaled" : "");

  const opt::VariationAnalyzer analyzer(nl, cfg.tech, profile, 1.0 / tc,
                                        cfg.opts);
  const std::vector<double> tolerances = {0.0,  0.05, 0.10, 0.15,
                                          0.20, 0.25, 0.30};
  util::Table table({"Vts variation (+/-%)", "Joint Vdd(V)", "Joint Vts(mV)",
                     "Worst-case E(J)", "Baseline E(J)", "Savings"});
  for (const auto& p : analyzer.sweep(tolerances)) {
    table.begin_row()
        .add(p.tolerance * 100.0, 0)
        .add(p.joint.vdd, 3)
        .add(p.joint.vts_primary * 1e3, 0)
        .add_sci(p.joint.energy.total())
        .add_sci(p.baseline_energy)
        .add(p.savings, 2);
  }
  std::cout << (cli.get("csv", false) ? table.to_csv() : table.to_text());
  std::printf("\nPaper shape: savings decrease as the tolerated variation "
              "grows.\n");
  return 0;
}
