// Ablation: the paper's "flexibility" extensions.
//
//  1. Dual supply voltages (Section 4: "we retain the flexibility to use
//     more than one threshold or power supply voltage if desired"):
//     clustered voltage scaling on top of the single-supply optimum.
//  2. Energy-delay product as the objective (Section 1, the Burr/Shott
//     alternative when no hard clock exists): where the EDP optimum sits
//     relative to the paper's fixed-f_c optimum.
#include <cstdio>
#include <iostream>

#include "bench_suite/experiment.h"
#include "opt/eval_cache.h"
#include "opt/edp.h"
#include "opt/evaluator.h"
#include "opt/multi_vdd.h"
#include "obs/session.h"
#include "util/cli.h"
#include "util/thread_pool.h"
#include "util/table.h"

using namespace minergy;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  // Evaluation engine knobs, shared by every driver: --threads=N
  // (0 = hardware concurrency; 1 = bit-exact serial path) and
  // --eval-cache=0/1 (memoized evaluator results, default on).
  util::set_global_threads(cli.get("threads", 0));
  opt::set_eval_cache_enabled(cli.get("eval-cache", 1) != 0);
  const obs::Session session(cli, "ablation_multivdd_edp");
  bench_suite::ExperimentConfig cfg;
  cfg.clock_frequency = cli.get("fc", 300e6);

  std::printf("== Dual-Vdd (clustered voltage scaling) on the joint optimum "
              "==\n\n");
  util::Table dual({"Circuit", "Vdd high", "Vdd low", "low-domain gates",
                    "E single", "E dual", "extra savings"});
  for (const auto& spec : bench_suite::paper_circuits()) {
    const netlist::Netlist nl = bench_suite::make_circuit(spec);
    bool scaled = false;
    const double tc = bench_suite::choose_cycle_time(nl, cfg, &scaled);
    activity::ActivityProfile profile;
    profile.input_density = 0.5;
    const opt::CircuitEvaluator eval(nl, cfg.tech, profile,
                                     {.clock_frequency = 1.0 / tc});
    opt::MultiVddOptions opts;
    opts.base = cfg.opts;
    const opt::MultiVddResult r = opt::MultiVddOptimizer(eval, opts).run();
    dual.begin_row()
        .add(spec.name)
        .add(r.vdd_high, 3)
        .add(r.improved ? r.vdd_low : r.vdd_high, 3)
        .add(r.low_count)
        .add_sci(r.single.energy.total())
        .add_sci(r.energy.total())
        .add(r.savings_vs_single(), 3);
  }
  std::cout << dual.to_text();

  std::printf("\n== Energy-delay-product objective (one circuit sweep) "
              "==\n\n");
  const std::string circuit = cli.get("circuit", std::string("s298*"));
  const netlist::Netlist nl = bench_suite::make_circuit(circuit);
  activity::ActivityProfile profile;
  profile.input_density = 0.5;
  opt::EdpOptions eopts;
  eopts.base = cfg.opts;
  const opt::EdpResult r =
      opt::minimize_energy_delay_product(nl, cfg.tech, profile, eopts);
  util::Table sweep({"Tc (ns)", "E (J)", "crit delay (ns)", "EDP (J*s)"});
  for (const auto& p : r.sweep) {
    if (!p.feasible) {
      sweep.begin_row().add(p.cycle_time * 1e9, 3).add("infeasible").add("-")
          .add("-");
      continue;
    }
    sweep.begin_row()
        .add(p.cycle_time * 1e9, 3)
        .add_sci(p.energy)
        .add(p.critical_delay * 1e9, 3)
        .add_sci(p.edp);
  }
  std::cout << sweep.to_text();
  std::printf("\n%s EDP optimum: Tc = %.3f ns, Vdd = %.3f V, Vts = %.0f mV, "
              "EDP = %.3e J*s\n(the interior minimum: pushing slower "
              "keeps cutting energy but leakage-per-cycle\nand delay grow "
              "faster).\n",
              circuit.c_str(), r.cycle_time * 1e9, r.best.vdd,
              r.best.vts_primary * 1e3, r.edp);
  return 0;
}
