// Sign-off analysis of the optimized designs: parametric yield and hold
// safety — the two checks a low-Vt, low-Vdd methodology must survive
// before the paper's savings are bankable in silicon.
//
//  * Yield: per-gate (sigma_gate) + die-to-die (sigma_die) threshold noise;
//    reports timing yield and the leakage distribution's mean/p95 (the
//    exponential Ioff(Vt) makes it heavy-tailed).
//  * Hold: shortest register-to-register path vs. the skew budget
//    (1 - b) * Tc the max-delay side reserved.
#include <cstdio>
#include <iostream>

#include "bench_suite/experiment.h"
#include "opt/eval_cache.h"
#include "opt/evaluator.h"
#include "opt/joint_optimizer.h"
#include "opt/yield.h"
#include "timing/sta.h"
#include "obs/session.h"
#include "util/cli.h"
#include "util/thread_pool.h"
#include "util/table.h"

using namespace minergy;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  // Evaluation engine knobs, shared by every driver: --threads=N
  // (0 = hardware concurrency; 1 = bit-exact serial path) and
  // --eval-cache=0/1 (memoized evaluator results, default on).
  util::set_global_threads(cli.get("threads", 0));
  opt::set_eval_cache_enabled(cli.get("eval-cache", 1) != 0);
  const obs::Session session(cli, "signoff_analysis");
  bench_suite::ExperimentConfig cfg;
  cfg.clock_frequency = cli.get("fc", 300e6);
  const double sigma_gate = cli.get("sigma-gate", 0.010);
  const double sigma_die = cli.get("sigma-die", 0.015);
  const int samples = cli.get("samples", 150);

  std::printf("== Sign-off: parametric yield (sigma_gate=%.0f mV, "
              "sigma_die=%.0f mV, %d die) and hold ==\n\n",
              sigma_gate * 1e3, sigma_die * 1e3, samples);
  util::Table table({"Circuit", "timing yield", "mean E(J)", "p95 E(J)",
                     "p95/nom leak", "hold path (ps)", "skew budget (ps)",
                     "hold safe"});
  for (const auto& spec : bench_suite::paper_circuits()) {
    const netlist::Netlist nl = bench_suite::make_circuit(spec);
    bool scaled = false;
    const double tc = bench_suite::choose_cycle_time(nl, cfg, &scaled);
    activity::ActivityProfile profile;
    profile.input_density = 0.5;
    const opt::CircuitEvaluator eval(nl, cfg.tech, profile,
                                     {.clock_frequency = 1.0 / tc});
    const opt::OptimizationResult r =
        opt::JointOptimizer(eval, cfg.opts).run();
    if (!r.feasible) continue;

    opt::YieldOptions yopts;
    yopts.samples = samples;
    yopts.sigma_gate = sigma_gate;
    yopts.sigma_die = sigma_die;
    const opt::YieldResult y = opt::YieldAnalyzer(eval, yopts).analyze(r.state);

    const timing::MinTimingReport hold = timing::run_min_sta(
        eval.delay_calculator(), r.state.widths, r.vdd, r.state.vts);
    const double skew_budget = (1.0 - cfg.opts.skew_b) * tc;

    table.begin_row()
        .add(spec.name)
        .add(y.timing_yield, 3)
        .add_sci(y.mean_energy)
        .add_sci(y.p95_energy)
        .add(y.p95_leakage / r.energy.static_energy, 2)
        .add(hold.shortest_delay * 1e12, 1)
        .add(skew_budget * 1e12, 1)
        .add(timing::hold_safe(hold, skew_budget) ? "yes" : "NO");
  }
  std::cout << table.to_text();
  std::printf(
      "\nA nominal-corner optimum sits exactly on the timing wall, so "
      "roughly half the die\n(plus the leakage tail) miss timing under "
      "threshold noise — this is precisely the\nexposure Figure 2a's "
      "worst-case guardbanding buys out of (rerun the optimizer with\n"
      "EvalSettings::vts_tolerance to trade energy for yield). A 'NO' in "
      "the hold column\nmarks designs whose shortest register-to-register "
      "path undercuts the skew budget\nand would receive hold buffers in a "
      "production flow.\n");
  return 0;
}
