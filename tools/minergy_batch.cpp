// minergy_batch: crash-safe batch driver for the optimizer portfolio.
//
// Runs each circuit of a suite in its own subprocess (a crash, hang or
// NaN-storm in one netlist cannot take the batch down), certifies every
// result independently (opt/certifier.h), retries failed attempts with
// perturbed seeds under exponential backoff, and quarantines circuits that
// exhaust their retries. The machine-readable report (schema
// minergy.batch_report.v1) records every attempt, the per-circuit
// certificates, and the quarantine list.
//
//   $ minergy_batch --circuits=s27,s298*,s344* --report=batch.json
//   $ minergy_batch --circuits=s27 --optimizers=robust,anneal --timeout=60
//   $ minergy_batch --verify-report=batch.json --expect-quarantined=s420*
//
// Flags (batch mode):
//   --circuits=A,B,...    suite to run (default s27,s298*,s344*)
//   --optimizers=K,...    portfolio per circuit: robust | joint | baseline |
//                         anneal (default robust)
//   --fc=HZ --activity=D  experiment knobs (defaults 300e6, 0.3)
//   --seed=S              base seed; retries perturb it (default 1)
//   --retries=N           extra attempts after the first (default 2)
//   --timeout=SECONDS     per-attempt wall clock (default 300)
//   --backoff=SECONDS     base backoff; attempt k sleeps backoff * 2^(k-1)
//                         (default 0.5)
//   --report=FILE         batch report JSON (default minergy_batch.json)
//   --inject-hang=NAME    test hook: the worker for NAME sleeps forever,
//                         exercising timeout -> retry -> quarantine
//
// Verification mode (for CI): --verify-report=FILE validates the schema and
// that every non-quarantined circuit is feasible AND certified;
// --expect-quarantined=NAME additionally requires NAME on the quarantine
// list; --min-circuits=N requires at least N circuit entries;
// --allow-interrupted accepts a report flushed by an interrupted batch.
//
// SIGTERM/SIGINT interrupt the batch gracefully: the in-flight worker is
// killed and reaped, the report is still flushed (valid schema, top-level
// "interrupted": true, the cut-short circuit marked status "interrupted"),
// and the process exits with the distinct code 3.
//
// Exit codes: 0 success (quarantines alone do not fail the batch),
// 1 a completed result is infeasible/uncertified or verification failed,
// 2 bad arguments / unreadable input, 3 interrupted by SIGTERM/SIGINT.
#include <sys/types.h>
#include <sys/wait.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "activity/activity.h"
#include "bench_suite/experiment.h"
#include "bench_suite/iscas.h"
#include "obs/metrics.h"
#include "obs/session.h"
#include "obs/trace.h"
#include "opt/annealing_optimizer.h"
#include "opt/baseline_optimizer.h"
#include "opt/eval_cache.h"
#include "opt/certifier.h"
#include "opt/evaluator.h"
#include "opt/joint_optimizer.h"
#include "opt/robust_optimizer.h"
#include "io/envelope.h"
#include "util/checkpoint.h"
#include "util/cli.h"
#include "util/thread_pool.h"
#include "util/json.h"
#include "util/rng.h"

using namespace minergy;

namespace {

constexpr const char* kReportSchema = "minergy.batch_report.v1";
constexpr const char* kWorkerSchema = "minergy.batch_worker.v1";

constexpr const char* kUsage =
    "usage: minergy_batch [--circuits=A,B,...] [--optimizers=K,...]\n"
    "                     [--seed=S] [--retries=N] [--timeout=S]\n"
    "                     [--backoff=S] [--fc=HZ] [--activity=D]\n"
    "                     [--report=FILE] [--inject-hang=NAME]\n"
    "                     [--threads=N] [--eval-cache=0|1]\n"
    "       minergy_batch --verify-report=FILE [--min-circuits=N]\n"
    "                     [--expect-quarantined=NAME] [--allow-interrupted]\n"
    "  exit codes: 0 ok, 1 validation failure, 2 usage error,\n"
    "              3 interrupted (SIGTERM/SIGINT; partial report flushed)\n";

// Set from the SIGTERM/SIGINT handler; polled by the babysitting loop and
// between attempts so the batch stops at the next safe point, kills and
// reaps the in-flight worker, and still flushes a valid (partial) report.
volatile std::sig_atomic_t g_interrupt_requested = 0;

void on_interrupt_signal(int) { g_interrupt_requested = 1; }

void install_interrupt_handlers() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = on_interrupt_signal;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
}

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

void sleep_seconds(double s) {
  std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

// ----------------------------------------------------------------- worker

// Child process: optimize one circuit, certify, write the result file.
// Exit 0 when the result file was written (feasibility and certification
// ride in the file; the parent judges them), nonzero on any error.
int run_worker(const util::Cli& cli) {
  const std::string circuit = cli.get("circuit", std::string());
  const std::string out_path = cli.get("out", std::string());
  const std::string kind = cli.get("optimizer", std::string("robust"));
  if (circuit.empty() || out_path.empty()) {
    std::fprintf(stderr, "worker: --circuit and --out are required\n");
    return 2;
  }
  if (cli.get("inject-hang", std::string()) == circuit) {
    // Test hook: simulate a wedged optimization so the parent's timeout,
    // retry and quarantine paths can be exercised quickly and reliably.
    sleep_seconds(3600.0);
    return 1;
  }

  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get("seed", 1.0));
  netlist::Netlist nl = bench_suite::make_circuit(circuit);
  bench_suite::ExperimentConfig cfg;
  cfg.clock_frequency = cli.get("fc", 300e6);
  bool tc_scaled = false;
  const double tc = bench_suite::choose_cycle_time(nl, cfg, &tc_scaled);

  opt::EvalSettings settings;
  settings.clock_frequency = 1.0 / tc;
  activity::ActivityProfile profile;
  profile.input_density = cli.get("activity", 0.3);
  const opt::CircuitEvaluator eval(nl, cfg.tech, profile, settings);

  opt::OptimizationResult result;
  double skew_b = 0.95;
  if (kind == "robust") {
    opt::RobustOptions ropts;
    result = opt::RobustOptimizer(eval, ropts).run();
    skew_b = ropts.joint.skew_b;
  } else if (kind == "joint") {
    opt::OptimizerOptions opts;
    result = opt::JointOptimizer(eval, opts).run();
    skew_b = opts.skew_b;
  } else if (kind == "baseline") {
    opt::OptimizerOptions opts;
    result = opt::BaselineOptimizer(eval, opts).run();
    skew_b = opts.skew_b;
  } else if (kind == "anneal") {
    const opt::OptimizationResult warm =
        opt::BaselineOptimizer(eval, {}).run();
    opt::AnnealingOptions aopts;
    aopts.seed = seed;
    result = opt::AnnealingOptimizer(eval, aopts)
                 .run(warm.feasible ? warm.state : opt::CircuitState{});
    skew_b = aopts.skew_b;
  } else {
    std::fprintf(stderr, "worker: unknown --optimizer=%s\n", kind.c_str());
    return 2;
  }

  // Independent certification; the RobustOptimizer certifies internally but
  // the batch report wants the certificate for every portfolio member.
  opt::CertifyOptions copts;
  copts.skew_b = skew_b;
  const opt::Certificate cert = opt::Certifier(eval, copts).certify(result);

  util::JsonWriter w(2);
  w.begin_object();
  w.kv("schema", kWorkerSchema);
  w.kv("circuit", circuit);
  w.kv("optimizer", kind);
  w.kv("seed", static_cast<double>(seed));
  w.kv("feasible", result.feasible);
  w.kv("certified", cert.certified);
  w.kv("tier", opt::to_string(result.tier));
  w.kv("truncated", result.truncated);
  w.kv("vdd", result.vdd);
  w.kv("vts_primary", result.vts_primary);
  w.kv("energy_total", result.energy.total());
  w.kv("static_energy", result.energy.static_energy);
  w.kv("dynamic_energy", result.energy.dynamic_energy);
  w.kv("critical_delay", result.critical_delay);
  w.kv("cycle_time", tc);
  w.kv("tc_scaled", tc_scaled);
  w.kv("circuit_evaluations", result.circuit_evaluations);
  w.kv("runtime_seconds", result.runtime_seconds);
  w.key("certificate");
  util::emit(w, util::JsonValue::parse(cert.to_json(0), "<certificate>"));
  w.end_object();
  // Atomic, fsynced, CRC-footed drop: the parent never sees a half-written
  // result file, even if this worker is SIGKILLed mid-write — and a torn or
  // bit-rotted file is rejected at read time, not trusted.
  io::write_artifact(out_path, kWorkerSchema, w.str() + "\n");
  return 0;
}

// ------------------------------------------------------------------ parent

struct Attempt {
  std::uint64_t seed = 0;
  std::string outcome;  // "ok" | "timeout" | "crash" | "error"
  int exit_code = 0;
  double wall_seconds = 0.0;
  double backoff_seconds = 0.0;  // slept before this attempt
};

struct CircuitRun {
  std::string circuit;
  std::string optimizer;
  std::string status;  // "ok" | "quarantined"
  std::vector<Attempt> attempts;
  std::string result_json;  // worker payload when status == "ok"
};

// Launches one worker and babysits it against the wall-clock timeout.
Attempt run_attempt(const std::string& self, const util::Cli& cli,
                    const std::string& circuit, const std::string& optimizer,
                    std::uint64_t seed, double timeout_s,
                    const std::string& out_path) {
  Attempt a;
  a.seed = seed;
  std::remove(out_path.c_str());

  std::vector<std::string> args = {
      self,
      "--worker",
      "--circuit=" + circuit,
      "--optimizer=" + optimizer,
      "--seed=" + std::to_string(seed),
      "--out=" + out_path,
      "--fc=" + std::to_string(cli.get("fc", 300e6)),
      "--activity=" + std::to_string(cli.get("activity", 0.3)),
      "--threads=" + std::to_string(cli.get("threads", 0)),
      "--eval-cache=" + std::to_string(cli.get("eval-cache", 1)),
  };
  const std::string hang = cli.get("inject-hang", std::string());
  if (!hang.empty()) args.push_back("--inject-hang=" + hang);
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& s : args) argv.push_back(s.data());
  argv.push_back(nullptr);

  const auto t0 = std::chrono::steady_clock::now();
  const pid_t pid = fork();
  if (pid < 0) {
    a.outcome = "error";
    a.exit_code = -1;
    return a;
  }
  if (pid == 0) {
    execv(self.c_str(), argv.data());
    std::fprintf(stderr, "exec failed: %s\n", std::strerror(errno));
    _exit(127);
  }

  int status = 0;
  for (;;) {
    const pid_t r = waitpid(pid, &status, WNOHANG);
    if (r == pid) break;
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (g_interrupt_requested) {
      // Graceful interruption: never leave an orphaned worker computing.
      kill(pid, SIGKILL);
      waitpid(pid, &status, 0);  // reap
      a.outcome = "interrupted";
      a.exit_code = -SIGTERM;
      a.wall_seconds = elapsed;
      obs::counter("batch.interrupted").add();
      return a;
    }
    if (elapsed > timeout_s) {
      kill(pid, SIGKILL);
      waitpid(pid, &status, 0);  // reap
      a.outcome = "timeout";
      a.exit_code = -SIGKILL;
      a.wall_seconds = elapsed;
      obs::counter("batch.timeouts").add();
      return a;
    }
    sleep_seconds(0.01);
  }
  a.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (WIFSIGNALED(status)) {
    a.outcome = "crash";
    a.exit_code = -WTERMSIG(status);
    obs::counter("batch.crashes").add();
  } else if (WEXITSTATUS(status) != 0) {
    a.outcome = "error";
    a.exit_code = WEXITSTATUS(status);
  } else {
    a.outcome = "ok";
    a.exit_code = 0;
  }
  return a;
}

void emit_report(const std::string& path,
                 const std::vector<CircuitRun>& runs, double total_wall,
                 bool interrupted) {
  util::JsonWriter w(2);
  w.begin_object();
  w.kv("schema", kReportSchema);
  w.kv("total_wall_seconds", total_wall);
  w.kv("interrupted", interrupted);
  w.key("circuits").begin_array();
  for (const CircuitRun& run : runs) {
    w.begin_object();
    w.kv("circuit", run.circuit);
    w.kv("optimizer", run.optimizer);
    w.kv("status", run.status);
    w.key("attempts").begin_array();
    for (const Attempt& a : run.attempts) {
      w.begin_object();
      w.kv("seed", static_cast<double>(a.seed));
      w.kv("outcome", a.outcome);
      w.kv("exit_code", a.exit_code);
      w.kv("wall_seconds", a.wall_seconds);
      w.kv("backoff_seconds", a.backoff_seconds);
      w.end_object();
    }
    w.end_array();
    if (!run.result_json.empty()) {
      w.key("result");
      util::emit(w, util::JsonValue::parse(run.result_json, "<worker>"));
    }
    w.end_object();
  }
  w.end_array();
  w.key("quarantined").begin_array();
  for (const CircuitRun& run : runs) {
    if (run.status == "quarantined") w.value(run.circuit);
  }
  w.end_array();
  w.end_object();
  io::write_artifact(path, kReportSchema, w.str() + "\n");
}

int run_batch(const std::string& self, const util::Cli& cli) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<std::string> circuits =
      split_list(cli.get("circuits", std::string("s27,s298*,s344*")));
  const std::vector<std::string> optimizers =
      split_list(cli.get("optimizers", std::string("robust")));
  if (circuits.empty() || optimizers.empty()) {
    std::fprintf(stderr, "error: empty --circuits or --optimizers\n");
    return 2;
  }
  const std::uint64_t base_seed =
      static_cast<std::uint64_t>(cli.get("seed", 1.0));
  const int retries = cli.get("retries", 2);
  const double timeout_s = cli.get("timeout", 300.0);
  const double backoff_s = cli.get("backoff", 0.5);
  const std::string report_path =
      cli.get("report", std::string("minergy_batch.json"));
  const std::string scratch = report_path + ".worker.tmp";

  install_interrupt_handlers();
  std::vector<CircuitRun> runs;
  bool any_bad_result = false;
  for (const std::string& circuit : circuits) {
    if (g_interrupt_requested) break;
    for (const std::string& optimizer : optimizers) {
      if (g_interrupt_requested) break;
      const obs::Span span("batch.circuit");
      obs::Tracer::instance().instant("batch.start", circuit);
      CircuitRun run;
      run.circuit = circuit;
      run.optimizer = optimizer;
      // Attempt seeds are decorrelated per (circuit, attempt): a retry is a
      // genuinely different stochastic run, not the same failure replayed.
      constexpr std::uint64_t kFnvPrime = 1099511628211ULL;
      std::uint64_t name_hash = 1469598103934665603ULL;
      for (const char c : circuit) {
        name_hash =
            (name_hash ^ static_cast<unsigned char>(c)) * kFnvPrime;
      }
      for (int attempt = 0; attempt <= retries; ++attempt) {
        if (g_interrupt_requested) break;
        obs::counter("batch.attempts").add();
        std::uint64_t seed = base_seed;
        double backoff = 0.0;
        if (attempt > 0) {
          seed = util::hash_mix(base_seed ^ name_hash ^
                                static_cast<std::uint64_t>(attempt));
          backoff = backoff_s * static_cast<double>(1 << (attempt - 1));
          obs::counter("batch.retries").add();
          std::fprintf(stderr,
                       "batch: retrying %s/%s (attempt %d, seed %llu) after "
                       "%.2f s backoff\n",
                       circuit.c_str(), optimizer.c_str(), attempt + 1,
                       static_cast<unsigned long long>(seed), backoff);
          sleep_seconds(backoff);
        }
        Attempt a = run_attempt(self, cli, circuit, optimizer, seed,
                                timeout_s, scratch);
        a.backoff_seconds = backoff;
        const bool ok = a.outcome == "ok";
        run.attempts.push_back(a);
        if (a.outcome == "interrupted") break;
        if (ok) {
          try {
            run.result_json = io::read_artifact(scratch, kWorkerSchema);
            run.status = "ok";
            break;
          } catch (const io::IntegrityError& e) {
            // The worker exited 0 but its result file fails verification
            // (torn write, bit rot): treat the attempt as an error and let
            // the normal retry schedule re-run it.
            obs::counter("batch.corrupt_results").add();
            run.attempts.back().outcome = "error";
            std::fprintf(stderr, "batch: corrupt result for %s/%s: %s\n",
                         circuit.c_str(), optimizer.c_str(), e.what());
          }
        }
      }
      if (run.status.empty() && g_interrupt_requested) {
        // Cut short by SIGTERM/SIGINT, not a failure of the circuit itself.
        run.status = "interrupted";
        std::fprintf(stderr, "batch: interrupted during %s/%s\n",
                     circuit.c_str(), optimizer.c_str());
      } else if (run.status.empty()) {
        run.status = "quarantined";
        obs::counter("batch.quarantines").add();
        obs::Tracer::instance().instant("batch.quarantined", circuit);
        std::fprintf(stderr, "batch: QUARANTINED %s/%s after %zu attempts\n",
                     circuit.c_str(), optimizer.c_str(),
                     run.attempts.size());
      } else {
        const util::JsonValue res =
            util::JsonValue::parse(run.result_json, "<worker>");
        const bool feasible = res.get_bool("feasible", false);
        const bool certified = res.get_bool("certified", false);
        if (!feasible || !certified) any_bad_result = true;
        std::printf("%-8s %-9s %-6s E %.4g J/cycle  tier %-11s %s\n",
                    circuit.c_str(), optimizer.c_str(),
                    feasible ? "ok" : "INFEAS",
                    res.get_number("energy_total", 0.0),
                    res.get_string("tier", "?").c_str(),
                    certified ? "certified" : "UNCERTIFIED");
      }
      runs.push_back(std::move(run));
    }
  }
  std::remove(scratch.c_str());

  const double total_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const bool interrupted = g_interrupt_requested != 0;
  emit_report(report_path, runs, total_wall, interrupted);
  std::size_t quarantined = 0;
  for (const CircuitRun& r : runs) {
    if (r.status == "quarantined") ++quarantined;
  }
  std::printf("batch: %zu run(s), %zu quarantined%s, report %s\n",
              runs.size(), quarantined, interrupted ? ", INTERRUPTED" : "",
              report_path.c_str());
  // Quarantine is a contained failure (reported, not fatal); a completed
  // but infeasible/uncertified result is a wrong answer and fails the batch.
  if (any_bad_result) return 1;
  return interrupted ? 3 : 0;
}

// ------------------------------------------------------------ verification

int verify_report(const util::Cli& cli) {
  const std::string path = cli.get("verify-report", std::string());
  std::string text;
  try {
    text = io::read_artifact(path, kReportSchema);
  } catch (const io::IntegrityError& e) {
    // The file exists but its envelope fails: that is a verdict about the
    // report's content (exit 1), not a caller mistake (exit 2).
    std::fprintf(stderr, "verify: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  try {
    const util::JsonValue root = util::JsonValue::parse(text, path);
    if (root.get_string("schema", "") != kReportSchema) {
      std::fprintf(stderr, "verify: bad schema '%s'\n",
                   root.get_string("schema", "").c_str());
      return 1;
    }
    const auto& circuits = root.at("circuits").items();
    const int min_circuits = cli.get("min-circuits", 1);
    if (circuits.size() < static_cast<std::size_t>(min_circuits)) {
      std::fprintf(stderr, "verify: only %zu circuit entries (need %d)\n",
                   circuits.size(), min_circuits);
      return 1;
    }
    if (root.get_bool("interrupted", false) &&
        !cli.has("allow-interrupted")) {
      std::fprintf(stderr,
                   "verify: report is from an interrupted batch "
                   "(pass --allow-interrupted to accept)\n");
      return 1;
    }
    for (const util::JsonValue& c : circuits) {
      const std::string status = c.get_string("status", "");
      if (status == "quarantined" || status == "interrupted") continue;
      if (status != "ok" || !c.has("result")) {
        std::fprintf(stderr, "verify: %s has status '%s' and no result\n",
                     c.get_string("circuit", "?").c_str(), status.c_str());
        return 1;
      }
      const util::JsonValue& res = c.at("result");
      if (!res.get_bool("feasible", false) ||
          !res.get_bool("certified", false)) {
        std::fprintf(stderr, "verify: %s is infeasible or uncertified: %s\n",
                     c.get_string("circuit", "?").c_str(),
                     res.at("certificate").get_string("detail", "").c_str());
        return 1;
      }
    }
    const std::string expect = cli.get("expect-quarantined", std::string());
    if (!expect.empty()) {
      bool found = false;
      for (const util::JsonValue& q : root.at("quarantined").items()) {
        if (q.as_string() == expect) found = true;
      }
      if (!found) {
        std::fprintf(stderr, "verify: expected '%s' on the quarantine list\n",
                     expect.c_str());
        return 1;
      }
    }
    std::printf("verify: %s OK (%zu circuit entries)\n", path.c_str(),
                circuits.size());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "verify: malformed report: %s\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  // Evaluation engine knobs, parsed before mode dispatch so both the batch
  // parent and re-exec'd --worker children honor them: --threads=N
  // (0 = hardware concurrency; 1 = bit-exact serial path) and
  // --eval-cache=0/1 (memoized evaluator results, default on).
  util::set_global_threads(cli.get("threads", 0));
  opt::set_eval_cache_enabled(cli.get("eval-cache", 1) != 0);
  if (cli.has("help")) {
    std::printf("%s", kUsage);
    return 0;
  }
  if (cli.has("worker")) return run_worker(cli);
  if (cli.has("verify-report")) return verify_report(cli);
  obs::Session session(cli, "minergy_batch");
  obs::set_enabled(true);
  // Workers re-exec this binary; resolve the real path so the batch works
  // regardless of how (and from where) it was invoked.
  char self_buf[4096];
  const ssize_t n = readlink("/proc/self/exe", self_buf, sizeof self_buf - 1);
  std::string self = argv[0];
  if (n > 0) {
    self_buf[n] = '\0';
    self = self_buf;
  }
  return run_batch(self, cli);
} catch (const std::invalid_argument& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 2;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
