// netlist_info: inspect a gate-level netlist.
//
//   $ netlist_info circuit.bench            # or .v (structural Verilog)
//   $ netlist_info --builtin=s298*          # any built-in benchmark
//   $ netlist_info --paths=5 circuit.bench  # top-K critical paths
//
// Prints structural statistics, the most critical paths (fanout-sum
// criticality), and the estimated activity profile.
#include <cstdio>
#include <stdexcept>

#include "activity/activity.h"
#include "bench_suite/iscas.h"
#include "netlist/bench_io.h"
#include "netlist/stats.h"
#include "netlist/verilog_io.h"
#include "obs/session.h"
#include "timing/path_enum.h"
#include "util/cli.h"
#include "util/strings.h"

using namespace minergy;

namespace {
constexpr const char* kUsage =
    "usage: netlist_info [--builtin=NAME] [--paths=K] [--activity=D]\n"
    "                    [--verbose] [file.bench|file.v]\n"
    "  exit codes: 0 ok, 1 validation failure, 2 usage error\n";
}  // namespace

// Typed errors from the parsers (ParseError with file:line context) exit
// cleanly instead of std::terminate-ing.
int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  if (cli.has("help")) {
    std::printf("%s", kUsage);
    return 0;
  }
  const obs::Session session(cli, "netlist_info");
  netlist::Netlist nl;
  if (cli.has("builtin")) {
    nl = bench_suite::make_circuit(cli.get("builtin", std::string("c17")));
  } else if (!cli.positional().empty()) {
    const std::string& path = cli.positional()[0];
    nl = util::to_lower(path).ends_with(".v")
             ? netlist::parse_verilog_file(path)
             : netlist::parse_bench_file(path);
  } else {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }

  const netlist::NetlistStats stats = netlist::compute_stats(nl);
  std::printf("%s\n  %s\n", nl.name().c_str(), stats.to_string().c_str());
  std::printf("  gate mix:");
  for (std::size_t t = 0; t < stats.type_counts.size(); ++t) {
    if (stats.type_counts[t] == 0) continue;
    std::printf(" %s=%zu",
                std::string(netlist::to_string(
                                static_cast<netlist::GateType>(t)))
                    .c_str(),
                stats.type_counts[t]);
  }
  std::printf("\n\n");

  const int k = cli.get("paths", 3);
  const timing::PathAnalyzer pa(nl);
  std::printf("top %d critical paths (criticality = sum of fanouts):\n", k);
  int rank = 1;
  for (const timing::Path& p : pa.top_k(static_cast<std::size_t>(k))) {
    std::printf("  #%d crit=%lld len=%zu :", rank++,
                static_cast<long long>(p.criticality), p.gates.size());
    for (netlist::GateId id : p.gates) {
      std::printf(" %s", nl.gate(id).name.c_str());
    }
    std::printf("\n");
  }

  activity::ActivityProfile profile;
  profile.input_density = cli.get("activity", 0.3);
  const activity::ActivityResult act =
      activity::estimate_activity(nl, profile);
  double dsum = 0.0, dmax = 0.0;
  netlist::GateId hottest = netlist::kInvalidGate;
  for (netlist::GateId id : nl.combinational()) {
    dsum += act.density[id];
    if (act.density[id] > dmax) {
      dmax = act.density[id];
      hottest = id;
    }
  }
  std::printf("\nactivity (input density %.2f): mean %.4f, hottest node %s "
              "at %.4f transitions/cycle\n",
              profile.input_density,
              dsum / static_cast<double>(nl.num_combinational()),
              hottest == netlist::kInvalidGate
                  ? "-"
                  : nl.gate(hottest).name.c_str(),
              dmax);
  return 0;
} catch (const std::invalid_argument& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 2;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
