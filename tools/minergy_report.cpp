// minergy_report: run one optimizer on one circuit and emit run telemetry.
//
//   $ minergy_report --builtin=c17 --report=run.json
//   $ minergy_report --builtin=s298* --optimizer=robust --trace=trace.json
//   $ minergy_report circuit.bench --optimizer=baseline --metrics
//
// The report JSON (schema minergy.run_report.v1) carries the full search
// trajectory, per-tier provenance, and the counter deltas of the run; the
// trace JSON loads directly in Perfetto / chrome://tracing. See
// docs/OBSERVABILITY.md for both schemas.
//
// Flags:
//   --builtin=NAME        paper circuit (c17, s298*, ... ; default c17)
//   --optimizer=KIND      joint | baseline | robust | anneal  (default joint)
//   --fc=HZ               target clock (default 300e6; auto-scaled when the
//                         baseline cannot meet it, as in the Table-1 runs)
//   --activity=D          primary-input transition density (default 0.3)
//   --thresholds=N        n_v threshold groups for the joint flow
//   --max-evals=N         watchdog: circuit-evaluation budget
//   --max-seconds=S       watchdog: wall-clock budget
//   --seed=S              annealing seed (default 1234)
//   --checkpoint=FILE     crash-safe snapshots (joint sweep / anneal moves)
//   --resume=FILE         restore a snapshot and continue deterministically
//   --certify             independently re-verify the result (Certifier);
//                         an uncertified result exits 1
//   --report=FILE         write the RunReport JSON
//   --trace=FILE, --metrics, --verbose, --perf-record[=F]   (obs::Session)
//
// Exit codes: 0 feasible (and certified when asked), 1 infeasible or
// uncertified or an execution error, 2 bad arguments / unreadable input.
#include <cstdio>
#include <fstream>
#include <string>

#include "activity/activity.h"
#include "bench_suite/experiment.h"
#include "bench_suite/iscas.h"
#include "io/durable.h"
#include "io/envelope.h"
#include "netlist/bench_io.h"
#include "netlist/verilog_io.h"
#include "obs/metrics.h"
#include "obs/session.h"
#include "opt/annealing_optimizer.h"
#include "opt/baseline_optimizer.h"
#include "opt/certifier.h"
#include "opt/eval_cache.h"
#include "opt/evaluator.h"
#include "opt/joint_optimizer.h"
#include "opt/robust_optimizer.h"
#include "util/cli.h"
#include "util/thread_pool.h"
#include "util/strings.h"

using namespace minergy;

namespace {

util::WatchdogBudget budget_from(const util::Cli& cli) {
  util::WatchdogBudget b;
  b.max_evaluations = cli.get("max-evals", 0);
  b.wall_seconds = cli.get("max-seconds", b.wall_seconds);
  return b;
}

}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  // Evaluation engine knobs shared with the bench drivers: --threads=N
  // (0 = hardware concurrency; 1 = bit-exact serial path) and
  // --eval-cache=0/1 (memoized evaluator results, default on).
  util::set_global_threads(cli.get("threads", 0));
  opt::set_eval_cache_enabled(cli.get("eval-cache", 1) != 0);
  obs::Session session(cli, "minergy_report");
  const std::string report_path = cli.get("report", std::string());
  // Trajectories ride in the report regardless, but counters need the
  // global enable; a report request implies the caller wants them too.
  if (!report_path.empty()) obs::set_enabled(true);

  netlist::Netlist nl;
  if (!cli.positional().empty()) {
    const std::string& path = cli.positional()[0];
    if (!std::ifstream(path)) {
      // Unreadable path = caller mistake (exit 2); a file that opens but
      // fails to parse is a validation failure (ParseError, exit 1).
      std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
      return 2;
    }
    nl = util::to_lower(path).ends_with(".v")
             ? netlist::parse_verilog_file(path)
             : netlist::parse_bench_file(path);
  } else {
    nl = bench_suite::make_circuit(cli.get("builtin", std::string("c17")));
  }

  bench_suite::ExperimentConfig cfg;
  cfg.clock_frequency = cli.get("fc", 300e6);
  bool tc_scaled = false;
  const double tc = bench_suite::choose_cycle_time(nl, cfg, &tc_scaled);

  opt::EvalSettings settings;
  settings.clock_frequency = 1.0 / tc;
  activity::ActivityProfile profile;
  profile.input_density = cli.get("activity", 0.3);
  const opt::CircuitEvaluator eval(nl, cfg.tech, profile, settings);

  opt::OptimizerOptions opts;
  opts.num_thresholds = cli.get("thresholds", 1);
  opts.budget = budget_from(cli);
  opts.checkpoint_path = cli.get("checkpoint", std::string());
  opts.resume_path = cli.get("resume", std::string());

  const std::string kind = cli.get("optimizer", std::string("joint"));
  opt::OptimizationResult result;
  double skew_b = opts.skew_b;
  if (kind == "joint") {
    result = opt::JointOptimizer(eval, opts).run();
  } else if (kind == "baseline") {
    result = opt::BaselineOptimizer(eval, opts).run();
  } else if (kind == "robust") {
    opt::RobustOptions ropts;
    ropts.joint = opts;
    ropts.baseline = opts;
    result = opt::RobustOptimizer(eval, ropts).run();
  } else if (kind == "anneal") {
    opt::AnnealingOptions aopts;
    aopts.budget = opts.budget;
    aopts.seed = static_cast<std::uint64_t>(cli.get("seed", 1234.0));
    aopts.checkpoint_path = opts.checkpoint_path;
    aopts.resume_path = opts.resume_path;
    skew_b = aopts.skew_b;
    // Warm-start from the baseline solution (the annealer's recommended
    // seeding): a cold start at an arbitrary mid-range corner can sit in a
    // non-physical region where the finite-checks reject the first STA.
    const opt::OptimizationResult warm =
        opt::BaselineOptimizer(eval, opts).run();
    result = opt::AnnealingOptimizer(eval, aopts)
                 .run(warm.feasible ? warm.state : opt::CircuitState{});
  } else {
    std::fprintf(stderr,
                 "error: unknown --optimizer=%s "
                 "(joint | baseline | robust | anneal)\n",
                 kind.c_str());
    return 2;
  }

  std::printf(
      "%s  %s  %s%s\n  Vdd %.3f V, Vts %.3f V, E %.4g J/cycle "
      "(static %.3g, dynamic %.3g), crit %.3f ns, Tc %.3f ns%s\n  %d circuit "
      "evaluations in %.2f s%s\n",
      nl.name().c_str(), kind.c_str(),
      result.feasible ? "feasible" : "INFEASIBLE",
      result.truncated ? " (truncated)" : "", result.vdd, result.vts_primary,
      result.energy.total(), result.energy.static_energy,
      result.energy.dynamic_energy, result.critical_delay * 1e9, tc * 1e9,
      tc_scaled ? " (Tc scaled)" : "", result.circuit_evaluations,
      result.runtime_seconds,
      result.report.trajectory.empty()
          ? ""
          : (", " + std::to_string(result.report.trajectory.size()) +
             " trajectory points")
                .c_str());
  for (const std::string& note : result.tier_notes) {
    std::printf("  tier note: %s\n", note.c_str());
  }

  bool certified = true;
  if (cli.has("certify")) {
    opt::CertifyOptions copts;
    copts.skew_b = skew_b;
    const opt::Certificate cert = opt::Certifier(eval, copts).certify(result);
    certified = cert.certified;
    std::printf("  certificate: %s\n", cert.summary().c_str());
  }

  if (!report_path.empty()) {
    try {
      io::write_artifact(report_path, "minergy.run_report.v1",
                         result.report.to_json() + "\n");
    } catch (const io::IoError& e) {
      std::fprintf(stderr, "error: cannot write %s: %s\n", report_path.c_str(),
                   e.what());
      return 2;
    }
    std::fprintf(stderr, "run report written to %s\n", report_path.c_str());
  }
  return result.feasible && certified ? 0 : 1;
} catch (const std::invalid_argument& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 2;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
