// trace_check: validate observability outputs.
//
//   $ trace_check trace.json                  # Chrome-trace well-formedness
//   $ trace_check trace.json --min-spans=1    # and reject an empty capture
//   $ trace_check trace.json --report=run.json
//   $ trace_check --verify-eventlog=events.jsonl  # daemon event stream
//
// Trace checks: the file parses, has a traceEvents array, every event
// carries name/ph/ts (complete "X" events also dur >= 0), and within each
// (pid, tid) lane the complete events nest properly — a span either fully
// contains or is fully disjoint from every other span in its lane, the
// invariant Perfetto's flame view relies on.
//
// Event-log checks (--verify-eventlog=FILE): the file is the daemon's
// append-only JSONL event stream (schema minergy.event.v1, one object per
// line; see src/obs/eventlog.h). Every line must parse, carry the schema
// id, a non-empty kind, a known severity, and a strictly increasing seq;
// every job_done / job_failed must be preceded by a job_claimed for the
// same job id. Rotation relaxes the pairing rule: a segment whose first
// seq > 1 is a mid-stream continuation (the claim may live in the rotated
// .1 file), so only ordering and well-formedness are enforced there.
//
// HA lease ordering (same pass): lease_acquired must carry a positive,
// never-decreasing fencing token and must alternate with lease_lost (no
// double-acquire, no loss while not leader); no job_claimed may appear in
// a known-not-leader window (between a lease_lost and the next
// lease_acquired); fenced_reject / scrub_repair / scrub_quarantine events
// must carry a non-empty detail naming the refused op or damaged artifact.
//
// Report checks (--report=FILE): the file round-trips through
// obs::RunReport::from_json (schema minergy.run_report.v1) and the energies
// of accepted trajectory points form a non-increasing sequence — the
// optimizers' "accepted = improved the best feasible energy" contract.
// Reports carrying an io artifact-envelope footer are CRC-verified before
// parsing; --verify-envelope makes the footer mandatory, so CI can insist
// that a report really went through the durable write path.
//
// Exit codes are distinct by failure class so CI can tell them apart:
// 0 everything holds, 1 a validation failed (malformed trace, broken
// nesting, non-monotone or corrupt report, missing envelope under
// --verify-envelope), 2 bad arguments or an unreadable input file. Used by
// the `obs_smoke` CTest fixture (see tests/CMakeLists.txt).
#include <algorithm>
#include <cstdio>
#include <cstdint>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "io/envelope.h"
#include "obs/eventlog.h"
#include "obs/report.h"
#include "util/check.h"
#include "util/cli.h"
#include "util/json.h"

using namespace minergy;

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  // An unreadable path is a caller mistake (exit 2), not a validation
  // verdict about the file's content (exit 1) — keep the classes distinct.
  if (!in) throw std::invalid_argument("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct SpanRow {
  std::string name;
  double ts = 0.0;
  double dur = 0.0;
  std::int64_t lane = 0;  // pid * 2^20 + tid (both are small here)
};

int check_trace(const std::string& path, std::size_t min_spans) {
  const util::JsonValue root = util::JsonValue::parse(slurp(path), path);
  if (!root.has("traceEvents")) {
    std::fprintf(stderr, "%s: missing traceEvents array\n", path.c_str());
    return 1;
  }
  std::vector<SpanRow> spans;
  std::size_t total = 0;
  for (const util::JsonValue& e : root.at("traceEvents").items()) {
    ++total;
    for (const char* field : {"name", "ph", "ts"}) {
      if (!e.has(field)) {
        std::fprintf(stderr, "%s: event %zu missing \"%s\"\n", path.c_str(),
                     total - 1, field);
        return 1;
      }
    }
    if (e.at("ph").as_string() != "X") continue;
    SpanRow s;
    s.name = e.at("name").as_string();
    s.ts = e.at("ts").as_number();
    s.dur = e.get_number("dur", -1.0);
    if (s.dur < 0.0) {
      std::fprintf(stderr, "%s: complete event '%s' has no dur\n",
                   path.c_str(), s.name.c_str());
      return 1;
    }
    s.lane = static_cast<std::int64_t>(e.get_number("pid", 0.0)) *
                 (std::int64_t{1} << 20) +
             static_cast<std::int64_t>(e.get_number("tid", 0.0));
    spans.push_back(std::move(s));
  }

  // Nesting check per lane: in (ts asc, dur desc) order a parent precedes
  // its children, so a stack of open spans catches any partial overlap.
  std::stable_sort(spans.begin(), spans.end(),
                   [](const SpanRow& a, const SpanRow& b) {
                     if (a.lane != b.lane) return a.lane < b.lane;
                     if (a.ts != b.ts) return a.ts < b.ts;
                     return a.dur > b.dur;
                   });
  std::vector<const SpanRow*> stack;
  std::int64_t lane = -1;
  for (const SpanRow& s : spans) {
    if (s.lane != lane) {
      stack.clear();
      lane = s.lane;
    }
    while (!stack.empty() &&
           s.ts >= stack.back()->ts + stack.back()->dur) {
      stack.pop_back();
    }
    if (!stack.empty() &&
        s.ts + s.dur > stack.back()->ts + stack.back()->dur + 1e-3) {
      std::fprintf(stderr,
                   "%s: span '%s' [%.3f, %.3f] overlaps but does not nest "
                   "inside '%s' [%.3f, %.3f]\n",
                   path.c_str(), s.name.c_str(), s.ts, s.ts + s.dur,
                   stack.back()->name.c_str(), stack.back()->ts,
                   stack.back()->ts + stack.back()->dur);
      return 1;
    }
    stack.push_back(&s);
  }
  if (spans.size() < min_spans) {
    // A structurally valid but empty capture usually means the traced
    // program never entered the instrumented phases — fail loudly instead
    // of letting a smoke test pass vacuously.
    std::fprintf(stderr, "%s: only %zu complete spans (expected >= %zu)\n",
                 path.c_str(), spans.size(), min_spans);
    return 1;
  }
  std::printf("%s: OK (%zu events, %zu complete spans nest cleanly)\n",
              path.c_str(), total, spans.size());
  return 0;
}

int check_report(const std::string& path, bool require_envelope) {
  std::string text = slurp(path);
  if (io::has_envelope_footer(text)) {
    try {
      text = io::unwrap_envelope(text, "minergy.run_report.v1", path);
    } catch (const io::IntegrityError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  } else if (require_envelope) {
    std::fprintf(stderr,
                 "%s: no artifact-envelope footer (--verify-envelope)\n",
                 path.c_str());
    return 1;
  }
  const obs::RunReport report = obs::RunReport::from_json(text, path);
  const std::vector<double> accepted = report.accepted_energies();
  for (std::size_t i = 1; i < accepted.size(); ++i) {
    if (accepted[i] > accepted[i - 1] * (1.0 + 1e-12)) {
      std::fprintf(stderr,
                   "%s: accepted energies not non-increasing at index %zu "
                   "(%.17g > %.17g)\n",
                   path.c_str(), i, accepted[i], accepted[i - 1]);
      return 1;
    }
  }
  std::printf(
      "%s: OK (optimizer %s on %s, %zu trajectory points, %zu accepted, "
      "%zu tier records)\n",
      path.c_str(), report.optimizer.c_str(), report.circuit.c_str(),
      report.trajectory.size(), accepted.size(), report.tiers.size());
  return 0;
}

int check_eventlog(const std::string& path) {
  std::istringstream in(slurp(path));
  std::string line;
  std::size_t lineno = 0;
  std::int64_t last_seq = 0;
  bool rotated_segment = false;
  std::set<std::string> claimed;
  std::size_t events = 0, terminal = 0;
  // Leadership state machine: -1 = unknown (no lease event yet — plain
  // logs and rotated continuations), 1 = leader, 0 = known-not-leader.
  int lease_state = -1;
  std::int64_t last_token = 0;
  auto fail = [&](const std::string& what) {
    std::fprintf(stderr, "%s:%zu: %s\n", path.c_str(), lineno, what.c_str());
    return 1;
  };
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    util::JsonValue e;
    try {
      e = util::JsonValue::parse(line, path + ":" + std::to_string(lineno));
    } catch (const std::exception& ex) {
      return fail(std::string("unparseable event line: ") + ex.what());
    }
    if (e.get_string("schema", "") != obs::kEventSchema) {
      return fail("schema is not " + std::string(obs::kEventSchema));
    }
    const double seq_raw = e.get_number("seq", -1.0);
    const std::int64_t seq = static_cast<std::int64_t>(seq_raw);
    if (seq < 1 || static_cast<double>(seq) != seq_raw) {
      return fail("seq is not a positive integer");
    }
    if (seq <= last_seq) {
      return fail("seq " + std::to_string(seq) +
                  " does not increase past " + std::to_string(last_seq));
    }
    if (events == 0 && seq > 1) rotated_segment = true;
    last_seq = seq;
    ++events;
    const std::string kind = e.get_string("kind", "");
    if (kind.empty()) return fail("event has no kind");
    const std::string severity = e.get_string("severity", "");
    if (severity != "debug" && severity != "info" && severity != "warn" &&
        severity != "error") {
      return fail("unknown severity '" + severity + "'");
    }
    const std::string job = e.get_string("job", "");
    // job_shed and deadline_expired record the same pending -> running
    // rename a claim does (the overload paths win the job before failing
    // it), so they satisfy claim-before-finalize too.
    if ((kind == "job_claimed" || kind == "job_shed" ||
         kind == "deadline_expired") &&
        !job.empty()) {
      claimed.insert(job);
    }
    if (kind == "job_done" || kind == "job_failed") {
      ++terminal;
      if (job.empty()) return fail(kind + " event carries no job id");
      // A rotated segment may have lost the claim to the .1 file — only a
      // fresh (seq-starts-at-1) log can prove claim-before-finalize.
      if (!rotated_segment && claimed.count(job) == 0) {
        return fail(kind + " for job " + job + " with no earlier job_claimed");
      }
    }
    if (kind == "job_quarantined") ++terminal;
    if (kind == "lease_acquired") {
      if (lease_state == 1) {
        return fail("lease_acquired while already leader "
                    "(no lease_lost in between)");
      }
      const double tok_raw = e.get_number("token", -1.0);
      const std::int64_t tok = static_cast<std::int64_t>(tok_raw);
      if (tok < 1 || static_cast<double>(tok) != tok_raw) {
        return fail("lease_acquired without a positive integer token");
      }
      if (tok < last_token) {
        return fail("lease fencing token " + std::to_string(tok) +
                    " decreased (was " + std::to_string(last_token) + ")");
      }
      last_token = tok;
      lease_state = 1;
    } else if (kind == "lease_lost") {
      if (lease_state == 0) return fail("lease_lost while not leader");
      if (lease_state == -1 && !rotated_segment) {
        return fail("lease_lost with no earlier lease_acquired");
      }
      lease_state = 0;
    } else if (kind == "job_claimed" && lease_state == 0) {
      // The window between losing the lease and re-acquiring it is the one
      // state where claiming is provably wrong: a deposed daemon must not
      // take work it could never finalize.
      return fail("job_claimed between lease_lost and lease_acquired");
    }
    if ((kind == "fenced_reject" || kind == "scrub_repair" ||
         kind == "scrub_quarantine") &&
        e.get_string("detail", "").empty()) {
      return fail(kind + " event carries no detail");
    }
  }
  if (events == 0) {
    std::fprintf(stderr, "%s: event log is empty\n", path.c_str());
    return 1;
  }
  std::printf("%s: OK (%zu events, %zu terminal, final seq %lld%s)\n",
              path.c_str(), events, terminal,
              static_cast<long long>(last_seq),
              rotated_segment ? ", rotated segment" : "");
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  if (cli.positional().empty() && !cli.has("report") &&
      !cli.has("verify-eventlog")) {
    std::fprintf(stderr,
                 "usage: trace_check [trace.json] [--min-spans=N] "
                 "[--report=FILE] [--verify-envelope] "
                 "[--verify-eventlog=FILE]\n");
    return 2;
  }
  int rc = 0;
  if (!cli.positional().empty()) {
    rc = check_trace(cli.positional()[0],
                     static_cast<std::size_t>(cli.get("min-spans", 0)));
  }
  if (rc == 0 && cli.has("report")) {
    rc = check_report(cli.get("report", std::string()),
                      cli.has("verify-envelope"));
  }
  if (rc == 0 && cli.has("verify-eventlog")) {
    rc = check_eventlog(cli.get("verify-eventlog", std::string()));
  }
  return rc;
} catch (const std::invalid_argument& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 2;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
