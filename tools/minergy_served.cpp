// minergy_served: long-running, crash-safe optimization service.
//
// One spool directory is the entire service state: jobs are submitted into
// it, a daemon claims and executes them in supervised worker subprocesses,
// and every transition is an atomic rename — SIGKILL the daemon at any
// instruction and a restart recovers with no job lost, duplicated, or stuck
// (see src/serve/ and docs/ROBUSTNESS.md, "Service & supervision").
//
//   $ minergy_served --spool=/tmp/spool --submit --circuit=s27 ...
//                                                 # enqueue, print job id
//   $ minergy_served --spool=/tmp/spool --workers=4              # serve
//   $ minergy_served --spool=/tmp/spool --once                   # drain+exit
//   $ minergy_served --spool=/tmp/spool --status --verify        # audit
//
// Daemon flags:
//   --spool=DIR           spool directory (required; created if missing)
//   --workers=N           concurrent worker subprocesses (default 2)
//   --once                exit when pending/ and the worker pool are empty
//   --poll=S              control-loop cadence seconds (default 0.02)
//   --timeout=S           per-attempt wall clock before SIGKILL (default 300)
//   --retries=N           extra attempts after the first (default 2)
//   --backoff=S           base backoff; retry k waits backoff * 2^(k-1)
//   --breaker-threshold=N consecutive worker deaths that trip a circuit's
//                         breaker (default 3)
//   --breaker-cooldown=S  open -> half-open delay (default 30)
//   --drain-grace=S       SIGTERM: let workers finish this long (default 2)
//   --max-pending=N       admission bound for --submit (default 64)
//   --inject-kill=PT[@K]  chaos hook: SIGKILL self at the K-th visit of
//                         protocol point PT (see src/serve/inject.h)
//   --inject-stop=PT[@K]  chaos hook: SIGSTOP self (a zombie leader, not a
//                         dead one) at the K-th visit of point PT
//   --inject-io=SPEC      chaos hook: storage-fault schedule, e.g.
//                         write@3:enospc,fsync@1:eio (see src/io/fault_fs.h);
//                         propagated into workers like --inject-kill
//
// High-availability flags (daemon mode; see docs/ROBUSTNESS.md, "High
// availability & scrubbing"): every daemon runs under the spool's fenced
// leader lease (<spool>/leader.lease, schema minergy.lease.v1); exactly one
// serves, the rest stand by and take over within ~1 lease TTL:
//   --standby             hot-standby start: never claim a fresh spool until
//                         it has been observed leaderless for a full expiry
//                         window (defers to a cold-starting leader)
//   --lease-ttl-s=S       lease heartbeat TTL (default 2); renewed at TTL/3
//   --lease-margin-s=S    extra observed staleness before a steal (def. 0.5)
//   --scrub-interval-s=S  leader-only anti-entropy pass cadence (0 = off)
//   --scrub               offline mode: one scrubber pass over the spool,
//                         then exit 0 (clean) / 1 (repaired) / 2 (quarantined)
//
// Live telemetry flags (daemon mode; see docs/OBSERVABILITY.md):
//   --listen=PORT         embedded HTTP exposition on 127.0.0.1:PORT
//                         (0 = ephemeral): GET /metrics (Prometheus text),
//                         /health (minergy.health.v1, from memory), /jobs
//                         (spool partition + breaker states)
//   --port-file=FILE      write the bound port to FILE (--listen=0 discovery)
//   --event-log=FILE      append-only JSONL event log (minergy.event.v1):
//                         one line per state transition, retry, breaker
//                         action, degradation, certification verdict;
//                         validate with trace_check --verify-eventlog=FILE
//   --event-log-max-kb=N  event-log segment cap before rotation (def. 8192)
//   --slo-e2e-ms=N        end-to-end latency SLO: finalizations slower than
//                         N ms bump serve.slo.violations + log slo_violation
//   --snapshot-interval-s=S  flush the --perf-record counter snapshot every
//                         S seconds (atomic write), not only at exit, so a
//                         crashed daemon leaves its last telemetry behind
//
// Overload protection flags (daemon mode; see docs/ROBUSTNESS.md,
// "Overload & brownout"):
//   --shed-target-ms=N    CoDel-style shedding: when the minimum queue
//                         sojourn over the sliding window stays above N ms,
//                         drop background- (then batch-) class work; 0
//                         (default) disables
//   --shed-window-ms=N    sliding-window span for both overload signals
//                         (default 1000)
//   --quota=CLIENT:RPS[,...]  per-client token-bucket admission quotas
//   --brownout            enable the SLO feedback loop (requires
//                         --slo-e2e-ms): windowed p95 over the SLO steps
//                         the fidelity ladder down (robust jobs start at
//                         baseline, then max-drive, watchdog budgets
//                         shrink), hysteretically steps back up
//   --brownout-dwell-s=S  minimum time between brownout level changes
//                         (default 2)
//   --brownout-recover-ratio=R  step back up once p95 < R * SLO (def. 0.7)
//
// Submit flags: --circuit, --optimizer (robust|joint|baseline|anneal),
//   --seed, --fc, --activity, --deadline=S (propagated into the watchdog
//   budget), --max-evals, --anneal-moves, --inject (worker chaos hook),
//   --priority=interactive|batch|background (claim order is priority band
//   then earliest-deadline-first; shedding drops background before batch
//   and never interactive), --client=NAME (quota attribution),
//   --complete-by-s=S (completion deadline, S seconds from now: a job
//   still queued past it is expired to failed/ with a deadline_expired
//   verdict instead of wasting a worker).
//
// Status flags: --verify (audit invariants: no pending/running leftovers,
//   terminal states disjoint, done/ results certified), --expect-jobs=N.
//
// SIGTERM/SIGINT drain gracefully: intake stops, in-flight jobs keep their
// PR-3 checkpoint snapshots, and the next daemon resumes them bit-exactly.
//
// Exit codes: 0 success, 1 validation failure (full queue, shed/quota
// rejection, failed verify), 2 bad arguments / unreadable input, 4 (status
// mode) spool holds quarantined job(s) — a poisoned spool operators must
// look at even when every other invariant verifies clean.
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <string>

#include "io/durable.h"
#include "io/envelope.h"
#include "io/fault_fs.h"
#include "io/scrub.h"
#include "obs/metrics.h"
#include "obs/session.h"
#include "serve/inject.h"
#include "serve/job.h"
#include "serve/overload.h"
#include "serve/queue.h"
#include "serve/supervisor.h"
#include "serve/worker.h"
#include "util/thread_pool.h"
#include "util/check.h"
#include "util/checkpoint.h"
#include "util/cli.h"
#include "util/json.h"

using namespace minergy;

namespace {

constexpr const char* kUsage =
    "usage: minergy_served --spool=DIR [mode] [flags]\n"
    "  modes: (default) daemon | --submit | --status | --scrub |\n"
    "         --worker (internal)\n"
    "  daemon: [--workers=N] [--worker-threads=N] [--once] [--poll=S]\n"
    "          [--timeout=S] [--retries=N]\n"
    "          [--backoff=S] [--breaker-threshold=N] [--breaker-cooldown=S]\n"
    "          [--drain-grace=S] [--inject-kill=POINT[@K]]\n"
    "          [--inject-stop=POINT[@K]] [--inject-io=SPEC]\n"
    "          [--standby] [--lease-ttl-s=S] [--lease-margin-s=S]\n"
    "          [--scrub-interval-s=S]\n"
    "          [--listen=PORT] [--port-file=FILE] [--event-log=FILE]\n"
    "          [--event-log-max-kb=N] [--slo-e2e-ms=N]\n"
    "          [--snapshot-interval-s=S] [--perf-record[=FILE]]\n"
    "          [--shed-target-ms=N] [--shed-window-ms=N]\n"
    "          [--quota=CLIENT:RPS[,...]] [--brownout]\n"
    "          [--brownout-dwell-s=S] [--brownout-recover-ratio=R]\n"
    "  submit: --circuit=NAME [--optimizer=robust|joint|baseline|anneal]\n"
    "          [--seed=S] [--fc=HZ] [--activity=D] [--deadline=S]\n"
    "          [--max-evals=N] [--anneal-moves=N] [--max-pending=N]\n"
    "          [--priority=interactive|batch|background] [--client=NAME]\n"
    "          [--complete-by-s=S]\n"
    "  status: [--verify] [--expect-jobs=N]\n"
    "  exit codes: 0 ok, 1 validation failure, 2 usage error,\n"
    "              4 (status) quarantined job(s) present\n"
    "              (--scrub: 0 clean, 1 repaired, 2 quarantined)\n";

serve::SpoolOptions spool_options(const util::Cli& cli) {
  serve::SpoolOptions o;
  o.max_pending = static_cast<std::size_t>(cli.get("max-pending", 64));
  o.slo_e2e_seconds = cli.get("slo-e2e-ms", 0.0) * 1e-3;
  return o;
}

int run_submit(const util::Cli& cli, serve::SpoolQueue& queue) {
  serve::Job job;
  job.circuit = cli.get("circuit", std::string());
  if (job.circuit.empty()) {
    std::fprintf(stderr, "error: --submit requires --circuit\n%s", kUsage);
    return 2;
  }
  job.optimizer = cli.get("optimizer", std::string("robust"));
  job.seed = static_cast<std::uint64_t>(cli.get("seed", 1.0));
  job.clock_frequency = cli.get("fc", 300e6);
  job.activity = cli.get("activity", 0.3);
  job.deadline_seconds = cli.get("deadline", 0.0);
  job.max_evaluations =
      static_cast<std::int64_t>(cli.get("max-evals", 0.0));
  job.anneal_moves = cli.get("anneal-moves", 0);
  job.inject = cli.get("inject", std::string());
  try {
    job.priority = serve::priority_from_string(
        cli.get("priority", std::string("batch")), "--priority");
  } catch (const util::ParseError& e) {
    std::fprintf(stderr, "error: %s\n%s", e.what(), kUsage);
    return 2;
  }
  job.client = cli.get("client", std::string());
  const double complete_by_s = cli.get("complete-by-s", 0.0);
  if (complete_by_s > 0.0) {
    job.complete_by_unix = serve::unix_now() + complete_by_s;
  }
  try {
    const std::string id = queue.submit(std::move(job));
    std::printf("%s\n", id.c_str());
    return 0;
  } catch (const serve::ShedError& e) {
    std::fprintf(stderr, "shed: %s (retry-after: %.1f s)\n", e.what(),
                 e.retry_after_seconds());
    return 1;
  } catch (const serve::QueueFullError& e) {
    std::fprintf(stderr, "rejected: %s (retry-after: %.1f s)\n", e.what(),
                 e.retry_after_seconds());
    return 1;
  }
}

int run_worker_mode(const util::Cli& cli, serve::SpoolQueue& queue) {
  // Evaluation parallelism for this job (forwarded by the supervisor's
  // --worker-threads; 0 = hardware concurrency).
  util::set_global_threads(cli.get("threads", 0));
  const std::string id = cli.get("job-id", std::string());
  if (id.empty()) {
    std::fprintf(stderr, "worker: --job-id is required\n");
    return 2;
  }
  const std::string path = queue.job_path("running", id);
  serve::Job job;
  try {
    job = serve::Job::from_json(io::read_artifact(path, serve::kJobSchema),
                                path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "worker: %s\n", e.what());
    return 2;
  }
  const std::uint64_t seed = static_cast<std::uint64_t>(
      cli.get("attempt-seed", static_cast<double>(job.seed)));
  return serve::run_worker_job(job, seed, queue.result_path(id),
                               queue.checkpoint_path(id),
                               cli.get("brownout-level", 0),
                               cli.get("lease-path", std::string()));
}

// Offline anti-entropy pass: one scrubber sweep, a human-readable summary,
// and the repair verdict as the exit code (0 clean, 1 repaired,
// 2 quarantined) so CI and operators can gate on it.
int run_scrub(serve::SpoolQueue& queue) {
  const io::ScrubReport report = io::SpoolScrubber(queue.root()).run();
  for (const io::ScrubFinding& f : report.findings) {
    std::fprintf(stderr, "scrub: %s %s: %s%s%s\n", f.action.c_str(),
                 f.path.c_str(), f.problem.c_str(),
                 f.detail.empty() ? "" : " — ", f.detail.c_str());
  }
  std::printf(
      "scrub %s\n  checked %d  clean %d  repaired %d  quarantined %d  "
      "vanished %d\n",
      queue.root().c_str(), report.checked, report.clean, report.repaired,
      report.quarantined, report.vanished);
  return report.exit_code();
}

int run_status(const util::Cli& cli, serve::SpoolQueue& queue) {
  const serve::QueueCounts c = queue.counts();
  std::printf(
      "spool %s\n  pending %zu  running %zu  done %zu  failed %zu  "
      "quarantined %zu\n",
      queue.root().c_str(), c.pending, c.running, c.done, c.failed,
      c.quarantined);
  // Exit code 4 flags a poisoned spool: quarantined/ holds jobs no retry
  // will fix, and operators polling --status must not read that as clean.
  // Verify violations (exit 1) still take precedence below.
  const int ok_rc = c.quarantined > 0 ? 4 : 0;
  if (!cli.has("verify")) return ok_rc;

  // Invariant audit (the chaos harness's oracle): after a drained daemon
  // exits, every job must sit in exactly one terminal state, with a
  // certified result in done/ and a typed failure elsewhere.
  int violations = 0;
  const auto complain = [&violations](const std::string& msg) {
    std::fprintf(stderr, "verify: %s\n", msg.c_str());
    ++violations;
  };
  if (c.pending != 0) complain("pending/ not empty");
  if (c.running != 0) {
    complain(std::to_string(c.running) + " job(s) stuck in running/");
  }
  std::size_t total = 0;
  std::map<std::string, std::string> seen;  // id -> state
  for (const char* state : {"done", "failed", "quarantined"}) {
    for (const std::string& id : queue.ids_in(state)) {
      ++total;
      if (const auto it = seen.find(id); it != seen.end()) {
        complain("job " + id + " is in both " + it->second + "/ and " +
                 state + "/");
      }
      seen[id] = state;
      const std::string path = queue.job_path(state, id);
      util::JsonValue rec;
      try {
        // Envelope-verified: a record that parses but fails its CRC or
        // length is reported as an integrity violation, not silently
        // accepted.
        rec = util::JsonValue::parse(
            io::read_artifact(path, serve::kJobSchema), path);
      } catch (const io::IntegrityError& e) {
        complain(std::string("integrity violation: ") + e.what());
        continue;
      } catch (const std::exception& e) {
        complain(std::string("unreadable record: ") + e.what());
        continue;
      }
      if (std::string(state) == "done") {
        if (!rec.has("result") ||
            !rec.at("result").get_bool("certified", false) ||
            !rec.at("result").get_bool("feasible", false)) {
          complain("done/" + id + " is not a certified feasible result");
        }
      } else if (!rec.has("failure") ||
                 rec.at("failure").get_string("type", "").empty()) {
        complain(std::string(state) + "/" + id + " has no typed failure");
      }
    }
  }
  const int expect = cli.get("expect-jobs", -1);
  if (expect >= 0 && total != static_cast<std::size_t>(expect)) {
    complain("expected " + std::to_string(expect) + " terminal job(s), found " +
             std::to_string(total));
  }
  if (violations != 0) return 1;
  std::printf("verify: OK (%zu terminal job(s))\n", total);
  return ok_rc;
}

int run_daemon(const util::Cli& cli, serve::SpoolQueue& queue,
               obs::Session& session) {
  serve::SupervisorOptions opts;
  // Workers re-exec this binary; resolve the real path so the daemon works
  // regardless of how it was invoked.
  char self_buf[4096];
  const ssize_t n =
      readlink("/proc/self/exe", self_buf, sizeof self_buf - 1);
  if (n > 0) {
    self_buf[n] = '\0';
    opts.worker_binary = self_buf;
  } else {
    opts.worker_binary = cli.program();
  }
  opts.workers = cli.get("workers", 2);
  opts.worker_threads = cli.get("worker-threads", 0);
  opts.poll_seconds = cli.get("poll", 0.02);
  opts.timeout_seconds = cli.get("timeout", 300.0);
  opts.max_retries = cli.get("retries", 2);
  opts.backoff_seconds = cli.get("backoff", 0.5);
  opts.drain_grace_seconds = cli.get("drain-grace", 2.0);
  opts.once = cli.has("once");
  opts.lease.standby = cli.has("standby");
  opts.lease.ttl_seconds = cli.get("lease-ttl-s", 2.0);
  opts.lease.margin_seconds = cli.get("lease-margin-s", 0.5);
  opts.scrub_interval_seconds = cli.get("scrub-interval-s", 0.0);
  opts.breaker.threshold = cli.get("breaker-threshold", 3);
  opts.breaker.cooldown_seconds = cli.get("breaker-cooldown", 30.0);
  opts.overload.shed_target_seconds = cli.get("shed-target-ms", 0.0) * 1e-3;
  opts.overload.shed_window_seconds =
      cli.get("shed-window-ms", 1000.0) * 1e-3;
  // Brownout is an explicit opt-in: --slo-e2e-ms alone keeps its PR-6
  // meaning (SLO violation accounting) without changing service behavior.
  if (cli.has("brownout")) {
    opts.overload.slo_e2e_seconds = cli.get("slo-e2e-ms", 0.0) * 1e-3;
    if (opts.overload.slo_e2e_seconds <= 0.0) {
      std::fprintf(stderr, "error: --brownout requires --slo-e2e-ms=N\n%s",
                   kUsage);
      return 2;
    }
    opts.overload.brownout_dwell_seconds = cli.get("brownout-dwell-s", 2.0);
    opts.overload.brownout_recover_ratio =
        cli.get("brownout-recover-ratio", 0.7);
  }
  try {
    opts.overload.quotas =
        serve::parse_quota_spec(cli.get("quota", std::string()));
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n%s", e.what(), kUsage);
    return 2;
  }
  opts.snapshot_interval_seconds = cli.get("snapshot-interval-s", 0.0);
  if (opts.snapshot_interval_seconds > 0.0) {
    // Periodic counter-snapshot flush: the daemon's perf record survives a
    // SIGKILL. The session owns the canonical path when --perf-record was
    // given; otherwise snapshots land next to nothing in particular, so use
    // a stable default the operator can find.
    std::string snap_path = session.perf_path();
    if (snap_path.empty()) snap_path = "BENCH_minergy_served.json";
    opts.snapshot_hook = [&session, snap_path]() {
      try {
        io::atomic_write_durable(snap_path, session.perf_record_json() + "\n");
      } catch (const std::exception& e) {
        std::fprintf(stderr, "served: snapshot flush failed: %s\n", e.what());
      }
    };
  }
  serve::Supervisor supervisor(queue, opts);
  const int rc = supervisor.run();
  const serve::QueueCounts c = queue.counts();
  std::fprintf(stderr,
               "served: exiting (pending %zu, done %zu, failed %zu, "
               "quarantined %zu)\n",
               c.pending, c.done, c.failed, c.quarantined);
  return rc;
}

}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  if (cli.has("help")) {
    std::printf("%s", kUsage);
    return 0;
  }
  serve::configure_kill_switch(cli.get("inject-kill", std::string()));
  serve::configure_stop_switch(cli.get("inject-stop", std::string()));
  io::FaultFs::instance().configure(cli.get("inject-io", std::string()));
  const std::string spool = cli.get("spool", std::string());
  if (spool.empty()) {
    std::fprintf(stderr, "error: --spool=DIR is required\n%s", kUsage);
    return 2;
  }
  serve::SpoolQueue queue(spool, spool_options(cli));
  if (cli.has("worker")) return run_worker_mode(cli, queue);
  if (cli.has("submit")) return run_submit(cli, queue);
  if (cli.has("status")) return run_status(cli, queue);
  if (cli.has("scrub")) return run_scrub(queue);
  obs::Session session(cli, "minergy_served");
  obs::set_enabled(true);
  return run_daemon(cli, queue, session);
} catch (const std::invalid_argument& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 2;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
