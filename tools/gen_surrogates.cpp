// gen_surrogates: materialize the ISCAS-89 surrogate circuits as .bench
// files so they can be inspected, diffed or fed to external tools.
//
//   $ gen_surrogates [--out=data/iscas]
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "bench_suite/iscas.h"
#include "netlist/bench_io.h"
#include "netlist/stats.h"
#include "util/cli.h"

using namespace minergy;

namespace {
constexpr const char* kUsage =
    "usage: gen_surrogates [--out=DIR]\n"
    "  writes every paper circuit (surrogates included) as a .bench file\n"
    "  exit codes: 0 ok, 1 validation failure, 2 usage error\n";
}  // namespace

int main(int argc, char** argv) try {
  const util::Cli cli(argc, argv);
  if (cli.has("help")) {
    std::printf("%s", kUsage);
    return 0;
  }
  const std::string out_dir = cli.get("out", std::string("data/iscas"));
  std::filesystem::create_directories(out_dir);

  for (const auto& spec : bench_suite::paper_circuits()) {
    const netlist::Netlist nl = bench_suite::make_circuit(spec);
    const std::string file =
        out_dir + "/" + nl.name() + (spec.surrogate ? "_surrogate" : "") +
        ".bench";
    netlist::write_bench_file(nl, file);
    std::printf("%-28s %s\n", file.c_str(),
                netlist::compute_stats(nl).to_string().c_str());
  }
  return 0;
} catch (const std::invalid_argument& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 2;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
