#include "sim/logic_sim.h"

#include <algorithm>

#include "util/check.h"

namespace minergy::sim {

LogicSimulator::LogicSimulator(const netlist::Netlist& nl) : nl_(nl) {
  MINERGY_CHECK(nl.finalized());
  values_.assign(nl.size(), 0);
}

void LogicSimulator::set_input(netlist::GateId pi, bool value) {
  MINERGY_CHECK(nl_.gate(pi).type == netlist::GateType::kInput);
  values_[pi] = value ? 1 : 0;
}

void LogicSimulator::set_state(netlist::GateId dff, bool value) {
  MINERGY_CHECK(nl_.gate(dff).type == netlist::GateType::kDff);
  values_[dff] = value ? 1 : 0;
}

void LogicSimulator::evaluate() {
  for (netlist::GateId id : nl_.combinational()) {
    const netlist::Gate& g = nl_.gate(id);
    const std::size_t n = g.fanins.size();
    if (n > scratch_cap_) {
      scratch_cap_ = std::max<std::size_t>(n, 16);
      scratch_ = std::make_unique<bool[]>(scratch_cap_);
    }
    for (std::size_t i = 0; i < n; ++i) scratch_[i] = values_[g.fanins[i]] != 0;
    values_[id] = netlist::evaluate(
                      g.type, std::span<const bool>(scratch_.get(), n))
                      ? 1
                      : 0;
  }
}

void LogicSimulator::step() {
  evaluate();
  // Sample all D pins before writing any Q (two-phase clocking).
  std::vector<char> next_q;
  next_q.reserve(nl_.dffs().size());
  for (netlist::GateId q : nl_.dffs()) {
    const netlist::Gate& g = nl_.gate(q);
    MINERGY_CHECK(!g.fanins.empty());
    next_q.push_back(values_[g.fanins[0]]);
  }
  std::size_t i = 0;
  for (netlist::GateId q : nl_.dffs()) values_[q] = next_q[i++];
}

namespace {

// Per-PI Markov chain: stationary probability p, transition density d.
// With flip rates alpha = P(0->1), beta = P(1->0):
//   p = alpha / (alpha + beta),  d = 2*alpha*beta/(alpha+beta)
// =>  alpha = d / (2*(1-p)),  beta = d / (2*p).
struct Chain {
  double alpha = 0.0, beta = 0.0, p = 0.5;
};

std::vector<Chain> build_input_chains(
    const netlist::Netlist& nl, const activity::ActivityProfile& profile) {
  std::vector<Chain> chains;
  for (netlist::GateId pi : nl.primary_inputs()) {
    const std::string& name = nl.gate(pi).name;
    auto pit = profile.probability_overrides.find(name);
    auto dit = profile.density_overrides.find(name);
    const double p = pit != profile.probability_overrides.end()
                         ? pit->second
                         : profile.input_probability;
    const double d = dit != profile.density_overrides.end()
                         ? dit->second
                         : profile.input_density;
    Chain c;
    c.p = p;
    if (d > 0.0 && p > 0.0 && p < 1.0) {
      c.alpha = std::min(1.0, d / (2.0 * (1.0 - p)));
      c.beta = std::min(1.0, d / (2.0 * p));
    }
    chains.push_back(c);
  }
  return chains;
}

}  // namespace

MeasuredActivity measure_activity(const netlist::Netlist& nl,
                                  const activity::ActivityProfile& profile,
                                  int cycles, util::Rng& rng) {
  MINERGY_CHECK(cycles > 0);
  profile.validate();
  LogicSimulator simulator(nl);

  const std::vector<Chain> chains = build_input_chains(nl, profile);
  std::vector<netlist::GateId> pis = nl.primary_inputs();
  for (std::size_t i = 0; i < pis.size(); ++i) {
    simulator.set_input(pis[i], rng.bernoulli(chains[i].p));
  }
  for (netlist::GateId q : nl.dffs()) simulator.set_state(q, rng.bernoulli(0.5));

  std::vector<double> ones(nl.size(), 0.0), toggles(nl.size(), 0.0);
  std::vector<char> prev(nl.size(), 0);

  const int warmup = std::max(16, cycles / 10);
  for (int cycle = -warmup; cycle < cycles; ++cycle) {
    // Advance the input chains.
    for (std::size_t i = 0; i < pis.size(); ++i) {
      const bool v = simulator.value(pis[i]);
      const double flip = v ? chains[i].beta : chains[i].alpha;
      if (rng.bernoulli(flip)) simulator.set_input(pis[i], !v);
    }
    simulator.evaluate();
    if (cycle >= 0) {
      for (std::size_t id = 0; id < nl.size(); ++id) {
        const char v = simulator.value(static_cast<netlist::GateId>(id)) ? 1 : 0;
        ones[id] += v;
        if (cycle > 0 && v != prev[id]) toggles[id] += 1.0;
        prev[id] = v;
      }
    } else {
      for (std::size_t id = 0; id < nl.size(); ++id) {
        prev[id] = simulator.value(static_cast<netlist::GateId>(id)) ? 1 : 0;
      }
    }
    // Clock the registers (Q <- settled D) without re-evaluating.
    simulator.step();
  }

  MeasuredActivity m;
  m.cycles = cycles;
  m.probability.resize(nl.size());
  m.density.resize(nl.size());
  for (std::size_t id = 0; id < nl.size(); ++id) {
    m.probability[id] = ones[id] / static_cast<double>(cycles);
    m.density[id] = toggles[id] / static_cast<double>(cycles - 1);
  }
  return m;
}

MeasuredActivity measure_glitch_activity(
    const netlist::Netlist& nl, const activity::ActivityProfile& profile,
    int cycles, util::Rng& rng) {
  MINERGY_CHECK(nl.finalized());
  MINERGY_CHECK(cycles > 0);
  profile.validate();

  const std::vector<Chain> chains = build_input_chains(nl, profile);
  const std::vector<netlist::GateId>& pis = nl.primary_inputs();

  std::vector<char> value(nl.size(), 0);
  std::vector<char> next(nl.size(), 0);
  std::vector<double> ones(nl.size(), 0.0), toggles(nl.size(), 0.0);
  std::unique_ptr<bool[]> scratch;
  std::size_t scratch_cap = 0;

  for (std::size_t i = 0; i < pis.size(); ++i) {
    value[pis[i]] = rng.bernoulli(chains[i].p) ? 1 : 0;
  }
  for (netlist::GateId q : nl.dffs()) value[q] = rng.bernoulli(0.5) ? 1 : 0;

  auto gate_output = [&](netlist::GateId id) -> char {
    const netlist::Gate& g = nl.gate(id);
    const std::size_t n = g.fanins.size();
    if (n > scratch_cap) {
      scratch_cap = std::max<std::size_t>(n, 16);
      scratch = std::make_unique<bool[]>(scratch_cap);
    }
    for (std::size_t i = 0; i < n; ++i) scratch[i] = value[g.fanins[i]] != 0;
    return netlist::evaluate(g.type,
                             std::span<const bool>(scratch.get(), n))
               ? 1
               : 0;
  };

  // Unit-delay propagation to a fixpoint (Jacobi iteration: all gates see
  // last step's values, so each sweep advances time by one gate delay).
  // Returns the number of toggles recorded per gate when `count` is set.
  auto settle = [&](bool count) {
    const int max_steps = nl.depth() + 4;
    for (int step = 0; step < max_steps; ++step) {
      bool changed = false;
      for (netlist::GateId id : nl.combinational()) next[id] = gate_output(id);
      for (netlist::GateId id : nl.combinational()) {
        if (next[id] != value[id]) {
          changed = true;
          if (count) toggles[id] += 1.0;
          value[id] = next[id];
        }
      }
      if (!changed) break;
    }
  };

  settle(/*count=*/false);  // initial settling, uncounted

  const int warmup = std::max(8, cycles / 10);
  for (int cycle = -warmup; cycle < cycles; ++cycle) {
    const bool count = cycle >= 0;
    // New primary-input values and register updates at the cycle boundary.
    for (std::size_t i = 0; i < pis.size(); ++i) {
      const bool v = value[pis[i]] != 0;
      const double flip = v ? chains[i].beta : chains[i].alpha;
      if (rng.bernoulli(flip)) {
        value[pis[i]] = v ? 0 : 1;
        if (count) toggles[pis[i]] += 1.0;
      }
    }
    for (netlist::GateId q : nl.dffs()) {
      const netlist::Gate& g = nl.gate(q);
      if (g.fanins.empty()) continue;
      const char d = value[g.fanins[0]];
      if (d != value[q]) {
        value[q] = d;
        if (count) toggles[q] += 1.0;
      }
    }
    settle(count);
    if (count) {
      for (std::size_t id = 0; id < nl.size(); ++id) ones[id] += value[id];
    }
  }

  MeasuredActivity m;
  m.cycles = cycles;
  m.probability.resize(nl.size());
  m.density.resize(nl.size());
  for (std::size_t id = 0; id < nl.size(); ++id) {
    m.probability[id] = ones[id] / static_cast<double>(cycles);
    m.density[id] = toggles[id] / static_cast<double>(cycles);
  }
  return m;
}

}  // namespace minergy::sim
