// Cycle-based logic simulation.
//
// Serves two purposes: functional sanity checks of parsed netlists, and
// Monte-Carlo measurement of signal probabilities / transition densities to
// validate the analytic estimator in activity/ (the Boolean-difference
// method is exact only under spatial independence; simulation quantifies
// the reconvergence error).
#pragma once

#include <memory>
#include <vector>

#include "activity/activity.h"
#include "netlist/netlist.h"
#include "util/rng.h"

namespace minergy::sim {

class LogicSimulator {
 public:
  explicit LogicSimulator(const netlist::Netlist& nl);

  // Set a primary-input value (persists across cycles until changed).
  void set_input(netlist::GateId pi, bool value);
  // Force a DFF state (useful for reset).
  void set_state(netlist::GateId dff, bool value);

  // Settle the combinational network for the current inputs and states.
  void evaluate();
  // evaluate() then clock every DFF (Q <- settled D).
  void step();

  bool value(netlist::GateId id) const { return values_.at(id); }
  const netlist::Netlist& netlist() const { return nl_; }

 private:
  const netlist::Netlist& nl_;
  std::vector<char> values_;
  // Scratch fanin buffer (std::vector<bool> has no data(), so a plain
  // bool array backs the evaluate() span).
  std::unique_ptr<bool[]> scratch_;
  std::size_t scratch_cap_ = 0;
};

struct MeasuredActivity {
  std::vector<double> probability;  // per gate id
  std::vector<double> density;      // settled transitions per cycle
  int cycles = 0;
};

// Drives each PI with an independent two-state Markov chain whose stationary
// probability and per-cycle transition density match `profile`, runs
// `cycles` clock cycles (plus a warm-up), and measures per-net statistics
// under the zero-delay (settled-value) model — the same abstraction the
// analytic transition-density estimator uses.
MeasuredActivity measure_activity(const netlist::Netlist& nl,
                                  const activity::ActivityProfile& profile,
                                  int cycles, util::Rng& rng);

// Same experiment under a *unit-delay* model: every gate takes one time
// step, so unequal path depths produce hazards (glitches) that the settled
// count misses. `density` then includes every transient toggle — an upper
// activity estimate bracketing the zero-delay lower one. The per-node ratio
// glitch/settled is the classic "glitch factor" of random logic.
MeasuredActivity measure_glitch_activity(
    const netlist::Netlist& nl, const activity::ActivityProfile& profile,
    int cycles, util::Rng& rng);

}  // namespace minergy::sim
