#include "power/energy_model.h"

#include <vector>

#include "obs/metrics.h"
#include "util/check.h"

namespace minergy::power {

EnergyModel::EnergyModel(const netlist::Netlist& nl,
                         const tech::DeviceModel& dev,
                         const interconnect::WireLoads& wires,
                         const activity::ActivityResult& act,
                         double clock_frequency)
    : nl_(nl), dev_(dev), wires_(wires), act_(act), fc_(clock_frequency) {
  MINERGY_CHECK(nl.finalized());
  MINERGY_CHECK(clock_frequency > 0.0);
  MINERGY_CHECK(act.density.size() == nl.size());
  po_load_cap_ = dev_.technology().po_load_w * dev_.cin_per_wunit();
}

EnergyBreakdown EnergyModel::gate_energy(netlist::GateId id,
                                         std::span<const double> widths,
                                         double vdd, double vts) const {
  const netlist::Gate& g = nl_.gate(id);
  MINERGY_CHECK(netlist::is_combinational(g.type));
  const double w = widths[id];

  static obs::Counter& c_evals = obs::counter("power.energy.gate_evals");
  c_evals.add();

  EnergyBreakdown e;
  // E_s = Vdd * w * Ioff / f_c (leakage flows for the full cycle).
  e.static_energy = vdd * w * dev_.ioff_per_wunit(vts) / fc_;

  // Switched capacitance: own parasitics + stack internals + receiver
  // inputs + wire.
  const double fin = static_cast<double>(g.fanin_count());
  double cap =
      w * (dev_.cpar_per_wunit() + (fin - 1.0) * dev_.cmid_per_wunit());
  for (netlist::GateId out : g.fanouts) {
    cap += netlist::is_combinational(nl_.gate(out).type)
               ? widths[out] * dev_.cin_per_wunit()
               : po_load_cap_;
  }
  if (g.is_primary_output) cap += po_load_cap_;
  cap += wires_.net_cap(id);

  e.dynamic_energy = 0.5 * act_.density[id] * vdd * vdd * cap;
  return e;
}

double EnergyModel::short_circuit_energy(netlist::GateId id,
                                         std::span<const double> widths,
                                         double vdd, double vts,
                                         double input_transition) const {
  const netlist::Gate& g = nl_.gate(id);
  MINERGY_CHECK(netlist::is_combinational(g.type));
  static obs::Counter& c_evals =
      obs::counter("power.energy.short_circuit_evals");
  c_evals.add();
  const double window = vdd - 2.0 * vts;
  if (window <= 0.0 || input_transition <= 0.0) return 0.0;
  const double i_mid = widths[id] * dev_.idrive_per_wunit(0.5 * vdd, vts) /
                       tech::DeviceModel::stack_factor(g.fanin_count());
  return act_.density[id] / 6.0 * i_mid * input_transition * window;
}

EnergyBreakdown EnergyModel::total_energy(std::span<const double> widths,
                                          double vdd,
                                          std::span<const double> vts) const {
  MINERGY_CHECK(widths.size() == nl_.size());
  MINERGY_CHECK(vts.size() == nl_.size());
  EnergyBreakdown total;
  for (netlist::GateId id : nl_.combinational()) {
    total += gate_energy(id, widths, vdd, vts[id]);
  }
  return total;
}

EnergyBreakdown EnergyModel::total_energy(std::span<const double> widths,
                                          double vdd, double vts) const {
  std::vector<double> v(nl_.size(), vts);
  return total_energy(widths, vdd, std::span<const double>(v));
}

double EnergyModel::total_power(std::span<const double> widths, double vdd,
                                double vts) const {
  return total_energy(widths, vdd, vts).total() * fc_;
}

}  // namespace minergy::power
