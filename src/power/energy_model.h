// Energy models (Appendix A.1 of the paper).
//
// Static energy per cycle of gate i:   E_si = Vdd * w_i * Ioff / f_c
// Dynamic energy per cycle of gate i:
//   E_di = 1/2 * a_i * Vdd^2 * [ w_i*(C_PD + (f_in-1)*C_m)
//                                + sum_j (w_j*C_t + C_INT_j) ]
// where a_i is the transition density at the gate's output. The paper
// neglects short-circuit dissipation (an order of magnitude below switching
// under typical slopes; Veendrick 1984) but announces it for "the next
// version of the optimization tool" — we implement that next version as an
// optional component:
//
//   E_sc,i = a_i/6 * w_i * I_D(Vdd/2, Vts) * tau_in * max(0, Vdd - 2*Vts)
//
// a Veendrick-style estimate built from the same transregional current:
// during an input ramp of duration tau_in both networks conduct roughly the
// midpoint current over the (Vdd - 2*Vts)/Vdd fraction of the swing. It
// vanishes smoothly in subthreshold operation, where I_D(Vdd/2, Vts) is
// exponentially small.
#pragma once

#include <span>

#include "activity/activity.h"
#include "interconnect/wire_model.h"
#include "netlist/netlist.h"
#include "tech/device_model.h"

namespace minergy::power {

struct EnergyBreakdown {
  double static_energy = 0.0;         // J per cycle
  double dynamic_energy = 0.0;        // J per cycle
  double short_circuit_energy = 0.0;  // J per cycle (optional component)

  double total() const {
    return static_energy + dynamic_energy + short_circuit_energy;
  }

  EnergyBreakdown& operator+=(const EnergyBreakdown& other) {
    static_energy += other.static_energy;
    dynamic_energy += other.dynamic_energy;
    short_circuit_energy += other.short_circuit_energy;
    return *this;
  }
};

class EnergyModel {
 public:
  // clock_frequency is f_c (Hz); activities are transitions per cycle.
  EnergyModel(const netlist::Netlist& nl, const tech::DeviceModel& dev,
              const interconnect::WireLoads& wires,
              const activity::ActivityResult& act, double clock_frequency);

  double clock_frequency() const { return fc_; }

  // Energy per cycle of one logic gate at the given operating point
  // (static + dynamic; short-circuit is opt-in below).
  EnergyBreakdown gate_energy(netlist::GateId id,
                              std::span<const double> widths, double vdd,
                              double vts) const;

  // Short-circuit energy per cycle for an input transition time tau_in (s).
  double short_circuit_energy(netlist::GateId id,
                              std::span<const double> widths, double vdd,
                              double vts, double input_transition) const;

  // Network total over all logic gates. vts indexed by gate id.
  EnergyBreakdown total_energy(std::span<const double> widths, double vdd,
                               std::span<const double> vts) const;
  EnergyBreakdown total_energy(std::span<const double> widths, double vdd,
                               double vts) const;

  // Average power (W) = energy per cycle * f_c.
  double total_power(std::span<const double> widths, double vdd,
                     double vts) const;

 private:
  const netlist::Netlist& nl_;
  const tech::DeviceModel& dev_;
  const interconnect::WireLoads& wires_;
  const activity::ActivityResult& act_;
  double fc_;
  double po_load_cap_;
};

}  // namespace minergy::power
