#include "timing/path_enum.h"

#include <algorithm>
#include <queue>

#include "obs/metrics.h"
#include "util/check.h"

namespace minergy::timing {

using netlist::GateId;
using netlist::kInvalidGate;

PathAnalyzer::PathAnalyzer(const netlist::Netlist& nl) : nl_(nl) {
  MINERGY_CHECK(nl.finalized());
  obs::counter("timing.paths.analyzer_builds").add();
  prefix_.assign(nl.size(), 0);
  suffix_.assign(nl.size(), 0);
  prefix_arg_.assign(nl.size(), kInvalidGate);
  suffix_arg_.assign(nl.size(), kInvalidGate);

  const auto& topo = nl.combinational();
  for (GateId id : topo) {
    const netlist::Gate& g = nl.gate(id);
    std::int64_t best = 0;
    GateId arg = kInvalidGate;
    for (GateId f : g.fanins) {
      if (!netlist::is_combinational(nl.gate(f).type)) continue;
      if (prefix_[f] > best || (prefix_[f] == best && arg == kInvalidGate)) {
        best = prefix_[f];
        arg = f;
      }
    }
    prefix_[id] = best + g.branch_count();
    prefix_arg_[id] = arg;
  }
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const GateId id = *it;
    const netlist::Gate& g = nl.gate(id);
    std::int64_t best = 0;
    GateId arg = kInvalidGate;
    for (GateId out : g.fanouts) {
      if (!netlist::is_combinational(nl.gate(out).type)) continue;
      if (suffix_[out] > best || (suffix_[out] == best && arg == kInvalidGate)) {
        best = suffix_[out];
        arg = out;
      }
    }
    suffix_[id] = best + g.branch_count();
    suffix_arg_[id] = arg;
  }
}

std::int64_t PathAnalyzer::prefix_criticality(GateId id) const {
  MINERGY_CHECK(id < prefix_.size());
  return prefix_[id];
}

std::int64_t PathAnalyzer::suffix_criticality(GateId id) const {
  MINERGY_CHECK(id < suffix_.size());
  return suffix_[id];
}

std::int64_t PathAnalyzer::through_criticality(GateId id) const {
  return prefix_criticality(id) + suffix_criticality(id) -
         nl_.gate(id).branch_count();
}

Path PathAnalyzer::most_critical_through(GateId id) const {
  Path p;
  p.criticality = through_criticality(id);
  // Walk the prefix chain back to a source-fed gate.
  std::vector<GateId> back;
  for (GateId g = id; g != kInvalidGate; g = prefix_arg_[g]) back.push_back(g);
  std::reverse(back.begin(), back.end());
  p.gates = std::move(back);
  // And the suffix chain forward (id already included).
  for (GateId g = suffix_arg_[id]; g != kInvalidGate; g = suffix_arg_[g]) {
    p.gates.push_back(g);
  }
  return p;
}

Path PathAnalyzer::most_critical() const {
  GateId best = kInvalidGate;
  for (GateId id : nl_.combinational()) {
    if (best == kInvalidGate ||
        through_criticality(id) > through_criticality(best)) {
      best = id;
    }
  }
  if (best == kInvalidGate) return {};
  return most_critical_through(best);
}

bool PathAnalyzer::is_path_end(GateId id) const {
  const netlist::Gate& g = nl_.gate(id);
  if (g.is_primary_output) return true;
  bool has_logic_fanout = false;
  for (GateId out : g.fanouts) {
    if (netlist::is_combinational(nl_.gate(out).type)) {
      has_logic_fanout = true;
    } else {
      return true;  // feeds a DFF D-pin
    }
  }
  return !has_logic_fanout;  // dead-end logic still terminates a path
}

std::vector<Path> PathAnalyzer::top_k(std::size_t k) const {
  static obs::Counter& c_paths = obs::counter("timing.paths.enumerated");
  c_paths.add(static_cast<std::int64_t>(k));
  // Best-first search over partial paths. The priority of a partial path
  // ending at gate g is (criticality so far) + (best completion from g),
  // which is admissible and exact, so paths pop in true decreasing order.
  struct Node {
    std::int64_t bound;
    std::int64_t so_far;
    bool complete;
    std::vector<GateId> gates;
  };
  struct Cmp {
    bool operator()(const Node& a, const Node& b) const {
      return a.bound < b.bound;  // max-heap
    }
  };
  std::priority_queue<Node, std::vector<Node>, Cmp> heap;

  for (GateId id : nl_.combinational()) {
    // Path starts: gates with no logic fanins (fed directly by sources).
    bool has_logic_fanin = false;
    for (GateId f : nl_.gate(id).fanins) {
      if (netlist::is_combinational(nl_.gate(f).type)) has_logic_fanin = true;
    }
    if (has_logic_fanin) continue;
    const std::int64_t own = nl_.gate(id).branch_count();
    heap.push({suffix_[id], own, false, {id}});
  }

  std::vector<Path> out;
  while (!heap.empty() && out.size() < k) {
    Node node = heap.top();
    heap.pop();
    if (node.complete) {
      out.push_back({std::move(node.gates), node.so_far});
      continue;
    }
    const GateId tail = node.gates.back();
    if (is_path_end(tail)) {
      heap.push({node.so_far, node.so_far, true, node.gates});
    }
    for (GateId next : nl_.gate(tail).fanouts) {
      if (!netlist::is_combinational(nl_.gate(next).type)) continue;
      Node child;
      child.so_far = node.so_far + nl_.gate(next).branch_count();
      child.bound = node.so_far + suffix_[next];
      child.complete = false;
      child.gates = node.gates;
      child.gates.push_back(next);
      heap.push(std::move(child));
    }
  }
  return out;
}

}  // namespace minergy::timing
