#include "timing/sta.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace minergy::timing {

TimingReport run_sta(const DelayCalculator& calc,
                     std::span<const double> widths, double vdd,
                     std::span<const double> vts, double cycle_time) {
  std::vector<double> v(calc.netlist().size(), vdd);
  return run_sta(calc, widths, std::span<const double>(v), vts, cycle_time);
}

TimingReport run_sta(const DelayCalculator& calc,
                     std::span<const double> widths,
                     std::span<const double> vdd,
                     std::span<const double> vts, double cycle_time) {
  const netlist::Netlist& nl = calc.netlist();
  MINERGY_CHECK(widths.size() == nl.size());
  MINERGY_CHECK(vdd.size() == nl.size());
  MINERGY_CHECK(vts.size() == nl.size());

  static obs::Counter& c_runs = obs::counter("timing.sta.runs");
  static obs::Histogram& h_micros = obs::histogram("timing.sta.micros");
  c_runs.add();
  const obs::ScopedTimer timer(h_micros);

  TimingReport r;
  r.gate_delay.assign(nl.size(), 0.0);
  r.arrival.assign(nl.size(), 0.0);
  r.slack.assign(nl.size(), 0.0);

  // Forward pass: delays and arrivals together (slope coupling). Gates
  // within one topological level read only earlier-level results and write
  // only their own slots, so a level can be fanned across the pool; every
  // per-gate value is identical to the serial loop's, at any thread count.
  util::ThreadPool& pool = util::global_pool();
  std::vector<netlist::GateId> worst_fanin(nl.size(), netlist::kInvalidGate);
  for (const auto& bucket : nl.level_groups()) {
    pool.parallel_for(bucket.size(), [&](std::size_t bi) {
      const netlist::GateId id = bucket[bi];
      const netlist::Gate& g = nl.gate(id);
      double max_fanin_delay = 0.0;
      double max_fanin_arrival = 0.0;
      netlist::GateId argmax = netlist::kInvalidGate;
      for (netlist::GateId f : g.fanins) {
        max_fanin_delay = std::max(max_fanin_delay, r.gate_delay[f]);
        if (r.arrival[f] >= max_fanin_arrival) {
          max_fanin_arrival = r.arrival[f];
          argmax = netlist::is_combinational(nl.gate(f).type)
                       ? f
                       : netlist::kInvalidGate;
        }
      }
      r.gate_delay[id] =
          calc.gate_delay(id, widths, vdd[id], vts[id], max_fanin_delay);
      r.arrival[id] = max_fanin_arrival + r.gate_delay[id];
      worst_fanin[id] = argmax;
    });
  }

  // Critical endpoint.
  netlist::GateId worst_end = netlist::kInvalidGate;
  for (netlist::GateId id : nl.sink_drivers()) {
    if (worst_end == netlist::kInvalidGate ||
        r.arrival[id] > r.arrival[worst_end]) {
      worst_end = id;
    }
  }
  if (worst_end != netlist::kInvalidGate) {
    r.critical_delay = r.arrival[worst_end];
    for (netlist::GateId id = worst_end; id != netlist::kInvalidGate;
         id = worst_fanin[id]) {
      r.critical_path.push_back(id);
    }
    std::reverse(r.critical_path.begin(), r.critical_path.end());
  }

  // Backward pass: required times -> slack. Pull form of the classic
  // push-form relaxation: a gate's required time is the min over its
  // combinational fanouts of (their required - their delay), seeded with
  // cycle_time at sink drivers. Equivalent because every fanout sits at a
  // strictly later level and is final before its level is pulled from, and
  // a floating-point min over the same operand multiset is
  // order-independent for non-NaN values — so the per-level fan-out across
  // the pool is bit-identical to the serial sweep.
  std::vector<double> required(nl.size(),
                               std::numeric_limits<double>::infinity());
  std::vector<char> is_sink(nl.size(), 0);
  for (netlist::GateId id : nl.sink_drivers()) is_sink[id] = 1;
  const auto& groups = nl.level_groups();
  for (auto git = groups.rbegin(); git != groups.rend(); ++git) {
    const auto& bucket = *git;
    pool.parallel_for(bucket.size(), [&](std::size_t bi) {
      const netlist::GateId id = bucket[bi];
      double req = is_sink[id] ? cycle_time
                               : std::numeric_limits<double>::infinity();
      for (netlist::GateId o : nl.gate(id).fanouts) {
        if (netlist::is_combinational(nl.gate(o).type)) {
          req = std::min(req, required[o] - r.gate_delay[o]);
        }
      }
      required[id] = req;
    });
  }
  for (netlist::GateId id : nl.combinational()) {
    r.slack[id] = std::isinf(required[id]) ? cycle_time - r.arrival[id]
                                           : required[id] - r.arrival[id];
  }
  return r;
}

TimingReport run_sta(const DelayCalculator& calc,
                     std::span<const double> widths, double vdd, double vts,
                     double cycle_time) {
  std::vector<double> v(calc.netlist().size(), vts);
  return run_sta(calc, widths, vdd, std::span<const double>(v), cycle_time);
}

MinTimingReport run_min_sta(const DelayCalculator& calc,
                            std::span<const double> widths, double vdd,
                            std::span<const double> vts) {
  const netlist::Netlist& nl = calc.netlist();
  MINERGY_CHECK(widths.size() == nl.size());
  MINERGY_CHECK(vts.size() == nl.size());

  static obs::Counter& c_runs = obs::counter("timing.sta.min_runs");
  c_runs.add();

  MinTimingReport r;
  r.gate_delay.assign(nl.size(), 0.0);
  r.arrival.assign(nl.size(), 0.0);
  std::vector<netlist::GateId> best_fanin(nl.size(), netlist::kInvalidGate);

  for (netlist::GateId id : nl.combinational()) {
    const netlist::Gate& g = nl.gate(id);
    double min_fanin_delay = std::numeric_limits<double>::infinity();
    double min_fanin_arrival = std::numeric_limits<double>::infinity();
    netlist::GateId argmin = netlist::kInvalidGate;
    for (netlist::GateId f : g.fanins) {
      min_fanin_delay = std::min(min_fanin_delay, r.gate_delay[f]);
      if (r.arrival[f] <= min_fanin_arrival) {
        min_fanin_arrival = r.arrival[f];
        argmin = netlist::is_combinational(nl.gate(f).type)
                     ? f
                     : netlist::kInvalidGate;
      }
    }
    if (g.fanins.empty()) {
      min_fanin_delay = 0.0;
      min_fanin_arrival = 0.0;
    }
    r.gate_delay[id] =
        calc.gate_delay_min(id, widths, vdd, vts[id], min_fanin_delay);
    r.arrival[id] = min_fanin_arrival + r.gate_delay[id];
    best_fanin[id] = argmin;
  }

  netlist::GateId best_end = netlist::kInvalidGate;
  for (netlist::GateId id : nl.sink_drivers()) {
    if (best_end == netlist::kInvalidGate ||
        r.arrival[id] < r.arrival[best_end]) {
      best_end = id;
    }
  }
  if (best_end != netlist::kInvalidGate) {
    r.shortest_delay = r.arrival[best_end];
    for (netlist::GateId id = best_end; id != netlist::kInvalidGate;
         id = best_fanin[id]) {
      r.shortest_path.push_back(id);
    }
    std::reverse(r.shortest_path.begin(), r.shortest_path.end());
  }
  return r;
}

bool hold_safe(const MinTimingReport& report, double hold_margin) {
  return report.shortest_delay >= hold_margin;
}

}  // namespace minergy::timing
