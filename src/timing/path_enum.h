// Path criticality analysis and K-most-critical-path enumeration.
//
// The paper (Section 4.2) defines the criticality N_cj of a path as the sum
// of the fanouts of its gates and processes paths in decreasing criticality
// using a modified Ju–Saleh incremental enumeration. We provide:
//   * O(E) dynamic programming for the best path through every gate, and
//   * an exact best-first top-K enumerator with an admissible bound
//     (prefix-so-far + best-possible-suffix), the Ju–Saleh scheme adapted
//     to the fanout-sum criticality measure.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace minergy::timing {

struct Path {
  std::vector<netlist::GateId> gates;  // input side first, logic gates only
  std::int64_t criticality = 0;        // sum of branch counts along the path
};

class PathAnalyzer {
 public:
  explicit PathAnalyzer(const netlist::Netlist& nl);

  const netlist::Netlist& netlist() const { return nl_; }

  // Max criticality of a source->gate prefix ending at (and including) id.
  std::int64_t prefix_criticality(netlist::GateId id) const;
  // Max criticality of a gate->sink suffix starting at (and including) id.
  std::int64_t suffix_criticality(netlist::GateId id) const;
  // Max criticality over complete paths containing id.
  std::int64_t through_criticality(netlist::GateId id) const;

  // The most critical path in the network (ties broken deterministically).
  Path most_critical() const;
  // The most critical complete path passing through `id`.
  Path most_critical_through(netlist::GateId id) const;

  // Exact enumeration of the K most critical distinct paths in decreasing
  // criticality. Worst-case cost grows with K, not with the (exponential)
  // total path count.
  std::vector<Path> top_k(std::size_t k) const;

 private:
  bool is_path_end(netlist::GateId id) const;

  const netlist::Netlist& nl_;
  std::vector<std::int64_t> prefix_, suffix_;
  std::vector<netlist::GateId> prefix_arg_, suffix_arg_;
};

}  // namespace minergy::timing
