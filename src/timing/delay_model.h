// Transregional gate-delay model (Eq. A3 of the paper).
//
// The worst-case propagation delay of gate i is the sum of four components:
//
//   t_di = k_slope(Vts/Vdd) * max_j t_d(fanin_j)            (input slope)
//        + (Vdd/2) * C_L / (I_D*w_i/s_stack - f_in*w_i*Ioff) (switching)
//        + R_INT * (C_INT/2 + C_receivers)                   (wire RC)
//        + L_INT / v                                         (time of flight)
//
// with C_L = w_i*(C_PD + (f_in-1)*C_m) + sum_j (w_j*C_t + C_INT).
// The drive current is the transregional alpha-power model from tech/, so
// the same expression covers super- and subthreshold operation.
#pragma once

#include <span>
#include <vector>

#include "interconnect/wire_model.h"
#include "netlist/netlist.h"
#include "tech/device_model.h"

namespace minergy::timing {

struct DelayComponents {
  double slope = 0.0;
  double switching = 0.0;
  double wire_rc = 0.0;
  double flight = 0.0;
  double total() const { return slope + switching + wire_rc + flight; }
};

// Bound to one netlist / technology / wire model; stateless over the
// optimization variables (widths, Vdd, Vts), which are passed per call so
// the optimizer can probe candidate states cheaply.
class DelayCalculator {
 public:
  DelayCalculator(const netlist::Netlist& nl, const tech::DeviceModel& dev,
                  const interconnect::WireLoads& wires);

  const netlist::Netlist& netlist() const { return nl_; }
  const tech::DeviceModel& device() const { return dev_; }

  // Total switched/driven load at gate id's output (F). `widths` is indexed
  // by gate id; non-logic entries are ignored. Fanout loads use the fanout
  // gate's width (DFF and primary-output pins present the technology's
  // po_load_w equivalent width).
  double load_cap(netlist::GateId id, std::span<const double> widths) const;

  // Receiver-side input capacitance only (used for the wire RC term).
  double receiver_cap(netlist::GateId id, std::span<const double> widths) const;

  // Worst-case delay of gate id. max_fanin_delay is the largest delay among
  // the gate's logic fanins (0 at sources). Returns +inf when the drive
  // current is non-positive (leakage exceeds drive).
  double gate_delay(netlist::GateId id, std::span<const double> widths,
                    double vdd, double vts, double max_fanin_delay) const;

  DelayComponents gate_delay_components(netlist::GateId id,
                                        std::span<const double> widths,
                                        double vdd, double vts,
                                        double max_fanin_delay) const;

  // Best-case (contamination) delay for min-delay/hold analysis: the
  // fastest of the two output transitions switches through the *parallel*
  // network (stack factor 1) with the earliest-arriving input
  // (min_fanin_delay in the slope term). Always <= gate_delay(...) given
  // min_fanin_delay <= max_fanin_delay.
  double gate_delay_min(netlist::GateId id, std::span<const double> widths,
                        double vdd, double vts,
                        double min_fanin_delay) const;

  // Intrinsic (self-loaded, zero fanin-delay) lower bound on the gate's
  // delay at the given operating point — the floor the width search
  // approaches as w -> w_max.
  double intrinsic_delay_floor(netlist::GateId id,
                               std::span<const double> widths, double vdd,
                               double vts) const;

 private:
  const netlist::Netlist& nl_;
  const tech::DeviceModel& dev_;
  const interconnect::WireLoads& wires_;
  double po_load_cap_;  // F, fixed pin load for POs and DFF D-pins
};

}  // namespace minergy::timing
