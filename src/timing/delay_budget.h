// Procedure 1: maximum-delay budgeting.
//
// Every logic gate receives a maximum-delay budget t_MAX,i such that no
// input-to-output path's budget sum exceeds b * T_c. Budgets are assigned
// path by path in decreasing fanout-sum criticality; within a path the
// remaining budget is split among still-unassigned gates in proportion to
// their fanouts (Eqs. 2 and 3 of the paper).
//
// Two post-processing steps follow the paper's Section 4.2 remarks:
//  1. slope reserve — a gate whose budget is smaller than the slope
//     contribution of its slowest fanin's budget can never meet it; budget
//     is shifted from that fanin to the gate.
//  2. safety rescale — if adjustments (or pathological path structure) push
//     any budget-path sum above b * T_c, all budgets are scaled down
//     uniformly so the invariant is restored.
#pragma once

#include <vector>

#include "netlist/netlist.h"
#include "timing/path_enum.h"

namespace minergy::timing {

struct BudgetOptions {
  double clock_skew_b = 0.95;   // b <= 1 in Eq. (1)
  double slope_reserve = 0.35;  // assumed worst-case slope coefficient
  bool postprocess = true;
};

struct BudgetResult {
  std::vector<double> t_max;  // per gate id; 0 for non-logic gates
  int rounds = 0;             // critical paths processed
  int exhausted_paths = 0;    // paths whose budget was already consumed
  int slope_adjustments = 0;  // post-processing budget shifts
  double longest_budget_path = 0.0;  // after rescale, <= b*Tc
  double rescale_factor = 1.0;       // 1.0 when no rescale was needed
};

class DelayBudgeter {
 public:
  explicit DelayBudgeter(const netlist::Netlist& nl);

  // Fanout-proportional budgeting (the paper's Procedure 1).
  BudgetResult assign(double cycle_time, const BudgetOptions& opts = {}) const;

  // Ablation: gate-count-proportional budgeting (every gate on the longest
  // path through it gets an equal share, ignoring fanout weighting).
  BudgetResult assign_uniform(double cycle_time,
                              const BudgetOptions& opts = {}) const;

  // Longest path sum of the given budgets (DP over the DAG).
  double longest_budget_path(const std::vector<double>& t_max) const;

 private:
  BudgetResult assign_impl(double cycle_time, const BudgetOptions& opts,
                           bool fanout_weighted) const;
  void postprocess(BudgetResult* result, double budget_cap,
                   const BudgetOptions& opts) const;

  const netlist::Netlist& nl_;
  PathAnalyzer paths_;
};

}  // namespace minergy::timing
