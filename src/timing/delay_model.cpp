#include "timing/delay_model.h"

#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "util/check.h"

namespace minergy::timing {

DelayCalculator::DelayCalculator(const netlist::Netlist& nl,
                                 const tech::DeviceModel& dev,
                                 const interconnect::WireLoads& wires)
    : nl_(nl), dev_(dev), wires_(wires) {
  MINERGY_CHECK(nl.finalized());
  po_load_cap_ = dev_.technology().po_load_w * dev_.cin_per_wunit();
}

double DelayCalculator::receiver_cap(netlist::GateId id,
                                     std::span<const double> widths) const {
  const netlist::Gate& g = nl_.gate(id);
  double c = g.is_primary_output ? po_load_cap_ : 0.0;
  for (netlist::GateId out : g.fanouts) {
    if (netlist::is_combinational(nl_.gate(out).type)) {
      c += widths[out] * dev_.cin_per_wunit();
    } else {
      c += po_load_cap_;  // DFF D-pin
    }
  }
  return c;
}

double DelayCalculator::load_cap(netlist::GateId id,
                                 std::span<const double> widths) const {
  const netlist::Gate& g = nl_.gate(id);
  const double w = widths[id];
  const double fin = static_cast<double>(g.fanin_count());
  const double self =
      w * (dev_.cpar_per_wunit() + (fin - 1.0) * dev_.cmid_per_wunit());
  return self + receiver_cap(id, widths) + wires_.net_cap(id);
}

DelayComponents DelayCalculator::gate_delay_components(
    netlist::GateId id, std::span<const double> widths, double vdd, double vts,
    double max_fanin_delay) const {
  const netlist::Gate& g = nl_.gate(id);
  MINERGY_CHECK(netlist::is_combinational(g.type));
  const double w = widths[id];
  const int fin = g.fanin_count();

  // The single hottest call in the stack (every STA gate visit and every
  // sizer bisection step lands here); the counter is one relaxed add.
  static obs::Counter& c_evals = obs::counter("timing.delay.gate_evals");
  c_evals.add();

  DelayComponents c;
  c.slope = dev_.slope_coefficient(vdd, vts) * max_fanin_delay;

  const double drive = w * (dev_.idrive_per_wunit(vdd, vts) /
                                tech::DeviceModel::stack_factor(fin) -
                            static_cast<double>(fin) * dev_.ioff_per_wunit(vts));
  if (drive <= 0.0) {
    c.switching = std::numeric_limits<double>::infinity();
    return c;
  }
  c.switching = 0.5 * vdd * load_cap(id, widths) / drive;
  c.wire_rc = wires_.net_res(id) *
              (0.5 * wires_.net_cap(id) + receiver_cap(id, widths));
  c.flight = wires_.flight_time(id);
  return c;
}

double DelayCalculator::gate_delay(netlist::GateId id,
                                   std::span<const double> widths, double vdd,
                                   double vts, double max_fanin_delay) const {
  return gate_delay_components(id, widths, vdd, vts, max_fanin_delay).total();
}

double DelayCalculator::gate_delay_min(netlist::GateId id,
                                       std::span<const double> widths,
                                       double vdd, double vts,
                                       double min_fanin_delay) const {
  const netlist::Gate& g = nl_.gate(id);
  MINERGY_CHECK(netlist::is_combinational(g.type));
  const double w = widths[id];
  const int fin = g.fanin_count();

  static obs::Counter& c_evals = obs::counter("timing.delay.min_gate_evals");
  c_evals.add();

  const double slope = dev_.slope_coefficient(vdd, vts) * min_fanin_delay;
  // Parallel-network transition: no stack division.
  const double drive =
      w * (dev_.idrive_per_wunit(vdd, vts) -
           static_cast<double>(fin) * dev_.ioff_per_wunit(vts));
  if (drive <= 0.0) return std::numeric_limits<double>::infinity();
  const double switching = 0.5 * vdd * load_cap(id, widths) / drive;
  const double wire_rc = wires_.net_res(id) *
                         (0.5 * wires_.net_cap(id) + receiver_cap(id, widths));
  return slope + switching + wire_rc + wires_.flight_time(id);
}

double DelayCalculator::intrinsic_delay_floor(netlist::GateId id,
                                              std::span<const double> widths,
                                              double vdd, double vts) const {
  // Evaluate at maximum width with zero fanin delay: everything except the
  // slope term, at the strongest drive the technology allows.
  std::vector<double> w(widths.begin(), widths.end());
  w[id] = dev_.technology().w_max;
  return gate_delay(id, w, vdd, vts, 0.0);
}

}  // namespace minergy::timing
