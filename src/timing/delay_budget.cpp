#include "timing/delay_budget.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace minergy::timing {

using netlist::GateId;
using netlist::kInvalidGate;

DelayBudgeter::DelayBudgeter(const netlist::Netlist& nl)
    : nl_(nl), paths_(nl) {}

BudgetResult DelayBudgeter::assign(double cycle_time,
                                   const BudgetOptions& opts) const {
  return assign_impl(cycle_time, opts, /*fanout_weighted=*/true);
}

BudgetResult DelayBudgeter::assign_uniform(double cycle_time,
                                           const BudgetOptions& opts) const {
  return assign_impl(cycle_time, opts, /*fanout_weighted=*/false);
}

BudgetResult DelayBudgeter::assign_impl(double cycle_time,
                                        const BudgetOptions& opts,
                                        bool fanout_weighted) const {
  MINERGY_CHECK(cycle_time > 0.0);
  MINERGY_CHECK(opts.clock_skew_b > 0.0 && opts.clock_skew_b <= 1.0);
  const double budget_cap = opts.clock_skew_b * cycle_time;

  BudgetResult result;
  result.t_max.assign(nl_.size(), 0.0);
  std::vector<char> assigned(nl_.size(), 0);

  const double weight_of = 1.0;  // used for the uniform ablation
  auto gate_weight = [&](GateId id) -> double {
    return fanout_weighted ? static_cast<double>(nl_.gate(id).branch_count())
                           : weight_of;
  };

  std::size_t remaining = nl_.num_combinational();
  while (remaining > 0) {
    // Most critical path that still contains an unassigned gate.
    GateId pivot = kInvalidGate;
    for (GateId id : nl_.combinational()) {
      if (assigned[id]) continue;
      if (pivot == kInvalidGate ||
          paths_.through_criticality(id) > paths_.through_criticality(pivot)) {
        pivot = id;
      }
    }
    MINERGY_CHECK(pivot != kInvalidGate);
    const Path path = paths_.most_critical_through(pivot);
    ++result.rounds;

    // Eq. (3): distribute what the already-assigned gates left over.
    double consumed = 0.0;
    double open_weight = 0.0;
    for (GateId id : path.gates) {
      if (assigned[id]) {
        consumed += result.t_max[id];
      } else {
        open_weight += gate_weight(id);
      }
    }
    MINERGY_CHECK(open_weight > 0.0);
    double available = budget_cap - consumed;
    if (available <= 0.0) {
      // Higher-criticality paths consumed this one entirely; give the
      // leftover gates a token budget and let post-processing/rescale cope.
      ++result.exhausted_paths;
      available = 0.01 * budget_cap;
    }
    for (GateId id : path.gates) {
      if (assigned[id]) continue;
      result.t_max[id] = gate_weight(id) * available / open_weight;
      assigned[id] = 1;
      --remaining;
    }
  }

  if (opts.postprocess) postprocess(&result, budget_cap, opts);

  // Safety rescale to restore the invariant exactly.
  const double longest = longest_budget_path(result.t_max);
  if (longest > budget_cap && longest > 0.0) {
    result.rescale_factor = budget_cap / longest;
    for (double& t : result.t_max) t *= result.rescale_factor;
  }
  result.longest_budget_path = longest_budget_path(result.t_max);
  return result;
}

void DelayBudgeter::postprocess(BudgetResult* result, double budget_cap,
                                const BudgetOptions& opts) const {
  (void)budget_cap;
  // A gate's delay includes slope_reserve * max(fanin budgets); if the
  // budget doesn't even cover that, shift the shortfall from the slowest
  // fanin (whose own budget shrinks, keeping the two-gate chain total
  // constant).
  for (GateId id : nl_.combinational()) {
    const netlist::Gate& g = nl_.gate(id);
    GateId slowest = kInvalidGate;
    for (GateId f : g.fanins) {
      if (!netlist::is_combinational(nl_.gate(f).type)) continue;
      if (slowest == kInvalidGate ||
          result->t_max[f] > result->t_max[slowest]) {
        slowest = f;
      }
    }
    if (slowest == kInvalidGate) continue;
    const double need = opts.slope_reserve * result->t_max[slowest];
    if (result->t_max[id] >= need) continue;
    double shortfall = need - result->t_max[id];
    // Never reduce the donor below half its budget.
    const double donatable = 0.5 * result->t_max[slowest];
    shortfall = std::min(shortfall, donatable);
    result->t_max[slowest] -= shortfall;
    result->t_max[id] += shortfall;
    ++result->slope_adjustments;
  }
}

double DelayBudgeter::longest_budget_path(
    const std::vector<double>& t_max) const {
  MINERGY_CHECK(t_max.size() == nl_.size());
  std::vector<double> acc(nl_.size(), 0.0);
  double longest = 0.0;
  for (GateId id : nl_.combinational()) {
    double best_in = 0.0;
    for (GateId f : nl_.gate(id).fanins) {
      if (netlist::is_combinational(nl_.gate(f).type)) {
        best_in = std::max(best_in, acc[f]);
      }
    }
    acc[id] = best_in + t_max[id];
    longest = std::max(longest, acc[id]);
  }
  return longest;
}

}  // namespace minergy::timing
