// Static timing analysis over the combinational core.
//
// Gate delays couple through the input-slope term (a gate's delay depends on
// its slowest fanin's *delay*, Eq. A3), so delays and arrivals are both
// computed in one topological pass.
#pragma once

#include <span>
#include <vector>

#include "timing/delay_model.h"

namespace minergy::timing {

struct TimingReport {
  std::vector<double> gate_delay;  // per gate id; 0 for sources
  std::vector<double> arrival;     // per gate id; 0 at sources
  double critical_delay = 0.0;     // max arrival over PO / DFF-D drivers
  std::vector<netlist::GateId> critical_path;  // source-side first

  // Required times / slack against a cycle constraint.
  std::vector<double> slack;  // per gate id (filled by run_sta)
};

// vts is indexed by gate id (per-gate thresholds support the paper's
// multiple-threshold mode; pass the same value everywhere for n_v = 1).
TimingReport run_sta(const DelayCalculator& calc, std::span<const double> widths,
                     double vdd, std::span<const double> vts,
                     double cycle_time);

// Convenience overload: uniform threshold.
TimingReport run_sta(const DelayCalculator& calc, std::span<const double> widths,
                     double vdd, double vts, double cycle_time);

// Fully per-gate operating point (multiple supply *and* threshold
// voltages — the paper's "more than one threshold or power supply voltage
// if desired"). vdd indexed by gate id.
TimingReport run_sta(const DelayCalculator& calc, std::span<const double> widths,
                     std::span<const double> vdd, std::span<const double> vts,
                     double cycle_time);

// --- Min-delay (hold) analysis ---------------------------------------------

struct MinTimingReport {
  std::vector<double> gate_delay;  // contamination delay per gate id
  std::vector<double> arrival;     // earliest arrival per gate id
  // Shortest source-to-sink path delay (the hold-critical number).
  double shortest_delay = 0.0;
  std::vector<netlist::GateId> shortest_path;  // source-side first
};

// Earliest-arrival propagation using the best-case gate delays. A register
// transfer is hold-safe when shortest_delay >= hold_margin (e.g. the
// (1 - b) * T_c skew budget the max-delay side reserved).
MinTimingReport run_min_sta(const DelayCalculator& calc,
                            std::span<const double> widths, double vdd,
                            std::span<const double> vts);

bool hold_safe(const MinTimingReport& report, double hold_margin);

}  // namespace minergy::timing
