// Minimal transient circuit simulation of a switching CMOS stage.
//
// Plays the role HSPICE played in the paper: the closed-form transregional
// delay model (timing/) is cross-validated against numerical integration of
// the *same* device equations with full Vgs/Vds dependence:
//
//   C dVout/dt = -I_stack(Vgs = Vin(t), Vds = Vout) + small-signal leakage
//
// Drain-current Vds dependence uses the saturation current from
// tech::DeviceModel scaled by a smooth linear-region factor
// (1 - exp(-Vds / Vscale)), which reduces to the subthreshold
// (1 - exp(-Vds/vT)) form near/below threshold.
#pragma once

#include <vector>

#include "tech/device_model.h"

namespace minergy::spice {

struct StageConfig {
  double width = 4.0;        // w, in feature-size units
  int fanin = 1;             // series-stack depth (1 = inverter)
  double load_cap = 10e-15;  // external load (F)
  double input_rise_time = 50e-12;  // 0 -> Vdd ramp (s)
};

struct Waveform {
  std::vector<double> time;  // s
  std::vector<double> vout;  // V
};

class TransientSim {
 public:
  explicit TransientSim(const tech::DeviceModel& dev);

  // Drain current of the pull-down stack at the given bias (A).
  double stack_current(const StageConfig& cfg, double vgs, double vds,
                       double vts) const;

  // Output high-to-low transition for a 0->Vdd input ramp starting at t=0.
  // dt <= 0 picks an automatic step. Integration: explicit midpoint (RK2).
  Waveform simulate(const StageConfig& cfg, double vdd, double vts,
                    double dt = -1.0, double t_end = -1.0) const;

  // Propagation delay: input 50% crossing to output 50% crossing.
  // Returns a negative value if the output never crosses Vdd/2 (e.g. the
  // stage cannot sink its own leakage).
  double propagation_delay(const StageConfig& cfg, double vdd,
                           double vts, double dt = -1.0) const;

  // N identical stages back to back; each stage's input is the previous
  // stage's (mirrored) output, so input-slope effects accumulate exactly as
  // the closed-form slope term models them. Returns total delay.
  double chain_delay(const StageConfig& cfg, int stages, double vdd,
                     double vts, double dt = -1.0) const;

 private:
  const tech::DeviceModel& dev_;
};

}  // namespace minergy::spice
