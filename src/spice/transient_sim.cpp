#include "spice/transient_sim.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace minergy::spice {

TransientSim::TransientSim(const tech::DeviceModel& dev) : dev_(dev) {}

double TransientSim::stack_current(const StageConfig& cfg, double vgs,
                                   double vds, double vts) const {
  if (vds <= 0.0) return 0.0;
  if (vgs <= 0.0) {
    // Off-state: subthreshold floor only.
    const double ioff = cfg.width * dev_.ioff_per_wunit(vts);
    return ioff * (1.0 - std::exp(-vds / dev_.technology().thermal_vt()));
  }
  const double isat =
      cfg.width * dev_.idrive_per_wunit(vgs, vts) /
      tech::DeviceModel::stack_factor(cfg.fanin);
  // Smooth linear-to-saturation factor; collapses to the diffusion form
  // (1 - e^{-vds/vT}) at low overdrive.
  const double overdrive = std::max(vgs - vts, 0.0);
  const double vscale =
      std::max(dev_.technology().thermal_vt(), 0.3 * overdrive);
  return isat * (1.0 - std::exp(-vds / vscale));
}

Waveform TransientSim::simulate(const StageConfig& cfg, double vdd,
                                double vts, double dt, double t_end) const {
  MINERGY_CHECK(vdd > 0.0);
  MINERGY_CHECK(cfg.load_cap > 0.0);

  // Auto timestep: resolve the nominal discharge time into ~2000 steps.
  const double i_nominal = std::max(
      stack_current(cfg, vdd, 0.5 * vdd, vts), 1e-18);
  const double t_nominal = cfg.load_cap * vdd / i_nominal;
  if (dt <= 0.0) dt = (t_nominal + cfg.input_rise_time) / 2000.0;
  if (t_end <= 0.0) t_end = 20.0 * t_nominal + 2.0 * cfg.input_rise_time;

  Waveform w;
  const std::size_t max_points = 400000;
  double v = vdd;
  double t = 0.0;
  auto vin_at = [&](double tt) {
    return cfg.input_rise_time <= 0.0
               ? vdd
               : vdd * std::clamp(tt / cfg.input_rise_time, 0.0, 1.0);
  };
  while (t <= t_end && w.time.size() < max_points) {
    w.time.push_back(t);
    w.vout.push_back(v);
    // Explicit midpoint.
    const double k1 = -stack_current(cfg, vin_at(t), v, vts) / cfg.load_cap;
    const double v_mid = std::max(0.0, v + 0.5 * dt * k1);
    const double k2 =
        -stack_current(cfg, vin_at(t + 0.5 * dt), v_mid, vts) / cfg.load_cap;
    v = std::max(0.0, v + dt * k2);
    t += dt;
    if (v < 1e-4 * vdd) {  // fully discharged
      w.time.push_back(t);
      w.vout.push_back(v);
      break;
    }
  }
  return w;
}

double TransientSim::propagation_delay(const StageConfig& cfg, double vdd,
                                       double vts, double dt) const {
  const Waveform w = simulate(cfg, vdd, vts, dt);
  const double v50 = 0.5 * vdd;
  const double t_in_50 = 0.5 * cfg.input_rise_time;
  for (std::size_t i = 1; i < w.vout.size(); ++i) {
    if (w.vout[i] <= v50 && w.vout[i - 1] > v50) {
      // Linear interpolation inside the step.
      const double frac =
          (w.vout[i - 1] - v50) / (w.vout[i - 1] - w.vout[i]);
      const double t50 =
          w.time[i - 1] + frac * (w.time[i] - w.time[i - 1]);
      return t50 - t_in_50;
    }
  }
  return -1.0;
}

double TransientSim::chain_delay(const StageConfig& cfg, int stages,
                                 double vdd, double vts, double dt) const {
  MINERGY_CHECK(stages >= 1);
  double total = 0.0;
  double edge = cfg.input_rise_time;
  for (int s = 0; s < stages; ++s) {
    StageConfig stage = cfg;
    stage.input_rise_time = edge;
    const double d = propagation_delay(stage, vdd, vts, dt);
    if (d < 0.0) return -1.0;
    total += d;
    // The next stage sees (by symmetry) an edge whose 10-90 ramp we
    // approximate as twice the 50% delay of this stage.
    edge = std::max(2.0 * d, 1e-15);
  }
  return total;
}

}  // namespace minergy::spice
