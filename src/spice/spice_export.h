// Transistor-level SPICE export of an optimized circuit.
//
// Emits an HSPICE-style deck for the (Vdd, Vts, widths) operating point the
// optimizer selected: level-1 model cards derived from the Technology,
// static CMOS pull-up/pull-down networks per gate (series/parallel stacks,
// the paper's symmetric-gate assumption), lumped wire parasitics per net,
// and — per Figure 1 — the substrate / n-well bias rails that realize the
// chosen threshold on an implant-free process.
//
// XOR/XNOR gates are emitted as their standard 4x NAND2 decomposition
// (static CMOS has no single-stage XOR), with internal nodes named
// <gate>_x1.. so the deck stays readable.
#pragma once

#include <string>

#include "netlist/netlist.h"
#include "opt/circuit_state.h"
#include "tech/body_bias.h"
#include "tech/technology.h"

namespace minergy::spice {

struct ExportOptions {
  bool include_wire_parasitics = true;
  bool include_body_bias_rails = true;
  tech::BodyBiasParams body_bias;
  std::string title;  // defaults to the netlist name
};

// Requires a finalized netlist and a state sized for it. Wire parasitics
// are taken from the same stochastic model the optimizer used.
std::string export_spice(const netlist::Netlist& nl,
                         const tech::Technology& tech,
                         const opt::CircuitState& state,
                         const ExportOptions& options = {});

void write_spice_file(const netlist::Netlist& nl,
                      const tech::Technology& tech,
                      const opt::CircuitState& state, const std::string& path,
                      const ExportOptions& options = {});

}  // namespace minergy::spice
