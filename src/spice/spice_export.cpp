#include "spice/spice_export.h"

#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

#include "interconnect/wire_model.h"
#include "util/check.h"

namespace minergy::spice {
namespace {

// SPICE node names must avoid netlist punctuation.
std::string node(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') c = '_';
  }
  return out;
}

class Emitter {
 public:
  Emitter(const netlist::Netlist& nl, const tech::Technology& tech,
          const opt::CircuitState& state, const ExportOptions& options)
      : nl_(nl), tech_(tech), state_(state), opts_(options) {}

  std::string run() {
    header();
    model_cards();
    rails();
    sources();
    gates();
    if (opts_.include_wire_parasitics) parasitics();
    os_ << "\n.end\n";
    return os_.str();
  }

 private:
  void header() {
    const std::string title =
        opts_.title.empty() ? nl_.name() : opts_.title;
    os_ << "* " << title << " — exported by minergy\n";
    os_ << "* operating point: Vdd=" << state_.vdd << "V";
    if (!state_.vts.empty()) os_ << ", Vts(gate 0)=" << state_.vts[0] << "V";
    os_ << "\n* widths are per-gate optimizer results (w * F, PMOS scaled "
        << "by beta=" << tech_.beta_ratio << ")\n";
    os_ << "* DFFs are behavioral boundaries: Q pins are driven sources, "
        << "D pins load-only\n\n";
  }

  void model_cards() {
    // Level-1 approximations derived from the alpha-power parameters:
    // kp chosen so I(Vov = 1 V) matches pc per unit width.
    const double kp = 2.0 * tech_.pc * tech_.channel_length;
    const double vto = opts_.include_body_bias_rails
                           ? opts_.body_bias.vt0_nmos
                           : (state_.vts.empty() ? 0.2 : state_.vts[0]);
    os_ << ".model nfet nmos (level=1 vto=" << vto << " kp=" << kp
        << " gamma=" << opts_.body_bias.gamma
        << " phi=" << 2.0 * opts_.body_bias.phi_f << ")\n";
    os_ << ".model pfet pmos (level=1 vto=-"
        << (opts_.include_body_bias_rails
                ? opts_.body_bias.vt0_pmos
                : (state_.vts.empty() ? 0.2 : state_.vts[0]))
        << " kp=" << 0.5 * kp << " gamma=" << opts_.body_bias.gamma
        << " phi=" << 2.0 * opts_.body_bias.phi_f << ")\n\n";
  }

  void rails() {
    os_ << "Vdd vdd 0 " << state_.vdd << "\n";
    if (opts_.include_body_bias_rails && !state_.vts.empty()) {
      // Figure 1: static reverse bias programs the optimizer's threshold on
      // implant-free devices.
      const tech::BodyBiasCalculator calc(opts_.body_bias);
      const double target = state_.vts[0];
      os_ << "Vsub vsub 0 " << calc.substrate_rail(target)
          << " * p-substrate bias for Vtn=" << target << "\n";
      os_ << "Vnw vnw 0 " << calc.nwell_rail(target, state_.vdd)
          << " * n-well bias for |Vtp|=" << target << "\n\n";
    } else {
      os_ << "Vsub vsub 0 0\nVnw vnw 0 " << state_.vdd << "\n\n";
    }
  }

  void sources() {
    os_ << "* primary inputs (replace with stimulus)\n";
    for (netlist::GateId id : nl_.primary_inputs()) {
      os_ << "V" << node(nl_.gate(id).name) << " " << node(nl_.gate(id).name)
          << " 0 0\n";
    }
    if (!nl_.dffs().empty()) {
      os_ << "* DFF Q pins (behavioral)\n";
      for (netlist::GateId id : nl_.dffs()) {
        os_ << "V" << node(nl_.gate(id).name) << " "
            << node(nl_.gate(id).name) << " 0 0\n";
      }
    }
    os_ << "\n";
  }

  std::string wn(netlist::GateId id) const {  // NMOS width in meters
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.4gu",
                  state_.widths[id] * tech_.feature_size * 1e6);
    return buf;
  }
  std::string wp(netlist::GateId id) const {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.4gu",
                  tech_.beta_ratio * state_.widths[id] * tech_.feature_size *
                      1e6);
    return buf;
  }
  std::string length() const {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.4gu", tech_.channel_length * 1e6);
    return buf;
  }

  void nmos(const std::string& inst, const std::string& d,
            const std::string& g, const std::string& s, netlist::GateId id) {
    os_ << "M" << inst << " " << d << " " << g << " " << s
        << " vsub nfet W=" << wn(id) << " L=" << length() << "\n";
  }
  void pmos(const std::string& inst, const std::string& d,
            const std::string& g, const std::string& s, netlist::GateId id) {
    os_ << "M" << inst << " " << d << " " << g << " " << s
        << " vnw pfet W=" << wp(id) << " L=" << length() << "\n";
  }

  // NAND-type stage: series NMOS pull-down, parallel PMOS pull-up.
  void nand_stage(const std::string& base, const std::string& out,
                  const std::vector<std::string>& ins, netlist::GateId id) {
    std::string lower = "0";
    for (std::size_t i = 0; i < ins.size(); ++i) {
      const std::string upper =
          i + 1 == ins.size() ? out : base + "_s" + std::to_string(i);
      nmos(base + "_n" + std::to_string(i), upper, ins[i], lower, id);
      lower = upper;
    }
    for (std::size_t i = 0; i < ins.size(); ++i) {
      pmos(base + "_p" + std::to_string(i), out, ins[i], "vdd", id);
    }
  }

  // NOR-type stage: parallel NMOS, series PMOS.
  void nor_stage(const std::string& base, const std::string& out,
                 const std::vector<std::string>& ins, netlist::GateId id) {
    for (std::size_t i = 0; i < ins.size(); ++i) {
      nmos(base + "_n" + std::to_string(i), out, ins[i], "0", id);
    }
    std::string upper = "vdd";
    for (std::size_t i = 0; i < ins.size(); ++i) {
      const std::string lower =
          i + 1 == ins.size() ? out : base + "_s" + std::to_string(i);
      pmos(base + "_p" + std::to_string(i), lower, ins[i], upper, id);
      upper = lower;
    }
  }

  void inverter(const std::string& base, const std::string& out,
                const std::string& in, netlist::GateId id) {
    nand_stage(base, out, {in}, id);
  }

  void gates() {
    for (netlist::GateId id : nl_.combinational()) {
      const netlist::Gate& g = nl_.gate(id);
      const std::string out = node(g.name);
      std::vector<std::string> ins;
      for (netlist::GateId f : g.fanins) ins.push_back(node(nl_.gate(f).name));
      os_ << "* " << g.name << " = " << to_string(g.type) << ", w="
          << state_.widths[id] << "\n";
      using netlist::GateType;
      switch (g.type) {
        case GateType::kNot:
          inverter(out, out, ins[0], id);
          break;
        case GateType::kBuf:
          inverter(out + "_i", out + "_b", ins[0], id);
          inverter(out, out, out + "_b", id);
          break;
        case GateType::kNand:
          nand_stage(out, out, ins, id);
          break;
        case GateType::kNor:
          nor_stage(out, out, ins, id);
          break;
        case GateType::kAnd:
          nand_stage(out + "_i", out + "_n", ins, id);
          inverter(out, out, out + "_n", id);
          break;
        case GateType::kOr:
          nor_stage(out + "_i", out + "_n", ins, id);
          inverter(out, out, out + "_n", id);
          break;
        case GateType::kXor:
        case GateType::kXnor: {
          // Pairwise-folded NAND2 decomposition; the final inversion
          // distinguishes XOR from XNOR.
          std::string acc = ins[0];
          for (std::size_t i = 1; i < ins.size(); ++i) {
            const std::string stage =
                out + "_x" + std::to_string(i);
            const bool last = i + 1 == ins.size();
            const std::string target =
                last && g.type == GateType::kXor ? out : stage + "_o";
            // y = nand(nand(a, nand(a,b)), nand(b, nand(a,b))).
            nand_stage(stage + "_m", stage + "_m", {acc, ins[i]}, id);
            nand_stage(stage + "_a", stage + "_a", {acc, stage + "_m"}, id);
            nand_stage(stage + "_b", stage + "_b", {ins[i], stage + "_m"},
                       id);
            nand_stage(stage + "_y", target, {stage + "_a", stage + "_b"},
                       id);
            acc = target;
          }
          if (g.type == GateType::kXnor) inverter(out, out, acc, id);
          break;
        }
        default:
          MINERGY_CHECK_MSG(false, "unexpected gate type in export");
      }
    }
    os_ << "\n";
  }

  void parasitics() {
    const interconnect::WireModel wires(tech_, nl_);
    os_ << "* lumped wire parasitics (stochastic Rent's-rule estimates)\n";
    for (netlist::GateId id : nl_.combinational()) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "C%s %s 0 %.4gf",
                    node(nl_.gate(id).name).c_str(),
                    node(nl_.gate(id).name).c_str(),
                    wires.net_cap(id) * 1e15);
      os_ << buf << "\n";
    }
  }

  const netlist::Netlist& nl_;
  const tech::Technology& tech_;
  const opt::CircuitState& state_;
  ExportOptions opts_;
  std::ostringstream os_;
};

}  // namespace

std::string export_spice(const netlist::Netlist& nl,
                         const tech::Technology& tech,
                         const opt::CircuitState& state,
                         const ExportOptions& options) {
  MINERGY_CHECK(nl.finalized());
  MINERGY_CHECK(state.widths.size() == nl.size());
  MINERGY_CHECK(state.vts.size() == nl.size());
  return Emitter(nl, tech, state, options).run();
}

void write_spice_file(const netlist::Netlist& nl,
                      const tech::Technology& tech,
                      const opt::CircuitState& state, const std::string& path,
                      const ExportOptions& options) {
  std::ofstream out(path);
  MINERGY_CHECK_MSG(static_cast<bool>(out), "cannot open " + path);
  out << export_spice(nl, tech, state, options);
}

}  // namespace minergy::spice
