// Shared experiment driver for the Table-1 / Table-2 reproductions.
//
// For each circuit the cycle time is fixed once — the paper's 300 MHz when
// the *baseline* (fixed 700 mV threshold) can meet it at full supply,
// otherwise scaled to margin * (baseline's minimum achievable cycle time) —
// and both flows are optimized against that identical constraint, exactly
// the paper's "power reduction without performance loss" comparison.
#pragma once

#include <string>
#include <vector>

#include "activity/activity.h"
#include "bench_suite/iscas.h"
#include "opt/certifier.h"
#include "opt/result.h"
#include "tech/technology.h"

namespace minergy::bench_suite {

struct ExperimentConfig {
  tech::Technology tech = tech::Technology::generic350();
  double clock_frequency = 300e6;  // the paper's f_c
  double tc_margin = 1.10;  // scaling margin when 300 MHz is infeasible
  std::vector<double> input_activities = {0.1, 0.5};
  opt::OptimizerOptions opts;
};

struct CircuitExperiment {
  std::string circuit;
  std::size_t num_gates = 0;
  int depth = 0;
  double input_activity = 0.0;
  double cycle_time = 0.0;  // the (possibly scaled) T_c used by both flows
  bool tc_scaled = false;

  opt::OptimizationResult baseline;  // Table 1 row
  opt::OptimizationResult joint;     // Table 2 row
  double savings = 0.0;              // baseline total / joint total
};

// Cycle time selection for one circuit (activity-independent).
double choose_cycle_time(const netlist::Netlist& nl,
                         const ExperimentConfig& cfg, bool* scaled);

// Runs baseline + joint for every configured activity of one circuit.
std::vector<CircuitExperiment> run_circuit(const CircuitSpec& spec,
                                           const ExperimentConfig& cfg);

// The full suite (all paper circuits x activities).
std::vector<CircuitExperiment> run_suite(const ExperimentConfig& cfg);

// Independent certification of one experiment row (the bench `--certify`
// flags): rebuilds the evaluator the row was optimized under and re-derives
// the joint (or baseline) result's verdict with opt::Certifier.
opt::Certificate certify_experiment(const CircuitExperiment& e,
                                    const ExperimentConfig& cfg, bool joint);

}  // namespace minergy::bench_suite
