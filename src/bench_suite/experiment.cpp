#include "bench_suite/experiment.h"

#include <algorithm>

#include "netlist/stats.h"
#include "opt/baseline_optimizer.h"
#include "opt/evaluator.h"
#include "opt/joint_optimizer.h"
#include "util/check.h"

namespace minergy::bench_suite {

double choose_cycle_time(const netlist::Netlist& nl,
                         const ExperimentConfig& cfg, bool* scaled) {
  const double requested = 1.0 / cfg.clock_frequency;
  // Feasibility of the *baseline* flow gates the choice: it must meet T_c
  // with the threshold frozen at nominal_vts.
  activity::ActivityProfile profile;  // activity does not affect timing
  const opt::CircuitEvaluator eval(nl, cfg.tech, profile,
                                   {.clock_frequency = cfg.clock_frequency});
  const double min_tc =
      eval.minimum_cycle_time(cfg.opts.skew_b, cfg.tech.nominal_vts);
  if (min_tc <= requested) {
    if (scaled) *scaled = false;
    return requested;
  }
  if (scaled) *scaled = true;
  return cfg.tc_margin * min_tc;
}

std::vector<CircuitExperiment> run_circuit(const CircuitSpec& spec,
                                           const ExperimentConfig& cfg) {
  const netlist::Netlist nl = make_circuit(spec);
  const netlist::NetlistStats stats = netlist::compute_stats(nl);

  bool scaled = false;
  const double tc = choose_cycle_time(nl, cfg, &scaled);
  const double fc = 1.0 / tc;

  std::vector<CircuitExperiment> out;
  for (double a : cfg.input_activities) {
    activity::ActivityProfile profile;
    profile.input_density = a;

    const opt::CircuitEvaluator eval(nl, cfg.tech, profile,
                                     {.clock_frequency = fc});
    CircuitExperiment e;
    e.circuit = spec.name;
    e.num_gates = stats.num_gates;
    e.depth = stats.depth;
    e.input_activity = a;
    e.cycle_time = tc;
    e.tc_scaled = scaled;
    e.baseline = opt::BaselineOptimizer(eval, cfg.opts).run();
    e.joint = opt::JointOptimizer(eval, cfg.opts).run();
    e.savings = (e.baseline.feasible && e.joint.feasible)
                    ? e.baseline.energy.total() / e.joint.energy.total()
                    : 0.0;
    out.push_back(std::move(e));
  }
  return out;
}

opt::Certificate certify_experiment(const CircuitExperiment& e,
                                    const ExperimentConfig& cfg, bool joint) {
  const netlist::Netlist nl = make_circuit(e.circuit);
  activity::ActivityProfile profile;
  profile.input_density = e.input_activity;
  const opt::CircuitEvaluator eval(nl, cfg.tech, profile,
                                   {.clock_frequency = 1.0 / e.cycle_time});
  opt::CertifyOptions copts;
  copts.skew_b = cfg.opts.skew_b;
  return opt::Certifier(eval, copts).certify(joint ? e.joint : e.baseline);
}

std::vector<CircuitExperiment> run_suite(const ExperimentConfig& cfg) {
  std::vector<CircuitExperiment> all;
  for (const CircuitSpec& spec : paper_circuits()) {
    auto rows = run_circuit(spec, cfg);
    std::move(rows.begin(), rows.end(), std::back_inserter(all));
  }
  return all;
}

}  // namespace minergy::bench_suite
