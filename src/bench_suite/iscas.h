// The paper's benchmark suite.
//
// Table 1/2 run on eight ISCAS-89 circuits. Two small circuits (c17, s27)
// are embedded verbatim; the larger ones are *surrogates* generated to
// match the published gate count, depth, I/O and register statistics of the
// corresponding ISCAS-89 circuit (see DESIGN.md "Substitutions" — the
// optimizer consumes only topology and activity, which the surrogates
// preserve statistically).
#pragma once

#include <string>
#include <vector>

#include "netlist/generator.h"
#include "netlist/netlist.h"

namespace minergy::bench_suite {

// Embedded real netlists.
netlist::Netlist make_c17();
netlist::Netlist make_s27();

struct CircuitSpec {
  std::string name;      // e.g. "s298*" (star marks a surrogate)
  bool surrogate = true;
  netlist::GeneratorSpec gen;  // used when surrogate
};

// The eight circuits of the paper's tables, smallest first.
const std::vector<CircuitSpec>& paper_circuits();

// Instantiate a spec (real netlist for s27, generated surrogate otherwise).
netlist::Netlist make_circuit(const CircuitSpec& spec);

// Lookup by name in paper_circuits(); throws std::invalid_argument.
netlist::Netlist make_circuit(const std::string& name);

}  // namespace minergy::bench_suite
