#include "bench_suite/iscas.h"

#include <stdexcept>

#include "netlist/bench_io.h"

namespace minergy::bench_suite {
namespace {

// ISCAS-85 c17 (verbatim).
constexpr const char* kC17 = R"(# c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";

// ISCAS-89 s27 (verbatim).
constexpr const char* kS27 = R"(# s27
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
)";

netlist::GeneratorSpec surrogate(const std::string& name, int pis, int pos,
                                 int dffs, int gates, int depth,
                                 std::uint64_t seed) {
  netlist::GeneratorSpec g;
  g.name = name;
  g.num_inputs = pis;
  g.num_outputs = pos;
  g.num_dffs = dffs;
  g.num_gates = gates;
  g.depth = depth;
  g.seed = seed;
  return g;
}

}  // namespace

netlist::Netlist make_c17() { return netlist::parse_bench_string(kC17, "c17"); }

netlist::Netlist make_s27() { return netlist::parse_bench_string(kS27, "s27"); }

const std::vector<CircuitSpec>& paper_circuits() {
  // Published ISCAS-89 statistics: {PI, PO, DFF, logic gates, depth}.
  static const std::vector<CircuitSpec> kCircuits = {
      {"s27", /*surrogate=*/false, {}},
      {"s208*", true, surrogate("s208", 10, 1, 8, 96, 11, 0x2081)},
      {"s298*", true, surrogate("s298", 3, 6, 14, 119, 9, 0x2981)},
      {"s344*", true, surrogate("s344", 9, 11, 15, 160, 14, 0x3441)},
      {"s386*", true, surrogate("s386", 7, 7, 6, 159, 11, 0x3861)},
      {"s420*", true, surrogate("s420", 18, 1, 16, 196, 13, 0x4201)},
      {"s510*", true, surrogate("s510", 19, 7, 6, 211, 12, 0x5101)},
      {"s832*", true, surrogate("s832", 18, 19, 5, 287, 10, 0x8321)},
  };
  return kCircuits;
}

netlist::Netlist make_circuit(const CircuitSpec& spec) {
  if (!spec.surrogate) {
    if (spec.name == "s27") return make_s27();
    if (spec.name == "c17") return make_c17();
    throw std::invalid_argument("unknown embedded circuit: " + spec.name);
  }
  return netlist::generate_random_logic(spec.gen);
}

netlist::Netlist make_circuit(const std::string& name) {
  for (const CircuitSpec& spec : paper_circuits()) {
    if (spec.name == name || spec.gen.name == name) return make_circuit(spec);
  }
  if (name == "c17") return make_c17();
  throw std::invalid_argument("unknown benchmark circuit: " + name);
}

}  // namespace minergy::bench_suite
