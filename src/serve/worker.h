// In-process execution of one queued job (the worker side of the service).
//
// The daemon never optimizes in its own address space: each claimed job is
// handed to a fresh subprocess (minergy_served --worker) that calls
// run_worker_job() — the same subprocess-isolation discipline as
// minergy_batch, so a crash, hang or NaN-storm in one netlist can only ever
// cost one worker. The worker's entire observable output is ONE atomic
// file: the result envelope (schema minergy.job_result.v1) dropped into
// results/<id>.json. The parent judges the envelope; the worker's exit code
// only distinguishes "envelope written" (0) from "died before writing one".
//
// Deadlines: job.deadline_seconds (and job.max_evaluations) become the
// optimizer's util::WatchdogBudget, so a job that cannot finish in time
// returns its best-seen state flagged truncated — and that truncated result
// still passes through opt::Certifier like any other.
//
// Checkpoints: annealing and joint runs snapshot into checkpoints/<id>.json
// (PR-3 formats, atomic write-rename). When the file already exists the run
// resumes from it bit-exactly — that is how a drained daemon's in-flight
// jobs continue after a restart.
#pragma once

#include <string>

#include "serve/job.h"

namespace minergy::serve {

// Runs `job`, certifies the result, writes the envelope to `result_path`.
// `checkpoint_path` is used for periodic snapshots and (when the file
// exists) for resume; pass "" to disable. `attempt_seed` is the seed chosen
// by the supervisor's retry schedule. `brownout_level` is the daemon's
// fidelity ladder position at spawn time (0 = full fidelity; 1 forces a
// robust run to start at the baseline tier, 2 at max-drive, and shrinks
// any wall-clock watchdog budget proportionally — 1/2 and 1/4). The level
// is recorded in the result envelope so a degraded answer carries its
// provenance. `lease_path` (when non-empty AND the job carries a fencing
// token) is re-checked immediately before the envelope drop: if the
// spool's leader lease no longer carries the job's token, the claim is
// stale — the spawning leader was deposed mid-flight — and the worker
// exits 75 WITHOUT writing an envelope, so the new leader's re-execution
// of the same job can never race a zombie's commit. Returns the worker
// process exit code: 0 = envelope written (any verdict), 2 = malformed
// job, 75 = fenced (stale lease token; no envelope). Typed optimization
// errors are reported inside the envelope (ok=false), not via exit codes.
int run_worker_job(const Job& job, std::uint64_t attempt_seed,
                   const std::string& result_path,
                   const std::string& checkpoint_path,
                   int brownout_level = 0,
                   const std::string& lease_path = std::string());

// The exit code a fenced worker returns instead of writing an envelope.
inline constexpr int kWorkerFencedExit = 75;

}  // namespace minergy::serve
