// Deterministic SIGKILL injection points for the chaos harness.
//
// The serve chaos tests (tests/test_serve_chaos.cpp, `ctest -L serve`) must
// prove the queue's exactly-once guarantee holds when the daemon or a
// worker dies at ANY point of the claim/execute/finalize protocol. Rather
// than racing wall-clock kills against a fast protocol, the daemon and
// worker mark each protocol step with kill_point("name"); a process started
// with --inject-kill=name@K kills itself (SIGKILL, no cleanup, exactly like
// the OOM killer) at the K-th time it reaches that point. Everything is
// counted per process, so a given (point, K) pair reproduces byte-for-byte.
//
// In a normal run no --inject-kill is configured and kill_point() is a
// single branch on an empty string.
#pragma once

#include <string>

namespace minergy::serve {

// Configures the kill switch from a "--inject-kill=point@K" style spec
// ("point" alone means K=1). An empty spec disables injection.
void configure_kill_switch(const std::string& spec);

// The currently configured spec ("" when disabled) — used to propagate the
// switch into spawned workers.
const std::string& kill_switch_spec();

// Marks one protocol step. If the configured point matches and this is the
// K-th visit, the process raises SIGKILL and never returns.
void kill_point(const char* point);

}  // namespace minergy::serve
