// Deterministic SIGKILL/SIGSTOP injection points for the chaos harness.
//
// The serve chaos tests (tests/test_serve_chaos.cpp, `ctest -L serve`) must
// prove the queue's exactly-once guarantee holds when the daemon or a
// worker dies at ANY point of the claim/execute/finalize protocol. Rather
// than racing wall-clock kills against a fast protocol, the daemon and
// worker mark each protocol step with kill_point("name"); a process started
// with --inject-kill=name@K kills itself (SIGKILL, no cleanup, exactly like
// the OOM killer) at the K-th time it reaches that point. Everything is
// counted per process, so a given (point, K) pair reproduces byte-for-byte.
//
// The HA suite (tests/test_ha.cpp, `ctest -L ha`) additionally needs
// deterministic ZOMBIE leaders: a daemon that pauses mid-protocol (losing
// its lease to a standby) and later resumes to attempt a stale finalize.
// --inject-stop=name@K raises SIGSTOP at the same points; the test sends
// SIGCONT when it wants the zombie to wake up exactly there.
//
// In a normal run neither switch is configured and kill_point() is two
// branches on empty strings.
#pragma once

#include <string>

namespace minergy::serve {

// Configures the kill switch from a "--inject-kill=point@K" style spec
// ("point" alone means K=1). An empty spec disables injection.
void configure_kill_switch(const std::string& spec);

// Configures the stop switch (same grammar): the process raises SIGSTOP —
// pausing until SIGCONT — at the K-th visit to the named point.
void configure_stop_switch(const std::string& spec);

// The currently configured specs ("" when disabled) — used to propagate the
// switches into spawned workers.
const std::string& kill_switch_spec();
const std::string& stop_switch_spec();

// Marks one protocol step. If the configured kill point matches and this is
// the K-th visit, the process raises SIGKILL and never returns. If the stop
// point matches, the process raises SIGSTOP and continues after SIGCONT.
void kill_point(const char* point);

}  // namespace minergy::serve
