#include "serve/job.h"

#include <sys/types.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>

#include "util/check.h"
#include "util/clock.h"
#include "util/rng.h"

namespace minergy::serve {

int Job::failed_attempts() const {
  int n = 0;
  for (const JobAttempt& a : attempts) {
    if (a.outcome == "crash" || a.outcome == "timeout" || a.outcome == "error")
      ++n;
  }
  return n;
}

int Job::interruptions() const {
  int n = 0;
  for (const JobAttempt& a : attempts) {
    if (a.outcome == "interrupted") ++n;
  }
  return n;
}

std::string Job::to_json(const std::string& result_json) const {
  util::JsonWriter w(2);
  w.begin_object();
  w.kv("schema", kJobSchema);
  w.kv("id", id);
  w.kv("circuit", circuit);
  w.kv("optimizer", optimizer);
  w.kv("seed", static_cast<std::int64_t>(seed));
  w.kv("clock_frequency", clock_frequency);
  w.kv("activity", activity);
  w.kv("deadline_seconds", deadline_seconds);
  w.kv("max_evaluations", max_evaluations);
  w.kv("anneal_moves", anneal_moves);
  w.kv("priority", to_string(priority));
  if (!client.empty()) w.kv("client", client);
  if (complete_by_unix > 0.0) w.kv("complete_by_unix", complete_by_unix);
  if (!inject.empty()) w.kv("inject", inject);
  if (fence_token > 0) {
    w.kv("fence_token", static_cast<std::int64_t>(fence_token));
  }
  w.kv("submitted_unix", submitted_unix);
  w.kv("not_before_unix", not_before_unix);
  if (next_backoff_seconds > 0.0) {
    w.kv("next_backoff_seconds", next_backoff_seconds);
  }
  w.key("attempts").begin_array();
  for (const JobAttempt& a : attempts) {
    w.begin_object();
    w.kv("seed", static_cast<std::int64_t>(a.seed));
    w.kv("outcome", a.outcome);
    w.kv("exit_code", a.exit_code);
    w.kv("wall_seconds", a.wall_seconds);
    w.kv("backoff_seconds", a.backoff_seconds);
    w.end_object();
  }
  w.end_array();
  if (!failure_type.empty()) {
    w.key("failure").begin_object();
    w.kv("type", failure_type);
    w.kv("detail", failure_detail);
    w.end_object();
  }
  if (!result_json.empty()) {
    w.key("result");
    util::emit(w, util::JsonValue::parse(result_json, "<job-result>"));
  }
  w.end_object();
  return w.str() + "\n";
}

Job Job::from_json(const std::string& text, const std::string& source) {
  const util::JsonValue root = util::JsonValue::parse(text, source);
  if (!root.is_object() || root.get_string("schema", "") != kJobSchema) {
    throw util::ParseError(
        "not a " + std::string(kJobSchema) + " document (schema '" +
            root.get_string("schema", "<missing>") + "')",
        source, 0);
  }
  Job j;
  j.id = root.get_string("id", "");
  if (j.id.empty()) throw util::ParseError("job has no id", source, 0);
  j.circuit = root.get_string("circuit", j.circuit);
  j.optimizer = root.get_string("optimizer", j.optimizer);
  j.seed = static_cast<std::uint64_t>(root.get_number("seed", 1.0));
  j.clock_frequency = root.get_number("clock_frequency", j.clock_frequency);
  j.activity = root.get_number("activity", j.activity);
  j.deadline_seconds = root.get_number("deadline_seconds", 0.0);
  j.max_evaluations =
      static_cast<std::int64_t>(root.get_number("max_evaluations", 0.0));
  j.anneal_moves = static_cast<int>(root.get_number("anneal_moves", 0.0));
  // Pre-priority job files (and hand-written ones) default to batch; an
  // unknown class is structural damage and quarantines like any other.
  j.priority =
      priority_from_string(root.get_string("priority", "batch"), source);
  j.client = root.get_string("client", "");
  j.complete_by_unix = root.get_number("complete_by_unix", 0.0);
  j.inject = root.get_string("inject", "");
  j.fence_token =
      static_cast<std::uint64_t>(root.get_number("fence_token", 0.0));
  j.submitted_unix = root.get_number("submitted_unix", 0.0);
  j.not_before_unix = root.get_number("not_before_unix", 0.0);
  j.next_backoff_seconds = root.get_number("next_backoff_seconds", 0.0);
  if (root.has("attempts")) {
    for (const util::JsonValue& a : root.at("attempts").items()) {
      JobAttempt at;
      at.seed = static_cast<std::uint64_t>(a.get_number("seed", 0.0));
      at.outcome = a.get_string("outcome", "running");
      at.exit_code = static_cast<int>(a.get_number("exit_code", 0.0));
      at.wall_seconds = a.get_number("wall_seconds", 0.0);
      at.backoff_seconds = a.get_number("backoff_seconds", 0.0);
      j.attempts.push_back(std::move(at));
    }
  }
  if (root.has("failure")) {
    j.failure_type = root.at("failure").get_string("type", "");
    j.failure_detail = root.at("failure").get_string("detail", "");
  }
  return j;
}

std::string make_job_id() {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const auto micros =
      std::chrono::duration_cast<std::chrono::microseconds>(now).count();
  // Monotone-per-process tiebreaker: two submits inside the same
  // microsecond (coarse clocks) must still get distinct, ordered ids.
  static std::uint64_t seq = 0;
  char buf[48];
  std::snprintf(buf, sizeof buf, "j%016llx-%08x-%04llx",
                static_cast<unsigned long long>(micros),
                static_cast<unsigned>(::getpid()),
                static_cast<unsigned long long>(seq++ & 0xffff));
  return buf;
}

std::uint64_t attempt_seed(const Job& job, int failed_attempt_index) {
  if (failed_attempt_index <= 0) return job.seed;
  std::uint64_t name_hash = 1469598103934665603ULL;
  constexpr std::uint64_t kFnvPrime = 1099511628211ULL;
  for (const char c : job.circuit) {
    name_hash =
        (name_hash ^ static_cast<unsigned char>(c)) * kFnvPrime;
  }
  return util::hash_mix(job.seed ^ name_hash ^
                        static_cast<std::uint64_t>(failed_attempt_index));
}

double unix_now() { return util::Clock::system().unix_monotone(); }

}  // namespace minergy::serve
