// Deadline/priority claim scheduling for the spool queue.
//
// FIFO claim order is the wrong policy under load: an interactive request
// stuck behind a pile of background re-optimizations misses its deadline
// even though the queue had capacity for it, and a job whose deadline has
// already passed wastes a whole worker producing an answer nobody can use.
// This module computes the claim plan the queue executes instead:
//
//   1. Jobs whose completion deadline (complete_by_unix) already passed are
//      expired — the queue moves them straight to failed/ with a
//      `deadline_expired` verdict, no worker spent.
//   2. Eligible jobs are ordered by priority band (interactive < batch <
//      background), then earliest-deadline-first within a band (jobs with
//      no deadline sort after all deadlined ones), then submission time,
//      then id — a total order, so two claimants walking the same pending/
//      snapshot agree on it and only the rename race decides ownership.
//
// The functions here are pure (no filesystem, no clock): the queue feeds
// them a snapshot of pending/ plus an explicit `now`, which is what makes
// the overload chaos harness's virtual-clock tests deterministic.
#pragma once

#include <string>
#include <vector>

namespace minergy::serve {

// Priority classes, journaled in minergy.job.v1. Lower value = claimed
// first; shedding works from the other end (background sheds first,
// interactive never sheds before background/batch are gone).
enum class Priority : int {
  kInteractive = 0,
  kBatch = 1,
  kBackground = 2,
};

// "interactive" | "batch" | "background".
const char* to_string(Priority p);
// Strict parse; throws util::ParseError on an unknown class (a corrupt job
// file quarantines, a bad --priority flag is a usage error at the CLI).
Priority priority_from_string(const std::string& s, const std::string& source);

// One pending job, as the scheduler sees it.
struct SchedEntry {
  std::string id;
  Priority priority = Priority::kBatch;
  double complete_by_unix = 0.0;  // absolute completion deadline; 0 = none
  double not_before_unix = 0.0;   // retry backoff; ineligible before this
  double submitted_unix = 0.0;
};

struct ClaimPlan {
  // Eligible ids in claim order: priority band, then EDF within the band.
  std::vector<std::string> order;
  // Ids whose complete_by_unix already passed (backoff ignored — a missed
  // deadline is missed regardless of when the retry would become eligible).
  std::vector<std::string> expired;
};

ClaimPlan plan_claims(const std::vector<SchedEntry>& entries, double now_unix);

// Shedding policy: which classes drop at which shed level. Level 1 sheds
// background, level 2 sheds background + batch; interactive never sheds.
bool sheds_at_level(Priority p, int shed_level);

}  // namespace minergy::serve
