#include "serve/breaker.h"

#include "obs/metrics.h"

namespace minergy::serve {

CircuitBreaker::CircuitBreaker(BreakerOptions opts) : opts_(opts) {}

void CircuitBreaker::record_success(const std::string& circuit) {
  State& s = by_circuit_[circuit];
  if (s.tripped) obs::counter("serve.breaker.resets").add();
  s = State{};
}

void CircuitBreaker::record_death(const std::string& circuit,
                                  double now_unix) {
  State& s = by_circuit_[circuit];
  ++s.consecutive_deaths;
  if (s.tripped && s.probe_in_flight) {
    // The half-open probe died: re-trip for a fresh cooldown.
    s.probe_in_flight = false;
    s.tripped_at = now_unix;
    obs::counter("serve.breaker.trips").add();
    return;
  }
  if (!s.tripped && s.consecutive_deaths >= opts_.threshold) {
    s.tripped = true;
    s.tripped_at = now_unix;
    obs::counter("serve.breaker.trips").add();
  }
}

bool CircuitBreaker::should_short_circuit(const std::string& circuit,
                                          double now_unix) {
  auto it = by_circuit_.find(circuit);
  if (it == by_circuit_.end() || !it->second.tripped) return false;
  State& s = it->second;
  if (s.probe_in_flight) return true;
  if (now_unix - s.tripped_at >= opts_.cooldown_seconds) {
    // Half-open: let one probe through; its outcome decides what happens.
    s.probe_in_flight = true;
    obs::counter("serve.breaker.probes").add();
    return false;
  }
  obs::counter("serve.breaker.short_circuits").add();
  return true;
}

std::vector<std::string> CircuitBreaker::open_circuits(
    double now_unix) const {
  std::vector<std::string> open;
  for (const auto& [circuit, s] : by_circuit_) {
    if (s.tripped &&
        (s.probe_in_flight ||
         now_unix - s.tripped_at < opts_.cooldown_seconds)) {
      open.push_back(circuit);
    }
  }
  return open;
}

}  // namespace minergy::serve
