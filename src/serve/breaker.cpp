#include "serve/breaker.h"

#include "obs/eventlog.h"
#include "obs/metrics.h"

namespace minergy::serve {

namespace {

// Live per-circuit state gauge for the /metrics exposition:
// 0 = closed, 0.5 = half-open (probe in flight), 1 = open.
void set_state_gauge(const std::string& circuit, double state) {
  obs::gauge(obs::labeled_name("serve.breaker.state", "circuit", circuit))
      .set(state);
}

void breaker_event(const char* kind, const std::string& circuit,
                   const std::string& severity, const std::string& detail) {
  obs::Event e;
  e.kind = kind;
  e.severity = severity;
  e.circuit = circuit;
  e.detail = detail;
  obs::event(e);
}

}  // namespace

CircuitBreaker::CircuitBreaker(BreakerOptions opts) : opts_(opts) {}

void CircuitBreaker::record_success(const std::string& circuit) {
  State& s = by_circuit_[circuit];
  if (s.tripped) {
    obs::counter("serve.breaker.resets").add();
    breaker_event("breaker_close", circuit, "info",
                  "probe succeeded; breaker closed");
  }
  s = State{};
  set_state_gauge(circuit, 0.0);
}

void CircuitBreaker::record_death(const std::string& circuit,
                                  double now_unix) {
  State& s = by_circuit_[circuit];
  ++s.consecutive_deaths;
  if (s.tripped && s.probe_in_flight) {
    // The half-open probe died: re-trip for a fresh cooldown.
    s.probe_in_flight = false;
    s.tripped_at = now_unix;
    obs::counter("serve.breaker.trips").add();
    set_state_gauge(circuit, 1.0);
    breaker_event("breaker_trip", circuit, "warn",
                  "half-open probe died; re-tripped");
    return;
  }
  if (!s.tripped && s.consecutive_deaths >= opts_.threshold) {
    s.tripped = true;
    s.tripped_at = now_unix;
    obs::counter("serve.breaker.trips").add();
    set_state_gauge(circuit, 1.0);
    breaker_event("breaker_trip", circuit, "warn",
                  std::to_string(s.consecutive_deaths) +
                      " consecutive worker deaths");
  }
}

bool CircuitBreaker::should_short_circuit(const std::string& circuit,
                                          double now_unix) {
  auto it = by_circuit_.find(circuit);
  if (it == by_circuit_.end() || !it->second.tripped) return false;
  State& s = it->second;
  if (s.probe_in_flight) return true;
  if (now_unix - s.tripped_at >= opts_.cooldown_seconds) {
    // Half-open: let one probe through; its outcome decides what happens.
    s.probe_in_flight = true;
    obs::counter("serve.breaker.probes").add();
    set_state_gauge(circuit, 0.5);
    breaker_event("breaker_probe", circuit, "info",
                  "cooldown elapsed; admitting one probe");
    return false;
  }
  obs::counter("serve.breaker.short_circuits").add();
  return true;
}

std::vector<std::string> CircuitBreaker::open_circuits(
    double now_unix) const {
  std::vector<std::string> open;
  for (const auto& [circuit, s] : by_circuit_) {
    if (s.tripped &&
        (s.probe_in_flight ||
         now_unix - s.tripped_at < opts_.cooldown_seconds)) {
      open.push_back(circuit);
    }
  }
  return open;
}

std::vector<std::pair<std::string, std::string>> CircuitBreaker::states(
    double now_unix) const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& [circuit, s] : by_circuit_) {
    const char* state = "closed";
    if (s.tripped) {
      state = s.probe_in_flight ? "half_open"
              : now_unix - s.tripped_at < opts_.cooldown_seconds
                  ? "open"
                  : "half_open";
    }
    out.emplace_back(circuit, state);
  }
  return out;
}

}  // namespace minergy::serve
