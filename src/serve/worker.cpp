#include "serve/worker.h"

#include <chrono>
#include <csignal>
#include <filesystem>
#include <thread>

#include "activity/activity.h"
#include "bench_suite/experiment.h"
#include "bench_suite/iscas.h"
#include "obs/metrics.h"
#include "opt/annealing_optimizer.h"
#include "opt/baseline_optimizer.h"
#include "opt/certifier.h"
#include "opt/evaluator.h"
#include "opt/joint_optimizer.h"
#include "opt/robust_optimizer.h"
#include "io/checkpoint.h"
#include "io/envelope.h"
#include "serve/inject.h"
#include "serve/lease.h"
#include "util/check.h"
#include "util/guard.h"
#include "util/json.h"

namespace minergy::serve {

namespace {

// Typed failure envelope: the job completed in the sense that its failure
// is a *verdict* (do not retry), not a supervision event.
void write_error_envelope(const Job& job, const std::string& result_path,
                          const std::string& type,
                          const std::string& detail) {
  util::JsonWriter w(2);
  w.begin_object();
  w.kv("schema", kJobResultSchema);
  w.kv("id", job.id);
  w.kv("ok", false);
  w.kv("error_type", type);
  w.kv("detail", detail);
  w.end_object();
  io::write_artifact(result_path, kJobResultSchema, w.str() + "\n");
}

}  // namespace

int run_worker_job(const Job& job, std::uint64_t seed,
                   const std::string& result_path,
                   const std::string& checkpoint_path,
                   int brownout_level, const std::string& lease_path) try {
  if (job.circuit.empty() || result_path.empty()) return 2;
  if (brownout_level < 0) brownout_level = 0;
  if (brownout_level > 2) brownout_level = 2;

  // Chaos hooks: die (or wedge) exactly like a real worker fault would —
  // no stack unwinding, no result envelope, nothing cleaned up.
  if (job.inject == "crash-pre-run") std::raise(SIGKILL);
  if (job.inject == "hang") {
    std::this_thread::sleep_for(std::chrono::hours(1));
  }
  kill_point("worker.pre-run");

  netlist::Netlist nl = bench_suite::make_circuit(job.circuit);
  bench_suite::ExperimentConfig cfg;
  cfg.clock_frequency = job.clock_frequency;
  bool tc_scaled = false;
  const double tc = bench_suite::choose_cycle_time(nl, cfg, &tc_scaled);

  opt::EvalSettings settings;
  settings.clock_frequency = 1.0 / tc;
  activity::ActivityProfile profile;
  profile.input_density = job.activity;
  const opt::CircuitEvaluator eval(nl, cfg.tech, profile, settings);

  // Deadline propagation: the job's wall-clock budget becomes the
  // optimizer's watchdog, so running out of time yields a best-seen
  // truncated result instead of a SIGKILL from the supervisor.
  util::WatchdogBudget budget;
  if (job.deadline_seconds > 0.0) budget.wall_seconds = job.deadline_seconds;
  budget.max_evaluations = job.max_evaluations;
  // Brownout: a degraded daemon buys latency with fidelity — shrink the
  // wall budget proportionally (1/2 per level) so cheap answers also land
  // sooner, not just cheaper.
  if (brownout_level > 0 && budget.wall_seconds > 0.0) {
    budget.wall_seconds /= static_cast<double>(1 << brownout_level);
  }

  // exists() checks every generation, so a torn newest snapshot still
  // enters the resume path and falls back to an older intact generation.
  const bool resuming =
      !checkpoint_path.empty() && io::Checkpoint::exists(checkpoint_path);

  opt::OptimizationResult result;
  double skew_b = 0.95;
  if (job.optimizer == "robust") {
    opt::RobustOptions ropts;
    ropts.joint.budget = budget;
    ropts.baseline.budget = budget;
    ropts.joint.checkpoint_path = checkpoint_path;
    if (resuming) ropts.joint.resume_path = checkpoint_path;
    // The brownout ladder maps one-to-one onto the degradation chain:
    // level 1 starts at the baseline tier, level 2 at max-drive. The result
    // still certifies like any other — degraded answers are still answers.
    ropts.start_tier = brownout_level;
    result = opt::RobustOptimizer(eval, ropts).run();
    skew_b = ropts.joint.skew_b;
  } else if (job.optimizer == "joint") {
    opt::OptimizerOptions opts;
    opts.budget = budget;
    opts.checkpoint_path = checkpoint_path;
    if (resuming) opts.resume_path = checkpoint_path;
    result = opt::JointOptimizer(eval, opts).run();
    skew_b = opts.skew_b;
  } else if (job.optimizer == "baseline") {
    opt::OptimizerOptions opts;
    opts.budget = budget;
    result = opt::BaselineOptimizer(eval, opts).run();
    skew_b = opts.skew_b;
  } else if (job.optimizer == "anneal") {
    opt::AnnealingOptions aopts;
    aopts.budget = budget;
    aopts.seed = seed;
    if (job.anneal_moves > 0) aopts.max_moves = job.anneal_moves;
    aopts.checkpoint_path = checkpoint_path;
    if (resuming) aopts.resume_path = checkpoint_path;
    skew_b = aopts.skew_b;
    // Warm-start from the baseline solution (the annealer's recommended
    // seeding); a resumed run restores its mid-anneal state from the
    // snapshot and the warm start only seeds the already-finished passes.
    const opt::OptimizationResult warm =
        opt::BaselineOptimizer(eval, {}).run();
    result = opt::AnnealingOptimizer(eval, aopts)
                 .run(warm.feasible ? warm.state : opt::CircuitState{});
  } else {
    write_error_envelope(job, result_path,
                         "invalid-argument",
                         "unknown optimizer '" + job.optimizer + "'");
    return 0;
  }

  // Independent certification: no result reaches done/ on the optimizer's
  // own say-so.
  opt::CertifyOptions copts;
  copts.skew_b = skew_b;
  const opt::Certificate cert = opt::Certifier(eval, copts).certify(result);

  if (job.inject == "crash-pre-result") std::raise(SIGKILL);
  kill_point("worker.pre-result");

  // Fence before the commit point: if the lease moved past the token this
  // job was claimed under, the spawning leader is a zombie and this result
  // must never land — the new leader re-runs the job. Fail-open when the
  // job carries no token or the lease is missing (plain single-daemon
  // spools and in-process tests).
  if (!lease_path.empty() && job.fence_token > 0 &&
      !lease_token_matches(lease_path, job.fence_token)) {
    obs::counter("serve.lease.worker_fenced").add();
    return kWorkerFencedExit;
  }

  util::JsonWriter w(2);
  w.begin_object();
  w.kv("schema", kJobResultSchema);
  w.kv("id", job.id);
  w.kv("ok", true);
  w.kv("circuit", job.circuit);
  w.kv("optimizer", job.optimizer);
  w.kv("seed", static_cast<std::int64_t>(seed));
  w.kv("resumed", resuming);
  w.kv("feasible", result.feasible);
  w.kv("certified", cert.certified);
  w.kv("truncated", result.truncated);
  if (result.truncated) w.kv("truncation_reason", result.truncation_reason);
  w.kv("tier", opt::to_string(result.tier));
  w.kv("brownout_level", brownout_level);
  w.kv("vdd", result.vdd);
  w.kv("vts_primary", result.vts_primary);
  w.kv("energy_total", result.energy.total());
  w.kv("static_energy", result.energy.static_energy);
  w.kv("dynamic_energy", result.energy.dynamic_energy);
  w.kv("critical_delay", result.critical_delay);
  w.kv("cycle_time", tc);
  w.kv("tc_scaled", tc_scaled);
  w.kv("circuit_evaluations", result.circuit_evaluations);
  w.kv("runtime_seconds", result.runtime_seconds);
  w.key("certificate");
  util::emit(w, util::JsonValue::parse(cert.to_json(0), "<certificate>"));
  w.end_object();
  // The envelope drop is the worker's commit point: atomic + fsynced +
  // CRC-footed, so the parent (or recovery after a daemon death) sees
  // nothing, or everything, or a verifiably damaged file it can retry.
  io::write_artifact(result_path, kJobResultSchema, w.str() + "\n");
  return 0;
} catch (const util::ParseError& e) {
  write_error_envelope(job, result_path, "parse-error", e.what());
  return 0;
} catch (const util::NumericError& e) {
  write_error_envelope(job, result_path, "numeric-error", e.what());
  return 0;
} catch (const util::InfeasibleError& e) {
  write_error_envelope(job, result_path, "infeasible", e.what());
  return 0;
} catch (const std::invalid_argument& e) {
  write_error_envelope(job, result_path, "invalid-argument", e.what());
  return 0;
} catch (const std::exception& e) {
  write_error_envelope(job, result_path, "error", e.what());
  return 0;
}

}  // namespace minergy::serve
