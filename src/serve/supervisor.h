// Supervised worker pool over the spool queue (the daemon side).
//
// One single-threaded control loop owns the whole protocol: claim eligible
// jobs, fork+exec one isolated worker per job (minergy_served --worker),
// babysit each against a wall-clock SIGKILL timeout, journal every attempt
// into the job file, and disposition the outcome:
//
//   result envelope present  -> done/ (feasible + certified) or failed/
//                               (typed failure, infeasible, uncertified)
//   crash / timeout / error  -> perturbed-seed retry with exponential
//                               backoff, then quarantined/ when the retry
//                               budget is spent; every death also feeds the
//                               per-circuit breaker (serve/breaker.h)
//
// Workers set PDEATHSIG so a dying daemon takes its children with it —
// combined with the queue's claim/finalize protocol that is what makes
// execution exactly-once: after any SIGKILL there is either a committed
// result envelope (recovery finalizes it without re-running) or no trace of
// the attempt (recovery requeues it).
//
// SIGTERM/SIGINT start a graceful drain: intake stops, workers get a grace
// period to finish, survivors are SIGKILLed and their jobs requeued with
// their PR-3 checkpoint files preserved, so the restarted daemon resumes
// each in-flight annealing/joint run bit-exactly from its last snapshot.
#pragma once

#include <sys/types.h>

#include <functional>
#include <string>
#include <vector>

#include "serve/breaker.h"
#include "serve/lease.h"
#include "serve/overload.h"
#include "serve/queue.h"

namespace minergy::serve {

struct SupervisorOptions {
  // Absolute path of the binary to exec for workers (minergy_served).
  std::string worker_binary;
  int workers = 2;                  // concurrent worker subprocesses
  // Evaluation threads inside each worker (forwarded as --threads=N;
  // 0 = leave the worker at its default, hardware concurrency).
  int worker_threads = 0;
  double poll_seconds = 0.02;       // control-loop cadence
  double timeout_seconds = 300.0;   // per-attempt wall clock before SIGKILL
  int max_retries = 2;              // extra attempts after the first
  double backoff_seconds = 0.5;     // retry k sleeps backoff * 2^(k-1)
  // Interruptions (daemon drains/deaths) do not consume the retry budget,
  // but a job interrupted this many times is quarantined as unserviceable.
  int max_interruptions = 25;
  double drain_grace_seconds = 2.0;  // let workers finish before SIGKILL
  double health_interval_seconds = 0.25;
  bool once = false;  // exit when pending/ and the pool are both empty
  BreakerOptions breaker{};
  // Periodic telemetry flush: every snapshot_interval_seconds the control
  // loop invokes snapshot_hook (when set), so a crashed daemon still
  // leaves its last counter snapshot on disk instead of exit-only metrics.
  // The hook must not throw (storage faults are its own problem to log).
  double snapshot_interval_seconds = 0.0;
  std::function<void()> snapshot_hook;
  // Overload protection (serve/overload.h): shedding, quotas and the
  // brownout feedback loop. Disabled by default; the control loop ticks the
  // controller, publishes <spool>/overload.json for admission-side
  // enforcement, and passes the brownout level into every spawned worker.
  OverloadOptions overload{};
  // HA role (serve/lease.h): every daemon runs under the spool's leader
  // lease. A daemon that holds (or wins) the lease serves; one that does
  // not becomes a hot standby — tails the spool read-only, publishes
  // /health + /metrics with role=standby, and takes over within about one
  // lease TTL of leader death. lease.standby additionally makes a cold
  // start defer to a racing leader on a fresh spool (--standby).
  LeaseOptions lease{};
  // Leader-only anti-entropy pass (io/scrub.h) every this many seconds
  // between claim passes; 0 disables.
  double scrub_interval_seconds = 0.0;
};

class Supervisor {
 public:
  Supervisor(SpoolQueue& queue, SupervisorOptions opts);
  ~Supervisor();

  // Installs SIGTERM/SIGINT drain handlers, recovers running/ orphans, then
  // serves until drained (signal) or — with options.once — until the queue
  // is empty. Returns the process exit code (0 = clean stop or drain).
  int run();

 private:
  struct Slot {
    pid_t pid = -1;
    Job job;
    double started_monotonic = 0.0;
    double kill_after_seconds = 0.0;
  };

  void recover();
  void reap();
  void spawn_ready(double now_unix);
  // Ticks the overload controller and (re)publishes <spool>/overload.json
  // on level changes or freshness expiry.
  void tick_overload(double now_unix);
  void drain();
  void refresh_health(const std::string& state);
  void log_spool_state(const std::string& state);
  // Storage-fault (ENOSPC/EIO) reaction: pause admissions, flip health.json
  // to "degraded", and probe with exponential backoff until a write lands
  // again (or a drain is requested). See docs/ROBUSTNESS.md.
  void degraded_wait(const std::string& what);
  bool owned_by_live_slot(const std::string& id) const;
  // Lease loss (renew failure or a FencedError from the queue): SIGKILL
  // every worker WITHOUT touching the spool — this process no longer owns
  // it; the new leader's recovery requeues the stranded running/ entries.
  void on_lease_lost(const std::string& why);
  // Standby heartbeat: publish /health (role=standby) and the spool gauges
  // from memory + read-only spool counts. Never writes into the spool.
  void standby_tick();
  // Leader-only anti-entropy pass at the configured cadence.
  void maybe_scrub();

  void dispose_envelope(Job job);
  void handle_death(Job job, const std::string& outcome, int exit_code,
                    double wall_seconds, double now_unix);
  pid_t spawn_worker(const Job& job, std::uint64_t seed);

  SpoolQueue& queue_;
  SupervisorOptions opts_;
  CircuitBreaker breaker_;
  OverloadController overload_;
  LeaseManager lease_;
  std::vector<Slot> slots_;
  double last_health_monotonic_ = -1.0;
  double last_scrub_monotonic_ = -1.0;
  double last_snapshot_monotonic_ = -1.0;
  double last_policy_unix_ = -1.0;
  QueueCounts last_logged_counts_{};
  bool counts_ever_logged_ = false;
};

}  // namespace minergy::serve
