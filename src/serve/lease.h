// Filesystem leader lease with fencing tokens (schema minergy.lease.v1).
//
// Any number of `minergy_served` daemons may point at one spool; exactly
// one — the leader — claims, spawns and finalizes jobs, while the others
// (`--standby`) tail the spool read-only and take over when the leader
// dies. The coordination primitive is a single envelope-wrapped file,
// `<spool>/leader.lease`, holding:
//
//   fencing_token   strictly increasing across ownership changes; every
//                   job claim journals the token it was claimed under, and
//                   every mutating queue operation re-checks it against
//                   the on-disk lease (queue.cpp), so a paused-and-resumed
//                   zombie leader can never finalize stale work
//   owner           host + pid + pid-start-ticks: a globally stable
//                   process identity (pid reuse is detected by the start
//                   time from /proc/<pid>/stat)
//   renewed_unix    heartbeat; the leader rewrites the record every ttl/3
//
// Expiry is judged by OBSERVED staleness on the local CLOCK_MONOTONIC
// axis: a standby steals only after watching the lease bytes stay
// unchanged for ttl + margin of its own monotonic time, so a backward (or
// forward) wall-clock jump on either host can never cause a premature
// steal. Two fast paths skip the wait: a `released` record (clean leader
// shutdown), and a dead-owner probe — when the recorded owner is on this
// host and its pid is gone or was recycled (start-ticks mismatch), the
// lease is reclaimed immediately, so a SIGKILLed leader restarting on the
// same spool never deadlocks on its own stale lease.
//
// Acquisition is CAS-shaped: create `lease.claim.<token>` with
// O_CREAT|O_EXCL (the interlock — one winner per token), write the new
// record into it, rename() it onto leader.lease, then re-read and verify.
// rename() is not itself a compare-and-swap, so after any write the writer
// verifies the on-disk record is its own; a lost verify demotes the writer
// to standby. The fencing check at the finalize commit point is the hard
// backstop for the remaining window.
//
// All lease I/O uses plain POSIX calls, NOT the io::FaultFs-instrumented
// artifact layer: lease traffic must not consume scheduled fault-injection
// events meant for the artifact protocol under test.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

#include "util/clock.h"

namespace minergy::serve {

inline constexpr const char kLeaseSchema[] = "minergy.lease.v1";

// A mutating queue operation was attempted under a stale fencing token:
// this process's lease was stolen (or released) since the job was claimed.
// The supervisor reacts by reaping its workers and demoting to standby;
// the new leader requeues the interrupted work.
class FencedError : public std::runtime_error {
 public:
  FencedError(std::uint64_t held, std::uint64_t current,
              const std::string& op);

  std::uint64_t held_token() const { return held_; }
  std::uint64_t current_token() const { return current_; }

 private:
  std::uint64_t held_;
  std::uint64_t current_;
};

// Stable process identity: pid alone is reusable, pid + kernel start ticks
// (field 22 of /proc/<pid>/stat) is not.
struct LeaseOwner {
  std::string host;
  std::int64_t pid = 0;
  std::int64_t pid_start_ticks = 0;

  // The calling process's identity. `host_override` substitutes the
  // hostname component so tests can run several distinct "hosts" in one
  // process (disabling the same-host dead-owner probe between them).
  static LeaseOwner self(const std::string& host_override = std::string());

  bool operator==(const LeaseOwner& o) const {
    return host == o.host && pid == o.pid &&
           pid_start_ticks == o.pid_start_ticks;
  }
  bool operator!=(const LeaseOwner& o) const { return !(*this == o); }
};

// The on-disk lease document.
struct LeaseRecord {
  std::uint64_t fencing_token = 0;
  LeaseOwner owner;
  double acquired_unix = 0.0;
  double renewed_unix = 0.0;
  double ttl_seconds = 0.0;
  bool released = false;  // clean shutdown: next acquirer skips the wait

  std::string to_json() const;
  // Throws util::ParseError on structural damage or wrong schema.
  static LeaseRecord from_json(const std::string& text,
                               const std::string& source);
};

struct LeaseOptions {
  // The leader renews every ttl/3; a lease unrenewed for ttl + margin (of
  // the observer's monotonic clock) is stealable.
  double ttl_seconds = 2.0;
  double margin_seconds = 0.5;
  // Hot-standby start: never claim a FRESH spool (no lease file) until it
  // has been observed empty for a full expiry window, so a standby racing
  // a cold-starting leader defers to it. All other acquisition paths
  // (released lease, dead owner, observed expiry) behave identically.
  bool standby = false;
  // Identity override for in-process multi-daemon tests ("" = real host).
  std::string host_override;
};

// One daemon's view of the lease. Not thread-safe; the supervisor drives
// it from its single control loop.
class LeaseManager {
 public:
  LeaseManager(const std::string& spool_root, const LeaseOptions& opts,
               util::Clock* clock = nullptr);

  // One acquisition attempt (non-blocking). Returns true when this process
  // is the leader afterwards. Standbys call this every poll; each call
  // also advances the staleness observation.
  bool try_acquire();

  // Heartbeat. Returns false — and demotes to standby — when the lease was
  // lost (stolen, or this process failed to renew within its own ttl and
  // self-demotes rather than clobbering a successor). Call at least every
  // ttl/3 while leader; cheap no-op when called early (< ttl/3 since the
  // last write).
  bool renew();

  // Clean handover: marks the record released (same token) so the next
  // acquirer skips the expiry wait. No-op when not leader.
  void release();

  // Forced demotion without touching the file — used when a FencedError
  // surfaces before the next renew() would have noticed the steal. Logs
  // lease_lost; no-op when not leader.
  void demote(const std::string& why);

  // The fencing check: true iff the on-disk lease still carries `token`
  // AND names this process as owner. Any read failure is false (fail
  // closed — a mutating op must not proceed on an unreadable lease).
  bool fence_ok(std::uint64_t token) const;

  bool is_leader() const { return leader_; }
  std::uint64_t token() const { return token_; }
  const LeaseOwner& identity() const { return identity_; }
  const std::string& lease_path() const { return lease_path_; }
  const LeaseOptions& options() const { return opts_; }

  // The current on-disk record, if readable and intact.
  std::optional<LeaseRecord> read() const;

 private:
  bool write_record(const LeaseRecord& rec, bool via_claim_file);
  bool claim_with_token(std::uint64_t token, bool reclaim);
  void note_lost(const std::string& why);

  std::string root_;
  std::string lease_path_;
  LeaseOptions opts_;
  util::Clock* clock_;
  LeaseOwner identity_;

  bool leader_ = false;
  std::uint64_t token_ = 0;
  double last_renew_monotonic_ = 0.0;

  // Staleness observation (standby side): the lease bytes last seen and
  // when (monotonic) they were first seen unchanged.
  bool observed_init_ = false;
  std::string observed_bytes_;
  double observed_since_monotonic_ = 0.0;
};

// Worker-side fence probe: true when `lease_path` is missing/unreadable
// (fail open — plain spools without a daemon lease must keep working) or
// carries exactly `token`. A readable lease with a different token returns
// false: the claim is stale and the worker must not commit its result.
bool lease_token_matches(const std::string& lease_path, std::uint64_t token);

}  // namespace minergy::serve
