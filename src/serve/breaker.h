// Per-circuit crash-loop breaker for the optimization service.
//
// A netlist that reliably kills or wedges its worker (a pathological cone,
// a technology corner that NaN-storms, a bug) must not be allowed to eat
// the whole retry/backoff budget of the daemon over and over: after
// `threshold` consecutive worker deaths for one circuit the breaker trips
// and subsequent jobs for that circuit are quarantined immediately
// ("short-circuited") instead of executed. After `cooldown_seconds` the
// breaker goes half-open and lets exactly one probe job through; a clean
// result closes it again, another death re-trips it for a fresh cooldown.
//
// Only infrastructure-level deaths (crash, timeout, worker error) count —
// a typed optimization failure (infeasible, uncertified) is a *result*, not
// a supervision event, and resets the streak like a success does.
//
// State is in-memory per daemon: a restart starts closed, which is safe —
// the jobs a tripped breaker would have short-circuited are still subject
// to their own retry budgets.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace minergy::serve {

struct BreakerOptions {
  int threshold = 3;               // consecutive deaths that trip
  double cooldown_seconds = 30.0;  // open -> half-open delay
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerOptions opts = {});

  // A worker for `circuit` produced a result envelope (any verdict).
  void record_success(const std::string& circuit);
  // A worker for `circuit` crashed, timed out, or exited without a result.
  void record_death(const std::string& circuit, double now_unix);

  // True when jobs for `circuit` should be short-circuited to quarantine.
  // In the half-open window this returns false exactly once (the probe) and
  // true again until that probe's outcome is recorded.
  bool should_short_circuit(const std::string& circuit, double now_unix);

  std::vector<std::string> open_circuits(double now_unix) const;

  // Every tracked circuit with its current state: "closed" | "open" |
  // "half_open" (tripped and either probing or past the cooldown). Feeds
  // the /jobs exposition endpoint.
  std::vector<std::pair<std::string, std::string>> states(
      double now_unix) const;

 private:
  struct State {
    int consecutive_deaths = 0;
    bool tripped = false;
    double tripped_at = 0.0;
    bool probe_in_flight = false;
  };

  BreakerOptions opts_;
  std::map<std::string, State> by_circuit_;
};

}  // namespace minergy::serve
