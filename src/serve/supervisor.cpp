#include "serve/supervisor.h"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <thread>

#include <algorithm>

#include "io/durable.h"
#include "io/envelope.h"
#include "io/fault_fs.h"
#include "io/scrub.h"
#include "obs/eventlog.h"
#include "obs/expose.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/inject.h"
#include "serve/worker.h"
#include "util/check.h"
#include "util/clock.h"
#include "util/json.h"

namespace minergy::serve {

namespace {

// Drain flag set from the signal handler; everything else happens in the
// control loop (async-signal-safety).
volatile std::sig_atomic_t g_drain_requested = 0;

void on_drain_signal(int) { g_drain_requested = 1; }

void install_drain_handlers() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = on_drain_signal;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
}

void sleep_seconds(double s) {
  std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

}  // namespace

Supervisor::Supervisor(SpoolQueue& queue, SupervisorOptions opts)
    : queue_(queue),
      opts_(std::move(opts)),
      breaker_(opts_.breaker),
      overload_(opts_.overload),
      lease_(queue.root(), opts_.lease) {
  MINERGY_CHECK_MSG(!opts_.worker_binary.empty(),
                    "SupervisorOptions.worker_binary is required");
  if (opts_.workers < 1) opts_.workers = 1;
  // The queue feeds the controller its sojourn/e2e signals and consults it
  // for the shed level; the controller lives as long as the supervisor,
  // which run_daemon keeps alive for the queue's whole service life.
  if (opts_.overload.enabled()) queue_.set_overload_controller(&overload_);
  // Every mutating queue operation from here on re-checks its job's fencing
  // token against the on-disk lease; see SpoolQueue::check_fence.
  queue_.set_lease(&lease_);
}

Supervisor::~Supervisor() { queue_.set_lease(nullptr); }

// Publish-on-change plus freshness refresh: the policy file carries its
// updated_unix, and admission-side enforcement ignores a stale one, so the
// daemon rewrites it at half the staleness horizon even when nothing
// changed.
void Supervisor::tick_overload(double now_unix) {
  if (!opts_.overload.enabled()) return;
  const bool changed = overload_.tick(now_unix);
  if (!changed && last_policy_unix_ >= 0.0 &&
      now_unix - last_policy_unix_ < kPolicyStaleSeconds / 2.0) {
    return;
  }
  io::write_artifact(
      (std::filesystem::path(queue_.root()) / "overload.json").string(),
      kOverloadSchema, overload_.policy(now_unix).to_json());
  last_policy_unix_ = now_unix;
}

void Supervisor::refresh_health(const std::string& state) {
  const double now_unix = unix_now();
  HealthInfo info;
  info.state = state;
  info.role = "leader";
  info.lease_token = lease_.token();
  info.workers_active = static_cast<int>(slots_.size());
  info.breaker_open = breaker_.open_circuits(now_unix);
  info.brownout_level = overload_.brownout_level();
  info.shed_level = overload_.shed_level();
  // Readiness verdict for load balancers: an ENOSPC-paused or browned-out
  // daemon is alive but should not receive traffic — /health turns 503
  // with a Retry-After while /metrics stays 200 so scrapers keep seeing it.
  if (state == "degraded") {
    info.status = "degraded";
    info.status_reason = "storage fault: admissions paused";
  } else if (info.brownout_level > 0) {
    info.status = "degraded";
    info.status_reason =
        "brownout level " + std::to_string(info.brownout_level);
  }
  queue_.write_health(info);
  last_health_monotonic_ = util::monotonic_seconds();

  // Live exposition: the same health document the file just got, plus the
  // /jobs spool partition, published from memory so a scrape never touches
  // the spool filesystem. Gated on running() — without --listen this whole
  // block is one relaxed atomic load.
  if (obs::ExpositionServer::instance().running()) {
    const bool degraded = info.status != "ok";
    const int retry_after = std::max(
        1, static_cast<int>(overload_.shed_retry_after() + 0.999));
    obs::ExpositionServer::instance().publish(
        "/health", "application/json", queue_.health_json(info),
        degraded ? 503 : 200,
        degraded ? "Retry-After: " + std::to_string(retry_after) + "\r\n"
                 : std::string());
    const QueueCounts c = queue_.counts();
    obs::gauge("serve.spool.pending").set(static_cast<double>(c.pending));
    obs::gauge("serve.spool.running").set(static_cast<double>(c.running));
    obs::gauge("serve.spool.done").set(static_cast<double>(c.done));
    obs::gauge("serve.spool.failed").set(static_cast<double>(c.failed));
    obs::gauge("serve.spool.quarantined")
        .set(static_cast<double>(c.quarantined));
    obs::gauge("serve.workers.active")
        .set(static_cast<double>(info.workers_active));
    obs::gauge("serve.lease.token")
        .set(static_cast<double>(info.lease_token));
    obs::gauge("serve.lease.is_leader").set(lease_.is_leader() ? 1.0 : 0.0);
    util::JsonWriter w(2);
    w.begin_object();
    w.kv("schema", "minergy.jobs.v1");
    w.kv("state", state);
    w.kv("workers_active", info.workers_active);
    w.key("queue").begin_object();
    w.kv("pending", c.pending);
    w.kv("running", c.running);
    w.kv("done", c.done);
    w.kv("failed", c.failed);
    w.kv("quarantined", c.quarantined);
    w.end_object();
    w.key("breakers").begin_array();
    for (const auto& [circuit, breaker_state] : breaker_.states(now_unix)) {
      w.begin_object();
      w.kv("circuit", circuit);
      w.kv("state", breaker_state);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    obs::ExpositionServer::instance().publish("/jobs", "application/json",
                                              w.str() + "\n");
  }
  log_spool_state(state);
}

// One spool_state event whenever the partition changes (and at lifecycle
// transitions): the tail of the event log always reconstructs the counts
// `minergy_served --status` would report.
void Supervisor::log_spool_state(const std::string& state) {
  if (!obs::EventLog::instance().armed()) return;
  const QueueCounts c = queue_.counts();
  if (counts_ever_logged_ && c.pending == last_logged_counts_.pending &&
      c.running == last_logged_counts_.running &&
      c.done == last_logged_counts_.done &&
      c.failed == last_logged_counts_.failed &&
      c.quarantined == last_logged_counts_.quarantined) {
    return;
  }
  last_logged_counts_ = c;
  counts_ever_logged_ = true;
  obs::Event ev;
  ev.kind = "spool_state";
  ev.detail = state;
  ev.num.emplace_back("pending", static_cast<double>(c.pending));
  ev.num.emplace_back("running", static_cast<double>(c.running));
  ev.num.emplace_back("done", static_cast<double>(c.done));
  ev.num.emplace_back("failed", static_cast<double>(c.failed));
  ev.num.emplace_back("quarantined", static_cast<double>(c.quarantined));
  obs::event(ev);
}

// Daemon-restart recovery: every running/ entry is an attempt some previous
// daemon never dispositioned. A committed result envelope means the work
// finished — finalize it, never re-execute. Anything else is requeued with
// its checkpoint intact so the optimizer resumes bit-exactly.
bool Supervisor::owned_by_live_slot(const std::string& id) const {
  return std::any_of(slots_.begin(), slots_.end(),
                     [&id](const Slot& s) { return s.job.id == id; });
}

void Supervisor::recover() {
  const obs::Span span("serve.recover");
  for (Job& job : queue_.running_jobs()) {
    // After a degraded-mode pause, recovery re-sweeps running/ while
    // workers may still be alive; their jobs are not orphans.
    if (owned_by_live_slot(job.id)) continue;
    // Token adoption: the orphan was claimed under a previous leadership
    // (possibly a different daemon's). This leader now owns its
    // disposition, so the journaled token is rewritten to the current one
    // — otherwise every finalize/requeue below would fence against a token
    // the current lease no longer carries.
    if (job.fence_token != lease_.token()) {
      kill_point("daemon.pre-adopt");
      job.fence_token = lease_.token();
    }
    if (job.circuit.empty()) {  // torn record (should be impossible)
      queue_.finalize_quarantined(std::move(job), "corrupt running record");
      continue;
    }
    if (std::filesystem::exists(queue_.result_path(job.id))) {
      obs::counter("serve.recover.finalized").add();
      dispose_envelope(std::move(job));
      continue;
    }
    if (job.interruptions() >= opts_.max_interruptions) {
      obs::counter("serve.recover.quarantined").add();
      queue_.finalize_quarantined(
          std::move(job),
          "interrupted " + std::to_string(opts_.max_interruptions) +
              " times without completing");
      continue;
    }
    obs::counter("serve.recover.requeued").add();
    queue_.requeue(std::move(job), "interrupted", /*not_before_unix=*/0.0,
                   /*keep_checkpoint=*/true);
  }
  queue_.collect_garbage();
}

// A worker left a result envelope: judge it and finalize. The breaker sees
// every envelope as a supervision success — a typed optimization failure is
// a verdict, not a worker death.
void Supervisor::dispose_envelope(Job job) {
  const std::string path = queue_.result_path(job.id);
  std::string envelope;
  util::JsonValue env;
  try {
    envelope = io::read_artifact(path, kJobResultSchema);
    env = util::JsonValue::parse(envelope, path);
  } catch (const io::IntegrityError& e) {
    // The commit point is fsynced and CRC-footed, so a verdict here means
    // the storage really did lie (torn commit, bit rot). Treat it as a
    // death: the retry path deletes the damaged envelope and re-runs.
    obs::counter("serve.worker.corrupt_envelopes").add();
    std::fprintf(stderr, "served: corrupt result envelope: %s\n", e.what());
    handle_death(std::move(job), "error", 0, 0.0, unix_now());
    return;
  } catch (const std::exception&) {
    // Atomic drops should never tear; treat the impossible as a death so
    // the job is retried rather than lost.
    handle_death(std::move(job), "error", 0, 0.0, unix_now());
    return;
  }
  if (!job.attempts.empty() && job.attempts.back().outcome == "running") {
    job.attempts.back().outcome = "ok";
  }
  breaker_.record_success(job.circuit);
  if (obs::EventLog::instance().armed()) {
    obs::Event ev;
    ev.kind = "cert_verdict";
    ev.job = job.id;
    ev.circuit = job.circuit;
    ev.attempt = job.started_attempts();
    const bool certified = env.get_bool("certified", false);
    ev.severity = certified ? "info" : "warn";
    ev.detail = !env.get_bool("ok", false) ? "error"
                : certified               ? "certified"
                                          : "uncertified";
    obs::event(ev);
  }
  kill_point("daemon.pre-finalize");
  if (!env.get_bool("ok", false)) {
    queue_.finalize_failed(std::move(job), env.get_string("error_type", "error"),
                           env.get_string("detail", ""), envelope);
    return;
  }
  const bool feasible = env.get_bool("feasible", false);
  const bool certified = env.get_bool("certified", false);
  if (feasible && certified) {
    if (env.get_bool("truncated", false)) {
      obs::counter("serve.jobs.truncated").add();
    }
    queue_.finalize_done(job, envelope);
    return;
  }
  std::string detail;
  if (env.has("certificate")) {
    detail = env.at("certificate").get_string("detail", "");
  }
  queue_.finalize_failed(std::move(job),
                         feasible ? "uncertified" : "infeasible", detail,
                         envelope);
}

// A worker died without committing a result: journal the outcome, feed the
// breaker, then retry with a perturbed seed under exponential backoff or
// quarantine when the budget is spent. Crash retries drop the checkpoint —
// a retry is a genuinely different stochastic run, not a replay.
void Supervisor::handle_death(Job job, const std::string& outcome,
                              int exit_code, double wall_seconds,
                              double now_unix) {
  if (!job.attempts.empty() && job.attempts.back().outcome == "running") {
    job.attempts.back().outcome = outcome;
    job.attempts.back().exit_code = exit_code;
    job.attempts.back().wall_seconds = wall_seconds;
  }
  breaker_.record_death(job.circuit, now_unix);
  obs::counter(outcome == "timeout" ? "serve.worker.timeouts"
               : outcome == "crash" ? "serve.worker.crashes"
                                    : "serve.worker.errors")
      .add();
  if (obs::EventLog::instance().armed()) {
    obs::Event ev;
    ev.kind = "worker_exit";
    ev.severity = "warn";
    ev.job = job.id;
    ev.circuit = job.circuit;
    ev.attempt = job.started_attempts();
    ev.detail = outcome;
    ev.num.emplace_back("exit_code", exit_code);
    ev.num.emplace_back("wall_s", wall_seconds);
    obs::event(ev);
  }
  const int failed = job.failed_attempts();
  if (failed > opts_.max_retries) {
    obs::Tracer::instance().instant("serve.quarantine", "serve");
    queue_.finalize_quarantined(
        std::move(job), "retries exhausted after " + std::to_string(failed) +
                            " failed attempts (last: " + outcome + ")");
    return;
  }
  obs::counter("serve.jobs.retries").add();
  const double backoff =
      opts_.backoff_seconds * static_cast<double>(1 << (failed - 1));
  if (obs::EventLog::instance().armed()) {
    obs::Event ev;
    ev.kind = "retry_scheduled";
    ev.job = job.id;
    ev.circuit = job.circuit;
    ev.attempt = job.started_attempts();
    ev.detail = "after " + outcome;
    ev.num.emplace_back("backoff_s", backoff);
    ev.num.emplace_back("failed_attempts", failed);
    obs::event(ev);
  }
  job.next_backoff_seconds = backoff;
  kill_point("daemon.pre-requeue");
  queue_.requeue(std::move(job), outcome, now_unix + backoff,
                 /*keep_checkpoint=*/false);
}

pid_t Supervisor::spawn_worker(const Job& job, std::uint64_t seed) {
  std::vector<std::string> args = {
      opts_.worker_binary,
      "--worker",
      "--spool=" + queue_.root(),
      "--job-id=" + job.id,
      "--attempt-seed=" + std::to_string(seed),
  };
  // Per-worker evaluation parallelism rides in as a flag, like brownout.
  if (opts_.worker_threads > 0) {
    args.push_back("--threads=" + std::to_string(opts_.worker_threads));
  }
  if (!kill_switch_spec().empty()) {
    args.push_back("--inject-kill=" + kill_switch_spec());
  }
  if (!stop_switch_spec().empty()) {
    args.push_back("--inject-stop=" + stop_switch_spec());
  }
  // Fenced claims re-verify the lease immediately before the envelope
  // commit (worker.cpp): a worker spawned by a since-deposed leader exits
  // 75 instead of landing a stale result.
  if (job.fence_token > 0) {
    args.push_back("--lease-path=" + lease_.lease_path());
  }
  // Brownout rides into the worker as a flag (the job file is immutable
  // once journaled): the level at spawn time decides this attempt's
  // fidelity, and the envelope records it as provenance.
  if (overload_.brownout_level() > 0) {
    args.push_back("--brownout-level=" +
                   std::to_string(overload_.brownout_level()));
  }
  // Storage-fault schedules propagate like the kill switch: every worker
  // runs under the same per-process fault counters as the daemon.
  if (io::FaultFs::instance().armed()) {
    args.push_back("--inject-io=" + io::FaultFs::instance().spec());
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& s : args) argv.push_back(s.data());
  argv.push_back(nullptr);

  const pid_t pid = fork();
  if (pid < 0) return -1;
  if (pid == 0) {
#ifdef __linux__
    // A dying daemon must take its workers with it: an orphan worker that
    // keeps computing while the restarted daemon re-runs the same job would
    // break exactly-once execution.
    prctl(PR_SET_PDEATHSIG, SIGKILL);
    if (getppid() == 1) _exit(127);  // parent already gone before prctl
#endif
    execv(opts_.worker_binary.c_str(), argv.data());
    std::fprintf(stderr, "exec %s failed: %s\n", opts_.worker_binary.c_str(),
                 std::strerror(errno));
    _exit(127);
  }
  return pid;
}

void Supervisor::spawn_ready(double now_unix) {
  while (static_cast<int>(slots_.size()) < opts_.workers) {
    std::optional<Job> claimed = queue_.claim(now_unix);
    if (!claimed) return;
    Job job = std::move(*claimed);
    kill_point("daemon.post-claim");
    if (breaker_.should_short_circuit(job.circuit, now_unix)) {
      obs::Tracer::instance().instant("serve.breaker.short_circuit", "serve");
      queue_.finalize_quarantined(
          std::move(job), "circuit breaker open (crash-looping circuit)");
      continue;
    }
    const std::uint64_t seed = attempt_seed(job, job.failed_attempts());
    JobAttempt attempt;
    attempt.seed = seed;
    attempt.backoff_seconds = job.next_backoff_seconds;
    job.next_backoff_seconds = 0.0;
    job.attempts.push_back(attempt);
    // Journaled claim: the attempt is on disk before the worker exists, so
    // no execution can ever be invisible to recovery.
    queue_.update_running(job);
    kill_point("daemon.pre-spawn");
    const pid_t pid = spawn_worker(job, seed);
    if (pid < 0) {
      handle_death(std::move(job), "error", -1, 0.0, now_unix);
      continue;
    }
    obs::counter("serve.worker.spawned").add();
    if (obs::EventLog::instance().armed()) {
      obs::Event ev;
      ev.kind = "worker_spawned";
      ev.job = job.id;
      ev.circuit = job.circuit;
      ev.attempt = job.started_attempts();
      ev.detail = "seed " + std::to_string(seed);
      obs::event(ev);
    }
    Slot slot;
    slot.pid = pid;
    slot.job = std::move(job);
    slot.started_monotonic = util::monotonic_seconds();
    slot.kill_after_seconds = opts_.timeout_seconds;
    slots_.push_back(std::move(slot));
    kill_point("daemon.post-spawn");
  }
}

void Supervisor::reap() {
  for (std::size_t i = 0; i < slots_.size();) {
    Slot& slot = slots_[i];
    int status = 0;
    const pid_t r = waitpid(slot.pid, &status, WNOHANG);
    if (r == 0) {
      const double elapsed =
          util::monotonic_seconds() - slot.started_monotonic;
      if (elapsed <= slot.kill_after_seconds) {
        ++i;
        continue;
      }
      kill(slot.pid, SIGKILL);
      waitpid(slot.pid, &status, 0);  // reap the corpse
      Job job = std::move(slot.job);
      slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(i));
      kill_point("daemon.post-reap");
      obs::histogram("serve.job.exec_micros").record(elapsed * 1e6);
      handle_death(std::move(job), "timeout", -SIGKILL, elapsed, unix_now());
      continue;
    }
    const double wall = util::monotonic_seconds() - slot.started_monotonic;
    obs::histogram("serve.job.exec_micros").record(wall * 1e6);
    Job job = std::move(slot.job);
    slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(i));
    kill_point("daemon.post-reap");
    // The envelope, not the exit code, is the source of truth: if the
    // worker committed a result before dying, the work is done.
    if (std::filesystem::exists(queue_.result_path(job.id))) {
      if (!job.attempts.empty()) job.attempts.back().wall_seconds = wall;
      obs::counter("serve.worker.ok").add();
      dispose_envelope(std::move(job));
      continue;
    }
    if (WIFSIGNALED(status)) {
      handle_death(std::move(job), "crash", -WTERMSIG(status), wall,
                   unix_now());
    } else {
      handle_death(std::move(job), "error", WEXITSTATUS(status), wall,
                   unix_now());
    }
  }
}

// SIGTERM drain: intake is already stopped; give workers a grace window to
// commit naturally, then SIGKILL survivors and requeue their jobs with the
// checkpoint files preserved — the restarted daemon resumes them from the
// last PR-3 snapshot, bit-exactly.
void Supervisor::drain() {
  const obs::Span span("serve.drain");
  obs::counter("serve.drain.requests").add();
  {
    obs::Event ev;
    ev.kind = "daemon_drain";
    ev.num.emplace_back("workers_in_flight",
                        static_cast<double>(slots_.size()));
    obs::event(ev);
  }
  const double t0 = util::monotonic_seconds();
  while (!slots_.empty() &&
         util::monotonic_seconds() - t0 < opts_.drain_grace_seconds) {
    reap();
    refresh_health("draining");
    if (!slots_.empty()) sleep_seconds(opts_.poll_seconds);
  }
  for (Slot& slot : slots_) {
    kill(slot.pid, SIGKILL);
    int status = 0;
    waitpid(slot.pid, &status, 0);
    obs::counter("serve.drain.killed_workers").add();
    Job job = std::move(slot.job);
    if (std::filesystem::exists(queue_.result_path(job.id))) {
      dispose_envelope(std::move(job));  // finished during the grace window
    } else {
      queue_.requeue(std::move(job), "interrupted", /*not_before_unix=*/0.0,
                     /*keep_checkpoint=*/true);
    }
  }
  slots_.clear();
}

// A storage fault (ENOSPC, EIO, failed fsync) anywhere in the protocol
// must not kill the daemon: stop claiming work, advertise "degraded", and
// probe with exponential backoff until writes land again. The queue's
// crash-safety invariants make the abandoned loop iteration harmless — a
// job stranded in running/ by the fault is re-swept by recover() exactly
// like after a daemon death.
void Supervisor::degraded_wait(const std::string& what) {
  obs::counter("io.degraded.enter").add();
  {
    obs::Event ev;
    ev.kind = "degraded_enter";
    ev.severity = "error";
    ev.detail = what;
    obs::event(ev);
  }
  std::fprintf(stderr, "served: degraded (storage fault: %s); pausing "
                       "admissions\n",
               what.c_str());
  try {
    refresh_health("degraded");
  } catch (const std::exception&) {
    // The same fault may block the health write; the probe loop retries it.
  }
  double backoff = std::max(opts_.poll_seconds, 0.05);
  while (!g_drain_requested) {
    sleep_seconds(backoff);
    backoff = std::min(backoff * 2.0, 5.0);
    obs::counter("io.degraded.probes").add();
    try {
      // The probe is the health write itself: once it lands, monitors see a
      // fresh "degraded" snapshot and the daemon can trust storage again.
      refresh_health("degraded");
      break;
    } catch (const io::IoError&) {
    }
  }
  obs::counter("io.degraded.exit").add();
  {
    obs::Event ev;
    ev.kind = "degraded_exit";
    ev.detail = "storage writable again";
    obs::event(ev);
  }
  std::fprintf(stderr, "served: storage writable again; resuming\n");
}

// The lease is gone (renew observed a steal, or a mutating queue op
// fenced). This process must stop acting as leader IMMEDIATELY and must
// not write another byte into the spool under its stale token: the workers
// are SIGKILLed (no requeue, no journaling — the new leader's recovery
// sweep owns those running/ entries now) and the daemon drops back into
// the standby acquisition loop.
void Supervisor::on_lease_lost(const std::string& why) {
  obs::counter("serve.lease.workers_reaped")
      .add(static_cast<std::int64_t>(slots_.size()));
  for (Slot& slot : slots_) {
    kill(slot.pid, SIGKILL);
    int status = 0;
    waitpid(slot.pid, &status, 0);
  }
  slots_.clear();
  lease_.demote(why);  // no-op when renew() already noted the loss
  obs::gauge("serve.lease.is_leader").set(0.0);
  std::fprintf(stderr, "served: lease lost (%s); demoting to standby\n",
               why.c_str());
}

// Standby heartbeat: everything a monitor needs (role, spool partition,
// gauges) without a single spool write — health.json belongs to the
// leader; the standby's view is served from memory over /health.
void Supervisor::standby_tick() {
  if (last_health_monotonic_ >= 0.0 &&
      util::monotonic_seconds() - last_health_monotonic_ <
          opts_.health_interval_seconds) {
    return;
  }
  last_health_monotonic_ = util::monotonic_seconds();
  HealthInfo info;
  info.state = "standby";
  info.role = "standby";
  info.workers_active = 0;
  obs::gauge("serve.lease.is_leader").set(0.0);
  if (obs::ExpositionServer::instance().running()) {
    obs::ExpositionServer::instance().publish("/health", "application/json",
                                              queue_.health_json(info));
    const QueueCounts c = queue_.counts();
    obs::gauge("serve.spool.pending").set(static_cast<double>(c.pending));
    obs::gauge("serve.spool.running").set(static_cast<double>(c.running));
    obs::gauge("serve.spool.done").set(static_cast<double>(c.done));
    obs::gauge("serve.spool.failed").set(static_cast<double>(c.failed));
    obs::gauge("serve.spool.quarantined")
        .set(static_cast<double>(c.quarantined));
    obs::gauge("serve.workers.active").set(0.0);
  }
  log_spool_state("standby");
}

void Supervisor::maybe_scrub() {
  if (opts_.scrub_interval_seconds <= 0.0 || !lease_.is_leader()) return;
  const double now = util::monotonic_seconds();
  if (last_scrub_monotonic_ >= 0.0 &&
      now - last_scrub_monotonic_ < opts_.scrub_interval_seconds) {
    return;
  }
  last_scrub_monotonic_ = now;
  const obs::Span span("serve.scrub");
  io::SpoolScrubber(queue_.root()).run();
}

int Supervisor::run() {
  g_drain_requested = 0;
  install_drain_handlers();
  // Pre-register the service latency instruments so the very first
  // /metrics scrape — before any job completes — already exposes the
  // serve_job_* histogram families instead of an absent series.
  obs::histogram("serve.job.queue_wait_micros");
  obs::histogram("serve.job.exec_micros");
  obs::histogram("serve.job.e2e_micros");
  obs::counter("serve.slo.violations");
  // Overload instruments too: CI asserts on serve_brownout_level and
  // serve_shed_level even for a daemon that never degrades.
  obs::gauge("serve.brownout.level");
  obs::gauge("serve.shed.level");
  // Lease + scrub families likewise, so a standby's very first scrape (or a
  // leader that never loses the lease) still exposes the full catalogue.
  obs::gauge("serve.lease.token");
  obs::gauge("serve.lease.is_leader");
  obs::counter("serve.lease.fenced_rejects");
  obs::counter("io.scrub.passes");
  {
    obs::Event ev;
    ev.kind = "daemon_start";
    ev.detail = opts_.lease.standby ? "standby" : "leader";
    ev.num.emplace_back("pid", static_cast<double>(::getpid()));
    ev.num.emplace_back("workers", static_cast<double>(opts_.workers));
    obs::event(ev);
  }
  bool started = false;
  for (;;) {
    try {
      // Role gate: everything below this block runs only while holding the
      // lease. A non-leader polls for acquisition; winning it restarts the
      // startup sequence (recover under the freshly-journaled token).
      if (!lease_.is_leader()) {
        if (!lease_.try_acquire()) {
          standby_tick();
          if (g_drain_requested) break;
          if (opts_.once) {
            const QueueCounts c = queue_.counts();
            if (c.pending == 0 && c.running == 0) break;
          }
          sleep_seconds(std::max(opts_.poll_seconds,
                                 opts_.lease.ttl_seconds / 8.0));
          continue;
        }
        kill_point("lease.post-acquire");
        started = false;
      }
      if (!started) {
        refresh_health("starting");
        recover();
        started = true;
        refresh_health("serving");
      }
      // Heartbeat before touching any work: a failed renew means some other
      // daemon owns the spool now — reap without writing and re-enter the
      // acquisition loop.
      if (!lease_.renew()) {
        on_lease_lost("lease expired or stolen");
        started = false;
        continue;
      }
      reap();
      if (g_drain_requested) break;
      tick_overload(unix_now());
      spawn_ready(unix_now());
      maybe_scrub();
      if (g_drain_requested) break;
      const QueueCounts c = queue_.counts();
      if (opts_.once && slots_.empty() && c.pending == 0) break;
      if (util::monotonic_seconds() - last_health_monotonic_ >=
          opts_.health_interval_seconds) {
        refresh_health("serving");
      }
      if (opts_.snapshot_interval_seconds > 0.0 && opts_.snapshot_hook &&
          util::monotonic_seconds() - last_snapshot_monotonic_ >=
              opts_.snapshot_interval_seconds) {
        last_snapshot_monotonic_ = util::monotonic_seconds();
        opts_.snapshot_hook();
      }
      sleep_seconds(opts_.poll_seconds);
    } catch (const FencedError& e) {
      // A mutating queue op lost the fencing race before renew() noticed:
      // identical reaction, the queue already refused the stale write.
      on_lease_lost(e.what());
      started = false;
    } catch (const io::IoError& e) {
      degraded_wait(e.what());
      if (g_drain_requested) break;
      // Re-run startup: recover() skips live slots and re-sweeps anything
      // the aborted iteration stranded in running/.
      started = false;
    }
  }
  if (lease_.is_leader()) {
    if (g_drain_requested) {
      try {
        drain();
      } catch (const FencedError& e) {
        on_lease_lost(e.what());
      } catch (const io::IoError& e) {
        // Requeue blocked by the fault: the jobs stay in running/ and the
        // next daemon's recovery requeues them — nothing is lost.
        std::fprintf(stderr, "served: drain degraded (%s)\n", e.what());
      }
    }
    try {
      refresh_health("stopped");
    } catch (const io::IoError&) {
    }
  }
  // Clean handover: mark the record released so a standby skips the expiry
  // wait. No-op when this daemon is not (or no longer) the leader.
  lease_.release();
  // Final snapshot + lifecycle marker: the event log's tail reconstructs
  // the terminal spool partition even for a daemon that never exits
  // cleanly (spool_state lines were also emitted on every change).
  if (opts_.snapshot_hook) opts_.snapshot_hook();
  {
    obs::Event ev;
    ev.kind = "daemon_stop";
    obs::event(ev);
  }
  return 0;
}

}  // namespace minergy::serve
