#include "serve/inject.h"

#include <csignal>
#include <cstdlib>

namespace minergy::serve {

namespace {

// One parsed switch: the raw spec (for worker propagation), the point name,
// and how many visits remain before it fires.
struct Switch {
  std::string spec;
  std::string point;
  int remaining = 0;

  void configure(const std::string& s) {
    spec = s;
    point.clear();
    remaining = 0;
    if (s.empty()) return;
    const std::size_t at = s.rfind('@');
    if (at == std::string::npos) {
      point = s;
      remaining = 1;
    } else {
      point = s.substr(0, at);
      remaining = std::atoi(s.c_str() + at + 1);
      if (remaining <= 0) remaining = 1;
    }
  }

  // True when the named visit is the one this switch fires on.
  bool fires(const char* p) {
    if (point.empty() || point != p) return false;
    return --remaining == 0;
  }
};

Switch g_kill;
Switch g_stop;

}  // namespace

void configure_kill_switch(const std::string& spec) { g_kill.configure(spec); }

void configure_stop_switch(const std::string& spec) { g_stop.configure(spec); }

const std::string& kill_switch_spec() { return g_kill.spec; }

const std::string& stop_switch_spec() { return g_stop.spec; }

void kill_point(const char* point) {
  if (g_kill.fires(point)) std::raise(SIGKILL);
  if (g_stop.fires(point)) std::raise(SIGSTOP);
}

}  // namespace minergy::serve
