#include "serve/inject.h"

#include <csignal>
#include <cstdlib>

namespace minergy::serve {

namespace {
std::string g_spec;       // as configured, for worker propagation
std::string g_point;      // parsed point name
int g_remaining = 0;      // visits left before the kill fires
}  // namespace

void configure_kill_switch(const std::string& spec) {
  g_spec = spec;
  g_point.clear();
  g_remaining = 0;
  if (spec.empty()) return;
  const std::size_t at = spec.rfind('@');
  if (at == std::string::npos) {
    g_point = spec;
    g_remaining = 1;
  } else {
    g_point = spec.substr(0, at);
    g_remaining = std::atoi(spec.c_str() + at + 1);
    if (g_remaining <= 0) g_remaining = 1;
  }
}

const std::string& kill_switch_spec() { return g_spec; }

void kill_point(const char* point) {
  if (g_point.empty() || g_point != point) return;
  if (--g_remaining > 0) return;
  std::raise(SIGKILL);
}

}  // namespace minergy::serve
