#include "serve/sched.h"

#include <algorithm>
#include <tuple>

#include "util/check.h"

namespace minergy::serve {

const char* to_string(Priority p) {
  switch (p) {
    case Priority::kInteractive:
      return "interactive";
    case Priority::kBatch:
      return "batch";
    case Priority::kBackground:
      return "background";
  }
  return "batch";
}

Priority priority_from_string(const std::string& s,
                              const std::string& source) {
  if (s == "interactive") return Priority::kInteractive;
  if (s == "batch") return Priority::kBatch;
  if (s == "background") return Priority::kBackground;
  throw util::ParseError("unknown priority class '" + s +
                             "' (expected interactive|batch|background)",
                         source, 0);
}

namespace {

// EDF sort key within a band: a job with no deadline must sort after every
// deadlined one, so map 0 to +infinity-ish via a (has_deadline, deadline)
// pair instead of comparing raw doubles.
std::tuple<int, bool, double, double, const std::string&> sort_key(
    const SchedEntry& e) {
  const bool no_deadline = e.complete_by_unix <= 0.0;
  return {static_cast<int>(e.priority), no_deadline, e.complete_by_unix,
          e.submitted_unix, e.id};
}

}  // namespace

ClaimPlan plan_claims(const std::vector<SchedEntry>& entries,
                      double now_unix) {
  ClaimPlan plan;
  std::vector<const SchedEntry*> eligible;
  for (const SchedEntry& e : entries) {
    if (e.complete_by_unix > 0.0 && e.complete_by_unix < now_unix) {
      plan.expired.push_back(e.id);
      continue;
    }
    if (e.not_before_unix > now_unix) continue;  // backing off
    eligible.push_back(&e);
  }
  std::sort(eligible.begin(), eligible.end(),
            [](const SchedEntry* a, const SchedEntry* b) {
              return sort_key(*a) < sort_key(*b);
            });
  plan.order.reserve(eligible.size());
  for (const SchedEntry* e : eligible) plan.order.push_back(e->id);
  std::sort(plan.expired.begin(), plan.expired.end());
  return plan;
}

bool sheds_at_level(Priority p, int shed_level) {
  switch (p) {
    case Priority::kInteractive:
      return false;  // interactive never sheds
    case Priority::kBatch:
      return shed_level >= 2;
    case Priority::kBackground:
      return shed_level >= 1;
  }
  return false;
}

}  // namespace minergy::serve
