// Closed-loop overload protection for the optimization service.
//
// The paper's core trade — spend optimization effort to buy energy at a
// fixed delay target — exists one level up in the service: under overload
// the daemon must spend *less* optimizer fidelity to keep latency. Three
// cooperating mechanisms, all driven by explicit timestamps so the chaos
// harness can run them against a virtual clock:
//
//   Shedding   CoDel-style control on queue sojourn: when the *minimum*
//              claim wait over a sliding window stays above the target the
//              queue is genuinely backed up (not just bursty), and the
//              controller starts dropping the lowest priority class
//              (level 1 = background, level 2 = background + batch;
//              interactive never sheds). Sheds happen in two places: the
//              daemon drops already-queued shed-class jobs to failed/ with
//              a typed "shed" failure, and submitters are rejected at
//              admission with a ShedError (distinct from QueueFullError)
//              carrying a retry-after hint.
//
//   Quotas     Per-client token buckets (--quota=CLIENT:RPS), persisted
//              under <spool>/quota/ so they survive across the short-lived
//              --submit processes. Approximate under concurrent submitters
//              (last-writer-wins refill), which only ever over-admits by a
//              token — acceptable for rate limiting, never for accounting.
//
//   Brownout   Feedback on the windowed p95 of end-to-end latency vs the
//              --slo-e2e-ms objective: p95 over the SLO steps the fidelity
//              ladder down one level (level 1 forces RobustOptimizer to
//              start at the baseline tier, level 2 at max-drive, watchdog
//              budgets shrink proportionally), p95 back under
//              recover_ratio * SLO — or a fully idle window — steps it
//              back up. A dwell time between transitions provides the
//              hysteresis; every transition emits a brownout_* event and
//              moves the serve.brownout.level gauge.
//
// The daemon publishes its current decision as <spool>/overload.json
// (schema minergy.overload.v1) so admission-side enforcement in a separate
// --submit process sees the same policy the control loop computed.
#pragma once

#include <deque>
#include <map>
#include <stdexcept>
#include <string>

#include "serve/sched.h"

namespace minergy::serve {

inline constexpr const char kOverloadSchema[] = "minergy.overload.v1";
// A policy older than this is ignored for shedding decisions (the daemon
// that wrote it is likely gone); quotas are configuration and still apply.
inline constexpr double kPolicyStaleSeconds = 30.0;

// Admission rejected by load shedding or a client quota — a *policy*
// rejection, distinct from QueueFullError's *capacity* rejection: the queue
// may have room, the service is choosing not to take this class of work.
class ShedError : public std::runtime_error {
 public:
  ShedError(const std::string& reason, double retry_after_seconds);
  double retry_after_seconds() const { return retry_after_; }

 private:
  double retry_after_;
};

struct OverloadOptions {
  // CoDel target on queue sojourn; 0 disables shedding entirely.
  double shed_target_seconds = 0.0;
  // Sliding window over which the minimum sojourn is tracked; staying above
  // the target for a further full window escalates level 1 -> 2.
  double shed_window_seconds = 1.0;
  // Brownout reference (the e2e SLO); 0 disables the brownout controller.
  double slo_e2e_seconds = 0.0;
  // Hysteresis: minimum time between brownout level changes.
  double brownout_dwell_seconds = 2.0;
  // Step back up once windowed p95 < recover_ratio * SLO.
  double brownout_recover_ratio = 0.7;
  int brownout_max_level = 2;
  // Minimum windowed samples before a brownout decision fires either way.
  int min_window_samples = 3;
  // Retry-after hint carried by ShedError and the published policy.
  double retry_after_seconds = 1.0;
  // client -> sustained requests/second (burst = max(1, rps) tokens).
  std::map<std::string, double> quotas;

  bool shed_enabled() const { return shed_target_seconds > 0.0; }
  bool brownout_enabled() const { return slo_e2e_seconds > 0.0; }
  bool enabled() const {
    return shed_enabled() || brownout_enabled() || !quotas.empty();
  }
};

// The daemon's published decision, as read back by admission-side code.
struct OverloadPolicy {
  int shed_level = 0;
  int brownout_level = 0;
  double retry_after_seconds = 1.0;
  double updated_unix = 0.0;
  std::map<std::string, double> quotas;

  // Bounded on BOTH sides: a policy stamped in the future (the publisher's
  // wall clock jumped forward, then was corrected) must read as stale, not
  // as fresh-for-hours. Admission fails open on a stale policy either way.
  bool fresh(double now_unix) const {
    if (updated_unix <= 0.0) return false;
    const double age = now_unix - updated_unix;
    return age >= -kPolicyStaleSeconds && age <= kPolicyStaleSeconds;
  }
  std::string to_json() const;
  static OverloadPolicy from_json(const std::string& text,
                                  const std::string& source);
};

// Feedback controller owned by the daemon's control loop. All methods take
// explicit timestamps; nothing here reads a clock.
class OverloadController {
 public:
  explicit OverloadController(OverloadOptions opts = {});

  const OverloadOptions& options() const { return opts_; }

  // Queue sojourn of one claimed job (seconds waited from eligibility to
  // claim) — the CoDel signal.
  void observe_sojourn(double wait_seconds, double now_unix);
  // End-to-end latency of one finalized job — the brownout signal.
  void observe_e2e(double e2e_seconds, double now_unix);

  // Re-evaluates both loops. Returns true when either level changed (the
  // caller then republishes the policy document).
  bool tick(double now_unix);

  int shed_level() const { return shed_level_; }
  int brownout_level() const { return brownout_level_; }
  // True when `p` drops at the current shed level.
  bool should_shed(Priority p) const {
    return sheds_at_level(p, shed_level_);
  }
  double shed_retry_after() const { return opts_.retry_after_seconds; }

  OverloadPolicy policy(double now_unix) const;

 private:
  void prune(std::deque<std::pair<double, double>>& window, double now_unix,
             double span) const;
  double window_min_sojourn() const;
  double window_p95_e2e() const;
  bool tick_shed(double now_unix);
  bool tick_brownout(double now_unix);
  void set_brownout_level(int level, double now_unix, double p95,
                          const char* why);

  OverloadOptions opts_;
  std::deque<std::pair<double, double>> sojourns_;  // (observed_at, seconds)
  std::deque<std::pair<double, double>> e2es_;      // (observed_at, seconds)
  int shed_level_ = 0;
  int brownout_level_ = 0;
  double overload_since_unix_ = -1.0;    // first tick the window min exceeded
  double last_brownout_change_ = -1.0;   // dwell anchor
  double last_e2e_observed_ = -1.0;      // idle-recovery detection
};

// --- admission-side enforcement (runs in the --submit process) ------------

// Reads <spool_root>/overload.json; absent, corrupt, or unreadable gives a
// permissive default policy (never blocks admission on a missing daemon).
OverloadPolicy load_policy(const std::string& spool_root, double now_unix);

// Applies the policy to one admission: throws ShedError when the job's
// class is being shed (policy must be fresh) or when `client` has a quota
// and its token bucket is empty. On success consumes one token from the
// bucket persisted at <spool_root>/quota/<client>.json.
void enforce_admission(const std::string& spool_root,
                       const OverloadPolicy& policy, Priority priority,
                       const std::string& client, double now_unix);

// Parses "--quota=CLIENT:RPS[,CLIENT:RPS...]"; throws std::invalid_argument
// on bad grammar (empty client, non-positive or non-numeric rate).
std::map<std::string, double> parse_quota_spec(const std::string& spec);

}  // namespace minergy::serve
