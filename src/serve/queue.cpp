#include "serve/queue.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "io/checkpoint.h"
#include "io/durable.h"
#include "io/envelope.h"
#include "obs/eventlog.h"
#include "obs/metrics.h"
#include "serve/inject.h"
#include "util/check.h"
#include "util/json.h"

namespace minergy::serve {

namespace fs = std::filesystem;

namespace {

// Sorted *.json stems of one state directory.
std::vector<std::string> list_ids(const std::string& dir) {
  std::vector<std::string> ids;
  std::error_code ec;
  for (const fs::directory_entry& e : fs::directory_iterator(dir, ec)) {
    if (!e.is_regular_file()) continue;
    const fs::path p = e.path();
    if (p.extension() != ".json") continue;  // skips in-flight .tmp files
    ids.push_back(p.stem().string());
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace

QueueFullError::QueueFullError(std::size_t depth, std::size_t limit,
                               double retry_after_seconds)
    : std::runtime_error("queue full: " + std::to_string(depth) + "/" +
                         std::to_string(limit) +
                         " pending jobs; retry after " +
                         std::to_string(retry_after_seconds) + " s"),
      depth_(depth),
      limit_(limit),
      retry_after_(retry_after_seconds) {}

QueueFullError::QueueFullError(const std::string& reason,
                               double retry_after_seconds)
    : std::runtime_error(reason + "; retry after " +
                         std::to_string(retry_after_seconds) + " s"),
      depth_(0),
      limit_(0),
      retry_after_(retry_after_seconds) {}

SpoolQueue::SpoolQueue(std::string root, SpoolOptions opts)
    : root_(std::move(root)), opts_(opts) {
  for (const char* state : {"pending", "running", "done", "failed",
                            "quarantined", "results", "checkpoints"}) {
    fs::create_directories(fs::path(root_) / state);
  }
}

std::string SpoolQueue::dir(const std::string& state) const {
  return (fs::path(root_) / state).string();
}

std::string SpoolQueue::job_path(const std::string& state,
                                 const std::string& id) const {
  return (fs::path(root_) / state / (id + ".json")).string();
}

std::string SpoolQueue::result_path(const std::string& id) const {
  return job_path("results", id);
}

std::string SpoolQueue::checkpoint_path(const std::string& id) const {
  return job_path("checkpoints", id);
}

std::string SpoolQueue::submit(Job job) {
  // Policy gate first: a shed or quota rejection is the service *choosing*
  // not to take this work, checked before the cheaper capacity bound so a
  // browned-out service rejects with the right retry-after even when the
  // queue happens to have room. Fails open when no daemon has published a
  // policy (load_policy returns a permissive default).
  const double admit_now = unix_now();
  enforce_admission(root_, load_policy(root_, admit_now), job.priority,
                    job.client, admit_now);
  const std::size_t depth = list_ids(dir("pending")).size();
  if (depth >= opts_.max_pending) {
    obs::counter("serve.queue.full_rejections").add();
    // Hint: how long until the backlog has plausibly drained below the
    // bound, assuming jobs keep completing at the expected service rate.
    const double retry_after =
        opts_.expected_job_seconds *
        static_cast<double>(depth - opts_.max_pending + 1);
    throw QueueFullError(depth, opts_.max_pending, retry_after);
  }
  if (job.id.empty()) job.id = make_job_id();
  if (job.submitted_unix == 0.0) job.submitted_unix = unix_now();
  try {
    io::write_artifact(job_path("pending", job.id), kJobSchema, job.to_json());
  } catch (const io::DiskFullError& e) {
    // A full disk is the queue at its hardest bound: reject with the same
    // typed backpressure as a full pending/ directory so clients retry
    // instead of seeing an opaque write error.
    obs::counter("serve.admission.enospc").add();
    throw QueueFullError(std::string("disk full during admission (") +
                             e.what() + ")",
                         opts_.expected_job_seconds *
                             static_cast<double>(std::max<std::size_t>(depth,
                                                                       1)));
  }
  obs::counter("serve.queue.submitted").add();
  obs::Event ev;
  ev.kind = "job_submitted";
  ev.job = job.id;
  ev.circuit = job.circuit;
  obs::event(ev);
  return job.id;
}

// Expire/shed transition: win the job via the same claim rename, then
// finalize it to failed/ with a typed verdict. A SIGKILL at the kill point
// (between rename and finalize) leaves the job in running/ with no result
// envelope — startup recovery requeues it as interrupted and the next claim
// pass re-expires or re-sheds it, so the decision is exactly-once like any
// other transition.
bool SpoolQueue::drop_pending(const Job& job, const char* kill_pt,
                              const std::string& type,
                              const std::string& detail) {
  if (!io::try_rename(job_path("pending", job.id),
                      job_path("running", job.id))) {
    return false;  // raced by another claimant, or vanished
  }
  kill_point(kill_pt);
  obs::Event ev;
  ev.kind = type == "shed" ? "job_shed" : "deadline_expired";
  ev.severity = "warn";
  ev.job = job.id;
  ev.circuit = job.circuit;
  ev.detail = detail;
  obs::event(ev);
  Job claimed = job;
  if (lease_ != nullptr) claimed.fence_token = lease_->token();
  finalize_failed(std::move(claimed), type, detail);
  return true;
}

void SpoolQueue::check_fence(const Job& job, const char* op) const {
  if (lease_ == nullptr || job.fence_token == 0) return;
  if (lease_->fence_ok(job.fence_token)) return;
  const std::optional<LeaseRecord> rec = lease_->read();
  const std::uint64_t current = rec ? rec->fencing_token : 0;
  obs::counter("serve.lease.fenced_rejects").add();
  obs::Event ev;
  ev.kind = "fenced_reject";
  ev.severity = "warn";
  ev.job = job.id;
  ev.circuit = job.circuit;
  ev.detail = op;
  ev.num.emplace_back("held_token", static_cast<double>(job.fence_token));
  ev.num.emplace_back("current_token", static_cast<double>(current));
  obs::event(ev);
  throw FencedError(job.fence_token, current, op);
}

std::optional<Job> SpoolQueue::claim(double now_unix) {
  // Snapshot + parse every pending job first: the scheduler needs the whole
  // backlog to order it (priority band, then EDF), and the parse pass is
  // where corrupt files get quarantined out of the way.
  std::vector<Job> jobs;
  std::vector<SchedEntry> entries;
  for (const std::string& id : list_ids(dir("pending"))) {
    const std::string pending = job_path("pending", id);
    Job job;
    try {
      job = Job::from_json(io::read_artifact(pending, kJobSchema), pending);
    } catch (const util::ParseError& e) {
      // A garbled job file — including an envelope verdict (truncation,
      // bit rot, wrong schema), which is an io::IntegrityError and thus a
      // ParseError — must not wedge the queue head: synthesize a typed
      // quarantine record for it and move on.
      obs::counter("serve.queue.corrupt_jobs").add();
      Job corrupt;
      corrupt.id = id;
      corrupt.failure_type = "corrupt-job";
      corrupt.failure_detail = e.what();
      if (!fs::exists(job_path("quarantined", id))) {
        io::write_artifact(job_path("quarantined", id), kJobSchema,
                           corrupt.to_json());
      }
      std::remove(pending.c_str());
      obs::counter("serve.jobs.quarantined").add();
      obs::Event ev;
      ev.kind = "job_quarantined";
      ev.severity = "warn";
      ev.job = id;
      ev.detail = std::string("corrupt job file: ") + e.what();
      obs::event(ev);
      continue;
    }
    SchedEntry entry;
    entry.id = job.id;
    entry.priority = job.priority;
    entry.complete_by_unix = job.complete_by_unix;
    entry.not_before_unix = job.not_before_unix;
    entry.submitted_unix = job.submitted_unix;
    entries.push_back(std::move(entry));
    jobs.push_back(std::move(job));
  }
  const ClaimPlan plan = plan_claims(entries, now_unix);
  const auto find_job = [&jobs](const std::string& id) -> const Job* {
    for (const Job& j : jobs) {
      if (j.id == id) return &j;
    }
    return nullptr;
  };

  // Deadline expiry: a job whose completion deadline has already passed
  // produces an answer nobody can use — fail it now instead of spending a
  // worker (backoff ignored; a missed deadline is missed either way).
  for (const std::string& id : plan.expired) {
    const Job* job = find_job(id);
    if (job == nullptr) continue;
    char detail[128];
    std::snprintf(detail, sizeof detail,
                  "completion deadline missed by %.3f s while queued",
                  now_unix - job->complete_by_unix);
    if (drop_pending(*job, "daemon.pre-expire", "deadline_expired",
                     detail)) {
      obs::counter("serve.sched.expired").add();
    }
  }

  // Load shedding: while the controller says the queue is persistently over
  // its sojourn target, drop the shed classes (background first, then
  // batch; never interactive) from the backlog before claiming.
  const int shed_level =
      overload_ != nullptr ? overload_->shed_level() : 0;
  std::vector<std::string> shed_ids;
  if (shed_level > 0) {
    for (const std::string& id : plan.order) {
      const Job* job = find_job(id);
      if (job == nullptr || !sheds_at_level(job->priority, shed_level)) {
        continue;
      }
      char detail[160];
      std::snprintf(detail, sizeof detail,
                    "load shed at level %d (queue sojourn over target); "
                    "retry after %.1f s",
                    shed_level, overload_->shed_retry_after());
      if (drop_pending(*job, "daemon.pre-shed", "shed", detail)) {
        obs::counter(obs::labeled_name("serve.shed.dropped", "priority",
                                       to_string(job->priority)))
            .add();
        shed_ids.push_back(id);
      }
    }
  }

  for (const std::string& id : plan.order) {
    if (std::find(shed_ids.begin(), shed_ids.end(), id) != shed_ids.end()) {
      continue;
    }
    const Job* planned = find_job(id);
    if (planned == nullptr) continue;
    // The claim itself: exactly one claimant can win this rename.
    if (!io::try_rename(job_path("pending", id),
                        job_path("running", id))) {
      continue;  // raced by another claimant, or vanished
    }
    Job job = *planned;
    // Journal the fencing token the claim happened under; every later
    // mutating operation on this job re-validates it (check_fence).
    if (lease_ != nullptr) job.fence_token = lease_->token();
    obs::counter("serve.queue.claimed").add();
    obs::counter(obs::labeled_name("serve.sched.claimed", "priority",
                                   to_string(job.priority)))
        .add();
    // Queue wait: from the instant the job became eligible (submission, or
    // the end of its retry backoff) to this claim.
    const double eligible_unix =
        std::max(job.submitted_unix, job.not_before_unix);
    const double wait_s =
        eligible_unix > 0.0 ? std::max(0.0, now_unix - eligible_unix) : 0.0;
    obs::histogram("serve.job.queue_wait_micros").record(wait_s * 1e6);
    if (overload_ != nullptr) overload_->observe_sojourn(wait_s, now_unix);
    obs::Event ev;
    ev.kind = "job_claimed";
    ev.job = job.id;
    ev.circuit = job.circuit;
    ev.attempt = job.started_attempts() + 1;
    ev.num.emplace_back("queue_wait_s", wait_s);
    obs::event(ev);
    return job;
  }
  return std::nullopt;
}

void SpoolQueue::update_running(const Job& job) {
  check_fence(job, "update_running");
  io::write_artifact(job_path("running", job.id), kJobSchema, job.to_json());
}

void SpoolQueue::remove_scratch(const std::string& id,
                                bool keep_checkpoint) const {
  std::remove(result_path(id).c_str());
  // Checkpoint files are generational (id.json, id.json.1, ...); remove
  // the whole family so no stale generation survives into a later job.
  if (!keep_checkpoint) io::Checkpoint::remove(checkpoint_path(id));
}

void SpoolQueue::note_terminal(const Job& job, const char* kind,
                               const std::string& severity) {
  const double e2e_s =
      job.submitted_unix > 0.0 ? unix_now() - job.submitted_unix : 0.0;
  obs::histogram("serve.job.e2e_micros").record(e2e_s * 1e6);
  if (overload_ != nullptr) overload_->observe_e2e(e2e_s, unix_now());
  obs::Event ev;
  ev.kind = kind;
  ev.severity = severity;
  ev.job = job.id;
  ev.circuit = job.circuit;
  ev.attempt = job.started_attempts();
  if (!job.failure_type.empty()) ev.detail = job.failure_type;
  ev.num.emplace_back("e2e_s", e2e_s);
  obs::event(ev);
  if (opts_.slo_e2e_seconds > 0.0 && e2e_s > opts_.slo_e2e_seconds) {
    obs::counter("serve.slo.violations").add();
    obs::Event slo;
    slo.kind = "slo_violation";
    slo.severity = "warn";
    slo.job = job.id;
    slo.circuit = job.circuit;
    slo.num.emplace_back("e2e_s", e2e_s);
    slo.num.emplace_back("slo_s", opts_.slo_e2e_seconds);
    obs::event(slo);
  }
}

void SpoolQueue::write_terminal(Job job, const std::string& state,
                                const std::string& result_json) {
  // Order matters for crash-safety: terminal record first, then the
  // running/ entry, then scratch files. A crash between any two steps
  // leaves a state recovery re-finalizes idempotently (the result envelope
  // is still on disk until the very last step).
  io::write_artifact(job_path(state, job.id), kJobSchema,
                     job.to_json(result_json));
  std::remove(job_path("running", job.id).c_str());
  remove_scratch(job.id, /*keep_checkpoint=*/false);
}

void SpoolQueue::finalize_done(const Job& job,
                               const std::string& result_json) {
  // Fence BEFORE the duplicate check: a zombie leader's duplicate
  // finalize must reject loudly, not silently clear the new leader's
  // running/ entry on its way out.
  check_fence(job, "finalize_done");
  if (fs::exists(job_path("done", job.id))) {
    // First write wins: a duplicate finalization (late retry landing after
    // a success, or recovery replaying a finished attempt) is dropped.
    obs::counter("serve.queue.duplicate_results").add();
    std::remove(job_path("running", job.id).c_str());
    remove_scratch(job.id, /*keep_checkpoint=*/false);
    return;
  }
  note_terminal(job, "job_done", "info");
  write_terminal(job, "done", result_json);
  obs::counter("serve.jobs.done").add();
}

void SpoolQueue::finalize_failed(Job job, const std::string& type,
                                 const std::string& detail,
                                 const std::string& result_json) {
  check_fence(job, "finalize_failed");
  job.failure_type = type;
  job.failure_detail = detail;
  note_terminal(job, "job_failed", "warn");
  write_terminal(std::move(job), "failed", result_json);
  obs::counter("serve.jobs.failed").add();
}

void SpoolQueue::finalize_quarantined(Job job, const std::string& reason) {
  check_fence(job, "finalize_quarantined");
  job.failure_type = "quarantined";
  job.failure_detail = reason;
  note_terminal(job, "job_quarantined", "warn");
  write_terminal(std::move(job), "quarantined", std::string());
  obs::counter("serve.jobs.quarantined").add();
}

void SpoolQueue::requeue(Job job, const std::string& outcome,
                         double not_before_unix, bool keep_checkpoint) {
  check_fence(job, "requeue");
  if (!job.attempts.empty() && job.attempts.back().outcome == "running") {
    job.attempts.back().outcome = outcome;
  }
  job.not_before_unix = not_before_unix;
  if (!keep_checkpoint) io::Checkpoint::remove(checkpoint_path(job.id));
  std::remove(result_path(job.id).c_str());
  // Journal in place, then one atomic rename back to pending/ — there is
  // never an instant where the job exists in two state directories.
  update_running(job);
  io::rename_file(job_path("running", job.id), job_path("pending", job.id));
  obs::counter("serve.jobs.requeued").add();
  obs::Event ev;
  ev.kind = "job_requeued";
  ev.job = job.id;
  ev.circuit = job.circuit;
  ev.attempt = job.started_attempts();
  ev.detail = outcome;
  if (not_before_unix > 0.0) {
    ev.num.emplace_back("not_before_in_s",
                        std::max(0.0, not_before_unix - unix_now()));
  }
  obs::event(ev);
}

std::vector<Job> SpoolQueue::running_jobs() const {
  std::vector<Job> jobs;
  for (const std::string& id : list_ids(dir("running"))) {
    const std::string path = job_path("running", id);
    try {
      jobs.push_back(Job::from_json(io::read_artifact(path, kJobSchema), path));
    } catch (const util::ParseError&) {
      // update_running writes atomically, so a torn running/ record should
      // be impossible; if one appears anyway, surface it as corrupt rather
      // than crashing recovery.
      obs::counter("serve.queue.corrupt_jobs").add();
      Job corrupt;
      corrupt.id = id;
      jobs.push_back(std::move(corrupt));
    }
  }
  return jobs;
}

void SpoolQueue::collect_garbage() {
  for (const char* scratch : {"results", "checkpoints"}) {
    for (const std::string& id : list_ids(dir(scratch))) {
      if (fs::exists(job_path("pending", id)) ||
          fs::exists(job_path("running", id))) {
        continue;
      }
      // Checkpoints are generational; remove() sweeps id.json.1/.2 (which
      // list_ids never sees — their extension is not .json) along with the
      // listed newest generation.
      io::Checkpoint::remove(job_path(scratch, id));
      obs::counter("serve.queue.garbage_collected").add();
    }
  }
}

QueueCounts SpoolQueue::counts() const {
  QueueCounts c;
  c.pending = list_ids(dir("pending")).size();
  c.running = list_ids(dir("running")).size();
  c.done = list_ids(dir("done")).size();
  c.failed = list_ids(dir("failed")).size();
  c.quarantined = list_ids(dir("quarantined")).size();
  return c;
}

std::vector<std::string> SpoolQueue::ids_in(const std::string& state) const {
  return list_ids(dir(state));
}

void SpoolQueue::write_health(const HealthInfo& info) const {
  io::write_artifact((fs::path(root_) / "health.json").string(),
                     "minergy.health.v1", health_json(info));
}

std::string SpoolQueue::health_json(const HealthInfo& info) const {
  const QueueCounts c = counts();
  util::JsonWriter w(2);
  w.begin_object();
  w.kv("schema", "minergy.health.v1");
  w.kv("state", info.state);
  w.kv("status", info.status);
  w.kv("role", info.role);
  if (info.lease_token > 0) {
    w.kv("lease_token", static_cast<std::int64_t>(info.lease_token));
  }
  if (!info.status_reason.empty()) w.kv("status_reason", info.status_reason);
  w.kv("pid", static_cast<std::int64_t>(::getpid()));
  w.kv("updated_unix", unix_now());
  w.kv("workers_active", info.workers_active);
  w.kv("brownout_level", info.brownout_level);
  w.kv("shed_level", info.shed_level);
  w.key("queue").begin_object();
  w.kv("pending", c.pending);
  w.kv("running", c.running);
  w.kv("done", c.done);
  w.kv("failed", c.failed);
  w.kv("quarantined", c.quarantined);
  w.end_object();
  w.key("breaker_open").begin_array();
  for (const std::string& circuit : info.breaker_open) w.value(circuit);
  w.end_array();
  w.end_object();
  return w.str() + "\n";
}

}  // namespace minergy::serve
