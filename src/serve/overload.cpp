#include "serve/overload.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "io/durable.h"
#include "io/envelope.h"
#include "obs/eventlog.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/json.h"

namespace minergy::serve {

namespace fs = std::filesystem;

namespace {

constexpr const char kQuotaSchema[] = "minergy.quota.v1";

// Quota state is keyed by client name on disk; anything outside the
// filename-safe set maps to '_' (collisions just share a bucket, which only
// ever under-admits for adversarial names).
std::string quota_filename(const std::string& client) {
  std::string out;
  out.reserve(client.size());
  for (const char c : client) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.';
    out += ok ? c : '_';
  }
  if (out.empty()) out = "_";
  return out;
}

}  // namespace

ShedError::ShedError(const std::string& reason, double retry_after_seconds)
    : std::runtime_error(reason + "; retry after " +
                         std::to_string(retry_after_seconds) + " s"),
      retry_after_(retry_after_seconds) {}

// --- policy document -------------------------------------------------------

std::string OverloadPolicy::to_json() const {
  util::JsonWriter w(2);
  w.begin_object();
  w.kv("schema", kOverloadSchema);
  w.kv("shed_level", shed_level);
  w.kv("brownout_level", brownout_level);
  w.kv("retry_after_seconds", retry_after_seconds);
  w.kv("updated_unix", updated_unix);
  w.key("quotas").begin_object();
  for (const auto& [client, rps] : quotas) w.kv(client, rps);
  w.end_object();
  w.end_object();
  return w.str() + "\n";
}

OverloadPolicy OverloadPolicy::from_json(const std::string& text,
                                         const std::string& source) {
  const util::JsonValue root = util::JsonValue::parse(text, source);
  if (!root.is_object() ||
      root.get_string("schema", "") != kOverloadSchema) {
    throw util::ParseError(
        "not a " + std::string(kOverloadSchema) + " document", source, 0);
  }
  OverloadPolicy p;
  p.shed_level = static_cast<int>(root.get_number("shed_level", 0.0));
  p.brownout_level =
      static_cast<int>(root.get_number("brownout_level", 0.0));
  p.retry_after_seconds = root.get_number("retry_after_seconds", 1.0);
  p.updated_unix = root.get_number("updated_unix", 0.0);
  if (root.has("quotas")) {
    for (const auto& [client, v] : root.at("quotas").members()) {
      p.quotas[client] = v.as_number();
    }
  }
  return p;
}

// --- controller ------------------------------------------------------------

OverloadController::OverloadController(OverloadOptions opts)
    : opts_(opts) {
  if (opts_.shed_window_seconds <= 0.0) opts_.shed_window_seconds = 1.0;
  if (opts_.brownout_max_level < 0) opts_.brownout_max_level = 0;
  if (opts_.brownout_max_level > 2) opts_.brownout_max_level = 2;
  if (opts_.min_window_samples < 1) opts_.min_window_samples = 1;
}

void OverloadController::prune(
    std::deque<std::pair<double, double>>& window, double now_unix,
    double span) const {
  while (!window.empty() && now_unix - window.front().first > span) {
    window.pop_front();
  }
}

void OverloadController::observe_sojourn(double wait_seconds,
                                         double now_unix) {
  if (!opts_.shed_enabled()) return;
  sojourns_.emplace_back(now_unix, std::max(0.0, wait_seconds));
  prune(sojourns_, now_unix, opts_.shed_window_seconds);
}

void OverloadController::observe_e2e(double e2e_seconds, double now_unix) {
  if (!opts_.brownout_enabled()) return;
  e2es_.emplace_back(now_unix, std::max(0.0, e2e_seconds));
  last_e2e_observed_ = now_unix;
  prune(e2es_, now_unix, opts_.shed_window_seconds);
}

double OverloadController::window_min_sojourn() const {
  double m = sojourns_.front().second;
  for (const auto& [t, v] : sojourns_) m = std::min(m, v);
  return m;
}

double OverloadController::window_p95_e2e() const {
  std::vector<double> v;
  v.reserve(e2es_.size());
  for (const auto& [t, s] : e2es_) v.push_back(s);
  const std::size_t idx =
      std::min(v.size() - 1,
               static_cast<std::size_t>(0.95 * static_cast<double>(v.size())));
  std::nth_element(v.begin(),
                   v.begin() + static_cast<std::ptrdiff_t>(idx), v.end());
  return v[idx];
}

// CoDel on the claim wait: a transient burst leaves at least one job that
// waited almost nothing, so the window *minimum* only exceeds the target
// when the queue is persistently backed up. One window of sustained
// overload escalates background -> background+batch.
bool OverloadController::tick_shed(double now_unix) {
  if (!opts_.shed_enabled()) return false;
  prune(sojourns_, now_unix, opts_.shed_window_seconds);
  int next = 0;
  if (!sojourns_.empty() &&
      window_min_sojourn() > opts_.shed_target_seconds) {
    if (overload_since_unix_ < 0.0) overload_since_unix_ = now_unix;
    next = now_unix - overload_since_unix_ >= opts_.shed_window_seconds ? 2
                                                                        : 1;
  } else {
    overload_since_unix_ = -1.0;
  }
  if (next == shed_level_) return false;
  const int prev = shed_level_;
  shed_level_ = next;
  obs::gauge("serve.shed.level").set(static_cast<double>(next));
  obs::Event ev;
  ev.kind = next > 0 ? "shed_start" : "shed_stop";
  ev.severity = next > 0 ? "warn" : "info";
  ev.detail = next >= 2   ? "shedding background + batch"
              : next == 1 ? "shedding background"
                          : "queue sojourn back under target";
  ev.num.emplace_back("level", static_cast<double>(next));
  ev.num.emplace_back("prev_level", static_cast<double>(prev));
  obs::event(ev);
  return true;
}

void OverloadController::set_brownout_level(int level, double now_unix,
                                            double p95, const char* why) {
  const int prev = brownout_level_;
  brownout_level_ = level;
  last_brownout_change_ = now_unix;
  obs::gauge("serve.brownout.level").set(static_cast<double>(level));
  obs::counter(level > prev ? "serve.brownout.degrades"
                            : "serve.brownout.recovers")
      .add();
  obs::Event ev;
  ev.kind = level > prev ? "brownout_degrade" : "brownout_recover";
  ev.severity = level > prev ? "warn" : "info";
  ev.detail = why;
  ev.num.emplace_back("level", static_cast<double>(level));
  ev.num.emplace_back("prev_level", static_cast<double>(prev));
  ev.num.emplace_back("p95_s", p95);
  ev.num.emplace_back("slo_s", opts_.slo_e2e_seconds);
  obs::event(ev);
}

bool OverloadController::tick_brownout(double now_unix) {
  if (!opts_.brownout_enabled()) return false;
  prune(e2es_, now_unix, opts_.shed_window_seconds);
  // Hysteresis: at most one level change per dwell period, in either
  // direction, so the ladder cannot flap on a noisy p95.
  if (last_brownout_change_ >= 0.0 &&
      now_unix - last_brownout_change_ < opts_.brownout_dwell_seconds) {
    return false;
  }
  if (static_cast<int>(e2es_.size()) >= opts_.min_window_samples) {
    const double p95 = window_p95_e2e();
    if (p95 > opts_.slo_e2e_seconds &&
        brownout_level_ < opts_.brownout_max_level) {
      set_brownout_level(brownout_level_ + 1, now_unix, p95,
                         "windowed p95 over SLO");
      // Judge the next step on post-transition completions only.
      e2es_.clear();
      return true;
    }
    if (p95 < opts_.brownout_recover_ratio * opts_.slo_e2e_seconds &&
        brownout_level_ > 0) {
      set_brownout_level(brownout_level_ - 1, now_unix, p95,
                         "windowed p95 under recovery threshold");
      e2es_.clear();
      return true;
    }
    return false;
  }
  // Idle recovery: a full window with no completions at all means the burst
  // is over — walk back up so a brownout never outlives the load that
  // caused it.
  if (brownout_level_ > 0 && e2es_.empty() &&
      (last_e2e_observed_ < 0.0 ||
       now_unix - last_e2e_observed_ > opts_.shed_window_seconds)) {
    set_brownout_level(brownout_level_ - 1, now_unix, 0.0, "idle window");
    return true;
  }
  return false;
}

bool OverloadController::tick(double now_unix) {
  const bool shed_changed = tick_shed(now_unix);
  const bool brownout_changed = tick_brownout(now_unix);
  return shed_changed || brownout_changed;
}

OverloadPolicy OverloadController::policy(double now_unix) const {
  OverloadPolicy p;
  p.shed_level = shed_level_;
  p.brownout_level = brownout_level_;
  p.retry_after_seconds = opts_.retry_after_seconds;
  p.updated_unix = now_unix;
  p.quotas = opts_.quotas;
  return p;
}

// --- admission-side enforcement --------------------------------------------

OverloadPolicy load_policy(const std::string& spool_root, double now_unix) {
  (void)now_unix;
  const std::string path =
      (fs::path(spool_root) / "overload.json").string();
  try {
    return OverloadPolicy::from_json(
        io::read_artifact(path, kOverloadSchema), path);
  } catch (const std::exception&) {
    // No daemon, a dead daemon, or a torn write: admission must fail open.
    return OverloadPolicy{};
  }
}

void enforce_admission(const std::string& spool_root,
                       const OverloadPolicy& policy, Priority priority,
                       const std::string& client, double now_unix) {
  if (policy.fresh(now_unix) &&
      sheds_at_level(priority, policy.shed_level)) {
    obs::counter("serve.shed.admission_rejections").add();
    throw ShedError(
        "load shed: service is shedding " +
            std::string(to_string(priority)) + "-class admissions",
        std::max(0.1, policy.retry_after_seconds));
  }
  if (client.empty()) return;
  const auto it = policy.quotas.find(client);
  if (it == policy.quotas.end() || it->second <= 0.0) return;
  const double rps = it->second;
  const double burst = std::max(1.0, rps);

  const fs::path dir = fs::path(spool_root) / "quota";
  std::error_code ec;
  fs::create_directories(dir, ec);
  const std::string path =
      (dir / (quota_filename(client) + ".json")).string();
  double tokens = burst;
  double updated = now_unix;
  try {
    const util::JsonValue bucket = util::JsonValue::parse(
        io::read_artifact(path, kQuotaSchema), path);
    tokens = bucket.get_number("tokens", burst);
    updated = bucket.get_number("updated_unix", now_unix);
  } catch (const std::exception&) {
    // First admission for this client, or a corrupt bucket: start full.
    obs::counter("serve.quota.resets").add();
  }
  if (now_unix > updated) {
    tokens = std::min(burst, tokens + (now_unix - updated) * rps);
  }
  if (tokens < 1.0) {
    obs::counter("serve.quota.rejections").add();
    char buf[96];
    std::snprintf(buf, sizeof buf, "%.3g rps", rps);
    throw ShedError("quota exceeded for client '" + client + "' (" + buf +
                        ")",
                    (1.0 - tokens) / rps);
  }
  tokens -= 1.0;
  util::JsonWriter w(2);
  w.begin_object();
  w.kv("schema", kQuotaSchema);
  w.kv("client", client);
  w.kv("tokens", tokens);
  w.kv("updated_unix", now_unix);
  w.end_object();
  try {
    io::write_artifact(path, kQuotaSchema, w.str() + "\n");
  } catch (const io::IoError&) {
    // An unwritable bucket must not block admission (the job write itself
    // will surface a real disk fault as QueueFullError); fail open.
    obs::counter("serve.quota.persist_failures").add();
  }
  obs::counter("serve.quota.admissions").add();
}

std::map<std::string, double> parse_quota_spec(const std::string& spec) {
  std::map<std::string, double> quotas;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t colon = item.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= item.size()) {
      throw std::invalid_argument("bad --quota item '" + item +
                                  "' (expected CLIENT:RPS)");
    }
    const std::string client = item.substr(0, colon);
    double rps = 0.0;
    try {
      std::size_t used = 0;
      rps = std::stod(item.substr(colon + 1), &used);
      if (used != item.size() - colon - 1) {
        throw std::invalid_argument("trailing junk");
      }
    } catch (const std::exception&) {
      throw std::invalid_argument("bad --quota rate in '" + item + "'");
    }
    if (!(rps > 0.0)) {
      throw std::invalid_argument("--quota rate must be positive in '" +
                                  item + "'");
    }
    quotas[client] = rps;
  }
  return quotas;
}

}  // namespace minergy::serve
