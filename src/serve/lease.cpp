#include "serve/lease.h"

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "io/envelope.h"
#include "obs/eventlog.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/json.h"

namespace minergy::serve {

namespace {

// Plain-POSIX whole-file read. Lease traffic deliberately bypasses the
// FaultFs-instrumented artifact layer (see header).
bool read_raw(const std::string& path, std::string* out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  out->clear();
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    out->append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return true;
}

bool write_fd_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

// Kernel start time (clock ticks since boot) of `pid`: field 22 of
// /proc/<pid>/stat, i.e. the 20th space-separated token after the ')'
// closing the comm field (comm may itself contain spaces/parens, hence the
// rfind). Returns -1 when the process does not exist or the file is
// unreadable.
std::int64_t proc_start_ticks(std::int64_t pid) {
  char path[64];
  std::snprintf(path, sizeof path, "/proc/%lld/stat",
                static_cast<long long>(pid));
  std::string stat;
  if (!read_raw(path, &stat)) return -1;
  const std::size_t close_paren = stat.rfind(')');
  if (close_paren == std::string::npos) return -1;
  std::size_t pos = close_paren + 1;
  int field = 0;  // counting from state = field 3 of the stat line
  while (pos < stat.size()) {
    while (pos < stat.size() && stat[pos] == ' ') ++pos;
    const std::size_t start = pos;
    while (pos < stat.size() && stat[pos] != ' ') ++pos;
    ++field;
    if (field == 20) {  // state is 1, ..., starttime (field 22) is 20
      return std::atoll(stat.substr(start, pos - start).c_str());
    }
  }
  return -1;
}

std::string claim_name(std::uint64_t token) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "lease.claim.%020llu",
                static_cast<unsigned long long>(token));
  return buf;
}

obs::Counter& acquired_counter() {
  static obs::Counter& c = obs::counter("serve.lease.acquired");
  return c;
}

void note_acquired(std::uint64_t token, const char* how) {
  acquired_counter().add();
  obs::gauge("serve.lease.token").set(static_cast<double>(token));
  obs::gauge("serve.lease.is_leader").set(1.0);
  obs::Event e;
  e.kind = "lease_acquired";
  e.detail = how;
  e.num.emplace_back("token", static_cast<double>(token));
  obs::event(e);
}

}  // namespace

FencedError::FencedError(std::uint64_t held, std::uint64_t current,
                         const std::string& op)
    : std::runtime_error("fenced: " + op + " under stale lease token " +
                         std::to_string(held) + " (current " +
                         std::to_string(current) + ")"),
      held_(held),
      current_(current) {}

LeaseOwner LeaseOwner::self(const std::string& host_override) {
  LeaseOwner o;
  if (!host_override.empty()) {
    o.host = host_override;
  } else {
    char buf[256] = {0};
    if (::gethostname(buf, sizeof buf - 1) == 0 && buf[0] != '\0') {
      o.host = buf;
    } else {
      o.host = "localhost";
    }
  }
  o.pid = static_cast<std::int64_t>(::getpid());
  o.pid_start_ticks = proc_start_ticks(o.pid);
  if (o.pid_start_ticks < 0) o.pid_start_ticks = 0;
  return o;
}

std::string LeaseRecord::to_json() const {
  util::JsonWriter w(2);
  w.begin_object();
  w.kv("schema", kLeaseSchema);
  w.kv("fencing_token", static_cast<std::int64_t>(fencing_token));
  w.key("owner").begin_object();
  w.kv("host", owner.host);
  w.kv("pid", owner.pid);
  w.kv("pid_start_ticks", owner.pid_start_ticks);
  w.end_object();
  w.kv("acquired_unix", acquired_unix);
  w.kv("renewed_unix", renewed_unix);
  w.kv("ttl_seconds", ttl_seconds);
  w.kv("released", released);
  w.end_object();
  return w.str() + "\n";
}

LeaseRecord LeaseRecord::from_json(const std::string& text,
                                   const std::string& source) {
  const util::JsonValue root = util::JsonValue::parse(text, source);
  if (!root.is_object() || root.get_string("schema", "") != kLeaseSchema) {
    throw util::ParseError("not a " + std::string(kLeaseSchema) + " document",
                           source, 0);
  }
  LeaseRecord r;
  r.fencing_token =
      static_cast<std::uint64_t>(root.get_number("fencing_token", 0.0));
  if (r.fencing_token == 0) {
    throw util::ParseError("lease has no fencing_token", source, 0);
  }
  if (!root.has("owner")) {
    throw util::ParseError("lease has no owner", source, 0);
  }
  const util::JsonValue& o = root.at("owner");
  r.owner.host = o.get_string("host", "");
  r.owner.pid = static_cast<std::int64_t>(o.get_number("pid", 0.0));
  r.owner.pid_start_ticks =
      static_cast<std::int64_t>(o.get_number("pid_start_ticks", 0.0));
  r.acquired_unix = root.get_number("acquired_unix", 0.0);
  r.renewed_unix = root.get_number("renewed_unix", 0.0);
  r.ttl_seconds = root.get_number("ttl_seconds", 0.0);
  r.released = root.get_bool("released", false);
  return r;
}

LeaseManager::LeaseManager(const std::string& spool_root,
                           const LeaseOptions& opts, util::Clock* clock)
    : root_(spool_root),
      lease_path_(spool_root + "/leader.lease"),
      opts_(opts),
      clock_(clock != nullptr ? clock : &util::Clock::system()),
      identity_(LeaseOwner::self(opts.host_override)) {}

std::optional<LeaseRecord> LeaseManager::read() const {
  std::string bytes;
  if (!read_raw(lease_path_, &bytes)) return std::nullopt;
  try {
    const std::string payload =
        io::unwrap_envelope(bytes, kLeaseSchema, lease_path_);
    return LeaseRecord::from_json(payload, lease_path_);
  } catch (const util::ParseError&) {
    return std::nullopt;
  }
}

bool LeaseManager::write_record(const LeaseRecord& rec, bool via_claim_file) {
  const std::string content = io::wrap_envelope(rec.to_json(), kLeaseSchema);
  std::string tmp;
  int fd = -1;
  if (via_claim_file) {
    // The CAS interlock: O_EXCL guarantees one winner per token. A claim
    // file left by a crashed stealer is garbage-collected by age so it can
    // never wedge the election forever.
    tmp = root_ + "/" + claim_name(rec.fencing_token);
    fd = ::open(tmp.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd < 0) {
      if (errno == EEXIST) {
        struct stat st;
        const double stale_age =
            std::max(2.0 * (opts_.ttl_seconds + opts_.margin_seconds), 2.0);
        if (::stat(tmp.c_str(), &st) == 0 &&
            ::time(nullptr) - st.st_mtime > static_cast<time_t>(stale_age)) {
          ::unlink(tmp.c_str());
        }
      }
      return false;
    }
  } else {
    tmp = lease_path_ + ".renew." + std::to_string(identity_.pid);
    fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
    if (fd < 0) return false;
  }
  const bool wrote = write_fd_all(fd, content);
  if (wrote) ::fsync(fd);
  ::close(fd);
  if (!wrote || ::rename(tmp.c_str(), lease_path_.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  // rename() is not a compare-and-swap: verify our bytes actually landed.
  // A concurrent writer that renamed after us owns the lease; fencing
  // covers the read-verify race window.
  std::string check;
  if (!read_raw(lease_path_, &check) || check != content) return false;
  observed_init_ = true;
  observed_bytes_ = content;
  observed_since_monotonic_ = clock_->monotonic();
  return true;
}

bool LeaseManager::claim_with_token(std::uint64_t token, bool reclaim) {
  LeaseRecord rec;
  rec.fencing_token = token;
  rec.owner = identity_;
  rec.acquired_unix = clock_->unix_monotone();
  rec.renewed_unix = rec.acquired_unix;
  rec.ttl_seconds = opts_.ttl_seconds;
  if (!write_record(rec, /*via_claim_file=*/true)) return false;
  leader_ = true;
  token_ = token;
  last_renew_monotonic_ = clock_->monotonic();
  if (reclaim) obs::counter("serve.lease.reclaims").add();
  return true;
}

void LeaseManager::note_lost(const std::string& why) {
  leader_ = false;
  obs::counter("serve.lease.lost").add();
  obs::gauge("serve.lease.is_leader").set(0.0);
  obs::Event e;
  e.kind = "lease_lost";
  e.severity = why == "released" ? "info" : "warn";
  e.detail = why;
  e.num.emplace_back("token", static_cast<double>(token_));
  obs::event(e);
}

bool LeaseManager::try_acquire() {
  if (leader_) return true;
  const double mono = clock_->monotonic();
  std::string bytes;
  const bool have = read_raw(lease_path_, &bytes);

  // Track observed staleness: any change in the bytes restarts the clock.
  if (!observed_init_ || bytes != observed_bytes_) {
    observed_init_ = true;
    observed_bytes_ = bytes;
    observed_since_monotonic_ = mono;
  }

  std::optional<LeaseRecord> rec;
  if (have) {
    try {
      rec = LeaseRecord::from_json(
          io::unwrap_envelope(bytes, kLeaseSchema, lease_path_), lease_path_);
    } catch (const util::ParseError&) {
      rec = std::nullopt;  // damaged lease: stealable after the full wait
    }
  }
  if (rec) token_ = std::max(token_, rec->fencing_token);

  // Fast path 1: no lease at all — fresh spool (or manual removal). A
  // standby defers here: it claims an empty slot only after watching it
  // stay empty for a full expiry window (a cold-starting leader wins).
  if (!have) {
    if (opts_.standby && mono - observed_since_monotonic_ <
                             opts_.ttl_seconds + opts_.margin_seconds) {
      return false;
    }
    if (claim_with_token(token_ + 1, /*reclaim=*/false)) {
      note_acquired(token_, "fresh");
      return true;
    }
    return false;
  }

  if (rec) {
    // Fast path 2: clean release — no expiry wait needed.
    if (rec->released) {
      if (claim_with_token(rec->fencing_token + 1, /*reclaim=*/false)) {
        note_acquired(token_, "released-handover");
        return true;
      }
      return false;
    }

    // Fast path 3: the record names THIS process (a demoted leader whose
    // lease was never stolen): re-adopt the same token.
    if (rec->owner == identity_) {
      LeaseRecord renewed = *rec;
      renewed.renewed_unix = clock_->unix_monotone();
      renewed.ttl_seconds = opts_.ttl_seconds;
      if (write_record(renewed, /*via_claim_file=*/false)) {
        leader_ = true;
        token_ = rec->fencing_token;
        last_renew_monotonic_ = mono;
        note_acquired(token_, "readopt");
        return true;
      }
      return false;
    }

    // Fast path 4: dead owner on this host. pid gone, or pid recycled
    // (start ticks differ) — either way the recorded owner cannot renew,
    // so a SIGKILLed leader's restart reclaims immediately.
    if (rec->owner.host == identity_.host) {
      bool dead = false;
      if (::kill(static_cast<pid_t>(rec->owner.pid), 0) != 0) {
        dead = (errno == ESRCH);
      } else {
        const std::int64_t ticks = proc_start_ticks(rec->owner.pid);
        dead = (ticks < 0) || (rec->owner.pid_start_ticks > 0 &&
                               ticks != rec->owner.pid_start_ticks);
      }
      if (dead) {
        if (claim_with_token(rec->fencing_token + 1, /*reclaim=*/true)) {
          note_acquired(token_, "reclaim-dead-owner");
          return true;
        }
        return false;
      }
    }
  }

  // Slow path: steal only after the lease bytes sat unchanged for the
  // writer's declared ttl plus our margin, all measured on OUR monotonic
  // clock — immune to wall jumps on either host.
  const double ttl =
      (rec && rec->ttl_seconds > 0.0) ? rec->ttl_seconds : opts_.ttl_seconds;
  if (mono - observed_since_monotonic_ < ttl + opts_.margin_seconds) {
    return false;
  }
  const std::uint64_t next = token_ + 1;
  if (claim_with_token(next, /*reclaim=*/false)) {
    obs::counter("serve.lease.takeovers").add();
    note_acquired(token_, rec ? "steal-expired" : "steal-damaged");
    return true;
  }
  return false;
}

bool LeaseManager::renew() {
  if (!leader_) return false;
  const double mono = clock_->monotonic();
  const double since = mono - last_renew_monotonic_;
  if (since < opts_.ttl_seconds / 3.0) return true;
  // Self-demotion: if WE could not heartbeat within our own ttl, a standby
  // may already have started (or finished) stealing. Never rewrite the
  // lease after over-sleeping — step down and re-acquire through the front
  // door instead.
  if (since > opts_.ttl_seconds) {
    note_lost("self-expired");
    return false;
  }
  const std::optional<LeaseRecord> rec = read();
  if (!rec || rec->fencing_token != token_ || rec->owner != identity_) {
    note_lost("stolen");
    return false;
  }
  LeaseRecord renewed = *rec;
  renewed.renewed_unix = clock_->unix_monotone();
  renewed.ttl_seconds = opts_.ttl_seconds;
  if (!write_record(renewed, /*via_claim_file=*/false)) {
    note_lost("clobbered");
    return false;
  }
  last_renew_monotonic_ = mono;
  obs::counter("serve.lease.renewed").add();
  return true;
}

void LeaseManager::demote(const std::string& why) {
  if (leader_) note_lost(why);
}

void LeaseManager::release() {
  if (!leader_) return;
  const std::optional<LeaseRecord> rec = read();
  if (rec && rec->fencing_token == token_ && rec->owner == identity_) {
    LeaseRecord rel = *rec;
    rel.released = true;
    rel.renewed_unix = clock_->unix_monotone();
    write_record(rel, /*via_claim_file=*/false);
  }
  note_lost("released");
}

bool LeaseManager::fence_ok(std::uint64_t token) const {
  const std::optional<LeaseRecord> rec = read();
  return rec && rec->fencing_token == token && rec->owner == identity_;
}

bool lease_token_matches(const std::string& lease_path, std::uint64_t token) {
  std::string bytes;
  if (!read_raw(lease_path, &bytes)) return true;  // no lease: fail open
  try {
    const LeaseRecord rec = LeaseRecord::from_json(
        io::unwrap_envelope(bytes, kLeaseSchema, lease_path), lease_path);
    return rec.fencing_token == token;
  } catch (const util::ParseError&) {
    return true;  // damaged lease: the scrubber's problem, not the worker's
  }
}

}  // namespace minergy::serve
