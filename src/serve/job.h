// Durable optimization jobs for the spool-directory queue (serve/queue.h).
//
// A Job is one optimization request — circuit, optimizer, seed, knobs, an
// optional wall-clock deadline — serialized as a standalone JSON document
// (schema minergy.job.v1) that lives in exactly one queue-state directory
// at a time. The attempts journal travels inside the job file, so a claim,
// a retry or a daemon crash never loses the execution history: whichever
// process picks the file up next can see every attempt that was ever
// started, what it was seeded with, and how it ended.
//
// Terminal records (done/, failed/, quarantined/) are the same document
// decorated with either the worker's result envelope (schema
// minergy.job_result.v1, embedded verbatim) or a typed failure
// {type, detail}.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/sched.h"
#include "util/json.h"

namespace minergy::serve {

inline constexpr const char kJobSchema[] = "minergy.job.v1";
inline constexpr const char kJobResultSchema[] = "minergy.job_result.v1";

// One execution attempt, journaled at spawn time and completed at reap time.
struct JobAttempt {
  std::uint64_t seed = 0;
  // "running" while in flight; terminal outcomes: "ok" (result envelope
  // written), "crash", "timeout", "error" (nonzero worker exit without an
  // envelope), "interrupted" (daemon drain / daemon death; does not count
  // against the retry budget).
  std::string outcome = "running";
  int exit_code = 0;
  double wall_seconds = 0.0;
  double backoff_seconds = 0.0;  // slept before this attempt became eligible
};

struct Job {
  std::string id;  // unique, filename-safe; assigned at submit
  std::string circuit = "c17";
  std::string optimizer = "robust";  // robust | joint | baseline | anneal
  std::uint64_t seed = 1;
  double clock_frequency = 300e6;
  double activity = 0.3;
  // Wall-clock deadline for one attempt, propagated into the optimizer's
  // util::WatchdogBudget: a late job returns its best-seen result flagged
  // truncated (and still certified) instead of blowing the deadline.
  // 0 = no deadline.
  double deadline_seconds = 0.0;
  std::int64_t max_evaluations = 0;  // 0 = unlimited
  int anneal_moves = 0;              // 0 = AnnealingOptions default
  // Scheduling class (serve/sched.h): claim order is priority band first,
  // EDF within a band; shedding drops background before batch and never
  // touches interactive. Journaled as a string in minergy.job.v1.
  Priority priority = Priority::kBatch;
  // Submitting client, for per-client token-bucket quotas (--quota). Empty
  // = unattributed (never quota-limited).
  std::string client;
  // Absolute completion deadline: a job still queued past this instant is
  // expired to failed/ with a `deadline_expired` verdict instead of wasting
  // a worker. Distinct from deadline_seconds (the per-attempt compute
  // budget). 0 = none.
  double complete_by_unix = 0.0;
  // Test hook (chaos harness): "crash-pre-run" | "crash-pre-result" | "hang"
  // make the worker die or wedge at a deterministic point.
  std::string inject;

  // The leader-lease fencing token (serve/lease.h) under which this job was
  // claimed, journaled into the running record and re-checked at every
  // mutating queue operation: a paused-and-resumed zombie leader whose
  // lease was stolen carries a stale token and its finalizes are rejected.
  // 0 = claimed outside any lease (in-process tests, legacy spools).
  std::uint64_t fence_token = 0;

  double submitted_unix = 0.0;
  double not_before_unix = 0.0;  // backoff: ineligible for claim before this
  // Backoff that produced not_before_unix; copied into the next attempt's
  // journal entry at spawn time, then cleared.
  double next_backoff_seconds = 0.0;

  std::vector<JobAttempt> attempts;

  // Terminal decoration (failed/ and quarantined/ records).
  std::string failure_type;
  std::string failure_detail;

  // Attempts that ended in crash/timeout/error — the retry budget.
  int failed_attempts() const;
  // Attempts that ended "interrupted" (daemon drain or death).
  int interruptions() const;
  // Attempts that were ever started (journal length).
  int started_attempts() const { return static_cast<int>(attempts.size()); }

  // Serializes the job document; `result_json` (when non-empty) must be a
  // complete JSON value and is embedded under "result".
  std::string to_json(const std::string& result_json = std::string()) const;
  // Parses a job document; throws util::ParseError on a missing schema,
  // wrong schema name, or structural damage.
  static Job from_json(const std::string& text, const std::string& source);
};

// Filename-safe unique id: zero-padded microsecond timestamp + pid, so ids
// sort lexicographically in submission order and two submitters cannot
// collide.
std::string make_job_id();

// The deterministic per-(circuit, attempt) seed schedule: attempt 0 runs the
// submitted seed, retry k runs hash_mix(seed ^ fnv1a(circuit) ^ k) so a
// retry is a genuinely different stochastic run (same scheme as
// minergy_batch).
std::uint64_t attempt_seed(const Job& job, int failed_attempt_index);

// Unix-epoch seconds for backoff eligibility, shed windows and lease
// timestamps. Backoff must survive daemon restarts, so the LEVEL is wall
// clock — but the value is routed through util::Clock::system()'s
// unix_monotone() clamp, so a backward wall-clock jump can never produce a
// negative backoff or re-open a shed window mid-run.
double unix_now();

}  // namespace minergy::serve
