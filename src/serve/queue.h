// Crash-safe spool-directory job queue.
//
// One directory tree holds the entire queue state; the directory a job file
// sits in IS its state, and every transition is a single atomic rename on
// the same filesystem, so a SIGKILL at any instruction leaves the queue in
// a consistent, recoverable configuration:
//
//   <root>/pending/<id>.json      submitted, waiting (FIFO by id)
//   <root>/running/<id>.json      claimed by the daemon (attempt journaled)
//   <root>/done/<id>.json         terminal: certified result embedded
//   <root>/failed/<id>.json       terminal: typed failure {type, detail}
//   <root>/quarantined/<id>.json  terminal: crash-looped / breaker-tripped
//   <root>/results/<id>.json      worker result envelope (atomic drop)
//   <root>/checkpoints/<id>.json  optimizer snapshot (PR-3 format)
//   <root>/health.json            atomically refreshed liveness/readiness
//
// Exactly-once execution rests on two rules: (1) a claim is the rename
// pending -> running, which exactly one claimant can win; (2) a finished
// attempt drops its result envelope atomically into results/ BEFORE the job
// leaves running/, so recovery after a daemon death can always distinguish
// "work finished, bookkeeping lost" (finalize the existing envelope, never
// re-execute) from "work lost" (requeue). done/ is first-write-wins: a
// duplicate finalization is counted and dropped, never overwrites.
#pragma once

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/job.h"
#include "serve/lease.h"
#include "serve/overload.h"
#include "serve/sched.h"

namespace minergy::serve {

// Admission control: submitting into a full pending/ directory is a typed,
// recoverable rejection carrying a retry-after hint sized to the backlog.
class QueueFullError : public std::runtime_error {
 public:
  QueueFullError(std::size_t depth, std::size_t limit,
                 double retry_after_seconds);
  // Admission rejected for a reason other than depth — e.g. ENOSPC while
  // writing the job file (the disk itself is the full queue).
  QueueFullError(const std::string& reason, double retry_after_seconds);

  std::size_t depth() const { return depth_; }
  std::size_t limit() const { return limit_; }
  double retry_after_seconds() const { return retry_after_; }

 private:
  std::size_t depth_;
  std::size_t limit_;
  double retry_after_;
};

struct SpoolOptions {
  // Bounded queue depth; submit() past this throws QueueFullError.
  std::size_t max_pending = 64;
  // Rough per-job service time used to size the retry-after hint.
  double expected_job_seconds = 5.0;
  // Latency SLO on end-to-end job time (submit -> terminal state), in
  // seconds; 0 disables. A finalization past the objective increments
  // serve.slo.violations and logs an `slo_violation` event.
  double slo_e2e_seconds = 0.0;
};

struct QueueCounts {
  std::size_t pending = 0;
  std::size_t running = 0;
  std::size_t done = 0;
  std::size_t failed = 0;
  std::size_t quarantined = 0;
  std::size_t terminal() const { return done + failed + quarantined; }
};

// Daemon liveness snapshot, atomically replaced so an external monitor
// never reads a torn document (schema minergy.health.v1).
struct HealthInfo {
  std::string state = "starting";  // starting | serving | draining | stopped
                                   // | degraded
  // "ok" | "degraded": the load-balancer-facing readiness verdict. The
  // daemon reports "degraded" (and /health turns 503 + Retry-After) while
  // ENOSPC-paused or browned out.
  std::string status = "ok";
  std::string status_reason;
  int workers_active = 0;
  int brownout_level = 0;
  int shed_level = 0;
  std::vector<std::string> breaker_open;
  // "leader" | "standby": which role this daemon is serving in the HA
  // plane (serve/lease.h). Single-daemon spools are always the leader.
  std::string role = "leader";
  // The leader's current fencing token (0 for a standby / no lease).
  std::uint64_t lease_token = 0;
};

class SpoolQueue {
 public:
  // Creates the state directories if missing.
  explicit SpoolQueue(std::string root, SpoolOptions opts = {});

  const std::string& root() const { return root_; }
  const SpoolOptions& options() const { return opts_; }

  // Points claim(), note_terminal() and the shed path at the daemon's
  // overload controller; nullptr (the default) disables shedding and the
  // feedback signals. The controller must outlive the queue's use of it.
  void set_overload_controller(OverloadController* controller) {
    overload_ = controller;
  }

  // Points the queue at the daemon's leader lease. When set, every claim
  // journals the current fencing token into the job, and every mutating
  // operation (update_running, finalize_*, requeue) re-validates the job's
  // token against the on-disk lease first, throwing FencedError when the
  // lease moved on — the backstop that stops a paused-and-resumed zombie
  // leader from finalizing stale work. nullptr (the default) disables
  // fencing: in-process tests and single-daemon spools are unaffected.
  void set_lease(LeaseManager* lease) { lease_ = lease; }

  // Admission: assigns an id (when empty) and a submit timestamp, enforces
  // the published overload policy (<root>/overload.json: shedding + client
  // quotas -> ShedError) and the depth bound (-> QueueFullError), then
  // writes the job into pending/ atomically.
  std::string submit(Job job);

  // Claims the best eligible pending job (not_before_unix <= now_unix) by
  // renaming it into running/: priority band first, earliest-deadline-first
  // within a band (serve/sched.h). Returns nullopt when nothing is
  // eligible. Along the way this pass also (1) expires jobs whose
  // complete_by_unix has passed to failed/ with a `deadline_expired`
  // verdict, (2) sheds queued shed-class jobs to failed/ with a typed
  // "shed" failure while the overload controller says so — both via the
  // same claim-rename-then-finalize protocol, so a SIGKILL mid-decision is
  // recovered exactly-once like any other death. A pending file that fails
  // to parse is moved aside to quarantined/ as-is
  // (serve.queue.corrupt_jobs) rather than wedging the queue head.
  std::optional<Job> claim(double now_unix);

  // Rewrites the running/ record (attempt journal updates) atomically.
  void update_running(const Job& job);

  // Terminal transitions; `job` must currently be in running/.
  // finalize_done embeds the result envelope; if done/<id> already exists
  // the call is a counted no-op that just clears the running entry
  // (serve.queue.duplicate_results) — first write wins.
  void finalize_done(const Job& job, const std::string& result_json);
  void finalize_failed(Job job, const std::string& type,
                       const std::string& detail,
                       const std::string& result_json = std::string());
  void finalize_quarantined(Job job, const std::string& reason);

  // running -> pending: appends `outcome` to the last (in-flight) attempt
  // and makes the job claimable again at not_before_unix. Keeps or deletes
  // the checkpoint file: kept for interruptions (bit-exact resume), deleted
  // for crash retries (fresh perturbed-seed run).
  void requeue(Job job, const std::string& outcome, double not_before_unix,
               bool keep_checkpoint);

  // All jobs currently in running/ (daemon-restart recovery input).
  std::vector<Job> running_jobs() const;

  // Removes results/ and checkpoints/ strays whose job is no longer in
  // pending/ or running/ (a crash can land between a terminal rename and
  // the scratch-file cleanup).
  void collect_garbage();

  QueueCounts counts() const;
  std::vector<std::string> ids_in(const std::string& state) const;

  // Scratch-file locations for one job.
  std::string result_path(const std::string& id) const;
  std::string checkpoint_path(const std::string& id) const;
  std::string job_path(const std::string& state, const std::string& id) const;

  // Atomically refreshes <root>/health.json.
  void write_health(const HealthInfo& info) const;

  // The minergy.health.v1 document as a string — write_health persists it,
  // and the daemon publishes the same bytes to the /health exposition
  // endpoint so scrapes are served from memory, not the file.
  std::string health_json(const HealthInfo& info) const;

 private:
  std::string dir(const std::string& state) const;
  // Throws FencedError (and logs a fenced_reject event) when `job` was
  // claimed under a token the on-disk lease no longer carries.
  void check_fence(const Job& job, const char* op) const;
  // Latency bookkeeping at a terminal transition: records the end-to-end
  // histogram, feeds the overload controller, checks the SLO, and logs the
  // job_* event.
  void note_terminal(const Job& job, const char* kind,
                     const std::string& severity);
  void write_terminal(Job job, const std::string& state,
                      const std::string& result_json);
  void remove_scratch(const std::string& id, bool keep_checkpoint) const;
  // Claim-rename pending -> running, then finalize to failed/ with the
  // given verdict (the expire/shed transition). False when the rename was
  // lost to another claimant.
  bool drop_pending(const Job& job, const char* kill_pt,
                    const std::string& type, const std::string& detail);

  std::string root_;
  SpoolOptions opts_;
  OverloadController* overload_ = nullptr;
  LeaseManager* lease_ = nullptr;
};

}  // namespace minergy::serve
