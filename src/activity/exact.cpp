#include "activity/exact.h"

#include <algorithm>

#include "bdd/bdd.h"
#include "util/check.h"

namespace minergy::activity {

ActivityResult estimate_activity_exact(const netlist::Netlist& nl,
                                       const ActivityProfile& profile,
                                       const ExactOptions& options) {
  MINERGY_CHECK(nl.finalized());
  profile.validate();

  // Variables = combinational sources (PIs and DFF Q-pins), in id order.
  const auto& sources = nl.sources();
  const int num_vars = static_cast<int>(sources.size());
  std::vector<int> var_of(nl.size(), -1);
  for (int v = 0; v < num_vars; ++v) {
    var_of[sources[static_cast<std::size_t>(v)]] = v;
  }

  bdd::BddManager manager(num_vars, options.node_limit);

  // Build the global function of every net once (structure is static; only
  // the source statistics change across DFF iterations).
  std::vector<bdd::NodeRef> fn(nl.size(), manager.zero());
  for (int v = 0; v < num_vars; ++v) {
    fn[sources[static_cast<std::size_t>(v)]] = manager.var(v);
  }
  for (netlist::GateId id : nl.combinational()) {
    const netlist::Gate& g = nl.gate(id);
    using netlist::GateType;
    bdd::NodeRef acc;
    switch (g.type) {
      case GateType::kBuf:
      case GateType::kNot:
        acc = fn[g.fanins[0]];
        if (g.type == GateType::kNot) acc = manager.not_of(acc);
        break;
      case GateType::kAnd:
      case GateType::kNand: {
        acc = manager.one();
        for (netlist::GateId f : g.fanins) acc = manager.and_of(acc, fn[f]);
        if (g.type == GateType::kNand) acc = manager.not_of(acc);
        break;
      }
      case GateType::kOr:
      case GateType::kNor: {
        acc = manager.zero();
        for (netlist::GateId f : g.fanins) acc = manager.or_of(acc, fn[f]);
        if (g.type == GateType::kNor) acc = manager.not_of(acc);
        break;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        acc = manager.zero();
        for (netlist::GateId f : g.fanins) acc = manager.xor_of(acc, fn[f]);
        if (g.type == GateType::kXnor) acc = manager.not_of(acc);
        break;
      }
      default:
        MINERGY_CHECK_MSG(false, "unexpected gate type");
        acc = manager.zero();
    }
    fn[id] = acc;
  }

  // Precompute each net's Boolean differences wrt its support variables.
  struct Sensitivity {
    int var;
    bdd::NodeRef diff;
  };
  std::vector<std::vector<Sensitivity>> sens(nl.size());
  for (netlist::GateId id : nl.combinational()) {
    for (int v = 0; v < num_vars; ++v) {
      if (!manager.depends_on(fn[id], v)) continue;
      sens[id].push_back({v, manager.boolean_difference(fn[id], v)});
    }
  }

  // Source statistics (possibly iterated for DFF feedback).
  std::vector<double> var_prob(static_cast<std::size_t>(num_vars), 0.5);
  std::vector<double> var_density(static_cast<std::size_t>(num_vars),
                                  profile.input_density);
  for (int v = 0; v < num_vars; ++v) {
    const netlist::Gate& g = nl.gate(sources[static_cast<std::size_t>(v)]);
    if (g.type != netlist::GateType::kInput) continue;
    auto pit = profile.probability_overrides.find(g.name);
    auto dit = profile.density_overrides.find(g.name);
    var_prob[static_cast<std::size_t>(v)] =
        pit != profile.probability_overrides.end()
            ? pit->second
            : profile.input_probability;
    var_density[static_cast<std::size_t>(v)] =
        dit != profile.density_overrides.end() ? dit->second
                                               : profile.input_density;
  }

  ActivityResult r;
  r.probability.assign(nl.size(), 0.5);
  r.density.assign(nl.size(), 0.0);

  const int iterations = nl.dffs().empty() ? 1 : options.dff_iterations;
  for (int iter = 0; iter < iterations; ++iter) {
    for (int v = 0; v < num_vars; ++v) {
      const netlist::GateId src = sources[static_cast<std::size_t>(v)];
      r.probability[src] = var_prob[static_cast<std::size_t>(v)];
      r.density[src] = var_density[static_cast<std::size_t>(v)];
    }
    for (netlist::GateId id : nl.combinational()) {
      r.probability[id] =
          std::clamp(manager.probability(fn[id], var_prob), 0.0, 1.0);
      double d = 0.0;
      for (const auto& s : sens[id]) {
        d += manager.probability(s.diff, var_prob) *
             var_density[static_cast<std::size_t>(s.var)];
      }
      r.density[id] = std::max(d, 0.0);
    }
    // Damped latch of D statistics into Q variables.
    bool any_dff = false;
    for (int v = 0; v < num_vars; ++v) {
      const netlist::GateId src = sources[static_cast<std::size_t>(v)];
      const netlist::Gate& g = nl.gate(src);
      if (g.type != netlist::GateType::kDff || g.fanins.empty()) continue;
      any_dff = true;
      const netlist::GateId d = g.fanins[0];
      const double a = options.damping;
      var_prob[static_cast<std::size_t>(v)] = std::clamp(
          a * r.probability[d] +
              (1.0 - a) * var_prob[static_cast<std::size_t>(v)],
          0.0, 1.0);
      var_density[static_cast<std::size_t>(v)] =
          a * std::min(r.density[d], 1.0) +
          (1.0 - a) * var_density[static_cast<std::size_t>(v)];
    }
    if (!any_dff) break;
  }
  return r;
}

}  // namespace minergy::activity
