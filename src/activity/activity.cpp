#include "activity/activity.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/check.h"

namespace minergy::activity {

void ActivityProfile::validate() const {
  auto require = [](bool ok, const char* what) {
    if (!ok)
      throw std::invalid_argument(std::string("ActivityProfile: ") + what);
  };
  require(input_probability >= 0.0 && input_probability <= 1.0,
          "probability must be in [0, 1]");
  require(input_density >= 0.0, "density must be >= 0");
  // With P(x) = p, a transition happens with probability <= 2*min(p, 1-p)
  // per cycle in a stationary process; we only require the looser bound.
  require(input_density <= 1.0, "per-cycle input density must be <= 1");
  require(dff_iterations >= 1, "need at least one DFF iteration");
  require(damping > 0.0 && damping <= 1.0, "damping must be in (0, 1]");
  for (const auto& [name, p] : probability_overrides) {
    require(p >= 0.0 && p <= 1.0, "override probability out of range");
  }
  for (const auto& [name, d] : density_overrides) {
    require(d >= 0.0 && d <= 1.0, "override density out of range");
  }
}

double gate_probability(netlist::GateType type,
                        const std::vector<double>& p) {
  using netlist::GateType;
  switch (type) {
    case GateType::kInput:
    case GateType::kDff:
    case GateType::kBuf:
      MINERGY_CHECK(p.size() == 1);
      return p[0];
    case GateType::kNot:
      MINERGY_CHECK(p.size() == 1);
      return 1.0 - p[0];
    case GateType::kAnd:
    case GateType::kNand: {
      double prod = 1.0;
      for (double v : p) prod *= v;
      return type == GateType::kAnd ? prod : 1.0 - prod;
    }
    case GateType::kOr:
    case GateType::kNor: {
      double prod = 1.0;
      for (double v : p) prod *= 1.0 - v;
      return type == GateType::kOr ? 1.0 - prod : prod;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      // Fold pairwise: P(a xor b) = a(1-b) + b(1-a).
      double acc = p.at(0);
      for (std::size_t i = 1; i < p.size(); ++i) {
        acc = acc * (1.0 - p[i]) + p[i] * (1.0 - acc);
      }
      return type == GateType::kXor ? acc : 1.0 - acc;
    }
  }
  MINERGY_CHECK_MSG(false, "unreachable gate type");
  return 0.0;
}

double gate_density(netlist::GateType type, const std::vector<double>& p,
                    const std::vector<double>& d) {
  using netlist::GateType;
  MINERGY_CHECK(p.size() == d.size());
  switch (type) {
    case GateType::kInput:
    case GateType::kDff:
    case GateType::kBuf:
    case GateType::kNot:
      MINERGY_CHECK(d.size() == 1);
      return d[0];  // |dy/dx| = 1
    case GateType::kAnd:
    case GateType::kNand: {
      // P(dy/dx_i) = prod_{j != i} P(x_j).
      double sum = 0.0;
      for (std::size_t i = 0; i < d.size(); ++i) {
        double sens = 1.0;
        for (std::size_t j = 0; j < p.size(); ++j) {
          if (j != i) sens *= p[j];
        }
        sum += sens * d[i];
      }
      return sum;
    }
    case GateType::kOr:
    case GateType::kNor: {
      // P(dy/dx_i) = prod_{j != i} (1 - P(x_j)).
      double sum = 0.0;
      for (std::size_t i = 0; i < d.size(); ++i) {
        double sens = 1.0;
        for (std::size_t j = 0; j < p.size(); ++j) {
          if (j != i) sens *= 1.0 - p[j];
        }
        sum += sens * d[i];
      }
      return sum;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      // dy/dx_i == 1 for XOR: every input transition propagates.
      double sum = 0.0;
      for (double v : d) sum += v;
      return sum;
    }
  }
  MINERGY_CHECK_MSG(false, "unreachable gate type");
  return 0.0;
}

ActivityResult estimate_activity(const netlist::Netlist& nl,
                                 const ActivityProfile& profile) {
  MINERGY_CHECK(nl.finalized());
  profile.validate();

  ActivityResult r;
  r.probability.assign(nl.size(), 0.5);
  r.density.assign(nl.size(), 0.0);

  // Primary inputs.
  for (netlist::GateId id : nl.primary_inputs()) {
    const std::string& name = nl.gate(id).name;
    auto pit = profile.probability_overrides.find(name);
    auto dit = profile.density_overrides.find(name);
    r.probability[id] = pit != profile.probability_overrides.end()
                            ? pit->second
                            : profile.input_probability;
    r.density[id] = dit != profile.density_overrides.end()
                        ? dit->second
                        : profile.input_density;
  }
  // DFF Q-pins start at the PI default and converge by iteration.
  for (netlist::GateId id : nl.dffs()) {
    r.probability[id] = 0.5;
    r.density[id] = profile.input_density;
  }

  const int iterations = nl.dffs().empty() ? 1 : profile.dff_iterations;
  std::vector<double> fp, fd;
  for (int iter = 0; iter < iterations; ++iter) {
    for (netlist::GateId id : nl.combinational()) {
      const netlist::Gate& g = nl.gate(id);
      fp.clear();
      fd.clear();
      for (netlist::GateId f : g.fanins) {
        fp.push_back(r.probability[f]);
        fd.push_back(r.density[f]);
      }
      r.probability[id] = std::clamp(gate_probability(g.type, fp), 0.0, 1.0);
      r.density[id] = std::max(gate_density(g.type, fp, fd), 0.0);
    }
    // Latch D-pin statistics into Q with damping. A DFF filters multiple
    // transitions per cycle down to at most one, so Q's density is capped
    // by the probability that D's settled value toggles; we use
    // min(D(d), 1) as that first-order estimate.
    for (netlist::GateId id : nl.dffs()) {
      const netlist::Gate& g = nl.gate(id);
      if (g.fanins.empty()) continue;
      const netlist::GateId d = g.fanins[0];
      const double a = profile.damping;
      r.probability[id] =
          std::clamp(a * r.probability[d] + (1.0 - a) * r.probability[id],
                     0.0, 1.0);
      r.density[id] = a * std::min(r.density[d], 1.0) +
                      (1.0 - a) * r.density[id];
    }
  }
  return r;
}

}  // namespace minergy::activity
