// Signal-probability and transition-density estimation (Najm, DAC '91).
//
// Section 4.1 of the paper: given signal probabilities and transition
// densities at the primary inputs, internal-node densities are propagated
// with the Boolean-difference rule
//
//   D(y) = sum_i P(dy/dx_i) * D(x_i)
//
// assuming spatial input independence (the paper's stated first-order
// approximation). The density D(y) is the activity factor a_i used in the
// dynamic-energy model. Sequential feedback through DFFs is resolved by
// damped fixed-point iteration.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.h"

namespace minergy::activity {

struct ActivityProfile {
  // Defaults applied to every primary input (the paper's tables assume
  // uniform input activities).
  double input_probability = 0.5;
  double input_density = 0.1;  // transitions per clock cycle

  // Optional per-input overrides, keyed by PI name.
  std::unordered_map<std::string, double> probability_overrides;
  std::unordered_map<std::string, double> density_overrides;

  // Fixed-point iterations for DFF feedback loops.
  int dff_iterations = 12;
  double damping = 0.5;  // new = damping*computed + (1-damping)*old

  void validate() const;  // throws std::invalid_argument
};

struct ActivityResult {
  std::vector<double> probability;  // indexed by gate id, in [0, 1]
  std::vector<double> density;      // transitions/cycle, >= 0
};

// Computes probabilities and densities for every net. The netlist must be
// finalized.
ActivityResult estimate_activity(const netlist::Netlist& nl,
                                 const ActivityProfile& profile);

// --- Building blocks (exposed for tests) -----------------------------------

// Output signal probability of one gate given fanin probabilities.
double gate_probability(netlist::GateType type,
                        const std::vector<double>& fanin_probs);

// Output transition density via the Boolean-difference rule.
double gate_density(netlist::GateType type,
                    const std::vector<double>& fanin_probs,
                    const std::vector<double>& fanin_densities);

}  // namespace minergy::activity
