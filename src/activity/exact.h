// Exact activity estimation via BDDs.
//
// The first-order estimator (activity.h) assumes spatial independence of
// gate inputs, which reconvergent fanout violates. This estimator builds a
// global ROBDD for every net in terms of the combinational sources and
// computes
//   * exact signal probabilities P(y), and
//   * exact Boolean-difference probabilities P(dy/dx_i) — so the Najm
//     density sum D(y) = sum_i P(dy/dx_i) * D(x_i) is evaluated without
//     the independence approximation (the Stamoulis/Hajj-class correction
//     the paper cites as "more complex transition density computation").
//
// Sequential feedback uses the same damped fixed-point iteration as the
// first-order estimator. Cost is exponential in the worst case: a node
// limit converts blow-up into bdd::BddOverflow, letting callers fall back.
#pragma once

#include "activity/activity.h"
#include "netlist/netlist.h"

namespace minergy::activity {

struct ExactOptions {
  std::size_t node_limit = 1u << 20;
  int dff_iterations = 8;
  double damping = 0.5;
};

// Throws bdd::BddOverflow if any net's BDD exceeds the node limit.
ActivityResult estimate_activity_exact(const netlist::Netlist& nl,
                                       const ActivityProfile& profile,
                                       const ExactOptions& options = {});

}  // namespace minergy::activity
