#include "opt/joint_optimizer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "opt/checkpoint.h"
#include "opt/lagrangian_sizer.h"
#include "opt/sizer.h"
#include "opt/tilos_sizer.h"
#include "util/check.h"
#include "util/guard.h"
#include "util/search.h"

namespace minergy::opt {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void mark_accepted(obs::RunReport* report, int traj) {
  if (report == nullptr || traj < 0) return;
  report->trajectory[static_cast<std::size_t>(traj)].accepted = true;
}

}  // namespace

JointOptimizer::JointOptimizer(const CircuitEvaluator& eval,
                               OptimizerOptions options)
    : eval_(eval), opts_(options) {
  MINERGY_CHECK(opts_.steps >= 1);
  MINERGY_CHECK(opts_.sizing_steps >= 1);
  MINERGY_CHECK(opts_.num_thresholds >= 1);
  MINERGY_CHECK(opts_.skew_b > 0.0 && opts_.skew_b <= 1.0);
}

JointOptimizer::Probe JointOptimizer::probe(
    double vdd, const std::vector<double>& vts,
    const timing::BudgetResult& budgets, const ProbeCtx& ctx) const {
  static obs::Counter& c_probes = obs::counter("opt.joint.probes");
  static obs::Histogram& h_micros = obs::histogram("opt.joint.probe_micros");
  c_probes.add();
  const obs::ScopedTimer timer(h_micros);

  const netlist::Netlist& nl = eval_.netlist();
  Probe p;
  p.state.vdd = vdd;
  p.state.vts = vts;

  // Width search uses the delay-corner thresholds (worst-case timing).
  std::vector<double> vts_corner(vts.size());
  for (std::size_t i = 0; i < vts.size(); ++i) {
    vts_corner[i] = eval_.delay_vts(vts[i]);
  }
  const GateSizer sizer(eval_.delay_calculator());
  SizingResult sized =
      sizer.size(budgets.t_max, vdd, vts_corner, opts_.sizing_steps);
  p.state.widths = std::move(sized.widths);
  MINERGY_CHECK(p.state.widths.size() == nl.size());

  // Accept on the real constraint: full STA against the skewed cycle time.
  const double limit = opts_.skew_b * eval_.cycle_time();
  timing::TimingReport report = eval_.sta(p.state, limit);
  p.critical_delay = report.critical_delay;
  p.feasible = p.critical_delay <= limit * (1.0 + 1e-9);

  if (p.feasible) {
    // Post-processing width recovery: shrink oversized gates back into the
    // circuit's real slack (each pass verified by a fresh STA; a pass that
    // breaks timing is reverted and iteration stops).
    for (int pass = 0; pass < opts_.recovery_passes; ++pass) {
      SizingResult recovered = sizer.recover(p.state.widths, vdd, vts_corner,
                                             limit, report,
                                             opts_.sizing_steps);
      CircuitState candidate = p.state;
      candidate.widths = std::move(recovered.widths);
      const timing::TimingReport check = eval_.sta(candidate, limit);
      if (check.critical_delay > limit * (1.0 + 1e-9)) break;
      p.state = std::move(candidate);
      p.critical_delay = check.critical_delay;
      report = check;
    }
  }
  p.energy = eval_.energy(p.state);
  ctx.dog->note_evaluation();

  if (ctx.report != nullptr) {
    obs::TrajectoryPoint tp;
    tp.phase = ctx.phase;
    tp.vdd = vdd;
    tp.vts = vts.empty() ? 0.0 : vts[0];
    tp.energy = p.energy.total();
    tp.critical_delay = p.critical_delay;
    tp.feasible = p.feasible;
    p.traj = static_cast<int>(ctx.report->trajectory.size());
    ctx.report->add_point(std::move(tp));
  }
  return p;
}

JointOptimizer::Probe JointOptimizer::probe_uniform(
    double vdd, double vts, const timing::BudgetResult& budgets,
    const ProbeCtx& ctx) const {
  return probe(vdd, std::vector<double>(eval_.netlist().size(), vts), budgets,
               ctx);
}

void JointOptimizer::refine(const timing::BudgetResult& budgets, Probe* best,
                            ProbeCtx ctx) const {
  if (!best->feasible || ctx.dog->expired()) return;
  ctx.phase = "refine";
  const tech::Technology& tech = eval_.technology();
  const double center_vdd = best->state.vdd;

  // Penalized energy at (vdd, vts): infeasible points are pushed uphill in
  // proportion to their violation so the golden-section stays oriented.
  // Once the watchdog expires, further probes are skipped and a flat cost
  // lets the bracketing searches run out without new evaluations.
  auto penalized = [&](double vdd, double vts, Probe* out) {
    if (ctx.dog->expired()) {
      if (out) *out = *best;
      return best->energy.total() * 4.0;
    }
    Probe p = probe_uniform(vdd, vts, budgets, ctx);
    double cost = p.energy.total();
    if (!p.feasible) {
      const double limit = opts_.skew_b * eval_.cycle_time();
      cost = best->energy.total() * (2.0 + 10.0 * (p.critical_delay / limit));
    }
    if (p.feasible && p.energy.total() < best->energy.total()) {
      mark_accepted(ctx.report, p.traj);
      *best = p;
    }
    if (out) *out = p;
    return cost;
  };

  auto energy_at_vdd = [&](double vdd) {
    return util::golden_section_min(
        tech.vts_min, tech.vts_max, opts_.refine_steps,
        [&](double vts) { return penalized(vdd, vts, nullptr); });
  };
  // 1-D polish on Vdd in a +/-30% window around the discrete optimum; the
  // best probe seen anywhere is captured by `penalized`.
  double lo = std::max(tech.vdd_min, 0.7 * center_vdd);
  double hi = std::min(tech.vdd_max, 1.3 * center_vdd);
  if (!(lo <= hi)) {
    // The window lies entirely outside the technology's legal Vdd range
    // (possible when resuming a checkpoint taken under a different
    // technology): an inverted interval would trip golden_section_min's
    // precondition check. Collapse to the legal point nearest the center so
    // the polish degenerates to re-probing it.
    lo = hi = std::clamp(center_vdd, tech.vdd_min, tech.vdd_max);
  }
  util::golden_section_min(lo, hi, opts_.refine_steps, [&](double vdd) {
    double best_vts = energy_at_vdd(vdd);
    Probe p;
    return penalized(vdd, best_vts, &p);
  });
}

void JointOptimizer::assign_threshold_groups(
    const timing::BudgetResult& budgets, Probe* best,
    OptimizationResult* result, ProbeCtx ctx) const {
  const netlist::Netlist& nl = eval_.netlist();
  const tech::Technology& tech = eval_.technology();
  const int nv = opts_.num_thresholds;
  ctx.phase = "multi-vt";
  result->vts_groups = {best->state.vts.empty() ? 0.0 : best->state.vts[0]};
  if (nv <= 1 || !best->feasible || ctx.dog->expired()) return;

  // Group gates by timing slack at the current optimum: group 0 (most
  // critical) keeps the base threshold; groups 1..nv-1 may be raised.
  const timing::TimingReport report =
      eval_.sta(best->state, opts_.skew_b * eval_.cycle_time());
  std::vector<netlist::GateId> order(nl.combinational());
  std::sort(order.begin(), order.end(),
            [&](netlist::GateId a, netlist::GateId b) {
              return report.slack[a] < report.slack[b];
            });
  std::vector<int> group(nl.size(), 0);
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    group[order[rank]] = static_cast<int>(
        (rank * static_cast<std::size_t>(nv)) / std::max<std::size_t>(
            order.size(), 1));
  }

  const double base_vts = best->state.vts[order.empty() ? 0 : order[0]];
  std::vector<double> group_vts(static_cast<std::size_t>(nv), base_vts);

  // Raise each group's threshold from the slackest group inward: binary
  // search the highest value that stays feasible and does not increase
  // energy.
  for (int gi = nv - 1; gi >= 1 && !ctx.dog->expired(); --gi) {
    double lo = base_vts, hi = tech.vts_max;
    {
      // Probe the upper endpoint first: the fixed-midpoint bisection below
      // never evaluates `hi` itself, so when vts_max is feasible the group
      // would otherwise settle one half-interval short of it and leak
      // subthreshold energy.
      std::vector<double> vts = best->state.vts;
      for (netlist::GateId id : nl.combinational()) {
        if (group[id] == gi) vts[id] = hi;
      }
      Probe p = probe(best->state.vdd, vts, budgets, ctx);
      if (p.feasible && p.energy.total() <= best->energy.total()) {
        mark_accepted(ctx.report, p.traj);
        *best = p;
        group_vts[static_cast<std::size_t>(gi)] = hi;
        continue;
      }
    }
    for (int s = 0; s < opts_.steps && !ctx.dog->expired(); ++s) {
      const double mid = 0.5 * (lo + hi);
      std::vector<double> vts = best->state.vts;
      for (netlist::GateId id : nl.combinational()) {
        if (group[id] == gi) vts[id] = mid;
      }
      Probe p = probe(best->state.vdd, vts, budgets, ctx);
      if (p.feasible && p.energy.total() <= best->energy.total()) {
        mark_accepted(ctx.report, p.traj);
        *best = p;
        group_vts[static_cast<std::size_t>(gi)] = mid;
        lo = mid;
      } else {
        hi = mid;
      }
    }
  }
  result->vts_groups.assign(group_vts.begin(), group_vts.end());
  std::sort(result->vts_groups.begin(), result->vts_groups.end());
  result->vts_groups.erase(
      std::unique(result->vts_groups.begin(), result->vts_groups.end()),
      result->vts_groups.end());
}

OptimizationResult JointOptimizer::run() const {
  const obs::Span run_span("joint.run");
  const obs::CounterDelta counter_delta;
  obs::counter("opt.joint.runs").add();

  const auto t0 = std::chrono::steady_clock::now();
  const tech::Technology& tech = eval_.technology();

  OptimizationResult result;
  obs::RunReport& report = result.report;
  report.optimizer = "joint";
  report.circuit = eval_.netlist().name();

  timing::BudgetResult budgets;
  {
    const obs::Span span("joint.budgeting");
    budgets = eval_.budgeter().assign(eval_.cycle_time(),
                                      {.clock_skew_b = opts_.skew_b});
  }

  util::Watchdog dog(opts_.budget);
  const ProbeCtx ctx{&dog, &report, "sweep"};
  Probe best;
  best.energy.static_energy = kInf;
  best.energy.dynamic_energy = 0.0;
  best.feasible = false;

  // --- Resume a checkpointed sweep ----------------------------------------
  int start_step = 0;
  std::int64_t resumed_evals = 0;
  double resume_prev_total = kInf;
  util::Range resume_vdd_range{tech.vdd_min, tech.vdd_max};
  if (!opts_.resume_path.empty()) {
    JointCheckpoint ck;
    bool loaded = true;
    try {
      ck = JointCheckpoint::load(opts_.resume_path);
    } catch (const util::ParseError& e) {
      // Corrupt snapshot (truncated, garbled, wrong schema): reject it and
      // run fresh instead of dying; direct Checkpoint loads still throw the
      // typed ParseError for callers that want it.
      loaded = false;
      obs::counter("opt.checkpoint.resume_rejected").add();
      std::fprintf(stderr,
                   "joint: resume snapshot rejected (%s); starting fresh\n",
                   e.what());
    }
    if (loaded) {
      MINERGY_CHECK_MSG(ck.circuit == eval_.netlist().name(),
                        "joint resume: checkpoint is for circuit '" +
                            ck.circuit + "', not '" + eval_.netlist().name() +
                            "'");
      start_step = ck.next_step;
      resume_vdd_range = {ck.vdd_lo, ck.vdd_hi};
      resume_prev_total = ck.prev_total;
      if (ck.has_best) {
        best.state = std::move(ck.best_state);
        best.energy = ck.best_energy;
        best.critical_delay = ck.best_critical_delay;
        best.feasible = ck.best_feasible;
      }
      resumed_evals = ck.evaluations;
      report = std::move(ck.report);
      report.optimizer = "joint";
      report.circuit = eval_.netlist().name();
      obs::counter("opt.joint.resumes").add();
    }
  }

  // --- Procedure 2: nested binary search ---------------------------------
  {
    const obs::Span span("joint.sweep");
    double prev_total = resume_prev_total;  // "total energy decreased" ref
    util::Range vdd_range = resume_vdd_range;
    auto write_checkpoint = [&](int next_step) {
      JointCheckpoint ck;
      ck.circuit = eval_.netlist().name();
      ck.next_step = next_step;
      ck.vdd_lo = vdd_range.lo;
      ck.vdd_hi = vdd_range.hi;
      ck.prev_total = prev_total;
      ck.has_best = best.feasible;
      if (ck.has_best) {
        ck.best_state = best.state;
        ck.best_energy = best.energy;
        ck.best_critical_delay = best.critical_delay;
        ck.best_feasible = best.feasible;
      }
      ck.evaluations = resumed_evals + dog.evaluations();
      ck.report = report;
      ck.save(opts_.checkpoint_path);
      obs::counter("opt.joint.checkpoints").add();
    };
    for (int m = start_step; m < opts_.steps && !dog.expired(); ++m) {
      const double vdd = vdd_range.mid();
      bool improved_at_this_vdd = false;

      util::Range vts_range{tech.vts_min, tech.vts_max};
      for (int m2 = 0; m2 < opts_.steps && !dog.expired(); ++m2) {
        const double vts = vts_range.mid();
        Probe p = probe_uniform(vdd, vts, budgets, ctx);
        const bool good = p.feasible && p.energy.total() < prev_total;
        if (good) {
          prev_total = p.energy.total();
          improved_at_this_vdd = true;
          if (!best.feasible || p.energy.total() < best.energy.total()) {
            mark_accepted(ctx.report, p.traj);
            best = std::move(p);
          }
          vts_range = vts_range.higher();  // cut leakage while timing holds
        } else {
          vts_range = vts_range.lower();
        }
      }
      vdd_range = improved_at_this_vdd ? vdd_range.lower()
                                       : vdd_range.higher();
      // Snapshot completed steps only: a step cut short by the watchdog
      // must be replayed in full on resume, not recorded as done.
      if (!opts_.checkpoint_path.empty() && !dog.expired()) {
        write_checkpoint(m + 1);
      }
    }
  }

  if (opts_.refine) {
    const obs::Span span("joint.refine");
    refine(budgets, &best, ctx);
  }

  if (opts_.tilos_polish && best.feasible && !dog.expired()) {
    // Global sensitivity re-sizing at the chosen (Vdd, Vts): start from
    // minimum widths and grow only what the critical path needs.
    const obs::Span span("joint.tilos_polish");
    std::vector<double> vts_corner(best.state.vts.size());
    for (std::size_t i = 0; i < vts_corner.size(); ++i) {
      vts_corner[i] = eval_.delay_vts(best.state.vts[i]);
    }
    const TilosSizer tilos(eval_.delay_calculator(), eval_.energy_model());
    const TilosResult sized = tilos.size(best.state.vdd, vts_corner,
                                         opts_.skew_b * eval_.cycle_time());
    if (sized.feasible) {
      Probe candidate = best;
      candidate.state.widths = sized.widths;
      candidate.critical_delay = sized.critical_delay;
      candidate.energy = eval_.energy(candidate.state);
      dog.note_evaluation();
      if (candidate.energy.total() < best.energy.total()) {
        obs::TrajectoryPoint tp;
        tp.phase = "tilos-polish";
        tp.vdd = candidate.state.vdd;
        tp.vts = candidate.state.vts.empty() ? 0.0 : candidate.state.vts[0];
        tp.energy = candidate.energy.total();
        tp.critical_delay = candidate.critical_delay;
        tp.feasible = true;
        tp.accepted = true;
        report.add_point(std::move(tp));
        best = std::move(candidate);
      }
    }
  }

  if (opts_.lagrangian_polish && best.feasible && !dog.expired()) {
    const obs::Span span("joint.lagrangian_polish");
    std::vector<double> vts_corner(best.state.vts.size());
    for (std::size_t i = 0; i < vts_corner.size(); ++i) {
      vts_corner[i] = eval_.delay_vts(best.state.vts[i]);
    }
    const LagrangianSizer lr(eval_.delay_calculator(), eval_.energy_model());
    const LagrangianResult sized = lr.size(
        best.state.vdd, vts_corner, opts_.skew_b * eval_.cycle_time());
    if (sized.feasible) {
      Probe candidate = best;
      candidate.state.widths = sized.widths;
      candidate.critical_delay = sized.critical_delay;
      candidate.energy = eval_.energy(candidate.state);
      dog.note_evaluation();
      if (candidate.energy.total() < best.energy.total()) {
        obs::TrajectoryPoint tp;
        tp.phase = "lagrangian-polish";
        tp.vdd = candidate.state.vdd;
        tp.vts = candidate.state.vts.empty() ? 0.0 : candidate.state.vts[0];
        tp.energy = candidate.energy.total();
        tp.critical_delay = candidate.critical_delay;
        tp.feasible = true;
        tp.accepted = true;
        report.add_point(std::move(tp));
        best = std::move(candidate);
      }
    }
  }

  {
    const obs::Span span("joint.multi_vt");
    assign_threshold_groups(budgets, &best, &result, ctx);
  }

  result.state = best.state;
  result.energy = best.energy;
  result.critical_delay = best.critical_delay;
  result.feasible = best.feasible;
  result.vdd = best.state.vdd;
  result.vts_primary = best.state.vts.empty() ? 0.0 : best.state.vts[0];
  if (result.vts_groups.empty() && !best.state.vts.empty()) {
    result.vts_groups = {result.vts_primary};
  }
  result.circuit_evaluations =
      static_cast<int>(resumed_evals + dog.evaluations());
  if (dog.expired()) {
    result.truncated = true;
    result.truncation_reason =
        std::string(dog.expiry_reason()) + " exhausted after " +
        std::to_string(dog.evaluations()) + " circuit evaluations";
    obs::counter("opt.watchdog.expiries").add();
    obs::Tracer::instance().instant("watchdog.expired", "joint");
  }
  result.runtime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (result.feasible) {
    obs::gauge("opt.joint.best_energy_joules").set(result.energy.total());
  }
  counter_delta.finish(&report);
  finalize_run_report(&result);
  return result;
}

}  // namespace minergy::opt
