// The conventional reference flow of Table 1: threshold voltage frozen at
// the technology's nominal value (700 mV in the paper); only the supply
// voltage and the device widths are optimized against the same cycle-time
// constraint. The joint optimizer's savings (Table 2) are quoted against
// this result.
#pragma once

#include "opt/evaluator.h"
#include "opt/result.h"

namespace minergy::opt {

class BaselineOptimizer {
 public:
  // fixed_vts < 0 selects the technology's nominal_vts.
  BaselineOptimizer(const CircuitEvaluator& eval, OptimizerOptions options = {},
                    double fixed_vts = -1.0);

  OptimizationResult run() const;

 private:
  const CircuitEvaluator& eval_;
  OptimizerOptions opts_;
  double fixed_vts_;
};

}  // namespace minergy::opt
