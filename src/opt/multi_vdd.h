// Dual supply voltages (the paper's "we retain the flexibility to use more
// than one threshold or power supply voltage if desired").
//
// Clustered voltage scaling on top of a single-supply joint optimum: gates
// with timing slack are moved to a second, lower supply. The assignment is
// *downstream-closed* — a low-Vdd gate never drives a high-Vdd gate — so no
// level converters are required (a reduced-swing input would leave a
// high-supply PMOS half-on and burn static current). The low set therefore
// grows backward from the primary outputs in slack order, and the second
// supply value is found by binary search on feasibility/energy.
#pragma once

#include "opt/evaluator.h"
#include "opt/result.h"

namespace minergy::opt {

struct MultiVddOptions {
  OptimizerOptions base;       // options for the single-supply pre-pass
  int vdd_search_steps = 10;   // binary-search iterations for Vdd_low
  double min_slack_fraction = 0.05;  // eligibility: slack > frac * Tc
};

struct MultiVddResult {
  OptimizationResult single;  // the single-supply starting point
  bool improved = false;

  double vdd_high = 0.0;
  double vdd_low = 0.0;
  std::vector<char> low_domain;  // per gate id: 1 = on the low supply
  std::size_t low_count = 0;

  power::EnergyBreakdown energy;  // final (dual-supply) energy
  double critical_delay = 0.0;
  bool feasible = false;

  double savings_vs_single() const {
    return feasible && energy.total() > 0.0
               ? single.energy.total() / energy.total()
               : 1.0;
  }
};

class MultiVddOptimizer {
 public:
  MultiVddOptimizer(const CircuitEvaluator& eval, MultiVddOptions options = {});

  MultiVddResult run() const;

 private:
  const CircuitEvaluator& eval_;
  MultiVddOptions opts_;
};

}  // namespace minergy::opt
