// Multi-pass simulated-annealing comparator (Section 5 of the paper).
//
// Anneals directly over the full variable vector (Vdd, Vts, w_1..w_N) with
// a timing-violation penalty. The paper reports that for these problem
// sizes annealing does not reach the heuristic's quality in practical time;
// bench/sa_comparison reproduces that comparison under an equalized
// evaluation budget.
#pragma once

#include <cstdint>
#include <string>

#include "opt/evaluator.h"
#include "opt/result.h"

namespace minergy::opt {

struct AnnealingOptions {
  int max_moves = 20000;       // total proposed moves across all passes
  int passes = 3;              // restarts, each keeping the global best
  double initial_temp_scale = 0.5;  // T0 = scale * |E(initial)|
  double cooling = 0.995;      // geometric factor per accepted window
  double penalty_weight = 20.0;     // timing-violation penalty multiplier
  double skew_b = 0.95;
  std::uint64_t seed = 1234;
  // Independent chains run concurrently over the global thread pool, each
  // with a hash_mix-derived seed (chain 0 keeps `seed` itself, so chains=1
  // is exactly the historical single-chain run). The best feasible chain
  // wins; the evaluation budget is split evenly across chains.
  int chains = 1;
  // Wall-clock / evaluation budget; exhausting it ends the anneal early and
  // flags the result `truncated` (the global best so far is still returned).
  util::WatchdogBudget budget{};

  // Crash-safe snapshots (schema minergy.anneal_checkpoint.v1 for a single
  // chain, minergy.anneal_checkpoint.v2 for chains > 1; both written with
  // an atomic write-rename): when `checkpoint_path` is set, a snapshot lands
  // every `checkpoint_every_moves` proposed moves and at every pass
  // boundary. `resume_path` restores one and continues the run bit-exactly
  // (the RNG stream state rides in the snapshot); the caller must pass the
  // same netlist and options as the interrupted run. A v1 snapshot resumes
  // chain 0 of a multi-chain run; the remaining chains start fresh.
  std::string checkpoint_path;
  std::string resume_path;
  int checkpoint_every_moves = 500;
};

class AnnealingOptimizer {
 public:
  AnnealingOptimizer(const CircuitEvaluator& eval, AnnealingOptions options = {});

  // `warm_start`: begin from a given state (e.g. the baseline solution);
  // empty state = the technology's strong corner.
  OptimizationResult run(const CircuitState& warm_start = {}) const;

 private:
  struct ChainIo;

  // One chain of the anneal (the historical single-chain algorithm).
  OptimizationResult run_chain(const CircuitState& warm_start,
                               std::uint64_t seed,
                               const util::WatchdogBudget& budget,
                               const ChainIo& io) const;
  // Fans `opts_.chains` chains across the global pool and picks the winner.
  OptimizationResult run_multi(const CircuitState& warm_start) const;

  const CircuitEvaluator& eval_;
  AnnealingOptions opts_;
};

}  // namespace minergy::opt
