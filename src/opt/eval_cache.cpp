#include "opt/eval_cache.h"

#include <atomic>
#include <bit>

#include "obs/metrics.h"
#include "util/rng.h"

namespace minergy::opt {
namespace {

std::uint64_t mix_in(std::uint64_t h, std::uint64_t word) {
  // Chained SplitMix64: absorb, then scramble. hash_mix is bijective, so two
  // chains differing in any absorbed word differ in the running state.
  return util::hash_mix(h ^ word);
}

std::uint64_t digest(std::uint64_t seed, double vdd,
                     std::span<const double> vts,
                     std::span<const double> widths, double extra) {
  std::uint64_t h = util::hash_mix(seed);
  h = mix_in(h, std::bit_cast<std::uint64_t>(vdd));
  h = mix_in(h, static_cast<std::uint64_t>(vts.size()));
  for (double v : vts) h = mix_in(h, std::bit_cast<std::uint64_t>(v));
  h = mix_in(h, static_cast<std::uint64_t>(widths.size()));
  for (double w : widths) h = mix_in(h, std::bit_cast<std::uint64_t>(w));
  h = mix_in(h, std::bit_cast<std::uint64_t>(extra));
  return h;
}

std::atomic<bool> g_cache_enabled{true};
thread_local int tl_bypass_depth = 0;

}  // namespace

EvalKey EvalKey::of(double vdd, std::span<const double> vts,
                    std::span<const double> widths, double extra) {
  EvalKey k;
  // Two independent digests of the same data (distinct seeds): a false hit
  // requires a simultaneous 64+64-bit collision.
  k.a = digest(0x9e3779b97f4a7c15ull, vdd, vts, widths, extra);
  k.b = digest(0xc2b2ae3d27d4eb4full, vdd, vts, widths, extra);
  return k;
}

void set_eval_cache_enabled(bool enabled) {
  g_cache_enabled.store(enabled, std::memory_order_relaxed);
}

bool eval_cache_enabled() {
  return g_cache_enabled.load(std::memory_order_relaxed);
}

EvalCacheBypass::EvalCacheBypass() { ++tl_bypass_depth; }
EvalCacheBypass::~EvalCacheBypass() { --tl_bypass_depth; }

bool eval_cache_active() {
  return tl_bypass_depth == 0 && eval_cache_enabled();
}

namespace detail {

void note_cache_hit() {
  static obs::Counter& c = obs::counter("opt.eval.cache.hits");
  c.add();
}

void note_cache_miss() {
  static obs::Counter& c = obs::counter("opt.eval.cache.misses");
  c.add();
}

void note_cache_evict() {
  static obs::Counter& c = obs::counter("opt.eval.cache.evictions");
  c.add();
}

}  // namespace detail

}  // namespace minergy::opt
