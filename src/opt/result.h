// Shared option/result types for the optimizers.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "obs/report.h"
#include "opt/circuit_state.h"
#include "power/energy_model.h"
#include "util/guard.h"

namespace minergy::opt {

// Which tier of the graceful-degradation chain produced a result (see
// RobustOptimizer). Plain optimizers always report their own tier.
enum class ResultTier {
  kJoint = 0,       // full Procedure-2 joint optimization
  kBaseline = 1,    // fixed-Vts conventional flow
  kLastResort = 2,  // max-drive emergency configuration
};

inline const char* to_string(ResultTier tier) {
  switch (tier) {
    case ResultTier::kJoint:
      return "joint";
    case ResultTier::kBaseline:
      return "baseline";
    case ResultTier::kLastResort:
      return "last-resort";
  }
  return "?";
}

struct OptimizerOptions {
  int steps = 10;          // M, binary-search iterations per nested loop
  int sizing_steps = 12;   // M for the per-gate width search
  double skew_b = 0.95;    // clock-skew factor b of Eq. (1)
  int num_thresholds = 1;  // n_v distinct threshold voltages
  // Width-recovery (Section 4.2 post-processing) iterations per probe:
  // each pass redistributes the measured slack into relaxed budgets and
  // re-runs the minimum-width search, monotonically shrinking widths.
  int recovery_passes = 2;

  // Local continuous refinement around the binary-search solution. The
  // paper's Procedure 2 is the nested search alone; the refinement is an
  // optional polish (compared in bench/ablation_budgeting).
  bool refine = true;
  int refine_steps = 10;

  // Replace the budget-driven widths at the final operating point with a
  // TILOS-style global sensitivity sizing when that meets timing with less
  // energy. OFF by default: the paper's flow is budget-driven, and
  // bench/ablation_budgeting quantifies exactly what this buys.
  bool tilos_polish = false;

  // Same idea with the Lagrangian-relaxation sizer (the Sapatnekar-lineage
  // method the paper cites as [10]); usually the strongest width polish.
  bool lagrangian_polish = false;

  // Wall-clock / evaluation-count budget for the whole run. Unlimited by
  // default; when exhausted the optimizer stops probing and returns the
  // best state seen so far with `truncated` set.
  util::WatchdogBudget budget{};

  // Crash-safe snapshots for the JointOptimizer's nested sweep (schema
  // minergy.joint_checkpoint.v1; see opt/checkpoint.h): `checkpoint_path`
  // writes an atomic snapshot after every completed outer Vdd step;
  // `resume_path` restores one and continues deterministically. Other
  // optimizers sharing these options ignore both fields.
  std::string checkpoint_path;
  std::string resume_path;
};

struct OptimizationResult {
  CircuitState state;
  power::EnergyBreakdown energy;  // per cycle, at the evaluation corner
  double critical_delay = std::numeric_limits<double>::infinity();
  bool feasible = false;

  double vdd = 0.0;          // chosen global supply
  double vts_primary = 0.0;  // the (first) threshold voltage
  std::vector<double> vts_groups;  // all distinct thresholds in use

  int circuit_evaluations = 0;  // full size+STA+energy passes
  double runtime_seconds = 0.0;

  // The watchdog budget ran out before the search finished: `state` is the
  // best point seen, not the converged optimum.
  bool truncated = false;
  std::string truncation_reason;  // empty unless truncated

  // Provenance of the answer in the graceful-degradation chain, plus why
  // earlier tiers failed (filled by RobustOptimizer; single-tier optimizers
  // leave tier_notes empty and report their own tier).
  ResultTier tier = ResultTier::kJoint;
  std::vector<std::string> tier_notes;

  // Run telemetry: search trajectory, per-tier provenance, counter deltas.
  // Always populated (trajectory recording is cheap next to the probes it
  // describes); serialize with report.to_json(). See docs/OBSERVABILITY.md.
  obs::RunReport report;

  double total_energy() const { return energy.total(); }
};

// Copies the result's final scalars into its RunReport so a serialized
// report is self-contained. Every optimizer calls this just before
// returning; callers that post-process a result should re-call it.
inline void finalize_run_report(OptimizationResult* r) {
  obs::RunReport& rep = r->report;
  rep.feasible = r->feasible;
  rep.vdd = r->vdd;
  rep.vts_primary = r->vts_primary;
  rep.energy_total = r->energy.total();
  rep.static_energy = r->energy.static_energy;
  rep.dynamic_energy = r->energy.dynamic_energy;
  rep.critical_delay = r->critical_delay;
  rep.runtime_seconds = r->runtime_seconds;
  rep.circuit_evaluations = r->circuit_evaluations;
  rep.tier = to_string(r->tier);
  rep.truncated = r->truncated;
  rep.truncation_reason = r->truncation_reason;
}

}  // namespace minergy::opt
