#include "opt/baseline_optimizer.h"

#include <chrono>
#include <cmath>
#include <limits>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "opt/sizer.h"
#include "util/check.h"
#include "util/guard.h"
#include "util/search.h"

namespace minergy::opt {

BaselineOptimizer::BaselineOptimizer(const CircuitEvaluator& eval,
                                     OptimizerOptions options,
                                     double fixed_vts)
    : eval_(eval),
      opts_(options),
      fixed_vts_(fixed_vts > 0.0 ? fixed_vts
                                 : eval.technology().nominal_vts) {
  MINERGY_CHECK(opts_.steps >= 1);
}

OptimizationResult BaselineOptimizer::run() const {
  const obs::Span run_span("baseline.run");
  const obs::CounterDelta counter_delta;
  obs::counter("opt.baseline.runs").add();
  static obs::Counter& c_probes = obs::counter("opt.baseline.probes");

  const auto t0 = std::chrono::steady_clock::now();
  const tech::Technology& tech = eval_.technology();
  const netlist::Netlist& nl = eval_.netlist();

  OptimizationResult result;
  result.tier = ResultTier::kBaseline;
  result.vts_primary = fixed_vts_;
  result.vts_groups = {fixed_vts_};
  obs::RunReport& rep = result.report;
  rep.optimizer = "baseline";
  rep.circuit = nl.name();

  timing::BudgetResult budgets;
  {
    const obs::Span span("baseline.budgeting");
    budgets = eval_.budgeter().assign(eval_.cycle_time(),
                                      {.clock_skew_b = opts_.skew_b});
  }
  const GateSizer sizer(eval_.delay_calculator());
  const std::vector<double> vts_corner(nl.size(),
                                       eval_.delay_vts(fixed_vts_));

  util::Watchdog dog(opts_.budget);
  const double limit = opts_.skew_b * eval_.cycle_time();

  // Trajectory phase label for the probes below; flipped between the
  // feasibility bisection and the energy polish.
  const char* phase = "vdd-bisect";
  auto probe = [&](double vdd) {
    dog.note_evaluation();
    c_probes.add();
    SizingResult sized =
        sizer.size(budgets.t_max, vdd, vts_corner, opts_.sizing_steps);
    CircuitState state;
    state.vdd = vdd;
    state.vts.assign(nl.size(), fixed_vts_);
    state.widths = std::move(sized.widths);
    timing::TimingReport report = eval_.sta(state, limit);
    double crit = report.critical_delay;
    bool ok = crit <= limit * (1.0 + 1e-9);
    if (ok) {
      // Same post-processing width recovery as the joint flow (the two
      // flows must share sizing machinery for a fair comparison).
      for (int pass = 0; pass < opts_.recovery_passes; ++pass) {
        SizingResult recovered = sizer.recover(
            state.widths, vdd, vts_corner, limit, report, opts_.sizing_steps);
        CircuitState candidate = state;
        candidate.widths = std::move(recovered.widths);
        const timing::TimingReport check = eval_.sta(candidate, limit);
        if (check.critical_delay > limit * (1.0 + 1e-9)) break;
        state = std::move(candidate);
        crit = check.critical_delay;
        report = check;
      }
    }
    obs::TrajectoryPoint tp;
    tp.phase = phase;
    tp.vdd = vdd;
    tp.vts = fixed_vts_;
    tp.energy = 0.0;  // bisection probes skip the energy evaluation
    tp.critical_delay = crit;
    tp.feasible = ok;
    rep.add_point(std::move(tp));
    return std::tuple(std::move(state), crit, ok);
  };

  auto stamp = [&](OptimizationResult* r) {
    r->circuit_evaluations = static_cast<int>(dog.evaluations());
    if (dog.expired()) {
      r->truncated = true;
      r->truncation_reason =
          std::string(dog.expiry_reason()) + " exhausted after " +
          std::to_string(dog.evaluations()) + " circuit evaluations";
      obs::counter("opt.watchdog.expiries").add();
      obs::Tracer::instance().instant("watchdog.expired", "baseline");
    }
    r->runtime_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    counter_delta.finish(&r->report);
    finalize_run_report(r);
  };

  // Feasibility boundary: delay is monotone decreasing in Vdd at fixed Vts,
  // so the smallest feasible supply is found by bisection. After watchdog
  // expiry the predicate answers a conservative "infeasible", steering the
  // bisection back toward the known-feasible vdd_max without new probes.
  auto feasible_at = [&](double vdd) {
    if (dog.expired()) return false;
    return std::get<2>(probe(vdd));
  };
  double vdd_boundary = 0.0;
  {
    const obs::Span span("baseline.vdd_bisect");
    if (!feasible_at(tech.vdd_max)) {
      result.feasible = false;
      stamp(&result);
      return result;
    }
    vdd_boundary = util::bisect_min_true(tech.vdd_min, tech.vdd_max,
                                         opts_.steps + 4, feasible_at);
  }

  // Energy over [boundary, vdd_max] is near-monotone increasing (CV^2)
  // but the width relief just above the boundary can create a shallow
  // interior minimum; a short golden-section handles both shapes. An
  // exhausted watchdog turns further probes into flat no-ops.
  const obs::Span energy_span("baseline.vdd_energy");
  phase = "vdd-energy";
  double best_energy = std::numeric_limits<double>::infinity();
  CircuitState best_state;
  double best_crit = 0.0;
  auto energy_at = [&](double vdd) {
    if (dog.expired() && best_energy < std::numeric_limits<double>::infinity()) {
      return best_energy * 4.0 + 1.0;
    }
    auto [state, crit, ok] = probe(vdd);
    if (!ok) return best_energy * 4.0 + 1.0;
    const double e = eval_.energy(state).total();
    // Back-fill the probe's trajectory point with the measured energy.
    if (!rep.trajectory.empty()) rep.trajectory.back().energy = e;
    if (e < best_energy) {
      if (!rep.trajectory.empty()) rep.trajectory.back().accepted = true;
      best_energy = e;
      best_state = std::move(state);
      best_crit = crit;
    }
    return e;
  };
  energy_at(vdd_boundary);
  util::golden_section_min(vdd_boundary, tech.vdd_max,
                           opts_.refine ? opts_.refine_steps : 4, energy_at);

  result.state = best_state;
  result.energy = eval_.energy(best_state);
  result.critical_delay = best_crit;
  result.feasible = true;
  result.vdd = best_state.vdd;
  if (result.feasible) {
    obs::gauge("opt.baseline.best_energy_joules").set(result.energy.total());
  }
  stamp(&result);
  return result;
}

}  // namespace minergy::opt
