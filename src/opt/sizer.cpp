#include "opt/sizer.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "timing/sta.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace minergy::opt {

GateSizer::GateSizer(const timing::DelayCalculator& calc) : calc_(calc) {}

SizingResult GateSizer::size(std::span<const double> t_max, double vdd,
                             std::span<const double> vts, int steps) const {
  const netlist::Netlist& nl = calc_.netlist();
  const tech::Technology& tech = calc_.device().technology();
  MINERGY_CHECK(t_max.size() == nl.size());
  MINERGY_CHECK(vts.size() == nl.size());
  MINERGY_CHECK(steps >= 1);

  static obs::Counter& c_calls = obs::counter("opt.sizer.size_calls");
  static obs::Counter& c_gates = obs::counter("opt.sizer.width_searches");
  c_calls.add();
  c_gates.add(static_cast<std::int64_t>(nl.num_combinational()));

  SizingResult r;
  r.widths.assign(nl.size(), tech.w_min);
  r.all_budgets_met = true;

  // Reverse level order, each level fanned across the pool. A gate's width
  // search touches only its own widths slot; the delay model additionally
  // reads the widths of the gate's fanouts (load), which sit at strictly
  // later levels and are final by the time their level is processed. Same
  // inputs per gate as the serial loop -> bit-identical widths. Miss flags
  // are collected per slot and reduced serially in bucket order.
  util::ThreadPool& pool = util::global_pool();
  const auto& groups = nl.level_groups();
  for (auto git = groups.rbegin(); git != groups.rend(); ++git) {
    const auto& bucket = *git;
    std::vector<char> missed(bucket.size(), 0);
    pool.parallel_for(bucket.size(), [&](std::size_t bi) {
      const netlist::GateId id = bucket[bi];
      const netlist::Gate& g = nl.gate(id);

      // Worst-case input-edge contribution from the fanins' budgets.
      double slope_in = 0.0;
      for (netlist::GateId f : g.fanins) {
        if (netlist::is_combinational(nl.gate(f).type)) {
          slope_in = std::max(slope_in, t_max[f]);
        }
      }

      auto delay_at = [&](double w) {
        r.widths[id] = w;
        return calc_.gate_delay(id, r.widths, vdd, vts[id], slope_in);
      };

      const double budget = t_max[id];
      if (delay_at(tech.w_min) <= budget) {
        r.widths[id] = tech.w_min;
        return;
      }
      if (delay_at(tech.w_max) > budget) {
        // Unreachable even at maximum drive; take the fastest width.
        r.widths[id] = tech.w_max;
        missed[bi] = 1;
        return;
      }
      // Binary search the smallest width meeting the budget.
      double lo = tech.w_min, hi = tech.w_max;
      for (int s = 0; s < steps; ++s) {
        const double mid = 0.5 * (lo + hi);
        if (delay_at(mid) <= budget) {
          hi = mid;
        } else {
          lo = mid;
        }
      }
      r.widths[id] = hi;  // hi always meets the budget
      (void)delay_at(hi);
    });
    for (char m : missed) {
      if (m) {
        r.all_budgets_met = false;
        ++r.gates_missed;
      }
    }
  }
  return r;
}

SizingResult GateSizer::recover(std::span<const double> widths, double vdd,
                                std::span<const double> vts,
                                double cycle_limit,
                                const timing::TimingReport& report,
                                int steps) const {
  const netlist::Netlist& nl = calc_.netlist();
  const tech::Technology& tech = calc_.device().technology();
  MINERGY_CHECK(widths.size() == nl.size());
  MINERGY_CHECK(cycle_limit > 0.0);

  static obs::Counter& c_calls = obs::counter("opt.sizer.recover_calls");
  c_calls.add();

  // Relaxed per-gate budgets from the slack redistribution rule. Gates with
  // non-positive slack keep exactly their current delay.
  std::vector<double> t_rec(nl.size(), 0.0);
  for (netlist::GateId id : nl.combinational()) {
    const double slack = std::max(0.0, report.slack[id]);
    const double denom = std::max(cycle_limit - slack, 1e-3 * cycle_limit);
    t_rec[id] = report.gate_delay[id] * cycle_limit / denom;
  }

  SizingResult r;
  r.widths.assign(widths.begin(), widths.end());
  r.all_budgets_met = true;

  // Same level-parallel structure (and the same safety argument) as size().
  util::ThreadPool& pool = util::global_pool();
  const auto& groups = nl.level_groups();
  for (auto git = groups.rbegin(); git != groups.rend(); ++git) {
    const auto& bucket = *git;
    pool.parallel_for(bucket.size(), [&](std::size_t bi) {
      const netlist::GateId id = bucket[bi];
      const netlist::Gate& g = nl.gate(id);
      const double w_old = r.widths[id];
      if (w_old <= tech.w_min * (1.0 + 1e-12)) return;

      // Conservative slope input: the fanins' relaxed budgets.
      double slope_in = 0.0;
      for (netlist::GateId f : g.fanins) {
        if (netlist::is_combinational(nl.gate(f).type)) {
          slope_in = std::max(slope_in, t_rec[f]);
        }
      }
      auto delay_at = [&](double w) {
        r.widths[id] = w;
        return calc_.gate_delay(id, r.widths, vdd, vts[id], slope_in);
      };

      const double budget = t_rec[id];
      if (delay_at(tech.w_min) <= budget) {
        r.widths[id] = tech.w_min;
        return;
      }
      if (delay_at(w_old) > budget) {
        // The relaxed slope input exceeds what this gate can absorb even at
        // its current width: never upsize during recovery.
        r.widths[id] = w_old;
        return;
      }
      double lo = tech.w_min, hi = w_old;
      for (int s = 0; s < steps; ++s) {
        const double mid = 0.5 * (lo + hi);
        if (delay_at(mid) <= budget) {
          hi = mid;
        } else {
          lo = mid;
        }
      }
      r.widths[id] = hi;
      (void)delay_at(hi);
    });
  }
  return r;
}

}  // namespace minergy::opt
