// CircuitEvaluator: one bundle of netlist + technology + activity + wire
// models with the derived delay and energy calculators — the evaluation
// context every optimizer probes.
//
// Process-variation corners (Figure 2a of the paper) are supported by
// evaluating delay at a pessimistically *raised* threshold and leakage at a
// pessimistically *lowered* one:
//   delay  uses  vts * (1 + vts_tolerance)
//   leakage uses vts * (1 - vts_tolerance)
#pragma once

#include <memory>
#include <span>

#include "activity/activity.h"
#include "interconnect/wire_model.h"
#include "netlist/netlist.h"
#include "opt/circuit_state.h"
#include "opt/eval_cache.h"
#include "power/energy_model.h"
#include "tech/device_model.h"
#include "tech/technology.h"
#include "timing/delay_budget.h"
#include "timing/delay_model.h"
#include "timing/sta.h"
#include "util/check.h"
#include "util/guard.h"

namespace minergy::opt {

struct EvalSettings {
  double clock_frequency = 300e6;  // f_c (Hz)
  double vts_tolerance = 0.0;      // +/- fractional process variation

  // The paper's announced "next version" feature: include the Veendrick
  // short-circuit component in the cost function. Each gate's input
  // transition time is taken as 2x its slowest fanin's delay (primary
  // inputs ramp in `input_slew`).
  bool include_short_circuit = false;
  double input_slew = 50e-12;  // s, edge rate at primary inputs
};

class CircuitEvaluator {
 public:
  // Validates the technology (tech::TechnologyError on corrupt parameters)
  // and the settings before any model is built; every STA / energy call is
  // finite-checked at this boundary (util::NumericError with gate context).
  CircuitEvaluator(const netlist::Netlist& nl, const tech::Technology& tech,
                   const activity::ActivityProfile& profile,
                   const EvalSettings& settings);

  // Same, but with externally supplied per-net wire loads (e.g. a
  // place::PlacedWireModel) instead of the built-in stochastic Rent's-rule
  // model. `wires` must outlive the evaluator.
  CircuitEvaluator(const netlist::Netlist& nl, const tech::Technology& tech,
                   const activity::ActivityProfile& profile,
                   const EvalSettings& settings,
                   const interconnect::WireLoads& wires);

  const netlist::Netlist& netlist() const { return nl_; }
  const tech::Technology& technology() const { return tech_; }
  const tech::DeviceModel& device() const { return dev_; }
  // The built-in a-priori stochastic model (always constructed).
  const interconnect::WireModel& wires() const { return own_wires_; }
  // The loads the delay/energy models actually use.
  const interconnect::WireLoads& wire_loads() const { return *wires_; }
  const activity::ActivityResult& activity() const { return act_; }
  const timing::DelayCalculator& delay_calculator() const { return delay_; }
  const power::EnergyModel& energy_model() const { return energy_; }
  const timing::DelayBudgeter& budgeter() const { return budgeter_; }

  double clock_frequency() const { return settings_.clock_frequency; }
  double cycle_time() const { return 1.0 / settings_.clock_frequency; }
  double vts_tolerance() const { return settings_.vts_tolerance; }

  // Threshold corners for a nominal per-gate value.
  double delay_vts(double vts) const {
    return vts * (1.0 + settings_.vts_tolerance);
  }
  double leakage_vts(double vts) const {
    return vts * (1.0 - settings_.vts_tolerance);
  }

  // Full STA at the delay corner; `cycle_limit` only affects slacks.
  timing::TimingReport sta(const CircuitState& state,
                           double cycle_limit) const;

  // Worst-case critical-path delay at the delay corner.
  double critical_delay(const CircuitState& state) const;

  // Energy per cycle: dynamic at nominal, leakage at the leaky corner.
  power::EnergyBreakdown energy(const CircuitState& state) const;

  // critical_delay(state) <= limit (default: the skewed cycle budget).
  bool meets_timing(const CircuitState& state, double skew_b) const;

  // Smallest cycle time this circuit can meet at (vdd_max, the given
  // uniform threshold, budget-driven sizing); vts < 0 selects vts_min (the
  // technology's strongest corner). Used by the experiment harness to scale
  // infeasible paper constraints. Deterministic bisection.
  double minimum_cycle_time(double skew_b = 0.95, double vts = -1.0) const;

 private:
  void validate_inputs() const;


  const netlist::Netlist& nl_;
  tech::Technology tech_;
  EvalSettings settings_;
  tech::DeviceModel dev_;
  interconnect::WireModel own_wires_;
  const interconnect::WireLoads* wires_;  // own_wires_ or external
  activity::ActivityResult act_;
  timing::DelayCalculator delay_;
  power::EnergyModel energy_;
  timing::DelayBudgeter budgeter_;

  // Memoized results for the nested binary search's repeated probes. Cached
  // values are bit-identical to recomputation (see eval_cache.h), so these
  // never change an optimizer trajectory. STA reports are large, energy
  // breakdowns tiny — hence the asymmetric capacities.
  mutable EvalCache<timing::TimingReport> sta_cache_{128};
  mutable EvalCache<power::EnergyBreakdown> energy_cache_{4096};
};

// Diagnoses an unreachable cycle-time constraint: probes the max-drive
// configuration (vdd_max, strongest threshold, budget-driven sizing) and
// packages the requested limit, the best achievable critical-path delay and
// the limiting path's endpoint gate into a rich InfeasibleError for the
// caller to throw.
util::InfeasibleError diagnose_infeasibility(const CircuitEvaluator& eval,
                                             double skew_b);

}  // namespace minergy::opt
