#include "opt/annealing_optimizer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "opt/checkpoint.h"
#include "util/check.h"
#include "util/guard.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace minergy::opt {

// How one chain loads and stores snapshots. The single-chain run keeps the
// historical behavior (v1 file at opts_.checkpoint_path / resume_path); a
// chain of a multi-chain run resumes from an in-memory snapshot and routes
// saves through the orchestrator, which rewrites the combined v2 file.
struct AnnealingOptimizer::ChainIo {
  const AnnealCheckpoint* resume = nullptr;  // in-memory snapshot, may be null
  bool resume_from_path = false;  // chains==1: load opts_.resume_path (v1)
  std::function<void(const AnnealCheckpoint&)> save;  // null: v1 file save
};

AnnealingOptimizer::AnnealingOptimizer(const CircuitEvaluator& eval,
                                       AnnealingOptions options)
    : eval_(eval), opts_(options) {
  MINERGY_CHECK(opts_.max_moves >= 1);
  MINERGY_CHECK(opts_.passes >= 1);
  MINERGY_CHECK(opts_.cooling > 0.0 && opts_.cooling < 1.0);
  MINERGY_CHECK(opts_.chains >= 1);
}

OptimizationResult AnnealingOptimizer::run(
    const CircuitState& warm_start) const {
  if (opts_.chains == 1) {
    ChainIo io;
    io.resume_from_path = true;
    return run_chain(warm_start, opts_.seed, opts_.budget, io);
  }
  return run_multi(warm_start);
}

OptimizationResult AnnealingOptimizer::run_chain(
    const CircuitState& warm_start, std::uint64_t seed,
    const util::WatchdogBudget& budget, const ChainIo& io) const {
  const obs::Span run_span("anneal.run");
  const obs::CounterDelta counter_delta;
  obs::counter("opt.anneal.runs").add();
  static obs::Counter& c_moves = obs::counter("opt.anneal.moves");
  static obs::Counter& c_accepts = obs::counter("opt.anneal.accepts");

  const auto t0 = std::chrono::steady_clock::now();
  const tech::Technology& tech = eval_.technology();
  const netlist::Netlist& nl = eval_.netlist();
  util::Rng rng(seed);

  OptimizationResult result;
  obs::RunReport& rep = result.report;
  rep.optimizer = "annealing";
  rep.circuit = nl.name();

  // Trajectory: the initial state plus every global-best improvement. The
  // per-move stream would swamp the report, so rejected/lateral moves only
  // show up in the opt.anneal.moves counter.
  auto record_point = [&](const CircuitState& s, double energy, double crit,
                          bool feasible, bool accepted) {
    obs::TrajectoryPoint tp;
    tp.phase = "anneal";
    tp.vdd = s.vdd;
    tp.vts = s.vts.empty() ? 0.0 : s.vts.front();
    tp.energy = energy;
    tp.critical_delay = crit;
    tp.feasible = feasible;
    tp.accepted = accepted;
    rep.add_point(std::move(tp));
  };

  const double limit = opts_.skew_b * eval_.cycle_time();
  util::Watchdog dog(budget);

  // A random walk can wander into non-physical corners (threshold at or
  // above the supply) where the evaluator's finite-checks throw; such a
  // move is an infinite-cost reject, not a crash of the whole anneal.
  auto cost_of = [&](const CircuitState& s, double* crit_out,
                     double* energy_out) {
    dog.note_evaluation();
    try {
      const double crit = eval_.critical_delay(s);
      const double energy = eval_.energy(s).total();
      if (crit_out) *crit_out = crit;
      if (energy_out) *energy_out = energy;
      const double violation = std::max(0.0, crit / limit - 1.0);
      return energy * (1.0 + opts_.penalty_weight * violation);
    } catch (const util::NumericError&) {
      obs::counter("opt.anneal.numeric_rejects").add();
      if (crit_out) *crit_out = std::numeric_limits<double>::infinity();
      if (energy_out) *energy_out = std::numeric_limits<double>::infinity();
      return std::numeric_limits<double>::infinity();
    }
  };

  CircuitState init = warm_start;
  if (init.empty()) {
    init = CircuitState::uniform(nl, tech.vdd_max,
                                 0.5 * (tech.vts_min + tech.vts_max), 4.0);
  }

  // --- Resume / fresh start ------------------------------------------------
  CircuitState global_best;
  double global_best_crit = 0.0, global_best_energy = 0.0;
  double global_best_cost = 0.0;
  int start_pass = 0, start_move = 0;
  bool resumed = false;
  std::int64_t resumed_evals = 0;
  CircuitState resume_cur;
  double resume_cur_cost = 0.0, resume_temperature = 0.0;
  AnnealCheckpoint loaded_ck;
  const AnnealCheckpoint* resume_ck = io.resume;
  if (resume_ck == nullptr && io.resume_from_path &&
      !opts_.resume_path.empty()) {
    try {
      loaded_ck = AnnealCheckpoint::load(opts_.resume_path);
      resume_ck = &loaded_ck;
    } catch (const util::ParseError& e) {
      // A truncated/garbled/wrong-schema snapshot must not take the run
      // down with it: reject it, count the rejection, start fresh. (A
      // checkpoint for the wrong circuit is a caller bug, not corruption,
      // and still fails the MINERGY_CHECK below.)
      obs::counter("opt.checkpoint.resume_rejected").add();
      std::fprintf(stderr,
                   "anneal: resume snapshot rejected (%s); starting fresh\n",
                   e.what());
    }
  }
  if (resume_ck != nullptr) {
    const AnnealCheckpoint& ck = *resume_ck;
    MINERGY_CHECK_MSG(ck.circuit == nl.name(),
                      "anneal resume: checkpoint is for circuit '" +
                          ck.circuit + "', not '" + nl.name() + "'");
    resumed = true;
    start_pass = ck.pass;
    start_move = ck.move;
    resume_cur = ck.current;
    resume_cur_cost = ck.current_cost;
    resume_temperature = ck.temperature;
    global_best = ck.global_best;
    global_best_cost = ck.global_best_cost;
    global_best_crit = ck.global_best_crit;
    global_best_energy = ck.global_best_energy;
    resumed_evals = ck.evaluations;
    rng.restore(ck.rng);
    // The trajectory so far rides in the checkpoint; continue appending.
    rep = ck.report;
    rep.optimizer = "annealing";
    rep.circuit = nl.name();
    obs::counter("opt.anneal.resumes").add();
  }
  if (!resumed) {
    global_best = init;
    global_best_cost =
        cost_of(global_best, &global_best_crit, &global_best_energy);
    // The warm start counts as accepted only when it meets timing: for a
    // feasible point cost == energy, so the accepted-energy sequence stays
    // non-increasing across later global-best updates.
    record_point(global_best, global_best_energy, global_best_crit,
                 global_best_crit <= limit * (1.0 + 1e-9),
                 global_best_crit <= limit * (1.0 + 1e-9));
  }

  std::int64_t moves_done = 0;  // checkpoint cadence counter (this run only)
  auto write_checkpoint = [&](int pass, int next_move, const CircuitState& cur,
                              double cur_cost, double temperature) {
    AnnealCheckpoint ck;
    ck.circuit = nl.name();
    ck.pass = pass;
    ck.move = next_move;
    ck.temperature = temperature;
    ck.current = cur;
    ck.current_cost = cur_cost;
    ck.global_best = global_best;
    ck.global_best_cost = global_best_cost;
    ck.global_best_crit = global_best_crit;
    ck.global_best_energy = global_best_energy;
    ck.evaluations = resumed_evals + dog.evaluations();
    ck.rng = rng.state();
    ck.report = rep;
    if (io.save) {
      io.save(ck);
    } else {
      ck.save(opts_.checkpoint_path);
    }
    obs::counter("opt.anneal.checkpoints").add();
  };

  const int moves_per_pass = std::max(1, opts_.max_moves / opts_.passes);
  for (int pass = start_pass; pass < opts_.passes && !dog.expired(); ++pass) {
    const obs::Span pass_span("anneal.pass");
    CircuitState cur;
    double cur_cost = 0.0, temperature = 0.0;
    int first_move = 0;
    if (resumed && pass == start_pass) {
      // Mid-pass restore: the exact position, cost and temperature of the
      // interrupted run (pass-boundary checkpoints store the same values
      // the fresh-pass branch below would derive).
      cur = resume_cur;
      cur_cost = resume_cur_cost;
      temperature = resume_temperature;
      first_move = start_move;
    } else {
      cur = pass == 0 ? init : global_best;
      cur_cost = cost_of(cur, nullptr, nullptr);
      temperature = opts_.initial_temp_scale * std::fabs(cur_cost);
      // An infinite starting cost (numeric-rejected state) would otherwise
      // set an infinite temperature and turn the anneal into a random walk;
      // zero temperature makes it greedy until a physical state is found.
      if (!std::isfinite(temperature)) temperature = 0.0;
    }

    for (int move = first_move; move < moves_per_pass && !dog.expired();
         ++move) {
      CircuitState cand = cur;
      const double r = rng.uniform();
      if (r < 0.6) {
        // Perturb one gate's width multiplicatively.
        const auto& logic = nl.combinational();
        if (!logic.empty()) {
          const netlist::GateId id = logic[rng.uniform_index(logic.size())];
          const double factor = std::exp(rng.normal(0.0, 0.25));
          cand.widths[id] =
              std::clamp(cand.widths[id] * factor, tech.w_min, tech.w_max);
        }
      } else if (r < 0.8) {
        cand.vdd = std::clamp(cand.vdd + rng.normal(0.0, 0.08),
                              tech.vdd_min, tech.vdd_max);
      } else {
        const double delta = rng.normal(0.0, 0.03);
        for (double& v : cand.vts) {
          v = std::clamp(v + delta, tech.vts_min, tech.vts_max);
        }
      }

      c_moves.add();
      double crit = 0.0, energy = 0.0;
      const double cand_cost = cost_of(cand, &crit, &energy);
      const double delta_cost = cand_cost - cur_cost;
      if (delta_cost <= 0.0 ||
          rng.bernoulli(std::exp(-delta_cost / std::max(temperature, 1e-30)))) {
        c_accepts.add();
        cur = std::move(cand);
        cur_cost = cand_cost;
        if (crit <= limit * (1.0 + 1e-9) && cand_cost < global_best_cost) {
          global_best = cur;
          global_best_cost = cand_cost;
          global_best_crit = crit;
          global_best_energy = energy;
          record_point(global_best, energy, crit, true, true);
        }
      }
      temperature *= opts_.cooling;
      ++moves_done;
      if (!opts_.checkpoint_path.empty() && opts_.checkpoint_every_moves > 0 &&
          moves_done % opts_.checkpoint_every_moves == 0) {
        write_checkpoint(pass, move + 1, cur, cur_cost, temperature);
      }
    }
    if (!opts_.checkpoint_path.empty() && !dog.expired()) {
      // Pass boundary: store exactly what the next pass would derive, so a
      // resume here reproduces the uninterrupted run bit-for-bit. A pass
      // cut short by the watchdog is not a boundary — the cadence snapshot
      // inside the loop already holds the last completed move.
      double next_temp = opts_.initial_temp_scale * std::fabs(global_best_cost);
      if (!std::isfinite(next_temp)) next_temp = 0.0;
      write_checkpoint(pass + 1, 0, global_best, global_best_cost, next_temp);
    }
  }

  result.state = global_best;
  result.critical_delay = global_best_crit > 0.0
                              ? global_best_crit
                              : eval_.critical_delay(global_best);
  result.feasible = result.critical_delay <= limit * (1.0 + 1e-9);
  result.energy = eval_.energy(global_best);
  result.vdd = global_best.vdd;
  result.vts_primary =
      global_best.vts.empty() ? 0.0 : global_best.vts.front();
  result.vts_groups = {result.vts_primary};
  result.circuit_evaluations =
      static_cast<int>(resumed_evals + dog.evaluations());
  if (dog.expired()) {
    result.truncated = true;
    result.truncation_reason =
        std::string(dog.expiry_reason()) + " exhausted after " +
        std::to_string(dog.evaluations()) + " circuit evaluations";
    obs::counter("opt.watchdog.expiries").add();
    obs::Tracer::instance().instant("watchdog.expired", "anneal");
  }
  result.runtime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (result.feasible) {
    obs::gauge("opt.anneal.best_energy_joules").set(result.energy.total());
  }
  counter_delta.finish(&rep);
  finalize_run_report(&result);
  return result;
}

OptimizationResult AnnealingOptimizer::run_multi(
    const CircuitState& warm_start) const {
  const obs::Span span("anneal.multi");
  const auto t0 = std::chrono::steady_clock::now();
  const netlist::Netlist& nl = eval_.netlist();
  const std::size_t nchains = static_cast<std::size_t>(opts_.chains);

  // Deterministic per-chain seeds. Chain 0 keeps the raw seed, so one chain
  // of this schedule reproduces the historical single-chain run exactly;
  // later chains decorrelate through the SplitMix64 finalizer.
  auto seed_of = [&](std::size_t c) {
    return c == 0 ? opts_.seed
                  : util::hash_mix(opts_.seed ^
                                   (0x9e3779b97f4a7c15ull *
                                    static_cast<std::uint64_t>(c)));
  };

  // The evaluation budget splits evenly; the wall deadline is shared, since
  // the chains run concurrently against the same clock.
  util::WatchdogBudget per_chain = opts_.budget;
  if (per_chain.max_evaluations > 0) {
    per_chain.max_evaluations = std::max<std::int64_t>(
        1, per_chain.max_evaluations / opts_.chains);
  }

  // Resume: a v2 snapshot restores every chain it holds; a v1 snapshot
  // loads as chain 0. Chains without a snapshot start fresh.
  std::vector<AnnealCheckpoint> snapshots(nchains);
  if (!opts_.resume_path.empty()) {
    try {
      MultiAnnealCheckpoint mck =
          MultiAnnealCheckpoint::load(opts_.resume_path);
      MINERGY_CHECK_MSG(mck.circuit == nl.name(),
                        "anneal resume: checkpoint is for circuit '" +
                            mck.circuit + "', not '" + nl.name() + "'");
      for (std::size_t i = 0; i < mck.chains.size() && i < nchains; ++i) {
        snapshots[i] = std::move(mck.chains[i]);
      }
    } catch (const util::ParseError& e) {
      obs::counter("opt.checkpoint.resume_rejected").add();
      std::fprintf(stderr,
                   "anneal: resume snapshot rejected (%s); starting fresh\n",
                   e.what());
    }
  }

  // A cadence save from any chain rewrites the combined v2 snapshot with
  // every chain's latest position (absent entries for chains that have not
  // checkpointed yet). The mutex serializes both the slot update and the
  // file write.
  std::mutex ck_mutex;
  std::vector<AnnealCheckpoint> latest = snapshots;
  auto save_chain = [&](std::size_t c, const AnnealCheckpoint& ck) {
    std::lock_guard<std::mutex> lock(ck_mutex);
    latest[c] = ck;
    MultiAnnealCheckpoint mck;
    mck.circuit = nl.name();
    mck.chains = latest;
    mck.save(opts_.checkpoint_path);
  };

  std::vector<OptimizationResult> outcomes(nchains);
  util::global_pool().parallel_for(nchains, [&](std::size_t c) {
    ChainIo io;
    if (!snapshots[c].circuit.empty()) io.resume = &snapshots[c];
    if (!opts_.checkpoint_path.empty()) {
      io.save = [&save_chain, c](const AnnealCheckpoint& ck) {
        save_chain(c, ck);
      };
    }
    outcomes[c] = run_chain(warm_start, seed_of(c), per_chain, io);
  });

  // Winner: the best feasible energy; if no chain found a feasible state,
  // the one closest to the timing wall. Strict comparisons keep the lowest
  // chain index on ties, so the outcome is identical at any thread count.
  std::size_t win = 0;
  for (std::size_t c = 1; c < nchains; ++c) {
    const OptimizationResult& a = outcomes[c];
    const OptimizationResult& b = outcomes[win];
    const bool better =
        a.feasible != b.feasible
            ? a.feasible
            : (a.feasible ? a.energy.total() < b.energy.total()
                          : a.critical_delay < b.critical_delay);
    if (better) win = c;
  }

  std::int64_t total_evals = 0;
  for (const OptimizationResult& o : outcomes) {
    total_evals += o.circuit_evaluations;
  }
  OptimizationResult result = std::move(outcomes[win]);
  result.circuit_evaluations = static_cast<int>(total_evals);
  result.runtime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

}  // namespace minergy::opt
