#include "opt/robust_optimizer.h"

#include <chrono>
#include <sstream>
#include <utility>

#include "opt/baseline_optimizer.h"
#include "opt/joint_optimizer.h"
#include "opt/sizer.h"
#include "util/check.h"
#include "util/guard.h"

namespace minergy::opt {
namespace {

std::string describe_failure(const OptimizationResult& r) {
  std::ostringstream os;
  os << "infeasible result";
  if (r.truncated) os << " (truncated: " << r.truncation_reason << ")";
  os << " after " << r.circuit_evaluations << " evaluations";
  return os.str();
}

}  // namespace

RobustOptimizer::RobustOptimizer(const CircuitEvaluator& eval,
                                 RobustOptions options)
    : eval_(eval), opts_(std::move(options)) {}

OptimizationResult RobustOptimizer::last_resort() const {
  const auto t0 = std::chrono::steady_clock::now();
  const netlist::Netlist& nl = eval_.netlist();
  const tech::Technology& tech = eval_.technology();
  const double skew_b = opts_.joint.skew_b;
  const double limit = skew_b * eval_.cycle_time();

  // Maximum drive: highest supply, strongest threshold, widths sized to the
  // Procedure-1 budgets. If this cannot meet timing, nothing in the
  // technology's variable ranges can.
  const timing::BudgetResult budgets = eval_.budgeter().assign(
      eval_.cycle_time(), {.clock_skew_b = skew_b});
  const std::vector<double> vts_corner(nl.size(),
                                       eval_.delay_vts(tech.vts_min));
  const GateSizer sizer(eval_.delay_calculator());
  SizingResult sized =
      sizer.size(budgets.t_max, tech.vdd_max,
                 std::span<const double>(vts_corner), opts_.joint.sizing_steps);

  OptimizationResult result;
  result.tier = ResultTier::kLastResort;
  result.state.vdd = tech.vdd_max;
  result.state.vts.assign(nl.size(), tech.vts_min);
  result.state.widths = std::move(sized.widths);
  result.vdd = tech.vdd_max;
  result.vts_primary = tech.vts_min;
  result.vts_groups = {tech.vts_min};

  const timing::TimingReport report = eval_.sta(result.state, limit);
  result.critical_delay = report.critical_delay;
  result.feasible = report.critical_delay <= limit * (1.0 + 1e-9);
  result.circuit_evaluations = 1;
  if (!result.feasible) {
    throw diagnose_infeasibility(eval_, skew_b);
  }
  result.energy = eval_.energy(result.state);
  result.runtime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

OptimizationResult RobustOptimizer::run() const {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::string> notes;

  auto finish = [&](OptimizationResult r) {
    r.tier_notes = notes;
    r.runtime_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return r;
  };

  // --- Tier 0: full joint optimization -----------------------------------
  try {
    OptimizationResult r = JointOptimizer(eval_, opts_.joint).run();
    if (r.feasible) {
      r.tier = ResultTier::kJoint;
      return finish(std::move(r));
    }
    notes.push_back("joint: " + describe_failure(r));
  } catch (const util::NumericError& e) {
    notes.push_back(std::string("joint: numeric error: ") + e.what());
  } catch (const std::exception& e) {
    notes.push_back(std::string("joint: ") + e.what());
  }

  // --- Tier 1: conventional fixed-Vts flow --------------------------------
  try {
    OptimizationResult r =
        BaselineOptimizer(eval_, opts_.baseline, opts_.baseline_fixed_vts)
            .run();
    if (r.feasible) {
      r.tier = ResultTier::kBaseline;
      return finish(std::move(r));
    }
    notes.push_back("baseline: " + describe_failure(r));
  } catch (const util::NumericError& e) {
    notes.push_back(std::string("baseline: numeric error: ") + e.what());
  } catch (const std::exception& e) {
    notes.push_back(std::string("baseline: ") + e.what());
  }

  // --- Tier 2: max-drive emergency configuration --------------------------
  if (!opts_.allow_last_resort) {
    throw diagnose_infeasibility(eval_, opts_.joint.skew_b);
  }
  return finish(last_resort());
}

}  // namespace minergy::opt
