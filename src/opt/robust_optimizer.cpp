#include "opt/robust_optimizer.h"

#include <chrono>
#include <sstream>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "opt/baseline_optimizer.h"
#include "opt/joint_optimizer.h"
#include "opt/sizer.h"
#include "util/check.h"
#include "util/guard.h"

namespace minergy::opt {
namespace {

std::string describe_failure(const OptimizationResult& r) {
  std::ostringstream os;
  os << "infeasible result";
  if (r.truncated) os << " (truncated: " << r.truncation_reason << ")";
  os << " after " << r.circuit_evaluations << " evaluations";
  return os.str();
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

RobustOptimizer::RobustOptimizer(const CircuitEvaluator& eval,
                                 RobustOptions options)
    : eval_(eval), opts_(std::move(options)) {}

OptimizationResult RobustOptimizer::last_resort() const {
  const obs::Span span("robust.tier.last_resort");
  obs::counter("opt.robust.tier_attempts").add();
  const auto t0 = std::chrono::steady_clock::now();
  const netlist::Netlist& nl = eval_.netlist();
  const tech::Technology& tech = eval_.technology();
  const double skew_b = opts_.joint.skew_b;
  const double limit = skew_b * eval_.cycle_time();

  // Maximum drive: highest supply, strongest threshold, widths sized to the
  // Procedure-1 budgets. If this cannot meet timing, nothing in the
  // technology's variable ranges can.
  const timing::BudgetResult budgets = eval_.budgeter().assign(
      eval_.cycle_time(), {.clock_skew_b = skew_b});
  const std::vector<double> vts_corner(nl.size(),
                                       eval_.delay_vts(tech.vts_min));
  const GateSizer sizer(eval_.delay_calculator());
  SizingResult sized =
      sizer.size(budgets.t_max, tech.vdd_max,
                 std::span<const double>(vts_corner), opts_.joint.sizing_steps);

  OptimizationResult result;
  result.tier = ResultTier::kLastResort;
  result.report.optimizer = "last-resort";
  result.report.circuit = nl.name();
  result.state.vdd = tech.vdd_max;
  result.state.vts.assign(nl.size(), tech.vts_min);
  result.state.widths = std::move(sized.widths);
  result.vdd = tech.vdd_max;
  result.vts_primary = tech.vts_min;
  result.vts_groups = {tech.vts_min};

  const timing::TimingReport report = eval_.sta(result.state, limit);
  result.critical_delay = report.critical_delay;
  result.feasible = report.critical_delay <= limit * (1.0 + 1e-9);
  result.circuit_evaluations = 1;
  if (!result.feasible) {
    throw diagnose_infeasibility(eval_, skew_b);
  }
  result.energy = eval_.energy(result.state);
  result.runtime_seconds = seconds_since(t0);

  obs::TrajectoryPoint tp;
  tp.phase = "last-resort";
  tp.vdd = result.vdd;
  tp.vts = result.vts_primary;
  tp.energy = result.energy.total();
  tp.critical_delay = result.critical_delay;
  tp.feasible = true;
  tp.accepted = true;
  result.report.add_point(std::move(tp));
  finalize_run_report(&result);
  return result;
}

OptimizationResult RobustOptimizer::run() const {
  const obs::Span run_span("robust.run");
  obs::counter("opt.robust.runs").add();
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::string> notes;
  // Per-tier provenance for the run report: one record per tier attempted,
  // wall-clock included, failure_reason empty for the tier that answered.
  std::vector<obs::TierRecord> tiers;

  auto finish = [&](OptimizationResult r) {
    r.tier_notes = notes;
    r.runtime_seconds = seconds_since(t0);
    obs::counter("opt.robust.tier_selected").add();
    r.report.optimizer = "robust";
    r.report.tiers = std::move(tiers);
    finalize_run_report(&r);
    return r;
  };
  auto record_failure = [&](const char* tier, double started,
                            std::string reason,
                            const Certificate* cert = nullptr) {
    obs::counter(std::string("opt.robust.tier_failures.") + tier).add();
    obs::Tracer::instance().instant("tier.failed", tier);
    obs::TierRecord rec;
    rec.tier = tier;
    rec.wall_seconds = seconds_since(t0) - started;
    rec.failure_reason = std::move(reason);
    if (cert != nullptr) {
      rec.certificate_status = cert->certified ? "pass" : "fail";
      rec.certificate_detail = cert->summary();
    }
    tiers.push_back(std::move(rec));
  };
  auto record_success = [&](const char* tier, double started,
                            const Certificate* cert = nullptr) {
    obs::TierRecord rec;
    rec.tier = tier;
    rec.wall_seconds = seconds_since(t0) - started;
    rec.selected = true;
    if (cert != nullptr) {
      rec.certificate_status = cert->certified ? "pass" : "fail";
      rec.certificate_detail = cert->summary();
    }
    tiers.push_back(std::move(rec));
  };

  // Applies the test seam, then independently re-verifies a feasible tier
  // result. Returns true when the result may be returned to the caller;
  // `cert_out` carries the certificate either way (certified == true when
  // certification is disabled, with an empty detail so the TierRecord shows
  // no certificate was issued).
  auto try_certify = [&](OptimizationResult& r, const char* tier,
                         double skew_b, Certificate* cert_out) {
    if (opts_.tier_result_hook) opts_.tier_result_hook(r, tier);
    if (!opts_.certify) {
      cert_out->certified = true;
      return true;
    }
    const obs::Span span("robust.certify");
    CertifyOptions co = opts_.cert;
    co.skew_b = skew_b;
    *cert_out = Certifier(eval_, co).certify(r);
    return cert_out->certified;
  };

  // --- Tier 0: full joint optimization -----------------------------------
  if (opts_.start_tier > 0) {
    // Brownout (or an explicit caller choice): the expensive tier is
    // skipped by policy, not because it failed — record it as such so the
    // provenance trail distinguishes "degraded" from "broken".
    obs::counter("opt.robust.tier_skips").add();
    notes.push_back("joint: skipped (start_tier=" +
                    std::to_string(opts_.start_tier) + ")");
    record_failure("joint", seconds_since(t0), "skipped (start_tier)");
  } else {
    const obs::Span span("robust.tier.joint");
    obs::counter("opt.robust.tier_attempts").add();
    const double started = seconds_since(t0);
    try {
      OptimizationResult r = JointOptimizer(eval_, opts_.joint).run();
      if (r.feasible) {
        r.tier = ResultTier::kJoint;
        Certificate cert;
        if (try_certify(r, "joint", opts_.joint.skew_b, &cert)) {
          record_success("joint", started, opts_.certify ? &cert : nullptr);
          return finish(std::move(r));
        }
        notes.push_back("joint: " + cert.summary());
        record_failure("joint", started, cert.summary(), &cert);
      } else {
        notes.push_back("joint: " + describe_failure(r));
        record_failure("joint", started, describe_failure(r));
      }
    } catch (const util::NumericError& e) {
      notes.push_back(std::string("joint: numeric error: ") + e.what());
      record_failure("joint", started,
                     std::string("numeric error: ") + e.what());
    } catch (const std::exception& e) {
      notes.push_back(std::string("joint: ") + e.what());
      record_failure("joint", started, e.what());
    }
  }

  // --- Tier 1: conventional fixed-Vts flow --------------------------------
  if (opts_.start_tier > 1) {
    obs::counter("opt.robust.tier_skips").add();
    notes.push_back("baseline: skipped (start_tier=" +
                    std::to_string(opts_.start_tier) + ")");
    record_failure("baseline", seconds_since(t0), "skipped (start_tier)");
  } else {
    const obs::Span span("robust.tier.baseline");
    obs::counter("opt.robust.tier_attempts").add();
    const double started = seconds_since(t0);
    try {
      OptimizationResult r =
          BaselineOptimizer(eval_, opts_.baseline, opts_.baseline_fixed_vts)
              .run();
      if (r.feasible) {
        r.tier = ResultTier::kBaseline;
        Certificate cert;
        if (try_certify(r, "baseline", opts_.baseline.skew_b, &cert)) {
          record_success("baseline", started, opts_.certify ? &cert : nullptr);
          return finish(std::move(r));
        }
        notes.push_back("baseline: " + cert.summary());
        record_failure("baseline", started, cert.summary(), &cert);
      } else {
        notes.push_back("baseline: " + describe_failure(r));
        record_failure("baseline", started, describe_failure(r));
      }
    } catch (const util::NumericError& e) {
      notes.push_back(std::string("baseline: numeric error: ") + e.what());
      record_failure("baseline", started,
                     std::string("numeric error: ") + e.what());
    } catch (const std::exception& e) {
      notes.push_back(std::string("baseline: ") + e.what());
      record_failure("baseline", started, e.what());
    }
  }

  // --- Tier 2: max-drive emergency configuration --------------------------
  if (!opts_.allow_last_resort) {
    throw diagnose_infeasibility(eval_, opts_.joint.skew_b);
  }
  const double started = seconds_since(t0);
  OptimizationResult r = last_resort();
  r.tier = ResultTier::kLastResort;
  Certificate cert;
  if (try_certify(r, "last-resort", opts_.joint.skew_b, &cert)) {
    record_success("last-resort", started, opts_.certify ? &cert : nullptr);
  } else {
    // Nothing left to degrade to: return the max-drive answer anyway, with
    // the failed certificate on record so downstream consumers (batch
    // runner, CI) can refuse it.
    obs::counter("opt.robust.uncertified_returns").add();
    notes.push_back("last-resort: " + cert.summary());
    record_success("last-resort", started, &cert);
  }
  return finish(std::move(r));
}

}  // namespace minergy::opt
