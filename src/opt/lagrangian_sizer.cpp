#include "opt/lagrangian_sizer.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "timing/sta.h"
#include "util/check.h"
#include "util/search.h"

namespace minergy::opt {

LagrangianSizer::LagrangianSizer(const timing::DelayCalculator& calc,
                                 const power::EnergyModel& energy,
                                 LagrangianOptions options)
    : calc_(calc), energy_(energy), opts_(options) {
  MINERGY_CHECK(opts_.iterations >= 1);
  MINERGY_CHECK(opts_.width_steps >= 4);
  MINERGY_CHECK(opts_.step > 0.0);
}

LagrangianResult LagrangianSizer::size(double vdd,
                                       std::span<const double> vts,
                                       double cycle_limit,
                                       util::Watchdog* watchdog) const {
  obs::counter("opt.lagrangian.size_calls").add();
  static obs::Counter& c_iters = obs::counter("opt.lagrangian.iterations");
  const netlist::Netlist& nl = calc_.netlist();
  const tech::Technology& tech = calc_.device().technology();
  MINERGY_CHECK(vts.size() == nl.size());
  MINERGY_CHECK(cycle_limit > 0.0);

  std::vector<double> widths(nl.size(), 4.0);
  timing::TimingReport report =
      timing::run_sta(calc_, widths, vdd, vts, cycle_limit);

  // Multiplier scale commensurate with the energy/delay magnitudes.
  double e0 = 0.0, d0 = 0.0;
  for (netlist::GateId id : nl.combinational()) {
    e0 += energy_.gate_energy(id, widths, vdd, vts[id]).total();
    d0 += report.gate_delay[id];
  }
  const double n = static_cast<double>(nl.num_combinational());
  const double mu0 =
      opts_.initial_mu_scale * (e0 / std::max(d0, 1e-30));
  std::vector<double> mu(nl.size(), mu0 / std::max(n, 1.0));

  LagrangianResult best;
  best.energy = std::numeric_limits<double>::infinity();
  LagrangianResult last;

  // Feasibility pushes: if the subgradient schedule has not produced a
  // feasible iterate by the end of a round, boost every multiplier (making
  // delay dominate the relaxed objective) and run another round.
  const int max_rounds = 4;
  bool out_of_budget = false;
  for (int round = 0; round < max_rounds && !out_of_budget; ++round) {
    if (round > 0) {
      if (best.feasible) break;
      for (double& m : mu) m = std::min(m * 10.0, 1e6 * mu0);
    }
  for (int iter = 0; iter < opts_.iterations; ++iter) {
    if (watchdog && watchdog->note_evaluation()) {
      out_of_budget = true;
      break;
    }
    c_iters.add();
    // --- Inner: coordinate-wise minimization of E + sum mu*d -------------
    for (netlist::GateId id : nl.combinational()) {
      const netlist::Gate& g = nl.gate(id);
      double slope_in = 0.0;
      for (netlist::GateId f : g.fanins) {
        slope_in = std::max(slope_in, report.gate_delay[f]);
      }
      // Fanins' slope inputs (independent of w_i).
      struct FaninCtx {
        netlist::GateId id;
        double slope_in;
      };
      std::vector<FaninCtx> fanins;
      for (netlist::GateId f : g.fanins) {
        if (!netlist::is_combinational(nl.gate(f).type)) continue;
        double s = 0.0;
        for (netlist::GateId ff : nl.gate(f).fanins) {
          s = std::max(s, report.gate_delay[ff]);
        }
        fanins.push_back({f, s});
      }

      auto local_cost = [&](double w) {
        widths[id] = w;
        double cost = energy_.gate_energy(id, widths, vdd, vts[id]).total();
        cost += mu[id] * calc_.gate_delay(id, widths, vdd, vts[id], slope_in);
        for (const FaninCtx& f : fanins) {
          // The fanin's energy term carries the w_i * cin load it drives,
          // and its mu-weighted delay slows with the same load.
          cost += energy_.gate_energy(f.id, widths, vdd, vts[f.id]).total();
          cost += mu[f.id] *
                  calc_.gate_delay(f.id, widths, vdd, vts[f.id], f.slope_in);
        }
        return cost;
      };
      const double w_best = util::golden_section_min(
          tech.w_min, tech.w_max, opts_.width_steps, local_cost);
      widths[id] = w_best;
    }

    // --- Outer: measure, record, update multipliers ----------------------
    report = timing::run_sta(calc_, widths, vdd, vts, cycle_limit);
    double energy = 0.0;
    for (netlist::GateId id : nl.combinational()) {
      energy += energy_.gate_energy(id, widths, vdd, vts[id]).total();
    }
    last.widths = widths;
    last.critical_delay = report.critical_delay;
    last.energy = energy;
    last.feasible = report.critical_delay <= cycle_limit * (1.0 + 1e-9);
    last.iterations_used = iter + 1;
    if (last.feasible && energy < best.energy) best = last;

    // Subgradient on per-gate path criticality c_i = (T - slack_i)/T.
    for (netlist::GateId id : nl.combinational()) {
      const double c = (cycle_limit - report.slack[id]) / cycle_limit;
      mu[id] *= std::exp(opts_.step * (c - 1.0));
      mu[id] = std::clamp(mu[id], 1e-12 * mu0, 1e6 * mu0);
    }
    // Global correction toward the constraint boundary.
    const double ratio = report.critical_delay / cycle_limit;
    const double scale = std::pow(ratio, 2.0 * opts_.step);
    for (netlist::GateId id : nl.combinational()) mu[id] *= scale;
  }
  }

  LagrangianResult& result = best.feasible ? best : last;
  result.truncated = out_of_budget;
  return result;  // best feasible iterate, else the closest attempt
}

}  // namespace minergy::opt
