// Optimizer checkpoint payloads (see util/checkpoint.h for the envelope).
//
// Two snapshot formats, both JSON, both written atomically and restored
// bit-exactly:
//
//   minergy.anneal_checkpoint.v1 — the full mid-anneal position: pass/move
//   indices, current and global-best states, costs, the RNG stream state
//   (util::RngState, so the move sequence continues exactly where it
//   stopped) and the partial RunReport trajectory.
//
//   minergy.anneal_checkpoint.v2 — the multi-chain extension: an array of
//   per-chain v1 payloads (absent chains allowed, so a snapshot taken while
//   some chains had not yet checkpointed still resumes the others). A v1
//   file still loads, as a single chain.
//
//   minergy.joint_checkpoint.v1 — the Procedure-2 sweep position after a
//   completed outer Vdd step: the next step index, the surviving Vdd
//   bracket, the "energy decreased" reference, the best probe so far and
//   the partial RunReport. The refine/multi-Vt phases re-run on resume
//   (they are deterministic given the sweep result).
//
// Doubles round-trip exactly (%.17g); non-finite costs are encoded as the
// strings "inf"/"-inf"/"nan" since JSON has no literals for them. RNG words
// are hex strings (64-bit integers do not survive a double).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/report.h"
#include "opt/circuit_state.h"
#include "power/energy_model.h"
#include "util/rng.h"

namespace minergy::opt {

inline constexpr const char kAnnealCheckpointSchema[] =
    "minergy.anneal_checkpoint.v1";
inline constexpr const char kAnnealCheckpointSchemaV2[] =
    "minergy.anneal_checkpoint.v2";
inline constexpr const char kJointCheckpointSchema[] =
    "minergy.joint_checkpoint.v1";

struct AnnealCheckpoint {
  std::string circuit;
  int pass = 0;  // pass to continue in
  int move = 0;  // next move index within that pass
  double temperature = 0.0;
  CircuitState current;
  double current_cost = 0.0;  // may be +inf (numeric-rejected state)
  CircuitState global_best;
  double global_best_cost = 0.0;
  double global_best_crit = 0.0;
  double global_best_energy = 0.0;
  std::int64_t evaluations = 0;  // circuit evaluations spent so far
  util::RngState rng;
  obs::RunReport report;  // trajectory recorded so far

  void save(const std::string& path) const;  // atomic write-rename
  // Throws util::ParseError on a missing/torn/mismatched file.
  static AnnealCheckpoint load(const std::string& path);
};

// Multi-chain anneal snapshot (schema v2). `chains[i]` is chain i's v1
// snapshot; an entry whose `circuit` is empty means that chain had not
// checkpointed yet when the snapshot was taken (it restarts fresh on
// resume). load() also accepts a v1 file, returning it as a single chain.
struct MultiAnnealCheckpoint {
  std::string circuit;
  std::vector<AnnealCheckpoint> chains;

  void save(const std::string& path) const;  // always writes v2
  // Throws util::ParseError on a missing/torn/mismatched file.
  static MultiAnnealCheckpoint load(const std::string& path);
};

struct JointCheckpoint {
  std::string circuit;
  int next_step = 0;  // next outer Vdd iteration of the nested sweep
  double vdd_lo = 0.0, vdd_hi = 0.0;
  double prev_total = 0.0;  // "total energy decreased" reference (may be inf)
  bool has_best = false;
  CircuitState best_state;
  power::EnergyBreakdown best_energy;
  double best_critical_delay = 0.0;
  bool best_feasible = false;
  std::int64_t evaluations = 0;
  obs::RunReport report;

  void save(const std::string& path) const;
  static JointCheckpoint load(const std::string& path);
};

}  // namespace minergy::opt
