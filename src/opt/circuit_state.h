// The optimization variables of the power-minimization problem (Section 2):
// one global supply voltage, a threshold voltage per gate (the paper's n_v
// distinct values appear as repeated entries), and a width per gate.
#pragma once

#include <vector>

#include "netlist/netlist.h"

namespace minergy::opt {

struct CircuitState {
  double vdd = 0.0;
  std::vector<double> vts;     // per gate id (V)
  std::vector<double> widths;  // per gate id (multiples of F)

  static CircuitState uniform(const netlist::Netlist& nl, double vdd,
                              double vts, double width) {
    CircuitState s;
    s.vdd = vdd;
    s.vts.assign(nl.size(), vts);
    s.widths.assign(nl.size(), width);
    return s;
  }

  bool empty() const { return vts.empty(); }
};

}  // namespace minergy::opt
