#include "opt/yield.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"
#include "util/stats.h"

namespace minergy::opt {

YieldAnalyzer::YieldAnalyzer(const CircuitEvaluator& eval,
                             YieldOptions options)
    : eval_(eval), opts_(options) {
  MINERGY_CHECK(opts_.samples >= 1);
  MINERGY_CHECK(opts_.sigma_gate >= 0.0);
  MINERGY_CHECK(opts_.sigma_die >= 0.0);
}

YieldResult YieldAnalyzer::analyze(const CircuitState& state) const {
  const netlist::Netlist& nl = eval_.netlist();
  MINERGY_CHECK(state.vts.size() == nl.size());
  const tech::Technology& tech = eval_.technology();
  const double limit = opts_.skew_b * eval_.cycle_time();

  util::Rng rng(opts_.seed);
  util::RunningStats delay_stats, energy_stats, leak_stats;
  std::vector<double> delays, energies, leaks;
  delays.reserve(static_cast<std::size_t>(opts_.samples));
  energies.reserve(static_cast<std::size_t>(opts_.samples));
  leaks.reserve(static_cast<std::size_t>(opts_.samples));

  YieldResult result;
  result.samples = opts_.samples;

  std::vector<double> vts(nl.size());
  for (int s = 0; s < opts_.samples; ++s) {
    const double die_shift = rng.normal(0.0, opts_.sigma_die);
    for (netlist::GateId id : nl.combinational()) {
      // Thresholds cannot drop below the physical floor; clamp into the
      // model's validity range rather than folding the distribution.
      vts[id] = std::clamp(
          state.vts[id] + die_shift + rng.normal(0.0, opts_.sigma_gate),
          0.02, tech.vts_max + 0.2);
    }
    const timing::TimingReport sta =
        timing::run_sta(eval_.delay_calculator(), state.widths, state.vdd,
                        std::span<const double>(vts), limit);
    power::EnergyBreakdown energy;
    for (netlist::GateId id : nl.combinational()) {
      energy += eval_.energy_model().gate_energy(id, state.widths, state.vdd,
                                                 vts[id]);
    }
    if (sta.critical_delay <= limit * (1.0 + 1e-9)) ++result.timing_pass;
    delay_stats.add(sta.critical_delay);
    energy_stats.add(energy.total());
    leak_stats.add(energy.static_energy);
    delays.push_back(sta.critical_delay);
    energies.push_back(energy.total());
    leaks.push_back(energy.static_energy);
  }

  result.timing_yield = static_cast<double>(result.timing_pass) /
                        static_cast<double>(result.samples);
  result.mean_delay = delay_stats.mean();
  result.mean_energy = energy_stats.mean();
  result.mean_leakage = leak_stats.mean();
  result.p95_delay = util::quantile(delays, 0.95);
  result.p95_energy = util::quantile(energies, 0.95);
  result.p95_leakage = util::quantile(leaks, 0.95);
  std::sort(energies.begin(), energies.end());
  result.energy_samples = std::move(energies);
  return result;
}

}  // namespace minergy::opt
