// Memoization for the evaluation hot path.
//
// Procedure 2's nested (Vdd, Vts) binary search re-probes identical operating
// points across iterations: the refine step re-evaluates the sweep's best
// point, the multi-Vt assignment re-runs STA on the incumbent state, and the
// annealing optimizer revisits rejected states. The convexity of the energy
// surface in the probed region (see PAPERS.md, Energy/Frequency Convexity
// Rule) means those repeats are exact, not approximate — so a lookup keyed on
// the full operating point returns a value bit-identical to recomputation,
// and caching cannot change any optimizer trajectory, only its wall-clock.
//
// Keys are a pair of independent 64-bit digests (chained SplitMix64 over the
// raw bit patterns of Vdd, the Vts vector and the widths vector, plus the
// cycle limit for STA lookups). A false hit needs both digests to collide on
// the same bucket (~2^-128); there is no value comparison on hit.
//
// Thread-safety: every public method takes an internal mutex, so concurrent
// annealing chains may share one evaluator. Certification bypasses the cache
// entirely (EvalCacheBypass) so a certificate never depends on cached state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <span>
#include <unordered_map>

namespace minergy::opt {

// Digest of one full operating point. Default-constructed digests compare
// unequal to any digest of real data only probabilistically — always build
// via EvalKey::of.
struct EvalKey {
  std::uint64_t a = 0;
  std::uint64_t b = 0;

  bool operator==(const EvalKey& other) const {
    return a == other.a && b == other.b;
  }

  // Digests (vdd, vts[], widths[], extra). `extra` folds in any additional
  // scalar the cached computation depends on (the STA cycle limit); pass 0.0
  // when there is none.
  static EvalKey of(double vdd, std::span<const double> vts,
                    std::span<const double> widths, double extra);
};

struct EvalKeyHash {
  std::size_t operator()(const EvalKey& k) const {
    return static_cast<std::size_t>(k.a ^ (k.b >> 1));
  }
};

// Mutex-protected LRU map from EvalKey to a value type. Hit/miss/evict
// traffic is reported through the shared opt.eval.cache.* counters.
template <typename Value>
class EvalCache {
 public:
  explicit EvalCache(std::size_t capacity) : capacity_(capacity) {}

  // Returns true and copies the value on a hit (also refreshing LRU order).
  bool lookup(const EvalKey& key, Value* out);

  // Inserts or refreshes; evicts the least recently used entry beyond
  // capacity.
  void insert(const EvalKey& key, const Value& value);

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
  }

 private:
  using Entry = std::pair<EvalKey, Value>;
  using List = std::list<Entry>;

  std::size_t capacity_;
  mutable std::mutex mutex_;
  List lru_;  // front = most recent
  std::unordered_map<EvalKey, typename List::iterator, EvalKeyHash> map_;
};

// Global switch, default on. Cached values are bit-identical to fresh
// computation, so this only affects wall-clock and the obs counters; the
// --eval-cache=0 flag exists for the speedup baseline and for debugging.
void set_eval_cache_enabled(bool enabled);
bool eval_cache_enabled();

// Scoped, thread-local bypass: while alive on this thread, evaluator lookups
// and inserts are skipped regardless of the global switch. The certifier
// holds one across certify() so certificates are always recomputed from
// scratch.
class EvalCacheBypass {
 public:
  EvalCacheBypass();
  ~EvalCacheBypass();
  EvalCacheBypass(const EvalCacheBypass&) = delete;
  EvalCacheBypass& operator=(const EvalCacheBypass&) = delete;
};

// True when caching applies on this thread right now (global switch on and
// no bypass in scope). Internal predicate for the evaluator.
bool eval_cache_active();

// Counter taps shared by every cache instance (declared here so the template
// can report without pulling obs headers into this header).
namespace detail {
void note_cache_hit();
void note_cache_miss();
void note_cache_evict();
}  // namespace detail

template <typename Value>
bool EvalCache<Value>::lookup(const EvalKey& key, Value* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    detail::note_cache_miss();
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *out = it->second->second;
  detail::note_cache_hit();
  return true;
}

template <typename Value>
void EvalCache<Value>::insert(const EvalKey& key, const Value& value) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->second = value;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, value);
  map_.emplace(key, lru_.begin());
  if (map_.size() > capacity_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
    detail::note_cache_evict();
  }
}

}  // namespace minergy::opt
