#include "opt/checkpoint.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/checkpoint.h"
#include "util/json.h"

namespace minergy::opt {
namespace {

using util::JsonValue;
using util::JsonWriter;

// JSON has no literals for non-finite doubles (JsonWriter emits null), so
// costs that can legitimately be infinite are written as marker strings.
void write_extended(JsonWriter& w, double d) {
  if (std::isfinite(d)) {
    w.value(d);
  } else if (std::isnan(d)) {
    w.value("nan");
  } else {
    w.value(d > 0 ? "inf" : "-inf");
  }
}

double read_extended(const JsonValue& v) {
  if (v.is_number()) return v.as_number();
  const std::string& s = v.as_string();
  if (s == "inf") return std::numeric_limits<double>::infinity();
  if (s == "-inf") return -std::numeric_limits<double>::infinity();
  if (s == "nan") return std::numeric_limits<double>::quiet_NaN();
  throw util::ParseError("bad extended double '" + s + "'", "<checkpoint>", 0);
}

void write_state(JsonWriter& w, const CircuitState& s) {
  w.begin_object();
  w.kv("vdd", s.vdd);
  w.key("vts").begin_array();
  for (double v : s.vts) w.value(v);
  w.end_array();
  w.key("widths").begin_array();
  for (double v : s.widths) w.value(v);
  w.end_array();
  w.end_object();
}

CircuitState read_state(const JsonValue& v) {
  CircuitState s;
  s.vdd = v.at("vdd").as_number();
  for (const JsonValue& x : v.at("vts").items()) s.vts.push_back(x.as_number());
  for (const JsonValue& x : v.at("widths").items()) {
    s.widths.push_back(x.as_number());
  }
  return s;
}

void write_rng(JsonWriter& w, const util::RngState& s) {
  w.begin_object();
  w.key("words").begin_array();
  for (std::uint64_t word : s.words) {
    char buf[20];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(word));
    w.value(buf);
  }
  w.end_array();
  w.kv("have_spare_normal", s.have_spare_normal);
  w.kv("spare_normal", s.spare_normal);
  w.end_object();
}

util::RngState read_rng(const JsonValue& v) {
  util::RngState s;
  const auto& words = v.at("words").items();
  MINERGY_CHECK(words.size() == s.words.size());
  for (std::size_t i = 0; i < s.words.size(); ++i) {
    s.words[i] = std::strtoull(words[i].as_string().c_str(), nullptr, 16);
  }
  s.have_spare_normal = v.get_bool("have_spare_normal", false);
  s.spare_normal = v.get_number("spare_normal", 0.0);
  return s;
}

// The RunReport already serializes itself; parse + re-emit embeds it as a
// JSON object instead of an escaped string.
void write_report(JsonWriter& w, const obs::RunReport& report) {
  util::emit(w, JsonValue::parse(report.to_json(0), "<report>"));
}

obs::RunReport read_report(const JsonValue& payload, const std::string& path) {
  if (!payload.has("report")) return {};
  JsonWriter w(0);
  util::emit(w, payload.at("report"));
  return obs::RunReport::from_json(w.str(), path);
}

// A checkpoint that cannot land (full disk, flaky storage) loses
// resumability, not correctness — the run itself is unaffected. Swallow the
// typed storage error so an in-flight anneal survives ENOSPC, and leave a
// counter + stderr trail so the loss is visible.
void save_or_warn(const std::string& path, const std::string& schema,
                  const std::string& payload_json) {
  try {
    util::Checkpoint::save(path, schema, payload_json);
  } catch (const io::IoError& e) {
    static obs::Counter& failed = obs::counter("opt.checkpoint.save_failed");
    failed.add();
    std::fprintf(stderr, "checkpoint: snapshot not saved: %s\n", e.what());
  }
}

// One anneal chain's full payload object — the v1 document body, also
// embedded per chain inside the v2 multi-chain array.
void write_anneal_payload(JsonWriter& w, const AnnealCheckpoint& ck) {
  w.begin_object();
  w.kv("circuit", ck.circuit);
  w.kv("pass", ck.pass).kv("move", ck.move);
  w.kv("temperature", ck.temperature);
  w.key("current");
  write_state(w, ck.current);
  w.key("current_cost");
  write_extended(w, ck.current_cost);
  w.key("global_best");
  write_state(w, ck.global_best);
  w.key("global_best_cost");
  write_extended(w, ck.global_best_cost);
  w.key("global_best_crit");
  write_extended(w, ck.global_best_crit);
  w.key("global_best_energy");
  write_extended(w, ck.global_best_energy);
  w.kv("evaluations", ck.evaluations);
  w.key("rng");
  write_rng(w, ck.rng);
  w.key("report");
  write_report(w, ck.report);
  w.end_object();
}

AnnealCheckpoint read_anneal_payload(const JsonValue& p,
                                     const std::string& path) {
  AnnealCheckpoint ck;
  ck.circuit = p.get_string("circuit", "");
  ck.pass = static_cast<int>(p.get_number("pass", 0.0));
  ck.move = static_cast<int>(p.get_number("move", 0.0));
  ck.temperature = p.get_number("temperature", 0.0);
  ck.current = read_state(p.at("current"));
  ck.current_cost = read_extended(p.at("current_cost"));
  ck.global_best = read_state(p.at("global_best"));
  ck.global_best_cost = read_extended(p.at("global_best_cost"));
  ck.global_best_crit = read_extended(p.at("global_best_crit"));
  ck.global_best_energy = read_extended(p.at("global_best_energy"));
  ck.evaluations = static_cast<std::int64_t>(p.get_number("evaluations", 0.0));
  ck.rng = read_rng(p.at("rng"));
  ck.report = read_report(p, path);
  return ck;
}

}  // namespace

void AnnealCheckpoint::save(const std::string& path) const {
  JsonWriter w(0);
  write_anneal_payload(w, *this);
  save_or_warn(path, kAnnealCheckpointSchema, w.str());
}

AnnealCheckpoint AnnealCheckpoint::load(const std::string& path) {
  const JsonValue p = util::Checkpoint::load(path, kAnnealCheckpointSchema);
  return read_anneal_payload(p, path);
}

void MultiAnnealCheckpoint::save(const std::string& path) const {
  JsonWriter w(0);
  w.begin_object();
  w.kv("circuit", circuit);
  w.key("chains").begin_array();
  for (const AnnealCheckpoint& ck : chains) {
    w.begin_object();
    const bool present = !ck.circuit.empty();
    w.kv("present", present);
    if (present) {
      w.key("snapshot");
      write_anneal_payload(w, ck);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  save_or_warn(path, kAnnealCheckpointSchemaV2, w.str());
}

MultiAnnealCheckpoint MultiAnnealCheckpoint::load(const std::string& path) {
  try {
    const JsonValue p =
        util::Checkpoint::load(path, kAnnealCheckpointSchemaV2);
    MultiAnnealCheckpoint mck;
    mck.circuit = p.get_string("circuit", "");
    for (const JsonValue& c : p.at("chains").items()) {
      if (c.get_bool("present", false)) {
        mck.chains.push_back(read_anneal_payload(c.at("snapshot"), path));
      } else {
        mck.chains.emplace_back();  // empty circuit = absent
      }
    }
    return mck;
  } catch (const util::ParseError&) {
    // Not a v2 file (or torn): fall through to the v1 reader, which rethrows
    // its own ParseError when the file is genuinely bad.
  }
  MultiAnnealCheckpoint mck;
  mck.chains.push_back(AnnealCheckpoint::load(path));
  mck.circuit = mck.chains.front().circuit;
  return mck;
}

void JointCheckpoint::save(const std::string& path) const {
  JsonWriter w(0);
  w.begin_object();
  w.kv("circuit", circuit);
  w.kv("next_step", next_step);
  w.kv("vdd_lo", vdd_lo).kv("vdd_hi", vdd_hi);
  w.key("prev_total");
  write_extended(w, prev_total);
  w.kv("has_best", has_best);
  if (has_best) {
    w.key("best_state");
    write_state(w, best_state);
    w.kv("best_static", best_energy.static_energy);
    w.kv("best_dynamic", best_energy.dynamic_energy);
    w.kv("best_short_circuit", best_energy.short_circuit_energy);
    w.kv("best_critical_delay", best_critical_delay);
    w.kv("best_feasible", best_feasible);
  }
  w.kv("evaluations", evaluations);
  w.key("report");
  write_report(w, report);
  w.end_object();
  save_or_warn(path, kJointCheckpointSchema, w.str());
}

JointCheckpoint JointCheckpoint::load(const std::string& path) {
  const JsonValue p = util::Checkpoint::load(path, kJointCheckpointSchema);
  JointCheckpoint ck;
  ck.circuit = p.get_string("circuit", "");
  ck.next_step = static_cast<int>(p.get_number("next_step", 0.0));
  ck.vdd_lo = p.get_number("vdd_lo", 0.0);
  ck.vdd_hi = p.get_number("vdd_hi", 0.0);
  ck.prev_total = read_extended(p.at("prev_total"));
  ck.has_best = p.get_bool("has_best", false);
  if (ck.has_best) {
    ck.best_state = read_state(p.at("best_state"));
    ck.best_energy.static_energy = p.get_number("best_static", 0.0);
    ck.best_energy.dynamic_energy = p.get_number("best_dynamic", 0.0);
    ck.best_energy.short_circuit_energy =
        p.get_number("best_short_circuit", 0.0);
    ck.best_critical_delay = p.get_number("best_critical_delay", 0.0);
    ck.best_feasible = p.get_bool("best_feasible", false);
  }
  ck.evaluations = static_cast<std::int64_t>(p.get_number("evaluations", 0.0));
  ck.report = read_report(p, path);
  return ck;
}

}  // namespace minergy::opt
