// Procedure 2: joint (Vdd, Vts, widths) minimization of total energy under
// the cycle-time constraint.
//
// Outer binary search on the global supply voltage, middle binary search on
// the threshold voltage(s), inner per-gate minimum-width search against the
// Procedure-1 delay budgets. Search directions follow the paper: a probe
// that meets timing *and* lowers the best total energy seen so far sends
// Vdd LOWER and Vts HIGHER; anything else reverses the half-interval. The
// best evaluated state (verified by full STA) is returned.
//
// Extensions beyond the paper's pseudocode, all optional:
//  * best-seen tracking (never return a worse point than one already seen),
//  * golden-section refinement around the discrete solution,
//  * n_v > 1 threshold groups assigned by timing slack.
#pragma once

#include "opt/evaluator.h"
#include "opt/result.h"

namespace minergy::opt {

class JointOptimizer {
 public:
  JointOptimizer(const CircuitEvaluator& eval, OptimizerOptions options = {});

  // Runs Procedure 2 under the options' watchdog budget. When the budget is
  // exhausted mid-search the best state seen so far is returned with
  // `truncated` set (never an unbounded run); numeric corruption inside the
  // models surfaces as util::NumericError from the evaluator boundary.
  OptimizationResult run() const;

 private:
  struct Probe {
    CircuitState state;
    power::EnergyBreakdown energy;
    double critical_delay = 0.0;
    bool feasible = false;
    // Index of this probe's entry in the run's trajectory (-1 when the
    // recorder was absent); accept sites flip its `accepted` flag.
    int traj = -1;
  };

  // Watchdog + telemetry context threaded through every probe. `phase`
  // labels the trajectory points and must outlive the probe calls (string
  // literals at the call sites).
  struct ProbeCtx {
    util::Watchdog* dog = nullptr;
    obs::RunReport* report = nullptr;
    const char* phase = "sweep";
  };

  // Budget-driven sizing + STA + energy at a uniform (vdd, vts).
  Probe probe_uniform(double vdd, double vts,
                      const timing::BudgetResult& budgets,
                      const ProbeCtx& ctx) const;
  // Same with a per-gate threshold vector (multi-Vt mode).
  Probe probe(double vdd, const std::vector<double>& vts,
              const timing::BudgetResult& budgets, const ProbeCtx& ctx) const;

  void refine(const timing::BudgetResult& budgets, Probe* best,
              ProbeCtx ctx) const;
  void assign_threshold_groups(const timing::BudgetResult& budgets,
                               Probe* best, OptimizationResult* result,
                               ProbeCtx ctx) const;

  const CircuitEvaluator& eval_;
  OptimizerOptions opts_;
};

}  // namespace minergy::opt
