#include "opt/variation.h"

#include "opt/baseline_optimizer.h"
#include "opt/evaluator.h"
#include "opt/joint_optimizer.h"
#include "util/check.h"

namespace minergy::opt {

VariationAnalyzer::VariationAnalyzer(const netlist::Netlist& nl,
                                     const tech::Technology& tech,
                                     const activity::ActivityProfile& profile,
                                     double clock_frequency,
                                     OptimizerOptions options)
    : nl_(nl),
      tech_(tech),
      profile_(profile),
      fc_(clock_frequency),
      opts_(options) {}

std::vector<VariationPoint> VariationAnalyzer::sweep(
    const std::vector<double>& tolerances) const {
  // Nominal Table-1 reference.
  const CircuitEvaluator nominal(nl_, tech_, profile_,
                                 {.clock_frequency = fc_, .vts_tolerance = 0.0});
  const OptimizationResult baseline = BaselineOptimizer(nominal, opts_).run();
  MINERGY_CHECK_MSG(baseline.feasible,
                    "baseline infeasible; scale the cycle time first");

  std::vector<VariationPoint> out;
  for (double tol : tolerances) {
    MINERGY_CHECK(tol >= 0.0 && tol < 1.0);
    const CircuitEvaluator corner(
        nl_, tech_, profile_,
        {.clock_frequency = fc_, .vts_tolerance = tol});
    VariationPoint p;
    p.tolerance = tol;
    p.joint = JointOptimizer(corner, opts_).run();
    p.baseline_energy = baseline.energy.total();
    p.savings = p.joint.feasible
                    ? p.baseline_energy / p.joint.energy.total()
                    : 0.0;
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace minergy::opt
