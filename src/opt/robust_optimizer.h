// Graceful-degradation wrapper around the optimization stack.
//
// A production flow cannot afford to crash (or hang, or return NaN) because
// one netlist sits in an ill-conditioned corner of the cost surface. The
// RobustOptimizer walks a fallback chain, each tier cheaper and more
// conservative than the last, and records in the result which tier produced
// the answer and why the earlier tiers failed:
//
//   tier 0  joint        Procedure-2 joint (Vdd, Vts, w) optimization,
//                        bounded by the tier's watchdog budget
//   tier 1  baseline     conventional fixed-Vts flow (nominal threshold),
//                        a much smaller, better-conditioned search
//   tier 2  last resort  maximum drive: vdd_max, strongest threshold,
//                        budget-driven sizing — the "just make timing"
//                        configuration, energy-optimal in nothing
//
// A tier is rejected when it throws (util::NumericError from the evaluator
// boundary, or any std::exception) or returns an infeasible result; a
// truncated-but-feasible result is accepted (the flag rides along). If even
// maximum drive cannot meet timing, run() throws util::InfeasibleError
// carrying the requested limit, the best achievable critical-path delay and
// the limiting path's endpoint gate (see diagnose_infeasibility).
#pragma once

#include <functional>

#include "opt/certifier.h"
#include "opt/evaluator.h"
#include "opt/result.h"

namespace minergy::opt {

struct RobustOptions {
  // Tier-0 settings, including its watchdog budget.
  OptimizerOptions joint{};
  // Tier-1 settings; fixed_vts < 0 selects the technology's nominal_vts.
  OptimizerOptions baseline{};
  double baseline_fixed_vts = -1.0;
  // When false, an infeasible tier 1 throws instead of falling through to
  // the max-drive configuration.
  bool allow_last_resort = true;

  // First tier to attempt: 0 = joint, 1 = baseline, 2 = last resort. The
  // service's brownout controller raises this under overload so a degraded
  // daemon spends less fidelity per job — skipped tiers are recorded in the
  // run report as "skipped (start_tier)" rather than silently absent.
  int start_tier = 0;

  // Independent certification (opt/certifier.h) of every feasible tier
  // result before it is returned: an uncertified answer counts as a tier
  // failure and the chain advances, so a buggy fast tier can never outrank
  // a correct slower one. The per-tier skew_b overrides cert.skew_b. An
  // uncertified *last-resort* result is still returned (there is nothing
  // left to degrade to) with the failed certificate on record.
  bool certify = true;
  CertifyOptions cert{};

  // Test seam: applied to each tier's feasible result just before
  // certification. Fault-injection tests corrupt results here to prove the
  // certifier catches them (see fault::result_fault_catalog). Null in
  // production.
  std::function<void(OptimizationResult&, const char* tier)> tier_result_hook;
};

class RobustOptimizer {
 public:
  explicit RobustOptimizer(const CircuitEvaluator& eval,
                           RobustOptions options = {});

  // Never propagates model/numeric/budget failures from the inner tiers;
  // the only exception it throws is util::InfeasibleError when no tier can
  // meet the cycle-time constraint at all.
  OptimizationResult run() const;

 private:
  // Tier 2: vdd_max / vts_min / budget-driven sizing. Feasible-or-throws.
  OptimizationResult last_resort() const;

  const CircuitEvaluator& eval_;
  RobustOptions opts_;
};

}  // namespace minergy::opt
