// Graceful-degradation wrapper around the optimization stack.
//
// A production flow cannot afford to crash (or hang, or return NaN) because
// one netlist sits in an ill-conditioned corner of the cost surface. The
// RobustOptimizer walks a fallback chain, each tier cheaper and more
// conservative than the last, and records in the result which tier produced
// the answer and why the earlier tiers failed:
//
//   tier 0  joint        Procedure-2 joint (Vdd, Vts, w) optimization,
//                        bounded by the tier's watchdog budget
//   tier 1  baseline     conventional fixed-Vts flow (nominal threshold),
//                        a much smaller, better-conditioned search
//   tier 2  last resort  maximum drive: vdd_max, strongest threshold,
//                        budget-driven sizing — the "just make timing"
//                        configuration, energy-optimal in nothing
//
// A tier is rejected when it throws (util::NumericError from the evaluator
// boundary, or any std::exception) or returns an infeasible result; a
// truncated-but-feasible result is accepted (the flag rides along). If even
// maximum drive cannot meet timing, run() throws util::InfeasibleError
// carrying the requested limit, the best achievable critical-path delay and
// the limiting path's endpoint gate (see diagnose_infeasibility).
#pragma once

#include "opt/evaluator.h"
#include "opt/result.h"

namespace minergy::opt {

struct RobustOptions {
  // Tier-0 settings, including its watchdog budget.
  OptimizerOptions joint{};
  // Tier-1 settings; fixed_vts < 0 selects the technology's nominal_vts.
  OptimizerOptions baseline{};
  double baseline_fixed_vts = -1.0;
  // When false, an infeasible tier 1 throws instead of falling through to
  // the max-drive configuration.
  bool allow_last_resort = true;
};

class RobustOptimizer {
 public:
  explicit RobustOptimizer(const CircuitEvaluator& eval,
                           RobustOptions options = {});

  // Never propagates model/numeric/budget failures from the inner tiers;
  // the only exception it throws is util::InfeasibleError when no tier can
  // meet the cycle-time constraint at all.
  OptimizationResult run() const;

 private:
  // Tier 2: vdd_max / vts_min / budget-driven sizing. Feasible-or-throws.
  OptimizationResult last_resort() const;

  const CircuitEvaluator& eval_;
  RobustOptions opts_;
};

}  // namespace minergy::opt
