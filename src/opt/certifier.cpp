#include "opt/certifier.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/guard.h"
#include "util/json.h"

namespace minergy::opt {
namespace {

// Relative disagreement between two quantities that should be the same
// number computed twice; symmetric and safe at zero. A non-finite operand
// is an infinite mismatch — NaN must not slip through a `> tol` compare.
double rel_mismatch(double a, double b) {
  if (!std::isfinite(a) || !std::isfinite(b)) {
    return std::numeric_limits<double>::infinity();
  }
  const double scale = std::max({std::fabs(a), std::fabs(b), 1e-30});
  return std::fabs(a - b) / scale;
}

std::string format_v(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

}  // namespace

std::string Certificate::summary() const {
  if (certified) return "certified";
  return "UNCERTIFIED [" + violated_invariant + "]: " + detail;
}

std::string Certificate::to_json(int indent) const {
  util::JsonWriter w(indent);
  w.begin_object();
  w.kv("schema", "minergy.certificate.v1");
  w.kv("certified", certified);
  w.kv("violated_invariant", violated_invariant);
  w.kv("culprit_gate", culprit_gate);
  w.kv("detail", detail);
  w.kv("recomputed_critical_delay", recomputed_critical_delay);
  w.kv("recomputed_energy_total", recomputed_energy_total);
  w.kv("recomputed_static_energy", recomputed_static_energy);
  w.kv("recomputed_dynamic_energy", recomputed_dynamic_energy);
  w.kv("timing_limit", timing_limit);
  w.end_object();
  return w.str();
}

Certifier::Certifier(const CircuitEvaluator& eval, CertifyOptions options)
    : eval_(eval), opts_(options) {}

Certificate Certifier::certify(const OptimizationResult& result) const {
  // A certificate must be recomputed from scratch: bypass the evaluation
  // cache for the whole audit so it never vouches for its own memo.
  const EvalCacheBypass no_cache;
  const obs::Span span("cert.run");
  static obs::Counter& c_runs = obs::counter("cert.runs");
  static obs::Counter& c_pass = obs::counter("cert.pass");
  static obs::Counter& c_fail = obs::counter("cert.fail");
  c_runs.add();

  const netlist::Netlist& nl = eval_.netlist();
  const tech::Technology& tech = eval_.technology();
  Certificate cert;
  cert.timing_limit = opts_.skew_b * eval_.cycle_time();

  auto fail = [&](std::string invariant, std::string detail,
                  std::string gate = std::string()) {
    cert.certified = false;
    cert.violated_invariant = std::move(invariant);
    cert.detail = std::move(detail);
    cert.culprit_gate = std::move(gate);
    c_fail.add();
    obs::counter("cert.fail." + cert.violated_invariant).add();
    obs::Tracer::instance().instant("cert.failed",
                                    cert.violated_invariant.c_str());
    return cert;
  };

  // --- 1. The result must claim feasibility at all ------------------------
  if (!result.feasible) {
    return fail("result-feasible",
                "result is flagged infeasible; only feasible results can be "
                "certified");
  }

  // --- 2. State shape ------------------------------------------------------
  const CircuitState& state = result.state;
  if (state.vts.size() != nl.size() || state.widths.size() != nl.size()) {
    std::ostringstream os;
    os << "state arrays do not cover the netlist (vts " << state.vts.size()
       << ", widths " << state.widths.size() << ", gates " << nl.size() << ")";
    return fail("state-shape", os.str());
  }
  if (rel_mismatch(state.vdd, result.vdd) > opts_.report_rel_tolerance) {
    return fail("operating-point-mismatch",
                "reported Vdd " + format_v(result.vdd) +
                    " V does not match state Vdd " + format_v(state.vdd) +
                    " V");
  }

  // --- 3. Physicality: variables inside the technology ranges --------------
  const double slack = opts_.range_slack;
  if (!std::isfinite(state.vdd) || state.vdd < tech.vdd_min - slack ||
      state.vdd > tech.vdd_max + slack) {
    return fail("vdd-range", "Vdd " + format_v(state.vdd) + " V outside [" +
                                 format_v(tech.vdd_min) + ", " +
                                 format_v(tech.vdd_max) + "] V");
  }
  for (netlist::GateId id : nl.combinational()) {
    const double vts = state.vts[id];
    if (!std::isfinite(vts) || vts < tech.vts_min - slack ||
        vts > tech.vts_max + slack) {
      return fail("vts-range",
                  "Vts " + format_v(vts) + " V of gate '" + nl.gate(id).name +
                      "' outside [" + format_v(tech.vts_min) + ", " +
                      format_v(tech.vts_max) + "] V",
                  nl.gate(id).name);
    }
    const double w = state.widths[id];
    if (!std::isfinite(w) || w < tech.w_min - slack ||
        w > tech.w_max + slack) {
      return fail("width-range",
                  "width " + format_v(w) + " of gate '" + nl.gate(id).name +
                      "' outside [" + format_v(tech.w_min) + ", " +
                      format_v(tech.w_max) + "]",
                  nl.gate(id).name);
    }
  }

  // --- 4./5. Fresh STA: finite arrivals, then the timing constraint --------
  double recomputed_crit = 0.0;
  try {
    const timing::TimingReport sta = eval_.sta(state, cert.timing_limit);
    recomputed_crit = sta.critical_delay;
  } catch (const util::NumericError& e) {
    // The evaluator boundary names the offending gate in its context.
    return fail("finite-arrivals", e.what());
  }
  cert.recomputed_critical_delay = recomputed_crit;
  if (recomputed_crit > cert.timing_limit * (1.0 + opts_.timing_epsilon)) {
    std::ostringstream os;
    os << "re-derived critical delay " << recomputed_crit * 1e9
       << " ns exceeds the claimed limit " << cert.timing_limit * 1e9
       << " ns";
    return fail("timing-constraint", os.str());
  }
  if (rel_mismatch(recomputed_crit, result.critical_delay) >
      opts_.report_rel_tolerance) {
    std::ostringstream os;
    os << "reported critical delay " << result.critical_delay * 1e9
       << " ns disagrees with the fresh STA's " << recomputed_crit * 1e9
       << " ns";
    return fail("timing-report-mismatch", os.str());
  }

  // --- 6. Energy re-accounting (Appendix A.1) -------------------------------
  power::EnergyBreakdown recomputed;
  try {
    recomputed = eval_.energy(state);
  } catch (const util::NumericError& e) {
    return fail("energy-accounting", e.what());
  }
  cert.recomputed_energy_total = recomputed.total();
  cert.recomputed_static_energy = recomputed.static_energy;
  cert.recomputed_dynamic_energy = recomputed.dynamic_energy;

  // Independent gate-by-gate re-summation with the evaluator's corner
  // convention (dynamic at nominal Vts, leakage at the lowered corner):
  // cross-checks the evaluator's own accumulation, not just the optimizer's
  // bookkeeping.
  {
    const power::EnergyModel& em = eval_.energy_model();
    double re_static = 0.0, re_dynamic = 0.0;
    for (netlist::GateId id : nl.combinational()) {
      const power::EnergyBreakdown nominal =
          em.gate_energy(id, state.widths, state.vdd, state.vts[id]);
      re_dynamic += nominal.dynamic_energy;
      re_static += eval_.vts_tolerance() == 0.0
                       ? nominal.static_energy
                       : em.gate_energy(id, state.widths, state.vdd,
                                        eval_.leakage_vts(state.vts[id]))
                             .static_energy;
    }
    if (rel_mismatch(re_static, recomputed.static_energy) >
            opts_.report_rel_tolerance ||
        rel_mismatch(re_dynamic, recomputed.dynamic_energy) >
            opts_.report_rel_tolerance) {
      std::ostringstream os;
      os << "per-gate re-summation (static " << re_static << " J, dynamic "
         << re_dynamic << " J) disagrees with the evaluator's accumulation "
         << "(static " << recomputed.static_energy << " J, dynamic "
         << recomputed.dynamic_energy << " J)";
      return fail("energy-accounting", os.str());
    }
  }
  if (rel_mismatch(recomputed.total(), result.energy.total()) >
          opts_.report_rel_tolerance ||
      rel_mismatch(recomputed.static_energy, result.energy.static_energy) >
          opts_.report_rel_tolerance ||
      rel_mismatch(recomputed.dynamic_energy, result.energy.dynamic_energy) >
          opts_.report_rel_tolerance) {
    std::ostringstream os;
    os << "reported energy (static " << result.energy.static_energy
       << " J, dynamic " << result.energy.dynamic_energy << " J, total "
       << result.energy.total() << " J) disagrees with the re-derived "
       << "(static " << recomputed.static_energy << " J, dynamic "
       << recomputed.dynamic_energy << " J, total " << recomputed.total()
       << " J)";
    return fail("energy-report-mismatch", os.str());
  }

  // --- 7. Monotone accepted-energy trajectory -------------------------------
  if (opts_.check_trajectory) {
    const std::vector<double> accepted = result.report.accepted_energies();
    for (std::size_t i = 0; i < accepted.size(); ++i) {
      if (!std::isfinite(accepted[i])) {
        std::ostringstream os;
        os << "accepted-energy trajectory has a non-finite value at index "
           << i;
        return fail("trajectory-monotone", os.str());
      }
      if (i > 0 && accepted[i] > accepted[i - 1] * (1.0 + 1e-12)) {
        std::ostringstream os;
        os << "accepted-energy trajectory increases at index " << i << " ("
           << accepted[i] << " J > " << accepted[i - 1] << " J)";
        return fail("trajectory-monotone", os.str());
      }
    }
  }

  cert.certified = true;
  c_pass.add();
  return cert;
}

}  // namespace minergy::opt
