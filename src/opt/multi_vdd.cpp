#include "opt/multi_vdd.h"

#include <algorithm>

#include "opt/joint_optimizer.h"
#include "util/check.h"

namespace minergy::opt {

MultiVddOptimizer::MultiVddOptimizer(const CircuitEvaluator& eval,
                                     MultiVddOptions options)
    : eval_(eval), opts_(options) {
  MINERGY_CHECK(opts_.vdd_search_steps >= 1);
  MINERGY_CHECK(opts_.min_slack_fraction >= 0.0);
}

MultiVddResult MultiVddOptimizer::run() const {
  const netlist::Netlist& nl = eval_.netlist();
  const tech::Technology& tech = eval_.technology();
  const double limit = opts_.base.skew_b * eval_.cycle_time();

  MultiVddResult result;
  result.single = JointOptimizer(eval_, opts_.base).run();
  result.low_domain.assign(nl.size(), 0);
  result.vdd_high = result.single.vdd;
  result.vdd_low = result.single.vdd;
  result.energy = result.single.energy;
  result.critical_delay = result.single.critical_delay;
  result.feasible = result.single.feasible;
  if (!result.single.feasible) return result;

  // Downstream-closed eligibility in reverse topological order: a gate may
  // join the low domain only if every logic fanout already did, and it has
  // real slack at the single-supply optimum.
  const timing::TimingReport base_sta = eval_.sta(result.single.state, limit);
  const double slack_floor = opts_.min_slack_fraction * eval_.cycle_time();
  std::vector<char> eligible(nl.size(), 0);
  const auto& topo = nl.combinational();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const netlist::GateId id = *it;
    bool fanouts_ok = true;
    for (netlist::GateId out : nl.gate(id).fanouts) {
      if (netlist::is_combinational(nl.gate(out).type) && !eligible[out]) {
        fanouts_ok = false;
        break;
      }
    }
    eligible[id] =
        (fanouts_ok && base_sta.slack[id] > slack_floor) ? 1 : 0;
  }
  std::size_t eligible_count = 0;
  for (netlist::GateId id : topo) eligible_count += eligible[id] ? 1u : 0u;
  if (eligible_count == 0) return result;

  // Per-gate evaluation helpers over the dual-supply assignment.
  std::vector<double> vdd_vec(nl.size(), result.vdd_high);
  std::vector<double> vts_corner(nl.size());
  for (std::size_t i = 0; i < nl.size(); ++i) {
    vts_corner[i] = eval_.delay_vts(result.single.state.vts[i]);
  }
  auto apply = [&](double vdd_low) {
    for (netlist::GateId id : topo) {
      vdd_vec[id] = eligible[id] ? vdd_low : result.vdd_high;
    }
  };
  auto feasible_at = [&](double vdd_low) {
    apply(vdd_low);
    const timing::TimingReport sta =
        timing::run_sta(eval_.delay_calculator(), result.single.state.widths,
                        std::span<const double>(vdd_vec), vts_corner, limit);
    return sta.critical_delay <= limit * (1.0 + 1e-9);
  };
  auto energy_at = [&](double vdd_low) {
    apply(vdd_low);
    power::EnergyBreakdown total;
    for (netlist::GateId id : topo) {
      // Leakage at the leaky threshold corner, like the evaluator.
      const power::EnergyBreakdown nominal = eval_.energy_model().gate_energy(
          id, result.single.state.widths, vdd_vec[id],
          result.single.state.vts[id]);
      if (eval_.vts_tolerance() == 0.0) {
        total += nominal;
      } else {
        const power::EnergyBreakdown leaky =
            eval_.energy_model().gate_energy(
                id, result.single.state.widths, vdd_vec[id],
                eval_.leakage_vts(result.single.state.vts[id]));
        total.dynamic_energy += nominal.dynamic_energy;
        total.static_energy += leaky.static_energy;
      }
    }
    return total;
  };

  // Lowest feasible second supply (delay is monotone in Vdd_low with the
  // widths frozen), then keep it only if it actually saves energy.
  if (!feasible_at(result.vdd_high)) return result;  // numerical guard
  double lo = tech.vdd_min, hi = result.vdd_high;
  for (int s = 0; s < opts_.vdd_search_steps; ++s) {
    const double mid = 0.5 * (lo + hi);
    if (feasible_at(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  const double vdd_low = hi;
  const power::EnergyBreakdown dual = energy_at(vdd_low);
  if (dual.total() < result.single.energy.total()) {
    result.improved = true;
    result.vdd_low = vdd_low;
    result.low_domain = eligible;
    result.low_count = eligible_count;
    result.energy = dual;
    apply(vdd_low);
    result.critical_delay =
        timing::run_sta(eval_.delay_calculator(), result.single.state.widths,
                        std::span<const double>(vdd_vec), vts_corner, limit)
            .critical_delay;
    result.feasible = true;
  }
  return result;
}

}  // namespace minergy::opt
