// Parametric-yield analysis of an optimized design.
//
// Figure 2a treats Vts variation with worst-case corners; the statistical
// complement asks: with *per-gate* random threshold shifts (sigma given),
// what fraction of manufactured die still meet the cycle time, and what is
// the distribution of their leakage? Ultra-low-Vt designs live or die on
// this — the exponential Ioff(Vt) turns a symmetric threshold distribution
// into a long-tailed power distribution, and the die-to-die (correlated)
// component shifts whole chips.
//
// Model: Vts(gate) = Vts_nominal + G + L(gate), with G ~ N(0, sigma_die)
// shared by the whole die and L ~ N(0, sigma_gate) independent per gate.
#pragma once

#include <cstdint>
#include <vector>

#include "opt/evaluator.h"
#include "opt/result.h"

namespace minergy::opt {

struct YieldOptions {
  int samples = 200;          // Monte-Carlo die count
  double sigma_gate = 0.010;  // V, independent per-gate sigma
  double sigma_die = 0.015;   // V, fully correlated die-to-die sigma
  double skew_b = 0.95;
  std::uint64_t seed = 424242;
};

struct YieldResult {
  int samples = 0;
  int timing_pass = 0;          // die meeting the skewed cycle time
  double timing_yield = 0.0;    // fraction
  double mean_delay = 0.0;      // s, across all die
  double p95_delay = 0.0;       // s
  double mean_energy = 0.0;     // J/cycle
  double p95_energy = 0.0;      // J/cycle
  double mean_leakage = 0.0;    // J/cycle, static component
  double p95_leakage = 0.0;     // J/cycle
  // Energy of every sampled die (sorted ascending), for histogramming.
  std::vector<double> energy_samples;
};

class YieldAnalyzer {
 public:
  YieldAnalyzer(const CircuitEvaluator& eval, YieldOptions options = {});

  // Evaluates the given fixed design point under threshold variation.
  YieldResult analyze(const CircuitState& state) const;

 private:
  const CircuitEvaluator& eval_;
  YieldOptions opts_;
};

}  // namespace minergy::opt
