#include "opt/edp.h"

#include <cmath>
#include <limits>

#include "opt/evaluator.h"
#include "opt/joint_optimizer.h"
#include "util/check.h"

namespace minergy::opt {

EdpResult minimize_energy_delay_product(
    const netlist::Netlist& nl, const tech::Technology& tech,
    const activity::ActivityProfile& profile, const EdpOptions& options) {
  MINERGY_CHECK(options.points >= 2);
  MINERGY_CHECK(options.t_lo_factor > 1.0);
  MINERGY_CHECK(options.t_hi_factor > options.t_lo_factor);

  // Fastest achievable cycle time anchors the sweep.
  double t_min;
  {
    const CircuitEvaluator probe(nl, tech, profile,
                                 {.clock_frequency = 1e9});
    t_min = probe.minimum_cycle_time(options.base.skew_b);
  }

  EdpResult result;
  result.edp = std::numeric_limits<double>::infinity();
  const double log_lo = std::log(options.t_lo_factor * t_min);
  const double log_hi = std::log(options.t_hi_factor * t_min);
  for (int i = 0; i < options.points; ++i) {
    const double t = std::exp(
        log_lo + (log_hi - log_lo) * static_cast<double>(i) /
                     static_cast<double>(options.points - 1));
    const CircuitEvaluator eval(nl, tech, profile,
                                {.clock_frequency = 1.0 / t});
    const OptimizationResult r = JointOptimizer(eval, options.base).run();

    EdpPoint point;
    point.cycle_time = t;
    point.feasible = r.feasible;
    if (r.feasible) {
      point.energy = r.energy.total();
      point.critical_delay = r.critical_delay;
      point.edp = point.energy * point.critical_delay;
      if (point.edp < result.edp) {
        result.edp = point.edp;
        result.cycle_time = t;
        result.best = r;
      }
    }
    result.sweep.push_back(point);
  }
  return result;
}

}  // namespace minergy::opt
