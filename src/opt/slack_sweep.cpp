#include "opt/slack_sweep.h"

#include "opt/baseline_optimizer.h"
#include "opt/evaluator.h"
#include "opt/joint_optimizer.h"
#include "util/check.h"

namespace minergy::opt {

SlackSweep::SlackSweep(const netlist::Netlist& nl,
                       const tech::Technology& tech,
                       const activity::ActivityProfile& profile,
                       double clock_frequency, OptimizerOptions options)
    : nl_(nl),
      tech_(tech),
      profile_(profile),
      fc_(clock_frequency),
      opts_(options) {}

std::vector<SlackPoint> SlackSweep::sweep(
    const std::vector<double>& slack_factors) const {
  const CircuitEvaluator nominal(nl_, tech_, profile_,
                                 {.clock_frequency = fc_});
  const OptimizationResult baseline = BaselineOptimizer(nominal, opts_).run();
  MINERGY_CHECK_MSG(baseline.feasible,
                    "baseline infeasible; scale the cycle time first");

  std::vector<SlackPoint> out;
  for (double s : slack_factors) {
    MINERGY_CHECK(s >= 1.0);
    const CircuitEvaluator relaxed(nl_, tech_, profile_,
                                   {.clock_frequency = fc_ / s});
    SlackPoint p;
    p.slack_factor = s;
    p.joint = JointOptimizer(relaxed, opts_).run();
    p.baseline_energy = baseline.energy.total();
    p.savings =
        p.joint.feasible ? p.baseline_energy / p.joint.energy.total() : 0.0;
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace minergy::opt
