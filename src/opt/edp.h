// Energy-delay-product optimization (the alternative objective the paper
// attributes to Burr/Shott: when no hard clock constraint exists, minimize
// E * t instead of energy alone, recovering some performance).
//
// Implemented on top of the constrained joint optimizer: sweep candidate
// cycle times T over [t_lo, t_hi] * T_min (log-spaced), run the joint
// optimization at each, and pick the point minimizing
// total-energy * critical-delay. Leakage integrates over the cycle, so E
// itself grows with T and the product has an interior minimum.
#pragma once

#include <vector>

#include "activity/activity.h"
#include "netlist/netlist.h"
#include "opt/result.h"
#include "tech/technology.h"

namespace minergy::opt {

struct EdpPoint {
  double cycle_time = 0.0;
  double energy = 0.0;
  double critical_delay = 0.0;
  double edp = 0.0;
  bool feasible = false;
};

struct EdpResult {
  OptimizationResult best;
  double cycle_time = 0.0;  // the T the best point was optimized against
  double edp = 0.0;
  std::vector<EdpPoint> sweep;
};

struct EdpOptions {
  OptimizerOptions base;
  int points = 9;            // sweep resolution
  double t_lo_factor = 1.1;  // relative to the minimum achievable cycle time
  double t_hi_factor = 10.0;
};

EdpResult minimize_energy_delay_product(
    const netlist::Netlist& nl, const tech::Technology& tech,
    const activity::ActivityProfile& profile, const EdpOptions& options = {});

}  // namespace minergy::opt
