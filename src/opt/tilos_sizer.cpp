#include "opt/tilos_sizer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "timing/sta.h"
#include "util/check.h"

namespace minergy::opt {

TilosSizer::TilosSizer(const timing::DelayCalculator& calc,
                       const power::EnergyModel& energy, TilosOptions options)
    : calc_(calc), energy_(energy), opts_(options) {
  MINERGY_CHECK(opts_.upsize_factor > 1.0);
  MINERGY_CHECK(opts_.max_iterations >= 1);
}

TilosResult TilosSizer::size(double vdd, std::span<const double> vts,
                             double cycle_limit,
                             util::Watchdog* watchdog) const {
  obs::counter("opt.tilos.size_calls").add();
  static obs::Counter& c_iters = obs::counter("opt.tilos.iterations");
  const netlist::Netlist& nl = calc_.netlist();
  const tech::Technology& tech = calc_.device().technology();
  MINERGY_CHECK(vts.size() == nl.size());

  TilosResult r;
  r.widths.assign(nl.size(), tech.w_min);

  for (int iter = 0; iter < opts_.max_iterations; ++iter) {
    c_iters.add();
    if (watchdog && watchdog->note_evaluation()) {
      r.truncated = true;
      break;
    }
    const timing::TimingReport report =
        timing::run_sta(calc_, r.widths, vdd, vts, cycle_limit);
    r.critical_delay = report.critical_delay;
    r.iterations = iter;
    if (report.critical_delay <= cycle_limit * (1.0 + 1e-9)) {
      r.feasible = true;
      return r;
    }

    // Candidate moves: upsize any gate on the critical path. Score by the
    // local delay improvement per local energy increase.
    double best_score = 0.0;
    netlist::GateId best_gate = netlist::kInvalidGate;
    double best_new_w = 0.0;
    for (netlist::GateId id : report.critical_path) {
      const double w_old = r.widths[id];
      const double w_new =
          std::min(tech.w_max, w_old * opts_.upsize_factor);
      if (w_new <= w_old * (1.0 + 1e-12)) continue;

      double slope_in = 0.0;
      for (netlist::GateId f : nl.gate(id).fanins) {
        slope_in = std::max(slope_in, report.gate_delay[f]);
      }
      const double d_old =
          calc_.gate_delay(id, r.widths, vdd, vts[id], slope_in);
      r.widths[id] = w_new;
      const double d_new =
          calc_.gate_delay(id, r.widths, vdd, vts[id], slope_in);
      const power::EnergyBreakdown e_new =
          energy_.gate_energy(id, r.widths, vdd, vts[id]);
      r.widths[id] = w_old;
      const power::EnergyBreakdown e_old =
          energy_.gate_energy(id, r.widths, vdd, vts[id]);

      // Upsizing also loads the fanins: account for their extra switched
      // capacitance (0.5 * Vdd^2 * delta_w * Cin per driving fanin).
      double fanin_extra = 0.0;
      for (netlist::GateId f : nl.gate(id).fanins) {
        if (!netlist::is_combinational(nl.gate(f).type)) continue;
        fanin_extra += 0.5 * vdd * vdd * (w_new - w_old) *
                       calc_.device().cin_per_wunit();
      }

      const double delay_gain = d_old - d_new;
      const double energy_cost =
          (e_new.total() - e_old.total()) + fanin_extra;
      if (delay_gain <= 0.0) continue;
      const double score = delay_gain / std::max(energy_cost, 1e-30);
      if (score > best_score) {
        best_score = score;
        best_gate = id;
        best_new_w = w_new;
      }
    }
    if (best_gate == netlist::kInvalidGate) break;  // saturated at w_max
    r.widths[best_gate] = best_new_w;
  }

  const timing::TimingReport final_report =
      timing::run_sta(calc_, r.widths, vdd, vts, cycle_limit);
  r.critical_delay = final_report.critical_delay;
  r.feasible = final_report.critical_delay <= cycle_limit * (1.0 + 1e-9);
  return r;
}

}  // namespace minergy::opt
