// TILOS-style sensitivity-driven sizing (ablation baseline).
//
// An alternative to the budget-driven width search of Procedure 2: start
// from minimum widths and greedily upsize the gate on the critical path
// with the best local delay-reduction per unit of energy increase, until
// the cycle constraint is met or no move helps. Used by
// bench/ablation_budgeting to quantify what the paper's fanout-proportional
// budgeting buys over classic sensitivity sizing.
#pragma once

#include <span>
#include <vector>

#include "power/energy_model.h"
#include "timing/delay_model.h"
#include "util/guard.h"

namespace minergy::opt {

struct TilosOptions {
  double upsize_factor = 1.15;
  int max_iterations = 20000;
};

struct TilosResult {
  std::vector<double> widths;
  bool feasible = false;
  int iterations = 0;
  double critical_delay = 0.0;
  bool truncated = false;  // a caller watchdog expired mid-sizing
};

class TilosSizer {
 public:
  TilosSizer(const timing::DelayCalculator& calc,
             const power::EnergyModel& energy, TilosOptions options = {});

  // vts indexed by gate id (delay corner already applied by the caller).
  // An optional caller-owned watchdog bounds the greedy loop: on expiry the
  // current widths are returned with `truncated` set (each STA pass counts
  // as one evaluation).
  TilosResult size(double vdd, std::span<const double> vts, double cycle_limit,
                   util::Watchdog* watchdog = nullptr) const;

 private:
  const timing::DelayCalculator& calc_;
  const power::EnergyModel& energy_;
  TilosOptions opts_;
};

}  // namespace minergy::opt
