// Cycle-time slack study (Figure 2b of the paper).
//
// The joint optimizer runs with progressively relaxed cycle times
// T_c' = slack_factor * T_c while the Table-1 baseline stays pinned at the
// nominal T_c, showing how available slack converts into power savings.
#pragma once

#include <vector>

#include "activity/activity.h"
#include "netlist/netlist.h"
#include "opt/result.h"
#include "tech/technology.h"

namespace minergy::opt {

struct SlackPoint {
  double slack_factor = 1.0;  // T_c' / T_c
  OptimizationResult joint;
  double baseline_energy = 0.0;  // at nominal T_c
  double savings = 0.0;
};

class SlackSweep {
 public:
  SlackSweep(const netlist::Netlist& nl, const tech::Technology& tech,
             const activity::ActivityProfile& profile, double clock_frequency,
             OptimizerOptions options = {});

  std::vector<SlackPoint> sweep(const std::vector<double>& slack_factors) const;

 private:
  const netlist::Netlist& nl_;
  tech::Technology tech_;
  activity::ActivityProfile profile_;
  double fc_;
  OptimizerOptions opts_;
};

}  // namespace minergy::opt
