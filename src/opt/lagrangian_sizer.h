// Lagrangian-relaxation width optimization.
//
// The paper cites Sapatnekar's exact convex-programming solution to the
// sizing problem [10] as the rigorous alternative to its fast heuristic;
// this module implements the classic Lagrangian-relaxation realization of
// that lineage (Chen–Chu–Wong style), adapted to the total-energy
// objective:
//
//   minimize  E(w)            (static + dynamic, Appendix A.1)
//   s.t.      every source-to-sink path delay <= T
//
// Per-gate multipliers mu_i weight each gate's delay in the relaxed
// objective  E(w) + sum_i mu_i * d_i(w); the inner step minimizes it one
// width at a time (the cost of w_i is separable into its own gate energy,
// its fanins' extra switched capacitance and the mu-weighted delays of
// itself and its fanins), and the outer step updates mu by a subgradient
// rule driven by each gate's path criticality, with a global rescale that
// enforces the timing constraint. The best feasible iterate is returned.
#pragma once

#include <span>
#include <vector>

#include "power/energy_model.h"
#include "timing/delay_model.h"
#include "util/guard.h"

namespace minergy::opt {

struct LagrangianOptions {
  int iterations = 40;        // outer multiplier updates
  int width_steps = 24;       // golden-section steps per gate
  double step = 0.35;         // subgradient step size
  double initial_mu_scale = 1.0;
};

struct LagrangianResult {
  std::vector<double> widths;
  bool feasible = false;
  double critical_delay = 0.0;
  double energy = 0.0;
  int iterations_used = 0;
  bool truncated = false;  // a caller watchdog expired mid-optimization
};

class LagrangianSizer {
 public:
  LagrangianSizer(const timing::DelayCalculator& calc,
                  const power::EnergyModel& energy,
                  LagrangianOptions options = {});

  // vts: delay-corner thresholds per gate id. cycle_limit: b * Tc.
  // An optional caller-owned watchdog bounds the subgradient loop: on
  // expiry the best iterate so far is returned with `truncated` set (each
  // outer iteration counts as one evaluation).
  LagrangianResult size(double vdd, std::span<const double> vts,
                        double cycle_limit,
                        util::Watchdog* watchdog = nullptr) const;

 private:
  const timing::DelayCalculator& calc_;
  const power::EnergyModel& energy_;
  LagrangianOptions opts_;
};

}  // namespace minergy::opt
