// Process-variation study (Figure 2a of the paper).
//
// For each tolerated threshold-voltage variation (+/- x %), the joint
// optimizer runs with worst-case corners: delay evaluated at Vts*(1+x) and
// leakage at Vts*(1-x). The resulting worst-case power is compared against
// the *nominal* fixed-Vts baseline of Table 1, giving the achievable
// savings as a function of how much process fluctuation must be absorbed.
#pragma once

#include <vector>

#include "activity/activity.h"
#include "netlist/netlist.h"
#include "opt/result.h"
#include "tech/technology.h"

namespace minergy::opt {

struct VariationPoint {
  double tolerance = 0.0;  // fractional +/- Vts variation
  OptimizationResult joint;
  double baseline_energy = 0.0;  // nominal Table-1 reference (J/cycle)
  double savings = 0.0;          // baseline_energy / joint energy
};

class VariationAnalyzer {
 public:
  VariationAnalyzer(const netlist::Netlist& nl, const tech::Technology& tech,
                    const activity::ActivityProfile& profile,
                    double clock_frequency, OptimizerOptions options = {});

  // tolerances are fractions (0.05 = +/-5 %). The baseline is computed once
  // at the nominal corner.
  std::vector<VariationPoint> sweep(
      const std::vector<double>& tolerances) const;

 private:
  const netlist::Netlist& nl_;
  tech::Technology tech_;
  activity::ActivityProfile profile_;
  double fc_;
  OptimizerOptions opts_;
};

}  // namespace minergy::opt
