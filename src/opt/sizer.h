// Inner loop of Procedure 2: per-gate minimum-width selection.
//
// Given per-gate delay budgets t_MAX,i and a candidate (Vdd, Vts), each
// gate's width is the smallest w in [w_min, w_max] whose worst-case delay
// meets its budget, found by binary search (power is monotone increasing
// and delay monotone decreasing in w, other variables fixed). Gates are
// processed output-side first so every gate sees its final fanout loads;
// the slope term conservatively uses the fanins' *budgets* (their actual
// delays can only be smaller).
#pragma once

#include <span>
#include <vector>

#include "timing/delay_model.h"
#include "timing/sta.h"

namespace minergy::opt {

struct SizingResult {
  std::vector<double> widths;  // per gate id (w_min for non-logic entries)
  bool all_budgets_met = false;
  int gates_missed = 0;  // budgets unreachable even at w_max
};

class GateSizer {
 public:
  explicit GateSizer(const timing::DelayCalculator& calc);

  // t_max indexed by gate id; vts is the *delay-corner* threshold per gate.
  // `steps` is the paper's M binary-search iterations.
  SizingResult size(std::span<const double> t_max, double vdd,
                    std::span<const double> vts, int steps = 10) const;

  // Width-recovery pass (the paper's Section-4.2 "post processing of delay
  // assignments"): Procedure-1 budgets can starve gates on already-consumed
  // paths, forcing them far wider than the circuit needs. Given a sized
  // state and its STA report, redistribute each gate's positive slack into
  // a relaxed budget
  //     t_rec(g) = d(g) * limit / (limit - slack(g))
  // (the zero-slack rule: since slack(g) <= slack(p) for every path p
  // through g, all path budget sums stay <= limit) and re-run the
  // minimum-width search against it, never increasing any width. Callers
  // must re-verify with a full STA; recovery is monotone in energy.
  SizingResult recover(std::span<const double> widths, double vdd,
                       std::span<const double> vts, double cycle_limit,
                       const timing::TimingReport& report,
                       int steps = 10) const;

 private:
  const timing::DelayCalculator& calc_;
};

}  // namespace minergy::opt
