// Independent result certification (timing-signoff style).
//
// Every number an optimizer reports is re-derived here before it is
// trusted: a fresh STA pass at the delay corner re-checks the cycle-time
// constraint, the Appendix-A.1 energy accounting is re-summed gate by gate
// and compared against both the evaluator's total and the reported
// breakdown, and the result's physicality invariants (variables inside the
// technology ranges, finite arrivals everywhere, a monotone accepted-energy
// trajectory in the RunReport) are checked one by one. The point is
// separation of concerns: the optimizer that *produced* a result never gets
// to be the only code that *validated* it, so a silent regression in an
// optimizer's bookkeeping — a stale cached energy, a width clamp that
// drifted out of range, a feasibility flag set on the wrong STA — is caught
// before it ships a wrong Table-1/Table-2 number.
//
// The RobustOptimizer treats an uncertified tier result as a tier failure
// and advances its degradation chain, so a buggy fast path can never
// outrank a correct slow one (docs/ROBUSTNESS.md, "Certification &
// recovery").
#pragma once

#include <string>

#include "opt/evaluator.h"
#include "opt/result.h"

namespace minergy::opt {

struct CertifyOptions {
  // The constraint the result claims to meet: T_crit <= skew_b * T_c.
  double skew_b = 0.95;
  // Relative slack on the re-checked timing constraint (the optimizers
  // accept at 1e-9; certification allows the same epsilon).
  double timing_epsilon = 1e-9;
  // Relative tolerance between reported and re-derived scalars (energy
  // components, critical delay). The re-derivation runs the same models on
  // the same state, so only floating-point noise is forgiven.
  double report_rel_tolerance = 1e-6;
  // Absolute slack on variable-range checks (absorbs binary-search
  // midpoints landing exactly on a bound).
  double range_slack = 1e-9;
  // Check that the RunReport's accepted energies are non-increasing.
  bool check_trajectory = true;
};

// The typed verdict. `certified == false` names exactly one violated
// invariant (the first found, in checking order) and, when attributable,
// the culprit gate.
struct Certificate {
  bool certified = false;
  std::string violated_invariant;  // e.g. "timing-constraint"; empty on pass
  std::string culprit_gate;        // gate name when the violation has one
  std::string detail;              // human-readable explanation

  // Independent re-derivation (filled whenever the state was evaluable).
  double recomputed_critical_delay = 0.0;
  double recomputed_energy_total = 0.0;
  double recomputed_static_energy = 0.0;
  double recomputed_dynamic_energy = 0.0;
  double timing_limit = 0.0;  // skew_b * T_c used for the check

  // One-line status, e.g. "certified" or "UNCERTIFIED [energy-accounting]:
  // ...".
  std::string summary() const;
  // Schema minergy.certificate.v1 (embedded in batch reports).
  std::string to_json(int indent = 0) const;
};

class Certifier {
 public:
  explicit Certifier(const CircuitEvaluator& eval, CertifyOptions options = {});

  // Re-verifies `result` against the evaluator. Never throws for a bad
  // result — violations, including states the models reject outright, are
  // reported in the Certificate.
  Certificate certify(const OptimizationResult& result) const;

 private:
  const CircuitEvaluator& eval_;
  CertifyOptions opts_;
};

}  // namespace minergy::opt
